(* The data-reliance story (6.1.2) in miniature: train LiGer and DYPRO at a
   full trace budget and at a reduced one, and compare how much each loses.
   LiGer, holding the symbolic dimension, degrades less than DYPRO when
   concrete executions are taken away.

   Run with: dune exec examples/data_reliance.exe *)

open Liger_tensor
open Liger_core
open Liger_dataset
open Liger_eval

let () =
  let rng = Rng.create 555 in
  let enc =
    { Common.default_enc_config with Common.max_paths = 4; max_concrete = 3; max_steps = 16 }
  in
  Printf.printf "Building corpus...\n%!";
  let corpus = Pipeline.build_naming ~enc_config:enc rng ~name:"reliance" ~n:160 in
  let n_train, _, n_test = Pipeline.sizes corpus in
  Printf.printf "train %d / test %d\n\n%!" n_train n_test;

  let fit_and_score name make_wrapper =
    let wrapper = make_wrapper () in
    let (_ : Train.history) =
      Train.fit
        ~options:{ Train.default_options with Train.epochs = 8 }
        (Rng.create 9) wrapper ~train:corpus.Pipeline.train ~valid:corpus.Pipeline.valid
    in
    let f1 = 100.0 *. (Train.eval_naming wrapper corpus.Pipeline.test).Train.prf.Metrics.f1 in
    Printf.printf "  %-34s F1 = %.2f\n%!" name f1;
    f1
  in
  let view_full = Common.full_view in
  let view_reduced = { Common.n_paths = max_int; n_concrete = 1 } in

  Printf.printf "Full trace budget (%d concrete traces per path):\n" enc.Common.max_concrete;
  let liger_full =
    fit_and_score "LiGer" (fun () ->
        fst (Zoo.liger ~view:view_full ~vocab:corpus.Pipeline.vocab Liger_model.Naming))
  in
  let dypro_full =
    fit_and_score "DYPRO" (fun () ->
        fst (Zoo.dypro ~view:view_full ~vocab:corpus.Pipeline.vocab Liger_model.Naming))
  in

  Printf.printf "\nReduced budget (1 concrete trace per path, train AND test):\n";
  let liger_red =
    fit_and_score "LiGer" (fun () ->
        fst (Zoo.liger ~view:view_reduced ~vocab:corpus.Pipeline.vocab Liger_model.Naming))
  in
  let dypro_red =
    fit_and_score "DYPRO" (fun () ->
        fst (Zoo.dypro ~view:view_reduced ~vocab:corpus.Pipeline.vocab Liger_model.Naming))
  in

  Printf.printf "\nF1 lost when concrete traces drop 3 -> 1:\n";
  Printf.printf "  LiGer: %+.2f      DYPRO: %+.2f\n" (liger_red -. liger_full)
    (dypro_red -. dypro_full);
  Printf.printf
    "\n(The paper's Figure 6a/6b: LiGer's symbolic dimension absorbs the loss;\n\
     \ DYPRO, learning from concrete traces alone, degrades more.)\n"
