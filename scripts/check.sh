#!/bin/sh
# CI entry point: build, run the full test suite, then smoke-test the
# `liger analyze` subcommand on the example programs (both the clean ones,
# which must pass --strict, and the deliberately dirty lint demo, which
# must be rejected).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build @all

echo "== dune runtest (LIGER_JOBS=2: exercise the domain pool everywhere)"
LIGER_JOBS=2 dune runtest

# Always benchmark at --jobs 2: a jobs=1 record cannot engage the
# speedup >= 1 gate and --check-regression now fails loudly on one.  On a
# single-core runner the bench detects the oversubscription itself and
# waives the speedup gate with a warning (the throughput gate stays
# active) — see DESIGN.md on oversubscription.
echo "== bench smoke: parallel corpus generation on 2 domains + regression gate"
LIGER_BENCH_N=20 dune exec --no-build bench/main.exe -- \
  --jobs 2 --history BENCH_history.jsonl --check-regression > /dev/null
test -f BENCH_parallel.json
test -f BENCH_history.jsonl
echo "   ok: BENCH_parallel.json written, record appended to BENCH_history.jsonl"

# The profiled smoke does not append to the history: profiling overhead
# would create alternating slow/fast records inside one run shape and
# soften the throughput gate below.  No --metrics-out: the snapshot must
# land in the run directory by default.
echo "== profiled batched train smoke: per-layer/per-op accounting validates"
rm -rf runs/ci-profile
LIGER_RUN_ID=ci-profile dune exec --no-build bin/liger_cli.exe -- \
  train -n 16 --epochs 3 --batch 16 --profile > /dev/null 2>&1
dune exec --no-build bin/liger_cli.exe -- stats --validate runs/ci-profile/metrics.json \
  | grep -q "profile section" || {
    echo "   ERROR: profile section missing from runs/ci-profile/metrics.json" >&2; exit 1; }
echo "   ok: runs/ci-profile/metrics.json has a consistent profile section"

echo "== benchmark history: unbatched baseline record"
dune exec --no-build bin/liger_cli.exe -- train -n 16 --epochs 3 \
  --history BENCH_history.jsonl > /dev/null 2>&1
echo "   ok: train.LiGer (batch=1) record appended"

# At -n 16 the test split is 3 examples and F1 is legitimately 0 (the CLI
# warns).  This smoke trains batched at a scale where the model actually
# learns something, and asserts a real (nonzero) test F1 reaches the
# history record — the plumbing bug this guards against recorded
# test_f1 = 0 for every run regardless of the model.
echo "== batched train at F1-bearing scale: real test_f1 must land in history"
dune exec --no-build bin/liger_cli.exe -- train -n 60 --epochs 8 --batch 16 \
  --history BENCH_history.jsonl > /dev/null 2>&1
tail -n 1 BENCH_history.jsonl | grep -q '"benchmark":"train.LiGer"' || {
  echo "   ERROR: last history record is not a train.LiGer record" >&2; exit 1; }
if tail -n 1 BENCH_history.jsonl | grep -Eq '"test_f1":0([,}]|\.0+[,}])'; then
  echo "   ERROR: batched train at -n 60 recorded test_f1 = 0" >&2
  exit 1
fi
echo "   ok: nonzero test_f1 recorded"

echo "== batched throughput record (seed scale, batch 16), then stats --diff"
dune exec --no-build bin/liger_cli.exe -- train -n 16 --epochs 3 --batch 16 \
  --history BENCH_history.jsonl > /dev/null 2>&1
dune exec --no-build bin/liger_cli.exe -- stats BENCH_history.jsonl --diff
echo "   ok: stats --diff compared the last two records"

echo "== train throughput regression gate (examples_per_second per run shape)"
dune exec --no-build bench/main.exe -- \
  --history BENCH_history.jsonl --check-train-regression
echo "   ok: train regression gate passed"

echo "== observability smoke: trace + metrics into the run dir, then validate both"
rm -rf runs/ci-obs
LIGER_RUN_ID=ci-obs LIGER_TRACE=1 LIGER_METRICS=1 LIGER_JOBS=2 \
  dune exec --no-build bin/liger_cli.exe -- dataset -n 40 > /dev/null
test -f runs/ci-obs/trace.json
test -f runs/ci-obs/metrics.json
dune exec --no-build bin/liger_cli.exe -- stats --validate runs/ci-obs/trace.json
dune exec --no-build bin/liger_cli.exe -- stats --validate runs/ci-obs/metrics.json
grep -q "symexec.paths_pruned_by_absint" runs/ci-obs/metrics.json || {
  echo "   ERROR: absint pruned no symbolic paths on the standard corpus" >&2; exit 1; }
echo "   ok: runs/ci-obs/{trace,metrics}.json validate (absint pruning live)"

echo "== run ledger smoke: 1s snapshots, OpenMetrics exposition, liger top"
rm -rf runs/ci-ledger
LIGER_RUN_ID=ci-ledger LIGER_METRICS_EVERY=1 dune exec --no-build bin/liger_cli.exe -- \
  train -n 16 --epochs 3 --batch 16 > /dev/null 2>&1
test -f runs/ci-ledger/metrics.jsonl
test -f runs/ci-ledger/metrics.json
dune exec --no-build bin/liger_cli.exe -- stats --validate runs/ci-ledger/metrics.jsonl
dune exec --no-build bin/liger_cli.exe -- stats --validate --openmetrics runs/ci-ledger/metrics.jsonl
grep -q "gc.minor_collections" runs/ci-ledger/metrics.jsonl || {
  echo "   ERROR: ledger snapshots are not enriched with GC gauges" >&2; exit 1; }
dune exec --no-build bin/liger_cli.exe -- top runs/ci-ledger --once > /dev/null
echo "   ok: ledger validates, renders as OpenMetrics, and liger top reads it"

echo "== dynamics + report: instrumented train, HTML dashboard, compare, health gate"
rm -rf runs/ci-dynamics
LIGER_RUN_ID=ci-dynamics dune exec --no-build bin/liger_cli.exe -- \
  train -n 16 --epochs 3 --batch 16 --metrics-every 1 --dynamics > /dev/null 2>&1
test -f runs/ci-dynamics/metrics.jsonl
grep -q "dynamics.layer_grad_norm" runs/ci-dynamics/metrics.jsonl || {
  echo "   ERROR: no per-layer gradient stream in the ci-dynamics ledger" >&2; exit 1; }
# single-run report + the health gate (--check exits 2 on any FAIL rule)
dune exec --no-build bin/liger_cli.exe -- report runs/ci-dynamics \
  --history BENCH_history.jsonl --out report.html --check > /dev/null
test -f report.html
grep -q '<section id="gradflow"' report.html
grep -q '<section id="drift"' report.html
grep -q '<svg class="spark"' report.html
# compare mode against the earlier ci-ledger smoke (same run shape)
dune exec --no-build bin/liger_cli.exe -- report runs/ci-dynamics \
  --compare runs/ci-ledger --out report_compare.html > /dev/null
grep -q '<section id="compare"' report_compare.html
echo "   ok: report.html + report_compare.html rendered, health rules pass"

echo "== crash injection: a failpoint mid-train must leave a postmortem dump"
rm -rf runs/ci-crash
if LIGER_RUN_ID=ci-crash LIGER_METRICS_EVERY=1 LIGER_FAILPOINT=train.epoch:2 \
  dune exec --no-build bin/liger_cli.exe -- train -n 16 --epochs 3 --batch 16 > /dev/null 2>&1
then
  echo "   ERROR: injected failpoint did not abort the run" >&2
  exit 1
fi
test -f runs/ci-crash/postmortem.json
dune exec --no-build bin/liger_cli.exe -- stats --validate runs/ci-crash/postmortem.json
echo "   ok: postmortem.json written by the crashed run and validates"

echo "== differential fuzz smoke: fixed seed, all oracles, zero failures expected"
# Fixed seed keeps this reproducible; any failure is shrunk and persisted
# under fuzz/corpus/ (uploaded by CI) and can be rerun with --replay.
dune exec --no-build bin/liger_cli.exe -- fuzz --seed 1 --iters 200 --budget-s 60
echo "   ok: fuzz battery clean"

echo "== absint soundness oracle: 200 fixed-seed programs, envelope must hold"
dune exec --no-build bin/liger_cli.exe -- fuzz --seed 1 --iters 200 --budget-s 60 \
  --oracle absint
echo "   ok: concrete states stayed inside the abstract envelope"

echo "== semantic probe smoke: frozen embeddings vs exact labels"
rm -rf runs/ci-probe
LIGER_RUN_ID=ci-probe dune exec --no-build bin/liger_cli.exe -- probe -n 30 --seed 1 \
  --epochs 1 --probe-epochs 10 > /dev/null
test -f runs/ci-probe/probe_accuracy.txt
grep -q "live-after" runs/ci-probe/probe_accuracy.txt
echo "   ok: runs/ci-probe/probe_accuracy.txt written (uploaded as a CI artifact)"

echo "== serve smoke: save a model, build the index twice, drive every endpoint"
rm -rf runs/ci-serve-model runs/ci-serve-index runs/ci-serve runs/ci-serve.port
dune exec --no-build bin/liger_cli.exe -- train -n 16 --epochs 1 --batch 16 \
  --save runs/ci-serve-model > /dev/null 2>&1
dune exec --no-build bin/liger_cli.exe -- index --model runs/ci-serve-model \
  --out runs/ci-serve-index --generate 8 --seed 7 > /dev/null
# content-addressed rebuild: an unchanged corpus must re-embed nothing
dune exec --no-build bin/liger_cli.exe -- index --model runs/ci-serve-model \
  --out runs/ci-serve-index --generate 8 --seed 7 | grep -q "embedded 0," || {
    echo "   ERROR: index rebuild re-embedded unchanged methods" >&2; exit 1; }
# run the built binary directly so $! is the server itself, not a dune wrapper
LIGER_RUN_ID=ci-serve LIGER_METRICS_EVERY=1 ./_build/default/bin/liger_cli.exe serve \
  --model runs/ci-serve-model --index runs/ci-serve-index \
  --port 0 --port-file runs/ci-serve.port &
SERVE_PID=$!
i=0
while [ ! -s runs/ci-serve.port ] && [ $i -lt 100 ]; do i=$((i + 1)); sleep 0.1; done
test -s runs/ci-serve.port || { echo "   ERROR: server never bound a port" >&2; exit 1; }
PORT=$(cat runs/ci-serve.port)
dune exec --no-build bin/liger_cli.exe -- fetch "http://127.0.0.1:$PORT/healthz" \
  | grep -q ok
dune exec --no-build bin/liger_cli.exe -- fetch "http://127.0.0.1:$PORT/embed" \
  --data examples/minijava/sum_to.mj | grep -q '"vector":\['
dune exec --no-build bin/liger_cli.exe -- fetch "http://127.0.0.1:$PORT/search?k=3" \
  --data examples/minijava/sum_to.mj | grep -q '"neighbors":\['
dune exec --no-build bin/liger_cli.exe -- fetch "http://127.0.0.1:$PORT/suggest" \
  --data examples/minijava/sum_to.mj | grep -q '"subtokens":\['
dune exec --no-build bin/liger_cli.exe -- fetch --lint-openmetrics \
  "http://127.0.0.1:$PORT/metrics"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
test -f runs/ci-serve/metrics.jsonl || {
  echo "   ERROR: serve run left no ledger" >&2; exit 1; }
test -f runs/ci-serve/metrics.json || {
  echo "   ERROR: SIGTERM shutdown left no final ledger tick" >&2; exit 1; }
dune exec --no-build bin/liger_cli.exe -- stats --validate runs/ci-serve/metrics.jsonl
echo "   ok: all endpoints answered; clean SIGTERM left the final ledger tick"

echo "== serve loopback bench: sustained QPS + p99 gates, history record"
dune exec --no-build bench/main.exe -- serve --qps 50 --duration 10 \
  --history BENCH_history.jsonl --check-regression > /dev/null
tail -n 1 BENCH_history.jsonl | grep -q '"benchmark":"serve.loopback"' || {
  echo "   ERROR: serve bench did not append to BENCH_history.jsonl" >&2; exit 1; }
echo "   ok: serve.loopback record appended to BENCH_history.jsonl"

echo "== liger analyze (clean examples, strict)"
for f in examples/minijava/sum_to.mj examples/minijava/find_max.mj; do
  dune exec --no-build bin/liger_cli.exe -- analyze "$f" --strict > /dev/null
  echo "   ok: $f"
done

echo "== liger analyze (lint demo must fail strict)"
if dune exec --no-build bin/liger_cli.exe -- analyze examples/minijava/lint_demo.mj --strict > /dev/null 2>&1; then
  echo "   ERROR: lint_demo.mj unexpectedly passed --strict" >&2
  exit 1
fi
echo "   ok: lint_demo.mj rejected"

echo "All checks passed."
