#!/bin/sh
# CI entry point: build, run the full test suite, then smoke-test the
# `liger analyze` subcommand on the example programs (both the clean ones,
# which must pass --strict, and the deliberately dirty lint demo, which
# must be rejected).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build @all

echo "== dune runtest (LIGER_JOBS=2: exercise the domain pool everywhere)"
LIGER_JOBS=2 dune runtest

echo "== bench smoke: parallel corpus generation on 2 domains"
dune exec --no-build bench/main.exe -- --jobs 2 > /dev/null
test -f BENCH_parallel.json
echo "   ok: BENCH_parallel.json written"

echo "== observability smoke: trace + metrics out, then validate both"
LIGER_TRACE_OUT=obs_trace.json LIGER_METRICS_OUT=obs_metrics.json LIGER_JOBS=2 \
  dune exec --no-build bin/liger_cli.exe -- dataset -n 40 > /dev/null
test -f obs_trace.json
test -f obs_metrics.json
dune exec --no-build bin/liger_cli.exe -- stats --validate obs_trace.json
dune exec --no-build bin/liger_cli.exe -- stats --validate obs_metrics.json
echo "   ok: obs_trace.json and obs_metrics.json validate"

echo "== liger analyze (clean examples, strict)"
for f in examples/minijava/sum_to.mj examples/minijava/find_max.mj; do
  dune exec --no-build bin/liger_cli.exe -- analyze "$f" --strict > /dev/null
  echo "   ok: $f"
done

echo "== liger analyze (lint demo must fail strict)"
if dune exec --no-build bin/liger_cli.exe -- analyze examples/minijava/lint_demo.mj --strict > /dev/null 2>&1; then
  echo "   ERROR: lint_demo.mj unexpectedly passed --strict" >&2
  exit 1
fi
echo "   ok: lint_demo.mj rejected"

echo "All checks passed."
