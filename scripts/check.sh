#!/bin/sh
# CI entry point: build, run the full test suite, then smoke-test the
# `liger analyze` subcommand on the example programs (both the clean ones,
# which must pass --strict, and the deliberately dirty lint demo, which
# must be rejected).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build @all

echo "== dune runtest (LIGER_JOBS=2: exercise the domain pool everywhere)"
LIGER_JOBS=2 dune runtest

# Always benchmark at --jobs 2: a jobs=1 record cannot engage the
# speedup >= 1 gate and --check-regression now fails loudly on one.  On a
# single-core runner the bench detects the oversubscription itself and
# waives the speedup gate with a warning (the throughput gate stays
# active) — see DESIGN.md on oversubscription.
echo "== bench smoke: parallel corpus generation on 2 domains + regression gate"
LIGER_BENCH_N=20 dune exec --no-build bench/main.exe -- \
  --jobs 2 --history BENCH_history.jsonl --check-regression > /dev/null
test -f BENCH_parallel.json
test -f BENCH_history.jsonl
echo "   ok: BENCH_parallel.json written, record appended to BENCH_history.jsonl"

# The profiled smoke does not append to the history: profiling overhead
# would create alternating slow/fast records inside one run shape and
# soften the throughput gate below.
echo "== profiled batched train smoke: per-layer/per-op accounting validates"
dune exec --no-build bin/liger_cli.exe -- train -n 16 --epochs 3 --batch 16 --profile \
  --metrics-out profile_metrics.json > /dev/null 2>&1
dune exec --no-build bin/liger_cli.exe -- stats --validate profile_metrics.json \
  | grep -q "profile section" || {
    echo "   ERROR: profile section missing from profile_metrics.json" >&2; exit 1; }
echo "   ok: profile_metrics.json has a consistent profile section"

echo "== benchmark history: unbatched baseline record"
dune exec --no-build bin/liger_cli.exe -- train -n 16 --epochs 3 \
  --history BENCH_history.jsonl > /dev/null 2>&1
echo "   ok: train.LiGer (batch=1) record appended"

# At -n 16 the test split is 3 examples and F1 is legitimately 0 (the CLI
# warns).  This smoke trains batched at a scale where the model actually
# learns something, and asserts a real (nonzero) test F1 reaches the
# history record — the plumbing bug this guards against recorded
# test_f1 = 0 for every run regardless of the model.
echo "== batched train at F1-bearing scale: real test_f1 must land in history"
dune exec --no-build bin/liger_cli.exe -- train -n 60 --epochs 8 --batch 16 \
  --history BENCH_history.jsonl > /dev/null 2>&1
tail -n 1 BENCH_history.jsonl | grep -q '"benchmark":"train.LiGer"' || {
  echo "   ERROR: last history record is not a train.LiGer record" >&2; exit 1; }
if tail -n 1 BENCH_history.jsonl | grep -Eq '"test_f1":0([,}]|\.0+[,}])'; then
  echo "   ERROR: batched train at -n 60 recorded test_f1 = 0" >&2
  exit 1
fi
echo "   ok: nonzero test_f1 recorded"

echo "== batched throughput record (seed scale, batch 16), then stats --diff"
dune exec --no-build bin/liger_cli.exe -- train -n 16 --epochs 3 --batch 16 \
  --history BENCH_history.jsonl > /dev/null 2>&1
dune exec --no-build bin/liger_cli.exe -- stats BENCH_history.jsonl --diff
echo "   ok: stats --diff compared the last two records"

echo "== train throughput regression gate (examples_per_second per run shape)"
dune exec --no-build bench/main.exe -- \
  --history BENCH_history.jsonl --check-train-regression
echo "   ok: train regression gate passed"

echo "== observability smoke: trace + metrics out, then validate both"
LIGER_TRACE_OUT=obs_trace.json LIGER_METRICS_OUT=obs_metrics.json LIGER_JOBS=2 \
  dune exec --no-build bin/liger_cli.exe -- dataset -n 40 > /dev/null
test -f obs_trace.json
test -f obs_metrics.json
dune exec --no-build bin/liger_cli.exe -- stats --validate obs_trace.json
dune exec --no-build bin/liger_cli.exe -- stats --validate obs_metrics.json
grep -q "symexec.paths_pruned_by_absint" obs_metrics.json || {
  echo "   ERROR: absint pruned no symbolic paths on the standard corpus" >&2; exit 1; }
echo "   ok: obs_trace.json and obs_metrics.json validate (absint pruning live)"

echo "== differential fuzz smoke: fixed seed, all oracles, zero failures expected"
# Fixed seed keeps this reproducible; any failure is shrunk and persisted
# under fuzz/corpus/ (uploaded by CI) and can be rerun with --replay.
dune exec --no-build bin/liger_cli.exe -- fuzz --seed 1 --iters 200 --budget-s 60
echo "   ok: fuzz battery clean"

echo "== absint soundness oracle: 200 fixed-seed programs, envelope must hold"
dune exec --no-build bin/liger_cli.exe -- fuzz --seed 1 --iters 200 --budget-s 60 \
  --oracle absint
echo "   ok: concrete states stayed inside the abstract envelope"

echo "== semantic probe smoke: frozen embeddings vs exact labels"
dune exec --no-build bin/liger_cli.exe -- probe -n 30 --seed 1 --epochs 1 \
  --probe-epochs 10 --out probe_accuracy.txt > /dev/null
test -f probe_accuracy.txt
grep -q "live-after" probe_accuracy.txt
echo "   ok: probe_accuracy.txt written (uploaded as a CI artifact)"

echo "== liger analyze (clean examples, strict)"
for f in examples/minijava/sum_to.mj examples/minijava/find_max.mj; do
  dune exec --no-build bin/liger_cli.exe -- analyze "$f" --strict > /dev/null
  echo "   ok: $f"
done

echo "== liger analyze (lint demo must fail strict)"
if dune exec --no-build bin/liger_cli.exe -- analyze examples/minijava/lint_demo.mj --strict > /dev/null 2>&1; then
  echo "   ERROR: lint_demo.mj unexpectedly passed --strict" >&2
  exit 1
fi
echo "   ok: lint_demo.mj rejected"

echo "All checks passed."
