(** The fuzzing driver: generate → check → shrink → persist.

    A run is a pure function of its seed: the master RNG only pre-draws one
    generation seed per iteration, every oracle seed is derived arithmetically
    from it, and program generation happens sequentially from a reset
    statement-id counter — so the parallel oracle checks can land in any
    order without affecting what was checked or the verdicts.  Failures are
    shrunk and written under [fuzz/corpus/] as a [.mj] source plus a [.json]
    descriptor that {!replay} can reproduce from alone. *)

open Liger_lang
open Liger_tensor
open Liger_obs
module Parallel = Liger_parallel.Parallel

type failure = {
  oracle : string;
  iter : int;
  gen_seed : int;
  oracle_seed : int;
  message : string;
  orig : Ast.meth;
  shrunk : Ast.meth;
  shrink_steps : int;
  artifact : string option;  (* path of the persisted .json, if any *)
}

type tally = { mutable passed : int; mutable failed : int; mutable skipped : int }

type summary = {
  seed : int;
  programs : int;          (* generated (= iterations completed) *)
  checks : int;            (* oracle evaluations, batch entries included *)
  failures : failure list; (* in iteration order *)
  tallies : (string * tally) list;  (* one per oracle, registry order *)
  elapsed_s : float;
}

let chunk_size = 16
let det_sample = 4  (* programs per chunk fed to batch oracles *)

let oracle_seed_of ~gen_seed j = gen_seed + (1000003 * (j + 1))

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* The autodiff oracle never reads the program, so shrinking it would just
   re-run the (expensive) gradient check on ever-smaller irrelevant methods. *)
let shrink_attempts = function
  | "roundtrip" | "soundness" -> 2000
  | "symexec" | "analysis" | "absint" -> 600
  | "determinism" -> 100
  | _ -> 0

let shrink_failure (o : Oracle.t) ~oracle_seed m =
  let max_attempts = shrink_attempts o.Oracle.name in
  if max_attempts = 0 then Shrink.{ shrunk = m; steps = 0; attempts = 0 }
  else
    let still_fails m' =
      match Oracle.check_one o ~seed:oracle_seed m' with
      | Oracle.Fail _ -> true
      | Oracle.Pass | Oracle.Skip _ -> false
    in
    Shrink.run ~max_attempts ~still_fails m

(* ------------------------------------------------------------------ *)
(* Corpus persistence                                                  *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

(* lib/obs's Json is a reader; the writer here is all the fuzzer needs *)
let json_of_failure ~run_seed (f : failure) =
  let b = Buffer.create 512 in
  let str s = Buffer.add_char b '"'; Buffer.add_string b (Json.escape s); Buffer.add_char b '"' in
  let field name add v =
    Buffer.add_string b (Printf.sprintf "  \"%s\": " name);
    add v;
    Buffer.add_string b ",\n"
  in
  Buffer.add_string b "{\n";
  field "oracle" str f.oracle;
  field "run_seed" (fun n -> Buffer.add_string b (string_of_int n)) run_seed;
  field "iter" (fun n -> Buffer.add_string b (string_of_int n)) f.iter;
  field "gen_seed" (fun n -> Buffer.add_string b (string_of_int n)) f.gen_seed;
  field "oracle_seed" (fun n -> Buffer.add_string b (string_of_int n)) f.oracle_seed;
  field "message" str f.message;
  field "shrink_steps" (fun n -> Buffer.add_string b (string_of_int n)) f.shrink_steps;
  field "orig_src" str (Pretty.meth_to_string f.orig);
  Buffer.add_string b "  \"src\": ";
  str (Pretty.meth_to_string f.shrunk);
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let persist ~out_dir ~run_seed (f : failure) =
  mkdir_p out_dir;
  let base = Printf.sprintf "%s-s%d-i%d" f.oracle run_seed f.iter in
  let mj = Filename.concat out_dir (base ^ ".mj") in
  let js = Filename.concat out_dir (base ^ ".json") in
  write_file mj (Pretty.meth_to_string f.shrunk);
  write_file js (json_of_failure ~run_seed f);
  { f with artifact = Some js }

(* ------------------------------------------------------------------ *)
(* The run loop                                                        *)
(* ------------------------------------------------------------------ *)

let default_oracles = Oracle.all

(** Fuzz [iters] programs (or until [budget_s] wall-clock seconds, checked
    between chunks).  When [persist_failures] (default), shrunk failures are
    written under [out_dir]. *)
let run ?(oracles = default_oracles) ?(iters = 200) ?budget_s
    ?(out_dir = Filename.concat "fuzz" "corpus") ?(persist_failures = true)
    ?(gen_config = Gen.default_config) ~seed () : summary =
  Span.with_ ~name:"fuzz.run" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  Ast.reset_sids ();
  let master = Rng.create seed in
  let gen_seeds = Array.init iters (fun _ -> Rng.int master 0x3FFFFFFF) in
  let tallies = List.map (fun o -> (o.Oracle.name, { passed = 0; failed = 0; skipped = 0 })) oracles in
  let tally name = List.assoc name tallies in
  let checks = ref 0 in
  let failures = ref [] in
  let programs = ref 0 in
  let over_budget () =
    match budget_s with
    | None -> false
    | Some s -> Unix.gettimeofday () -. t0 >= s
  in
  let per_prog, per_batch =
    List.partition (fun o -> match o.Oracle.kind with Oracle.Per_prog _ -> true | _ -> false)
      oracles
  in
  let record_failure o ~iter ~gen_seed ~oracle_seed ~msg m =
    Metrics.incr ~labels:[ ("oracle", o.Oracle.name) ] "fuzz.failures";
    if Obs.Recorder.enabled () then
      Obs.Recorder.note
        ~detail:(Printf.sprintf "%s at iter %d: %s" o.Oracle.name iter msg)
        "fuzz.failure";
    let sh = shrink_failure o ~oracle_seed m in
    Metrics.add "fuzz.shrink_steps" sh.Shrink.steps;
    (* re-derive the message for the *shrunk* program where possible, so the
       artifact describes what it contains *)
    let msg =
      match Oracle.check_one o ~seed:oracle_seed sh.Shrink.shrunk with
      | Oracle.Fail m -> m
      | _ -> msg
    in
    let f =
      { oracle = o.Oracle.name; iter; gen_seed; oracle_seed; message = msg; orig = m;
        shrunk = sh.Shrink.shrunk; shrink_steps = sh.Shrink.steps; artifact = None }
    in
    let f = if persist_failures then persist ~out_dir ~run_seed:seed f else f in
    failures := f :: !failures
  in
  let i = ref 0 in
  while !i < iters && not (over_budget ()) do
    let lo = !i in
    let hi = min iters (lo + chunk_size) in
    i := hi;
    (* a crash mid-battery leaves the chunk bounds in the flight ring *)
    if Obs.Recorder.enabled () then
      Obs.Recorder.note ~detail:(Printf.sprintf "iters %d..%d" lo (hi - 1)) "fuzz.chunk";
    (* generation is sequential: the statement-id counter is global *)
    let meths =
      Array.init (hi - lo) (fun k -> Gen.gen ~config:gen_config (Rng.create gen_seeds.(lo + k)))
    in
    programs := !programs + Array.length meths;
    (* all (program, per-program oracle) pairs of the chunk go on the pool *)
    let work =
      Array.concat
        (List.mapi
           (fun j o -> Array.init (Array.length meths) (fun k -> (j, o, k)))
           per_prog)
    in
    let verdicts =
      Parallel.map
        (fun (j, o, k) ->
          Metrics.incr "fuzz.runs";
          let oracle_seed = oracle_seed_of ~gen_seed:gen_seeds.(lo + k) j in
          (o, k, oracle_seed, Oracle.check_one o ~seed:oracle_seed meths.(k)))
        work
    in
    checks := !checks + Array.length verdicts;
    Array.iter
      (fun (o, k, oracle_seed, v) ->
        let t = tally o.Oracle.name in
        match v with
        | Oracle.Pass -> t.passed <- t.passed + 1
        | Oracle.Skip _ -> t.skipped <- t.skipped + 1
        | Oracle.Fail msg ->
            t.failed <- t.failed + 1;
            record_failure o ~iter:(lo + k) ~gen_seed:gen_seeds.(lo + k) ~oracle_seed ~msg
              meths.(k))
      verdicts;
    (* batch oracles manage the pool themselves (jobs=1 vs jobs=N), so they
       run on this domain, over a small sample of the chunk *)
    List.iteri
      (fun jb o ->
        match o.Oracle.kind with
        | Oracle.Per_prog _ -> ()
        | Oracle.Per_batch f ->
            let n = min det_sample (Array.length meths) in
            let sample = Array.sub meths 0 n in
            let oracle_seed =
              oracle_seed_of ~gen_seed:gen_seeds.(lo) (List.length per_prog + jb)
            in
            Metrics.add "fuzz.runs" n;
            checks := !checks + n;
            let t = tally o.Oracle.name in
            let fails = f ~seed:oracle_seed sample in
            t.failed <- t.failed + List.length fails;
            t.passed <- t.passed + (n - List.length fails);
            List.iter
              (fun (k, msg) ->
                record_failure o ~iter:(lo + k) ~gen_seed:gen_seeds.(lo + k) ~oracle_seed ~msg
                  sample.(k))
              fails)
      per_batch
  done;
  {
    seed;
    programs = !programs;
    checks = !checks;
    failures = List.rev !failures;
    tallies;
    elapsed_s = Unix.gettimeofday () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

type replay_result = {
  r_oracle : string;
  r_verdict : Oracle.verdict;
  reproduced : bool;  (* the persisted failure fails again *)
}

(** Re-run the oracle recorded in a persisted [.json] descriptor against the
    shrunk source it carries. *)
let replay path : (replay_result, string) result =
  match Json.parse_file path with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok j -> (
      let str name = Option.bind (Json.member name j) Json.to_string in
      let num name = Option.bind (Json.member name j) Json.to_float in
      match (str "oracle", num "oracle_seed", str "src") with
      | Some name, Some oseed, Some src -> (
          match Oracle.find name with
          | None -> Error (Printf.sprintf "unknown oracle %S" name)
          | Some o -> (
              match Parser.method_of_string src with
              | exception e -> Error ("artifact source does not parse: " ^ Printexc.to_string e)
              | m ->
                  let v = Oracle.check_one o ~seed:(int_of_float oseed) m in
                  Ok
                    {
                      r_oracle = name;
                      r_verdict = v;
                      reproduced = (match v with Oracle.Fail _ -> true | _ -> false);
                    }))
      | _ -> Error (path ^ ": missing oracle/oracle_seed/src fields"))
