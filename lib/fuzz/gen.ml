(** Seeded, size-bounded generation of {e well-typed} MiniJava methods.

    The generator is type-directed: every expression is built for a
    requested type against an environment of in-scope variables, so the
    output satisfies {!Liger_lang.Typecheck.check} by construction.  Three
    soundness holes of the static semantics are deliberately avoided, since
    the differential oracles would otherwise report false positives:

    - the typechecker's context is unscoped, so a declaration inside a
      branch stays visible after it even though the binding may not exist
      at runtime — branch-local variables are dropped from the environment
      when the branch closes and names are never reused;
    - object fields statically type as [int], so records are built with
      int-valued fields only (the fixed [x]/[y] layout the rest of the
      pipeline assumes) and field stores write ints;
    - the symbolic executor copies arrays/objects on store while the
      interpreter mutates shared structures, so a bare variable of array
      or object type is never the right-hand side of a declaration or
      assignment (no aliases are ever created; see DESIGN.md).

    Loops are almost always of the bounded-counter form (the counter is
    protected from reassignment inside the body) so that generated programs
    usually terminate well inside the interpreter fuel budget; [Timeout] is
    still a legal outcome everywhere. *)

open Liger_lang
open Liger_tensor

type config = {
  max_stmts : int;       (* statement budget for the whole body *)
  max_depth : int;       (* nesting depth of if/while/for *)
  max_expr_depth : int;  (* operator nesting inside one expression *)
}

let default_config = { max_stmts = 12; max_depth = 2; max_expr_depth = 3 }

type st = {
  rng : Rng.t;
  cfg : config;
  mutable n_names : int;  (* fresh-name counter: names are never reused *)
  mutable budget : int;   (* remaining statement budget *)
}

let fresh_name st =
  let n = st.n_names in
  st.n_names <- n + 1;
  Printf.sprintf "v%d" n

(* weighted choice over constructors *)
let pick st weighted =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 weighted in
  let k = Rng.int st.rng total in
  let rec go k = function
    | [] -> assert false
    | (w, f) :: rest -> if k < w then f () else go (k - w) rest
  in
  go k weighted

let gen_typ st =
  pick st
    [
      (8, fun () -> Ast.Tint);
      (3, fun () -> Ast.Tbool);
      (4, fun () -> Ast.Tarray);
      (3, fun () -> Ast.Tstring);
      (2, fun () -> Ast.Tobj);
    ]

let vars_of env t = List.filter_map (fun (x, ty) -> if ty = t then Some x else None) env

let small_int st =
  match Rng.int st.rng 8 with
  | 0 -> 0
  | 1 -> 1
  | 2 -> -1
  | 3 -> Rng.int_range st.rng (-100) 100
  | _ -> Rng.int_range st.rng (-9) 9

(* Strings draw from a small alphabet plus the characters that exercise the
   pretty-printer/lexer escape path. *)
let small_str st =
  let alphabet = [| "a"; "b"; "x"; "y"; "z"; " "; "\""; "\\"; "\n"; "\t" |] in
  let n = Rng.int st.rng 4 in
  String.concat "" (List.init n (fun _ -> alphabet.(Rng.int st.rng (Array.length alphabet))))

(* Leaf of the requested type: a literal, or an in-scope variable. *)
let rec leaf st env t =
  let var_or make =
    match vars_of env t with
    | [] -> make ()
    | xs when Rng.bernoulli st.rng 0.6 -> Ast.Var (Rng.choose_list st.rng xs)
    | _ -> make ()
  in
  match t with
  | Ast.Tint -> var_or (fun () -> Ast.Int (small_int st))
  | Ast.Tbool -> var_or (fun () -> Ast.Bool (Rng.bool st.rng))
  | Ast.Tstring -> var_or (fun () -> Ast.Str (small_str st))
  | Ast.Tarray ->
      var_or (fun () ->
          Ast.ArrayLit (List.init (Rng.int st.rng 4) (fun _ -> Ast.Int (small_int st))))
  | Ast.Tobj ->
      var_or (fun () ->
          Ast.RecordLit [ ("x", Ast.Int (small_int st)); ("y", Ast.Int (small_int st)) ])

(* Negation folds literal operands so the AST matches what reparsing the
   pretty-printed source produces ([-5] lexes as one negative literal). *)
and neg e = match e with Ast.Int n -> Ast.Int (-n) | e -> Ast.Unop (Ast.Neg, e)

and gen_expr st env t depth =
  if depth <= 0 then leaf st env t
  else
    let sub t' = gen_expr st env t' (depth - 1) in
    match t with
    | Ast.Tint ->
        pick st
          [
            (4, fun () -> leaf st env t);
            ( 5,
              fun () ->
                let op =
                  Rng.choose st.rng [| Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod |]
                in
                Ast.Binop (op, sub Ast.Tint, sub Ast.Tint) );
            (1, fun () -> neg (sub Ast.Tint));
            (2, fun () -> Ast.Index (leaf st env Ast.Tarray, sub Ast.Tint));
            ( 2,
              fun () ->
                Ast.Len (leaf st env (if Rng.bool st.rng then Ast.Tarray else Ast.Tstring)) );
            ( 1,
              fun () ->
                match vars_of env Ast.Tobj with
                | [] -> leaf st env Ast.Tint
                | xs ->
                    Ast.Field
                      (Ast.Var (Rng.choose_list st.rng xs), if Rng.bool st.rng then "x" else "y") );
            ( 2,
              fun () ->
                pick st
                  [
                    (2, fun () -> Ast.Call ("abs", [ sub Ast.Tint ]));
                    ( 2,
                      fun () ->
                        Ast.Call
                          ((if Rng.bool st.rng then "min" else "max"),
                           [ sub Ast.Tint; sub Ast.Tint ]) );
                    (* bounded literal exponent: the builtin loops [e] times *)
                    ( 1,
                      fun () ->
                        Ast.Call ("pow", [ sub Ast.Tint; Ast.Int (Rng.int st.rng 5) ]) );
                    ( 1,
                      fun () -> Ast.Call ("indexOf", [ sub Ast.Tstring; sub Ast.Tstring ]) );
                    (1, fun () -> Ast.Call ("ord", [ sub Ast.Tstring ]));
                  ] );
          ]
    | Ast.Tbool ->
        pick st
          [
            (3, fun () -> leaf st env t);
            ( 5,
              fun () ->
                let op = Rng.choose st.rng [| Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge |] in
                Ast.Binop (op, sub Ast.Tint, sub Ast.Tint) );
            ( 2,
              fun () ->
                (* Eq/Ne on scalar types only: equality over symbolic
                   arrays/objects is outside the solver's theory *)
                let t' = Rng.choose st.rng [| Ast.Tint; Ast.Tbool; Ast.Tstring |] in
                Ast.Binop ((if Rng.bool st.rng then Ast.Eq else Ast.Ne), sub t', sub t') );
            ( 3,
              fun () ->
                Ast.Binop
                  ((if Rng.bool st.rng then Ast.And else Ast.Or), sub Ast.Tbool, sub Ast.Tbool) );
            (1, fun () -> Ast.Unop (Ast.Not, sub Ast.Tbool));
          ]
    | Ast.Tstring ->
        pick st
          [
            (4, fun () -> leaf st env t);
            (3, fun () -> Ast.Binop (Ast.Add, sub Ast.Tstring, sub Ast.Tstring));
            ( 2,
              fun () ->
                pick st
                  [
                    ( 1,
                      fun () ->
                        Ast.Call ("substring", [ sub Ast.Tstring; sub Ast.Tint; sub Ast.Tint ]) );
                    (1, fun () -> Ast.Call ("charAt", [ sub Ast.Tstring; sub Ast.Tint ]));
                    (1, fun () -> Ast.Call ("chr", [ sub Ast.Tint ]));
                    (1, fun () -> Ast.Call ("toString", [ sub Ast.Tint ]));
                  ] );
          ]
    | Ast.Tarray | Ast.Tobj -> container st env t depth

(* Array/object expressions that are safe as declaration/assignment
   right-hand sides: never a bare variable, so no heap aliasing arises. *)
and container st env t depth =
  let sub t' = gen_expr st env t' (max 0 (depth - 1)) in
  match t with
  | Ast.Tarray ->
      pick st
        [
          ( 2,
            fun () ->
              Ast.ArrayLit (List.init (Rng.int st.rng 4) (fun _ -> sub Ast.Tint)) );
          (1, fun () -> Ast.NewArray (sub Ast.Tint));
        ]
  | _ -> Ast.RecordLit [ ("x", sub Ast.Tint); ("y", sub Ast.Tint) ]

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* [gen_block] returns the generated block only; environment extensions made
   by inner declarations are local to the block (see the module comment). *)
let rec gen_block st env ~depth ~in_loop ~protected ~ret n =
  if n <= 0 || st.budget <= 0 then []
  else
    let stmts, env' = gen_stmt st env ~depth ~in_loop ~protected ~ret in
    (* a Return makes everything after it unreachable; stop the block *)
    let stop =
      match List.rev stmts with
      | { Ast.node = Ast.Return _; _ } :: _ -> true
      | _ -> false
    in
    stmts @ (if stop then [] else gen_block st env' ~depth ~in_loop ~protected ~ret (n - 1))

(* One generation step: a small list of statements (usually one; the
   bounded-while form emits its counter declaration too) plus the extended
   environment for the rest of the block. *)
and gen_stmt st env ~depth ~in_loop ~protected ~ret =
  st.budget <- st.budget - 1;
  let expr t = gen_expr st env t (Rng.int_range st.rng 1 st.cfg.max_expr_depth) in
  let rhs t =
    match t with
    | Ast.Tarray | Ast.Tobj -> container st env t st.cfg.max_expr_depth
    | t -> expr t
  in
  let decl () =
    let t = gen_typ st in
    let x = fresh_name st in
    ([ Ast.mk (Ast.Decl (t, x, rhs t)) ], (x, t) :: env)
  in
  let assign () =
    let assignable = List.filter (fun (x, _) -> not (List.mem x protected)) env in
    match assignable with
    | [] -> decl ()
    | _ ->
        let x, t = List.nth assignable (Rng.int st.rng (List.length assignable)) in
        ([ Ast.mk (Ast.Assign (x, rhs t)) ], env)
  in
  let store_index () =
    match vars_of env Ast.Tarray with
    | [] -> decl ()
    | xs ->
        let x = Rng.choose_list st.rng xs in
        let idx =
          if Rng.bool st.rng then Ast.Int (Rng.int st.rng 4)
          else Ast.Binop (Ast.Mod, expr Ast.Tint, Ast.Len (Ast.Var x))
        in
        ([ Ast.mk (Ast.StoreIndex (x, idx, expr Ast.Tint)) ], env)
  in
  let store_field () =
    match vars_of env Ast.Tobj with
    | [] -> decl ()
    | xs ->
        let x = Rng.choose_list st.rng xs in
        let f = if Rng.bool st.rng then "x" else "y" in
        ([ Ast.mk (Ast.StoreField (x, f, expr Ast.Tint)) ], env)
  in
  let if_ () =
    let c = expr Ast.Tbool in
    let sub = Rng.int_range st.rng 1 3 in
    let b1 = gen_block st env ~depth:(depth - 1) ~in_loop ~protected ~ret sub in
    let b2 =
      if Rng.bool st.rng then []
      else gen_block st env ~depth:(depth - 1) ~in_loop ~protected ~ret sub
    in
    ([ Ast.mk (Ast.If (c, b1, b2)) ], env)
  in
  let for_ () =
    let i = fresh_name st in
    let k = Rng.int_range st.rng 1 5 in
    let init = Ast.mk (Ast.Decl (Ast.Tint, i, Ast.Int 0)) in
    let cond = Ast.Binop (Ast.Lt, Ast.Var i, Ast.Int k) in
    let update = Ast.mk (Ast.Assign (i, Ast.Binop (Ast.Add, Ast.Var i, Ast.Int 1))) in
    let body =
      gen_block st ((i, Ast.Tint) :: env) ~depth:(depth - 1) ~in_loop:true
        ~protected:(i :: protected) ~ret
        (Rng.int_range st.rng 1 3)
    in
    ([ Ast.mk (Ast.For (init, cond, update, body)) ], env)
  in
  let while_ () =
    (* counter declared before the loop; incremented first in the body so a
       generated [continue] cannot skip the increment *)
    let i = fresh_name st in
    let k = Rng.int_range st.rng 1 5 in
    let decl = Ast.mk (Ast.Decl (Ast.Tint, i, Ast.Int 0)) in
    let inc = Ast.mk (Ast.Assign (i, Ast.Binop (Ast.Add, Ast.Var i, Ast.Int 1))) in
    let body =
      inc
      :: gen_block st ((i, Ast.Tint) :: env) ~depth:(depth - 1) ~in_loop:true
           ~protected:(i :: protected) ~ret
           (Rng.int_range st.rng 1 2)
    in
    let w = Ast.mk (Ast.While (Ast.Binop (Ast.Lt, Ast.Var i, Ast.Int k), body)) in
    ([ decl; w ], (i, Ast.Tint) :: env)
  in
  let return_ () = ([ Ast.mk (Ast.Return (expr ret)) ], env) in
  let jump () =
    ([ Ast.mk (if Rng.bool st.rng then Ast.Break else Ast.Continue) ], env)
  in
  let base =
    [ (4, decl); (3, assign); (2, store_index); (1, store_field); (1, return_) ]
  in
  let nested =
    if depth > 0 then [ (3, if_); (2, for_); (1, while_) ] else []
  in
  let jumps = if in_loop then [ (1, jump) ] else [] in
  pick st (base @ nested @ jumps)

(* ------------------------------------------------------------------ *)
(* Whole methods                                                       *)
(* ------------------------------------------------------------------ *)

(** Generate one well-typed method.  Deterministic given [rng] (up to the
    global statement-id counter, which oracles never depend on). *)
let gen ?(config = default_config) rng : Ast.meth =
  let st = { rng; cfg = config; n_names = 0; budget = config.max_stmts } in
  let n_params = Rng.int_range rng 1 3 in
  let params = List.init n_params (fun i -> (gen_typ st, Printf.sprintf "p%d" i)) in
  let ret = gen_typ st in
  let env = List.map (fun (t, x) -> (x, t)) params in
  let body =
    gen_block st env ~depth:config.max_depth ~in_loop:false ~protected:[] ~ret
      config.max_stmts
  in
  (* guaranteed final return so "fell through without a value" only appears
     if the shrinker deliberately removes it *)
  let body =
    match List.rev body with
    | { Ast.node = Ast.Return _; _ } :: _ -> body
    | _ -> body @ [ Ast.mk (Ast.Return (leaf st env ret)) ]
  in
  let m = { Ast.mname = "fuzzed"; params; ret; body } in
  (match Typecheck.check m with
  | Ok () -> ()
  | Error e ->
      (* a generator soundness bug: surface it loudly with the program *)
      invalid_arg
        (Printf.sprintf "Fuzz.Gen produced an ill-typed method (line %d: %s):\n%s" e.line
           e.msg (Pretty.meth_to_string m)));
  m
