(** The differential oracle battery.

    Each oracle takes a seed (all randomness is recreated from it, so a
    verdict is a pure function of [(seed, program)] — which is what makes
    shrinking and replay deterministic) and a generated well-typed method,
    and returns {!Pass}, {!Fail} or {!Skip}.  The seven oracles:

    1. [roundtrip]   — pretty-print → lex/parse → AST equality;
    2. [soundness]   — well-typed programs never raise interpreter
                       type-confusion errors on random inputs;
    3. [symexec]     — a solved symbolic path replayed concretely follows
                       the same (sid, branch) signature and returns the
                       value the symbolic engine predicted;
    4. [analysis]    — constant folding preserves outcome classes and
                       return values; the return-value slicer preserves
                       returned values;
    5. [autodiff]    — backprop gradients match central finite differences
                       on randomly shaped model fragments (ignores the
                       program: the random shapes come from the seed);
    6. [absint]      — every concrete state observed by the interpreter
                       lies inside the abstract interpreter's interval ×
                       parity envelope at that statement;
    7. [determinism] — the jobs=1 and jobs=N parallel pipelines produce
                       identical per-method testgen summaries (batch-level:
                       it maps a whole chunk of programs over the pool). *)

open Liger_lang
open Liger_tensor
open Liger_symexec
open Liger_testgen
open Liger_trace
open Liger_nn
open Liger_analysis
module Parallel = Liger_parallel.Parallel

type verdict = Pass | Fail of string | Skip of string

type kind =
  | Per_prog of (seed:int -> Ast.meth -> verdict)
  | Per_batch of (seed:int -> Ast.meth array -> (int * string) list)
      (* failing (index, message) pairs over a chunk of programs *)

type t = { name : string; doc : string; kind : kind }

(* ------------------------------------------------------------------ *)
(* 1. pretty-printer / parser roundtrip                                 *)
(* ------------------------------------------------------------------ *)

(* ids and lines are synthetic; a reparse can't reproduce them *)
let strip_ids =
  Ast.map_meth ~fexpr:Fun.id ~fstmt:(fun s -> { s with Ast.sid = 0; Ast.line = 0 })

(* [- (Int n)] and [Int (-n)] print identically, so compare modulo the
   folding the parser itself performs on negative literals *)
let norm_neg =
  Ast.map_meth ~fstmt:Fun.id ~fexpr:(function
    | Ast.Unop (Ast.Neg, Ast.Int n) -> Ast.Int (-n)
    | e -> e)

let canon m = strip_ids (norm_neg m)

let check_roundtrip ~seed:_ (m : Ast.meth) =
  let src = Pretty.meth_to_string m in
  match Parser.method_of_string src with
  | exception e -> Fail ("reparse failed: " ^ Printexc.to_string e)
  | m' ->
      if Ast.equal_meth (canon m) (canon m') then Pass
      else Fail "pretty-print/parse roundtrip changed the AST"

(* ------------------------------------------------------------------ *)
(* 2. typecheck soundness under the interpreter                         *)
(* ------------------------------------------------------------------ *)

(* The interpreter's dynamic type errors, as opposed to its legitimate
   runtime faults (division by zero, bad index, builtin range errors...).
   A well-typed program must never produce one of these. *)
let is_type_confusion msg =
  List.exists
    (fun prefix -> String.length msg >= String.length prefix
                   && String.sub msg 0 (String.length prefix) = prefix)
    [ "expected "; "type error"; "unbound variable"; "no field";
      "length of non-sequence"; "unknown builtin"; "arity mismatch" ]

let soundness_runs = 8

let check_soundness ~seed (m : Ast.meth) =
  let rng = Rng.create seed in
  let pool = Randgen.create_pool () in
  let rec go i =
    if i >= soundness_runs then Pass
    else
      let args = Randgen.args ~pool rng m in
      match Interp.run ~fuel:4000 m args with
      | Interp.Crashed msg when is_type_confusion msg ->
          Fail
            (Printf.sprintf "type confusion %S on args [%s]" msg
               (String.concat "; " (List.map Value.to_display args)))
      | _ ->
          List.iter (Randgen.remember pool) args;
          go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* 3. symbolic path replay vs. concrete ground truth                    *)
(* ------------------------------------------------------------------ *)

let symexec_config = { Symexec.max_paths = 24; max_steps = 300; max_unrolls = 12 }
let symexec_replays = 4  (* solved paths replayed per program *)

let sig_to_string s =
  String.concat ","
    (List.map
       (fun (sid, b) ->
         match b with
         | None -> string_of_int sid
         | Some b -> Printf.sprintf "%d%c" sid (if b then 'T' else 'F'))
       s)

let check_symexec ~seed (m : Ast.meth) =
  let rng = Rng.create seed in
  let shape = Symexec.shape_of_params m.Ast.params in
  let vars = Symexec.shape_inputs m shape in
  let results = Symexec.explore ~config:symexec_config m ~shape in
  let checked = ref 0 in
  let rec go = function
    | [] -> if !checked = 0 then Skip "no solvable returning path" else Pass
    | r :: rest -> (
        match r.Symexec.outcome with
        | Symexec.Sym_aborted _ -> go rest
        | Symexec.Sym_returned sym_ret -> (
            if !checked >= symexec_replays then Pass
            else
              match Solver.solve rng ~vars r.Symexec.pc with
              | None -> go rest
              | Some model -> (
                  match
                    ( List.map (fun (_, v) -> Symval.eval model v) shape,
                      Symval.eval model sym_ret )
                  with
                  | exception Interp.Runtime_error msg ->
                      (* the path condition should rule out crashing
                         evaluations; treat residue as a failure *)
                      Fail ("model evaluation crashed: " ^ msg)
                  | args, expected ->
                      incr checked;
                      let sg = ref [] in
                      let outcome =
                        Interp.run ~fuel:(symexec_config.Symexec.max_steps + 50)
                          ~on_step:(fun s ->
                            sg := (s.Interp.step_sid, s.Interp.step_branch) :: !sg)
                          m args
                      in
                      let concrete_sig = List.rev !sg in
                      if concrete_sig <> r.Symexec.signature then
                        Fail
                          (Printf.sprintf
                             "path signature diverged on args [%s]: symbolic [%s] vs \
                              concrete [%s]"
                             (String.concat "; " (List.map Value.to_display args))
                             (sig_to_string r.Symexec.signature)
                             (sig_to_string concrete_sig))
                      else
                        match outcome with
                        | Interp.Returned v when Value.equal v expected -> go rest
                        | Interp.Returned v ->
                            Fail
                              (Printf.sprintf "return value diverged: symbolic %s vs concrete %s"
                                 (Value.to_display expected) (Value.to_display v))
                        | Interp.Timeout -> Fail "concrete replay timed out on a bounded path"
                        | Interp.Crashed msg ->
                            Fail
                              (Printf.sprintf "concrete replay crashed (%s) on args [%s]" msg
                                 (String.concat "; " (List.map Value.to_display args))))))
  in
  go results

(* ------------------------------------------------------------------ *)
(* 4. analysis semantic preservation                                    *)
(* ------------------------------------------------------------------ *)

let analysis_runs = 6

(* Statement-level slice: keep control flow, returns and definitions of
   return-relevant variables (exactly [Slice.slice_sids]). *)
let slice_meth (m : Ast.meth) =
  let keep = Slice.slice_sids m in
  let rec go_block b =
    List.filter_map
      (fun s ->
        let node =
          match s.Ast.node with
          | Ast.If (c, b1, b2) -> Some (Ast.If (c, go_block b1, go_block b2))
          | Ast.While (c, b) -> Some (Ast.While (c, go_block b))
          | Ast.For (init, c, u, b) -> Some (Ast.For (init, c, u, go_block b))
          | n -> if List.mem s.Ast.sid keep then Some n else None
        in
        Option.map (fun node -> { s with Ast.node }) node)
      b
  in
  { m with Ast.body = go_block m.Ast.body }

let outcome_class = function
  | Interp.Returned _ -> "returned"
  | Interp.Timeout -> "timeout"
  | Interp.Crashed _ -> "crashed"

let check_analysis ~seed (m : Ast.meth) =
  let rng = Rng.create seed in
  let folded = Constprop.fold_meth m in
  let sliced = slice_meth m in
  let pool = Randgen.create_pool () in
  let rec go i =
    if i >= analysis_runs then Pass
    else
      let args = Randgen.args ~pool rng m in
      let o1 = Interp.run ~fuel:4000 m (List.map Value.snapshot args) in
      let o2 = Interp.run ~fuel:4000 folded (List.map Value.snapshot args) in
      match (o1, o2) with
      | Interp.Returned x, Interp.Returned y when not (Value.equal x y) ->
          Fail
            (Printf.sprintf "constant folding changed the return value: %s vs %s"
               (Value.to_display x) (Value.to_display y))
      | o1, o2 when outcome_class o1 <> outcome_class o2 ->
          Fail
            (Printf.sprintf "constant folding changed the outcome: %s vs %s"
               (outcome_class o1) (outcome_class o2))
      | Interp.Returned x, _ -> (
          (* slicing must preserve the returned value whenever the original
             returns; it may legitimately remove crashes/timeouts of
             sliced-away statements, so other outcome classes are free *)
          match Interp.run ~fuel:4000 sliced (List.map Value.snapshot args) with
          | Interp.Returned y when Value.equal x y ->
              List.iter (Randgen.remember pool) args;
              go (i + 1)
          | o ->
              Fail
                (Printf.sprintf "slicing changed a returned run: %s vs %s (%s)"
                   (Value.to_display x) (outcome_class o)
                   (match o with Interp.Crashed msg -> msg | _ -> "")))
      | _ ->
          List.iter (Randgen.remember pool) args;
          go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* 5. autodiff vs. central finite differences                           *)
(* ------------------------------------------------------------------ *)

(* Finite differences in float64 with eps = 1e-5 leave ~1e-6 of truncation
   and cancellation noise on O(1) values, so the relative tolerance is 5e-3
   — the fragments below stack several nonlinearities, which amplifies the
   noise beyond what a single layer needs (2e-3 in test_nn.ml). *)
let fd_eps = 1e-5
let fd_tol = 5e-3

let grad_check store build =
  let tape = Autodiff.tape () in
  let loss = build tape in
  Autodiff.backward tape loss;
  let grads =
    Param.fold store ~init:[] (fun acc p ->
        (p.Param.name, Tensor.to_array p.Param.grad) :: acc)
  in
  Param.zero_grads store;
  let eval () =
    let tape = Autodiff.tape () in
    let l = build tape in
    let v = Autodiff.scalar_value l in
    Autodiff.discard tape;
    v
  in
  let bad = ref None in
  Param.iter store (fun p ->
      if !bad = None then
        let analytic = List.assoc p.Param.name grads in
        let value = p.Param.value in
        Array.iteri
          (fun i _ ->
            if !bad = None then begin
              let orig = Tensor.get_idx value i in
              Tensor.set_idx value i (orig +. fd_eps);
              let up = eval () in
              Tensor.set_idx value i (orig -. fd_eps);
              let down = eval () in
              Tensor.set_idx value i orig;
              let numeric = (up -. down) /. (2.0 *. fd_eps) in
              if Float.abs (analytic.(i) -. numeric) > fd_tol *. (1.0 +. Float.abs numeric)
              then
                bad :=
                  Some
                    (Printf.sprintf "%s[%d]: analytic %.6g vs numeric %.6g" p.Param.name i
                       analytic.(i) numeric)
            end)
          analytic);
  match !bad with None -> Pass | Some msg -> Fail msg

let rand_vec rng n = Array.init n (fun _ -> Rng.uniform rng (-1.0) 1.0)

let rec rand_tree rng depth =
  let labels = [| "Assign"; "Binop"; "x"; "y"; "+"; "1" |] in
  let label = labels.(Rng.int rng (Array.length labels)) in
  if depth <= 0 || Rng.bernoulli rng 0.4 then Encode.Leaf label
  else
    Encode.Node (label, List.init (Rng.int_range rng 1 3) (fun _ -> rand_tree rng (depth - 1)))

(* A randomly shaped fragment touching one of the layer families; loss is
   always sum(y*y) over the final vector so it is a scalar. *)
let check_autodiff ~seed (_ : Ast.meth) =
  let rng = Rng.create seed in
  let store = Param.create_store ~seed:(1 + (seed land 0xFFFF)) () in
  let d_in = Rng.int_range rng 2 4 in
  let d_h = Rng.int_range rng 2 4 in
  let steps = Rng.int_range rng 1 3 in
  let xs = List.init steps (fun _ -> rand_vec rng d_in) in
  let scalarize tape y = Autodiff.sum tape (Autodiff.mul tape y y) in
  let build =
    match Rng.int rng 7 with
    | 0 ->
        let l = Linear.create store "lin" ~dim_in:d_in ~dim_out:d_h in
        fun tape ->
          scalarize tape (Linear.forward_tanh l tape (Autodiff.const tape (List.hd xs)))
    | 1 ->
        let cell = Rnn_cell.create ~kind:Rnn_cell.Vanilla store "rnn" ~dim_in:d_in ~dim_hidden:d_h in
        fun tape ->
          scalarize tape (Rnn_cell.last cell tape (List.map (Autodiff.const tape) xs))
    | 2 ->
        let cell = Rnn_cell.create ~kind:Rnn_cell.Gru store "gru" ~dim_in:d_in ~dim_hidden:d_h in
        fun tape ->
          scalarize tape (Rnn_cell.last cell tape (List.map (Autodiff.const tape) xs))
    | 3 ->
        let cell = Lstm.create store "lstm" ~dim_in:d_in ~dim_hidden:d_h in
        fun tape ->
          scalarize tape (Lstm.last cell tape (List.map (Autodiff.const tape) xs))
    | 4 ->
        let cell = Treelstm.create store "tree" ~dim_in:d_h ~dim_hidden:d_h in
        let emb = Param.embedding store "emb" 6 d_h in
        let tree = rand_tree rng 2 in
        let label_id = function
          | "Assign" -> 0 | "Binop" -> 1 | "x" -> 2 | "y" -> 3 | "+" -> 4 | _ -> 5
        in
        fun tape ->
          let embed tok = Autodiff.row tape emb (label_id tok) in
          scalarize tape (Treelstm.embed_tree cell tape ~embed tree)
    | 5 ->
        let att = Attention.create store "att" ~dim_h:d_in ~dim_q:d_h ~dim_att:d_h in
        let q = rand_vec rng d_h in
        let hs = Array.init (Rng.int_range rng 1 3) (fun _ -> rand_vec rng d_in) in
        fun tape ->
          let q = Autodiff.const tape q in
          let hs = Array.map (Autodiff.const tape) hs in
          scalarize tape (snd (Attention.fuse att tape ~q hs))
    | _ ->
        let vocab = Vocab.create () in
        List.iter (fun t -> ignore (Vocab.add vocab t)) [ "get"; "max"; "sum" ];
        Vocab.freeze vocab;
        let embedding = Embedding_layer.create store "emb" vocab ~dim:d_in in
        let dec = Decoder.create store "dec" embedding ~dim_hidden:d_h ~dim_mem:d_in in
        let mem = Array.init (Rng.int_range rng 1 2) (fun _ -> rand_vec rng d_in) in
        let prog = rand_vec rng d_in in
        let targets = List.init (Rng.int_range rng 1 2) (fun _ -> 4 + Rng.int rng 3) in
        fun tape ->
          Decoder.loss dec tape
            ~memory:(Array.map (Autodiff.const tape) mem)
            ~program_embedding:(Autodiff.const tape prog) ~target_ids:targets
  in
  grad_check store build

(* ------------------------------------------------------------------ *)
(* 6. abstract interpretation soundness                                 *)
(* ------------------------------------------------------------------ *)

(* Every concrete state the interpreter passes through must lie inside the
   abstract envelope: after executing statement [sid], each bound variable's
   value must be a member of the abstract value the interval×parity analysis
   computed for the post-state of that statement ([record] fires after the
   statement, so the right envelope is [after], not [before]).  A bound
   concrete variable that the analysis maps to ⊥ — or a concretely executed
   statement the analysis claims is unreached — is a soundness bug. *)

let absint_runs = 6

let check_absint ~seed (m : Ast.meth) =
  let r = Absint.analyze m in
  let rng = Rng.create seed in
  let pool = Randgen.create_pool () in
  let bad = ref None in
  let observe (s : Interp.step) =
    if !bad = None then
      match Cfg.node_of_sid r.Absint.cfg s.Interp.step_sid with
      | None ->
          bad :=
            Some (Printf.sprintf "executed statement #%d has no CFG node" s.Interp.step_sid)
      | Some u ->
          let env = r.Absint.after.(u) in
          List.iter
            (fun (x, v) ->
              match v with
              | None -> ()
              | Some v ->
                  if !bad = None && not (Absint.value_in (Absint.env_lookup env x) v) then
                    bad :=
                      Some
                        (Printf.sprintf "after #%d, %s = %s escapes its abstract value %s"
                           s.Interp.step_sid x (Value.to_display v)
                           (Absint.aval_to_string (Absint.env_lookup env x))))
            s.Interp.step_env
  in
  let rec go i =
    if i >= absint_runs then Pass
    else
      let args = Randgen.args ~pool rng m in
      ignore (Interp.run ~fuel:4000 ~on_step:observe m args);
      match !bad with
      | Some msg ->
          Fail
            (Printf.sprintf "%s on args [%s]" msg
               (String.concat "; " (List.map Value.to_display args)))
      | None ->
          List.iter (Randgen.remember pool) args;
          go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* 7. jobs=1 vs jobs=N pipeline determinism                             *)
(* ------------------------------------------------------------------ *)

let det_budget = { Feedback.max_attempts = 30; target_paths = 6; per_path = 2; fuel = 2000 }

(* Everything observable about one testgen run, comparable across pools. *)
let det_summary (r : Feedback.result) =
  ( r.Feedback.n_attempts,
    r.Feedback.n_crashes,
    r.Feedback.n_timeouts,
    r.Feedback.gave_up,
    List.map Exec_trace.path_key r.Feedback.traces )

let det_summary_to_string (a, c, t, g, keys) =
  Printf.sprintf "attempts=%d crashes=%d timeouts=%d gave_up=%b paths=[%s]" a c t g
    (String.concat ";" (List.map (fun (h, n) -> Printf.sprintf "%d/%d" h n) keys))

let check_determinism ~seed (meths : Ast.meth array) =
  let orig = Parallel.jobs () in
  let with_jobs n =
    Parallel.set_jobs n;
    Parallel.map_rng (Rng.create seed)
      (fun r m -> det_summary (Feedback.generate ~budget:det_budget r m))
      meths
  in
  let seq = with_jobs 1 in
  let par = with_jobs (max 2 orig) in
  Parallel.set_jobs orig;
  let failures = ref [] in
  Array.iteri
    (fun i a ->
      let b = par.(i) in
      if a <> b then
        failures :=
          ( i,
            Printf.sprintf "jobs=1 {%s} vs jobs=%d {%s}" (det_summary_to_string a)
              (max 2 orig) (det_summary_to_string b) )
          :: !failures)
    seq;
  List.rev !failures

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let all : t list =
  [
    { name = "roundtrip"; doc = "pretty-print -> parse -> AST equality";
      kind = Per_prog check_roundtrip };
    { name = "soundness"; doc = "well-typed programs never type-confuse the interpreter";
      kind = Per_prog check_soundness };
    { name = "symexec"; doc = "solved symbolic paths replay concretely";
      kind = Per_prog check_symexec };
    { name = "analysis"; doc = "constant folding and slicing preserve behaviour";
      kind = Per_prog check_analysis };
    { name = "autodiff"; doc = "backprop matches central finite differences";
      kind = Per_prog check_autodiff };
    { name = "absint"; doc = "concrete states stay inside the abstract envelope";
      kind = Per_prog check_absint };
    { name = "determinism"; doc = "jobs=1 and jobs=N testgen summaries agree";
      kind = Per_batch check_determinism };
  ]

let find name = List.find_opt (fun o -> o.name = name) all

(** Run any oracle against a single program (batch oracles see a singleton
    chunk) — the uniform entry point shrinking and replay use. *)
let check_one (o : t) ~seed m =
  match o.kind with
  | Per_prog f -> f ~seed m
  | Per_batch f -> (
      match f ~seed [| m |] with
      | [] -> Pass
      | (_, msg) :: _ -> Fail msg)
