(** Greedy shrinking of failing fuzz programs.

    The contract: every candidate edit must (a) keep the method well-typed
    (re-validated through {!Liger_lang.Typecheck} — the [validate] hook
    exists only so ill-typedness itself can be shrunk) and (b) keep the
    failure predicate true.  Edits are tried in rounds — statement deletion,
    branch flattening, expression hole-filling, integer-constant narrowing —
    and any accepted edit restarts the rounds, so the result is a local
    minimum: no single remaining edit both validates and still fails. *)

open Liger_lang

type result = {
  shrunk : Ast.meth;
  steps : int;     (* accepted edits *)
  attempts : int;  (* candidate edits tried (accepted or not) *)
}

(* ------------------------------------------------------------------ *)
(* Statement positions                                                 *)
(* ------------------------------------------------------------------ *)

(* Statements are indexed in preorder over blocks; for-headers are part of
   their loop and are not separate positions. *)
let count_stmts (m : Ast.meth) =
  let n = ref 0 in
  let rec go_block b = List.iter go_stmt b
  and go_stmt s =
    incr n;
    match s.Ast.node with
    | Ast.If (_, b1, b2) ->
        go_block b1;
        go_block b2
    | Ast.While (_, b) | Ast.For (_, _, _, b) -> go_block b
    | _ -> ()
  in
  go_block m.Ast.body;
  !n

(* Rebuild [m] with [edit] applied at preorder statement position [k]:
   [edit s] returns the statements to splice in place of [s], or None to
   leave it (used to skip inapplicable edits). *)
let edit_nth (m : Ast.meth) k edit =
  let i = ref (-1) in
  let changed = ref false in
  let rec go_block b = List.concat_map go_stmt b
  and go_stmt s =
    incr i;
    if !i = k then
      match edit s with
      | Some stmts ->
          changed := true;
          stmts
      | None -> [ descend s ]
    else [ descend s ]
  and descend s =
    match s.Ast.node with
    | Ast.If (c, b1, b2) -> { s with Ast.node = Ast.If (c, go_block b1, go_block b2) }
    | Ast.While (c, b) -> { s with Ast.node = Ast.While (c, go_block b) }
    | Ast.For (init, c, u, b) -> { s with Ast.node = Ast.For (init, c, u, go_block b) }
    | _ -> s
  in
  let body = go_block m.Ast.body in
  if !changed then Some { m with Ast.body } else None

(* Note: deleting position [k] removes that statement's whole subtree. *)
let delete_nth m k = edit_nth m k (fun _ -> Some [])

(* Replace a compound statement by one of its sub-blocks. *)
let flatten_nth m k which =
  edit_nth m k (fun s ->
      match (s.Ast.node, which) with
      | Ast.If (_, b1, _), 0 -> Some b1
      | Ast.If (_, _, b2), 1 -> Some b2
      | Ast.While (_, b), 0 -> Some b
      | Ast.For (init, _, _, b), 0 -> Some (init :: b)
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Expression positions                                                *)
(* ------------------------------------------------------------------ *)

(* Every expression node in the method, indexed in preorder (statement
   order, then outer-before-inner within one expression). *)
let fold_exprs f acc (m : Ast.meth) =
  let acc = ref acc in
  let rec go_expr e =
    acc := f !acc e;
    match e with
    | Ast.Int _ | Ast.Bool _ | Ast.Str _ | Ast.Var _ -> ()
    | Ast.Binop (_, a, b) ->
        go_expr a;
        go_expr b
    | Ast.Unop (_, a) | Ast.Len a | Ast.NewArray a -> go_expr a
    | Ast.Index (a, i) ->
        go_expr a;
        go_expr i
    | Ast.Field (a, _) -> go_expr a
    | Ast.Call (_, args) -> List.iter go_expr args
    | Ast.ArrayLit es -> List.iter go_expr es
    | Ast.RecordLit fs -> List.iter (fun (_, e) -> go_expr e) fs
  in
  (* visit order must match [replace_expr_nth] exactly: for a [For] that is
     init exprs, condition, update exprs, then the body *)
  let go_stmt_exprs s =
    match s.Ast.node with
    | Ast.Decl (_, _, e) | Ast.Assign (_, e) | Ast.Return e | Ast.StoreField (_, _, e) ->
        go_expr e
    | Ast.StoreIndex (_, i, e) ->
        go_expr i;
        go_expr e
    | Ast.If _ | Ast.While _ | Ast.For _ | Ast.Break | Ast.Continue -> ()
  in
  let rec go_block b = List.iter go_stmt b
  and go_stmt s =
    match s.Ast.node with
    | Ast.If (c, b1, b2) ->
        go_expr c;
        go_block b1;
        go_block b2
    | Ast.While (c, b) ->
        go_expr c;
        go_block b
    | Ast.For (init, c, u, b) ->
        go_stmt_exprs init;
        go_expr c;
        go_stmt_exprs u;
        go_block b
    | _ -> go_stmt_exprs s
  in
  go_block m.Ast.body;
  !acc

let count_exprs m = fold_exprs (fun n _ -> n + 1) 0 m

let nth_expr m k =
  let found = ref None in
  let _ =
    fold_exprs
      (fun i e ->
        if i = k then found := Some e;
        i + 1)
      0 m
  in
  !found

(* Rebuild with expression position [k] replaced by [e']. *)
let replace_expr_nth (m : Ast.meth) k e' =
  let i = ref (-1) in
  let rec go_expr e =
    incr i;
    if !i = k then e'
    else
      match e with
      | Ast.Int _ | Ast.Bool _ | Ast.Str _ | Ast.Var _ -> e
      | Ast.Binop (op, a, b) ->
          let a = go_expr a in
          let b = go_expr b in
          Ast.Binop (op, a, b)
      | Ast.Unop (op, a) -> Ast.Unop (op, go_expr a)
      | Ast.Len a -> Ast.Len (go_expr a)
      | Ast.NewArray a -> Ast.NewArray (go_expr a)
      | Ast.Index (a, ix) ->
          let a = go_expr a in
          let ix = go_expr ix in
          Ast.Index (a, ix)
      | Ast.Field (a, f) -> Ast.Field (go_expr a, f)
      | Ast.Call (f, args) -> Ast.Call (f, List.map go_expr args)
      | Ast.ArrayLit es -> Ast.ArrayLit (List.map go_expr es)
      | Ast.RecordLit fs -> Ast.RecordLit (List.map (fun (n, e) -> (n, go_expr e)) fs)
  in
  let go_header s =
    match s.Ast.node with
    | Ast.Decl (t, x, e) -> { s with Ast.node = Ast.Decl (t, x, go_expr e) }
    | Ast.Assign (x, e) -> { s with Ast.node = Ast.Assign (x, go_expr e) }
    | Ast.Return e -> { s with Ast.node = Ast.Return (go_expr e) }
    | Ast.StoreField (x, f, e) -> { s with Ast.node = Ast.StoreField (x, f, go_expr e) }
    | Ast.StoreIndex (x, ix, e) ->
        let ix = go_expr ix in
        let e = go_expr e in
        { s with Ast.node = Ast.StoreIndex (x, ix, e) }
    | _ -> s
  in
  let rec go_block b = List.map go_stmt b
  and go_stmt s =
    match s.Ast.node with
    | Ast.If (c, b1, b2) ->
        let c = go_expr c in
        { s with Ast.node = Ast.If (c, go_block b1, go_block b2) }
    | Ast.While (c, b) ->
        let c = go_expr c in
        { s with Ast.node = Ast.While (c, go_block b) }
    | Ast.For (init, c, u, b) ->
        let init = go_header init in
        let c = go_expr c in
        let u = go_header u in
        { s with Ast.node = Ast.For (init, c, u, go_block b) }
    | _ -> go_header s
  in
  { m with Ast.body = go_block m.Ast.body }

(* Hole-filling candidates for one expression: its direct subexpressions
   (same position often keeps the type) and the simplest literals of each
   type; the typecheck gate discards the ill-typed ones. *)
let candidates_for e =
  let children =
    match e with
    | Ast.Binop (_, a, b) | Ast.Index (a, b) -> [ a; b ]
    | Ast.Unop (_, a) | Ast.Len a | Ast.NewArray a | Ast.Field (a, _) -> [ a ]
    | Ast.Call (_, args) -> args
    | Ast.ArrayLit es -> es
    | Ast.RecordLit fs -> List.map snd fs
    | _ -> []
  in
  let narrowed =
    match e with
    | Ast.Int n when n <> 0 -> [ Ast.Int 0; Ast.Int (n / 2) ]
    | _ -> []
  in
  let leaves =
    [ Ast.Int 0; Ast.Bool false; Ast.Str ""; Ast.ArrayLit [];
      Ast.RecordLit [ ("x", Ast.Int 0); ("y", Ast.Int 0) ] ]
  in
  List.filter (fun e' -> e' <> e) (children @ narrowed @ leaves)

(* ------------------------------------------------------------------ *)
(* The greedy loop                                                     *)
(* ------------------------------------------------------------------ *)

(** Shrink [m0] while [still_fails] holds.  [validate] defaults to
    well-typedness; [max_attempts] bounds the total number of candidate
    evaluations (each one runs [still_fails], i.e. the failing oracle). *)
let run ?(validate = Typecheck.is_well_typed) ?(max_attempts = 2000) ~still_fails m0 =
  let attempts = ref 0 in
  let steps = ref 0 in
  let accept m =
    incr attempts;
    !attempts <= max_attempts && validate m && still_fails m
  in
  let try_first candidates =
    List.find_map
      (fun lazy_m ->
        if !attempts > max_attempts then None
        else match lazy_m () with Some m when accept m -> Some m | _ -> None)
      candidates
  in
  let one_round m =
    let n_stmts = count_stmts m in
    let stmt_edits =
      List.concat
        (List.init n_stmts (fun k ->
             [ (fun () -> delete_nth m k);
               (fun () -> flatten_nth m k 0);
               (fun () -> flatten_nth m k 1) ]))
    in
    match try_first stmt_edits with
    | Some m' -> Some m'
    | None ->
        let n_exprs = count_exprs m in
        let expr_edits =
          List.concat
            (List.init n_exprs (fun k ->
                 match nth_expr m k with
                 | None -> []
                 | Some e ->
                     List.map
                       (fun e' () -> Some (replace_expr_nth m k e'))
                       (candidates_for e)))
        in
        try_first expr_edits
  in
  let rec go m =
    if !attempts > max_attempts then m
    else match one_round m with Some m' -> incr steps; go m' | None -> m
  in
  let shrunk = go m0 in
  { shrunk; steps = !steps; attempts = !attempts }
