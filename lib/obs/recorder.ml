(** The flight recorder: a fixed-size per-domain ring buffer of recent
    span begin/end and log events, cheap enough to leave on for the whole
    of a multi-hour run.

    Unlike {!Span}, which keeps every event until exit (bounded only by
    the trace cap) and is therefore opt-in, the recorder keeps the *last
    N* events per domain and is meant as a postmortem forensic trail: on
    an uncaught exception, fatal signal, or training abort, {!write}
    dumps the surviving events plus a final metrics snapshot to a JSON
    file under the run directory (see {!Obs.crash_dump}).

    The overhead contract matches the rest of [lib/obs]: every recording
    entry point checks one atomic flag and returns immediately when the
    recorder is off — nothing is allocated or boxed on the disabled
    path.  When on, recording is a couple of stores into a pre-existing
    array slot per event; rings are per-domain ([Domain.DLS]) so there
    is no locking on the hot path (the global sequence counter is one
    atomic fetch-and-add). *)

type kind = Begin | End | Note

type event = {
  seq : int;      (* global order across domains; -1 marks an empty slot *)
  ts : float;     (* absolute unix time *)
  dom : int;      (* domain id *)
  kind : kind;
  name : string;
  detail : string;
}

let empty_slot = { seq = -1; ts = 0.0; dom = -1; kind = Note; name = ""; detail = "" }

type ring = {
  rdom : int;
  mutable slots : event array;
  mutable n : int;  (* total events ever recorded on this domain *)
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let default_capacity = 512

let capacity_ref = ref None

(** Ring capacity per domain: [LIGER_FLIGHT_CAP], default 512. *)
let capacity () =
  match !capacity_ref with
  | Some c -> c
  | None ->
      let c =
        match Sys.getenv_opt "LIGER_FLIGHT_CAP" with
        | Some s -> (
            match int_of_string_opt (String.trim s) with
            | Some c when c > 0 -> c
            | _ ->
                Printf.eprintf "liger: ignoring LIGER_FLIGHT_CAP=%S (expected a positive int)\n%!" s;
                default_capacity)
        | None -> default_capacity
      in
      capacity_ref := Some c;
      c

let seq_counter = Atomic.make 0

(* every domain registers its ring on first use; rings survive the domain
   (a retired pool worker's last events still reach the postmortem) *)
let rings_mutex = Mutex.create ()
let rings : ring list ref = ref []

let ring_key =
  Domain.DLS.new_key (fun () ->
      let r =
        { rdom = (Domain.self () :> int); slots = Array.make (capacity ()) empty_slot; n = 0 }
      in
      Mutex.lock rings_mutex;
      rings := r :: !rings;
      Mutex.unlock rings_mutex;
      r)

let record kind name detail =
  if Atomic.get enabled_flag then begin
    let r = Domain.DLS.get ring_key in
    let ev =
      {
        seq = Atomic.fetch_and_add seq_counter 1;
        ts = Unix.gettimeofday ();
        dom = r.rdom;
        kind;
        name;
        detail;
      }
    in
    r.slots.(r.n mod Array.length r.slots) <- ev;
    r.n <- r.n + 1
  end

let span_begin name = record Begin name ""
let span_end name = record End name ""

(** [note ~detail name] drops a breadcrumb into the ring.  Guard any
    allocation needed to build [detail] behind {!enabled} at the call
    site — [note] itself only pays the one-branch check, but a caller
    that formats a string first has already paid for it. *)
let note ?(detail = "") name = record Note name detail

(** Resize every ring (tests).  Discards recorded events. *)
let set_capacity c =
  if c <= 0 then invalid_arg "Recorder.set_capacity";
  Mutex.lock rings_mutex;
  capacity_ref := Some c;
  List.iter
    (fun r ->
      r.slots <- Array.make c empty_slot;
      r.n <- 0)
    !rings;
  Mutex.unlock rings_mutex

let reset () =
  Mutex.lock rings_mutex;
  List.iter
    (fun r ->
      Array.fill r.slots 0 (Array.length r.slots) empty_slot;
      r.n <- 0)
    !rings;
  Mutex.unlock rings_mutex

(** Surviving events across all domains, in global record order. *)
let events () =
  Mutex.lock rings_mutex;
  let all =
    List.concat_map
      (fun r -> Array.to_list (Array.map Fun.id r.slots))
      !rings
  in
  Mutex.unlock rings_mutex;
  List.filter (fun ev -> ev.seq >= 0) all |> List.sort (fun a b -> compare a.seq b.seq)

(** Total events ever recorded (including overwritten ones). *)
let total () =
  Mutex.lock rings_mutex;
  let n = List.fold_left (fun acc r -> acc + r.n) 0 !rings in
  Mutex.unlock rings_mutex;
  n

(** Events lost to ring wrap-around. *)
let dropped () =
  Mutex.lock rings_mutex;
  let d =
    List.fold_left (fun acc r -> acc + max 0 (r.n - Array.length r.slots)) 0 !rings
  in
  Mutex.unlock rings_mutex;
  d

let kind_name = function Begin -> "begin" | End -> "end" | Note -> "note"

(** The postmortem document: recorder contents plus a final metrics
    snapshot, as JSON.  [run_id] labels which run directory the dump
    belongs to. *)
let to_json ?(run_id = "") ~reason () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"postmortem\": true,\n  \"reason\": \"%s\",\n" (Json.escape reason));
  if run_id <> "" then
    Buffer.add_string buf (Printf.sprintf "  \"run_id\": \"%s\",\n" (Json.escape run_id));
  Buffer.add_string buf (Printf.sprintf "  \"ts\": %s,\n" (Json.of_float (Unix.gettimeofday ())));
  Buffer.add_string buf (Printf.sprintf "  \"events_recorded\": %d,\n" (total ()));
  Buffer.add_string buf (Printf.sprintf "  \"events_dropped\": %d,\n" (dropped ()));
  Buffer.add_string buf "  \"events\": [";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"seq\":%d,\"ts\":%s,\"domain\":%d,\"kind\":\"%s\",\"name\":\"%s\",\"detail\":\"%s\"}"
           ev.seq (Json.of_float ev.ts) ev.dom (kind_name ev.kind) (Json.escape ev.name)
           (Json.escape ev.detail)))
    (events ());
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"metrics\": ";
  (* indent the embedded snapshot to keep the document readable *)
  let snap = Metrics.to_json (Metrics.snapshot ()) in
  String.iter
    (fun c ->
      Buffer.add_char buf c;
      if c = '\n' then Buffer.add_string buf "  ")
    (String.trim snap);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let write ?run_id ~reason path =
  let oc = open_out (path ^ ".tmp") in
  output_string oc (to_json ?run_id ~reason ());
  close_out oc;
  Sys.rename (path ^ ".tmp") path
