(** Threshold rules over the training-dynamics streams.

    Two entry points share one rule set: {!evaluate} runs over a run
    ledger (the [metrics.jsonl] snapshot series), where trend rules like
    the NN-churn spike and the loss-plateau detector have history to work
    with; {!check_snapshot} runs the point-in-time subset against a live
    {!Metrics} snapshot — {!Liger_eval.Train} calls it at each epoch end
    and drops any finding into the flight recorder as a breadcrumb.

    Verdict levels: [Fail] marks training that is actively broken
    (vanished or exploded gradients), [Warn] marks conditions worth a
    look (saturation, churn spikes, plateau-with-drift).  {!healthy} is
    true when nothing failed — warnings do not fail a CI run. *)

type level = Warn | Fail

type finding = {
  rule : string;    (* stable rule id, e.g. "vanishing-gradients" *)
  level : level;
  subject : string; (* the metric key that fired *)
  detail : string;  (* human-readable evidence *)
}

let level_name = function Warn -> "WARN" | Fail -> "FAIL"

let healthy findings = not (List.exists (fun f -> f.level = Fail) findings)

(* thresholds, pinned here so the docs/tests reference one place *)
let vanish_threshold = 1e-7    (* per-layer pre-clip grad norm below this is dead *)
let explode_threshold = 1e3    (* ... and above this has exploded *)
let saturation_threshold = 0.9 (* fraction of saturated activations *)
let churn_spike_min = 0.5      (* churn below this is never a spike *)
let plateau_rel_change = 0.02  (* loss change under 2% over the window = plateau *)
let plateau_drift_min = 0.05   (* ... only suspicious while drift stays above this *)

(* ---------------- series access over ledger lines ---------------- *)

(* one ledger snapshot's gauges as a flat key->value list *)
let gauges_of_line line =
  match Json.member "gauges" line with
  | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) -> match v with Json.Num f -> Some (k, f) | _ -> None)
        kvs
  | _ -> []

(* every gauge key appearing anywhere in the series, sorted *)
let gauge_keys per_line =
  List.concat_map (List.map fst) per_line |> List.sort_uniq compare

(* the (present-only) value series of [key], oldest first *)
let series per_line key = List.filter_map (List.assoc_opt key) per_line

let last = function [] -> None | l -> Some (List.nth l (List.length l - 1))

let keys_of_metric keys name =
  List.filter
    (fun k -> fst (Metrics.parse_rendered_key k) = name)
    keys

let median l =
  match List.sort compare l with
  | [] -> 0.0
  | sorted -> List.nth sorted (List.length sorted / 2)

(* ---------------- the rules ---------------- *)

(* Point rules: latest value only — shared between ledger and snapshot
   evaluation.  [get_last name] returns the latest (key, value) pairs for
   the metric [name] across label sets. *)
let point_rules (get_last : string -> (string * float) list) =
  let findings = ref [] in
  let emit rule level subject detail = findings := { rule; level; subject; detail } :: !findings in
  List.iter
    (fun (key, v) ->
      if v < vanish_threshold then
        emit "vanishing-gradients" Fail key
          (Printf.sprintf "gradient norm %.3g below %.0e" v vanish_threshold)
      else if v > explode_threshold then
        emit "exploding-gradients" Fail key
          (Printf.sprintf "gradient norm %.3g above %.0e" v explode_threshold))
    (get_last "dynamics.layer_grad_norm");
  List.iter
    (fun (key, v) ->
      if v > saturation_threshold then
        emit "saturation" Warn key
          (Printf.sprintf "%.0f%% of activations saturated (threshold %.0f%%)"
             (100.0 *. v) (100.0 *. saturation_threshold)))
    (get_last "dynamics.saturation");
  List.rev !findings

(** Evaluate every rule over a run ledger (the parsed [metrics.jsonl]
    lines, oldest first).  Returns findings sorted rule-first. *)
let evaluate (lines : Json.t list) : finding list =
  let per_line = List.map gauges_of_line lines in
  let keys = gauge_keys per_line in
  let get_last name =
    List.filter_map
      (fun k -> Option.map (fun v -> (k, v)) (last (series per_line k)))
      (keys_of_metric keys name)
  in
  let point = point_rules get_last in
  let findings = ref [] in
  let emit rule level subject detail = findings := { rule; level; subject; detail } :: !findings in
  (* NN-churn spike: the latest churn is both large in absolute terms and
     at least double the median of its own history *)
  List.iter
    (fun key ->
      match series per_line key with
      | _ :: _ :: _ as s ->
          let n = List.length s in
          let prior = List.filteri (fun i _ -> i < n - 1) s in
          let cur = List.nth s (n - 1) in
          let med = median prior in
          if cur > churn_spike_min && cur > 2.0 *. med then
            emit "nn-churn-spike" Warn key
              (Printf.sprintf "neighbor churn %.2f vs median %.2f" cur med)
      | _ -> ())
    (keys_of_metric keys "dynamics.nn_churn");
  (* loss plateau with drift: per model, the loss has stopped moving but
     the embedding space has not *)
  List.iter
    (fun loss_key ->
      let _, labels = Metrics.parse_rendered_key loss_key in
      match List.assoc_opt "model" labels with
      | None -> ()
      | Some model -> (
          match series per_line loss_key with
          | _ :: _ :: _ :: _ as s ->
              let n = List.length s in
              let window = List.filteri (fun i _ -> i >= n - 3) s in
              let lo = List.fold_left Stdlib.min infinity window in
              let hi = List.fold_left Stdlib.max neg_infinity window in
              let rel = if hi <> 0.0 then (hi -. lo) /. Float.abs hi else 0.0 in
              let drift_key =
                Metrics.render_key "dynamics.embed_drift" [ ("model", model) ]
              in
              let drift = Option.value ~default:0.0 (last (series per_line drift_key)) in
              if rel < plateau_rel_change && drift > plateau_drift_min then
                emit "loss-plateau-with-drift" Warn loss_key
                  (Printf.sprintf
                     "loss moved %.1f%% over the last 3 snapshots while embeddings \
                      drift %.3f/epoch"
                     (100.0 *. rel) drift)
          | _ -> ()))
    (keys_of_metric keys "train.loss");
  point @ List.rev !findings

(** The point-in-time rules against a live metrics snapshot (per-epoch
    breadcrumbs, end-of-run report). *)
let check_snapshot (snap : Metrics.snapshot) : finding list =
  let get_last name =
    List.filter_map
      (fun (e : Metrics.entry) ->
        match e.Metrics.e_value with
        | Metrics.G v -> Some (Metrics.render_key e.Metrics.e_name e.Metrics.e_labels, v)
        | _ -> None)
      (Metrics.entries_with snap name)
  in
  point_rules get_last

(** One line per finding, e.g.
    ["FAIL vanishing-gradients dynamics.layer_grad_norm{layer=enc}: ..."]. *)
let render_finding f =
  Printf.sprintf "%s %s %s: %s" (level_name f.level) f.rule f.subject f.detail

let render = function
  | [] -> "health: all rules passed"
  | findings ->
      "health:\n" ^ String.concat "\n" (List.map (fun f -> "  " ^ render_finding f) findings)
