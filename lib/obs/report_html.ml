(** [liger report]: render a run directory into one self-contained HTML
    file — inline CSS, inline SVG sparklines/heatmaps, no external assets.

    The renderer consumes already-parsed data (a {!run} record built by
    {!Obs.load_report_run}); it never touches the filesystem, which keeps
    it trivially testable on synthetic ledgers.  Output is deterministic:
    every key iteration is sorted, floats go through one formatter, and
    nothing reads a clock — identical inputs produce identical bytes.

    Structure contract (the golden test pins it): every section has a
    stable [id] ([health], [training], [gradflow], [activations],
    [drift], [attention], [profile], [probe], [bench], [postmortem],
    [compare]); each tracked time series renders exactly one [<svg>]
    sparkline per run, the gradient-flow heatmap is one more [<svg>], and
    each rendered histogram is one more.  All metric keys and label
    values are HTML-escaped. *)

type run = {
  label : string;                  (* run id *)
  lines : Json.t list;             (* ledger snapshots, oldest first *)
  final : Json.t option;           (* the final metrics.json snapshot *)
  probe : string option;           (* probe_accuracy.txt contents *)
  postmortem : Json.t option;      (* postmortem.json *)
  bench : Bench_store.record list; (* matching history records *)
}

(* ---------------- small helpers ---------------- *)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&#39;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* every float reaching the page goes through this: deterministic, and
   non-finite values (which Metrics.quantile can no longer produce, but
   defense-in-depth is cheap) render as 0 rather than NaN *)
let fmt v = if Float.is_finite v then Printf.sprintf "%.4g" v else "0"

(* the gauge series of a run, one assoc list per ledger line *)
let per_line run = List.map Health.gauges_of_line run.lines

let series_of per_line key = List.filter_map (List.assoc_opt key) per_line

let keys_named per_line name =
  Health.gauge_keys per_line
  |> List.filter (fun k -> fst (Metrics.parse_rendered_key k) = name)

(* ---------------- SVG primitives ---------------- *)

let spark_w = 260
let spark_h = 48
let spark_pad = 4.0

(** One sparkline [<svg>] for a value series (oldest first). *)
let sparkline values =
  let n = List.length values in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg class=\"spark\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">" spark_w
       spark_h spark_w spark_h);
  (if n > 0 then begin
     let vs = Array.of_list values in
     let lo = Array.fold_left Stdlib.min infinity vs in
     let hi = Array.fold_left Stdlib.max neg_infinity vs in
     let x i =
       if n = 1 then float_of_int spark_w /. 2.0
       else
         spark_pad
         +. (float_of_int i /. float_of_int (n - 1) *. (float_of_int spark_w -. (2.0 *. spark_pad)))
     in
     let y v =
       if hi = lo then float_of_int spark_h /. 2.0
       else
         float_of_int spark_h -. spark_pad
         -. ((v -. lo) /. (hi -. lo) *. (float_of_int spark_h -. (2.0 *. spark_pad)))
     in
     if n = 1 then
       Buffer.add_string buf
         (Printf.sprintf "<circle cx=\"%s\" cy=\"%s\" r=\"2.5\" fill=\"#36c\"/>" (fmt (x 0))
            (fmt (y vs.(0))))
     else begin
       let points =
         String.concat " "
           (List.mapi (fun i v -> Printf.sprintf "%s,%s" (fmt (x i)) (fmt (y v))) values)
       in
       Buffer.add_string buf
         (Printf.sprintf
            "<polyline points=\"%s\" fill=\"none\" stroke=\"#36c\" stroke-width=\"1.5\"/>"
            points);
       Buffer.add_string buf
         (Printf.sprintf "<circle cx=\"%s\" cy=\"%s\" r=\"2\" fill=\"#c33\"/>"
            (fmt (x (n - 1)))
            (fmt (y vs.(n - 1))))
     end
   end);
  Buffer.add_string buf "</svg>";
  Buffer.contents buf

(* log-scale heat color: t in [0,1] maps cold blue -> hot red *)
let heat_color t =
  let t = Stdlib.max 0.0 (Stdlib.min 1.0 t) in
  let r = int_of_float (40.0 +. (215.0 *. t)) in
  let g = int_of_float (60.0 +. (60.0 *. (1.0 -. t))) in
  let b = int_of_float (200.0 -. (170.0 *. t)) in
  Printf.sprintf "#%02x%02x%02x" r g b

(** The layers × snapshots gradient-norm heatmap: one [<svg>], one [rect]
    per (layer, snapshot) sample, colored by log10 of the norm. *)
let gradient_heatmap per_line keys =
  let cell = 13 in
  let nrows = List.length keys in
  let ncols = List.length per_line in
  let w = (ncols * cell) + 4 and h = (nrows * cell) + 4 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg class=\"heatmap\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">" w h w h);
  List.iteri
    (fun row key ->
      List.iteri
        (fun col gauges ->
          match List.assoc_opt key gauges with
          | None -> ()
          | Some v ->
              (* map log10(norm) over [-8, 3] onto the palette *)
              let lg = if v > 0.0 then Stdlib.log10 v else -8.0 in
              let t = (lg +. 8.0) /. 11.0 in
              Buffer.add_string buf
                (Printf.sprintf
                   "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\"/>"
                   (2 + (col * cell)) (2 + (row * cell)) (cell - 1) (cell - 1)
                   (heat_color t)))
        per_line)
    keys;
  Buffer.add_string buf "</svg>";
  Buffer.contents buf

(** A bucket-count bar chart for one histogram: one [<svg>]. *)
let hist_bars (h : Metrics.hist_view) =
  let nb = Array.length h.Metrics.counts in
  let bar_w = 14 in
  let w = (nb * bar_w) + 4 and hh = 64 in
  let maxc = Array.fold_left Stdlib.max 1 h.Metrics.counts in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "<svg class=\"hist\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">"
       w hh w hh);
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let bh = float_of_int c /. float_of_int maxc *. float_of_int (hh - 8) in
        Buffer.add_string buf
          (Printf.sprintf
             "<rect x=\"%d\" y=\"%s\" width=\"%d\" height=\"%s\" fill=\"#36c\"/>"
             (2 + (i * bar_w))
             (fmt (float_of_int (hh - 4) -. bh))
             (bar_w - 2) (fmt bh))
      end)
    h.Metrics.counts;
  Buffer.add_string buf "</svg>";
  Buffer.contents buf

(* ---------------- snapshot readers ---------------- *)

(* the best snapshot to read point-in-time sections from: the final
   metrics.json, else the last ledger line *)
let final_snapshot run =
  match run.final with
  | Some j -> Some j
  | None -> (
      match List.rev run.lines with [] -> None | last :: _ -> Some last)

let hist_of_json json key =
  let floats j = Option.map (List.filter_map Json.to_float) (Json.to_list j) in
  match Json.member "histograms" json with
  | Some (Json.Obj kvs) -> (
      match List.assoc_opt key kvs with
      | Some h -> (
          match
            ( Option.bind (Json.member "buckets" h) floats,
              Option.bind (Json.member "counts" h) floats,
              Option.bind (Json.member "sum" h) Json.to_float,
              Option.bind (Json.member "count" h) Json.to_float )
          with
          | Some buckets, Some counts, Some sum, Some count ->
              Some
                {
                  Metrics.buckets = Array.of_list buckets;
                  counts = Array.of_list (List.map int_of_float counts);
                  sum;
                  count = int_of_float count;
                }
          | _ -> None)
      | None -> None)
  | _ -> None

let section_nums json section =
  match Json.member section json with
  | Some (Json.Obj kvs) ->
      List.filter_map (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v)) kvs
  | _ -> []

(* ---------------- page assembly ---------------- *)

let style =
  "body{font:14px/1.45 system-ui,sans-serif;margin:24px auto;max-width:960px;\
   color:#222;padding:0 16px}\
   h1{font-size:20px}h2{font-size:16px;border-bottom:1px solid #ddd;\
   padding-bottom:4px;margin-top:28px}\
   table{border-collapse:collapse;margin:8px 0}\
   td,th{border:1px solid #ddd;padding:3px 8px;text-align:right;\
   font-variant-numeric:tabular-nums}\
   th,td:first-child{text-align:left}\
   .series{display:flex;align-items:center;gap:12px;margin:4px 0}\
   .series .key{min-width:320px;font-family:ui-monospace,monospace;font-size:12px}\
   .series .range{color:#666;font-size:12px}\
   .fail{color:#b00;font-weight:600}.warn{color:#a60}.pass{color:#080}\
   pre{background:#f6f6f6;padding:8px;overflow-x:auto;font-size:12px}\
   .heatmap,.hist,.spark{vertical-align:middle}"

let buf_section buf id title body =
  if body <> "" then begin
    Buffer.add_string buf (Printf.sprintf "<section id=\"%s\"><h2>%s</h2>\n" id title);
    Buffer.add_string buf body;
    Buffer.add_string buf "</section>\n"
  end

(* one tracked series row: key, per-run sparkline(s), min..max/last *)
let series_rows runs_per_line name =
  let keys =
    List.concat_map (fun pl -> keys_named pl name) runs_per_line |> List.sort_uniq compare
  in
  let buf = Buffer.create 512 in
  List.iter
    (fun key ->
      let sparks =
        List.filter_map
          (fun pl ->
            match series_of pl key with
            | [] -> None
            | values ->
                let lo = List.fold_left Stdlib.min infinity values in
                let hi = List.fold_left Stdlib.max neg_infinity values in
                let lastv = List.nth values (List.length values - 1) in
                Some
                  (Printf.sprintf "%s <span class=\"range\">%s .. %s (last %s)</span>"
                     (sparkline values) (fmt lo) (fmt hi) (fmt lastv)))
          runs_per_line
      in
      if sparks <> [] then
        Buffer.add_string buf
          (Printf.sprintf "<div class=\"series\"><span class=\"key\">%s</span>%s</div>\n"
             (html_escape key) (String.concat " " sparks)))
    keys;
  Buffer.contents buf

let health_body runs =
  let buf = Buffer.create 256 in
  List.iter
    (fun run ->
      let findings = Health.evaluate run.lines in
      Buffer.add_string buf (Printf.sprintf "<h3>%s</h3>\n" (html_escape run.label));
      match findings with
      | [] ->
          Buffer.add_string buf "<p class=\"pass\">all health rules passed</p>\n"
      | findings ->
          Buffer.add_string buf "<ul>\n";
          List.iter
            (fun (f : Health.finding) ->
              Buffer.add_string buf
                (Printf.sprintf "<li class=\"%s\"><b>%s</b> %s <code>%s</code>: %s</li>\n"
                   (match f.Health.level with Health.Fail -> "fail" | Health.Warn -> "warn")
                   (Health.level_name f.Health.level)
                   (html_escape f.Health.rule) (html_escape f.Health.subject)
                   (html_escape f.Health.detail)))
            findings;
          Buffer.add_string buf "</ul>\n")
    runs;
  Buffer.contents buf

let attention_body runs =
  let buf = Buffer.create 256 in
  List.iter
    (fun run ->
      match Option.bind (final_snapshot run) (fun j -> hist_of_json j "dynamics.attention_entropy") with
      | Some h when h.Metrics.count > 0 ->
          Buffer.add_string buf
            (Printf.sprintf
               "<div class=\"series\"><span class=\"key\">%s</span>%s \
                <span class=\"range\">%d obs, p50 %s, p99 %s nats</span></div>\n"
               (html_escape (run.label ^ " attention entropy"))
               (hist_bars h) h.Metrics.count
               (fmt (Metrics.quantile h 0.5))
               (fmt (Metrics.quantile h 0.99)))
      | _ -> ())
    runs;
  Buffer.contents buf

let profile_body run =
  match final_snapshot run with
  | None -> ""
  | Some json ->
      let counters = section_nums json "counters" in
      let fcounters = section_nums json "fcounters" in
      let layers =
        List.filter_map
          (fun (k, v) ->
            match Metrics.parse_rendered_key k with
            | "profile.layer_calls", labels ->
                Option.map (fun l -> (l, v)) (List.assoc_opt "layer" labels)
            | _ -> None)
          counters
        |> List.sort compare
      in
      if layers = [] then ""
      else begin
        let buf = Buffer.create 256 in
        Buffer.add_string buf
          "<table><tr><th>layer</th><th>calls</th><th>fwd s</th><th>bwd s</th></tr>\n";
        List.iter
          (fun (layer, calls) ->
            let f name =
              Option.value ~default:0.0
                (List.assoc_opt (Metrics.render_key name [ ("layer", layer) ]) fcounters)
            in
            Buffer.add_string buf
              (Printf.sprintf "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n"
                 (html_escape layer) (fmt calls)
                 (fmt (f "profile.layer_forward_seconds"))
                 (fmt (f "profile.layer_backward_seconds"))))
          layers;
        Buffer.add_string buf "</table>\n";
        Buffer.contents buf
      end

let bench_body run =
  if run.bench = [] then ""
  else begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      "<table><tr><th>benchmark</th><th>date</th><th>rev</th><th>jobs</th>\
       <th>examples/s</th><th>test F1</th></tr>\n";
    List.iter
      (fun (r : Bench_store.record) ->
        let m name = List.assoc_opt name r.Bench_store.metrics in
        let cell = function Some v -> fmt v | None -> "-" in
        Buffer.add_string buf
          (Printf.sprintf
             "<tr><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%s</td><td>%s</td></tr>\n"
             (html_escape r.Bench_store.benchmark)
             (html_escape r.Bench_store.date) (html_escape r.Bench_store.rev)
             r.Bench_store.jobs
             (cell (m "examples_per_second"))
             (cell (m "test_f1"))))
      run.bench;
    Buffer.add_string buf "</table>\n";
    Buffer.contents buf
  end

let postmortem_body run =
  match run.postmortem with
  | None -> ""
  | Some j ->
      let reason =
        Option.value ~default:"?" (Option.bind (Json.member "reason" j) Json.to_string)
      in
      let events =
        Option.value ~default:[] (Option.bind (Json.member "events" j) Json.to_list)
      in
      Printf.sprintf
        "<p class=\"fail\">this run crashed: %s (%d flight-recorder events survive \
         in postmortem.json)</p>\n"
        (html_escape reason) (List.length events)

(* final-gauge delta table between two runs *)
let compare_body a b =
  let finals run =
    match final_snapshot run with Some j -> section_nums j "gauges" | None -> []
  in
  let fa = finals a and fb = finals b in
  let keys = List.sort_uniq compare (List.map fst fa @ List.map fst fb) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "<table><tr><th>gauge</th><th>%s</th><th>%s</th><th>Δ</th></tr>\n"
       (html_escape a.label) (html_escape b.label));
  List.iter
    (fun key ->
      let va = List.assoc_opt key fa and vb = List.assoc_opt key fb in
      let cell = function Some v -> fmt v | None -> "-" in
      let delta =
        match (va, vb) with Some x, Some y -> fmt (y -. x) | _ -> "-"
      in
      Buffer.add_string buf
        (Printf.sprintf "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n"
           (html_escape key) (cell va) (cell vb) delta))
    keys;
  Buffer.add_string buf "</table>\n";
  Buffer.contents buf

(** Render [run] (and, in compare mode, [other] beside it) to one
    self-contained HTML page. *)
let render ?other run =
  let runs = run :: Option.to_list other in
  let pls = List.map per_line runs in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n";
  Buffer.add_string buf
    (Printf.sprintf "<title>liger report — %s</title>\n"
       (html_escape (String.concat " vs " (List.map (fun r -> r.label) runs))));
  Buffer.add_string buf (Printf.sprintf "<style>%s</style></head>\n<body>\n" style);
  Buffer.add_string buf
    (Printf.sprintf "<h1>liger report — %s</h1>\n"
       (html_escape (String.concat " vs " (List.map (fun r -> r.label) runs))));
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "<p>%s: %d ledger snapshots</p>\n" (html_escape r.label)
           (List.length r.lines)))
    runs;
  Buffer.add_string buf (postmortem_body run);
  buf_section buf "health" "Health verdicts" (health_body runs);
  buf_section buf "training" "Training"
    (String.concat ""
       (List.map (series_rows pls)
          [ "train.loss"; "train.valid_score"; "train.examples_per_second" ]));
  (* gradient flow: sparklines per layer + one heatmap over all layers *)
  let gradflow =
    let sparks =
      String.concat ""
        (List.map (series_rows pls) [ "dynamics.layer_grad_norm"; "dynamics.layer_update_ratio" ])
    in
    let heat =
      match pls with
      | pl :: _ -> (
          match keys_named pl "dynamics.layer_grad_norm" with
          | [] -> ""
          | keys ->
              Printf.sprintf
                "<div class=\"series\"><span class=\"key\">log10 ‖grad‖ heatmap \
                 (rows: %s)</span>%s</div>\n"
                (html_escape
                   (String.concat ", "
                      (List.map (fun k -> snd (Metrics.parse_rendered_key k) |> fun l ->
                         Option.value ~default:k (List.assoc_opt "layer" l)) keys)))
                (gradient_heatmap pl keys))
      | [] -> ""
    in
    sparks ^ heat
  in
  buf_section buf "gradflow" "Per-layer gradient flow" gradflow;
  buf_section buf "activations" "Activation saturation"
    (String.concat ""
       (List.map (series_rows pls) [ "dynamics.saturation"; "dynamics.dead_units" ]));
  buf_section buf "drift" "Embedding drift"
    (String.concat ""
       (List.map (series_rows pls) [ "dynamics.embed_drift"; "dynamics.nn_churn" ]));
  buf_section buf "attention" "Attention entropy" (attention_body runs);
  buf_section buf "profile" "Profile (final snapshot)" (profile_body run);
  (match run.probe with
  | Some text ->
      buf_section buf "probe" "Semantic probes"
        (Printf.sprintf "<pre>%s</pre>\n" (html_escape text))
  | None -> ());
  buf_section buf "bench" "Benchmark history" (bench_body run);
  (match other with
  | Some b -> buf_section buf "compare" "Compare (final gauges)" (compare_body run b)
  | None -> ());
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf
