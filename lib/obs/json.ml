(** A minimal JSON reader/writer.

    The telemetry files ({!Metrics} snapshots, {!Span} Chrome traces) are
    written by hand for deterministic key order, and read back by
    [liger stats] and the test suite.  The container has no JSON library
    baked in, so this is a small self-contained implementation: the writer
    side is just escaping and float formatting helpers, the reader is a
    plain recursive-descent parser over the full JSON grammar. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------------- writing ---------------- *)

(** Escape [s] for inclusion between double quotes. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Deterministic float rendering that is always a valid JSON number
    (JSON has no NaN/infinity; they are clamped to 0). *)
let of_float x =
  if not (Float.is_finite x) then "0"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.6f" x

(* ---------------- parsing ---------------- *)

exception Error of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> fail "bad \\u escape"
            in
            pos := !pos + 4;
            (* encode the code point as UTF-8 (surrogates kept as-is) *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let before = !pos in
      while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
        advance ()
      done;
      if !pos = before then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Error msg -> Error msg

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> parse s
  | exception Sys_error msg -> Error msg

(* ---------------- accessors ---------------- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_list = function Arr l -> Some l | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
