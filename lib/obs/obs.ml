(** The observability front door: logging setup, env-var wiring for the
    {!Metrics} registry and {!Span} tracer, the human-readable end-of-run
    report, and the readers behind [liger stats].

    Conventions used across the pipeline (all optional — a metric that was
    never recorded simply doesn't appear in the snapshot):

    - [parallel.*] — pool telemetry (tasks, batches, wall and per-domain
      busy seconds), recorded by {!Liger_parallel.Parallel}.
    - [filter.kept] / [filter.dropped{reason=...}] — Table-1 verdicts.
    - [testgen.*] — Randoop-analogue attempts/crashes/timeouts.
    - [encode.*], [pipeline.*], [coset.*] — corpus construction.
    - [train.*] — per-epoch training telemetry (loss, valid score,
      grad-norm histogram, skipped steps, epoch seconds).
    - [experiments.cache_hits/misses] — sweep cache effectiveness. *)

module Json = Json
module Metrics = Metrics
module Span = Span
module Profile = Profile
module Bench_store = Bench_store
module Recorder = Recorder
module Timeseries = Timeseries
module Openmetrics = Openmetrics
module Dynamics = Dynamics
module Health = Health
module Report_html = Report_html

(* ---------------- logging ---------------- *)

(** [LIGER_LOG] levels; [quiet] disables logging entirely. *)
let level_of_string = function
  | "quiet" -> Ok None
  | "error" -> Ok (Some Logs.Error)
  | "warn" | "warning" -> Ok (Some Logs.Warning)
  | "info" -> Ok (Some Logs.Info)
  | "debug" -> Ok (Some Logs.Debug)
  | s -> Error s

let reporter ppf =
  let report src level ~over k msgf =
    let k _ =
      over ();
      k ()
    in
    msgf @@ fun ?header ?tags fmt ->
    ignore header;
    ignore tags;
    let t = Unix.gettimeofday () in
    let tm = Unix.localtime t in
    let ms = int_of_float (Float.rem t 1.0 *. 1000.0) in
    Format.kfprintf k ppf
      ("[%02d:%02d:%02d.%03d] [%a] [%s] @[" ^^ fmt ^^ "@]@.")
      tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec ms Logs.pp_level level
      (Logs.Src.name src)
  in
  { Logs.report }

(** Install a [Logs] reporter (timestamps + level + source prefix) writing
    to [out] (stderr by default), at the level named by [LIGER_LOG]
    ([quiet|error|warn|info|debug]; default [warn]).  Without this call the
    [Logs.info]/[Logs.warn] sprinkled through the pipeline go nowhere. *)
let init_logging ?(out = Format.err_formatter) () =
  let level =
    match Sys.getenv_opt "LIGER_LOG" with
    | None -> Some Logs.Warning
    | Some s -> (
        match level_of_string (String.lowercase_ascii (String.trim s)) with
        | Ok level -> level
        | Error s ->
            Printf.eprintf
              "liger: ignoring LIGER_LOG=%S (expected quiet|error|warn|info|debug)\n%!" s;
            Some Logs.Warning)
  in
  Logs.set_level ~all:true level;
  Logs.set_reporter (reporter out)

(* ---------------- the run directory ---------------- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(** This process's run id: [LIGER_RUN_ID] when set (pin it for
    deterministic CI paths), otherwise timestamp + pid. *)
let run_id =
  lazy
    (match Sys.getenv_opt "LIGER_RUN_ID" with
    | Some s when String.trim s <> "" -> String.trim s
    | _ ->
        let t = Unix.gettimeofday () in
        let tm = Unix.localtime t in
        Printf.sprintf "%04d%02d%02d-%02d%02d%02d-%d" (tm.Unix.tm_year + 1900)
          (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
          (Unix.getpid ()))

(** Root under which run directories are created: [LIGER_RUNS_DIR],
    default ["runs"]. *)
let runs_root () =
  match Sys.getenv_opt "LIGER_RUNS_DIR" with
  | Some s when String.trim s <> "" -> String.trim s
  | _ -> "runs"

(** The per-run telemetry directory [runs/<run-id>/], created on first
    use.  Default telemetry outputs land here instead of strewing the
    repository root; a run that configures no telemetry never creates
    it. *)
let run_dir () =
  let dir = Filename.concat (runs_root ()) (Lazy.force run_id) in
  mkdir_p dir;
  dir

let in_run_dir name = Filename.concat (run_dir ()) name

(* ---------------- failpoints (crash injection) ---------------- *)

exception Injected_failure of string

(* [LIGER_FAILPOINT=site[:n]] arms one failpoint: the [n]-th time
   execution passes [failpoint site] (default: the first), it raises
   {!Injected_failure} — CI uses this to prove a mid-train crash leaves
   a postmortem artifact. *)
let failpoint_spec : (string * int) option ref = ref None
let failpoint_armed = ref false
let failpoint_hits : (string, int ref) Hashtbl.t = Hashtbl.create 4

let parse_failpoint s =
  match String.index_opt s ':' with
  | None -> Some (String.trim s, 1)
  | Some i -> (
      let site = String.trim (String.sub s 0 i) in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some n when n > 0 -> Some (site, n)
      | _ ->
          Printf.eprintf "liger: ignoring LIGER_FAILPOINT=%S (expected site[:n])\n%!" s;
          None)

(** Arm ([Some "site[:n]"]) or disarm ([None]) the failpoint, overriding
    the environment (tests). *)
let set_failpoint spec =
  failpoint_armed := true;
  Hashtbl.reset failpoint_hits;
  failpoint_spec := Option.bind spec parse_failpoint

let failpoint site =
  if not !failpoint_armed then begin
    failpoint_armed := true;
    match Sys.getenv_opt "LIGER_FAILPOINT" with
    | Some s when String.trim s <> "" -> failpoint_spec := parse_failpoint s
    | _ -> ()
  end;
  match !failpoint_spec with
  | Some (s, n) when s = site ->
      let hits =
        match Hashtbl.find_opt failpoint_hits site with
        | Some r -> r
        | None ->
            let r = ref 0 in
            Hashtbl.add failpoint_hits site r;
            r
      in
      incr hits;
      if !hits = n then begin
        Logs.err (fun m -> m "failpoint %s fired (hit %d)" site n);
        raise (Injected_failure site)
      end
  | _ -> ()

(* ---------------- enabling + exit dumps ---------------- *)

let metrics_path = ref None
let trace_path = ref None
let exit_hook = ref false
let trace_drops_published = ref false

(** Write whatever outputs were configured (also runs automatically on
    exit).  When profiling is on, the profiler's per-op/per-layer totals are
    published into the registry first so they land in the snapshot; the
    run-ledger emitter is stopped with one final enriched snapshot, and
    any span events lost to the trace cap are published as
    [obs.trace_events_dropped]. *)
let flush () =
  if Profile.enabled () then Profile.publish ();
  (let d = Span.dropped_events () in
   if d > 0 && not !trace_drops_published then begin
     trace_drops_published := true;
     Metrics.add "obs.trace_events_dropped" d
   end);
  Timeseries.enrich ();
  Timeseries.stop ();
  (match !metrics_path with Some p -> Metrics.write p | None -> ());
  match !trace_path with Some p -> Span.write p | None -> ()

(* ---------------- postmortem dumps ---------------- *)

let postmortem_path = ref None
let crash_dumped = ref false

(** Dump the flight recorder (last-N events plus a final metrics
    snapshot) to the run directory — called on uncaught exceptions,
    fatal signals, and training aborts.  Idempotent per process (the
    first reason wins); a no-op when the recorder is off. *)
let crash_dump ~reason () =
  if Recorder.enabled () && not !crash_dumped then begin
    crash_dumped := true;
    try
      if Profile.enabled () then Profile.publish ();
      Timeseries.enrich ();
      let path =
        match !postmortem_path with Some p -> p | None -> in_run_dir "postmortem.json"
      in
      Recorder.write ~run_id:(Lazy.force run_id) ~reason path;
      Printf.eprintf "liger: flight recorder dumped to %s (%s)\n%!" path reason
    with e -> Printf.eprintf "liger: postmortem dump failed: %s\n%!" (Printexc.to_string e)
  end

let handlers_installed = ref false

(* An uncaught exception or fatal signal dumps the recorder before the
   default handling proceeds; [at_exit] still runs on uncaught
   exceptions, so the configured metrics/trace files are written too. *)
let install_crash_handlers () =
  if not !handlers_installed then begin
    handlers_installed := true;
    Printexc.set_uncaught_exception_handler (fun exn bt ->
        crash_dump ~reason:("uncaught exception: " ^ Printexc.to_string exn) ();
        Printexc.default_uncaught_exception_handler exn bt);
    List.iter
      (fun (signal, code, name) ->
        try
          Sys.set_signal signal
            (Sys.Signal_handle
               (fun _ ->
                 crash_dump ~reason:("fatal signal " ^ name) ();
                 exit code))
        with Invalid_argument _ | Sys_error _ -> ())
      [ (Sys.sigterm, 143, "SIGTERM"); (Sys.sigint, 130, "SIGINT") ]
  end

let truthy s =
  match String.lowercase_ascii (String.trim s) with
  | "1" | "true" | "yes" | "on" -> true
  | _ -> false

let falsy s =
  match String.lowercase_ascii (String.trim s) with
  | "0" | "false" | "no" | "off" -> true
  | _ -> false

(** Resolve the telemetry outputs — explicit arguments (CLI flags) win over
    the environment — enable the corresponding subsystems, and arrange for
    the files to be written on exit.

    - [metrics_out] / [LIGER_METRICS_OUT] and [trace_out] /
      [LIGER_TRACE_OUT] name explicit output files; the truthy shorthands
      [LIGER_METRICS=1] / [LIGER_TRACE=1] enable the same subsystems with
      default paths under {!run_dir} ([metrics.json], [trace.json]).
    - [profile] (or [LIGER_PROFILE=1]) turns on the model profiler, which
      implies the metrics registry (that is where its totals are
      published); without an explicit metrics path the snapshot lands in
      the run directory.
    - [metrics_every] (or [LIGER_METRICS_EVERY], seconds) starts the
      {!Timeseries} run-ledger emitter appending to
      [runs/<run-id>/metrics.jsonl].
    - [dynamics] (or [LIGER_DYNAMICS=1]) turns on the {!Dynamics}
      training-dynamics streams (per-layer gradient flow, saturation,
      attention entropy, embedding drift), which imply the metrics
      registry.
    - The {!Recorder} flight ring turns on whenever any of the above is
      configured, or explicitly via [LIGER_FLIGHT=1]; [LIGER_FLIGHT=0]
      forces it off.  With the recorder on, crash handlers arrange a
      postmortem dump into the run directory.

    With nothing configured this is a no-op and the whole telemetry layer
    stays disabled. *)
let init ?metrics_out ?trace_out ?metrics_every ?(profile = false) ?(dynamics = false) () =
  let pick arg env = match arg with Some _ as p -> p | None -> Sys.getenv_opt env in
  let env_truthy env = match Sys.getenv_opt env with Some s -> truthy s | None -> false in
  (if dynamics || env_truthy "LIGER_DYNAMICS" then begin
     Dynamics.enable ();
     Metrics.enable ();
     if !metrics_path = None then metrics_path := Some (in_run_dir "metrics.json")
   end);
  (match pick metrics_out "LIGER_METRICS_OUT" with
  | Some p ->
      metrics_path := Some p;
      Metrics.enable ()
  | None -> ());
  (match pick trace_out "LIGER_TRACE_OUT" with
  | Some p ->
      trace_path := Some p;
      Span.enable ()
  | None -> ());
  (if env_truthy "LIGER_METRICS" then begin
     Metrics.enable ();
     if !metrics_path = None then metrics_path := Some (in_run_dir "metrics.json")
   end);
  (if env_truthy "LIGER_TRACE" then begin
     Span.enable ();
     if !trace_path = None then trace_path := Some (in_run_dir "trace.json")
   end);
  (if profile || env_truthy "LIGER_PROFILE" then begin
     Profile.enable ();
     Metrics.enable ();
     if !metrics_path = None then metrics_path := Some (in_run_dir "metrics.json")
   end);
  let every =
    match metrics_every with
    | Some _ as e -> e
    | None -> (
        match Sys.getenv_opt "LIGER_METRICS_EVERY" with
        | None -> None
        | Some s -> (
            match float_of_string_opt (String.trim s) with
            | Some e when e > 0.0 -> Some e
            | _ ->
                Printf.eprintf "liger: ignoring LIGER_METRICS_EVERY=%S (expected seconds > 0)\n%!" s;
                None))
  in
  (match every with
  | Some e when e > 0.0 ->
      Metrics.enable ();
      if !metrics_path = None then metrics_path := Some (in_run_dir "metrics.json");
      Timeseries.start ~every:e ~path:(in_run_dir "metrics.jsonl")
  | _ -> ());
  let any_configured =
    !metrics_path <> None || !trace_path <> None || Metrics.enabled () || Span.enabled ()
    || Profile.enabled ()
  in
  (match Sys.getenv_opt "LIGER_FLIGHT" with
  | Some s when truthy s -> Recorder.enable ()
  | Some s when falsy s -> Recorder.disable ()
  | _ -> if any_configured then Recorder.enable ());
  if Recorder.enabled () then install_crash_handlers ();
  if (!metrics_path <> None || !trace_path <> None) && not !exit_hook then begin
    exit_hook := true;
    at_exit flush
  end

let enabled () = Metrics.enabled () || Span.enabled () || Profile.enabled ()

(* ---------------- the end-of-run report ---------------- *)

let buf_table buf rows =
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w cell -> max w (String.length cell)) ws row)
      (List.map String.length (List.hd rows))
      rows
  in
  List.iter
    (fun row ->
      Buffer.add_string buf "  ";
      List.iteri
        (fun i cell ->
          let w = List.nth widths i in
          Buffer.add_string buf (if i = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "  %*s" w cell))
        row;
      Buffer.add_char buf '\n')
    rows

(** The human-readable end-of-run report: top spans by self time, pool
    utilization, and the Table-1 drop-reason tally — each section only when
    its data was recorded. *)
let report () =
  let buf = Buffer.create 1024 in
  let snap = Metrics.snapshot () in
  Buffer.add_string buf "== observability report ==\n";
  (let d = Span.dropped_events () in
   if d > 0 then
     Buffer.add_string buf
       (Printf.sprintf
          "WARNING: %d span events dropped at the trace buffer cap (%d per domain; raise LIGER_TRACE_CAP)\n"
          d (Span.capacity ())));
  (* top spans by self time *)
  (match Span.aggregate () with
  | [] -> ()
  | aggs ->
      Buffer.add_string buf "top spans by self time:\n";
      let top = List.filteri (fun i _ -> i < 12) aggs in
      buf_table buf
        ([ "span"; "count"; "total s"; "self s" ]
        :: List.map
             (fun (a : Span.agg) ->
               [ a.Span.agg_name; string_of_int a.Span.agg_count;
                 Printf.sprintf "%.3f" a.Span.total_s; Printf.sprintf "%.3f" a.Span.self_s ])
             top));
  (* pool utilization *)
  let busy = Metrics.entries_with snap "parallel.busy_seconds" in
  let wall = Metrics.fcounter_value snap "parallel.wall_seconds" in
  (if busy <> [] && wall > 0.0 then begin
     let lanes = List.length busy in
     let total_busy =
       List.fold_left
         (fun acc (e : Metrics.entry) ->
           match e.Metrics.e_value with Metrics.F x -> acc +. x | _ -> acc)
         0.0 busy
     in
     Buffer.add_string buf
       (Printf.sprintf "pool utilization: %.1f%% (%.2fs busy / %.2fs wall x %d lanes; %d tasks in %d batches)\n"
          (100.0 *. total_busy /. (wall *. float_of_int lanes))
          total_busy wall lanes
          (Metrics.counter_value snap "parallel.tasks")
          (Metrics.counter_value snap "parallel.batches"))
   end);
  (* drop reasons *)
  let dropped = Metrics.entries_with snap "filter.dropped" in
  (if dropped <> [] then begin
     Buffer.add_string buf "filter verdicts:\n";
     let rows =
       [ "kept"; string_of_int (Metrics.counter_value snap "filter.kept") ]
       :: List.map
            (fun (e : Metrics.entry) ->
              let reason =
                match e.Metrics.e_labels with (_, v) :: _ -> v | [] -> "(unlabeled)"
              in
              let n = match e.Metrics.e_value with Metrics.C n -> n | _ -> 0 in
              [ "dropped: " ^ reason; string_of_int n ])
            dropped
     in
     buf_table buf ([ "verdict"; "methods" ] :: rows)
   end);
  (* training *)
  (match Metrics.hist_view snap "train.grad_norm" with
  | Some h when h.Metrics.count > 0 ->
      Buffer.add_string buf
        (Printf.sprintf "training: %d steps (%d skipped), grad-norm p50 %.3f p95 %.3f\n"
           h.Metrics.count
           (Metrics.counter_value snap "train.skipped_steps")
           (Metrics.quantile h 0.5) (Metrics.quantile h 0.95))
  | _ -> ());
  (* training-dynamics health verdicts (point-in-time rules) *)
  (if Dynamics.on () then
     match Health.check_snapshot snap with
     | [] -> Buffer.add_string buf "health: all rules passed\n"
     | findings ->
         List.iter
           (fun f -> Buffer.add_string buf (Health.render_finding f ^ "\n"))
           findings);
  let hits = Metrics.counter_value snap "experiments.cache_hits" in
  let misses = Metrics.counter_value snap "experiments.cache_misses" in
  if hits + misses > 0 then
    Buffer.add_string buf
      (Printf.sprintf "experiment cache: %d hits / %d misses\n" hits misses);
  (* training throughput (recorded per-model by Train.fit when metrics are on) *)
  List.iter
    (fun (e : Metrics.entry) ->
      let model = match e.Metrics.e_labels with (_, v) :: _ -> v | [] -> "?" in
      let eps = match e.Metrics.e_value with Metrics.G x -> x | _ -> 0.0 in
      let labels = e.Metrics.e_labels in
      let sps =
        Option.value ~default:0.0
          (Metrics.gauge_value ~labels snap "train.subtokens_per_second")
      in
      Buffer.add_string buf
        (Printf.sprintf "throughput[%s]: %.1f examples/s, %.1f sub-tokens/s%s\n" model eps sps
           (match Metrics.gauge_value ~labels snap "train.eta_seconds" with
           | Some eta when eta > 0.0 -> Printf.sprintf " (eta %.1fs)" eta
           | _ -> "")))
    (Metrics.entries_with snap "train.examples_per_second");
  (* model profile *)
  (if Profile.enabled () then begin
     let p = Profile.snapshot () in
     (if p.Profile.layers <> [] then begin
        let step_total =
          List.fold_left
            (fun acc (l : Profile.layer_stat) -> acc +. l.Profile.fwd_self_s +. l.Profile.bwd_s)
            p.Profile.untagged_bwd_s p.Profile.layers
        in
        let pct x = if step_total > 0.0 then 100.0 *. x /. step_total else 0.0 in
        Buffer.add_string buf "profile: per-layer time (self = children excluded):\n";
        let rows =
          List.map
            (fun (l : Profile.layer_stat) ->
              [ l.Profile.layer_name;
                string_of_int l.Profile.calls;
                Printf.sprintf "%.3f" l.Profile.fwd_total_s;
                Printf.sprintf "%.3f" l.Profile.fwd_self_s;
                Printf.sprintf "%.3f" l.Profile.bwd_s;
                Printf.sprintf "%.1f%%" (pct (l.Profile.fwd_self_s +. l.Profile.bwd_s)) ])
            p.Profile.layers
          @
          if p.Profile.untagged_bwd_s > 0.0 then
            [ [ "(untagged)"; "-"; "-"; "-";
                Printf.sprintf "%.3f" p.Profile.untagged_bwd_s;
                Printf.sprintf "%.1f%%" (pct p.Profile.untagged_bwd_s) ] ]
          else []
        in
        buf_table buf ([ "layer"; "calls"; "fwd s"; "fwd self s"; "bwd s"; "% step" ] :: rows)
      end);
     (if p.Profile.ops <> [] then begin
        Buffer.add_string buf "profile: top ops by FLOPs:\n";
        let by_flops =
          List.sort
            (fun (a : Profile.op_stat) b -> compare (b.Profile.flops, a.Profile.op_name) (a.Profile.flops, b.Profile.op_name))
            p.Profile.ops
          |> List.filteri (fun i _ -> i < 16)
        in
        buf_table buf
          ([ "op"; "count"; "Mflop"; "MB"; "s" ]
          :: List.map
               (fun (o : Profile.op_stat) ->
                 [ o.Profile.op_name;
                   string_of_int o.Profile.count;
                   Printf.sprintf "%.2f" (o.Profile.flops /. 1e6);
                   Printf.sprintf "%.2f" (o.Profile.bytes /. 1e6);
                   (if o.Profile.seconds > 0.0 then Printf.sprintf "%.3f" o.Profile.seconds
                    else "-") ])
               by_flops);
        Buffer.add_string buf
          (Printf.sprintf "profile: %.2f Mflop total; tensor memory peak %.2f MB, live %.2f MB\n"
             (Profile.total_flops p /. 1e6)
             (float_of_int p.Profile.snap_peak_bytes /. 1e6)
             (float_of_int p.Profile.snap_live_bytes /. 1e6))
      end)
   end);
  Buffer.contents buf

let print_report () = if enabled () then prerr_string (report ())

(* ---------------- readers for [liger stats] ---------------- *)

let is_trace json = Json.member "traceEvents" json <> None
let is_postmortem json = Json.member "postmortem" json = Some (Json.Bool true)

(** Structural validation of a telemetry file: well-formed JSON, and for
    traces every event must be a complete "X" event with a duration (or a
    matched "B"/"E" pair).  Returns a one-line summary. *)
let rec validate_json json =
  if is_postmortem json then begin
    let reason =
      Option.value ~default:"?" (Option.bind (Json.member "reason" json) Json.to_string)
    in
    match Option.bind (Json.member "events" json) Json.to_list with
    | None -> Error "postmortem without an events array"
    | Some events -> (
        let bad_event ev =
          let has name f = Option.bind (Json.member name ev) f <> None in
          not
            (has "seq" Json.to_float && has "ts" Json.to_float && has "kind" Json.to_string
            && has "name" Json.to_string)
        in
        if List.exists bad_event events then
          Error "postmortem event missing seq/ts/kind/name"
        else
          match Json.member "metrics" json with
          | None -> Error "postmortem without a final metrics snapshot"
          | Some m -> (
              match validate_json m with
              | Error msg -> Error ("postmortem metrics: " ^ msg)
              | Ok _ ->
                  Ok
                    (Printf.sprintf "postmortem with %d events (reason: %s)"
                       (List.length events) reason)))
  end
  else if is_trace json then begin
    match Option.bind (Json.member "traceEvents" json) Json.to_list with
    | None -> Error "traceEvents is not an array"
    | Some events ->
        let begins : (string * float, int) Hashtbl.t = Hashtbl.create 16 in
        let bump key d =
          Hashtbl.replace begins key (d + Option.value ~default:0 (Hashtbl.find_opt begins key))
        in
        let check ev =
          let str name = Option.bind (Json.member name ev) Json.to_string in
          let num name = Option.bind (Json.member name ev) Json.to_float in
          match (str "ph", str "name", num "ts", num "tid") with
          | Some "X", Some _, Some _, _ ->
              if num "dur" = None then Error "X event without dur" else Ok ()
          | Some "B", Some name, Some _, Some tid ->
              bump (name, tid) 1;
              Ok ()
          | Some "E", Some name, Some _, Some tid ->
              bump (name, tid) (-1);
              Ok ()
          | Some ("M" | "I" | "C"), _, _, _ -> Ok ()
          | Some ph, _, _, _ -> Error (Printf.sprintf "unsupported event ph %S" ph)
          | None, _, _, _ -> Error "event without ph"
        in
        let rec go = function
          | [] ->
              if Hashtbl.fold (fun _ d acc -> acc || d <> 0) begins false then
                Error "unmatched B/E events"
              else Ok (Printf.sprintf "trace with %d events" (List.length events))
          | ev :: rest -> ( match check ev with Ok () -> go rest | Error _ as e -> e)
        in
        go events
  end
  else
    match Json.member "counters" json with
    | Some _ -> (
        let keys section =
          match Json.member section json with
          | Some (Json.Obj kvs) -> List.map fst kvs
          | _ -> []
        in
        let count section = List.length (keys section) in
        let counters = keys "counters" and fcounters = keys "fcounters" in
        (* profile cross-check: every profile.op_count{op=X} needs matching
           profile.op_flops{op=X}, every profile.layer_calls{layer=X} needs
           forward and backward seconds — a snapshot that fails this was not
           produced by Profile.publish *)
        let with_prefix prefix l =
          List.filter_map
            (fun k ->
              let lp = String.length prefix in
              if String.length k > lp && String.sub k 0 lp = prefix then
                Some (String.sub k lp (String.length k - lp))
              else None)
            l
        in
        let op_suffixes = with_prefix "profile.op_count" counters in
        let layer_suffixes = with_prefix "profile.layer_calls" counters in
        let missing =
          List.filter_map
            (fun sfx ->
              if List.mem ("profile.op_flops" ^ sfx) fcounters then None
              else Some ("profile.op_flops" ^ sfx))
            op_suffixes
          @ List.concat_map
              (fun sfx ->
                List.filter_map
                  (fun name ->
                    if List.mem (name ^ sfx) fcounters then None else Some (name ^ sfx))
                  [ "profile.layer_forward_seconds"; "profile.layer_backward_seconds" ])
              layer_suffixes
        in
        match missing with
        | m :: _ -> Error (Printf.sprintf "profile section incomplete: missing %s" m)
        | [] ->
            let profile =
              if op_suffixes = [] && layer_suffixes = [] then ""
              else
                Printf.sprintf ", profile section (%d ops, %d layers)"
                  (List.length op_suffixes) (List.length layer_suffixes)
            in
            Ok
              (Printf.sprintf
                 "metrics snapshot with %d counters, %d fcounters, %d gauges, %d histograms%s"
                 (count "counters") (count "fcounters") (count "gauges") (count "histograms")
                 profile))
    | None -> Ok "well-formed JSON (unrecognized schema)"

(* ---------------- run-ledger (JSONL) readers ---------------- *)

(** Parse every non-empty line of a JSONL file. *)
let jsonl_lines path : (Json.t list, string) result =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | l :: rest when String.trim l = "" -> go (i + 1) acc rest
        | l :: rest -> (
            match Json.parse l with
            | Ok j -> go (i + 1) (j :: acc) rest
            | Error msg -> Error (Printf.sprintf "line %d: %s" i msg))
      in
      go 1 [] (List.rev !lines)

let validate_ledger path =
  match jsonl_lines path with
  | Error msg -> Error msg
  | Ok [] -> Error "empty run ledger"
  | Ok lines ->
      if
        List.for_all
          (fun l -> Json.member "ts" l <> None && Json.member "counters" l <> None)
          lines
      then Ok (Printf.sprintf "run ledger with %d snapshots" (List.length lines))
      else Error "ledger line missing ts/counters"

let validate_file path =
  match Json.parse_file path with
  | Error msg -> (
      (* not one JSON document — maybe a JSONL run ledger *)
      match validate_ledger path with
      | Ok summary -> Ok summary
      | Error _ -> Error (Printf.sprintf "%s: invalid JSON: %s" path msg))
  | Ok json -> (
      match validate_json json with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok summary -> Ok summary)

(** The last snapshot of [path] — a metrics JSON file, or the final line
    of a JSONL run ledger. *)
let last_snapshot_json path : (Json.t, string) result =
  match Json.parse_file path with
  | Ok json -> Ok json
  | Error msg -> (
      match jsonl_lines path with
      | Ok (_ :: _ as lines) -> Ok (List.nth lines (List.length lines - 1))
      | Ok [] -> Error (Printf.sprintf "%s: empty run ledger" path)
      | Error _ -> Error (Printf.sprintf "%s: invalid JSON: %s" path msg))

(** [path] rendered in OpenMetrics exposition format ([liger stats
    --openmetrics]); for a run ledger the last snapshot is rendered. *)
let openmetrics_file path : (string, string) result =
  match last_snapshot_json path with
  | Error _ as e -> e
  | Ok json -> (
      let json =
        if is_postmortem json then Option.value ~default:json (Json.member "metrics" json)
        else json
      in
      match Openmetrics.render_json json with
      | Ok _ as ok -> ok
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let buf_metric_sections buf json =
  let section title kind render =
    match Json.member kind json with
    | Some (Json.Obj kvs) when kvs <> [] ->
        Buffer.add_string buf (title ^ ":\n");
        List.iter
          (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-48s %s\n" k (render v)))
          kvs
    | _ -> ()
  in
  let scalar = function
    | Json.Num f -> if Float.is_integer f then Printf.sprintf "%.0f" f else Printf.sprintf "%g" f
    | _ -> "?"
  in
  let hist = function
    | Json.Obj _ as h -> (
        match
          ( Option.bind (Json.member "count" h) Json.to_float,
            Option.bind (Json.member "sum" h) Json.to_float )
        with
        | Some c, Some s -> Printf.sprintf "count=%.0f sum=%g" c s
        | _ -> "?")
    | _ -> "?"
  in
  section "counters" "counters" scalar;
  section "fcounters" "fcounters" scalar;
  section "gauges" "gauges" scalar;
  section "histograms" "histograms" hist

(** Pretty-print a metrics snapshot, run ledger, postmortem dump, or
    trace file. *)
let summarize_file path =
  match last_snapshot_json path with
  | Error msg -> Error msg
  | Ok json when is_postmortem json ->
      let buf = Buffer.create 1024 in
      let reason =
        Option.value ~default:"?" (Option.bind (Json.member "reason" json) Json.to_string)
      in
      let events = Option.value ~default:[] (Option.bind (Json.member "events" json) Json.to_list) in
      Buffer.add_string buf
        (Printf.sprintf "%s: postmortem (%s), %d surviving events\n" path reason
           (List.length events));
      let tail = List.filteri (fun i _ -> i >= List.length events - 15) events in
      List.iter
        (fun ev ->
          let str name = Option.value ~default:"?" (Option.bind (Json.member name ev) Json.to_string) in
          let num name = Option.value ~default:0.0 (Option.bind (Json.member name ev) Json.to_float) in
          let detail = str "detail" in
          Buffer.add_string buf
            (Printf.sprintf "  #%-6.0f d%d %-5s %s%s\n" (num "seq")
               (int_of_float (num "domain")) (str "kind") (str "name")
               (if detail = "" || detail = "?" then "" else " — " ^ detail)))
        tail;
      (match Json.member "metrics" json with
      | Some m ->
          Buffer.add_string buf "final snapshot:\n";
          buf_metric_sections buf m
      | None -> ());
      Ok (Buffer.contents buf)
  | Ok json ->
      let buf = Buffer.create 1024 in
      if is_trace json then begin
        let events =
          Option.value ~default:[] (Option.bind (Json.member "traceEvents" json) Json.to_list)
        in
        let tbl : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 32 in
        List.iter
          (fun ev ->
            match
              ( Option.bind (Json.member "name" ev) Json.to_string,
                Option.bind (Json.member "dur" ev) Json.to_float )
            with
            | Some name, Some dur ->
                let count, total =
                  match Hashtbl.find_opt tbl name with
                  | Some cell -> cell
                  | None ->
                      let cell = (ref 0, ref 0.0) in
                      Hashtbl.add tbl name cell;
                      cell
                in
                incr count;
                total := !total +. dur
            | _ -> ())
          events;
        Buffer.add_string buf
          (Printf.sprintf "%s: %d span events (open in chrome://tracing or ui.perfetto.dev)\n"
             path (List.length events));
        let rows =
          Hashtbl.fold (fun name (c, t) acc -> (name, !c, !t /. 1e6) :: acc) tbl []
          |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
          |> List.filteri (fun i _ -> i < 15)
        in
        buf_table buf
          ([ "span"; "count"; "total s" ]
          :: List.map
               (fun (name, c, t) -> [ name; string_of_int c; Printf.sprintf "%.3f" t ])
               rows)
      end
      else begin
        (if Json.member "ts" json <> None then
           Buffer.add_string buf (Printf.sprintf "%s: run ledger (last snapshot)\n" path)
         else Buffer.add_string buf (Printf.sprintf "%s: metrics snapshot\n" path));
        buf_metric_sections buf json
      end;
      Ok (Buffer.contents buf)

(* ---------------- flat views + diffing ([liger stats --diff]) ---------------- *)

(** A metrics snapshot / flat bench JSON / history record as one flat
    name→number map, the common currency of {!Bench_store.diff}.
    Histograms contribute [name.sum] and [name.count]; booleans become
    0/1. *)
let flatten_json (json : Json.t) : ((string * float) list, string) result =
  if is_trace json then Error "trace files cannot be diffed (no scalar metrics)"
  else if Json.member "counters" json <> None then begin
    let nums section suffixes =
      match Json.member section json with
      | Some (Json.Obj kvs) ->
          List.concat_map
            (fun (k, v) ->
              match suffixes with
              | [] -> ( match Json.to_float v with Some f -> [ (k, f) ] | None -> [])
              | sfx ->
                  List.filter_map
                    (fun s ->
                      Option.map (fun f -> (k ^ "." ^ s, f)) (Option.bind (Json.member s v) Json.to_float))
                    sfx)
            kvs
      | _ -> []
    in
    Ok
      (nums "counters" [] @ nums "fcounters" [] @ nums "gauges" []
      @ nums "histograms" [ "sum"; "count" ]
      |> List.sort compare)
  end
  else if Json.member "benchmark" json <> None && Json.member "metrics" json <> None then
    (* a single Bench_store record pasted as a plain JSON file *)
    match Bench_store.parse_record json with
    | Ok r -> Ok r.Bench_store.metrics
    | Error msg -> Error msg
  else
    match json with
    | Json.Obj fields ->
        let nums =
          List.filter_map
            (fun (k, v) ->
              match v with
              | Json.Num f -> Some (k, f)
              | Json.Bool b -> Some (k, if b then 1.0 else 0.0)
              | _ -> None)
            fields
        in
        if nums = [] then Error "no numeric fields to diff" else Ok nums
    | _ -> Error "not a JSON object"

let record_label path (r : Bench_store.record) =
  Printf.sprintf "%s [%s %s@%s jobs=%d]" path r.Bench_store.benchmark r.Bench_store.date
    r.Bench_store.rev r.Bench_store.jobs

(** Load [path] as a flat metric map plus a human label: a JSON snapshot /
    flat bench file directly, or — when the file is JSONL — the last record
    of a {!Bench_store} history. *)
let load_flat path : ((string * float) list * string, string) result =
  match Json.parse_file path with
  | Ok json -> (
      match flatten_json json with
      | Ok flat -> Ok (flat, path)
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  | Error json_msg -> (
      match Bench_store.load path with
      | Ok [] -> Error (Printf.sprintf "%s: empty history" path)
      | Ok records ->
          let r = List.nth records (List.length records - 1) in
          Ok (r.Bench_store.metrics, record_label path r)
      | Error _ -> Error (Printf.sprintf "%s: invalid JSON: %s" path json_msg))

(** [diff_files a b] renders the threshold-flagged delta table between two
    snapshots (each a metrics JSON, flat bench JSON, or JSONL history whose
    last record is used). *)
let diff_files ?threshold a b =
  match (load_flat a, load_flat b) with
  | Ok (fa, la), Ok (fb, lb) ->
      Ok (Printf.sprintf "diff: %s -> %s\n%s" la lb (Bench_store.render_diff ?threshold fa fb))
  | (Error _ as e), _ | _, (Error _ as e) -> e

(* ---------------- [liger top] ---------------- *)

(** The most recently updated run ledger under {!runs_root} (what
    [liger top] tails when no run is named). *)
let latest_run_ledger () =
  match Sys.readdir (runs_root ()) with
  | exception Sys_error _ -> None
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun name ->
             let ledger =
               Filename.concat (Filename.concat (runs_root ()) name) "metrics.jsonl"
             in
             match Unix.stat ledger with
             | st -> Some ((st.Unix.st_mtime, ledger), ledger)
             | exception Unix.Unix_error _ -> None)
      |> List.sort (fun (a, _) (b, _) -> compare b a)
      |> function [] -> None | (_, ledger) :: _ -> Some ledger

(** Render one frame of the [liger top] live view from the latest ledger
    snapshot [cur], with per-interval deltas against [prev] and, when the
    caller evaluated the ledger, the {!Health} verdicts at the bottom. *)
let render_top ?prev ?health ~source cur : (string, string) result =
  match Openmetrics.snapshot_of_json cur with
  | Error _ as e -> e
  | Ok snap ->
      let prev_snap =
        Option.bind prev (fun p -> Result.to_option (Openmetrics.snapshot_of_json p))
      in
      let ts j = Option.bind (Json.member "ts" j) Json.to_float in
      let dt =
        match (ts cur, Option.bind prev ts) with
        | Some a, Some b when a > b -> Printf.sprintf "  (+%.1fs)" (a -. b)
        | _ -> ""
      in
      let seq =
        match Option.bind (Json.member "seq" cur) Json.to_float with
        | Some s -> Printf.sprintf "  snapshot #%.0f" s
        | None -> ""
      in
      let buf = Buffer.create 1024 in
      let line fmt =
        Printf.ksprintf
          (fun s ->
            Buffer.add_string buf s;
            Buffer.add_char buf '\n')
          fmt
      in
      line "liger top — %s%s%s" source seq dt;
      let g ?labels name = Metrics.gauge_value ?labels snap name in
      let pgauge name = Option.bind prev_snap (fun ps -> Metrics.gauge_value ps name) in
      let with_delta name cur =
        match pgauge name with
        | Some p when cur >= p -> Printf.sprintf "%.0f (+%.0f)" cur (cur -. p)
        | _ -> Printf.sprintf "%.0f" cur
      in
      (* training throughput / loss / validation, per model *)
      List.iter
        (fun (e : Metrics.entry) ->
          let model = match e.Metrics.e_labels with (_, v) :: _ -> v | [] -> "?" in
          let labels = e.Metrics.e_labels in
          let eps = match e.Metrics.e_value with Metrics.G x -> x | _ -> 0.0 in
          line "train[%s]: %.1f ex/s, loss %s, valid %s%s" model eps
            (match g ~labels "train.loss" with Some l -> Printf.sprintf "%.4f" l | None -> "-")
            (match g ~labels "train.valid_score" with
            | Some v -> Printf.sprintf "%.3f" v
            | None -> "-")
            (match g ~labels "train.eta_seconds" with
            | Some eta when eta > 0.0 -> Printf.sprintf ", eta %.0fs" eta
            | _ -> ""))
        (Metrics.entries_with snap "train.examples_per_second");
      (* grad-norm quantiles with per-interval step delta *)
      List.iter
        (fun (e : Metrics.entry) ->
          match e.Metrics.e_value with
          | Metrics.H h when h.Metrics.count > 0 ->
              let fresh =
                match
                  Option.bind prev_snap (fun ps ->
                      Metrics.hist_view ~labels:e.Metrics.e_labels ps "train.grad_norm")
                with
                | Some ph -> h.Metrics.count - ph.Metrics.count
                | None -> h.Metrics.count
              in
              line "grad-norm: p50 %.3f  p90 %.3f  p99 %.3f  (%d steps, +%d this interval)"
                (Metrics.quantile h 0.5) (Metrics.quantile h 0.9) (Metrics.quantile h 0.99)
                h.Metrics.count fresh
          | _ -> ())
        (Metrics.entries_with snap "train.grad_norm");
      (* pool utilization *)
      let fsum name =
        List.fold_left
          (fun acc (e : Metrics.entry) ->
            match e.Metrics.e_value with Metrics.F x -> acc +. x | _ -> acc)
          0.0
          (Metrics.entries_with snap name)
      in
      let busy_lanes = List.length (Metrics.entries_with snap "parallel.busy_seconds") in
      let wall = Metrics.fcounter_value snap "parallel.wall_seconds" in
      (if busy_lanes > 0 && wall > 0.0 then
         line "pool: %.1f%% utilization (%d lanes, %d tasks in %d batches)"
           (100.0 *. fsum "parallel.busy_seconds" /. (wall *. float_of_int busy_lanes))
           busy_lanes
           (Metrics.counter_value snap "parallel.tasks")
           (Metrics.counter_value snap "parallel.batches"));
      (* GC pressure *)
      (match g "gc.minor_collections" with
      | Some minor ->
          line "gc: minor %s, major %s, heap %.1f MB (top %.1f MB)"
            (with_delta "gc.minor_collections" minor)
            (match g "gc.major_collections" with
            | Some x -> with_delta "gc.major_collections" x
            | None -> "-")
            (Option.value ~default:0.0 (g "gc.heap_words") *. 8.0 /. 1e6)
            (Option.value ~default:0.0 (g "gc.top_heap_words") *. 8.0 /. 1e6)
      | None -> ());
      (* bufpool occupancy (gauges are per-domain; sum the lanes) *)
      let gsum name =
        List.fold_left
          (fun acc (e : Metrics.entry) ->
            match e.Metrics.e_value with Metrics.G x -> acc +. x | _ -> acc)
          0.0
          (Metrics.entries_with snap name)
      in
      let hits = gsum "bufpool.hits" and misses = gsum "bufpool.misses" in
      (if hits +. misses > 0.0 then
         line "bufpool: %.0f leased (hw %.0f), %.0f pooled (%.1f MB), %.1f%% hit rate"
           (gsum "bufpool.leased") (gsum "bufpool.hw_leased") (gsum "bufpool.pooled_buffers")
           (gsum "bufpool.pooled_elements" *. 8.0 /. 1e6)
           (100.0 *. hits /. (hits +. misses)));
      (match g "train.tape_nodes" with
      | Some n -> line "tape: %.0f nodes on the last batched tape" n
      | None -> ());
      (* serving endpoints (when a liger serve process is exporting):
         request counts, latency quantiles and per-interval QPS *)
      List.iter
        (fun (e : Metrics.entry) ->
          match e.Metrics.e_value with
          | Metrics.H h when h.Metrics.count > 0 ->
              let endpoint =
                match List.assoc_opt "endpoint" e.Metrics.e_labels with
                | Some ep -> ep
                | None -> "?"
              in
              let qps =
                match
                  ( Option.bind prev_snap (fun ps ->
                        Metrics.hist_view ~labels:e.Metrics.e_labels ps
                          "serve.latency_seconds"),
                    ts cur,
                    Option.bind prev ts )
                with
                | Some ph, Some t1, Some t0 when t1 > t0 ->
                    Printf.sprintf ", %.1f qps"
                      (float_of_int (h.Metrics.count - ph.Metrics.count) /. (t1 -. t0))
                | _ -> ""
              in
              line "serve[%s]: %d reqs, p50 %.1f ms, p99 %.1f ms%s" endpoint
                h.Metrics.count
                (1000.0 *. Metrics.quantile h 0.5)
                (1000.0 *. Metrics.quantile h 0.99)
                qps
          | _ -> ())
        (Metrics.entries_with snap "serve.latency_seconds");
      (match g "serve.cache_hits" with
      | Some hits ->
          let v name = Option.value ~default:0.0 (g name) in
          line "serve cache: %.0f entries, %.0f hits / %.0f misses, %.0f evicted"
            (v "serve.cache_entries") hits (v "serve.cache_misses")
            (v "serve.cache_evictions")
      | None -> ());
      (* embedding drift (when the dynamics streams are recording) *)
      List.iter
        (fun (e : Metrics.entry) ->
          let model = match e.Metrics.e_labels with (_, v) :: _ -> v | [] -> "?" in
          let drift = match e.Metrics.e_value with Metrics.G x -> x | _ -> 0.0 in
          line "drift[%s]: %.4f cosine/epoch%s" model drift
            (match g ~labels:e.Metrics.e_labels "dynamics.nn_churn" with
            | Some c -> Printf.sprintf ", nn-churn %.2f" c
            | None -> ""))
        (Metrics.entries_with snap "dynamics.embed_drift");
      (* health verdicts over the whole ledger *)
      (match health with
      | None -> ()
      | Some [] -> line "health: all rules passed"
      | Some findings ->
          List.iter (fun f -> line "%s" (Health.render_finding f)) findings);
      Ok (Buffer.contents buf)

(** How to get a ledger when autodiscovery comes up empty — shared by
    [liger top] and [liger report]. *)
let no_ledger_hint () =
  Printf.sprintf
    "expected layout: %s/<run-id>/metrics.jsonl (one JSON snapshot per line)\n\
     start an instrumented run with --metrics-every SECONDS (or \
     LIGER_METRICS_EVERY=SECONDS), e.g.\n\
    \  liger train -n 60 --epochs 8 --batch 16 --metrics-every 1 --dynamics"
    (runs_root ())

let empty_ledger_hint path =
  Printf.sprintf
    "%s exists but holds no snapshots yet: the emitter appends the first line one \
     interval after startup and a final line when the run exits.  Use a smaller \
     --metrics-every, or wait for the run to finish."
    path

(** One [liger top] frame for the ledger at [path]. *)
let top_frame path : (string, string) result =
  match jsonl_lines path with
  | Error msg -> Error (Printf.sprintf "%s: %s\n%s" path msg (no_ledger_hint ()))
  | Ok [] -> Error (Printf.sprintf "%s: empty run ledger\n%s" path (empty_ledger_hint path))
  | Ok lines ->
      let n = List.length lines in
      let cur = List.nth lines (n - 1) in
      let prev = if n >= 2 then Some (List.nth lines (n - 2)) else None in
      render_top ?prev ~health:(Health.evaluate lines) ~source:path cur

(* ---------------- [liger report] ---------------- *)

let read_file_opt path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Some s
          | exception End_of_file -> None)

(** Resolve a [liger report]/[liger top] run argument to a run directory:
    an explicit path, a run id under {!runs_root}, or — when absent — the
    directory of the most recently updated ledger. *)
let resolve_run_dir arg : (string, string) result =
  match arg with
  | Some arg ->
      if Sys.file_exists arg && Sys.is_directory arg then Ok arg
      else
        let candidate = Filename.concat (runs_root ()) arg in
        if Sys.file_exists candidate && Sys.is_directory candidate then Ok candidate
        else
          Error
            (Printf.sprintf "no run directory %s (nor %s)\n%s" arg candidate
               (no_ledger_hint ()))
  | None -> (
      match latest_run_ledger () with
      | Some ledger -> Ok (Filename.dirname ledger)
      | None ->
          Error
            (Printf.sprintf "no run ledger found under %s/\n%s" (runs_root ())
               (no_ledger_hint ())))

(** Load everything [liger report] renders for one run directory: the
    ledger, the final metrics snapshot, the probe table, a postmortem if
    the run crashed, and — when [bench_history] names a
    [BENCH_history.jsonl] — the training records from it (most recent
    last, capped at 8). *)
let load_report_run ?bench_history dir : (Report_html.run, string) result =
  let ledger = Filename.concat dir "metrics.jsonl" in
  let lines = match jsonl_lines ledger with Ok ls -> ls | Error _ -> [] in
  let final =
    match Json.parse_file (Filename.concat dir "metrics.json") with
    | Ok j -> Some j
    | Error _ -> None
  in
  if lines = [] && final = None then
    Error
      (if Sys.file_exists ledger then
         Printf.sprintf "%s: empty run ledger\n%s" ledger (empty_ledger_hint ledger)
       else
         Printf.sprintf "%s has neither metrics.jsonl nor metrics.json\n%s" dir
           (no_ledger_hint ()))
  else
    let postmortem =
      match Json.parse_file (Filename.concat dir "postmortem.json") with
      | Ok j when is_postmortem j -> Some j
      | _ -> None
    in
    let bench =
      match bench_history with
      | None -> []
      | Some path -> (
          match Bench_store.load path with
          | Error _ -> []
          | Ok records ->
              let train =
                List.filter
                  (fun (r : Bench_store.record) ->
                    String.length r.Bench_store.benchmark >= 6
                    && String.sub r.Bench_store.benchmark 0 6 = "train.")
                  records
              in
              let n = List.length train in
              List.filteri (fun i _ -> i >= n - 8) train)
    in
    Ok
      {
        Report_html.label = Filename.basename dir;
        lines;
        final;
        probe = read_file_opt (Filename.concat dir "probe_accuracy.txt");
        postmortem;
        bench;
      }

(** [diff_history path] compares the last two records of one JSONL
    history. *)
let diff_history ?threshold path =
  match Bench_store.load path with
  | Error msg -> Error msg
  | Ok records when List.length records < 2 ->
      Error (Printf.sprintf "%s: need at least 2 records to diff (found %d)" path
               (List.length records))
  | Ok records ->
      let n = List.length records in
      let a = List.nth records (n - 2) and b = List.nth records (n - 1) in
      Ok
        (Printf.sprintf "diff: %s -> %s\n%s" (record_label path a) (record_label path b)
           (Bench_store.render_diff ?threshold a.Bench_store.metrics b.Bench_store.metrics))
