(** The observability front door: logging setup, env-var wiring for the
    {!Metrics} registry and {!Span} tracer, the human-readable end-of-run
    report, and the readers behind [liger stats].

    Conventions used across the pipeline (all optional — a metric that was
    never recorded simply doesn't appear in the snapshot):

    - [parallel.*] — pool telemetry (tasks, batches, wall and per-domain
      busy seconds), recorded by {!Liger_parallel.Parallel}.
    - [filter.kept] / [filter.dropped{reason=...}] — Table-1 verdicts.
    - [testgen.*] — Randoop-analogue attempts/crashes/timeouts.
    - [encode.*], [pipeline.*], [coset.*] — corpus construction.
    - [train.*] — per-epoch training telemetry (loss, valid score,
      grad-norm histogram, skipped steps, epoch seconds).
    - [experiments.cache_hits/misses] — sweep cache effectiveness. *)

module Json = Json
module Metrics = Metrics
module Span = Span
module Profile = Profile
module Bench_store = Bench_store

(* ---------------- logging ---------------- *)

(** [LIGER_LOG] levels; [quiet] disables logging entirely. *)
let level_of_string = function
  | "quiet" -> Ok None
  | "error" -> Ok (Some Logs.Error)
  | "warn" | "warning" -> Ok (Some Logs.Warning)
  | "info" -> Ok (Some Logs.Info)
  | "debug" -> Ok (Some Logs.Debug)
  | s -> Error s

let reporter ppf =
  let report src level ~over k msgf =
    let k _ =
      over ();
      k ()
    in
    msgf @@ fun ?header ?tags fmt ->
    ignore header;
    ignore tags;
    let t = Unix.gettimeofday () in
    let tm = Unix.localtime t in
    let ms = int_of_float (Float.rem t 1.0 *. 1000.0) in
    Format.kfprintf k ppf
      ("[%02d:%02d:%02d.%03d] [%a] [%s] @[" ^^ fmt ^^ "@]@.")
      tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec ms Logs.pp_level level
      (Logs.Src.name src)
  in
  { Logs.report }

(** Install a [Logs] reporter (timestamps + level + source prefix) writing
    to [out] (stderr by default), at the level named by [LIGER_LOG]
    ([quiet|error|warn|info|debug]; default [warn]).  Without this call the
    [Logs.info]/[Logs.warn] sprinkled through the pipeline go nowhere. *)
let init_logging ?(out = Format.err_formatter) () =
  let level =
    match Sys.getenv_opt "LIGER_LOG" with
    | None -> Some Logs.Warning
    | Some s -> (
        match level_of_string (String.lowercase_ascii (String.trim s)) with
        | Ok level -> level
        | Error s ->
            Printf.eprintf
              "liger: ignoring LIGER_LOG=%S (expected quiet|error|warn|info|debug)\n%!" s;
            Some Logs.Warning)
  in
  Logs.set_level ~all:true level;
  Logs.set_reporter (reporter out)

(* ---------------- enabling + exit dumps ---------------- *)

let metrics_path = ref None
let trace_path = ref None
let exit_hook = ref false

(** Write whatever outputs were configured (also runs automatically on
    exit).  When profiling is on, the profiler's per-op/per-layer totals are
    published into the registry first so they land in the snapshot. *)
let flush () =
  if Profile.enabled () then Profile.publish ();
  (match !metrics_path with Some p -> Metrics.write p | None -> ());
  match !trace_path with Some p -> Span.write p | None -> ()

let truthy s =
  match String.lowercase_ascii (String.trim s) with
  | "1" | "true" | "yes" | "on" -> true
  | _ -> false

(** Resolve the telemetry outputs — explicit arguments (CLI flags) win over
    the [LIGER_METRICS_OUT] / [LIGER_TRACE_OUT] environment — enable the
    corresponding subsystems, and arrange for the files to be written on
    exit.  [profile] (or [LIGER_PROFILE=1]) additionally turns on the model
    profiler, which implies the metrics registry (that is where its totals
    are published).  With nothing configured this is a no-op and the whole
    telemetry layer stays disabled. *)
let init ?metrics_out ?trace_out ?(profile = false) () =
  let pick arg env = match arg with Some _ as p -> p | None -> Sys.getenv_opt env in
  (match pick metrics_out "LIGER_METRICS_OUT" with
  | Some p ->
      metrics_path := Some p;
      Metrics.enable ()
  | None -> ());
  (match pick trace_out "LIGER_TRACE_OUT" with
  | Some p ->
      trace_path := Some p;
      Span.enable ()
  | None -> ());
  (if profile || (match Sys.getenv_opt "LIGER_PROFILE" with Some s -> truthy s | None -> false)
   then begin
     Profile.enable ();
     Metrics.enable ()
   end);
  if (!metrics_path <> None || !trace_path <> None) && not !exit_hook then begin
    exit_hook := true;
    at_exit flush
  end

let enabled () = Metrics.enabled () || Span.enabled () || Profile.enabled ()

(* ---------------- the end-of-run report ---------------- *)

let buf_table buf rows =
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w cell -> max w (String.length cell)) ws row)
      (List.map String.length (List.hd rows))
      rows
  in
  List.iter
    (fun row ->
      Buffer.add_string buf "  ";
      List.iteri
        (fun i cell ->
          let w = List.nth widths i in
          Buffer.add_string buf (if i = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "  %*s" w cell))
        row;
      Buffer.add_char buf '\n')
    rows

(** The human-readable end-of-run report: top spans by self time, pool
    utilization, and the Table-1 drop-reason tally — each section only when
    its data was recorded. *)
let report () =
  let buf = Buffer.create 1024 in
  let snap = Metrics.snapshot () in
  Buffer.add_string buf "== observability report ==\n";
  (* top spans by self time *)
  (match Span.aggregate () with
  | [] -> ()
  | aggs ->
      Buffer.add_string buf "top spans by self time:\n";
      let top = List.filteri (fun i _ -> i < 12) aggs in
      buf_table buf
        ([ "span"; "count"; "total s"; "self s" ]
        :: List.map
             (fun (a : Span.agg) ->
               [ a.Span.agg_name; string_of_int a.Span.agg_count;
                 Printf.sprintf "%.3f" a.Span.total_s; Printf.sprintf "%.3f" a.Span.self_s ])
             top));
  (* pool utilization *)
  let busy = Metrics.entries_with snap "parallel.busy_seconds" in
  let wall = Metrics.fcounter_value snap "parallel.wall_seconds" in
  (if busy <> [] && wall > 0.0 then begin
     let lanes = List.length busy in
     let total_busy =
       List.fold_left
         (fun acc (e : Metrics.entry) ->
           match e.Metrics.e_value with Metrics.F x -> acc +. x | _ -> acc)
         0.0 busy
     in
     Buffer.add_string buf
       (Printf.sprintf "pool utilization: %.1f%% (%.2fs busy / %.2fs wall x %d lanes; %d tasks in %d batches)\n"
          (100.0 *. total_busy /. (wall *. float_of_int lanes))
          total_busy wall lanes
          (Metrics.counter_value snap "parallel.tasks")
          (Metrics.counter_value snap "parallel.batches"))
   end);
  (* drop reasons *)
  let dropped = Metrics.entries_with snap "filter.dropped" in
  (if dropped <> [] then begin
     Buffer.add_string buf "filter verdicts:\n";
     let rows =
       [ "kept"; string_of_int (Metrics.counter_value snap "filter.kept") ]
       :: List.map
            (fun (e : Metrics.entry) ->
              let reason =
                match e.Metrics.e_labels with (_, v) :: _ -> v | [] -> "(unlabeled)"
              in
              let n = match e.Metrics.e_value with Metrics.C n -> n | _ -> 0 in
              [ "dropped: " ^ reason; string_of_int n ])
            dropped
     in
     buf_table buf ([ "verdict"; "methods" ] :: rows)
   end);
  (* training *)
  (match Metrics.hist_view snap "train.grad_norm" with
  | Some h when h.Metrics.count > 0 ->
      Buffer.add_string buf
        (Printf.sprintf "training: %d steps (%d skipped), grad-norm p50 %.3f p95 %.3f\n"
           h.Metrics.count
           (Metrics.counter_value snap "train.skipped_steps")
           (Metrics.quantile h 0.5) (Metrics.quantile h 0.95))
  | _ -> ());
  let hits = Metrics.counter_value snap "experiments.cache_hits" in
  let misses = Metrics.counter_value snap "experiments.cache_misses" in
  if hits + misses > 0 then
    Buffer.add_string buf
      (Printf.sprintf "experiment cache: %d hits / %d misses\n" hits misses);
  (* training throughput (recorded per-model by Train.fit when metrics are on) *)
  List.iter
    (fun (e : Metrics.entry) ->
      let model = match e.Metrics.e_labels with (_, v) :: _ -> v | [] -> "?" in
      let eps = match e.Metrics.e_value with Metrics.G x -> x | _ -> 0.0 in
      let labels = e.Metrics.e_labels in
      let sps =
        Option.value ~default:0.0
          (Metrics.gauge_value ~labels snap "train.subtokens_per_second")
      in
      Buffer.add_string buf
        (Printf.sprintf "throughput[%s]: %.1f examples/s, %.1f sub-tokens/s%s\n" model eps sps
           (match Metrics.gauge_value ~labels snap "train.eta_seconds" with
           | Some eta when eta > 0.0 -> Printf.sprintf " (eta %.1fs)" eta
           | _ -> "")))
    (Metrics.entries_with snap "train.examples_per_second");
  (* model profile *)
  (if Profile.enabled () then begin
     let p = Profile.snapshot () in
     (if p.Profile.layers <> [] then begin
        let step_total =
          List.fold_left
            (fun acc (l : Profile.layer_stat) -> acc +. l.Profile.fwd_self_s +. l.Profile.bwd_s)
            p.Profile.untagged_bwd_s p.Profile.layers
        in
        let pct x = if step_total > 0.0 then 100.0 *. x /. step_total else 0.0 in
        Buffer.add_string buf "profile: per-layer time (self = children excluded):\n";
        let rows =
          List.map
            (fun (l : Profile.layer_stat) ->
              [ l.Profile.layer_name;
                string_of_int l.Profile.calls;
                Printf.sprintf "%.3f" l.Profile.fwd_total_s;
                Printf.sprintf "%.3f" l.Profile.fwd_self_s;
                Printf.sprintf "%.3f" l.Profile.bwd_s;
                Printf.sprintf "%.1f%%" (pct (l.Profile.fwd_self_s +. l.Profile.bwd_s)) ])
            p.Profile.layers
          @
          if p.Profile.untagged_bwd_s > 0.0 then
            [ [ "(untagged)"; "-"; "-"; "-";
                Printf.sprintf "%.3f" p.Profile.untagged_bwd_s;
                Printf.sprintf "%.1f%%" (pct p.Profile.untagged_bwd_s) ] ]
          else []
        in
        buf_table buf ([ "layer"; "calls"; "fwd s"; "fwd self s"; "bwd s"; "% step" ] :: rows)
      end);
     (if p.Profile.ops <> [] then begin
        Buffer.add_string buf "profile: top ops by FLOPs:\n";
        let by_flops =
          List.sort
            (fun (a : Profile.op_stat) b -> compare (b.Profile.flops, a.Profile.op_name) (a.Profile.flops, b.Profile.op_name))
            p.Profile.ops
          |> List.filteri (fun i _ -> i < 16)
        in
        buf_table buf
          ([ "op"; "count"; "Mflop"; "MB"; "s" ]
          :: List.map
               (fun (o : Profile.op_stat) ->
                 [ o.Profile.op_name;
                   string_of_int o.Profile.count;
                   Printf.sprintf "%.2f" (o.Profile.flops /. 1e6);
                   Printf.sprintf "%.2f" (o.Profile.bytes /. 1e6);
                   (if o.Profile.seconds > 0.0 then Printf.sprintf "%.3f" o.Profile.seconds
                    else "-") ])
               by_flops);
        Buffer.add_string buf
          (Printf.sprintf "profile: %.2f Mflop total; tensor memory peak %.2f MB, live %.2f MB\n"
             (Profile.total_flops p /. 1e6)
             (float_of_int p.Profile.snap_peak_bytes /. 1e6)
             (float_of_int p.Profile.snap_live_bytes /. 1e6))
      end)
   end);
  Buffer.contents buf

let print_report () = if enabled () then prerr_string (report ())

(* ---------------- readers for [liger stats] ---------------- *)

let is_trace json = Json.member "traceEvents" json <> None

(** Structural validation of a telemetry file: well-formed JSON, and for
    traces every event must be a complete "X" event with a duration (or a
    matched "B"/"E" pair).  Returns a one-line summary. *)
let validate_json json =
  if is_trace json then begin
    match Option.bind (Json.member "traceEvents" json) Json.to_list with
    | None -> Error "traceEvents is not an array"
    | Some events ->
        let begins : (string * float, int) Hashtbl.t = Hashtbl.create 16 in
        let bump key d =
          Hashtbl.replace begins key (d + Option.value ~default:0 (Hashtbl.find_opt begins key))
        in
        let check ev =
          let str name = Option.bind (Json.member name ev) Json.to_string in
          let num name = Option.bind (Json.member name ev) Json.to_float in
          match (str "ph", str "name", num "ts", num "tid") with
          | Some "X", Some _, Some _, _ ->
              if num "dur" = None then Error "X event without dur" else Ok ()
          | Some "B", Some name, Some _, Some tid ->
              bump (name, tid) 1;
              Ok ()
          | Some "E", Some name, Some _, Some tid ->
              bump (name, tid) (-1);
              Ok ()
          | Some ("M" | "I" | "C"), _, _, _ -> Ok ()
          | Some ph, _, _, _ -> Error (Printf.sprintf "unsupported event ph %S" ph)
          | None, _, _, _ -> Error "event without ph"
        in
        let rec go = function
          | [] ->
              if Hashtbl.fold (fun _ d acc -> acc || d <> 0) begins false then
                Error "unmatched B/E events"
              else Ok (Printf.sprintf "trace with %d events" (List.length events))
          | ev :: rest -> ( match check ev with Ok () -> go rest | Error _ as e -> e)
        in
        go events
  end
  else
    match Json.member "counters" json with
    | Some _ -> (
        let keys section =
          match Json.member section json with
          | Some (Json.Obj kvs) -> List.map fst kvs
          | _ -> []
        in
        let count section = List.length (keys section) in
        let counters = keys "counters" and fcounters = keys "fcounters" in
        (* profile cross-check: every profile.op_count{op=X} needs matching
           profile.op_flops{op=X}, every profile.layer_calls{layer=X} needs
           forward and backward seconds — a snapshot that fails this was not
           produced by Profile.publish *)
        let with_prefix prefix l =
          List.filter_map
            (fun k ->
              let lp = String.length prefix in
              if String.length k > lp && String.sub k 0 lp = prefix then
                Some (String.sub k lp (String.length k - lp))
              else None)
            l
        in
        let op_suffixes = with_prefix "profile.op_count" counters in
        let layer_suffixes = with_prefix "profile.layer_calls" counters in
        let missing =
          List.filter_map
            (fun sfx ->
              if List.mem ("profile.op_flops" ^ sfx) fcounters then None
              else Some ("profile.op_flops" ^ sfx))
            op_suffixes
          @ List.concat_map
              (fun sfx ->
                List.filter_map
                  (fun name ->
                    if List.mem (name ^ sfx) fcounters then None else Some (name ^ sfx))
                  [ "profile.layer_forward_seconds"; "profile.layer_backward_seconds" ])
              layer_suffixes
        in
        match missing with
        | m :: _ -> Error (Printf.sprintf "profile section incomplete: missing %s" m)
        | [] ->
            let profile =
              if op_suffixes = [] && layer_suffixes = [] then ""
              else
                Printf.sprintf ", profile section (%d ops, %d layers)"
                  (List.length op_suffixes) (List.length layer_suffixes)
            in
            Ok
              (Printf.sprintf
                 "metrics snapshot with %d counters, %d fcounters, %d gauges, %d histograms%s"
                 (count "counters") (count "fcounters") (count "gauges") (count "histograms")
                 profile))
    | None -> Ok "well-formed JSON (unrecognized schema)"

let validate_file path =
  match Json.parse_file path with
  | Error msg -> Error (Printf.sprintf "%s: invalid JSON: %s" path msg)
  | Ok json -> (
      match validate_json json with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok summary -> Ok summary)

(** Pretty-print a metrics snapshot or summarize a trace file. *)
let summarize_file path =
  match Json.parse_file path with
  | Error msg -> Error (Printf.sprintf "%s: invalid JSON: %s" path msg)
  | Ok json ->
      let buf = Buffer.create 1024 in
      if is_trace json then begin
        let events =
          Option.value ~default:[] (Option.bind (Json.member "traceEvents" json) Json.to_list)
        in
        let tbl : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 32 in
        List.iter
          (fun ev ->
            match
              ( Option.bind (Json.member "name" ev) Json.to_string,
                Option.bind (Json.member "dur" ev) Json.to_float )
            with
            | Some name, Some dur ->
                let count, total =
                  match Hashtbl.find_opt tbl name with
                  | Some cell -> cell
                  | None ->
                      let cell = (ref 0, ref 0.0) in
                      Hashtbl.add tbl name cell;
                      cell
                in
                incr count;
                total := !total +. dur
            | _ -> ())
          events;
        Buffer.add_string buf
          (Printf.sprintf "%s: %d span events (open in chrome://tracing or ui.perfetto.dev)\n"
             path (List.length events));
        let rows =
          Hashtbl.fold (fun name (c, t) acc -> (name, !c, !t /. 1e6) :: acc) tbl []
          |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
          |> List.filteri (fun i _ -> i < 15)
        in
        buf_table buf
          ([ "span"; "count"; "total s" ]
          :: List.map
               (fun (name, c, t) -> [ name; string_of_int c; Printf.sprintf "%.3f" t ])
               rows)
      end
      else begin
        let section title kind render =
          match Json.member kind json with
          | Some (Json.Obj kvs) when kvs <> [] ->
              Buffer.add_string buf (title ^ ":\n");
              List.iter
                (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-48s %s\n" k (render v)))
                kvs
          | _ -> ()
        in
        let scalar = function
          | Json.Num f -> if Float.is_integer f then Printf.sprintf "%.0f" f else Printf.sprintf "%g" f
          | _ -> "?"
        in
        let hist = function
          | Json.Obj _ as h -> (
              match
                ( Option.bind (Json.member "count" h) Json.to_float,
                  Option.bind (Json.member "sum" h) Json.to_float )
              with
              | Some c, Some s -> Printf.sprintf "count=%.0f sum=%g" c s
              | _ -> "?")
          | _ -> "?"
        in
        Buffer.add_string buf (Printf.sprintf "%s: metrics snapshot\n" path);
        section "counters" "counters" scalar;
        section "fcounters" "fcounters" scalar;
        section "gauges" "gauges" scalar;
        section "histograms" "histograms" hist
      end;
      Ok (Buffer.contents buf)

(* ---------------- flat views + diffing ([liger stats --diff]) ---------------- *)

(** A metrics snapshot / flat bench JSON / history record as one flat
    name→number map, the common currency of {!Bench_store.diff}.
    Histograms contribute [name.sum] and [name.count]; booleans become
    0/1. *)
let flatten_json (json : Json.t) : ((string * float) list, string) result =
  if is_trace json then Error "trace files cannot be diffed (no scalar metrics)"
  else if Json.member "counters" json <> None then begin
    let nums section suffixes =
      match Json.member section json with
      | Some (Json.Obj kvs) ->
          List.concat_map
            (fun (k, v) ->
              match suffixes with
              | [] -> ( match Json.to_float v with Some f -> [ (k, f) ] | None -> [])
              | sfx ->
                  List.filter_map
                    (fun s ->
                      Option.map (fun f -> (k ^ "." ^ s, f)) (Option.bind (Json.member s v) Json.to_float))
                    sfx)
            kvs
      | _ -> []
    in
    Ok
      (nums "counters" [] @ nums "fcounters" [] @ nums "gauges" []
      @ nums "histograms" [ "sum"; "count" ]
      |> List.sort compare)
  end
  else if Json.member "benchmark" json <> None && Json.member "metrics" json <> None then
    (* a single Bench_store record pasted as a plain JSON file *)
    match Bench_store.parse_record json with
    | Ok r -> Ok r.Bench_store.metrics
    | Error msg -> Error msg
  else
    match json with
    | Json.Obj fields ->
        let nums =
          List.filter_map
            (fun (k, v) ->
              match v with
              | Json.Num f -> Some (k, f)
              | Json.Bool b -> Some (k, if b then 1.0 else 0.0)
              | _ -> None)
            fields
        in
        if nums = [] then Error "no numeric fields to diff" else Ok nums
    | _ -> Error "not a JSON object"

let record_label path (r : Bench_store.record) =
  Printf.sprintf "%s [%s %s@%s jobs=%d]" path r.Bench_store.benchmark r.Bench_store.date
    r.Bench_store.rev r.Bench_store.jobs

(** Load [path] as a flat metric map plus a human label: a JSON snapshot /
    flat bench file directly, or — when the file is JSONL — the last record
    of a {!Bench_store} history. *)
let load_flat path : ((string * float) list * string, string) result =
  match Json.parse_file path with
  | Ok json -> (
      match flatten_json json with
      | Ok flat -> Ok (flat, path)
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  | Error json_msg -> (
      match Bench_store.load path with
      | Ok [] -> Error (Printf.sprintf "%s: empty history" path)
      | Ok records ->
          let r = List.nth records (List.length records - 1) in
          Ok (r.Bench_store.metrics, record_label path r)
      | Error _ -> Error (Printf.sprintf "%s: invalid JSON: %s" path json_msg))

(** [diff_files a b] renders the threshold-flagged delta table between two
    snapshots (each a metrics JSON, flat bench JSON, or JSONL history whose
    last record is used). *)
let diff_files ?threshold a b =
  match (load_flat a, load_flat b) with
  | Ok (fa, la), Ok (fb, lb) ->
      Ok (Printf.sprintf "diff: %s -> %s\n%s" la lb (Bench_store.render_diff ?threshold fa fb))
  | (Error _ as e), _ | _, (Error _ as e) -> e

(** [diff_history path] compares the last two records of one JSONL
    history. *)
let diff_history ?threshold path =
  match Bench_store.load path with
  | Error msg -> Error msg
  | Ok records when List.length records < 2 ->
      Error (Printf.sprintf "%s: need at least 2 records to diff (found %d)" path
               (List.length records))
  | Ok records ->
      let n = List.length records in
      let a = List.nth records (n - 2) and b = List.nth records (n - 1) in
      Ok
        (Printf.sprintf "diff: %s -> %s\n%s" (record_label path a) (record_label path b)
           (Bench_store.render_diff ?threshold a.Bench_store.metrics b.Bench_store.metrics))
