(** Span-based wall-clock tracing with Chrome [trace_event] export.

    [with_ ~name f] times [f] and records one complete ("X") event.  Spans
    nest: each domain keeps its own span stack, so parallel work traces
    cleanly (one track per domain in the viewer) and the recorded self time
    of a span excludes its children.  The resulting JSON loads directly in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    Tracing is disabled by default; the disabled path is one atomic load
    (args are passed as a thunk so no event payload is even allocated).
    Enable with {!enable} or [LIGER_TRACE_OUT] via {!Obs.init}. *)

type event = {
  ev_name : string;
  ev_args : (string * string) list;
  ts_us : float;    (* microseconds since the process-epoch *)
  dur_us : float;
  self_us : float;  (* duration minus the duration of child spans *)
  tid : int;        (* domain id *)
}

type frame = { start : float; mutable child : float }

type dstate = {
  dtid : int;
  mutable events : event list;
  mutable stack : frame list;
  mutable n_kept : int;     (* events currently buffered *)
  mutable n_dropped : int;  (* events lost to the trace cap *)
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let epoch = Unix.gettimeofday ()

(* The trace buffer is bounded so a multi-hour traced run cannot grow
   without limit: once a domain has buffered [capacity ()] events, new
   ones are counted in [n_dropped] instead of kept (the Chrome trace
   keeps the run's prefix; the flight recorder covers the suffix). *)
let default_capacity = 262_144

let capacity_ref = ref None

(** Per-domain span buffer cap: [LIGER_TRACE_CAP], default 262144. *)
let capacity () =
  match !capacity_ref with
  | Some c -> c
  | None ->
      let c =
        match Sys.getenv_opt "LIGER_TRACE_CAP" with
        | Some s -> (
            match int_of_string_opt (String.trim s) with
            | Some c when c > 0 -> c
            | _ ->
                Printf.eprintf "liger: ignoring LIGER_TRACE_CAP=%S (expected a positive int)\n%!" s;
                default_capacity)
        | None -> default_capacity
      in
      capacity_ref := Some c;
      c

let set_capacity c =
  if c <= 0 then invalid_arg "Span.set_capacity";
  capacity_ref := Some c

(* every domain registers its state on first use; states survive the domain
   (a retired pool worker's spans still export) *)
let states_mutex = Mutex.create ()
let states : dstate list ref = ref []

let state_key =
  Domain.DLS.new_key (fun () ->
      let st =
        { dtid = (Domain.self () :> int); events = []; stack = []; n_kept = 0; n_dropped = 0 }
      in
      Mutex.lock states_mutex;
      states := st :: !states;
      Mutex.unlock states_mutex;
      st)

(** Current nesting depth on this domain (0 outside any span). *)
let depth () =
  if not (Atomic.get enabled_flag) then 0
  else List.length (Domain.DLS.get state_key).stack

(** [with_ ~name f] runs [f] inside a span.  [args] (thunked, only forced
    when tracing is on and the event is kept) become the event's args in
    the trace viewer.  The span closes on exceptions too.

    When the {!Recorder} is on, the span's begin and end also land in the
    flight-recorder ring — with or without tracing, so a crash in an
    untraced run still leaves a forensic trail. *)
let with_ ?(args = fun () -> []) ~name f =
  let trace_on = Atomic.get enabled_flag in
  if not trace_on && not (Recorder.enabled ()) then f ()
  else if not trace_on then begin
    (* flight recorder only: breadcrumbs, no span buffer, no args *)
    Recorder.span_begin name;
    match f () with
    | r ->
        Recorder.span_end name;
        r
    | exception e ->
        Recorder.span_end name;
        raise e
  end
  else begin
    let rec_on = Recorder.enabled () in
    if rec_on then Recorder.span_begin name;
    let st = Domain.DLS.get state_key in
    let fr = { start = Unix.gettimeofday (); child = 0.0 } in
    st.stack <- fr :: st.stack;
    let finish () =
      let dur = Unix.gettimeofday () -. fr.start in
      (match st.stack with _ :: rest -> st.stack <- rest | [] -> ());
      (match st.stack with parent :: _ -> parent.child <- parent.child +. dur | [] -> ());
      (if st.n_kept < capacity () then begin
         st.n_kept <- st.n_kept + 1;
         st.events <-
           {
             ev_name = name;
             ev_args = args ();
             ts_us = (fr.start -. epoch) *. 1e6;
             dur_us = dur *. 1e6;
             self_us = (dur -. fr.child) *. 1e6;
             tid = st.dtid;
           }
           :: st.events
       end
       else st.n_dropped <- st.n_dropped + 1);
      if rec_on then Recorder.span_end name
    in
    match f () with
    | r ->
        finish ();
        r
    | exception e ->
        finish ();
        raise e
  end

(** All recorded events, across domains, in timestamp order. *)
let events () =
  Mutex.lock states_mutex;
  let all = List.concat_map (fun st -> st.events) !states in
  Mutex.unlock states_mutex;
  List.sort (fun a b -> compare (a.ts_us, a.tid, a.ev_name) (b.ts_us, b.tid, b.ev_name)) all

(** Events lost to the trace cap, across domains. *)
let dropped_events () =
  Mutex.lock states_mutex;
  let d = List.fold_left (fun acc st -> acc + st.n_dropped) 0 !states in
  Mutex.unlock states_mutex;
  d

let reset () =
  Mutex.lock states_mutex;
  List.iter
    (fun st ->
      st.events <- [];
      st.stack <- [];
      st.n_kept <- 0;
      st.n_dropped <- 0)
    !states;
  Mutex.unlock states_mutex

(* ---------------- report aggregation ---------------- *)

type agg = { agg_name : string; agg_count : int; total_s : float; self_s : float }

(** Per-name totals, sorted by self time descending — the "where did the
    time go" table of the end-of-run report. *)
let aggregate () =
  let tbl : (string, int ref * float ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun ev ->
      let count, total, self =
        match Hashtbl.find_opt tbl ev.ev_name with
        | Some cell -> cell
        | None ->
            let cell = (ref 0, ref 0.0, ref 0.0) in
            Hashtbl.add tbl ev.ev_name cell;
            cell
      in
      Stdlib.incr count;
      total := !total +. (ev.dur_us /. 1e6);
      self := !self +. (ev.self_us /. 1e6))
    (events ());
  Hashtbl.fold
    (fun name (count, total, self) acc ->
      { agg_name = name; agg_count = !count; total_s = !total; self_s = !self } :: acc)
    tbl []
  |> List.sort (fun a b -> compare (b.self_s, b.agg_name) (a.self_s, a.agg_name))

(* ---------------- Chrome trace_event export ---------------- *)

(** The trace as Chrome [trace_event] JSON: one complete ("X") event per
    span, process id = pid, track id = domain id. *)
let to_chrome_json () =
  let pid = Unix.getpid () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"liger\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s"
           (Json.escape ev.ev_name) pid ev.tid (Json.of_float ev.ts_us)
           (Json.of_float ev.dur_us));
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "\"%s\":\"%s\"" (Json.escape k) (Json.escape v)))
        (("self_us", Json.of_float ev.self_us) :: ev.ev_args);
      Buffer.add_string buf "}}")
    (events ());
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write path =
  let oc = open_out (path ^ ".tmp") in
  output_string oc (to_chrome_json ());
  close_out oc;
  Sys.rename (path ^ ".tmp") path
