(** Span-based wall-clock tracing with Chrome [trace_event] export.

    [with_ ~name f] times [f] and records one complete ("X") event.  Spans
    nest: each domain keeps its own span stack, so parallel work traces
    cleanly (one track per domain in the viewer) and the recorded self time
    of a span excludes its children.  The resulting JSON loads directly in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    Tracing is disabled by default; the disabled path is one atomic load
    (args are passed as a thunk so no event payload is even allocated).
    Enable with {!enable} or [LIGER_TRACE_OUT] via {!Obs.init}. *)

type event = {
  ev_name : string;
  ev_args : (string * string) list;
  ts_us : float;    (* microseconds since the process-epoch *)
  dur_us : float;
  self_us : float;  (* duration minus the duration of child spans *)
  tid : int;        (* domain id *)
}

type frame = { start : float; mutable child : float }

type dstate = {
  dtid : int;
  mutable events : event list;
  mutable stack : frame list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let epoch = Unix.gettimeofday ()

(* every domain registers its state on first use; states survive the domain
   (a retired pool worker's spans still export) *)
let states_mutex = Mutex.create ()
let states : dstate list ref = ref []

let state_key =
  Domain.DLS.new_key (fun () ->
      let st = { dtid = (Domain.self () :> int); events = []; stack = [] } in
      Mutex.lock states_mutex;
      states := st :: !states;
      Mutex.unlock states_mutex;
      st)

(** Current nesting depth on this domain (0 outside any span). *)
let depth () =
  if not (Atomic.get enabled_flag) then 0
  else List.length (Domain.DLS.get state_key).stack

(** [with_ ~name f] runs [f] inside a span.  [args] (thunked, only forced
    when tracing is on) become the event's args in the trace viewer.  The
    span closes on exceptions too. *)
let with_ ?(args = fun () -> []) ~name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let st = Domain.DLS.get state_key in
    let fr = { start = Unix.gettimeofday (); child = 0.0 } in
    st.stack <- fr :: st.stack;
    let finish () =
      let dur = Unix.gettimeofday () -. fr.start in
      (match st.stack with _ :: rest -> st.stack <- rest | [] -> ());
      (match st.stack with parent :: _ -> parent.child <- parent.child +. dur | [] -> ());
      st.events <-
        {
          ev_name = name;
          ev_args = args ();
          ts_us = (fr.start -. epoch) *. 1e6;
          dur_us = dur *. 1e6;
          self_us = (dur -. fr.child) *. 1e6;
          tid = st.dtid;
        }
        :: st.events
    in
    match f () with
    | r ->
        finish ();
        r
    | exception e ->
        finish ();
        raise e
  end

(** All recorded events, across domains, in timestamp order. *)
let events () =
  Mutex.lock states_mutex;
  let all = List.concat_map (fun st -> st.events) !states in
  Mutex.unlock states_mutex;
  List.sort (fun a b -> compare (a.ts_us, a.tid, a.ev_name) (b.ts_us, b.tid, b.ev_name)) all

let reset () =
  Mutex.lock states_mutex;
  List.iter
    (fun st ->
      st.events <- [];
      st.stack <- [])
    !states;
  Mutex.unlock states_mutex

(* ---------------- report aggregation ---------------- *)

type agg = { agg_name : string; agg_count : int; total_s : float; self_s : float }

(** Per-name totals, sorted by self time descending — the "where did the
    time go" table of the end-of-run report. *)
let aggregate () =
  let tbl : (string, int ref * float ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun ev ->
      let count, total, self =
        match Hashtbl.find_opt tbl ev.ev_name with
        | Some cell -> cell
        | None ->
            let cell = (ref 0, ref 0.0, ref 0.0) in
            Hashtbl.add tbl ev.ev_name cell;
            cell
      in
      Stdlib.incr count;
      total := !total +. (ev.dur_us /. 1e6);
      self := !self +. (ev.self_us /. 1e6))
    (events ());
  Hashtbl.fold
    (fun name (count, total, self) acc ->
      { agg_name = name; agg_count = !count; total_s = !total; self_s = !self } :: acc)
    tbl []
  |> List.sort (fun a b -> compare (b.self_s, b.agg_name) (a.self_s, a.agg_name))

(* ---------------- Chrome trace_event export ---------------- *)

(** The trace as Chrome [trace_event] JSON: one complete ("X") event per
    span, process id = pid, track id = domain id. *)
let to_chrome_json () =
  let pid = Unix.getpid () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"liger\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s"
           (Json.escape ev.ev_name) pid ev.tid (Json.of_float ev.ts_us)
           (Json.of_float ev.dur_us));
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "\"%s\":\"%s\"" (Json.escape k) (Json.escape v)))
        (("self_us", Json.of_float ev.self_us) :: ev.ev_args);
      Buffer.add_string buf "}}")
    (events ());
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write path =
  let oc = open_out (path ^ ".tmp") in
  output_string oc (to_chrome_json ());
  close_out oc;
  Sys.rename (path ^ ".tmp") path
