(** Training-dynamics instrumentation: per-layer gradient flow,
    activation saturation, attention entropy, and embedding-space drift.

    Everything here publishes through the {!Metrics} registry, so the
    streams flow into the run ledger, [liger top], and the OpenMetrics
    exposition for free.  Like the rest of the telemetry layer the module
    is disabled by default and follows the one-branch-when-disabled
    contract: every recording entry point checks one atomic flag first,
    and the hooks in the tensor/nn/eval layers guard their argument
    computation behind {!on} so a run with dynamics off pays one branch
    per hook and allocates nothing.

    Metric names (all under the [dynamics.] prefix):

    - [dynamics.layer_grad_norm{layer=...}] — pre-clip L2 gradient norm
      per parameter group, recorded by {!Liger_tensor.Optimizer.clip_grads}.
      A group is a parameter name minus its final [.suffix]
      (["enc.gates.w"] and ["enc.gates.b"] both land in ["enc.gates"]).
    - [dynamics.layer_update_ratio{layer=...}] — ‖Δw‖/‖w‖ of the exact
      update applied by {!Liger_tensor.Optimizer.step} (Adam or SGD).
    - [dynamics.saturation{act=...,layer=...}] /
      [dynamics.dead_units{act=...,layer=...}] — fraction of saturated
      activations and of dead output units, sampled from the fused
      tanh/sigmoid batched nodes (every {!sample_every}-th call).
    - [dynamics.attention_entropy] — histogram of per-lane attention
      weight entropies in nats.
    - [dynamics.embed_drift{model=...}] / [dynamics.nn_churn{model=...}]
      — epoch-over-epoch mean cosine drift of a frozen probe set, and
      the fraction of each probe's nearest neighbors that changed. *)

let enabled_flag = Atomic.make false
let on () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

(* ---------------- ambient layer attribution ---------------- *)

(* The fused activation nodes live in Batched, which knows nothing about
   the nn layer invoking it; the layers' batched entry points wrap their
   implementations in [with_layer] so samples taken inside attribute to
   the right layer.  Per-domain (DLS) because predictions run on the
   parallel pool. *)
let layer_key : string list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let with_layer name f =
  let stack = Domain.DLS.get layer_key in
  stack := name :: !stack;
  Fun.protect ~finally:(fun () -> stack := List.tl !stack) f

(** The outermost ambient layer name, or ["?"] outside any.  Outermost
    because nested entries only add detail the metric labels don't want:
    a decoder's bridge projection pushes ["decoder"] then ["linear"], and
    the sample should attribute to the decoder, not to the generic linear
    primitive it happens to route through. *)
let current_layer () =
  let rec last = function [] -> "?" | [ name ] -> name | _ :: tl -> last tl in
  last !(Domain.DLS.get layer_key)

(* ---------------- activation sampling ---------------- *)

(** Saturation is sampled, not exhaustive: one fused activation call in
    [sample_every] is scanned (recurrent models create one fused node per
    token per step, and scanning each would double the activation cost). *)
let sample_every = 16

let sample_ctr = Atomic.make 0

(** True on every [sample_every]-th call (global, cross-domain). *)
let should_sample () = Atomic.fetch_and_add sample_ctr 1 land (sample_every - 1) = 0

(** [record_saturation ~act ~saturated ~total ~dead ~units] publishes one
    activation sample: [saturated]/[total] elements past the saturation
    threshold and [dead]/[units] output columns dead across every lane,
    attributed to the ambient {!current_layer}. *)
let record_saturation ~act ~saturated ~total ~dead ~units =
  if Atomic.get enabled_flag && total > 0 then begin
    let labels = [ ("act", act); ("layer", current_layer ()) ] in
    Metrics.gauge "dynamics.saturation" ~labels
      (float_of_int saturated /. float_of_int total);
    if units > 0 then
      Metrics.gauge "dynamics.dead_units" ~labels
        (float_of_int dead /. float_of_int units)
  end

(* ---------------- attention entropy ---------------- *)

(* Attention over blended traces is precise when it concentrates: a
   uniform distribution over k slots has entropy ln k (≈3 nats at k=20),
   a hard pointer has 0.  Buckets cover that range. *)
let entropy_buckets = [| 0.01; 0.05; 0.1; 0.25; 0.5; 0.75; 1.0; 1.5; 2.0; 2.5; 3.0; 4.0 |]

(** Record one per-lane attention-entropy observation (nats). *)
let record_attention_entropy h =
  if Atomic.get enabled_flag then
    Metrics.observe "dynamics.attention_entropy" ~buckets:entropy_buckets h

(* ---------------- per-layer gradient flow ---------------- *)

(** The parameter group of [param_name]: everything before the final
    [.suffix] ([".w"], [".b"], [".h0"], ...), or the whole name when it
    has no dot.  Cached: the group is recomputed once per distinct name. *)
let group_cache : (string, string) Hashtbl.t = Hashtbl.create 64
let group_mutex = Mutex.create ()

let group_of_param param_name =
  Mutex.lock group_mutex;
  let g =
    match Hashtbl.find_opt group_cache param_name with
    | Some g -> g
    | None ->
        let g =
          match String.rindex_opt param_name '.' with
          | Some i when i > 0 -> String.sub param_name 0 i
          | _ -> param_name
        in
        Hashtbl.add group_cache param_name g;
        g
  in
  Mutex.unlock group_mutex;
  g

(* A non-finite norm must not reach the ledger: the JSON writer clamps
   NaN/inf to 0, which would read as a *vanished* gradient.  Record a
   huge finite value instead so the exploding-gradients rule fires — the
   semantically right verdict for a NaN norm. *)
let sanitize v = if Float.is_finite v then v else 1e9

(** Publish one parameter group's pre-clip gradient norm.  An exactly-zero
    norm is skipped: it means the group did not participate in this step's
    tape at all (e.g. a learned initial state bypassed by the batched
    path), and recording it would fire the vanishing-gradients rule on
    perfectly healthy runs — true vanishing shows up as tiny-but-nonzero. *)
let record_layer_grad ~layer norm =
  if Atomic.get enabled_flag && norm <> 0.0 then
    Metrics.gauge "dynamics.layer_grad_norm" ~labels:[ ("layer", layer) ] (sanitize norm)

(** Publish one parameter group's applied update: the gauge is
    ‖Δw‖/‖w‖ (the classic update-to-weight ratio; healthy training sits
    around 1e-3).  A zero weight norm (an untouched bias) reports 0. *)
let record_layer_update ~layer ~update_norm ~weight_norm =
  if Atomic.get enabled_flag then
    Metrics.gauge "dynamics.layer_update_ratio" ~labels:[ ("layer", layer) ]
      (if weight_norm > 0.0 then sanitize (update_norm /. weight_norm) else 0.0)

(* ---------------- embedding drift vs a frozen probe set ---------------- *)

(** Nearest neighbors compared per probe between consecutive epochs. *)
let churn_k = 5

type probe_state = { mutable prev : float array array option }

let probe_states : (string, probe_state) Hashtbl.t = Hashtbl.create 4
let probe_mutex = Mutex.create ()

let cosine a b =
  let n = Stdlib.min (Array.length a) (Array.length b) in
  let dot = ref 0.0 and na = ref 0.0 and nb = ref 0.0 in
  for i = 0 to n - 1 do
    dot := !dot +. (a.(i) *. b.(i));
    na := !na +. (a.(i) *. a.(i));
    nb := !nb +. (b.(i) *. b.(i))
  done;
  let d = sqrt !na *. sqrt !nb in
  if d > 0.0 then !dot /. d else 0.0

(* indices of the [churn_k] nearest neighbors of probe [i] (by cosine,
   self excluded) — O(k·n) selection, fine at probe-set scale *)
let neighbors embs i =
  let n = Array.length embs in
  let k = Stdlib.min churn_k (n - 1) in
  let sims = Array.init n (fun j -> if j = i then neg_infinity else cosine embs.(i) embs.(j)) in
  let chosen = Array.make k (-1) in
  for slot = 0 to k - 1 do
    let best = ref (-1) in
    for j = 0 to n - 1 do
      if sims.(j) > neg_infinity && (!best < 0 || sims.(j) > sims.(!best)) then best := j
    done;
    chosen.(slot) <- !best;
    sims.(!best) <- neg_infinity
  done;
  chosen

(** [observe_embeddings ~id embs] records one epoch's probe-set
    embeddings for the model [id] and, from the second call on, publishes
    the drift gauges against the previous epoch: mean [1 - cosine] per
    probe and the fraction of changed nearest neighbors (churn@k). *)
let observe_embeddings ~id (embs : float array array) =
  if Atomic.get enabled_flag && Array.length embs >= 2 then begin
    Mutex.lock probe_mutex;
    let st =
      match Hashtbl.find_opt probe_states id with
      | Some st -> st
      | None ->
          let st = { prev = None } in
          Hashtbl.add probe_states id st;
          st
    in
    let prev = st.prev in
    st.prev <- Some (Array.map Array.copy embs);
    Mutex.unlock probe_mutex;
    match prev with
    | Some prev when Array.length prev = Array.length embs ->
        let n = Array.length embs in
        let labels = [ ("model", id) ] in
        let drift = ref 0.0 in
        for i = 0 to n - 1 do
          drift := !drift +. (1.0 -. cosine prev.(i) embs.(i))
        done;
        Metrics.gauge "dynamics.embed_drift" ~labels (!drift /. float_of_int n);
        let k = Stdlib.min churn_k (n - 1) in
        if k > 0 then begin
          let churn = ref 0.0 in
          for i = 0 to n - 1 do
            let old_nn = neighbors prev i and new_nn = neighbors embs i in
            let kept = ref 0 in
            Array.iter (fun j -> if Array.exists (( = ) j) old_nn then incr kept) new_nn;
            churn := !churn +. (1.0 -. (float_of_int !kept /. float_of_int k))
          done;
          Metrics.gauge "dynamics.nn_churn" ~labels (!churn /. float_of_int n)
        end
    | _ -> ()
  end

(** Forget recorded probe embeddings and sampling state (tests). *)
let reset () =
  Mutex.lock probe_mutex;
  Hashtbl.reset probe_states;
  Mutex.unlock probe_mutex;
  Atomic.set sample_ctr 0
