(** OpenMetrics / Prometheus text exposition for {!Metrics} snapshots.

    [render] turns a live snapshot (and [render_json] a snapshot parsed
    back from a metrics file or a run-ledger line) into the exposition
    format: [# HELP] / [# TYPE] lines per metric family, one sample per
    label set, histograms as cumulative [_bucket{le=...}] series plus
    [_sum] / [_count].  Output is deterministic (the snapshot is already
    sorted by name, then labels), so rendering is golden-testable and a
    scrape diff is a real diff.

    This is also the library entry point a future [liger serve] scrape
    endpoint returns: [Openmetrics.render (Metrics.snapshot ())]. *)

(* ---------------- naming ---------------- *)

(** Map a registry name like ["train.grad_norm"] onto the OpenMetrics
    charset: [[a-zA-Z0-9_:]], dots and other separators become ['_']. *)
let sanitize_name name =
  let b = Bytes.create (String.length name) in
  String.iteri
    (fun i c ->
      Bytes.set b i
        (match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_'))
    name;
  let s = Bytes.to_string b in
  if s = "" then "_" else match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

let escape_label_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize_name k) (escape_label_value v)) labels)
      ^ "}"

(* help text for the well-known families; anything unlisted gets a
   generic line so the exposition is still self-describing *)
let help_table =
  [
    ("parallel.tasks", "Tasks executed by the domain pool");
    ("parallel.batches", "Task batches submitted to the domain pool");
    ("parallel.wall_seconds", "Wall-clock seconds spent inside pool batches");
    ("parallel.busy_seconds", "Per-domain busy seconds inside pool batches");
    ("parallel.jobs", "Size of the domain pool");
    ("train.loss", "Mean training loss of the last epoch");
    ("train.valid_score", "Validation score of the last epoch");
    ("train.grad_norm", "Per-step global gradient norm");
    ("train.skipped_steps", "Optimizer steps skipped on non-finite gradients");
    ("train.examples_per_second", "Training throughput in examples per second");
    ("train.subtokens_per_second", "Training throughput in target sub-tokens per second");
    ("train.eta_seconds", "Estimated seconds until training completes");
    ("train.epoch_seconds", "Duration of the last epoch");
    ("train.tape_nodes", "Nodes on the last batched autodiff tape");
    ("gc.minor_collections", "OCaml GC minor collections");
    ("gc.major_collections", "OCaml GC major collection cycles");
    ("gc.compactions", "OCaml GC heap compactions");
    ("gc.minor_words", "Words allocated in the OCaml minor heap");
    ("gc.promoted_words", "Words promoted from the minor to the major heap");
    ("gc.major_words", "Words allocated in the OCaml major heap");
    ("gc.heap_words", "Current OCaml major heap size in words");
    ("gc.top_heap_words", "Largest OCaml major heap size in words");
    ("bufpool.leased", "Buffers currently leased from the bufpool, per domain");
    ("bufpool.hw_leased", "High-water mark of concurrently leased buffers, per domain");
    ("bufpool.pooled_buffers", "Buffers parked in bufpool freelists, per domain");
    ("bufpool.pooled_elements", "Float elements parked in bufpool freelists, per domain");
    ("bufpool.hits", "Bufpool leases served from a freelist, per domain");
    ("bufpool.misses", "Bufpool leases that had to allocate, per domain");
    ("bufpool.returns", "Buffers returned to the bufpool, per domain");
    ("obs.trace_events_dropped", "Span events dropped at the trace buffer cap");
    ("fuzz.runs", "Differential fuzzing iterations executed");
    ("fuzz.failures", "Differential fuzzing oracle failures");
    ("serve.requests", "HTTP requests served, by endpoint and status");
    ("serve.latency_seconds", "Request latency in seconds, by endpoint");
    ("serve.inflight", "Application requests currently inside the admission gate");
    ("serve.rejected_busy", "Requests refused with 429 at the inflight cap");
    ("serve.deadline_expired", "Requests answered 408 before occupying a batch lane");
    ("serve.batches", "Coalesced batched forwards run by the serving engine");
    ("serve.batch_lanes", "Total lanes across coalesced batched forwards");
    ("serve.cache_entries", "Entries currently in the embedding LRU cache");
    ("serve.cache_hits", "Embedding cache hits (AST-hash keyed)");
    ("serve.cache_misses", "Embedding cache misses");
    ("serve.cache_evictions", "Embedding cache evictions at capacity");
  ]

let help_for name =
  match List.assoc_opt name help_table with
  | Some h -> h
  | None -> "LiGer metric " ^ name

(* ---------------- rendering ---------------- *)

let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Json.of_float x

(** Render a snapshot in OpenMetrics text format, terminated by
    [# EOF]. *)
let render (snap : Metrics.snapshot) =
  let buf = Buffer.create 4096 in
  (* group consecutive entries by family name (snapshot is sorted) *)
  let families =
    List.fold_left
      (fun acc (e : Metrics.entry) ->
        match acc with
        | (name, es) :: rest when name = e.Metrics.e_name -> (name, e :: es) :: rest
        | _ -> (e.Metrics.e_name, [ e ]) :: acc)
      [] snap
    |> List.rev_map (fun (name, es) -> (name, List.rev es))
  in
  List.iter
    (fun (name, entries) ->
      let om = sanitize_name name in
      let kind =
        match (List.hd entries).Metrics.e_value with
        | Metrics.C _ | Metrics.F _ -> `Counter
        | Metrics.G _ -> `Gauge
        | Metrics.H _ -> `Histogram
      in
      Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" om (help_for name));
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" om
           (match kind with `Counter -> "counter" | `Gauge -> "gauge" | `Histogram -> "histogram"));
      List.iter
        (fun (e : Metrics.entry) ->
          let labels = render_labels e.Metrics.e_labels in
          match e.Metrics.e_value with
          | Metrics.C n -> Buffer.add_string buf (Printf.sprintf "%s_total%s %d\n" om labels n)
          | Metrics.F x ->
              Buffer.add_string buf (Printf.sprintf "%s_total%s %s\n" om labels (fmt_float x))
          | Metrics.G x -> Buffer.add_string buf (Printf.sprintf "%s%s %s\n" om labels (fmt_float x))
          | Metrics.H h ->
              let with_le le =
                render_labels (e.Metrics.e_labels @ [ ("le", le) ])
              in
              let cum = ref 0 in
              Array.iteri
                (fun i bound ->
                  cum := !cum + h.Metrics.counts.(i);
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %d\n" om (with_le (fmt_float bound)) !cum))
                h.Metrics.buckets;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" om (with_le "+Inf") h.Metrics.count);
              Buffer.add_string buf
                (Printf.sprintf "%s_sum%s %s\n" om labels (fmt_float h.Metrics.sum));
              Buffer.add_string buf
                (Printf.sprintf "%s_count%s %d\n" om labels h.Metrics.count))
        entries)
    families;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* ---------------- snapshots parsed back from files ---------------- *)

(** Rebuild a {!Metrics.snapshot} from a parsed metrics file or
    run-ledger line (the inverse of {!Metrics.to_json} /
    [to_json_compact]). *)
let snapshot_of_json (json : Json.t) : (Metrics.snapshot, string) result =
  match Json.member "counters" json with
  | None -> Error "not a metrics snapshot (no \"counters\" member)"
  | Some _ -> (
      let entries section f =
        match Json.member section json with
        | Some (Json.Obj kvs) ->
            List.filter_map
              (fun (k, v) ->
                let name, labels = Metrics.parse_rendered_key k in
                Option.map
                  (fun value -> { Metrics.e_name = name; e_labels = labels; e_value = value })
                  (f v))
              kvs
        | _ -> []
      in
      let num f = Option.map f in
      let hist v =
        let floats name =
          Option.bind (Json.member name v) Json.to_list
          |> Option.map (List.filter_map Json.to_float)
        in
        match
          ( floats "buckets",
            floats "counts",
            Option.bind (Json.member "sum" v) Json.to_float,
            Option.bind (Json.member "count" v) Json.to_float )
        with
        | Some buckets, Some counts, Some sum, Some count ->
            Some
              (Metrics.H
                 {
                   Metrics.buckets = Array.of_list buckets;
                   counts = Array.of_list (List.map int_of_float counts);
                   sum;
                   count = int_of_float count;
                 })
        | _ -> None
      in
      let snap =
        entries "counters" (fun v -> num (fun f -> Metrics.C (int_of_float f)) (Json.to_float v))
        @ entries "fcounters" (fun v -> num (fun f -> Metrics.F f) (Json.to_float v))
        @ entries "gauges" (fun v -> num (fun f -> Metrics.G f) (Json.to_float v))
        @ entries "histograms" hist
      in
      Ok
        (List.sort
           (fun (a : Metrics.entry) b ->
             compare (a.Metrics.e_name, a.Metrics.e_labels) (b.Metrics.e_name, b.Metrics.e_labels))
           snap))

let render_json json =
  match snapshot_of_json json with Ok snap -> Ok (render snap) | Error _ as e -> e

(* ---------------- structural lint ---------------- *)

let strip_suffix s sfx =
  let ls = String.length s and lx = String.length sfx in
  if ls > lx && String.sub s (ls - lx) lx = sfx then Some (String.sub s 0 (ls - lx)) else None

(** Structural validation of exposition text: every sample must belong
    to a declared [# TYPE] family with the right suffix for its type,
    histogram buckets must be cumulative with [+Inf] equal to [_count],
    and the text must end with [# EOF].  Returns the sample count. *)
let lint text : (int, string) result =
  let lines = String.split_on_char '\n' text in
  let types : (string, string) Hashtbl.t = Hashtbl.create 16 in
  (* histogram series state: (family ^ labels-minus-le) -> last cumulative
     bucket value, +Inf value *)
  let buckets : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let infs : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let samples = ref 0 in
  let saw_eof = ref false in
  let err = ref None in
  let fail line msg = if !err = None then err := Some (Printf.sprintf "%s: %S" msg line) in
  let split_sample line =
    (* name{labels} value | name value *)
    let name_end =
      match String.index_opt line '{' with
      | Some i -> i
      | None -> ( match String.index_opt line ' ' with Some i -> i | None -> String.length line)
    in
    let name = String.sub line 0 name_end in
    let rest = String.sub line name_end (String.length line - name_end) in
    let labels, value =
      if String.length rest > 0 && rest.[0] = '{' then
        match String.index_opt rest '}' with
        | Some j ->
            ( String.sub rest 0 (j + 1),
              String.trim (String.sub rest (j + 1) (String.length rest - j - 1)) )
        | None -> ("", "")
      else ("", String.trim rest)
    in
    (name, labels, value)
  in
  let series_key family labels =
    (* drop the le="..." pair so all buckets of one histogram series share a key *)
    let labels =
      if labels = "" then ""
      else
        String.sub labels 1 (String.length labels - 2)
        |> String.split_on_char ','
        |> List.filter (fun kv -> not (String.length kv >= 3 && String.sub kv 0 3 = "le="))
        |> String.concat ","
    in
    family ^ "{" ^ labels ^ "}"
  in
  List.iter
    (fun line ->
      if !err <> None || line = "" then ()
      else if !saw_eof then fail line "content after # EOF"
      else if line = "# EOF" then saw_eof := true
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' line with
        | [ _; _; name; ty ] when List.mem ty [ "counter"; "gauge"; "histogram" ] ->
            Hashtbl.replace types name ty
        | _ -> fail line "malformed # TYPE line"
      end
      else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then ()
      else if String.length line >= 1 && line.[0] = '#' then fail line "unrecognized comment"
      else begin
        let name, labels, value = split_sample line in
        if value = "" || name = "" then fail line "malformed sample"
        else begin
          incr samples;
          let declared n ty = Hashtbl.find_opt types n = Some ty in
          match strip_suffix name "_bucket" with
          | Some base when declared base "histogram" -> (
              match int_of_string_opt value with
              | None -> fail line "non-integer bucket value"
              | Some v ->
                  let key = series_key base labels in
                  let is_inf =
                    (* substring "le=\"+Inf\"" present *)
                    let needle = "le=\"+Inf\"" in
                    let ln = String.length needle and ll = String.length labels in
                    let rec has i = i + ln <= ll && (String.sub labels i ln = needle || has (i + 1)) in
                    has 0
                  in
                  let prev = Option.value ~default:0 (Hashtbl.find_opt buckets key) in
                  if v < prev then fail line "histogram buckets not cumulative"
                  else begin
                    Hashtbl.replace buckets key v;
                    if is_inf then Hashtbl.replace infs key v
                  end)
          | _ -> (
              match strip_suffix name "_sum" with
              | Some base when declared base "histogram" -> ()
              | _ -> (
                  match strip_suffix name "_count" with
                  | Some base when declared base "histogram" -> (
                      match int_of_string_opt value with
                      | Some v -> Hashtbl.replace counts (series_key base labels) v
                      | None -> fail line "non-integer histogram count")
                  | _ -> (
                      match strip_suffix name "_total" with
                      | Some base when declared base "counter" -> ()
                      | _ ->
                          if not (declared name "gauge") then
                            fail line "sample without a matching # TYPE declaration")))
        end
      end)
    lines;
  match !err with
  | Some e -> Error e
  | None ->
      if not !saw_eof then Error "missing # EOF terminator"
      else begin
        (* every histogram series: +Inf bucket must equal _count *)
        Hashtbl.iter
          (fun key inf ->
            match Hashtbl.find_opt counts key with
            | Some c when c <> inf ->
                if !err = None then
                  err := Some (Printf.sprintf "histogram %s: +Inf bucket %d <> count %d" key inf c)
            | _ -> ())
          infs;
        match !err with Some e -> Error e | None -> Ok !samples
      end
