(** Periodic time-series snapshots of the {!Metrics} registry — the run
    ledger.

    [start ~every ~path] spawns a background thread that appends one
    compact JSON line per interval to [path] (a JSONL file under the run
    directory, see {!Obs.run_dir}).  Every line is itself a valid
    metrics snapshot plus ["ts"] / ["seq"] fields, so [liger stats
    --validate] and the OpenMetrics renderer work on individual lines,
    and [liger top] tails the file to compute per-interval deltas.

    Before each snapshot the registry is *enriched*: built-in OCaml GC
    gauges are published, then every registered enricher callback runs.
    Subsystems below [lib/obs] in the dependency order (e.g.
    {!Liger_tensor.Bufpool}) register an enricher at module
    initialisation instead of being called from here — the registry
    callback keeps the dependency arrow pointing the right way. *)

let enrichers_mutex = Mutex.create ()
let enrichers : (unit -> unit) list ref = ref []

(** Register a callback that publishes gauges into {!Metrics} just
    before each ledger snapshot (and once more at the final flush).
    Callbacks must be cheap and must not raise (exceptions are
    swallowed). *)
let register_enricher f =
  Mutex.lock enrichers_mutex;
  enrichers := f :: !enrichers;
  Mutex.unlock enrichers_mutex

(* OCaml GC pressure, the first suspect when throughput sags.
   [Gc.quick_stat] is exact for everything published here except
   [minor_words], which is within one minor heap of exact — fine for a
   trend line. *)
let gc_enrich () =
  let s = Gc.quick_stat () in
  Metrics.gauge "gc.minor_collections" (float_of_int s.Gc.minor_collections);
  Metrics.gauge "gc.major_collections" (float_of_int s.Gc.major_collections);
  Metrics.gauge "gc.compactions" (float_of_int s.Gc.compactions);
  Metrics.gauge "gc.minor_words" s.Gc.minor_words;
  Metrics.gauge "gc.promoted_words" s.Gc.promoted_words;
  Metrics.gauge "gc.major_words" s.Gc.major_words;
  Metrics.gauge "gc.heap_words" (float_of_int s.Gc.heap_words);
  Metrics.gauge "gc.top_heap_words" (float_of_int s.Gc.top_heap_words)

(** Publish the GC gauges and run every registered enricher.  A no-op
    when the metrics registry is disabled. *)
let enrich () =
  if Metrics.enabled () then begin
    gc_enrich ();
    Mutex.lock enrichers_mutex;
    let fs = !enrichers in
    Mutex.unlock enrichers_mutex;
    List.iter (fun f -> try f () with _ -> ()) fs
  end

(* ---------------- the ledger ---------------- *)

let emit_mutex = Mutex.create ()
let seq = ref 0

(** Append one enriched snapshot line to the ledger at [path]. *)
let tick ~path () =
  enrich ();
  let snap = Metrics.snapshot () in
  Mutex.lock emit_mutex;
  let line =
    Metrics.to_json_compact
      ~extra:[ ("ts", Json.of_float (Unix.gettimeofday ())); ("seq", string_of_int !seq) ]
      snap
  in
  incr seq;
  (match open_out_gen [ Open_append; Open_creat ] 0o644 path with
  | oc ->
      output_string oc line;
      output_char oc '\n';
      close_out oc
  | exception Sys_error msg -> Printf.eprintf "liger: ledger append failed: %s\n%!" msg);
  Mutex.unlock emit_mutex

(* ---------------- the background emitter ---------------- *)

let stop_flag = Atomic.make false
let running = ref None  (* interval, path *)

let active () = !running <> None

let emitter_loop every path =
  let slept = ref 0.0 in
  while not (Atomic.get stop_flag) do
    if !slept >= every then begin
      slept := 0.0;
      tick ~path ()
    end
    else begin
      (* sleep in small increments so stop () takes effect promptly *)
      let d = Float.min 0.25 (every -. !slept) in
      Thread.delay d;
      slept := !slept +. d
    end
  done

(** Start the periodic emitter (idempotent; the first call wins).
    Implies an enabled metrics registry — there is nothing to snapshot
    otherwise. *)
let start ~every ~path =
  if not (active ()) && every > 0.0 then begin
    Metrics.enable ();
    Atomic.set stop_flag false;
    running := Some (every, path);
    ignore (Thread.create (fun () -> emitter_loop every path) ())
  end

(** Stop the emitter and append one final snapshot line (so the ledger
    always ends with the run's terminal state). *)
let stop () =
  match !running with
  | None -> ()
  | Some (_, path) ->
      Atomic.set stop_flag true;
      running := None;
      tick ~path ()
