(** Append-only benchmark history ([BENCH_history.jsonl]) and snapshot
    diffing.

    One record per line, each a self-contained JSON object with provenance
    (benchmark name, git rev, caller-supplied ISO date, jobs) and a flat
    name→number metrics map.  Appending never rewrites the file, so
    histories accumulate across runs/machines and stay trivially mergeable;
    readers skip blank lines and report the line number of anything
    malformed.

    {!diff} compares two flat metric maps and flags relative changes beyond
    a threshold — the engine behind [liger stats --diff] and
    [bench --check-regression]. *)

type record = {
  benchmark : string;
  rev : string;   (* git revision, or "unknown" *)
  date : string;  (* ISO-8601, supplied by the caller (no clock reads here) *)
  jobs : int;
  metrics : (string * float) list;
}

(* ---------------- provenance helpers ---------------- *)

(** Short git rev of the working tree, [LIGER_GIT_REV] override first
    (hermetic CI), "unknown" when git is unavailable. *)
let git_rev () =
  match Sys.getenv_opt "LIGER_GIT_REV" with
  | Some r when String.trim r <> "" -> String.trim r
  | _ -> (
      try
        let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
        let line = try String.trim (input_line ic) with End_of_file -> "" in
        match Unix.close_process_in ic with
        | Unix.WEXITED 0 when line <> "" -> line
        | _ -> "unknown"
      with _ -> "unknown")

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

(* ---------------- serialisation ---------------- *)

let to_json_line (r : record) =
  let metrics = List.sort (fun (a, _) (b, _) -> compare a b) r.metrics in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"benchmark\":\"%s\",\"rev\":\"%s\",\"date\":\"%s\",\"jobs\":%d,\"metrics\":{"
       (Json.escape r.benchmark) (Json.escape r.rev) (Json.escape r.date) r.jobs);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (Json.escape k) (Json.of_float v)))
    metrics;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let parse_record (j : Json.t) : (record, string) result =
  let str name = Option.bind (Json.member name j) Json.to_string in
  let num name = Option.bind (Json.member name j) Json.to_float in
  match (str "benchmark", str "rev", str "date", num "jobs", Json.member "metrics" j) with
  | Some benchmark, Some rev, Some date, Some jobs, Some (Json.Obj fields) ->
      let metrics =
        List.filter_map (fun (k, v) -> Option.map (fun x -> (k, x)) (Json.to_float v)) fields
      in
      Ok { benchmark; rev; date; jobs = int_of_float jobs; metrics }
  | _ -> Error "record is missing benchmark/rev/date/jobs/metrics"

(* ---------------- file I/O ---------------- *)

(** Append one record (plus newline).  Creates the file if needed. *)
let append ~path (r : record) =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (to_json_line r);
  output_char oc '\n';
  close_out oc

(** All records in file order; blank lines are skipped, a malformed line is
    an error naming its line number. *)
let load path : (record list, string) result =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | line when String.trim line = "" -> go (lineno + 1) acc
        | line -> (
            match Json.parse line with
            | Error msg -> Error (Printf.sprintf "%s:%d: %s" path lineno msg)
            | Ok j -> (
                match parse_record j with
                | Error msg -> Error (Printf.sprintf "%s:%d: %s" path lineno msg)
                | Ok r -> go (lineno + 1) (r :: acc)))
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> go 1 [])

(** Most recent record matching [benchmark] (and [jobs] when given). *)
let last_matching ?jobs ~benchmark records =
  List.fold_left
    (fun acc r ->
      if r.benchmark = benchmark && (match jobs with None -> true | Some j -> r.jobs = j) then
        Some r
      else acc)
    None records

(* ---------------- diffing ---------------- *)

type delta = {
  metric : string;
  before : float;
  after : float;
  change : float;   (* relative change; infinity when before = 0 <> after *)
  flagged : bool;   (* |change| > threshold *)
}

let relative_change ~before ~after =
  if before = after then 0.0
  else if before = 0.0 then (if after > 0.0 then infinity else neg_infinity)
  else (after -. before) /. Float.abs before

(** Compare two flat metric maps over the union of their names (sorted);
    a metric missing on one side is reported with [nan] there and always
    flagged. *)
let diff ?(threshold = 0.1) (a : (string * float) list) (b : (string * float) list) : delta list =
  let names =
    List.sort_uniq compare (List.map fst a @ List.map fst b)
  in
  List.map
    (fun name ->
      match (List.assoc_opt name a, List.assoc_opt name b) with
      | Some before, Some after ->
          let change = relative_change ~before ~after in
          { metric = name; before; after; change; flagged = Float.abs change > threshold }
      | Some before, None ->
          { metric = name; before; after = Float.nan; change = Float.nan; flagged = true }
      | None, Some after ->
          { metric = name; before = Float.nan; after; change = Float.nan; flagged = true }
      | None, None -> assert false)
    names

let pct change =
  if Float.is_nan change then "-"
  else if Float.is_integer (change *. 100.0) && Float.abs change < 100.0 then
    Printf.sprintf "%+.0f%%" (change *. 100.0)
  else if Float.abs change = infinity then (if change > 0.0 then "+inf%" else "-inf%")
  else Printf.sprintf "%+.1f%%" (change *. 100.0)

let fmt_val x = if Float.is_nan x then "-" else Printf.sprintf "%.6g" x

(** Render a diff as an aligned text table (deterministic; goldens depend on
    it).  Flagged rows get a trailing [!]. *)
let render_diff ?threshold a b =
  let deltas = diff ?threshold a b in
  if deltas = [] then "no metrics to compare\n"
  else begin
    let rows =
      ("metric", "before", "after", "change", "")
      :: List.map
           (fun d ->
             (d.metric, fmt_val d.before, fmt_val d.after, pct d.change,
              if d.flagged then "!" else ""))
           deltas
    in
    let w f = List.fold_left (fun acc r -> max acc (String.length (f r))) 0 rows in
    let w1 = w (fun (a, _, _, _, _) -> a)
    and w2 = w (fun (_, b, _, _, _) -> b)
    and w3 = w (fun (_, _, c, _, _) -> c)
    and w4 = w (fun (_, _, _, d, _) -> d) in
    let buf = Buffer.create 256 in
    List.iter
      (fun (a, b, c, d, fl) ->
        Buffer.add_string buf
          (Printf.sprintf "%-*s  %*s  %*s  %*s%s\n" w1 a w2 b w3 c w4 d
             (if fl = "" then "" else "  " ^ fl)))
      rows;
    Buffer.contents buf
  end

let flagged_metrics deltas = List.filter (fun d -> d.flagged) deltas
