(** Model-level profiler: per-op FLOP / bytes / count accounting, per-layer
    forward/backward timing, and live/peak tensor-memory gauges.

    The profiler extends the one-branch-when-disabled contract of {!Metrics}
    and {!Span} down to op granularity.  Every instrumented call site in
    [lib/tensor] and [lib/nn] is written as

    {[ if Profile.on () then Profile.op my_op ~flops ~bytes ]}

    so that with profiling off the cost is a single atomic load and no
    argument (in particular no boxed float) is ever computed or allocated.
    The entry points below carry their own [on ()] guard as well, but the
    caller-side guard is what keeps the disabled path allocation-free.

    Ops and layers are registered once at module-initialisation time
    ({!register_op} / {!register_layer} return dense integer ids and are
    idempotent by name), so the hot path indexes flat arrays.  Recording is
    per-domain via [Domain.DLS] — no locks on the hot path; aggregation
    walks the domain states under a mutex only when a {!snapshot} is taken.

    Layer timing mirrors {!Span}: each domain keeps a stack of layer frames
    and a layer's self time excludes its children.  To bound tracing
    overhead, only every [LIGER_PROFILE_SPAN_EVERY]-th (default 64) call of
    a layer additionally emits a Chrome-trace span.

    Memory accounting is cooperative: [lib/tensor] calls {!alloc} /
    {!release} with the byte sizes it manages (tape nodes, tensors), and the
    profiler maintains global [live_bytes] / [peak_bytes] atomics (peak via
    a CAS-max loop). *)

(* ---------------- enablement ---------------- *)

let enabled_flag = Atomic.make false

(** The one branch every instrumented call site pays when profiling is off. *)
let on () = Atomic.get enabled_flag

let enabled = on
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let now () = Unix.gettimeofday ()

(* ---------------- op / layer registration ---------------- *)

type op = int
type layer = int

let reg_mutex = Mutex.create ()
let op_names : string array ref = ref [||]
let layer_names : string array ref = ref [||]

let register_in names name =
  Mutex.lock reg_mutex;
  let arr = !names in
  let n = Array.length arr in
  let rec find i = if i >= n then -1 else if arr.(i) = name then i else find (i + 1) in
  let id =
    match find 0 with
    | i when i >= 0 -> i
    | _ ->
        names := Array.append arr [| name |];
        n
  in
  Mutex.unlock reg_mutex;
  id

(** Idempotent by name: registering the same op twice returns the same id.
    Intended for module-initialisation time (a mutex + linear scan). *)
let register_op name = register_in op_names name

let register_layer name = register_in layer_names name

(* ---------------- per-domain state ---------------- *)

type lframe = { lf_layer : layer; lf_start : float; mutable lf_child : float }

type dstate = {
  (* per-op, indexed by op id *)
  mutable ocount : int array;
  mutable oflops : float array;
  mutable obytes : float array;
  mutable osecs : float array;
  (* per-layer, indexed by layer id *)
  mutable lcalls : int array;
  mutable lfwd_total : float array;
  mutable lfwd_self : float array;
  mutable lbwd : float array;
  mutable lstack : lframe list;
  mutable bwd_untagged : float;  (* backward time on nodes built outside any layer *)
}

let states_mutex = Mutex.create ()
let states : dstate list ref = ref []

let state_key =
  Domain.DLS.new_key (fun () ->
      let st =
        {
          ocount = [||];
          oflops = [||];
          obytes = [||];
          osecs = [||];
          lcalls = [||];
          lfwd_total = [||];
          lfwd_self = [||];
          lbwd = [||];
          lstack = [];
          bwd_untagged = 0.0;
        }
      in
      Mutex.lock states_mutex;
      states := st :: !states;
      Mutex.unlock states_mutex;
      st)

let grow_int arr n = Array.append arr (Array.make (n - Array.length arr) 0)
let grow_float arr n = Array.append arr (Array.make (n - Array.length arr) 0.0)

let ensure_ops st =
  let n = Array.length !op_names in
  if Array.length st.ocount < n then begin
    st.ocount <- grow_int st.ocount n;
    st.oflops <- grow_float st.oflops n;
    st.obytes <- grow_float st.obytes n;
    st.osecs <- grow_float st.osecs n
  end

let ensure_layers st =
  let n = Array.length !layer_names in
  if Array.length st.lcalls < n then begin
    st.lcalls <- grow_int st.lcalls n;
    st.lfwd_total <- grow_float st.lfwd_total n;
    st.lfwd_self <- grow_float st.lfwd_self n;
    st.lbwd <- grow_float st.lbwd n
  end

(* ---------------- op recording ---------------- *)

(** [op o ~flops ~bytes] counts one execution of op [o].  Call sites must be
    guarded with [if Profile.on () then ...] so the arguments are never
    computed (or boxed) when profiling is off. *)
let op (o : op) ~flops ~bytes =
  if Atomic.get enabled_flag then begin
    let st = Domain.DLS.get state_key in
    if o >= Array.length st.ocount then ensure_ops st;
    st.ocount.(o) <- st.ocount.(o) + 1;
    st.oflops.(o) <- st.oflops.(o) +. flops;
    st.obytes.(o) <- st.obytes.(o) +. bytes
  end

(** Like {!op} but also accumulates wall seconds — for coarse ops (optimizer
    step, grad clipping) where a clock read is negligible. *)
let op_timed (o : op) ~seconds ~flops ~bytes =
  if Atomic.get enabled_flag then begin
    let st = Domain.DLS.get state_key in
    if o >= Array.length st.ocount then ensure_ops st;
    st.ocount.(o) <- st.ocount.(o) + 1;
    st.oflops.(o) <- st.oflops.(o) +. flops;
    st.obytes.(o) <- st.obytes.(o) +. bytes;
    st.osecs.(o) <- st.osecs.(o) +. seconds
  end

(* ---------------- memory gauges ---------------- *)

let live_bytes_a = Atomic.make 0
let peak_bytes_a = Atomic.make 0

(** [alloc n] adds [n] bytes to the live gauge and bumps the peak (CAS-max).
    Not self-guarded: callers decide (tape bytes are released even if
    profiling was toggled off mid-step, keeping the gauge consistent). *)
let alloc n =
  let live = Atomic.fetch_and_add live_bytes_a n + n in
  let rec bump () =
    let p = Atomic.get peak_bytes_a in
    if live > p && not (Atomic.compare_and_set peak_bytes_a p live) then bump ()
  in
  bump ()

let release n = ignore (Atomic.fetch_and_add live_bytes_a (-n))
let live_bytes () = Atomic.get live_bytes_a
let peak_bytes () = Atomic.get peak_bytes_a

(* ---------------- layer timing ---------------- *)

let span_every =
  match Sys.getenv_opt "LIGER_PROFILE_SPAN_EVERY" with
  | Some s -> (match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | _ -> 64)
  | None -> 64

(** The layer currently on top of this domain's stack, or [-1].  Used by
    [Autodiff.push] to tag tape nodes for backward attribution. *)
let current_layer () =
  if not (Atomic.get enabled_flag) then -1
  else
    match (Domain.DLS.get state_key).lstack with
    | [] -> -1
    | fr :: _ -> fr.lf_layer

(** [add_bwd l dt] attributes [dt] seconds of backward time to layer [l]
    ([-1] = untagged).  Called from [Autodiff.backward] at tag boundaries. *)
let add_bwd (l : layer) dt =
  if Atomic.get enabled_flag then begin
    let st = Domain.DLS.get state_key in
    if l < 0 then st.bwd_untagged <- st.bwd_untagged +. dt
    else begin
      if l >= Array.length st.lcalls then ensure_layers st;
      st.lbwd.(l) <- st.lbwd.(l) +. dt
    end
  end

(** [with_layer l f] times [f ()] as one forward call of layer [l]: total
    and self (children subtracted) seconds, plus a sampled Chrome span every
    [span_every]-th call.  Call sites use the guard pattern

    {[ if Profile.on () then Profile.with_layer l (fun () -> impl ...)
       else impl ... ]}

    so the disabled path is a direct call with no closure allocation. *)
let with_layer (l : layer) f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let st = Domain.DLS.get state_key in
    if l >= Array.length st.lcalls then ensure_layers st;
    st.lcalls.(l) <- st.lcalls.(l) + 1;
    let sampled = Span.enabled () && (st.lcalls.(l) - 1) mod span_every = 0 in
    let fr = { lf_layer = l; lf_start = now (); lf_child = 0.0 } in
    st.lstack <- fr :: st.lstack;
    let run () =
      let finish () =
        let dur = now () -. fr.lf_start in
        (match st.lstack with _ :: rest -> st.lstack <- rest | [] -> ());
        (match st.lstack with
        | parent :: _ -> parent.lf_child <- parent.lf_child +. dur
        | [] -> ());
        st.lfwd_total.(l) <- st.lfwd_total.(l) +. dur;
        st.lfwd_self.(l) <- st.lfwd_self.(l) +. (dur -. fr.lf_child)
      in
      match f () with
      | r ->
          finish ();
          r
      | exception e ->
          finish ();
          raise e
    in
    if sampled then Span.with_ ~name:("layer." ^ (!layer_names).(l)) run else run ()
  end

(* ---------------- snapshots ---------------- *)

type op_stat = { op_name : string; count : int; flops : float; bytes : float; seconds : float }

type layer_stat = {
  layer_name : string;
  calls : int;
  fwd_total_s : float;
  fwd_self_s : float;
  bwd_s : float;
}

type snapshot = {
  ops : op_stat list;       (* name-sorted; zero-count entries dropped *)
  layers : layer_stat list; (* name-sorted; zero-call entries dropped *)
  untagged_bwd_s : float;
  snap_live_bytes : int;
  snap_peak_bytes : int;
}

(** Aggregate across all domain states.  Counters on other domains may be
    mid-update; profiling snapshots are end-of-run summaries, not a
    synchronisation point. *)
let snapshot () : snapshot =
  Mutex.lock states_mutex;
  let sts = !states in
  Mutex.unlock states_mutex;
  let onames = !op_names and lnames = !layer_names in
  let no = Array.length onames and nl = Array.length lnames in
  let oc = Array.make no 0
  and ofl = Array.make no 0.0
  and ob = Array.make no 0.0
  and os = Array.make no 0.0 in
  let lc = Array.make nl 0
  and lft = Array.make nl 0.0
  and lfs = Array.make nl 0.0
  and lb = Array.make nl 0.0 in
  let untagged = ref 0.0 in
  List.iter
    (fun st ->
      for i = 0 to min no (Array.length st.ocount) - 1 do
        oc.(i) <- oc.(i) + st.ocount.(i);
        ofl.(i) <- ofl.(i) +. st.oflops.(i);
        ob.(i) <- ob.(i) +. st.obytes.(i);
        os.(i) <- os.(i) +. st.osecs.(i)
      done;
      for i = 0 to min nl (Array.length st.lcalls) - 1 do
        lc.(i) <- lc.(i) + st.lcalls.(i);
        lft.(i) <- lft.(i) +. st.lfwd_total.(i);
        lfs.(i) <- lfs.(i) +. st.lfwd_self.(i);
        lb.(i) <- lb.(i) +. st.lbwd.(i)
      done;
      untagged := !untagged +. st.bwd_untagged)
    sts;
  let ops = ref [] in
  for i = no - 1 downto 0 do
    if oc.(i) > 0 then
      ops :=
        { op_name = onames.(i); count = oc.(i); flops = ofl.(i); bytes = ob.(i); seconds = os.(i) }
        :: !ops
  done;
  let layers = ref [] in
  for i = nl - 1 downto 0 do
    if lc.(i) > 0 then
      layers :=
        {
          layer_name = lnames.(i);
          calls = lc.(i);
          fwd_total_s = lft.(i);
          fwd_self_s = lfs.(i);
          bwd_s = lb.(i);
        }
        :: !layers
  done;
  {
    ops = List.sort (fun a b -> compare a.op_name b.op_name) !ops;
    layers = List.sort (fun a b -> compare a.layer_name b.layer_name) !layers;
    untagged_bwd_s = !untagged;
    snap_live_bytes = Atomic.get live_bytes_a;
    snap_peak_bytes = Atomic.get peak_bytes_a;
  }

let total_flops (s : snapshot) = List.fold_left (fun acc o -> acc +. o.flops) 0.0 s.ops

(* ---------------- registry publication ---------------- *)

(** Mirror the current snapshot into the {!Metrics} registry under the
    [profile.] prefix.  Idempotent: previous [profile.] entries are dropped
    first, so calling this from both [Obs.flush] and a report path is safe. *)
let publish () =
  let s = snapshot () in
  Metrics.reset_prefix "profile.";
  List.iter
    (fun (o : op_stat) ->
      let labels = [ ("op", o.op_name) ] in
      Metrics.add ~labels "profile.op_count" o.count;
      Metrics.fadd ~labels "profile.op_flops" o.flops;
      Metrics.fadd ~labels "profile.op_bytes" o.bytes;
      if o.seconds > 0.0 then Metrics.fadd ~labels "profile.op_seconds" o.seconds)
    s.ops;
  List.iter
    (fun (l : layer_stat) ->
      let labels = [ ("layer", l.layer_name) ] in
      Metrics.add ~labels "profile.layer_calls" l.calls;
      Metrics.fadd ~labels "profile.layer_forward_seconds" l.fwd_total_s;
      Metrics.fadd ~labels "profile.layer_forward_self_seconds" l.fwd_self_s;
      Metrics.fadd ~labels "profile.layer_backward_seconds" l.bwd_s)
    s.layers;
  if s.untagged_bwd_s > 0.0 then
    Metrics.fadd
      ~labels:[ ("layer", "(untagged)") ]
      "profile.layer_backward_seconds" s.untagged_bwd_s;
  Metrics.gauge "profile.total_flops" (total_flops s);
  Metrics.gauge "profile.live_bytes" (float_of_int s.snap_live_bytes);
  Metrics.gauge "profile.peak_bytes" (float_of_int s.snap_peak_bytes)

(* ---------------- resetting (tests) ---------------- *)

let reset () =
  Mutex.lock states_mutex;
  List.iter
    (fun st ->
      st.ocount <- [||];
      st.oflops <- [||];
      st.obytes <- [||];
      st.osecs <- [||];
      st.lcalls <- [||];
      st.lfwd_total <- [||];
      st.lfwd_self <- [||];
      st.lbwd <- [||];
      st.lstack <- [];
      st.bwd_untagged <- 0.0)
    !states;
  Mutex.unlock states_mutex;
  Atomic.set live_bytes_a 0;
  Atomic.set peak_bytes_a 0
