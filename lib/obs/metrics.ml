(** A domain-safe metrics registry: counters, float counters, gauges and
    fixed-bucket histograms, all optionally labeled.

    The registry is process-global and disabled by default.  Every recording
    entry point checks one atomic flag first and returns immediately when
    telemetry is off, so an uninstrumented run pays one branch per event —
    the overhead contract the bench numbers rely on.  When enabled, all
    operations take a single registry mutex; recording happens at task/epoch
    granularity (not per token), so contention is negligible next to the
    work being measured.

    Snapshots render to JSON with deterministic key order (entries sorted by
    name, then labels), so identical runs produce byte-identical files.
    [LIGER_METRICS_OUT] (see {!Obs.init}) dumps a snapshot on exit. *)

type labels = (string * string) list

let canon (labels : labels) = List.sort compare labels

(* ---------------- storage ---------------- *)

type hist = {
  bounds : float array;  (* strictly increasing bucket upper bounds *)
  counts : int array;    (* length [bounds + 1]; last bucket is overflow *)
  mutable hsum : float;
  mutable hcount : int;
}

type metric =
  | Counter of { mutable c : int }
  | Fcounter of { mutable f : float }
  | Gauge of { mutable g : float }
  | Histogram of hist

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let mutex = Mutex.create ()
let registry : (string * labels, metric) Hashtbl.t = Hashtbl.create 64

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let find_or_add key mk =
  match Hashtbl.find_opt registry key with
  | Some m -> m
  | None ->
      let m = mk () in
      Hashtbl.add registry key m;
      m

let kind_error name = invalid_arg ("Metrics: " ^ name ^ " already registered with another kind")

(* ---------------- recording ---------------- *)

(** [add name n] bumps the integer counter [name] by [n]. *)
let add ?(labels = []) name n =
  if Atomic.get enabled_flag then
    locked (fun () ->
        match find_or_add (name, canon labels) (fun () -> Counter { c = 0 }) with
        | Counter r -> r.c <- r.c + n
        | _ -> kind_error name)

let incr ?labels name = add ?labels name 1

(** [fadd name x] accumulates into the float counter [name] (busy seconds,
    wall seconds, ...). *)
let fadd ?(labels = []) name x =
  if Atomic.get enabled_flag then
    locked (fun () ->
        match find_or_add (name, canon labels) (fun () -> Fcounter { f = 0.0 }) with
        | Fcounter r -> r.f <- r.f +. x
        | _ -> kind_error name)

(** [gauge name x] sets the gauge [name] to its latest value. *)
let gauge ?(labels = []) name x =
  if Atomic.get enabled_flag then
    locked (fun () ->
        match find_or_add (name, canon labels) (fun () -> Gauge { g = x }) with
        | Gauge r -> r.g <- x
        | _ -> kind_error name)

(** Exponential-ish default buckets covering sub-millisecond spans up to
    minutes, and unit-scale values like gradient norms. *)
let default_buckets =
  [| 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0; 100.0 |]

let bucket_index bounds x =
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if x <= bounds.(i) then i else go (i + 1) in
  go 0

(** [observe name x] records [x] into the fixed-bucket histogram [name];
    [buckets] (upper bounds, ascending) are fixed by the first observation.
    Value [x] lands in the first bucket whose bound is [>= x]; values above
    every bound land in a final overflow bucket. *)
let observe ?(labels = []) ?(buckets = default_buckets) name x =
  if Atomic.get enabled_flag then
    locked (fun () ->
        match
          find_or_add (name, canon labels) (fun () ->
              Histogram
                {
                  bounds = Array.copy buckets;
                  counts = Array.make (Array.length buckets + 1) 0;
                  hsum = 0.0;
                  hcount = 0;
                })
        with
        | Histogram h ->
            let i = bucket_index h.bounds x in
            h.counts.(i) <- h.counts.(i) + 1;
            h.hsum <- h.hsum +. x;
            h.hcount <- h.hcount + 1
        | _ -> kind_error name)

(* ---------------- resetting ---------------- *)

let reset () = locked (fun () -> Hashtbl.reset registry)

(** Drop every metric whose name starts with [prefix] (subsystem resets,
    e.g. the pool stats between bench builds). *)
let reset_prefix prefix =
  locked (fun () ->
      let doomed =
        Hashtbl.fold
          (fun ((name, _) as key) _ acc ->
            if String.length name >= String.length prefix
               && String.sub name 0 (String.length prefix) = prefix
            then key :: acc
            else acc)
          registry []
      in
      List.iter (Hashtbl.remove registry) doomed)

(* ---------------- snapshots ---------------- *)

type hist_view = { buckets : float array; counts : int array; sum : float; count : int }

type value = C of int | F of float | G of float | H of hist_view

type entry = { e_name : string; e_labels : labels; e_value : value }

type snapshot = entry list

(** A consistent copy of the whole registry, sorted by (name, labels). *)
let snapshot () : snapshot =
  locked (fun () ->
      Hashtbl.fold
        (fun (name, labels) metric acc ->
          let value =
            match metric with
            | Counter r -> C r.c
            | Fcounter r -> F r.f
            | Gauge r -> G r.g
            | Histogram h ->
                H
                  {
                    buckets = Array.copy h.bounds;
                    counts = Array.copy h.counts;
                    sum = h.hsum;
                    count = h.hcount;
                  }
          in
          { e_name = name; e_labels = labels; e_value = value } :: acc)
        registry [])
  |> List.sort (fun a b -> compare (a.e_name, a.e_labels) (b.e_name, b.e_labels))

let find ?(labels = []) (snap : snapshot) name =
  let labels = canon labels in
  List.find_map
    (fun e -> if e.e_name = name && e.e_labels = labels then Some e.e_value else None)
    snap

let counter_value ?labels snap name =
  match find ?labels snap name with Some (C n) -> n | _ -> 0

let fcounter_value ?labels snap name =
  match find ?labels snap name with Some (F x) -> x | _ -> 0.0

let gauge_value ?labels snap name =
  match find ?labels snap name with Some (G x) -> Some x | _ -> None

let hist_view ?labels snap name =
  match find ?labels snap name with Some (H h) -> Some h | _ -> None

(** Every entry with the given name, across label sets. *)
let entries_with (snap : snapshot) name = List.filter (fun e -> e.e_name = name) snap

(** Estimated [q]-quantile (0..1) from a histogram by linear interpolation
    inside the bucket holding the target rank.

    The interpolation rule, pinned for every consumer (ledger, [liger
    top], the HTML report): the value is interpolated linearly between
    the bucket's lower and upper bound at the target rank's offset into
    the bucket; the first bucket's lower bound is 0, the overflow bucket
    reports its lower bound (the largest finite boundary).  Degenerate
    histograms are total rather than NaN — an {e empty} histogram (or one
    with no buckets at all) reports 0.0 for every quantile, and a
    single-bucket histogram interpolates between 0 and its only bound —
    so a quantile can never leak NaN into the ledger or the report. *)
let quantile (h : hist_view) q =
  if h.count = 0 || Array.length h.buckets = 0 then 0.0
  else begin
    let target = q *. float_of_int h.count in
    let nb = Array.length h.buckets in
    let rec go i cum =
      if i > nb then h.buckets.(nb - 1)
      else
        let c = h.counts.(i) in
        if c > 0 && float_of_int cum +. float_of_int c >= target then
          if i >= nb then h.buckets.(nb - 1)
          else
            let lo = if i = 0 then 0.0 else h.buckets.(i - 1) in
            let hi = h.buckets.(i) in
            lo +. ((hi -. lo) *. (target -. float_of_int cum) /. float_of_int c)
        else go (i + 1) (cum + c)
    in
    go 0 0
  end

(* ---------------- JSON export ---------------- *)

let render_key name labels =
  match labels with
  | [] -> name
  | labels ->
      name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
      ^ "}"

(** Inverse of {!render_key}: split ["name{k=v,...}"] back into the name
    and its (canonically sorted) labels.  Label values must not contain
    [','] or ['}'] — which the pipeline's low-cardinality labels (model,
    oracle, domain, reason) never do. *)
let parse_rendered_key key =
  match String.index_opt key '{' with
  | None -> (key, [])
  | Some i when String.length key > i && key.[String.length key - 1] = '}' ->
      let name = String.sub key 0 i in
      let body = String.sub key (i + 1) (String.length key - i - 2) in
      let labels =
        if body = "" then []
        else
          String.split_on_char ',' body
          |> List.map (fun kv ->
                 match String.index_opt kv '=' with
                 | Some j ->
                     (String.sub kv 0 j, String.sub kv (j + 1) (String.length kv - j - 1))
                 | None -> (kv, ""))
      in
      (name, canon labels)
  | Some _ -> (key, [])

(** Render a snapshot as JSON with deterministic key order: one object per
    metric kind, keys of the form [name{label=value,...}]. *)
let to_json (snap : snapshot) =
  let buf = Buffer.create 1024 in
  let section kind keep render =
    let entries = List.filter keep snap in
    Buffer.add_string buf (Printf.sprintf "  %S: {" kind);
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\n    \"%s\": %s"
             (Json.escape (render_key e.e_name e.e_labels))
             (render e.e_value)))
      entries;
    if entries <> [] then Buffer.add_string buf "\n  ";
    Buffer.add_string buf "}"
  in
  Buffer.add_string buf "{\n";
  section "counters"
    (fun e -> match e.e_value with C _ -> true | _ -> false)
    (function C n -> string_of_int n | _ -> assert false);
  Buffer.add_string buf ",\n";
  section "fcounters"
    (fun e -> match e.e_value with F _ -> true | _ -> false)
    (function F x -> Json.of_float x | _ -> assert false);
  Buffer.add_string buf ",\n";
  section "gauges"
    (fun e -> match e.e_value with G _ -> true | _ -> false)
    (function G x -> Json.of_float x | _ -> assert false);
  Buffer.add_string buf ",\n";
  section "histograms"
    (fun e -> match e.e_value with H _ -> true | _ -> false)
    (function
      | H h ->
          let floats a = String.concat "," (List.map Json.of_float (Array.to_list a)) in
          let ints a = String.concat "," (List.map string_of_int (Array.to_list a)) in
          Printf.sprintf "{\"buckets\":[%s],\"counts\":[%s],\"sum\":%s,\"count\":%d}"
            (floats h.buckets) (ints h.counts) (Json.of_float h.sum) h.count
      | _ -> assert false);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

(** Render a snapshot as one compact line of JSON — the run-ledger
    (JSONL) format of {!Timeseries}.  [extra] fields (already-rendered
    JSON values, e.g. a timestamp) come first; the four metric sections
    follow in the same deterministic order as {!to_json}, so every
    ledger line is itself a valid metrics snapshot. *)
let to_json_compact ?(extra = []) (snap : snapshot) =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '{';
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "\"%s\":%s," (Json.escape k) v))
    extra;
  let section kind keep render =
    let entries = List.filter keep snap in
    Buffer.add_string buf (Printf.sprintf "\"%s\":{" kind);
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":%s"
             (Json.escape (render_key e.e_name e.e_labels))
             (render e.e_value)))
      entries;
    Buffer.add_char buf '}'
  in
  section "counters"
    (fun e -> match e.e_value with C _ -> true | _ -> false)
    (function C n -> string_of_int n | _ -> assert false);
  Buffer.add_char buf ',';
  section "fcounters"
    (fun e -> match e.e_value with F _ -> true | _ -> false)
    (function F x -> Json.of_float x | _ -> assert false);
  Buffer.add_char buf ',';
  section "gauges"
    (fun e -> match e.e_value with G _ -> true | _ -> false)
    (function G x -> Json.of_float x | _ -> assert false);
  Buffer.add_char buf ',';
  section "histograms"
    (fun e -> match e.e_value with H _ -> true | _ -> false)
    (function
      | H h ->
          let floats a = String.concat "," (List.map Json.of_float (Array.to_list a)) in
          let ints a = String.concat "," (List.map string_of_int (Array.to_list a)) in
          Printf.sprintf "{\"buckets\":[%s],\"counts\":[%s],\"sum\":%s,\"count\":%d}"
            (floats h.buckets) (ints h.counts) (Json.of_float h.sum) h.count
      | _ -> assert false);
  Buffer.add_char buf '}';
  Buffer.contents buf

let write path =
  let oc = open_out (path ^ ".tmp") in
  output_string oc (to_json (snapshot ()));
  close_out oc;
  Sys.rename (path ^ ".tmp") path
