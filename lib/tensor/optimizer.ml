(** First-order optimizers over a {!Param.store}.

    The paper trains with Adam at its default hyperparameters
    (lr = 1e-4, beta1 = 0.9, beta2 = 0.999); we default to the same shape of
    configuration but expose the learning rate since our models are far
    smaller.  Plain SGD is included for tests and ablations. *)

module P = Liger_obs.Profile
module D = Liger_obs.Dynamics
module BA = Bigarray.Array1

(* ---------- per-layer gradient-flow accumulation (dynamics) ----------

   When the dynamics streams are on, [clip_grads] publishes each
   parameter group's pre-clip gradient norm and [step] the exact
   update-to-weight ratio it applied.  Groups come from
   {!Dynamics.group_of_param} (the param name minus its final suffix).
   Everything below is reached only behind [D.on ()], so the disabled
   path keeps its original loops untouched. *)

let acc_group tbl group du dw =
  match Hashtbl.find_opt tbl group with
  | Some (u, w) ->
      u := !u +. du;
      w := !w +. dw
  | None -> Hashtbl.add tbl group (ref du, ref dw)

let record_layer_grads store =
  let tbl : (string, float ref * float ref) Hashtbl.t = Hashtbl.create 16 in
  Param.iter store (fun p ->
      let g = p.Param.grad.Tensor.data in
      let acc = ref 0.0 in
      for i = 0 to Param.size p - 1 do
        let gi = BA.unsafe_get g i in
        acc := !acc +. (gi *. gi)
      done;
      acc_group tbl (D.group_of_param p.Param.name) !acc 0.0);
  Hashtbl.iter (fun layer (u, _) -> D.record_layer_grad ~layer (sqrt !u)) tbl

let record_layer_updates tbl =
  Hashtbl.iter
    (fun layer (u, w) ->
      D.record_layer_update ~layer ~update_norm:(sqrt !u) ~weight_norm:(sqrt !w))
    tbl

(* coarse profiled ops: one clock read per optimizer step / clip, negligible
   next to the parameter sweep being timed *)
let op_sgd = P.register_op "optim.sgd_step"
let op_adam = P.register_op "optim.adam_step"
let op_clip = P.register_op "optim.clip_grads"

type t =
  | Sgd of { lr : float; momentum : float; state : (string, float array) Hashtbl.t }
  | Adam of {
      lr : float;
      beta1 : float;
      beta2 : float;
      eps : float;
      weight_decay : float;  (* decoupled (AdamW-style); 0 disables *)
      mutable step : int;
      state : (string, float array * float array) Hashtbl.t;
    }

let sgd ?(momentum = 0.0) ~lr () = Sgd { lr; momentum; state = Hashtbl.create 64 }

let adam ?(lr = 1e-3) ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8)
    ?(weight_decay = 0.0) () =
  Adam { lr; beta1; beta2; eps; weight_decay; step = 0; state = Hashtbl.create 64 }

(** Clip gradients to a global L2 norm of [max_norm]; returns the pre-clip
    norm. Stabilizes recurrent training on long traces.

    A non-finite norm (any NaN/inf gradient) cannot be rescaled — [norm >
    max_norm] is false for NaN, so the poisoned gradients would pass
    through untouched and corrupt Adam's moment estimates permanently.
    Instead the gradients are zeroed and the non-finite norm returned;
    callers must skip the optimizer step when [Float.is_finite] fails on
    the result (as {!Liger_eval.Train.fit} does, counting the skip). *)
let clip_grads store ~max_norm =
  let t0 = if P.on () then P.now () else 0.0 in
  if D.on () then record_layer_grads store;
  let norm = Param.grad_norm store in
  let norm =
    if not (Float.is_finite norm) then begin
      Param.zero_grads store;
      norm
    end
    else begin
      if norm > max_norm && norm > 0.0 then
        Param.scale_grads store (max_norm /. norm);
      norm
    end
  in
  if P.on () then
    P.op_timed op_clip ~seconds:(P.now () -. t0)
      ~flops:(float_of_int (3 * Param.num_params store))
      ~bytes:0.0;
  norm

let adam_state state (p : Param.t) =
  match Hashtbl.find_opt state p.Param.name with
  | Some mv -> mv
  | None ->
      let n = Param.size p in
      let mv = (Array.make n 0.0, Array.make n 0.0) in
      Hashtbl.add state p.Param.name mv;
      mv

(** Apply one update from the accumulated gradients, then zero them.
    Profiled as one coarse op (FLOP estimates per element: SGD 2, SGD with
    momentum 4, Adam 15). *)
let step t store =
  let t0 = if P.on () then P.now () else 0.0 in
  (* With dynamics on, each branch runs an accumulating twin of its update
     loop (update² and post-update weight² per group); with it off the
     original loops run untouched — one branch per parameter. *)
  let dtbl = if D.on () then Some (Hashtbl.create 16) else None in
  (match t with
  | Sgd { lr; momentum; state } ->
      Param.iter store (fun p ->
          let v = p.Param.value.Tensor.data and g = p.Param.grad.Tensor.data in
          let n = Param.size p in
          if momentum = 0.0 then
            match dtbl with
            | None ->
                for i = 0 to n - 1 do
                  BA.unsafe_set v i (BA.unsafe_get v i -. (lr *. BA.unsafe_get g i))
                done
            | Some tbl ->
                let du = ref 0.0 and dw = ref 0.0 in
                for i = 0 to n - 1 do
                  let d = lr *. BA.unsafe_get g i in
                  let v' = BA.unsafe_get v i -. d in
                  BA.unsafe_set v i v';
                  du := !du +. (d *. d);
                  dw := !dw +. (v' *. v')
                done;
                acc_group tbl (D.group_of_param p.Param.name) !du !dw
          else begin
            let vel =
              match Hashtbl.find_opt state p.Param.name with
              | Some vel -> vel
              | None ->
                  let vel = Array.make (Param.size p) 0.0 in
                  Hashtbl.add state p.Param.name vel;
                  vel
            in
            match dtbl with
            | None ->
                for i = 0 to n - 1 do
                  vel.(i) <- (momentum *. vel.(i)) +. BA.unsafe_get g i;
                  BA.unsafe_set v i (BA.unsafe_get v i -. (lr *. vel.(i)))
                done
            | Some tbl ->
                let du = ref 0.0 and dw = ref 0.0 in
                for i = 0 to n - 1 do
                  vel.(i) <- (momentum *. vel.(i)) +. BA.unsafe_get g i;
                  let d = lr *. vel.(i) in
                  let v' = BA.unsafe_get v i -. d in
                  BA.unsafe_set v i v';
                  du := !du +. (d *. d);
                  dw := !dw +. (v' *. v')
                done;
                acc_group tbl (D.group_of_param p.Param.name) !du !dw
          end)
  | Adam a ->
      a.step <- a.step + 1;
      let t' = float_of_int a.step in
      let bc1 = 1.0 -. (a.beta1 ** t') and bc2 = 1.0 -. (a.beta2 ** t') in
      Param.iter store (fun p ->
          let m, v2 = adam_state a.state p in
          let v = p.Param.value.Tensor.data and g = p.Param.grad.Tensor.data in
          match dtbl with
          | None ->
              for i = 0 to Param.size p - 1 do
                let gi = BA.unsafe_get g i in
                m.(i) <- (a.beta1 *. m.(i)) +. ((1.0 -. a.beta1) *. gi);
                v2.(i) <- (a.beta2 *. v2.(i)) +. ((1.0 -. a.beta2) *. gi *. gi);
                let mhat = m.(i) /. bc1 and vhat = v2.(i) /. bc2 in
                let vi = BA.unsafe_get v i in
                BA.unsafe_set v i
                  (vi -. (a.lr *. ((mhat /. (sqrt vhat +. a.eps)) +. (a.weight_decay *. vi))))
              done
          | Some tbl ->
              let du = ref 0.0 and dw = ref 0.0 in
              for i = 0 to Param.size p - 1 do
                let gi = BA.unsafe_get g i in
                m.(i) <- (a.beta1 *. m.(i)) +. ((1.0 -. a.beta1) *. gi);
                v2.(i) <- (a.beta2 *. v2.(i)) +. ((1.0 -. a.beta2) *. gi *. gi);
                let mhat = m.(i) /. bc1 and vhat = v2.(i) /. bc2 in
                let vi = BA.unsafe_get v i in
                let d = a.lr *. ((mhat /. (sqrt vhat +. a.eps)) +. (a.weight_decay *. vi)) in
                let v' = vi -. d in
                BA.unsafe_set v i v';
                du := !du +. (d *. d);
                dw := !dw +. (v' *. v')
              done;
              acc_group tbl (D.group_of_param p.Param.name) !du !dw));
  Option.iter record_layer_updates dtbl;
  Param.zero_grads store;
  if P.on () then begin
    let o, flops_per_elt =
      match t with
      | Sgd { momentum; _ } -> (op_sgd, if momentum = 0.0 then 2.0 else 4.0)
      | Adam _ -> (op_adam, 15.0)
    in
    P.op_timed o ~seconds:(P.now () -. t0)
      ~flops:(flops_per_elt *. float_of_int (Param.num_params store))
      ~bytes:0.0
  end
