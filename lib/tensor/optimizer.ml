(** First-order optimizers over a {!Param.store}.

    The paper trains with Adam at its default hyperparameters
    (lr = 1e-4, beta1 = 0.9, beta2 = 0.999); we default to the same shape of
    configuration but expose the learning rate since our models are far
    smaller.  Plain SGD is included for tests and ablations. *)

module P = Liger_obs.Profile
module BA = Bigarray.Array1

(* coarse profiled ops: one clock read per optimizer step / clip, negligible
   next to the parameter sweep being timed *)
let op_sgd = P.register_op "optim.sgd_step"
let op_adam = P.register_op "optim.adam_step"
let op_clip = P.register_op "optim.clip_grads"

type t =
  | Sgd of { lr : float; momentum : float; state : (string, float array) Hashtbl.t }
  | Adam of {
      lr : float;
      beta1 : float;
      beta2 : float;
      eps : float;
      weight_decay : float;  (* decoupled (AdamW-style); 0 disables *)
      mutable step : int;
      state : (string, float array * float array) Hashtbl.t;
    }

let sgd ?(momentum = 0.0) ~lr () = Sgd { lr; momentum; state = Hashtbl.create 64 }

let adam ?(lr = 1e-3) ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8)
    ?(weight_decay = 0.0) () =
  Adam { lr; beta1; beta2; eps; weight_decay; step = 0; state = Hashtbl.create 64 }

(** Clip gradients to a global L2 norm of [max_norm]; returns the pre-clip
    norm. Stabilizes recurrent training on long traces.

    A non-finite norm (any NaN/inf gradient) cannot be rescaled — [norm >
    max_norm] is false for NaN, so the poisoned gradients would pass
    through untouched and corrupt Adam's moment estimates permanently.
    Instead the gradients are zeroed and the non-finite norm returned;
    callers must skip the optimizer step when [Float.is_finite] fails on
    the result (as {!Liger_eval.Train.fit} does, counting the skip). *)
let clip_grads store ~max_norm =
  let t0 = if P.on () then P.now () else 0.0 in
  let norm = Param.grad_norm store in
  let norm =
    if not (Float.is_finite norm) then begin
      Param.zero_grads store;
      norm
    end
    else begin
      if norm > max_norm && norm > 0.0 then
        Param.scale_grads store (max_norm /. norm);
      norm
    end
  in
  if P.on () then
    P.op_timed op_clip ~seconds:(P.now () -. t0)
      ~flops:(float_of_int (3 * Param.num_params store))
      ~bytes:0.0;
  norm

let adam_state state (p : Param.t) =
  match Hashtbl.find_opt state p.Param.name with
  | Some mv -> mv
  | None ->
      let n = Param.size p in
      let mv = (Array.make n 0.0, Array.make n 0.0) in
      Hashtbl.add state p.Param.name mv;
      mv

(** Apply one update from the accumulated gradients, then zero them.
    Profiled as one coarse op (FLOP estimates per element: SGD 2, SGD with
    momentum 4, Adam 15). *)
let step t store =
  let t0 = if P.on () then P.now () else 0.0 in
  (match t with
  | Sgd { lr; momentum; state } ->
      Param.iter store (fun p ->
          let v = p.Param.value.Tensor.data and g = p.Param.grad.Tensor.data in
          let n = Param.size p in
          if momentum = 0.0 then
            for i = 0 to n - 1 do
              BA.unsafe_set v i (BA.unsafe_get v i -. (lr *. BA.unsafe_get g i))
            done
          else begin
            let vel =
              match Hashtbl.find_opt state p.Param.name with
              | Some vel -> vel
              | None ->
                  let vel = Array.make (Param.size p) 0.0 in
                  Hashtbl.add state p.Param.name vel;
                  vel
            in
            for i = 0 to n - 1 do
              vel.(i) <- (momentum *. vel.(i)) +. BA.unsafe_get g i;
              BA.unsafe_set v i (BA.unsafe_get v i -. (lr *. vel.(i)))
            done
          end)
  | Adam a ->
      a.step <- a.step + 1;
      let t' = float_of_int a.step in
      let bc1 = 1.0 -. (a.beta1 ** t') and bc2 = 1.0 -. (a.beta2 ** t') in
      Param.iter store (fun p ->
          let m, v2 = adam_state a.state p in
          let v = p.Param.value.Tensor.data and g = p.Param.grad.Tensor.data in
          for i = 0 to Param.size p - 1 do
            let gi = BA.unsafe_get g i in
            m.(i) <- (a.beta1 *. m.(i)) +. ((1.0 -. a.beta1) *. gi);
            v2.(i) <- (a.beta2 *. v2.(i)) +. ((1.0 -. a.beta2) *. gi *. gi);
            let mhat = m.(i) /. bc1 and vhat = v2.(i) /. bc2 in
            let vi = BA.unsafe_get v i in
            BA.unsafe_set v i
              (vi -. (a.lr *. ((mhat /. (sqrt vhat +. a.eps)) +. (a.weight_decay *. vi))))
          done));
  Param.zero_grads store;
  if P.on () then begin
    let o, flops_per_elt =
      match t with
      | Sgd { momentum; _ } -> (op_sgd, if momentum = 0.0 then 2.0 else 4.0)
      | Adam _ -> (op_adam, 15.0)
    in
    P.op_timed o ~seconds:(P.now () -. t0)
      ~flops:(flops_per_elt *. float_of_int (Param.num_params store))
      ~bytes:0.0
  end
