(** Tape-based reverse-mode automatic differentiation over vectors.

    The computation graph is recorded on a {!tape}: every operation pushes a
    node holding its value, a gradient buffer and a backward closure.
    {!backward} seeds the loss gradient and replays the closures in reverse
    creation order, accumulating into input nodes and ultimately into the
    {!Param.t} gradients that operations such as {!matvec} and {!row}
    reference.

    All intermediate quantities are vectors ([float array]); scalars are
    length-1 vectors.  This granularity matches the models in this repo
    (recurrent nets over modest hidden sizes) and keeps the tape small.

    {2 Profiling}

    When {!Liger_obs.Profile} is enabled, every op records a count, its
    analytic FLOPs and the bytes of its output node.  Conventions (tests and
    DESIGN.md depend on these): an op's bytes are [16 * len] of its output
    (value + grad arrays, 8 bytes per float each); [axpy]-style updates
    count 2 FLOPs per element (multiply + add); a transcendental application
    counts 1.  Nodes are tagged with {!Liger_obs.Profile.current_layer} at
    creation so {!backward} can attribute backward time to the layer whose
    forward created each node, reading the clock only at tag boundaries
    (consecutive same-layer nodes share one timed segment). *)

module P = Liger_obs.Profile

type node = {
  value : float array;
  grad : float array;
  back : unit -> unit;  (* propagate this node's grad into its inputs *)
  tag : int;            (* layer id at creation time; -1 = outside any layer *)
}

type tape = {
  mutable nodes : node list;  (* newest first: already reverse topological *)
  mutable n_ops : int;
  mutable alloc_bytes : int;  (* profiled bytes attributed to this tape's nodes *)
}

let tape () = { nodes = []; n_ops = 0; alloc_bytes = 0 }

let length t = t.n_ops

let value n = n.value
let grad n = n.grad
let dim n = Array.length n.value

let scalar_value n =
  if Array.length n.value <> 1 then invalid_arg "Autodiff.scalar_value: not a scalar";
  n.value.(0)

let push tape value back =
  let tag = if P.on () then P.current_layer () else -1 in
  let n = { value; grad = Array.make (Array.length value) 0.0; back; tag } in
  tape.nodes <- n :: tape.nodes;
  tape.n_ops <- tape.n_ops + 1;
  if P.on () then begin
    let b = 16 * Array.length value in
    tape.alloc_bytes <- tape.alloc_bytes + b;
    P.alloc b
  end;
  n

let no_back () = ()

(* profiled op ids — registration is idempotent and happens once at module
   initialisation, so the hot path is array indexing *)
let op_const = P.register_op "ad.const"
let op_of_param = P.register_op "ad.of_param"
let op_of_param_b = P.register_op "ad.of_param.bwd"
let op_row = P.register_op "ad.row"
let op_row_b = P.register_op "ad.row.bwd"
let op_add = P.register_op "ad.add"
let op_add_b = P.register_op "ad.add.bwd"
let op_sub = P.register_op "ad.sub"
let op_sub_b = P.register_op "ad.sub.bwd"
let op_mul = P.register_op "ad.mul"
let op_mul_b = P.register_op "ad.mul.bwd"
let op_scale = P.register_op "ad.scale"
let op_scale_b = P.register_op "ad.scale.bwd"
let op_unary = P.register_op "ad.unary"
let op_unary_b = P.register_op "ad.unary.bwd"
let op_matvec = P.register_op "ad.matvec"
let op_matvec_b = P.register_op "ad.matvec.bwd"
let op_concat = P.register_op "ad.concat"
let op_concat_b = P.register_op "ad.concat.bwd"
let op_slice = P.register_op "ad.slice"
let op_slice_b = P.register_op "ad.slice.bwd"
let op_one_minus = P.register_op "ad.one_minus"
let op_one_minus_b = P.register_op "ad.one_minus.bwd"
let op_dot = P.register_op "ad.dot"
let op_dot_b = P.register_op "ad.dot.bwd"
let op_sum = P.register_op "ad.sum"
let op_sum_b = P.register_op "ad.sum.bwd"
let op_softmax = P.register_op "ad.softmax"
let op_softmax_b = P.register_op "ad.softmax.bwd"
let op_wsum = P.register_op "ad.weighted_sum"
let op_wsum_b = P.register_op "ad.weighted_sum.bwd"
let op_max_pool = P.register_op "ad.max_pool"
let op_max_pool_b = P.register_op "ad.max_pool.bwd"
let op_xent = P.register_op "ad.softmax_xent"
let op_xent_b = P.register_op "ad.softmax_xent.bwd"

let fbytes len = float_of_int (16 * len)

(** A leaf holding a copy of [a]; gradients stop here. *)
let const tape a =
  if P.on () then P.op op_const ~flops:0.0 ~bytes:(fbytes (Array.length a));
  push tape (Array.copy a) no_back

let scalar tape x = const tape [| x |]

(** View a vector-shaped parameter (bias, initial state) as a node; backward
    accumulates into the parameter's gradient. *)
let of_param tape (p : Param.t) =
  if p.Param.value.Tensor.rows <> 1 then
    invalid_arg "Autodiff.of_param: parameter is not a vector";
  let v = Tensor.to_array p.Param.value in
  let d = Array.length v in
  if P.on () then P.op op_of_param ~flops:0.0 ~bytes:(fbytes d);
  let rec n =
    lazy
      (push tape v (fun () ->
           if P.on () then P.op op_of_param_b ~flops:(float_of_int (2 * d)) ~bytes:0.0;
           Tensor.axpy_buf 1.0 (Lazy.force n).grad p.Param.grad.Tensor.data))
  in
  Lazy.force n

(** [row tape p i] is row [i] of parameter matrix [p] (embedding lookup);
    backward accumulates only into that row. *)
let row tape (p : Param.t) i =
  let cols = Param.cols p in
  if i < 0 || i >= Param.rows p then invalid_arg "Autodiff.row: index out of range";
  let base = i * cols in
  let v = Array.init cols (fun j -> Tensor.get_idx p.Param.value (base + j)) in
  if P.on () then P.op op_row ~flops:0.0 ~bytes:(fbytes cols);
  let rec n =
    lazy
      (push tape v (fun () ->
           if P.on () then P.op op_row_b ~flops:(float_of_int cols) ~bytes:0.0;
           let g = (Lazy.force n).grad in
           let pg = p.Param.grad.Tensor.data in
           for j = 0 to cols - 1 do
             Bigarray.Array1.unsafe_set pg (base + j)
               (Bigarray.Array1.unsafe_get pg (base + j) +. Array.unsafe_get g j)
           done))
  in
  Lazy.force n

let check_same name a b =
  if Array.length a.value <> Array.length b.value then
    invalid_arg
      (Printf.sprintf "Autodiff.%s: dim mismatch (%d vs %d)" name
         (Array.length a.value) (Array.length b.value))

let add tape a b =
  check_same "add" a b;
  let v = Array.mapi (fun i x -> x +. b.value.(i)) a.value in
  let d = Array.length v in
  if P.on () then P.op op_add ~flops:(float_of_int d) ~bytes:(fbytes d);
  let rec n =
    lazy
      (push tape v (fun () ->
           if P.on () then P.op op_add_b ~flops:(float_of_int (4 * d)) ~bytes:0.0;
           let g = (Lazy.force n).grad in
           Tensor.axpy 1.0 g a.grad;
           Tensor.axpy 1.0 g b.grad))
  in
  Lazy.force n

let sub tape a b =
  check_same "sub" a b;
  let v = Array.mapi (fun i x -> x -. b.value.(i)) a.value in
  let d = Array.length v in
  if P.on () then P.op op_sub ~flops:(float_of_int d) ~bytes:(fbytes d);
  let rec n =
    lazy
      (push tape v (fun () ->
           if P.on () then P.op op_sub_b ~flops:(float_of_int (4 * d)) ~bytes:0.0;
           let g = (Lazy.force n).grad in
           Tensor.axpy 1.0 g a.grad;
           Tensor.axpy (-1.0) g b.grad))
  in
  Lazy.force n

(** Elementwise (Hadamard) product. *)
let mul tape a b =
  check_same "mul" a b;
  let v = Array.mapi (fun i x -> x *. b.value.(i)) a.value in
  let d = Array.length v in
  if P.on () then P.op op_mul ~flops:(float_of_int d) ~bytes:(fbytes d);
  let rec n =
    lazy
      (push tape v (fun () ->
           if P.on () then P.op op_mul_b ~flops:(float_of_int (4 * d)) ~bytes:0.0;
           let g = (Lazy.force n).grad in
           for i = 0 to Array.length g - 1 do
             a.grad.(i) <- a.grad.(i) +. (g.(i) *. b.value.(i));
             b.grad.(i) <- b.grad.(i) +. (g.(i) *. a.value.(i))
           done))
  in
  Lazy.force n

let scale tape c a =
  let v = Array.map (fun x -> c *. x) a.value in
  let d = Array.length v in
  if P.on () then P.op op_scale ~flops:(float_of_int d) ~bytes:(fbytes d);
  let rec n =
    lazy
      (push tape v (fun () ->
           if P.on () then P.op op_scale_b ~flops:(float_of_int (2 * d)) ~bytes:0.0;
           Tensor.axpy c (Lazy.force n).grad a.grad))
  in
  Lazy.force n

let neg tape a = scale tape (-1.0) a

(** Elementwise unary op given the function and its derivative expressed in
    terms of the {e output} value (cheap for tanh/sigmoid). *)
let unary_from_out tape f df_out a =
  let v = Array.map f a.value in
  let d = Array.length v in
  if P.on () then P.op op_unary ~flops:(float_of_int d) ~bytes:(fbytes d);
  let rec n =
    lazy
      (push tape v (fun () ->
           if P.on () then P.op op_unary_b ~flops:(float_of_int (3 * d)) ~bytes:0.0;
           let out = Lazy.force n in
           for i = 0 to Array.length out.grad - 1 do
             a.grad.(i) <- a.grad.(i) +. (out.grad.(i) *. df_out out.value.(i))
           done))
  in
  Lazy.force n

let tanh_ tape a = unary_from_out tape Stdlib.tanh (fun y -> 1.0 -. (y *. y)) a

let sigmoid tape a =
  unary_from_out tape (fun x -> 1.0 /. (1.0 +. exp (-.x))) (fun y -> y *. (1.0 -. y)) a

let relu tape a =
  unary_from_out tape (fun x -> if x > 0.0 then x else 0.0)
    (fun y -> if y > 0.0 then 1.0 else 0.0) a

(** [matvec tape p x] is [p * x] for a parameter matrix [p].  Profiled at
    [2rc] forward FLOPs and [4rc] backward ([matvec_t_acc] + [outer_acc]). *)
let matvec tape (p : Param.t) x =
  if dim x <> Param.cols p then
    invalid_arg
      (Printf.sprintf "Autodiff.matvec(%s): expected dim %d, got %d" p.Param.name
         (Param.cols p) (dim x));
  let rows = Param.rows p and cols = Param.cols p in
  let v = Array.make rows 0.0 in
  Tensor.matvec p.Param.value x.value v;
  if P.on () then P.op op_matvec ~flops:(float_of_int (2 * rows * cols)) ~bytes:(fbytes rows);
  let rec n =
    lazy
      (push tape v (fun () ->
           if P.on () then
             P.op op_matvec_b ~flops:(float_of_int (4 * rows * cols)) ~bytes:0.0;
           let g = (Lazy.force n).grad in
           Tensor.matvec_t_acc p.Param.value g x.grad;
           Tensor.outer_acc g x.value p.Param.grad))
  in
  Lazy.force n

(** [affine tape ~w ~b x] is [w*x + b]. *)
let affine tape ~w ~b x = add tape (matvec tape w x) (of_param tape b)

let concat tape xs =
  (match xs with [] -> invalid_arg "Autodiff.concat: empty" | _ -> ());
  let total = List.fold_left (fun acc x -> acc + dim x) 0 xs in
  let v = Array.make total 0.0 in
  let off = ref 0 in
  List.iter
    (fun x ->
      Array.blit x.value 0 v !off (dim x);
      off := !off + dim x)
    xs;
  if P.on () then P.op op_concat ~flops:0.0 ~bytes:(fbytes total);
  let rec n =
    lazy
      (push tape v (fun () ->
           if P.on () then P.op op_concat_b ~flops:(float_of_int total) ~bytes:0.0;
           let g = (Lazy.force n).grad in
           let off = ref 0 in
           List.iter
             (fun x ->
               let d = dim x in
               for i = 0 to d - 1 do
                 x.grad.(i) <- x.grad.(i) +. g.(!off + i)
               done;
               off := !off + d)
             xs))
  in
  Lazy.force n

(** [slice tape a off len] is the contiguous sub-vector [a[off .. off+len-1]];
    backward adds into the corresponding window of [a]. *)
let slice tape a off len =
  if off < 0 || len <= 0 || off + len > dim a then
    invalid_arg "Autodiff.slice: window out of range";
  let v = Array.sub a.value off len in
  if P.on () then P.op op_slice ~flops:0.0 ~bytes:(fbytes len);
  let rec n =
    lazy
      (push tape v (fun () ->
           if P.on () then P.op op_slice_b ~flops:(float_of_int len) ~bytes:0.0;
           let g = (Lazy.force n).grad in
           for i = 0 to len - 1 do
             a.grad.(off + i) <- a.grad.(off + i) +. g.(i)
           done))
  in
  Lazy.force n

(** [one_minus tape a] is [1 - a] elementwise (GRU update gates). *)
let one_minus tape a =
  let v = Array.map (fun x -> 1.0 -. x) a.value in
  let d = Array.length v in
  if P.on () then P.op op_one_minus ~flops:(float_of_int d) ~bytes:(fbytes d);
  let rec n =
    lazy
      (push tape v (fun () ->
           if P.on () then P.op op_one_minus_b ~flops:(float_of_int (2 * d)) ~bytes:0.0;
           Tensor.axpy (-1.0) (Lazy.force n).grad a.grad))
  in
  Lazy.force n

let dot tape a b =
  check_same "dot" a b;
  let d = dim a in
  let v = [| Tensor.dot a.value b.value |] in
  if P.on () then P.op op_dot ~flops:(float_of_int (2 * d)) ~bytes:(fbytes 1);
  let rec n =
    lazy
      (push tape v (fun () ->
           if P.on () then P.op op_dot_b ~flops:(float_of_int (4 * d)) ~bytes:0.0;
           let g = (Lazy.force n).grad.(0) in
           Tensor.axpy g b.value a.grad;
           Tensor.axpy g a.value b.grad))
  in
  Lazy.force n

let sum tape a =
  let d = dim a in
  let v = [| Array.fold_left ( +. ) 0.0 a.value |] in
  if P.on () then P.op op_sum ~flops:(float_of_int d) ~bytes:(fbytes 1);
  let rec n =
    lazy
      (push tape v (fun () ->
           if P.on () then P.op op_sum_b ~flops:(float_of_int d) ~bytes:0.0;
           let g = (Lazy.force n).grad.(0) in
           for i = 0 to Array.length a.grad - 1 do
             a.grad.(i) <- a.grad.(i) +. g
           done))
  in
  Lazy.force n

(** Softmax over a whole vector node. *)
let softmax tape a =
  let v = Tensor.softmax a.value in
  let d = Array.length v in
  if P.on () then P.op op_softmax ~flops:(float_of_int (4 * d)) ~bytes:(fbytes d);
  let rec n =
    lazy
      (push tape v (fun () ->
           if P.on () then P.op op_softmax_b ~flops:(float_of_int (4 * d)) ~bytes:0.0;
           let out = Lazy.force n in
           let g = out.grad and y = out.value in
           let s = ref 0.0 in
           for i = 0 to Array.length g - 1 do
             s := !s +. (g.(i) *. y.(i))
           done;
           for i = 0 to Array.length g - 1 do
             a.grad.(i) <- a.grad.(i) +. (y.(i) *. (g.(i) -. !s))
           done))
  in
  Lazy.force n

(** [weighted_sum tape w vs] is [sum_i w.(i) * vs.(i)] where [w] is a vector
    node of the same length as the array of equal-dim vector nodes [vs]. *)
let weighted_sum tape w vs =
  let k = Array.length vs in
  if dim w <> k then invalid_arg "Autodiff.weighted_sum: weight length mismatch";
  if k = 0 then invalid_arg "Autodiff.weighted_sum: empty";
  let d = dim vs.(0) in
  let v = Array.make d 0.0 in
  Array.iteri
    (fun i x ->
      if dim x <> d then invalid_arg "Autodiff.weighted_sum: ragged vectors";
      Tensor.axpy w.value.(i) x.value v)
    vs;
  if P.on () then P.op op_wsum ~flops:(float_of_int (2 * k * d)) ~bytes:(fbytes d);
  let rec n =
    lazy
      (push tape v (fun () ->
           if P.on () then P.op op_wsum_b ~flops:(float_of_int (4 * k * d)) ~bytes:0.0;
           let g = (Lazy.force n).grad in
           Array.iteri
             (fun i x ->
               w.grad.(i) <- w.grad.(i) +. Tensor.dot g x.value;
               Tensor.axpy w.value.(i) g x.grad)
             vs))
  in
  Lazy.force n

(** Elementwise max over a nonempty array of equal-dim vectors; gradients are
    routed to the argmax input per coordinate (ties go to the earliest). *)
let max_pool tape vs =
  let k = Array.length vs in
  if k = 0 then invalid_arg "Autodiff.max_pool: empty";
  let d = dim vs.(0) in
  let v = Array.make d neg_infinity in
  let who = Array.make d 0 in
  Array.iteri
    (fun i x ->
      if dim x <> d then invalid_arg "Autodiff.max_pool: ragged vectors";
      for j = 0 to d - 1 do
        if x.value.(j) > v.(j) then begin
          v.(j) <- x.value.(j);
          who.(j) <- i
        end
      done)
    vs;
  if P.on () then P.op op_max_pool ~flops:(float_of_int (k * d)) ~bytes:(fbytes d);
  let rec n =
    lazy
      (push tape v (fun () ->
           if P.on () then P.op op_max_pool_b ~flops:(float_of_int d) ~bytes:0.0;
           let g = (Lazy.force n).grad in
           for j = 0 to d - 1 do
             let x = vs.(who.(j)) in
             x.grad.(j) <- x.grad.(j) +. g.(j)
           done))
  in
  Lazy.force n

let mean_pool tape vs =
  let k = Array.length vs in
  if k = 0 then invalid_arg "Autodiff.mean_pool: empty";
  let acc = ref vs.(0) in
  for i = 1 to k - 1 do
    acc := add tape !acc vs.(i)
  done;
  scale tape (1.0 /. float_of_int k) !acc

(** [softmax_cross_entropy tape logits target] returns the scalar loss
    [-log softmax(logits).(target)] and the probability vector (a plain
    array, for metrics). *)
let softmax_cross_entropy tape logits target =
  let probs = Tensor.softmax logits.value in
  let d = Array.length probs in
  if target < 0 || target >= d then
    invalid_arg "Autodiff.softmax_cross_entropy: bad target";
  let loss = -.log (Stdlib.max 1e-12 probs.(target)) in
  if P.on () then P.op op_xent ~flops:(float_of_int (4 * d)) ~bytes:(fbytes 1);
  let rec n =
    lazy
      (push tape [| loss |] (fun () ->
           if P.on () then P.op op_xent_b ~flops:(float_of_int (3 * d)) ~bytes:0.0;
           let g = (Lazy.force n).grad.(0) in
           for i = 0 to Array.length probs - 1 do
             let delta = if i = target then 1.0 else 0.0 in
             logits.grad.(i) <- logits.grad.(i) +. (g *. (probs.(i) -. delta))
           done))
  in
  (Lazy.force n, probs)

let release_tape tape =
  if tape.alloc_bytes > 0 then begin
    P.release tape.alloc_bytes;
    tape.alloc_bytes <- 0
  end

(** Seed [loss]'s gradient with 1 and replay the tape backwards.  The tape is
    cleared afterwards so it can be reused for the next example.  When
    profiling, backward time is attributed to the layer that created each
    node; the clock is read only when the layer tag changes along the
    tape. *)
let backward tape loss =
  if Array.length loss.grad <> 1 then
    invalid_arg "Autodiff.backward: loss must be a scalar";
  loss.grad.(0) <- 1.0;
  (if P.on () then begin
     match tape.nodes with
     | [] -> ()
     | first :: _ ->
         let cur = ref first.tag in
         let t0 = ref (P.now ()) in
         List.iter
           (fun n ->
             if n.tag <> !cur then begin
               let t = P.now () in
               P.add_bwd !cur (t -. !t0);
               cur := n.tag;
               t0 := t
             end;
             n.back ())
           tape.nodes;
         P.add_bwd !cur (P.now () -. !t0)
   end
   else List.iter (fun n -> n.back ()) tape.nodes);
  release_tape tape;
  tape.nodes <- [];
  tape.n_ops <- 0

(** Drop the recorded graph without propagating (e.g. after inference). *)
let discard tape =
  release_tape tape;
  tape.nodes <- [];
  tape.n_ops <- 0
