(** Tape-based reverse-mode autodiff over {e batched} matrices.

    The per-example engine ({!Autodiff}) records vector nodes; this engine
    records [lanes × dim] matrix nodes, where each row ("lane") carries one
    independent example/trace/state of a padded batch.  Semantics per lane
    are identical to the unbatched ops — the equivalence tests in
    [test/test_batched.ml] hold every layer to that within float tolerance —
    but the work runs through the {!Tensor} GEMM kernels and flat loops, so
    a batch of B lanes costs far fewer than B unbatched passes.

    Padding and masking conventions (shared with [lib/nn] and DESIGN.md):
    - Variable-length sequences are padded to the longest lane; each step
      takes a [mask : float array] with 1.0 for live lanes, 0.0 for padded
      ones.  Recurrences use {!select_rows} ([m⊙new + (1-m)⊙old]) so padded
      lanes carry their last real state forward and receive {e exactly} zero
      gradient (the mask multiplies the gradient, not just the value).
    - Ragged candidate sets use {!masked_softmax_rows}: masked slots get
      weight 0 and zero gradient; a row with a single valid slot gets weight
      1 with zero gradient into its score (softmax Jacobian [w - w²] is 0),
      matching the unbatched single-candidate bypass.
    - Cross-level packing (tokens → variables → states → traces) is built
      from {!vstack} + {!gather_rows} + the group reductions {!group_sum} /
      {!group_max}.

    Node storage is leased from {!Bufpool} and returned when the tape is
    released, so steady-state training allocates (almost) nothing per step;
    consequently node values are only valid until {!backward}/{!discard} —
    copy out what you need first.

    Profiling mirrors {!Autodiff}: ops are registered as [bad.*], bytes are
    [16 * lanes * dim] of the output node, GEMM counts [2mnk] forward FLOPs
    and [2mnk] per backward GEMM (4mnk for the usual dX+dW pair). *)

module P = Liger_obs.Profile
module D = Liger_obs.Dynamics
module BA = Bigarray.Array1

type node = {
  value : Tensor.t;     (* lanes × dim *)
  grad : Tensor.t;      (* same shape, accumulated by backward *)
  back : unit -> unit;
  tag : int;            (* layer id at creation; -1 = outside any layer *)
}

type tape = {
  mutable nodes : node list;  (* newest first: reverse topological *)
  mutable n_ops : int;
  mutable alloc_bytes : int;
  mutable aux : Tensor.buf list;  (* gradient-free scratch (e.g. softmax probs) *)
}

let tape () = { nodes = []; n_ops = 0; alloc_bytes = 0; aux = [] }

let length t = t.n_ops

let value n = n.value
let grad n = n.grad
let lanes n = n.value.Tensor.rows
let dim n = n.value.Tensor.cols

let scalar_value n =
  if lanes n <> 1 || dim n <> 1 then invalid_arg "Batched.scalar_value: not 1x1";
  Tensor.get_idx n.value 0

(** Copy lane [i] of a node's value out as a float array. *)
let row_value n i =
  let c = dim n in
  let base = i * c in
  Array.init c (fun j -> Tensor.get_idx n.value (base + j))

(** Copy lane [i] of a node's gradient out as a float array. *)
let row_grad n i =
  let c = dim n in
  let base = i * c in
  Array.init c (fun j -> Tensor.get_idx n.grad (base + j))

(* Leases value (uninitialised) and grad (zeroed) storage from the pool;
   the op fills the value after pushing.  Safe because [back] can only run
   once the whole forward pass is on the tape. *)
let push tape rows cols back =
  if rows <= 0 || cols <= 0 then invalid_arg "Batched.push: non-positive shape";
  let tag = if P.on () then P.current_layer () else -1 in
  let n_elts = rows * cols in
  let value = Tensor.of_buf (Bufpool.take n_elts) rows cols in
  let grad = Tensor.of_buf (Bufpool.take_zeroed n_elts) rows cols in
  let n = { value; grad; back; tag } in
  tape.nodes <- n :: tape.nodes;
  tape.n_ops <- tape.n_ops + 1;
  if P.on () then begin
    let b = 16 * n_elts in
    tape.alloc_bytes <- tape.alloc_bytes + b;
    P.alloc b
  end;
  n

let no_back () = ()

let take_aux tape n_elts =
  let b = Bufpool.take n_elts in
  tape.aux <- b :: tape.aux;
  b

(* profiled op ids, mirroring the ad.* registry *)
let op_const = P.register_op "bad.const"
let op_of_param = P.register_op "bad.of_param"
let op_of_param_b = P.register_op "bad.of_param.bwd"
let op_rows = P.register_op "bad.rows_of_param"
let op_rows_b = P.register_op "bad.rows_of_param.bwd"
let op_gemm = P.register_op "bad.gemm"
let op_gemm_b = P.register_op "bad.gemm.bwd"
let op_bias = P.register_op "bad.bias"
let op_bias_b = P.register_op "bad.bias.bwd"
let op_ew = P.register_op "bad.elementwise"
let op_ew_b = P.register_op "bad.elementwise.bwd"
let op_unary = P.register_op "bad.unary"
let op_unary_b = P.register_op "bad.unary.bwd"
let op_concat = P.register_op "bad.concat_cols"
let op_concat_b = P.register_op "bad.concat_cols.bwd"
let op_slice = P.register_op "bad.slice_cols"
let op_slice_b = P.register_op "bad.slice_cols.bwd"
let op_vstack = P.register_op "bad.vstack"
let op_vstack_b = P.register_op "bad.vstack.bwd"
let op_gather = P.register_op "bad.gather_rows"
let op_gather_b = P.register_op "bad.gather_rows.bwd"
let op_select = P.register_op "bad.select_rows"
let op_select_b = P.register_op "bad.select_rows.bwd"
let op_group_sum = P.register_op "bad.group_sum"
let op_group_sum_b = P.register_op "bad.group_sum.bwd"
let op_group_max = P.register_op "bad.group_max"
let op_group_max_b = P.register_op "bad.group_max.bwd"
let op_softmax = P.register_op "bad.softmax_rows"
let op_softmax_b = P.register_op "bad.softmax_rows.bwd"
let op_wsum = P.register_op "bad.weighted_sum"
let op_wsum_b = P.register_op "bad.weighted_sum.bwd"
let op_sum = P.register_op "bad.sum_all"
let op_sum_b = P.register_op "bad.sum_all.bwd"
let op_xent = P.register_op "bad.softmax_xent_rows"
let op_xent_b = P.register_op "bad.softmax_xent_rows.bwd"

let fbytes n = float_of_int (16 * n)
let fi = float_of_int

(* ------------------------------------------------------------------ *)
(* Leaves                                                              *)
(* ------------------------------------------------------------------ *)

(** A gradient-stopping leaf holding a copy of [t]. *)
let const tape (t : Tensor.t) =
  let n_elts = Tensor.size t in
  if P.on () then P.op op_const ~flops:0.0 ~bytes:(fbytes n_elts);
  let n = push tape t.Tensor.rows t.Tensor.cols no_back in
  BA.blit t.Tensor.data n.value.Tensor.data;
  n

(** A leaf from a row-major array of [rows * cols] values. *)
let const_arr tape ~rows ~cols (a : float array) =
  if Array.length a <> rows * cols then invalid_arg "Batched.const_arr: size mismatch";
  if P.on () then P.op op_const ~flops:0.0 ~bytes:(fbytes (rows * cols));
  let n = push tape rows cols no_back in
  Tensor.blit_from_array a n.value;
  n

let zeros tape ~rows ~cols =
  if P.on () then P.op op_const ~flops:0.0 ~bytes:(fbytes (rows * cols));
  let n = push tape rows cols no_back in
  Tensor.fill n.value 0.0;
  n

(** Broadcast a vector parameter (bias, initial state) across [lanes] rows;
    backward sums the lane gradients into the parameter (column sum, lane
    order fixed). *)
let of_param tape ~lanes (p : Param.t) =
  if p.Param.value.Tensor.rows <> 1 then
    invalid_arg "Batched.of_param: parameter is not a vector";
  let d = Param.cols p in
  if P.on () then P.op op_of_param ~flops:0.0 ~bytes:(fbytes (lanes * d));
  let rec n =
    lazy
      (push tape lanes d (fun () ->
           if P.on () then P.op op_of_param_b ~flops:(fi (lanes * d)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let pg = p.Param.grad.Tensor.data in
           for i = 0 to lanes - 1 do
             let base = i * d in
             for j = 0 to d - 1 do
               BA.unsafe_set pg j (BA.unsafe_get pg j +. BA.unsafe_get g (base + j))
             done
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data and pv = p.Param.value.Tensor.data in
  for i = 0 to lanes - 1 do
    let base = i * d in
    for j = 0 to d - 1 do
      BA.unsafe_set v (base + j) (BA.unsafe_get pv j)
    done
  done;
  n

(** Gather rows of a matrix parameter (batched embedding lookup); backward
    scatter-adds into the gathered rows, with duplicates accumulating in
    lane order. *)
let rows_of_param tape (p : Param.t) (ids : int array) =
  let l = Array.length ids in
  if l = 0 then invalid_arg "Batched.rows_of_param: empty";
  let rows_p = Param.rows p and d = Param.cols p in
  Array.iter
    (fun i -> if i < 0 || i >= rows_p then invalid_arg "Batched.rows_of_param: id out of range")
    ids;
  if P.on () then P.op op_rows ~flops:0.0 ~bytes:(fbytes (l * d));
  let rec n =
    lazy
      (push tape l d (fun () ->
           if P.on () then P.op op_rows_b ~flops:(fi (l * d)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let pg = p.Param.grad.Tensor.data in
           for i = 0 to l - 1 do
             let src = i * d and dst = ids.(i) * d in
             for j = 0 to d - 1 do
               BA.unsafe_set pg (dst + j)
                 (BA.unsafe_get pg (dst + j) +. BA.unsafe_get g (src + j))
             done
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data and pv = p.Param.value.Tensor.data in
  for i = 0 to l - 1 do
    let dst = i * d and src = ids.(i) * d in
    for j = 0 to d - 1 do
      BA.unsafe_set v (dst + j) (BA.unsafe_get pv (src + j))
    done
  done;
  n

(* ------------------------------------------------------------------ *)
(* GEMM-backed linear algebra                                          *)
(* ------------------------------------------------------------------ *)

(** [matmul_nt tape x p] is [X · W^T] for parameter matrix [W : out×in] and
    [X : lanes×in], the batched counterpart of {!Autodiff.matvec}.  Backward
    runs the two sibling GEMMs [dX += dY·W] and [dW += dY^T·X]. *)
let matmul_nt tape x (p : Param.t) =
  let l = lanes x and k = dim x in
  let out = Param.rows p in
  if Param.cols p <> k then
    invalid_arg
      (Printf.sprintf "Batched.matmul_nt(%s): expected dim %d, got %d" p.Param.name
         (Param.cols p) k);
  if P.on () then P.op op_gemm ~flops:(fi (2 * l * out * k)) ~bytes:(fbytes (l * out));
  let rec n =
    lazy
      (push tape l out (fun () ->
           if P.on () then P.op op_gemm_b ~flops:(fi (4 * l * out * k)) ~bytes:0.0;
           let g = (Lazy.force n).grad in
           Tensor.gemm_nn ~beta:1.0 g p.Param.value x.grad;
           Tensor.gemm_tn ~beta:1.0 g x.value p.Param.grad))
  in
  let n = Lazy.force n in
  Tensor.gemm_nt ~beta:0.0 x.value p.Param.value n.value;
  n

(** Add a broadcast vector parameter to every lane ([X + 1·b^T]); backward
    passes gradients through and column-sums them into the bias. *)
let add_bias tape a (p : Param.t) =
  let l = lanes a and d = dim a in
  if p.Param.value.Tensor.rows <> 1 || Param.cols p <> d then
    invalid_arg "Batched.add_bias: bias shape mismatch";
  if P.on () then P.op op_bias ~flops:(fi (l * d)) ~bytes:(fbytes (l * d));
  let rec n =
    lazy
      (push tape l d (fun () ->
           if P.on () then P.op op_bias_b ~flops:(fi (2 * l * d)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let ag = a.grad.Tensor.data and pg = p.Param.grad.Tensor.data in
           for i = 0 to (l * d) - 1 do
             BA.unsafe_set ag i (BA.unsafe_get ag i +. BA.unsafe_get g i)
           done;
           for i = 0 to l - 1 do
             let base = i * d in
             for j = 0 to d - 1 do
               BA.unsafe_set pg j (BA.unsafe_get pg j +. BA.unsafe_get g (base + j))
             done
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data and av = a.value.Tensor.data in
  let pv = p.Param.value.Tensor.data in
  for i = 0 to l - 1 do
    let base = i * d in
    for j = 0 to d - 1 do
      BA.unsafe_set v (base + j) (BA.unsafe_get av (base + j) +. BA.unsafe_get pv j)
    done
  done;
  n

(* Saturation sampling for the dynamics streams: scan one activation
   buffer (lanes-major), counting saturated elements and output units dead
   across every lane, and publish under the ambient nn layer.  Callers
   gate on [D.on () && D.should_sample ()], so the uninstrumented forward
   path pays one branch per activation node and the instrumented one scans
   every [Dynamics.sample_every]-th call. *)
let sample_activation ~act_name ~is_tanh v l cols =
  let sat = ref 0 and dead = ref 0 in
  for j = 0 to cols - 1 do
    let mag = ref 0.0 in
    for i = 0 to l - 1 do
      let y = BA.unsafe_get v ((i * cols) + j) in
      if is_tanh then begin
        let a = Float.abs y in
        if a > 0.99 then incr sat;
        if a > !mag then mag := a
      end
      else begin
        (* sigmoid saturates at either rail; "dead" means pinned at 0 *)
        if y > 0.99 || y < 0.01 then incr sat;
        if y > !mag then mag := y
      end
    done;
    if !mag < (if is_tanh then 1e-3 else 0.01) then incr dead
  done;
  D.record_saturation ~act:act_name ~saturated:!sat ~total:(l * cols) ~dead:!dead
    ~units:cols

type affine_act = A_id | A_tanh | A_sigmoid

(* Fused [act(X·W^T + 1·b^T)] in a single node: the output rows start as
   the bias, the GEMM accumulates on top ([beta = 1]), and the activation
   rewrites the buffer in place.  Backward first folds the activation
   derivative into this node's own gradient buffer in place — safe because
   backward runs newest-first, so every consumer has already accumulated
   into it and nothing reads it after this closure — then runs the usual
   dX/dW sibling GEMMs and the bias column-sum off the folded gradient.
   Versus the unfused matmul_nt + add_bias + tanh_ chain this saves two
   value/grad buffer pairs and their memory round-trips per call. *)
let affine_act tape ~w ~b x act =
  let l = lanes x and k = dim x in
  let out = Param.rows w in
  if Param.cols w <> k then
    invalid_arg
      (Printf.sprintf "Batched.affine(%s): expected dim %d, got %d" w.Param.name
         (Param.cols w) k);
  if b.Param.value.Tensor.rows <> 1 || Param.cols b <> out then
    invalid_arg "Batched.affine: bias shape mismatch";
  let n_elts = l * out in
  if P.on () then begin
    P.op op_gemm ~flops:(fi (2 * l * out * k)) ~bytes:(fbytes n_elts);
    P.op op_bias ~flops:(fi n_elts) ~bytes:0.0;
    if act <> A_id then P.op op_unary ~flops:(fi n_elts) ~bytes:0.0
  end;
  let rec n =
    lazy
      (push tape l out (fun () ->
           if P.on () then begin
             P.op op_gemm_b ~flops:(fi (4 * l * out * k)) ~bytes:0.0;
             P.op op_bias_b ~flops:(fi n_elts) ~bytes:0.0;
             if act <> A_id then P.op op_unary_b ~flops:(fi (3 * n_elts)) ~bytes:0.0
           end;
           let node = Lazy.force n in
           let g = node.grad in
           let gd = g.Tensor.data and v = node.value.Tensor.data in
           (match act with
           | A_id -> ()
           | A_tanh ->
               for i = 0 to n_elts - 1 do
                 let y = BA.unsafe_get v i in
                 BA.unsafe_set gd i (BA.unsafe_get gd i *. (1.0 -. (y *. y)))
               done
           | A_sigmoid ->
               for i = 0 to n_elts - 1 do
                 let y = BA.unsafe_get v i in
                 BA.unsafe_set gd i (BA.unsafe_get gd i *. (y *. (1.0 -. y)))
               done);
           Tensor.gemm_nn ~beta:1.0 g w.Param.value x.grad;
           Tensor.gemm_tn ~beta:1.0 g x.value w.Param.grad;
           let pg = b.Param.grad.Tensor.data in
           for i = 0 to l - 1 do
             let base = i * out in
             for j = 0 to out - 1 do
               BA.unsafe_set pg j (BA.unsafe_get pg j +. BA.unsafe_get gd (base + j))
             done
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data and bv = b.Param.value.Tensor.data in
  for i = 0 to l - 1 do
    let base = i * out in
    for j = 0 to out - 1 do
      BA.unsafe_set v (base + j) (BA.unsafe_get bv j)
    done
  done;
  Tensor.gemm_nt ~beta:1.0 x.value w.Param.value n.value;
  (match act with
  | A_id -> ()
  | A_tanh ->
      for i = 0 to n_elts - 1 do
        BA.unsafe_set v i (Stdlib.tanh (BA.unsafe_get v i))
      done
  | A_sigmoid ->
      for i = 0 to n_elts - 1 do
        BA.unsafe_set v i (1.0 /. (1.0 +. exp (-.BA.unsafe_get v i)))
      done);
  (match act with
  | A_id -> ()
  | A_tanh ->
      if D.on () && D.should_sample () then
        sample_activation ~act_name:"tanh" ~is_tanh:true v l out
  | A_sigmoid ->
      if D.on () && D.should_sample () then
        sample_activation ~act_name:"sigmoid" ~is_tanh:false v l out);
  n

(** [affine tape ~w ~b x] is [X·W^T + 1·b^T] (one fused node). *)
let affine tape ~w ~b x = affine_act tape ~w ~b x A_id

(** Fused [tanh(X·W^T + 1·b^T)]. *)
let affine_tanh tape ~w ~b x = affine_act tape ~w ~b x A_tanh

(** Fused [sigmoid(X·W^T + 1·b^T)]. *)
let affine_sigmoid tape ~w ~b x = affine_act tape ~w ~b x A_sigmoid

(** [matmul_nt_slice tape x p ~off] is [X · W[:, off..off+k)^T] for
    [X : lanes×k] against a column window of the wider parameter
    [W : out×K].  Lets a layer whose weight concatenates two input blocks
    ([W·(h ++ q) = W_h·h + W_q·q]) run each block separately — attention
    uses it to project memory once and queries per step.  Backward mirrors
    {!matmul_nt} with the sliced kernels, touching only the window of
    [W]'s gradient. *)
let matmul_nt_slice tape x (p : Param.t) ~off =
  let l = lanes x and k = dim x in
  let out = Param.rows p and ld = Param.cols p in
  if off < 0 || off + k > ld then
    invalid_arg
      (Printf.sprintf "Batched.matmul_nt_slice(%s): window [%d, %d) exceeds %d cols"
         p.Param.name off (off + k) ld);
  if P.on () then P.op op_gemm ~flops:(fi (2 * l * out * k)) ~bytes:(fbytes (l * out));
  let rec n =
    lazy
      (push tape l out (fun () ->
           if P.on () then P.op op_gemm_b ~flops:(fi (4 * l * out * k)) ~bytes:0.0;
           let g = (Lazy.force n).grad in
           Tensor.gemm_nn_slice ~beta:1.0 ~ld ~boff:off g p.Param.value x.grad;
           Tensor.gemm_tn_slice ~beta:1.0 ~ld ~coff:off g x.value p.Param.grad))
  in
  let n = Lazy.force n in
  Tensor.gemm_nt_slice ~beta:0.0 ~ld ~boff:off x.value p.Param.value n.value;
  n

(** [add_rows_cycle tape a b]: for [a : (S·l)×d] (slot-major stack of [S]
    blocks) and [b : l×d], adds [b]'s lane rows to every block —
    [out[s·l+i, :] = a[s·l+i, :] + b[i, :]].  Backward passes gradients
    through to [a] and block-sums them into [b]. *)
let add_rows_cycle tape a b =
  let rows_a = lanes a and l = lanes b and d = dim a in
  if dim b <> d || l = 0 || rows_a mod l <> 0 then
    invalid_arg "Batched.add_rows_cycle: shape mismatch";
  if P.on () then P.op op_ew ~flops:(fi (rows_a * d)) ~bytes:(fbytes (rows_a * d));
  let rec n =
    lazy
      (push tape rows_a d (fun () ->
           if P.on () then P.op op_ew_b ~flops:(fi (2 * rows_a * d)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let ag = a.grad.Tensor.data and bg = b.grad.Tensor.data in
           for i = 0 to (rows_a * d) - 1 do
             BA.unsafe_set ag i (BA.unsafe_get ag i +. BA.unsafe_get g i)
           done;
           for r = 0 to rows_a - 1 do
             let src = r * d and dst = r mod l * d in
             for j = 0 to d - 1 do
               BA.unsafe_set bg (dst + j)
                 (BA.unsafe_get bg (dst + j) +. BA.unsafe_get g (src + j))
             done
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data and av = a.value.Tensor.data in
  let bv = b.value.Tensor.data in
  for r = 0 to rows_a - 1 do
    let dst = r * d and src = r mod l * d in
    for j = 0 to d - 1 do
      BA.unsafe_set v (dst + j) (BA.unsafe_get av (dst + j) +. BA.unsafe_get bv (src + j))
    done
  done;
  n

(** Fused [tanh(a[r] + b[r mod l] + bias)] — the attention scorer's
    pre-activation ({!add_rows_cycle} + bias broadcast + tanh) in one node.
    Backward folds the tanh derivative into this node's own gradient in
    place (safe: backward runs newest-first, so every consumer has already
    accumulated into it) before routing it to [a], the block-sum into [b]
    and the column-sum into the bias. *)
let add_rows_cycle_bias_tanh tape a b (bias : Param.t) =
  let rows_a = lanes a and l = lanes b and d = dim a in
  if dim b <> d || l = 0 || rows_a mod l <> 0 then
    invalid_arg "Batched.add_rows_cycle_bias_tanh: shape mismatch";
  if bias.Param.value.Tensor.rows <> 1 || Param.cols bias <> d then
    invalid_arg "Batched.add_rows_cycle_bias_tanh: bias shape mismatch";
  let n_elts = rows_a * d in
  if P.on () then begin
    P.op op_ew ~flops:(fi (2 * n_elts)) ~bytes:(fbytes n_elts);
    P.op op_unary ~flops:(fi n_elts) ~bytes:0.0
  end;
  let rec n =
    lazy
      (push tape rows_a d (fun () ->
           if P.on () then begin
             P.op op_ew_b ~flops:(fi (3 * n_elts)) ~bytes:0.0;
             P.op op_unary_b ~flops:(fi (3 * n_elts)) ~bytes:0.0
           end;
           let node = Lazy.force n in
           let g = node.grad.Tensor.data and y = node.value.Tensor.data in
           for i = 0 to n_elts - 1 do
             let yi = BA.unsafe_get y i in
             BA.unsafe_set g i (BA.unsafe_get g i *. (1.0 -. (yi *. yi)))
           done;
           let ag = a.grad.Tensor.data
           and bg = b.grad.Tensor.data
           and pg = bias.Param.grad.Tensor.data in
           for i = 0 to n_elts - 1 do
             BA.unsafe_set ag i (BA.unsafe_get ag i +. BA.unsafe_get g i)
           done;
           for r = 0 to rows_a - 1 do
             let src = r * d and dst = r mod l * d in
             for j = 0 to d - 1 do
               let gi = BA.unsafe_get g (src + j) in
               BA.unsafe_set bg (dst + j) (BA.unsafe_get bg (dst + j) +. gi);
               BA.unsafe_set pg j (BA.unsafe_get pg j +. gi)
             done
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data
  and av = a.value.Tensor.data
  and bv = b.value.Tensor.data
  and pv = bias.Param.value.Tensor.data in
  for r = 0 to rows_a - 1 do
    let dst = r * d and src = r mod l * d in
    for j = 0 to d - 1 do
      BA.unsafe_set v (dst + j)
        (Stdlib.tanh
           (BA.unsafe_get av (dst + j) +. BA.unsafe_get bv (src + j)
          +. BA.unsafe_get pv j))
    done
  done;
  if D.on () && D.should_sample () then
    sample_activation ~act_name:"tanh" ~is_tanh:true v rows_a d;
  n

(** Fused [a · v^T] + slot-major reshape: for [a : (K·l)×d] and a vector
    parameter [v : 1×d], computes the [l×K] score matrix
    [out[i, kk] = a[kk·l+i, :] · v] directly — the attention scorer's
    final projection without materialising the [(K·l)×1] column node
    ({!stack_to_cols} is the standalone reshape). *)
let matvec_stack_cols tape a (p : Param.t) ~lanes:l =
  let rows = lanes a and d = dim a in
  if p.Param.value.Tensor.rows <> 1 || Param.cols p <> d then
    invalid_arg "Batched.matvec_stack_cols: vector shape mismatch";
  if l <= 0 || rows mod l <> 0 then invalid_arg "Batched.matvec_stack_cols: lanes mismatch";
  let k = rows / l in
  if P.on () then P.op op_gemm ~flops:(fi (2 * rows * d)) ~bytes:(fbytes (l * k));
  let rec n =
    lazy
      (push tape l k (fun () ->
           if P.on () then P.op op_gemm_b ~flops:(fi (4 * rows * d)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let ag = a.grad.Tensor.data
           and pg = p.Param.grad.Tensor.data
           and av = a.value.Tensor.data
           and pv = p.Param.value.Tensor.data in
           for kk = 0 to k - 1 do
             for i = 0 to l - 1 do
               let gi = BA.unsafe_get g ((i * k) + kk) in
               if gi <> 0.0 then begin
                 let base = ((kk * l) + i) * d in
                 for j = 0 to d - 1 do
                   BA.unsafe_set ag (base + j)
                     (BA.unsafe_get ag (base + j) +. (gi *. BA.unsafe_get pv j));
                   BA.unsafe_set pg j
                     (BA.unsafe_get pg j +. (gi *. BA.unsafe_get av (base + j)))
                 done
               end
             done
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data
  and av = a.value.Tensor.data
  and pv = p.Param.value.Tensor.data in
  for kk = 0 to k - 1 do
    for i = 0 to l - 1 do
      let base = ((kk * l) + i) * d in
      let acc = ref 0.0 in
      for j = 0 to d - 1 do
        acc := !acc +. (BA.unsafe_get av (base + j) *. BA.unsafe_get pv j)
      done;
      BA.unsafe_set v ((i * k) + kk) !acc
    done
  done;
  n

(* ------------------------------------------------------------------ *)
(* Elementwise                                                         *)
(* ------------------------------------------------------------------ *)

let check_same name a b =
  if lanes a <> lanes b || dim a <> dim b then
    invalid_arg
      (Printf.sprintf "Batched.%s: shape mismatch (%dx%d vs %dx%d)" name (lanes a)
         (dim a) (lanes b) (dim b))

let add tape a b =
  check_same "add" a b;
  let l = lanes a and d = dim a in
  let n_elts = l * d in
  if P.on () then P.op op_ew ~flops:(fi n_elts) ~bytes:(fbytes n_elts);
  let rec n =
    lazy
      (push tape l d (fun () ->
           if P.on () then P.op op_ew_b ~flops:(fi (4 * n_elts)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let ag = a.grad.Tensor.data and bg = b.grad.Tensor.data in
           for i = 0 to n_elts - 1 do
             let gi = BA.unsafe_get g i in
             BA.unsafe_set ag i (BA.unsafe_get ag i +. gi);
             BA.unsafe_set bg i (BA.unsafe_get bg i +. gi)
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data in
  let av = a.value.Tensor.data and bv = b.value.Tensor.data in
  for i = 0 to n_elts - 1 do
    BA.unsafe_set v i (BA.unsafe_get av i +. BA.unsafe_get bv i)
  done;
  n

let sub tape a b =
  check_same "sub" a b;
  let l = lanes a and d = dim a in
  let n_elts = l * d in
  if P.on () then P.op op_ew ~flops:(fi n_elts) ~bytes:(fbytes n_elts);
  let rec n =
    lazy
      (push tape l d (fun () ->
           if P.on () then P.op op_ew_b ~flops:(fi (4 * n_elts)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let ag = a.grad.Tensor.data and bg = b.grad.Tensor.data in
           for i = 0 to n_elts - 1 do
             let gi = BA.unsafe_get g i in
             BA.unsafe_set ag i (BA.unsafe_get ag i +. gi);
             BA.unsafe_set bg i (BA.unsafe_get bg i -. gi)
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data in
  let av = a.value.Tensor.data and bv = b.value.Tensor.data in
  for i = 0 to n_elts - 1 do
    BA.unsafe_set v i (BA.unsafe_get av i -. BA.unsafe_get bv i)
  done;
  n

(** Elementwise (Hadamard) product. *)
let mul tape a b =
  check_same "mul" a b;
  let l = lanes a and d = dim a in
  let n_elts = l * d in
  if P.on () then P.op op_ew ~flops:(fi n_elts) ~bytes:(fbytes n_elts);
  let rec n =
    lazy
      (push tape l d (fun () ->
           if P.on () then P.op op_ew_b ~flops:(fi (4 * n_elts)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let ag = a.grad.Tensor.data and bg = b.grad.Tensor.data in
           let av = a.value.Tensor.data and bv = b.value.Tensor.data in
           for i = 0 to n_elts - 1 do
             let gi = BA.unsafe_get g i in
             BA.unsafe_set ag i (BA.unsafe_get ag i +. (gi *. BA.unsafe_get bv i));
             BA.unsafe_set bg i (BA.unsafe_get bg i +. (gi *. BA.unsafe_get av i))
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data in
  let av = a.value.Tensor.data and bv = b.value.Tensor.data in
  for i = 0 to n_elts - 1 do
    BA.unsafe_set v i (BA.unsafe_get av i *. BA.unsafe_get bv i)
  done;
  n

(** Fused gated blend [z ⊙ a + (1 - z) ⊙ b] — the GRU update and every
    mask-style interpolation in one node instead of four
    (one_minus/mul/mul/add), saving three value/grad buffer round-trips
    per recurrence step. *)
let lerp tape z a b =
  check_same "lerp" z a;
  check_same "lerp" a b;
  let l = lanes a and d = dim a in
  let n_elts = l * d in
  if P.on () then P.op op_ew ~flops:(fi (3 * n_elts)) ~bytes:(fbytes n_elts);
  let rec n =
    lazy
      (push tape l d (fun () ->
           if P.on () then P.op op_ew_b ~flops:(fi (7 * n_elts)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let zg = z.grad.Tensor.data
           and ag = a.grad.Tensor.data
           and bg = b.grad.Tensor.data in
           let zv = z.value.Tensor.data
           and av = a.value.Tensor.data
           and bv = b.value.Tensor.data in
           for i = 0 to n_elts - 1 do
             let gi = BA.unsafe_get g i in
             let zi = BA.unsafe_get zv i in
             BA.unsafe_set zg i
               (BA.unsafe_get zg i +. (gi *. (BA.unsafe_get av i -. BA.unsafe_get bv i)));
             BA.unsafe_set ag i (BA.unsafe_get ag i +. (gi *. zi));
             BA.unsafe_set bg i (BA.unsafe_get bg i +. (gi *. (1.0 -. zi)))
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data in
  let zv = z.value.Tensor.data
  and av = a.value.Tensor.data
  and bv = b.value.Tensor.data in
  for i = 0 to n_elts - 1 do
    let zi = BA.unsafe_get zv i in
    BA.unsafe_set v i
      ((zi *. BA.unsafe_get av i) +. ((1.0 -. zi) *. BA.unsafe_get bv i))
  done;
  n

(** Fused [a ⊙ b + p ⊙ q] — the LSTM/TreeLSTM cell update
    [f ⊙ c + i ⊙ u] in one node instead of three (mul/mul/add). *)
let muladd2 tape a b p q =
  check_same "muladd2" a b;
  check_same "muladd2" b p;
  check_same "muladd2" p q;
  let l = lanes a and d = dim a in
  let n_elts = l * d in
  if P.on () then P.op op_ew ~flops:(fi (3 * n_elts)) ~bytes:(fbytes n_elts);
  let rec n =
    lazy
      (push tape l d (fun () ->
           if P.on () then P.op op_ew_b ~flops:(fi (8 * n_elts)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let ag = a.grad.Tensor.data
           and bg = b.grad.Tensor.data
           and pg = p.grad.Tensor.data
           and qg = q.grad.Tensor.data in
           let av = a.value.Tensor.data
           and bv = b.value.Tensor.data
           and pv = p.value.Tensor.data
           and qv = q.value.Tensor.data in
           for i = 0 to n_elts - 1 do
             let gi = BA.unsafe_get g i in
             BA.unsafe_set ag i (BA.unsafe_get ag i +. (gi *. BA.unsafe_get bv i));
             BA.unsafe_set bg i (BA.unsafe_get bg i +. (gi *. BA.unsafe_get av i));
             BA.unsafe_set pg i (BA.unsafe_get pg i +. (gi *. BA.unsafe_get qv i));
             BA.unsafe_set qg i (BA.unsafe_get qg i +. (gi *. BA.unsafe_get pv i))
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data in
  let av = a.value.Tensor.data
  and bv = b.value.Tensor.data
  and pv = p.value.Tensor.data
  and qv = q.value.Tensor.data in
  for i = 0 to n_elts - 1 do
    BA.unsafe_set v i
      ((BA.unsafe_get av i *. BA.unsafe_get bv i)
      +. (BA.unsafe_get pv i *. BA.unsafe_get qv i))
  done;
  n

let scale tape c a =
  let l = lanes a and d = dim a in
  let n_elts = l * d in
  if P.on () then P.op op_ew ~flops:(fi n_elts) ~bytes:(fbytes n_elts);
  let rec n =
    lazy
      (push tape l d (fun () ->
           if P.on () then P.op op_ew_b ~flops:(fi (2 * n_elts)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let ag = a.grad.Tensor.data in
           for i = 0 to n_elts - 1 do
             BA.unsafe_set ag i (BA.unsafe_get ag i +. (c *. BA.unsafe_get g i))
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data and av = a.value.Tensor.data in
  for i = 0 to n_elts - 1 do
    BA.unsafe_set v i (c *. BA.unsafe_get av i)
  done;
  n

(** [one_minus tape a] is [1 - a] elementwise (GRU update gates). *)
let one_minus tape a =
  let l = lanes a and d = dim a in
  let n_elts = l * d in
  if P.on () then P.op op_ew ~flops:(fi n_elts) ~bytes:(fbytes n_elts);
  let rec n =
    lazy
      (push tape l d (fun () ->
           if P.on () then P.op op_ew_b ~flops:(fi (2 * n_elts)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let ag = a.grad.Tensor.data in
           for i = 0 to n_elts - 1 do
             BA.unsafe_set ag i (BA.unsafe_get ag i -. BA.unsafe_get g i)
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data and av = a.value.Tensor.data in
  for i = 0 to n_elts - 1 do
    BA.unsafe_set v i (1.0 -. BA.unsafe_get av i)
  done;
  n

let unary_from_out tape f df_out a =
  let l = lanes a and d = dim a in
  let n_elts = l * d in
  if P.on () then P.op op_unary ~flops:(fi n_elts) ~bytes:(fbytes n_elts);
  let rec n =
    lazy
      (push tape l d (fun () ->
           if P.on () then P.op op_unary_b ~flops:(fi (3 * n_elts)) ~bytes:0.0;
           let out = Lazy.force n in
           let g = out.grad.Tensor.data and y = out.value.Tensor.data in
           let ag = a.grad.Tensor.data in
           for i = 0 to n_elts - 1 do
             BA.unsafe_set ag i
               (BA.unsafe_get ag i +. (BA.unsafe_get g i *. df_out (BA.unsafe_get y i)))
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data and av = a.value.Tensor.data in
  for i = 0 to n_elts - 1 do
    BA.unsafe_set v i (f (BA.unsafe_get av i))
  done;
  n

let tanh_ tape a =
  let n = unary_from_out tape Stdlib.tanh (fun y -> 1.0 -. (y *. y)) a in
  if D.on () && D.should_sample () then
    sample_activation ~act_name:"tanh" ~is_tanh:true n.value.Tensor.data (lanes n) (dim n);
  n

let sigmoid tape a =
  let n =
    unary_from_out tape (fun x -> 1.0 /. (1.0 +. exp (-.x))) (fun y -> y *. (1.0 -. y)) a
  in
  if D.on () && D.should_sample () then
    sample_activation ~act_name:"sigmoid" ~is_tanh:false n.value.Tensor.data (lanes n)
      (dim n);
  n

let relu tape a =
  unary_from_out tape
    (fun x -> if x > 0.0 then x else 0.0)
    (fun y -> if y > 0.0 then 1.0 else 0.0)
    a

(* ------------------------------------------------------------------ *)
(* Reshaping: columns, rows, packing                                   *)
(* ------------------------------------------------------------------ *)

let concat_cols tape xs =
  (match xs with [] -> invalid_arg "Batched.concat_cols: empty" | _ -> ());
  let l = lanes (List.hd xs) in
  List.iter
    (fun x -> if lanes x <> l then invalid_arg "Batched.concat_cols: lane mismatch")
    xs;
  let total = List.fold_left (fun acc x -> acc + dim x) 0 xs in
  if P.on () then P.op op_concat ~flops:0.0 ~bytes:(fbytes (l * total));
  let rec n =
    lazy
      (push tape l total (fun () ->
           if P.on () then P.op op_concat_b ~flops:(fi (l * total)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let off = ref 0 in
           List.iter
             (fun x ->
               let d = dim x in
               let xg = x.grad.Tensor.data in
               for i = 0 to l - 1 do
                 let src = (i * total) + !off and dst = i * d in
                 for j = 0 to d - 1 do
                   BA.unsafe_set xg (dst + j)
                     (BA.unsafe_get xg (dst + j) +. BA.unsafe_get g (src + j))
                 done
               done;
               off := !off + d)
             xs))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data in
  let off = ref 0 in
  List.iter
    (fun x ->
      let d = dim x in
      let xv = x.value.Tensor.data in
      for i = 0 to l - 1 do
        let dst = (i * total) + !off and src = i * d in
        for j = 0 to d - 1 do
          BA.unsafe_set v (dst + j) (BA.unsafe_get xv (src + j))
        done
      done;
      off := !off + d)
    xs;
  n

let slice_cols tape a off len =
  let l = lanes a and d = dim a in
  if off < 0 || len <= 0 || off + len > d then
    invalid_arg "Batched.slice_cols: window out of range";
  if P.on () then P.op op_slice ~flops:0.0 ~bytes:(fbytes (l * len));
  let rec n =
    lazy
      (push tape l len (fun () ->
           if P.on () then P.op op_slice_b ~flops:(fi (l * len)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let ag = a.grad.Tensor.data in
           for i = 0 to l - 1 do
             let src = i * len and dst = (i * d) + off in
             for j = 0 to len - 1 do
               BA.unsafe_set ag (dst + j)
                 (BA.unsafe_get ag (dst + j) +. BA.unsafe_get g (src + j))
             done
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data and av = a.value.Tensor.data in
  for i = 0 to l - 1 do
    let dst = i * len and src = (i * d) + off in
    for j = 0 to len - 1 do
      BA.unsafe_set v (dst + j) (BA.unsafe_get av (src + j))
    done
  done;
  n

(** Stack nodes vertically (same [dim], lanes concatenated in list order);
    the packing step that lets one gather address rows of several sources. *)
let vstack tape xs =
  (match xs with [] -> invalid_arg "Batched.vstack: empty" | _ -> ());
  let d = dim (List.hd xs) in
  List.iter (fun x -> if dim x <> d then invalid_arg "Batched.vstack: dim mismatch") xs;
  let total = List.fold_left (fun acc x -> acc + lanes x) 0 xs in
  if P.on () then P.op op_vstack ~flops:0.0 ~bytes:(fbytes (total * d));
  let rec n =
    lazy
      (push tape total d (fun () ->
           if P.on () then P.op op_vstack_b ~flops:(fi (total * d)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let row = ref 0 in
           List.iter
             (fun x ->
               let nl = lanes x in
               let xg = x.grad.Tensor.data in
               let base = !row * d in
               for i = 0 to (nl * d) - 1 do
                 BA.unsafe_set xg i (BA.unsafe_get xg i +. BA.unsafe_get g (base + i))
               done;
               row := !row + nl)
             xs))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data in
  let row = ref 0 in
  List.iter
    (fun x ->
      let nl = lanes x in
      let xv = x.value.Tensor.data in
      let base = !row * d in
      for i = 0 to (nl * d) - 1 do
        BA.unsafe_set v (base + i) (BA.unsafe_get xv i)
      done;
      row := !row + nl)
    xs;
  n

(** [gather_rows tape a idx] selects rows of [a] (with repetition allowed);
    backward scatter-adds, duplicates accumulating in output-lane order. *)
let gather_rows tape a (idx : int array) =
  let l = Array.length idx in
  if l = 0 then invalid_arg "Batched.gather_rows: empty";
  let src_l = lanes a and d = dim a in
  Array.iter
    (fun i -> if i < 0 || i >= src_l then invalid_arg "Batched.gather_rows: index out of range")
    idx;
  if P.on () then P.op op_gather ~flops:0.0 ~bytes:(fbytes (l * d));
  let rec n =
    lazy
      (push tape l d (fun () ->
           if P.on () then P.op op_gather_b ~flops:(fi (l * d)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let ag = a.grad.Tensor.data in
           for i = 0 to l - 1 do
             let src = i * d and dst = idx.(i) * d in
             for j = 0 to d - 1 do
               BA.unsafe_set ag (dst + j)
                 (BA.unsafe_get ag (dst + j) +. BA.unsafe_get g (src + j))
             done
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data and av = a.value.Tensor.data in
  for i = 0 to l - 1 do
    let dst = i * d and src = idx.(i) * d in
    for j = 0 to d - 1 do
      BA.unsafe_set v (dst + j) (BA.unsafe_get av (src + j))
    done
  done;
  n

(** [stack_to_cols tape a ~lanes]: reinterpret a slot-major stacked column
    [a : (K·lanes)×1] (slot [k]'s lanes at rows [k·lanes .. k·lanes+lanes-1])
    as a [lanes×K] matrix: [out[l,k] = a[k·lanes + l]].  Pure data movement;
    the gradient scatters back the same way.  Lets K per-slot score columns
    computed in one vstacked GEMM feed a row softmax. *)
let stack_to_cols tape a ~lanes:l =
  let rows = lanes a in
  if dim a <> 1 then invalid_arg "Batched.stack_to_cols: input must be a column";
  if l <= 0 || rows mod l <> 0 then invalid_arg "Batched.stack_to_cols: lanes mismatch";
  let k = rows / l in
  if P.on () then P.op op_gather ~flops:0.0 ~bytes:(fbytes rows);
  let rec n =
    lazy
      (push tape l k (fun () ->
           if P.on () then P.op op_gather_b ~flops:(fi rows) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let ag = a.grad.Tensor.data in
           for kk = 0 to k - 1 do
             for i = 0 to l - 1 do
               let src = (i * k) + kk and dst = (kk * l) + i in
               BA.unsafe_set ag dst (BA.unsafe_get ag dst +. BA.unsafe_get g src)
             done
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data and av = a.value.Tensor.data in
  for kk = 0 to k - 1 do
    for i = 0 to l - 1 do
      BA.unsafe_set v ((i * k) + kk) (BA.unsafe_get av ((kk * l) + i))
    done
  done;
  n

(** Per-lane blend [m⊙a + (1-m)⊙b] with a constant 0/1 mask — the masked
    recurrence update.  Gradient into [a] is exactly zero where [mask] is 0
    (and vice versa), which is what keeps padded lanes gradient-silent. *)
let select_rows tape ~(mask : float array) a b =
  check_same "select_rows" a b;
  let l = lanes a and d = dim a in
  if Array.length mask <> l then invalid_arg "Batched.select_rows: mask length mismatch";
  if P.on () then P.op op_select ~flops:(fi (3 * l * d)) ~bytes:(fbytes (l * d));
  let rec n =
    lazy
      (push tape l d (fun () ->
           if P.on () then P.op op_select_b ~flops:(fi (4 * l * d)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let ag = a.grad.Tensor.data and bg = b.grad.Tensor.data in
           for i = 0 to l - 1 do
             let m = Array.unsafe_get mask i in
             let base = i * d in
             for j = 0 to d - 1 do
               let gi = BA.unsafe_get g (base + j) in
               BA.unsafe_set ag (base + j) (BA.unsafe_get ag (base + j) +. (m *. gi));
               BA.unsafe_set bg (base + j)
                 (BA.unsafe_get bg (base + j) +. ((1.0 -. m) *. gi))
             done
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data in
  let av = a.value.Tensor.data and bv = b.value.Tensor.data in
  for i = 0 to l - 1 do
    let m = Array.unsafe_get mask i in
    let base = i * d in
    for j = 0 to d - 1 do
      BA.unsafe_set v (base + j)
        ((m *. BA.unsafe_get av (base + j)) +. ((1.0 -. m) *. BA.unsafe_get bv (base + j)))
    done
  done;
  n

(* ------------------------------------------------------------------ *)
(* Group (segment) reductions                                          *)
(* ------------------------------------------------------------------ *)

(** [group_sum tape a ~groups ~n_groups]: output row [r] is the sum of input
    rows [i] with [groups.(i) = r] (in lane order); [groups.(i) = -1] drops
    a row.  Empty groups are zero rows.  Child-sum aggregation for packed
    trees. *)
let group_sum tape a ~(groups : int array) ~n_groups =
  let l = lanes a and d = dim a in
  if Array.length groups <> l then invalid_arg "Batched.group_sum: groups length mismatch";
  Array.iter
    (fun g -> if g < -1 || g >= n_groups then invalid_arg "Batched.group_sum: bad group id")
    groups;
  if P.on () then P.op op_group_sum ~flops:(fi (l * d)) ~bytes:(fbytes (n_groups * d));
  let rec n =
    lazy
      (push tape n_groups d (fun () ->
           if P.on () then P.op op_group_sum_b ~flops:(fi (l * d)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let ag = a.grad.Tensor.data in
           for i = 0 to l - 1 do
             let r = groups.(i) in
             if r >= 0 then begin
               let src = r * d and dst = i * d in
               for j = 0 to d - 1 do
                 BA.unsafe_set ag (dst + j)
                   (BA.unsafe_get ag (dst + j) +. BA.unsafe_get g (src + j))
               done
             end
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data and av = a.value.Tensor.data in
  BA.fill v 0.0;
  for i = 0 to l - 1 do
    let r = groups.(i) in
    if r >= 0 then begin
      let dst = r * d and src = i * d in
      for j = 0 to d - 1 do
        BA.unsafe_set v (dst + j) (BA.unsafe_get v (dst + j) +. BA.unsafe_get av (src + j))
      done
    end
  done;
  n

(** [group_max tape a ~groups ~n_groups]: per-group, per-column elementwise
    max, gradients routed to the winning row (ties to the earliest lane, as
    in {!Autodiff.max_pool}).  Empty groups produce zero rows with no
    gradient — matching the unbatched "no traces → zero embedding" case. *)
let group_max tape a ~(groups : int array) ~n_groups =
  let l = lanes a and d = dim a in
  if Array.length groups <> l then invalid_arg "Batched.group_max: groups length mismatch";
  Array.iter
    (fun g -> if g < -1 || g >= n_groups then invalid_arg "Batched.group_max: bad group id")
    groups;
  let who = Array.make (n_groups * d) (-1) in
  if P.on () then P.op op_group_max ~flops:(fi (l * d)) ~bytes:(fbytes (n_groups * d));
  let rec n =
    lazy
      (push tape n_groups d (fun () ->
           if P.on () then P.op op_group_max_b ~flops:(fi (n_groups * d)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let ag = a.grad.Tensor.data in
           for i = 0 to (n_groups * d) - 1 do
             let w = who.(i) in
             if w >= 0 then BA.unsafe_set ag w (BA.unsafe_get ag w +. BA.unsafe_get g i)
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data and av = a.value.Tensor.data in
  BA.fill v 0.0;
  (* two passes: mark winners against -inf, then zero out empty groups *)
  let best = Array.make (n_groups * d) neg_infinity in
  for i = 0 to l - 1 do
    let r = groups.(i) in
    if r >= 0 then begin
      let dst = r * d and src = i * d in
      for j = 0 to d - 1 do
        let x = BA.unsafe_get av (src + j) in
        if x > best.(dst + j) then begin
          best.(dst + j) <- x;
          who.(dst + j) <- src + j
        end
      done
    end
  done;
  for i = 0 to (n_groups * d) - 1 do
    if who.(i) >= 0 then BA.unsafe_set v i best.(i)
  done;
  n

(* ------------------------------------------------------------------ *)
(* Softmax-family row ops                                              *)
(* ------------------------------------------------------------------ *)

(* Shared forward/backward for (optionally masked) per-row softmax.  A row
   whose mask is all zero yields all-zero weights and propagates nothing. *)
let softmax_rows_impl tape a (mask : Tensor.t option) =
  let l = lanes a and k = dim a in
  (match mask with
  | Some m ->
      if m.Tensor.rows <> l || m.Tensor.cols <> k then
        invalid_arg "Batched.masked_softmax_rows: mask shape mismatch"
  | None -> ());
  if P.on () then P.op op_softmax ~flops:(fi (4 * l * k)) ~bytes:(fbytes (l * k));
  let live i j =
    match mask with
    | None -> true
    | Some m -> Tensor.get_idx m ((i * k) + j) > 0.5
  in
  let rec n =
    lazy
      (push tape l k (fun () ->
           if P.on () then P.op op_softmax_b ~flops:(fi (4 * l * k)) ~bytes:0.0;
           let out = Lazy.force n in
           let g = out.grad.Tensor.data and y = out.value.Tensor.data in
           let ag = a.grad.Tensor.data in
           for i = 0 to l - 1 do
             let base = i * k in
             let s = ref 0.0 in
             for j = 0 to k - 1 do
               s := !s +. (BA.unsafe_get g (base + j) *. BA.unsafe_get y (base + j))
             done;
             for j = 0 to k - 1 do
               let yj = BA.unsafe_get y (base + j) in
               (* masked slots have y = 0, so they add exactly nothing *)
               BA.unsafe_set ag (base + j)
                 (BA.unsafe_get ag (base + j)
                 +. (yj *. (BA.unsafe_get g (base + j) -. !s)))
             done
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data and av = a.value.Tensor.data in
  for i = 0 to l - 1 do
    let base = i * k in
    let m = ref neg_infinity in
    for j = 0 to k - 1 do
      if live i j then m := Stdlib.max !m (BA.unsafe_get av (base + j))
    done;
    if Float.is_finite !m then begin
      let z = ref 0.0 in
      for j = 0 to k - 1 do
        let e = if live i j then exp (BA.unsafe_get av (base + j) -. !m) else 0.0 in
        BA.unsafe_set v (base + j) e;
        z := !z +. e
      done;
      for j = 0 to k - 1 do
        BA.unsafe_set v (base + j) (BA.unsafe_get v (base + j) /. !z)
      done
    end
    else
      for j = 0 to k - 1 do
        BA.unsafe_set v (base + j) 0.0
      done
  done;
  n

(** Per-row softmax over all columns. *)
let softmax_rows tape a = softmax_rows_impl tape a None

(** Per-row softmax restricted to slots where [mask > 0.5]; masked slots get
    exactly zero weight and zero gradient. *)
let masked_softmax_rows tape a ~(mask : Tensor.t) = softmax_rows_impl tape a (Some mask)

(** [weighted_sum tape w vs]: out lane [i] is [sum_k w[i,k] * vs.(k) lane i]
    — batched attention blending ([w : lanes×K], [vs : K] nodes of equal
    shape). *)
let weighted_sum tape w (vs : node array) =
  let k = Array.length vs in
  if k = 0 then invalid_arg "Batched.weighted_sum: empty";
  if dim w <> k then invalid_arg "Batched.weighted_sum: weight dim mismatch";
  let l = lanes w and d = dim vs.(0) in
  Array.iter
    (fun x ->
      if lanes x <> l || dim x <> d then invalid_arg "Batched.weighted_sum: shape mismatch")
    vs;
  if P.on () then P.op op_wsum ~flops:(fi (2 * l * k * d)) ~bytes:(fbytes (l * d));
  let rec n =
    lazy
      (push tape l d (fun () ->
           if P.on () then P.op op_wsum_b ~flops:(fi (4 * l * k * d)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let wg = w.grad.Tensor.data and wv = w.value.Tensor.data in
           for j = 0 to k - 1 do
             let x = vs.(j) in
             let xg = x.grad.Tensor.data and xv = x.value.Tensor.data in
             for i = 0 to l - 1 do
               let base = i * d in
               let wij = BA.unsafe_get wv ((i * k) + j) in
               let acc = ref 0.0 in
               for c = 0 to d - 1 do
                 let gi = BA.unsafe_get g (base + c) in
                 acc := !acc +. (gi *. BA.unsafe_get xv (base + c));
                 BA.unsafe_set xg (base + c) (BA.unsafe_get xg (base + c) +. (wij *. gi))
               done;
               BA.unsafe_set wg ((i * k) + j) (BA.unsafe_get wg ((i * k) + j) +. !acc)
             done
           done))
  in
  let n = Lazy.force n in
  let v = n.value.Tensor.data and wv = w.value.Tensor.data in
  BA.fill v 0.0;
  for j = 0 to k - 1 do
    let xv = vs.(j).value.Tensor.data in
    for i = 0 to l - 1 do
      let base = i * d in
      let wij = BA.unsafe_get wv ((i * k) + j) in
      if wij <> 0.0 then
        for c = 0 to d - 1 do
          BA.unsafe_set v (base + c)
            (BA.unsafe_get v (base + c) +. (wij *. BA.unsafe_get xv (base + c)))
        done
    done
  done;
  n

(** Sum every entry down to a 1×1 scalar (the batch loss reduction). *)
let sum_all tape a =
  let n_elts = lanes a * dim a in
  if P.on () then P.op op_sum ~flops:(fi n_elts) ~bytes:(fbytes 1);
  let rec n =
    lazy
      (push tape 1 1 (fun () ->
           if P.on () then P.op op_sum_b ~flops:(fi n_elts) ~bytes:0.0;
           let g = Tensor.get_idx (Lazy.force n).grad 0 in
           let ag = a.grad.Tensor.data in
           for i = 0 to n_elts - 1 do
             BA.unsafe_set ag i (BA.unsafe_get ag i +. g)
           done))
  in
  let n = Lazy.force n in
  let av = a.value.Tensor.data in
  let acc = ref 0.0 in
  for i = 0 to n_elts - 1 do
    acc := !acc +. BA.unsafe_get av i
  done;
  Tensor.set_idx n.value 0 !acc;
  n

(** [softmax_xent_rows tape logits ~targets ~weights] is the per-lane
    weighted cross-entropy [-w_i * log softmax(logits_i).(targets_i)] as an
    [L×1] node, plus the probability matrix (aux storage, read-only, valid
    until tape release).  Lanes with weight 0 (padding) contribute exactly
    zero loss and zero gradient; their target index is ignored. *)
let softmax_xent_rows tape logits ~(targets : int array) ~(weights : float array) =
  let l = lanes logits and k = dim logits in
  if Array.length targets <> l then invalid_arg "Batched.softmax_xent_rows: targets length";
  if Array.length weights <> l then invalid_arg "Batched.softmax_xent_rows: weights length";
  Array.iteri
    (fun i t ->
      if weights.(i) <> 0.0 && (t < 0 || t >= k) then
        invalid_arg "Batched.softmax_xent_rows: bad target")
    targets;
  let probs_buf = take_aux tape (l * k) in
  let probs = Tensor.of_buf probs_buf l k in
  if P.on () then P.op op_xent ~flops:(fi (4 * l * k)) ~bytes:(fbytes l);
  let rec n =
    lazy
      (push tape l 1 (fun () ->
           if P.on () then P.op op_xent_b ~flops:(fi (3 * l * k)) ~bytes:0.0;
           let g = (Lazy.force n).grad.Tensor.data in
           let lg = logits.grad.Tensor.data and pv = probs.Tensor.data in
           for i = 0 to l - 1 do
             let w = Array.unsafe_get weights i in
             if w <> 0.0 then begin
               let gi = w *. BA.unsafe_get g i in
               let base = i * k in
               let t = targets.(i) in
               for j = 0 to k - 1 do
                 let delta = if j = t then 1.0 else 0.0 in
                 BA.unsafe_set lg (base + j)
                   (BA.unsafe_get lg (base + j)
                   +. (gi *. (BA.unsafe_get pv (base + j) -. delta)))
               done
             end
           done))
  in
  let n = Lazy.force n in
  let lv = logits.value.Tensor.data and pv = probs.Tensor.data in
  for i = 0 to l - 1 do
    let base = i * k in
    let m = ref neg_infinity in
    for j = 0 to k - 1 do
      m := Stdlib.max !m (BA.unsafe_get lv (base + j))
    done;
    let z = ref 0.0 in
    for j = 0 to k - 1 do
      let e = exp (BA.unsafe_get lv (base + j) -. !m) in
      BA.unsafe_set pv (base + j) e;
      z := !z +. e
    done;
    for j = 0 to k - 1 do
      BA.unsafe_set pv (base + j) (BA.unsafe_get pv (base + j) /. !z)
    done;
    let w = weights.(i) in
    Tensor.set_idx n.value i
      (if w = 0.0 then 0.0
       else -.w *. log (Stdlib.max 1e-12 (BA.unsafe_get pv (base + targets.(i)))))
  done;
  (n, probs)

(* ------------------------------------------------------------------ *)
(* Backward / release                                                  *)
(* ------------------------------------------------------------------ *)

let release_tape tape =
  if tape.alloc_bytes > 0 then begin
    P.release tape.alloc_bytes;
    tape.alloc_bytes <- 0
  end;
  List.iter
    (fun n ->
      Bufpool.give n.value.Tensor.data;
      Bufpool.give n.grad.Tensor.data)
    tape.nodes;
  List.iter Bufpool.give tape.aux;
  tape.nodes <- [];
  tape.aux <- [];
  tape.n_ops <- 0

(** Seed the scalar loss gradient and replay the tape in reverse, then
    release every node buffer back to the pool (node values become invalid).
    Backward time is attributed to forward layers exactly as in
    {!Autodiff.backward}. *)
let backward tape loss =
  if lanes loss <> 1 || dim loss <> 1 then
    invalid_arg "Batched.backward: loss must be 1x1";
  Tensor.set_idx loss.grad 0 1.0;
  (if P.on () then begin
     match tape.nodes with
     | [] -> ()
     | first :: _ ->
         let cur = ref first.tag in
         let t0 = ref (P.now ()) in
         List.iter
           (fun n ->
             if n.tag <> !cur then begin
               let t = P.now () in
               P.add_bwd !cur (t -. !t0);
               cur := n.tag;
               t0 := t
             end;
             n.back ())
           tape.nodes;
         P.add_bwd !cur (P.now () -. !t0)
   end
   else List.iter (fun n -> n.back ()) tape.nodes);
  release_tape tape

(** Drop the recorded graph without propagating (inference); node buffers
    return to the pool. *)
let discard tape = release_tape tape
