(** Dense row-major float tensors (rank 1 and 2) and the raw numeric kernels
    the autodiff layers are built on.

    Storage is a flat C-layout [Bigarray] of float64 — off the OCaml heap, so
    big activation/parameter blocks neither move during GC nor contribute to
    minor-heap pressure, and a pooled buffer ({!Bufpool}) can be re-wrapped
    without copying.  Vectors are represented with [rows = 1].  All kernels
    use [unsafe_get]/[unsafe_set] inner loops over monomorphic bigarrays
    (the float64 kind is statically known, so access compiles to unboxed
    loads) because they dominate training time.

    Per-example autodiff node values remain small [float array]s; the raw
    float-array helpers ([axpy], [dot], [softmax], [argmax]) serve those, and
    the matrix kernels mix the two representations (bigarray matrix, float
    array vectors).

    The batched engine ({!Batched}) runs on the {!gemm_nt}/{!gemm_nn}/
    {!gemm_tn} kernels: cache-blocked, 4-way unrolled inner loops, and —
    above {!gemm_par_flops} FLOPs per call — row-partitioned across the
    domain pool.  [lib/tensor] cannot depend on [lib/parallel] (which uses
    {!Rng}), so the pool injects itself through {!set_parallel_runner};
    partitioning is over disjoint output-row blocks with a fixed per-row
    summation order, making parallel results bitwise equal to sequential
    ones (the [jobs=1 ≡ jobs=N] contract holds down to the kernel). *)

module A = Bigarray.Array1

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) A.t

type t = { data : buf; rows : int; cols : int }

let size t = t.rows * t.cols

(* When profiling, tensor storage feeds the live/peak memory gauges: 8 bytes
   per element on allocation, released by a GC finaliser when the tensor
   dies.  Disabled cost: one atomic load per construction. *)
let track t =
  if Liger_obs.Profile.on () then begin
    let b = 8 * size t in
    Liger_obs.Profile.alloc b;
    Gc.finalise (fun (_ : t) -> Liger_obs.Profile.release b) t
  end;
  t

let alloc_buf n : buf = A.create Bigarray.float64 Bigarray.c_layout n

let create rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Tensor.create: non-positive dim";
  let data = alloc_buf (rows * cols) in
  A.fill data 0.0;
  track { data; rows; cols }

let zeros = create

let full rows cols x =
  let t = create rows cols in
  A.fill t.data x;
  t

(** Wrap an existing buffer (e.g. one leased from {!Bufpool}) without
    copying or profiler tracking; the buffer's length must match exactly.
    The caller owns the buffer's lifetime. *)
let of_buf data rows cols =
  if A.dim data <> rows * cols then invalid_arg "Tensor.of_buf: size mismatch";
  { data; rows; cols }

(** Vector (1 x n) from an array; the array is copied. *)
let of_array a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Tensor.of_array: empty";
  let data = alloc_buf n in
  for i = 0 to n - 1 do
    A.unsafe_set data i (Array.unsafe_get a i)
  done;
  track { data; rows = 1; cols = n }

(** Matrix from a row-major nested array. Rows must be nonempty and equal
    length. *)
let of_rows rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then invalid_arg "Tensor.of_rows: empty";
  let cols = Array.length rows_arr.(0) in
  let t = create rows cols in
  Array.iteri
    (fun i r ->
      if Array.length r <> cols then invalid_arg "Tensor.of_rows: ragged";
      let base = i * cols in
      for j = 0 to cols - 1 do
        A.unsafe_set t.data (base + j) (Array.unsafe_get r j)
      done)
    rows_arr;
  t

let copy t =
  let c = create t.rows t.cols in
  A.blit t.data c.data;
  c

let get t i j = A.get t.data ((i * t.cols) + j)
let set t i j x = A.set t.data ((i * t.cols) + j) x

(** Flat element access (row-major). *)
let get_idx t i = A.get t.data i

let set_idx t i x = A.set t.data i x

let fill t x = A.fill t.data x

(** Copy out as a row-major float array. *)
let to_array t =
  let n = size t in
  Array.init n (fun i -> A.unsafe_get t.data i)

(** Overwrite the tensor's contents from a row-major float array of the same
    total size. *)
let blit_from_array a t =
  if Array.length a <> size t then invalid_arg "Tensor.blit_from_array: size mismatch";
  for i = 0 to Array.length a - 1 do
    A.unsafe_set t.data i (Array.unsafe_get a i)
  done

let blit src dst =
  if src.rows <> dst.rows || src.cols <> dst.cols then
    invalid_arg "Tensor.blit: shape mismatch";
  A.blit src.data dst.data

let same_shape a b = a.rows = b.rows && a.cols = b.cols

let check_same_shape name a b =
  if not (same_shape a b) then
    invalid_arg
      (Printf.sprintf "%s: shape mismatch (%dx%d vs %dx%d)" name a.rows a.cols
         b.rows b.cols)

(* ------------------------------------------------------------------ *)
(* In-place kernels on raw float arrays (per-example autodiff nodes).  *)
(* ------------------------------------------------------------------ *)

(** [axpy a x y] computes [y <- a*x + y] elementwise over raw arrays. *)
let axpy a x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Tensor.axpy: length mismatch";
  for i = 0 to n - 1 do
    Array.unsafe_set y i
      ((a *. Array.unsafe_get x i) +. Array.unsafe_get y i)
  done

(** [axpy_buf a x y] computes [y <- a*x + y] from a raw array into a
    bigarray buffer (gradient accumulation into parameter storage). *)
let axpy_buf a (x : float array) (y : buf) =
  let n = Array.length x in
  if A.dim y <> n then invalid_arg "Tensor.axpy_buf: length mismatch";
  for i = 0 to n - 1 do
    A.unsafe_set y i ((a *. Array.unsafe_get x i) +. A.unsafe_get y i)
  done

(** [matvec m x out] computes [out <- m * x] where [x] has length [m.cols]
    and [out] has length [m.rows]. *)
let matvec m x out =
  if Array.length x <> m.cols then invalid_arg "Tensor.matvec: bad x";
  if Array.length out <> m.rows then invalid_arg "Tensor.matvec: bad out";
  let data = m.data and cols = m.cols in
  for i = 0 to m.rows - 1 do
    let base = i * cols in
    let acc = ref 0.0 in
    for j = 0 to cols - 1 do
      acc := !acc +. (A.unsafe_get data (base + j) *. Array.unsafe_get x j)
    done;
    Array.unsafe_set out i !acc
  done

(** [matvec_t_acc m g x_grad] accumulates [x_grad += m^T * g]; the transpose
    product needed to backpropagate through {!matvec}. *)
let matvec_t_acc m g x_grad =
  if Array.length g <> m.rows then invalid_arg "Tensor.matvec_t_acc: bad g";
  if Array.length x_grad <> m.cols then
    invalid_arg "Tensor.matvec_t_acc: bad x_grad";
  let data = m.data and cols = m.cols in
  for i = 0 to m.rows - 1 do
    let gi = Array.unsafe_get g i in
    if gi <> 0.0 then begin
      let base = i * cols in
      for j = 0 to cols - 1 do
        Array.unsafe_set x_grad j
          (Array.unsafe_get x_grad j +. (gi *. A.unsafe_get data (base + j)))
      done
    end
  done

(** [outer_acc g x m_grad] accumulates [m_grad += g x^T]; the weight gradient
    of {!matvec}. *)
let outer_acc g x m_grad =
  let rows = Array.length g and cols = Array.length x in
  if A.dim m_grad.data <> rows * cols then
    invalid_arg "Tensor.outer_acc: bad m_grad";
  let data = m_grad.data in
  for i = 0 to rows - 1 do
    let gi = Array.unsafe_get g i in
    if gi <> 0.0 then begin
      let base = i * cols in
      for j = 0 to cols - 1 do
        A.unsafe_set data (base + j)
          (A.unsafe_get data (base + j) +. (gi *. Array.unsafe_get x j))
      done
    end
  done

let dot x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Tensor.dot: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (Array.unsafe_get x i *. Array.unsafe_get y i)
  done;
  !acc

let map f t =
  let r = create t.rows t.cols in
  for i = 0 to size t - 1 do
    A.unsafe_set r.data i (f (A.unsafe_get t.data i))
  done;
  r

let sum t =
  let acc = ref 0.0 in
  for i = 0 to size t - 1 do
    acc := !acc +. A.unsafe_get t.data i
  done;
  !acc

let l2_norm t =
  let acc = ref 0.0 in
  for i = 0 to size t - 1 do
    let x = A.unsafe_get t.data i in
    acc := !acc +. (x *. x)
  done;
  sqrt !acc

let max_elt t =
  let acc = ref neg_infinity in
  for i = 0 to size t - 1 do
    acc := Stdlib.max !acc (A.unsafe_get t.data i)
  done;
  !acc

let argmax a =
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best

(** Numerically stable softmax of a raw array, returned as a fresh array. *)
let softmax a =
  let m = Array.fold_left Stdlib.max neg_infinity a in
  let e = Array.map (fun x -> exp (x -. m)) a in
  let z = Array.fold_left ( +. ) 0.0 e in
  Array.map (fun x -> x /. z) e

(* ------------------------------------------------------------------ *)
(* GEMM: the batched engine's workhorse.                               *)
(* ------------------------------------------------------------------ *)

(* Domain-parallel dispatch is dependency-injected by [lib/parallel] at its
   module initialisation ([lib/tensor] must not depend on it).  The runner
   executes [f 0 .. f (n-1)], in any schedule, returning once all are done;
   tasks write disjoint output-row blocks, so any schedule produces the same
   bits. *)
let parallel_runner : ((int -> unit) -> int -> unit) option ref = ref None

let set_parallel_runner f = parallel_runner := Some f

(* FLOPs (2mnk) below which a GEMM always runs sequentially: dispatch costs
   tens of microseconds and the models in this repo mostly issue small
   matmuls.  Override with LIGER_GEMM_PAR_FLOPS or [set_gemm_par_flops]. *)
let gemm_par_flops =
  ref
    (match Sys.getenv_opt "LIGER_GEMM_PAR_FLOPS" with
    | None -> 4_000_000
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 0 -> n
        | _ -> invalid_arg ("LIGER_GEMM_PAR_FLOPS must be a non-negative integer, got " ^ s)))

let set_gemm_par_flops n =
  if n < 0 then invalid_arg "Tensor.set_gemm_par_flops: negative";
  gemm_par_flops := n

(* Row-block partitioning: [run_rows m k body] calls [body i0 i1] over a
   partition of [0, m); parallel when the work is big enough and a runner is
   installed.  Blocks are fixed-size, so the partition (and therefore the
   written bytes) is schedule-independent. *)
let run_rows ~m ~flops body =
  match !parallel_runner with
  | Some run when flops >= !gemm_par_flops && m > 1 ->
      let block = max 8 ((m + 15) / 16) in
      let n_blocks = (m + block - 1) / block in
      run (fun b ->
          let i0 = b * block in
          body i0 (Stdlib.min m (i0 + block)))
        n_blocks
  | _ -> body 0 m

let gemm_check name ~am ~ak ~bm ~bk ~cm ~cn a b c =
  if a.rows <> am || a.cols <> ak then
    invalid_arg (Printf.sprintf "%s: A is %dx%d, expected %dx%d" name a.rows a.cols am ak);
  if b.rows <> bm || b.cols <> bk then
    invalid_arg (Printf.sprintf "%s: B is %dx%d, expected %dx%d" name b.rows b.cols bm bk);
  if c.rows <> cm || c.cols <> cn then
    invalid_arg (Printf.sprintf "%s: C is %dx%d, expected %dx%d" name c.rows c.cols cm cn)

(** [gemm_nt ~alpha ~beta a b c]: [C <- alpha * A * B^T + beta * C] with
    [A : m×k], [B : n×k], [C : m×n].  The forward pass of a batched affine
    layer ([X · W^T]).  Cache-blocked over output tiles; the inner dot
    product runs over two contiguous rows, unrolled 4-way. *)
let gemm_nt ?(alpha = 1.0) ?(beta = 1.0) a b c =
  let m = a.rows and k = a.cols and n = b.rows in
  gemm_check "Tensor.gemm_nt" ~am:m ~ak:k ~bm:n ~bk:k ~cm:m ~cn:n a b c;
  let ad = a.data and bd = b.data and cd = c.data in
  let tile = 32 in
  let body i0 i1 =
    let jb = ref 0 in
    while !jb < n do
      let j1 = Stdlib.min n (!jb + tile) in
      for i = i0 to i1 - 1 do
        let abase = i * k in
        for j = !jb to j1 - 1 do
          let bbase = j * k in
          (* 4-way unrolled dot of rows A[i,:] and B[j,:] *)
          let acc0 = ref 0.0 and acc1 = ref 0.0 and acc2 = ref 0.0 and acc3 = ref 0.0 in
          let p = ref 0 in
          while !p + 3 < k do
            let q = !p in
            acc0 := !acc0 +. (A.unsafe_get ad (abase + q) *. A.unsafe_get bd (bbase + q));
            acc1 :=
              !acc1 +. (A.unsafe_get ad (abase + q + 1) *. A.unsafe_get bd (bbase + q + 1));
            acc2 :=
              !acc2 +. (A.unsafe_get ad (abase + q + 2) *. A.unsafe_get bd (bbase + q + 2));
            acc3 :=
              !acc3 +. (A.unsafe_get ad (abase + q + 3) *. A.unsafe_get bd (bbase + q + 3));
            p := q + 4
          done;
          while !p < k do
            acc0 := !acc0 +. (A.unsafe_get ad (abase + !p) *. A.unsafe_get bd (bbase + !p));
            incr p
          done;
          let acc = !acc0 +. !acc1 +. !acc2 +. !acc3 in
          let ci = (i * n) + j in
          let prev = if beta = 0.0 then 0.0 else beta *. A.unsafe_get cd ci in
          A.unsafe_set cd ci (prev +. (alpha *. acc))
        done
      done;
      jb := j1
    done
  in
  run_rows ~m ~flops:(2 * m * n * k) body

(** [gemm_nn ~alpha ~beta a b c]: [C <- alpha * A * B + beta * C] with
    [A : m×k], [B : k×n], [C : m×n].  The input-gradient pass
    ([dX <- dY · W]).  Row-major friendly: the C row accumulates axpy
    contributions of B rows, streamed in k order. *)
let gemm_nn ?(alpha = 1.0) ?(beta = 1.0) a b c =
  let m = a.rows and k = a.cols and n = b.cols in
  gemm_check "Tensor.gemm_nn" ~am:m ~ak:k ~bm:k ~bk:n ~cm:m ~cn:n a b c;
  let ad = a.data and bd = b.data and cd = c.data in
  let body i0 i1 =
    for i = i0 to i1 - 1 do
      let cbase = i * n in
      if beta = 0.0 then
        for j = 0 to n - 1 do
          A.unsafe_set cd (cbase + j) 0.0
        done
      else if beta <> 1.0 then
        for j = 0 to n - 1 do
          A.unsafe_set cd (cbase + j) (beta *. A.unsafe_get cd (cbase + j))
        done;
      let abase = i * k in
      for p = 0 to k - 1 do
        let aip = alpha *. A.unsafe_get ad (abase + p) in
        if aip <> 0.0 then begin
          let bbase = p * n in
          for j = 0 to n - 1 do
            A.unsafe_set cd (cbase + j)
              (A.unsafe_get cd (cbase + j) +. (aip *. A.unsafe_get bd (bbase + j)))
          done
        end
      done
    done
  in
  run_rows ~m ~flops:(2 * m * n * k) body

(** [gemm_tn ~alpha ~beta a b c]: [C <- alpha * A^T * B + beta * C] with
    [A : k×m], [B : k×n], [C : m×n].  The weight-gradient pass
    ([dW <- dY^T · X], k = batch lanes).  Parallelism partitions C rows
    (output neurons), never the k reduction, keeping accumulation order
    fixed. *)
let gemm_tn ?(alpha = 1.0) ?(beta = 1.0) a b c =
  let k = a.rows and m = a.cols and n = b.cols in
  gemm_check "Tensor.gemm_tn" ~am:k ~ak:m ~bm:k ~bk:n ~cm:m ~cn:n a b c;
  let ad = a.data and bd = b.data and cd = c.data in
  let body i0 i1 =
    for i = i0 to i1 - 1 do
      let cbase = i * n in
      if beta = 0.0 then
        for j = 0 to n - 1 do
          A.unsafe_set cd (cbase + j) 0.0
        done
      else if beta <> 1.0 then
        for j = 0 to n - 1 do
          A.unsafe_set cd (cbase + j) (beta *. A.unsafe_get cd (cbase + j))
        done;
      for p = 0 to k - 1 do
        let api = alpha *. A.unsafe_get ad ((p * m) + i) in
        if api <> 0.0 then begin
          let bbase = p * n in
          for j = 0 to n - 1 do
            A.unsafe_set cd (cbase + j)
              (A.unsafe_get cd (cbase + j) +. (api *. A.unsafe_get bd (bbase + j)))
          done
        end
      done
    done
  in
  run_rows ~m ~flops:(2 * m * n * k) body

(* Column-sliced variants: the B (resp. C) operand is a [boff, boff+bk)
   (resp. [coff, coff+n)) column window of a wider matrix with row stride
   [ld].  Used to run an affine layer against a column block of its weight
   without materialising the slice — attention computes
   [W·(h ++ q) = W_h·h + W_q·q] this way, so the memory-side projection can
   be hoisted out of the decode loop. *)

(** [gemm_nt_slice ~ld ~boff a b c]: [C <- alpha * A * B[:, boff..boff+k)^T
    + beta * C] with [A : m×k], [B : n×ld] (row stride [ld]), [C : m×n]. *)
let gemm_nt_slice ?(alpha = 1.0) ?(beta = 1.0) ~ld ~boff a b c =
  let m = a.rows and k = a.cols and n = b.rows in
  if b.cols <> ld || boff < 0 || boff + k > ld then
    invalid_arg "Tensor.gemm_nt_slice: bad slice";
  if c.rows <> m || c.cols <> n then invalid_arg "Tensor.gemm_nt_slice: C shape";
  let ad = a.data and bd = b.data and cd = c.data in
  let tile = 32 in
  let body i0 i1 =
    let jb = ref 0 in
    while !jb < n do
      let j1 = Stdlib.min n (!jb + tile) in
      for i = i0 to i1 - 1 do
        let abase = i * k in
        for j = !jb to j1 - 1 do
          let bbase = (j * ld) + boff in
          let acc0 = ref 0.0 and acc1 = ref 0.0 and acc2 = ref 0.0 and acc3 = ref 0.0 in
          let p = ref 0 in
          while !p + 3 < k do
            let q = !p in
            acc0 := !acc0 +. (A.unsafe_get ad (abase + q) *. A.unsafe_get bd (bbase + q));
            acc1 :=
              !acc1 +. (A.unsafe_get ad (abase + q + 1) *. A.unsafe_get bd (bbase + q + 1));
            acc2 :=
              !acc2 +. (A.unsafe_get ad (abase + q + 2) *. A.unsafe_get bd (bbase + q + 2));
            acc3 :=
              !acc3 +. (A.unsafe_get ad (abase + q + 3) *. A.unsafe_get bd (bbase + q + 3));
            p := q + 4
          done;
          while !p < k do
            acc0 := !acc0 +. (A.unsafe_get ad (abase + !p) *. A.unsafe_get bd (bbase + !p));
            incr p
          done;
          let acc = !acc0 +. !acc1 +. !acc2 +. !acc3 in
          let ci = (i * n) + j in
          let prev = if beta = 0.0 then 0.0 else beta *. A.unsafe_get cd ci in
          A.unsafe_set cd ci (prev +. (alpha *. acc))
        done
      done;
      jb := j1
    done
  in
  run_rows ~m ~flops:(2 * m * n * k) body

(** [gemm_nn_slice ~ld ~boff a b c]: [C <- alpha * A * B[:, boff..boff+n)
    + beta * C] with [A : m×k], [B : k×ld], [C : m×n].  The input-gradient
    pass of a sliced affine layer ([dX <- dY · W_slice]). *)
let gemm_nn_slice ?(alpha = 1.0) ?(beta = 1.0) ~ld ~boff a b c =
  let m = a.rows and k = a.cols and n = c.cols in
  if b.rows <> k || b.cols <> ld || boff < 0 || boff + n > ld then
    invalid_arg "Tensor.gemm_nn_slice: bad slice";
  if c.rows <> m then invalid_arg "Tensor.gemm_nn_slice: C shape";
  let ad = a.data and bd = b.data and cd = c.data in
  let body i0 i1 =
    for i = i0 to i1 - 1 do
      let cbase = i * n in
      if beta = 0.0 then
        for j = 0 to n - 1 do
          A.unsafe_set cd (cbase + j) 0.0
        done
      else if beta <> 1.0 then
        for j = 0 to n - 1 do
          A.unsafe_set cd (cbase + j) (beta *. A.unsafe_get cd (cbase + j))
        done;
      let abase = i * k in
      for p = 0 to k - 1 do
        let aip = alpha *. A.unsafe_get ad (abase + p) in
        if aip <> 0.0 then begin
          let bbase = (p * ld) + boff in
          for j = 0 to n - 1 do
            A.unsafe_set cd (cbase + j)
              (A.unsafe_get cd (cbase + j) +. (aip *. A.unsafe_get bd (bbase + j)))
          done
        end
      done
    done
  in
  run_rows ~m ~flops:(2 * m * n * k) body

(** [gemm_tn_slice ~ld ~coff a b c]: [C[:, coff..coff+n) <- alpha * A^T * B
    + beta * C[:, coff..coff+n)] with [A : k×m], [B : k×n], [C : m×ld].
    The weight-gradient pass of a sliced affine layer
    ([dW_slice <- dY^T · X]); only the addressed window is written. *)
let gemm_tn_slice ?(alpha = 1.0) ?(beta = 1.0) ~ld ~coff a b c =
  let k = a.rows and m = a.cols and n = b.cols in
  if b.rows <> k then invalid_arg "Tensor.gemm_tn_slice: B shape";
  if c.rows <> m || c.cols <> ld || coff < 0 || coff + n > ld then
    invalid_arg "Tensor.gemm_tn_slice: bad slice";
  let ad = a.data and bd = b.data and cd = c.data in
  let body i0 i1 =
    for i = i0 to i1 - 1 do
      let cbase = (i * ld) + coff in
      if beta = 0.0 then
        for j = 0 to n - 1 do
          A.unsafe_set cd (cbase + j) 0.0
        done
      else if beta <> 1.0 then
        for j = 0 to n - 1 do
          A.unsafe_set cd (cbase + j) (beta *. A.unsafe_get cd (cbase + j))
        done;
      for p = 0 to k - 1 do
        let api = alpha *. A.unsafe_get ad ((p * m) + i) in
        if api <> 0.0 then begin
          let bbase = p * n in
          for j = 0 to n - 1 do
            A.unsafe_set cd (cbase + j)
              (A.unsafe_get cd (cbase + j) +. (api *. A.unsafe_get bd (bbase + j)))
          done
        end
      done
    done
  in
  run_rows ~m ~flops:(2 * m * n * k) body

(* ------------------------------------------------------------------ *)
(* Float32 storage (embedding indexes, serving-side snapshots).        *)
(* ------------------------------------------------------------------ *)

(** Single-precision matrices: same layout as {!t} at half the bytes.
    Used where precision is not training-critical (frozen embedding
    indexes, read-only snapshots); the kernels mirror the float64 ones. *)
module F32 = struct
  type buf32 = (float, Bigarray.float32_elt, Bigarray.c_layout) A.t

  type t32 = { data : buf32; rows : int; cols : int }

  let create rows cols =
    if rows <= 0 || cols <= 0 then invalid_arg "Tensor.F32.create: non-positive dim";
    let data = A.create Bigarray.float32 Bigarray.c_layout (rows * cols) in
    A.fill data 0.0;
    { data; rows; cols }

  let size t = t.rows * t.cols
  let get t i j = A.get t.data ((i * t.cols) + j)
  let set t i j x = A.set t.data ((i * t.cols) + j) x

  let of_array a =
    let n = Array.length a in
    if n = 0 then invalid_arg "Tensor.F32.of_array: empty";
    let t = create 1 n in
    for i = 0 to n - 1 do
      A.unsafe_set t.data i (Array.unsafe_get a i)
    done;
    t

  let to_array t =
    Array.init (size t) (fun i -> A.unsafe_get t.data i)

  (** Row [i] copied out as a float array (values round-tripped through
      single precision). *)
  let row t i =
    let base = i * t.cols in
    Array.init t.cols (fun j -> A.unsafe_get t.data (base + j))

  (** Overwrite row [i] from a float array (narrowing to float32). *)
  let set_row t i (v : float array) =
    if Array.length v <> t.cols then invalid_arg "Tensor.F32.set_row: bad length";
    let base = i * t.cols in
    for j = 0 to t.cols - 1 do
      A.unsafe_set t.data (base + j) (Array.unsafe_get v j)
    done

  (** Narrow a float64 tensor to float32 storage. *)
  let of_f64 (src : t) =
    let dst = create src.rows src.cols in
    for i = 0 to size dst - 1 do
      A.unsafe_set dst.data i (A.unsafe_get src.data i)
    done;
    dst

  (** [matvec m x out]: [out <- m * x] with float64 vector operands —
      queries stay double precision against a narrowed matrix. *)
  let matvec m (x : float array) (out : float array) =
    if Array.length x <> m.cols then invalid_arg "Tensor.F32.matvec: bad x";
    if Array.length out <> m.rows then invalid_arg "Tensor.F32.matvec: bad out";
    let data = m.data and cols = m.cols in
    for i = 0 to m.rows - 1 do
      let base = i * cols in
      let acc = ref 0.0 in
      for j = 0 to cols - 1 do
        acc := !acc +. (A.unsafe_get data (base + j) *. Array.unsafe_get x j)
      done;
      Array.unsafe_set out i !acc
    done

  (** [gemm_nt a b c]: [C <- A * B^T] (float32 throughout, C overwritten). *)
  let gemm_nt a b c =
    let m = a.rows and k = a.cols and n = b.rows in
    if b.cols <> k || c.rows <> m || c.cols <> n then
      invalid_arg "Tensor.F32.gemm_nt: shape mismatch";
    let ad = a.data and bd = b.data and cd = c.data in
    for i = 0 to m - 1 do
      let abase = i * k in
      for j = 0 to n - 1 do
        let bbase = j * k in
        let acc = ref 0.0 in
        for p = 0 to k - 1 do
          acc := !acc +. (A.unsafe_get ad (abase + p) *. A.unsafe_get bd (bbase + p))
        done;
        A.unsafe_set cd ((i * n) + j) !acc
      done
    done
end

let pp ppf t =
  Fmt.pf ppf "@[<v>tensor %dx%d" t.rows t.cols;
  for i = 0 to Stdlib.min 4 (t.rows - 1) do
    Fmt.pf ppf "@,[";
    for j = 0 to Stdlib.min 7 (t.cols - 1) do
      Fmt.pf ppf "%s%.4f" (if j > 0 then "; " else "") (get t i j)
    done;
    if t.cols > 8 then Fmt.pf ppf "; ...";
    Fmt.pf ppf "]"
  done;
  if t.rows > 5 then Fmt.pf ppf "@,...";
  Fmt.pf ppf "@]"
