(** Dense row-major float tensors (rank 1 and 2) and the raw numeric kernels
    the autodiff layer is built on.

    A tensor is a flat [float array] plus a [rows]/[cols] shape; vectors are
    represented with [rows = 1].  All kernels are written with [unsafe_get] /
    [unsafe_set] inner loops because they dominate training time. *)

type t = { data : float array; rows : int; cols : int }

let size t = t.rows * t.cols

(* When profiling, tensor storage feeds the live/peak memory gauges: 8 bytes
   per element on allocation, released by a GC finaliser when the tensor
   dies.  Disabled cost: one atomic load per construction. *)
let track t =
  if Liger_obs.Profile.on () then begin
    let b = 8 * size t in
    Liger_obs.Profile.alloc b;
    Gc.finalise (fun (_ : t) -> Liger_obs.Profile.release b) t
  end;
  t

let create rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Tensor.create: non-positive dim";
  track { data = Array.make (rows * cols) 0.0; rows; cols }

let zeros = create

let full rows cols x = track { data = Array.make (rows * cols) x; rows; cols }

(** Vector (1 x n) from an array; the array is copied. *)
let of_array a = track { data = Array.copy a; rows = 1; cols = Array.length a }

(** Matrix from a row-major nested array. Rows must be nonempty and equal
    length. *)
let of_rows rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then invalid_arg "Tensor.of_rows: empty";
  let cols = Array.length rows_arr.(0) in
  let t = create rows cols in
  Array.iteri
    (fun i r ->
      if Array.length r <> cols then invalid_arg "Tensor.of_rows: ragged";
      Array.blit r 0 t.data (i * cols) cols)
    rows_arr;
  t

let copy t = track { t with data = Array.copy t.data }

let get t i j = t.data.(i * t.cols + j)
let set t i j x = t.data.(i * t.cols + j) <- x

let fill t x = Array.fill t.data 0 (size t) x

let same_shape a b = a.rows = b.rows && a.cols = b.cols

let check_same_shape name a b =
  if not (same_shape a b) then
    invalid_arg
      (Printf.sprintf "%s: shape mismatch (%dx%d vs %dx%d)" name a.rows a.cols
         b.rows b.cols)

(* ------------------------------------------------------------------ *)
(* In-place kernels on raw arrays.                                     *)
(* ------------------------------------------------------------------ *)

(** [axpy a x y] computes [y <- a*x + y] elementwise over raw arrays. *)
let axpy a x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Tensor.axpy: length mismatch";
  for i = 0 to n - 1 do
    Array.unsafe_set y i
      ((a *. Array.unsafe_get x i) +. Array.unsafe_get y i)
  done

(** [matvec m x out] computes [out <- m * x] where [x] has length [m.cols]
    and [out] has length [m.rows]. *)
let matvec m x out =
  if Array.length x <> m.cols then invalid_arg "Tensor.matvec: bad x";
  if Array.length out <> m.rows then invalid_arg "Tensor.matvec: bad out";
  let data = m.data and cols = m.cols in
  for i = 0 to m.rows - 1 do
    let base = i * cols in
    let acc = ref 0.0 in
    for j = 0 to cols - 1 do
      acc := !acc +. (Array.unsafe_get data (base + j) *. Array.unsafe_get x j)
    done;
    Array.unsafe_set out i !acc
  done

(** [matvec_t_acc m g x_grad] accumulates [x_grad += m^T * g]; the transpose
    product needed to backpropagate through {!matvec}. *)
let matvec_t_acc m g x_grad =
  if Array.length g <> m.rows then invalid_arg "Tensor.matvec_t_acc: bad g";
  if Array.length x_grad <> m.cols then
    invalid_arg "Tensor.matvec_t_acc: bad x_grad";
  let data = m.data and cols = m.cols in
  for i = 0 to m.rows - 1 do
    let gi = Array.unsafe_get g i in
    if gi <> 0.0 then begin
      let base = i * cols in
      for j = 0 to cols - 1 do
        Array.unsafe_set x_grad j
          (Array.unsafe_get x_grad j +. (gi *. Array.unsafe_get data (base + j)))
      done
    end
  done

(** [outer_acc g x m_grad] accumulates [m_grad += g x^T]; the weight gradient
    of {!matvec}. *)
let outer_acc g x m_grad =
  let rows = Array.length g and cols = Array.length x in
  if Array.length m_grad.data <> rows * cols then
    invalid_arg "Tensor.outer_acc: bad m_grad";
  let data = m_grad.data in
  for i = 0 to rows - 1 do
    let gi = Array.unsafe_get g i in
    if gi <> 0.0 then begin
      let base = i * cols in
      for j = 0 to cols - 1 do
        Array.unsafe_set data (base + j)
          (Array.unsafe_get data (base + j) +. (gi *. Array.unsafe_get x j))
      done
    end
  done

let dot x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Tensor.dot: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (Array.unsafe_get x i *. Array.unsafe_get y i)
  done;
  !acc

let map f t = track { t with data = Array.map f t.data }

let sum t = Array.fold_left ( +. ) 0.0 t.data

let l2_norm t = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 t.data)

let max_elt t = Array.fold_left Stdlib.max neg_infinity t.data

let argmax a =
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best

(** Numerically stable softmax of a raw array, returned as a fresh array. *)
let softmax a =
  let m = Array.fold_left Stdlib.max neg_infinity a in
  let e = Array.map (fun x -> exp (x -. m)) a in
  let z = Array.fold_left ( +. ) 0.0 e in
  Array.map (fun x -> x /. z) e

let pp ppf t =
  Fmt.pf ppf "@[<v>tensor %dx%d" t.rows t.cols;
  for i = 0 to Stdlib.min 4 (t.rows - 1) do
    Fmt.pf ppf "@,[";
    for j = 0 to Stdlib.min 7 (t.cols - 1) do
      Fmt.pf ppf "%s%.4f" (if j > 0 then "; " else "") (get t i j)
    done;
    if t.cols > 8 then Fmt.pf ppf "; ...";
    Fmt.pf ppf "]"
  done;
  if t.rows > 5 then Fmt.pf ppf "@,...";
  Fmt.pf ppf "@]"
