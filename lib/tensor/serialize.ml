(** Plain-text save/load for parameter stores.

    Format: one header line per parameter ([name rows cols]) followed by one
    line of space-separated values.  Human-inspectable and stable across
    OCaml versions, unlike [Marshal]. *)

(* Checkpoints are written to a temporary file in the same directory and
   renamed into place, so a crash mid-write can never leave a truncated
   half-valid file where a previous good checkpoint stood. *)
let save_store (store : Param.store) path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         Param.iter store (fun p ->
             Printf.fprintf oc "%s %d %d\n" p.Param.name (Param.rows p) (Param.cols p);
             let value = p.Param.value in
             for i = 0 to Param.size p - 1 do
               if i > 0 then output_char oc ' ';
               Printf.fprintf oc "%.17g" (Tensor.get_idx value i)
             done;
             output_char oc '\n'))
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(** Load values into an existing store; every parameter in the file must
    already exist with matching shape, and every parameter of the store
    must be present in the file (create the model first, then load).  A
    truncated or otherwise partial checkpoint therefore fails loudly
    instead of silently leaving the missing parameters at their random
    initialization. *)
let load_store (store : Param.store) path =
  let ic = open_in path in
  let loaded = Hashtbl.create 64 in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let header = input_line ic in
          match String.split_on_char ' ' header with
          | [ name; rows; cols ] ->
              let rows = int_of_string rows and cols = int_of_string cols in
              let p = Param.find store name in
              if Param.rows p <> rows || Param.cols p <> cols then
                failwith ("Serialize.load_store: shape mismatch for " ^ name);
              let values = input_line ic in
              let parts =
                String.split_on_char ' ' values
                |> List.filter (fun s -> s <> "")
                |> List.map float_of_string
              in
              if List.length parts <> Param.size p then
                failwith ("Serialize.load_store: size mismatch for " ^ name);
              List.iteri (fun i x -> Tensor.set_idx p.Param.value i x) parts;
              Hashtbl.replace loaded name ()
          | _ -> failwith "Serialize.load_store: malformed header"
        done
      with End_of_file -> ());
  Param.iter store (fun p ->
      if not (Hashtbl.mem loaded p.Param.name) then
        failwith
          ("Serialize.load_store: parameter " ^ p.Param.name
         ^ " missing from checkpoint " ^ path))
