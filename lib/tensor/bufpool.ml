(** Arena-style pooling of {!Tensor.buf} storage for the batched engine.

    Batched training allocates the same buffer shapes every step (node
    values and gradients are [lanes × dim] for a handful of lane counts),
    so instead of letting each tape's bigarrays churn through malloc/free,
    buffers are leased from per-domain freelists keyed by exact element
    count and returned when the tape is released.

    Lifetime rules (see also DESIGN.md):
    - {!take} transfers ownership to the caller; {!give} transfers it back.
      A buffer must not be used after it is given back.
    - The batched tape ({!Batched}) takes buffers at node creation and
      gives every node's value and gradient back in [release_tape] /
      [discard]; node values are therefore invalid after the tape is
      released — copy out anything you need first ({!Tensor.to_array}).
    - Freelists are per-domain ([Domain.DLS]): no locks, and a buffer
      taken on one domain is returned to that domain's list, so pooling
      never creates cross-domain sharing.
    - Gradients are zero-filled on {!take_zeroed}; values are returned
      uninitialised.

    The pool is capacity-bounded per size class ({!max_per_class}) so a
    one-off giant batch cannot pin its buffers forever. *)

type stats = { mutable hits : int; mutable misses : int; mutable returned : int }

type pool = { classes : (int, Tensor.buf list ref) Hashtbl.t; stats : stats }

let max_per_class = 64

let key : pool Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { classes = Hashtbl.create 32; stats = { hits = 0; misses = 0; returned = 0 } })

let pool () = Domain.DLS.get key

(** Lease a buffer of exactly [n] elements; contents are unspecified. *)
let take n : Tensor.buf =
  let p = pool () in
  match Hashtbl.find_opt p.classes n with
  | Some ({ contents = b :: rest } as cell) ->
      cell := rest;
      p.stats.hits <- p.stats.hits + 1;
      b
  | _ ->
      p.stats.misses <- p.stats.misses + 1;
      Tensor.alloc_buf n

(** Lease a zero-filled buffer of exactly [n] elements (gradients). *)
let take_zeroed n =
  let b = take n in
  Bigarray.Array1.fill b 0.0;
  b

(** Return a buffer to the current domain's pool. *)
let give (b : Tensor.buf) =
  let p = pool () in
  let n = Bigarray.Array1.dim b in
  p.stats.returned <- p.stats.returned + 1;
  let cell =
    match Hashtbl.find_opt p.classes n with
    | Some cell -> cell
    | None ->
        let cell = ref [] in
        Hashtbl.add p.classes n cell;
        cell
  in
  if List.length !cell < max_per_class then cell := b :: !cell

(** Drop every pooled buffer on the current domain (tests; memory release). *)
let clear () =
  let p = pool () in
  Hashtbl.reset p.classes

let stats () =
  let s = (pool ()).stats in
  (s.hits, s.misses, s.returned)
