(** Arena-style pooling of {!Tensor.buf} storage for the batched engine.

    Batched training allocates the same buffer shapes every step (node
    values and gradients are [lanes × dim] for a handful of lane counts),
    so instead of letting each tape's bigarrays churn through malloc/free,
    buffers are leased from per-domain freelists keyed by exact element
    count and returned when the tape is released.

    Lifetime rules (see also DESIGN.md):
    - {!take} transfers ownership to the caller; {!give} transfers it back.
      A buffer must not be used after it is given back.
    - The batched tape ({!Batched}) takes buffers at node creation and
      gives every node's value and gradient back in [release_tape] /
      [discard]; node values are therefore invalid after the tape is
      released — copy out anything you need first ({!Tensor.to_array}).
    - Freelists are per-domain ([Domain.DLS]): no locks, and a buffer
      taken on one domain is returned to that domain's list, so pooling
      never creates cross-domain sharing.
    - Gradients are zero-filled on {!take_zeroed}; values are returned
      uninitialised.

    The pool is capacity-bounded per size class ({!max_per_class}) so a
    one-off giant batch cannot pin its buffers forever.

    Occupancy telemetry: each pool keeps incrementally-maintained lease
    and occupancy counters, and {!publish} turns them into per-domain
    [bufpool.*] gauges.  It is registered as a {!Liger_obs.Timeseries}
    enricher at module initialisation, so run-ledger snapshots carry the
    pool state without [lib/obs] ever depending on this library.  The
    publisher reads other domains' counters without taking a lock —
    int fields are word-atomic, and a momentarily stale gauge is fine
    for a trend line. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable returned : int;
  mutable leased : int;        (* buffers out on lease right now *)
  mutable hw_leased : int;     (* high-water mark of [leased] *)
  mutable pooled : int;        (* buffers parked in freelists *)
  mutable pooled_elems : int;  (* float elements parked in freelists *)
}

type pool = { dom : int; classes : (int, Tensor.buf list ref) Hashtbl.t; stats : stats }

let max_per_class = 64

(* every domain registers its pool on first use so [publish] can walk
   them; pools survive the domain (a retired worker's counters still
   publish) *)
let pools_mutex = Mutex.create ()
let pools : pool list ref = ref []

let key : pool Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let p =
        {
          dom = (Domain.self () :> int);
          classes = Hashtbl.create 32;
          stats =
            {
              hits = 0;
              misses = 0;
              returned = 0;
              leased = 0;
              hw_leased = 0;
              pooled = 0;
              pooled_elems = 0;
            };
        }
      in
      Mutex.lock pools_mutex;
      pools := p :: !pools;
      Mutex.unlock pools_mutex;
      p)

let pool () = Domain.DLS.get key

(** Lease a buffer of exactly [n] elements; contents are unspecified. *)
let take n : Tensor.buf =
  let p = pool () in
  let s = p.stats in
  s.leased <- s.leased + 1;
  if s.leased > s.hw_leased then s.hw_leased <- s.leased;
  match Hashtbl.find_opt p.classes n with
  | Some ({ contents = b :: rest } as cell) ->
      cell := rest;
      s.hits <- s.hits + 1;
      s.pooled <- s.pooled - 1;
      s.pooled_elems <- s.pooled_elems - n;
      b
  | _ ->
      s.misses <- s.misses + 1;
      Tensor.alloc_buf n

(** Lease a zero-filled buffer of exactly [n] elements (gradients). *)
let take_zeroed n =
  let b = take n in
  Bigarray.Array1.fill b 0.0;
  b

(** Return a buffer to the current domain's pool. *)
let give (b : Tensor.buf) =
  let p = pool () in
  let n = Bigarray.Array1.dim b in
  let s = p.stats in
  s.returned <- s.returned + 1;
  s.leased <- s.leased - 1;
  let cell =
    match Hashtbl.find_opt p.classes n with
    | Some cell -> cell
    | None ->
        let cell = ref [] in
        Hashtbl.add p.classes n cell;
        cell
  in
  if List.length !cell < max_per_class then begin
    cell := b :: !cell;
    s.pooled <- s.pooled + 1;
    s.pooled_elems <- s.pooled_elems + n
  end

(** Drop every pooled buffer on the current domain (tests; memory release). *)
let clear () =
  let p = pool () in
  Hashtbl.reset p.classes;
  p.stats.pooled <- 0;
  p.stats.pooled_elems <- 0

let stats () =
  let s = (pool ()).stats in
  (s.hits, s.misses, s.returned)

(** Current-domain occupancy: (leased, high-water leased, pooled
    buffers, pooled elements). *)
let occupancy () =
  let s = (pool ()).stats in
  (s.leased, s.hw_leased, s.pooled, s.pooled_elems)

(** Publish every domain's pool counters as per-domain [bufpool.*]
    gauges.  Registered as a run-ledger enricher below; a no-op when the
    metrics registry is off. *)
let publish () =
  if Liger_obs.Metrics.enabled () then begin
    Mutex.lock pools_mutex;
    let ps = !pools in
    Mutex.unlock pools_mutex;
    List.iter
      (fun p ->
        let labels = [ ("domain", string_of_int p.dom) ] in
        let s = p.stats in
        let gauge name v = Liger_obs.Metrics.gauge ~labels name (float_of_int v) in
        gauge "bufpool.leased" s.leased;
        gauge "bufpool.hw_leased" s.hw_leased;
        gauge "bufpool.pooled_buffers" s.pooled;
        gauge "bufpool.pooled_elements" s.pooled_elems;
        gauge "bufpool.hits" s.hits;
        gauge "bufpool.misses" s.misses;
        gauge "bufpool.returns" s.returned)
      ps
  end

let () = Liger_obs.Timeseries.register_enricher publish
