(** Trainable parameters and parameter stores.

    A parameter is a named matrix (or vector, [rows = 1]) with a persistent
    gradient buffer that autodiff backward passes accumulate into.  A {!store}
    owns all parameters of a model, provides deterministic initialization and
    is the unit that optimizers update and serializers save. *)

type t = {
  name : string;
  value : Tensor.t;
  grad : Tensor.t;
}

let rows p = p.value.Tensor.rows
let cols p = p.value.Tensor.cols
let size p = Tensor.size p.value

let zero_grad p = Tensor.fill p.grad 0.0

type store = {
  mutable params : t list;  (* newest first; order stable per run *)
  tbl : (string, t) Hashtbl.t;
  rng : Rng.t;
}

let create_store ?(seed = 42) () =
  { params = []; tbl = Hashtbl.create 64; rng = Rng.create seed }

let mem store name = Hashtbl.mem store.tbl name

let find store name =
  match Hashtbl.find_opt store.tbl name with
  | Some p -> p
  | None -> invalid_arg ("Param.find: unknown parameter " ^ name)

(** [add store name ~rows ~cols ~init] registers a fresh parameter whose
    entries are produced by [init rng].  Names must be unique. *)
let add store name ~rows ~cols ~init =
  if Hashtbl.mem store.tbl name then
    invalid_arg ("Param.add: duplicate parameter " ^ name);
  let value = Tensor.create rows cols in
  for i = 0 to Tensor.size value - 1 do
    Tensor.set_idx value i (init store.rng)
  done;
  let p = { name; value; grad = Tensor.create rows cols } in
  Hashtbl.add store.tbl name p;
  store.params <- p :: store.params;
  p

(** Xavier/Glorot uniform initialization, the paper's "random
    initialization" at matched scale. *)
let xavier ~fan_in ~fan_out rng =
  let bound = sqrt (6.0 /. float_of_int (fan_in + fan_out)) in
  Rng.uniform rng (-.bound) bound

(** [matrix store name rows cols] adds a Xavier-initialized matrix. *)
let matrix store name rows cols =
  add store name ~rows ~cols ~init:(xavier ~fan_in:cols ~fan_out:rows)

(** [vector store name n] adds a zero-initialized vector (e.g. a bias). *)
let vector store name n = add store name ~rows:1 ~cols:n ~init:(fun _ -> 0.0)

(** [zeros store name rows cols] adds a zero-initialized matrix.  Used for
    the output row of attention scorers so attention starts exactly uniform
    (symmetry is broken by the gradient, not the init). *)
let zeros store name rows cols = add store name ~rows ~cols ~init:(fun _ -> 0.0)

(** [embedding store name vocab dim] adds an embedding table with small
    gaussian entries; row [i] embeds vocabulary item [i]. *)
let embedding store name vocab dim =
  add store name ~rows:vocab ~cols:dim ~init:(fun rng -> 0.1 *. Rng.gaussian rng)

let iter store f = List.iter f (List.rev store.params)

let fold store ~init f = List.fold_left f init (List.rev store.params)

let zero_grads store = iter store zero_grad

let num_params store = fold store ~init:0 (fun acc p -> acc + size p)

(** Global L2 norm of all gradients; used for gradient clipping. *)
let grad_norm store =
  sqrt
    (fold store ~init:0.0 (fun acc p ->
         let g = p.grad.Tensor.data in
         let acc = ref acc in
         for i = 0 to Tensor.size p.grad - 1 do
           let x = Bigarray.Array1.unsafe_get g i in
           acc := !acc +. (x *. x)
         done;
         !acc))

(** Scale every gradient in the store by [c]. *)
let scale_grads store c =
  iter store (fun p ->
      let g = p.grad.Tensor.data in
      for i = 0 to Tensor.size p.grad - 1 do
        Bigarray.Array1.unsafe_set g i (Bigarray.Array1.unsafe_get g i *. c)
      done)
