(** Wrapping every model behind the uniform {!Train.model} interface.

    A wrapper fixes the model's {e view} — how many symbolic traces and how
    many concrete traces per trace it may see — at construction; the
    down-sampling experiments build one wrapper per point, so reduction
    applies to training {e and} testing, as in §6.1.2.  Static baselines
    build their own vocabularies from the raw training sources. *)

open Liger_tensor
open Liger_trace
open Liger_core
open Liger_baselines

let prediction_of_task task name_of class_of ex =
  match task with
  | Liger_model.Naming -> Train.Subtokens (name_of ex)
  | Liger_model.Classify _ -> Train.Class (class_of ex)

(** LiGer (optionally ablated).  Returns the wrapper and the model itself
    (the attention-inspection experiment needs the latter). *)
let liger ?(config = Liger_model.default_config) ?(view = Common.full_view) ?seed ~vocab task =
  let model = Liger_model.create ~config ?seed vocab task in
  let wrap =
    {
      Train.name =
        (match (config.use_static, config.use_dynamic, config.use_attention) with
        | true, true, true -> "LiGer"
        | false, true, _ -> "LiGer-nostatic"
        | true, false, _ -> "LiGer-nodynamic"
        | true, true, false -> "LiGer-noattention"
        | _ -> "LiGer-custom");
      store = Liger_model.store model;
      train_loss = (fun tape ex -> fst (Liger_model.loss model tape ~view ex));
      predict =
        (fun ex ->
          let tape = Autodiff.tape () in
          let p =
            prediction_of_task task
              (fun ex -> Liger_model.predict_name model tape ~view ex)
              (fun ex -> Liger_model.predict_class model tape ~view ex)
              ex
          in
          Autodiff.discard tape;
          p);
      batched =
        Some
          {
            Train.train_loss_batch =
              (fun btape exs -> fst (Liger_model.loss_batch model btape ~view exs));
            predict_batch =
              (fun exs ->
                match task with
                | Liger_model.Naming ->
                    Array.map
                      (fun ids ->
                        Train.Subtokens
                          (List.map (Vocab.name (Liger_model.vocab model)) ids))
                      (Liger_model.predict_name_ids_batch model ~view exs)
                | Liger_model.Classify _ ->
                    Array.map
                      (fun c -> Train.Class c)
                      (Liger_model.predict_class_batch model ~view exs));
          };
      embed = Some (fun ex -> Liger_model.embed_program model ~view ex);
    }
  in
  (wrap, model)

(** DYPRO.  Returns the wrapper and the model itself (probing needs the
    latter's frozen encoder). *)
let dypro ?(dim = 16) ?(view = Common.full_view) ?seed ~vocab task =
  let model = Dypro.create ~dim ?seed vocab task in
  let wrap =
    {
      Train.name = "DYPRO";
      store = Dypro.store model;
      train_loss = (fun tape ex -> Dypro.loss model tape ~view ex);
      predict =
        (fun ex ->
          let tape = Autodiff.tape () in
          let p =
            prediction_of_task task
              (fun ex -> Dypro.predict_name model tape ~view ex)
              (fun ex -> Dypro.predict_class model tape ~view ex)
              ex
          in
          Autodiff.discard tape;
          p);
      batched = None;
      embed = Some (fun ex -> Dypro.embed_program model ~view ex);
    }
  in
  (wrap, model)

(** code2vec; builds its own token and label vocabularies from [train]. *)
let code2vec ?(dim = 16) ?seed ~train task =
  let vocab = Vocab.create () and labels = Vocab.create () in
  List.iter (fun (ex : Common.enc_example) -> Code2vec.register vocab ~labels ex.Common.meth) train;
  Vocab.freeze vocab;
  Vocab.freeze labels;
  let model = Code2vec.create ~dim ?seed vocab ~labels task in
  {
    Train.name = "code2vec";
    store = Code2vec.store model;
    train_loss = (fun tape ex -> Code2vec.loss model tape ex);
    predict =
      (fun ex ->
        let tape = Autodiff.tape () in
        let p =
          prediction_of_task task
            (fun ex -> Code2vec.predict_name model tape ex)
            (fun ex -> Code2vec.predict_class model tape ex)
            ex
        in
        Autodiff.discard tape;
        p);
    batched = None;
    embed = None;
  }

(** code2seq; builds its own vocabulary from [train]. *)
let code2seq ?(dim = 16) ?seed ~train task =
  let vocab = Vocab.create () in
  List.iter (fun (ex : Common.enc_example) -> Code2seq.register vocab ex.Common.meth) train;
  Vocab.freeze vocab;
  let model = Code2seq.create ~dim ?seed vocab task in
  {
    Train.name = "code2seq";
    store = Code2seq.store model;
    train_loss = (fun tape ex -> Code2seq.loss model tape ex);
    predict =
      (fun ex ->
        let tape = Autodiff.tape () in
        let p =
          prediction_of_task task
            (fun ex -> Code2seq.predict_name model tape ex)
            (fun ex -> Code2seq.predict_class model tape ex)
            ex
        in
        Autodiff.discard tape;
        p);
    batched = None;
    embed = None;
  }
