(** Linear probing of frozen program embeddings against exact semantic
    labels.

    For every probing task ({!Liger_dataset.Probing}) a linear readout —
    one {!Liger_nn.Linear} layer with softmax cross-entropy, nothing else —
    is trained on frozen per-statement vectors and scored on held-out
    methods.  The probe vector for a statement is the program embedding
    concatenated with the statement's mean step embedding, so the readout
    may draw on global and local context but cannot compute anything
    itself: accuracy above the majority-class share means the {e frozen}
    encoder linearly exposes the fact.

    The encoders under probe were trained on method naming and never saw a
    single probe label, which is what makes the comparison between LiGer's
    blended embeddings and a dynamic-only baseline informative. *)

open Liger_tensor
open Liger_nn
open Liger_core
module Probing = Liger_dataset.Probing

(** A frozen encoder: everything the probe may see of a model. *)
type embedder = {
  e_name : string;
  e_program : Common.enc_example -> float array;
  e_statements : Common.enc_example -> (int * float array) list;
}

let of_liger ?view (model : Liger_model.t) =
  {
    e_name = "LiGer";
    e_program = (fun ex -> Liger_model.embed_program model ?view ex);
    e_statements = (fun ex -> Liger_model.statement_embeddings model ?view ex);
  }

let of_dypro ?view (model : Liger_baselines.Dypro.t) =
  {
    e_name = "DYPRO";
    e_program = (fun ex -> Liger_baselines.Dypro.embed_program model ?view ex);
    e_statements = (fun ex -> Liger_baselines.Dypro.statement_embeddings model ?view ex);
  }

(* (probe vector, class) pairs of one task over a split.  Statements the
   encoded traces never execute have no vector and contribute nothing. *)
let task_data emb task examples =
  List.concat_map
    (fun (ex : Common.enc_example) ->
      let prog = emb.e_program ex in
      let stmts = emb.e_statements ex in
      Liger_dataset.Probing.label_method ex.Common.meth
      |> List.filter_map (fun (l : Probing.example) ->
             if l.Probing.p_task <> task then None
             else
               match List.assoc_opt l.Probing.p_sid stmts with
               | Some v -> Some (Array.append prog v, l.Probing.p_class)
               | None -> None))
    examples

(* Train one linear readout; returns the trained predictor. *)
let fit_readout ?(epochs = 40) ?(lr = 0.02) rng ~classes train =
  let dim_in = match train with (v, _) :: _ -> Array.length v | [] -> 1 in
  let store = Param.create_store ~seed:(Rng.int rng 1_000_000) () in
  let lin = Linear.create store "probe" ~dim_in ~dim_out:classes in
  let opt = Optimizer.adam ~lr () in
  let arr = Array.of_list train in
  for _ = 1 to epochs do
    Rng.shuffle rng arr;
    Array.iter
      (fun (v, c) ->
        let tape = Autodiff.tape () in
        let logits = Linear.forward lin tape (Autodiff.const tape v) in
        let loss = fst (Autodiff.softmax_cross_entropy tape logits c) in
        Autodiff.backward tape loss;
        let norm = Optimizer.clip_grads store ~max_norm:5.0 in
        if Float.is_finite norm then Optimizer.step opt store)
      arr
  done;
  fun v ->
    let tape = Autodiff.tape () in
    let logits = Linear.forward lin tape (Autodiff.const tape v) in
    let c = Tensor.argmax (Autodiff.value logits) in
    Autodiff.discard tape;
    c

type row = {
  r_task : Probing.task;
  r_train : int;     (* probe examples trained on *)
  r_test : int;      (* probe examples scored on *)
  r_majority : float;  (* share of the train-majority class in the test set *)
  r_accuracy : float;
}

type report = { model : string; rows : row list }

(** Probe a frozen encoder over all tasks.  Tasks with no train or no test
    examples (a degenerate corpus) are omitted rather than reported as 0. *)
let probe ?epochs ?lr rng emb ~train ~test : report =
  let rows =
    List.filter_map
      (fun task ->
        let tr = task_data emb task train in
        let te = task_data emb task test in
        if tr = [] || te = [] then None
        else begin
          let classes = Probing.classes task in
          let predict = fit_readout ?epochs ?lr rng ~classes tr in
          let hits =
            List.fold_left (fun acc (v, c) -> if predict v = c then acc + 1 else acc) 0 te
          in
          let counts = Array.make classes 0 in
          List.iter (fun (_, c) -> counts.(c) <- counts.(c) + 1) tr;
          let maj_class = Tensor.argmax (Array.map float_of_int counts) in
          let maj_hits =
            List.fold_left (fun acc (_, c) -> if c = maj_class then acc + 1 else acc) 0 te
          in
          let n_te = List.length te in
          Some
            {
              r_task = task;
              r_train = List.length tr;
              r_test = n_te;
              r_majority = float_of_int maj_hits /. float_of_int n_te;
              r_accuracy = float_of_int hits /. float_of_int n_te;
            }
        end)
      Probing.all_tasks
  in
  { model = emb.e_name; rows }

(** Render reports as one aligned table (also the CI artifact format). *)
let render (reports : report list) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%-18s %-8s %6s %6s %9s %9s\n" "task" "model" "train" "test"
       "majority" "accuracy");
  List.iter
    (fun r ->
      List.iter
        (fun row ->
          Buffer.add_string b
            (Printf.sprintf "%-18s %-8s %6d %6d %9.3f %9.3f\n"
               (Probing.task_name row.r_task) r.model row.r_train row.r_test
               row.r_majority row.r_accuracy))
        r.rows)
    reports;
  Buffer.contents b
