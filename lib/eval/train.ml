(** The shared training loop.

    Every model (LiGer, its ablations, DYPRO, code2vec, code2seq) is wrapped
    in a {!model} record and trained identically: Adam, gradient clipping,
    shuffled epochs, validation after each epoch, and the best-validation
    parameters restored at the end — the standard protocol at this scale.
    The paper trains with Adam at default rates on V100s; we keep the
    optimizer family and shrink everything else. *)

open Liger_tensor
open Liger_core
module Obs = Liger_obs.Obs
module Dynamics = Liger_obs.Dynamics
module Health = Liger_obs.Health

type prediction = Subtokens of string list | Class of int

(** Optional mini-batch hooks (the flat-Bigarray batched engine).  When
    present and [options.batch_size > 1], {!fit} takes one optimizer step
    per chunk on the summed-then-averaged per-example losses, and
    {!predictions} runs chunked batched forward passes. *)
type batched = {
  train_loss_batch : Batched.tape -> Common.enc_example array -> Batched.node;
      (* G examples -> G×1 per-example losses *)
  predict_batch : Common.enc_example array -> prediction array;
}

type model = {
  name : string;
  store : Param.store;
  train_loss : Autodiff.tape -> Common.enc_example -> Autodiff.node;
  predict : Common.enc_example -> prediction;
  batched : batched option;
  embed : (Common.enc_example -> float array) option;
      (* program-embedding extractor; enables the dynamics drift probe
         (models without a single-vector embedding leave it [None]) *)
}

type options = {
  epochs : int;
  lr : float;
  clip : float;
  log : bool;
  eval_every : int;  (* validate every k epochs (and always the last one) *)
  batch_size : int;  (* > 1 uses the batched hooks when the model has them *)
}

let default_options =
  { epochs = 8; lr = 3e-3; clip = 5.0; log = false; eval_every = 1; batch_size = 1 }

(* snapshot / restore parameter values (best-epoch selection) *)
let snapshot store =
  Param.fold store ~init:[] (fun acc p ->
      (p.Param.name, Tensor.to_array p.Param.value) :: acc)

let restore store snap =
  List.iter
    (fun (name, data) ->
      let p = Param.find store name in
      Tensor.blit_from_array data p.Param.value)
    snap

let gold_of (ex : Common.enc_example) =
  match ex.Common.label with
  | Common.Name n -> Subtokens (Liger_lang.Subtoken.split n)
  | Common.Class c -> Class c

(* split [l] into arrays of at most [n] elements, preserving order *)
let chunk_list n l =
  let arr = Array.of_list l in
  let len = Array.length arr in
  let rec go off acc =
    if off >= len then List.rev acc
    else
      let k = Stdlib.min n (len - off) in
      go (off + k) (Array.sub arr off k :: acc)
  in
  go 0 []

(** Prediction/gold pairs over a split, in input order.  Per-example
    predictions are independent forward passes (each builds and discards
    its own tape) run on the {!Liger_parallel.Parallel} pool; with
    [?batch > 1] and a model that has batched hooks, chunks of [batch]
    examples run one batched forward pass each instead. *)
let predictions ?(batch = 1) model examples =
  Obs.Span.with_ ~name:"train.predictions"
    ~args:(fun () ->
      [ ("model", model.name); ("n", string_of_int (List.length examples)) ])
  @@ fun () ->
  match model.batched with
  | Some b when batch > 1 ->
      chunk_list batch examples
      |> Liger_parallel.Parallel.map_list (fun chunk ->
             Array.to_list
               (Array.map2
                  (fun p ex -> (p, gold_of ex))
                  (b.predict_batch chunk) chunk))
      |> List.concat
  | _ ->
      Liger_parallel.Parallel.map_list
        (fun (ex : Common.enc_example) -> (model.predict ex, gold_of ex))
        examples

(** The scalar score used for model selection: sub-token F1 for naming,
    accuracy for classification. *)
let score ?batch model examples =
  let pairs = predictions ?batch model examples in
  let names =
    List.filter_map
      (function Subtokens p, Subtokens a -> Some (p, a) | _ -> None)
      pairs
  in
  let classes =
    List.filter_map (function Class p, Class a -> Some (p, a) | _ -> None) pairs
  in
  match (names, classes) with
  | [], [] -> 0.0
  | [], cs -> Metrics.accuracy cs
  | ns, _ -> (Metrics.name_prf ns).Metrics.f1

type history = {
  train_losses : float list;  (* mean loss per epoch *)
  valid_scores : float list;
  epoch_times : float list;   (* wall-clock seconds per epoch *)
  best_epoch : int;
  skipped_steps : int;  (* updates skipped because gradients were non-finite *)
  vacuous_best : bool;  (* [valid] was empty: every epoch scored 0.0 and tied,
                           so best-epoch selection carried no information *)
}

let fit_inner ~options rng model ~train ~valid =
  Obs.Span.with_ ~name:"train.fit" ~args:(fun () -> [ ("model", model.name) ])
  @@ fun () ->
  let opt = Optimizer.adam ~lr:options.lr () in
  let examples = Array.of_list train in
  let vacuous = valid = [] in
  if vacuous then
    (* not gated on options.log: silently "selecting" among all-zero tied
       scores is exactly the failure mode worth hearing about *)
    Logs.warn (fun m ->
        m "[%s] validation set is empty; best-epoch selection is vacuous (the \
           last evaluated epoch is kept)"
          model.name);
  (* the untrained model's score is the selection baseline; with no
     validation data there is nothing to measure, so pin it to 0.0 rather
     than calling [score] on an empty list *)
  let best = ref (if vacuous then 0.0 else score ~batch:options.batch_size model valid) in
  let best_snap = ref (snapshot model.store) in
  let best_epoch = ref 0 in
  let losses = ref [] and scores = ref [] and times = ref [] in
  let skipped = ref 0 in
  (* dynamics drift probe: a frozen set of up to 16 examples (validation
     preferred — the probe should not move just because it was trained on)
     re-embedded after every epoch to measure embedding-space drift *)
  let probe =
    match model.embed with
    | Some _ when Dynamics.on () ->
        let src = if vacuous then train else valid in
        Array.of_list (List.filteri (fun i _ -> i < 16) src)
    | _ -> [||]
  in
  let observe_probe () =
    match model.embed with
    | Some embed when Dynamics.on () && Array.length probe >= 2 ->
        Dynamics.observe_embeddings ~id:model.name (Array.map embed probe)
    | _ -> ()
  in
  (* leave a breadcrumb per firing health rule so a postmortem shows when
     training went bad, not just that it did *)
  let record_health epoch =
    if Dynamics.on () && Obs.Metrics.enabled () then
      List.iter
        (fun (f : Health.finding) ->
          Liger_obs.Recorder.note
            ~detail:
              (Printf.sprintf "epoch %d %s: %s" epoch f.Health.subject f.Health.detail)
            ("health." ^ f.Health.rule))
        (Health.check_snapshot (Liger_obs.Metrics.snapshot ()))
  in
  for epoch = 1 to options.epochs do
    Obs.Span.with_ ~name:"train.epoch"
      ~args:(fun () ->
        [ ("model", model.name); ("epoch", string_of_int epoch) ])
    @@ fun () ->
    Obs.failpoint "train.epoch";
    let t0 = Unix.gettimeofday () in
    Rng.shuffle rng examples;
    let total = ref 0.0 in
    let clip_and_step () =
      let norm = Optimizer.clip_grads model.store ~max_norm:options.clip in
      if Float.is_finite norm then begin
        Obs.Metrics.observe "train.grad_norm" norm;
        Optimizer.step opt model.store
      end
      else begin
        (* clip_grads zeroed the poisoned gradients; skip the update so a
           single NaN cannot reach Adam's moment estimates *)
        incr skipped;
        Obs.Metrics.incr "train.skipped_steps";
        if options.log then
          Logs.warn (fun m ->
              m "[%s] epoch %d: non-finite gradient norm, step skipped"
                model.name epoch)
      end
    in
    (match model.batched with
    | Some b when options.batch_size > 1 ->
        (* one Adam step per chunk on the mean of the per-example losses;
           [total] still accumulates per-example losses so the reported
           mean loss has the same meaning as the per-example path *)
        let n = Array.length examples in
        let bs = options.batch_size in
        let off = ref 0 in
        while !off < n do
          let len = Stdlib.min bs (n - !off) in
          let chunk = Array.sub examples !off len in
          off := !off + len;
          let btape = Batched.tape () in
          let per_ex = b.train_loss_batch btape chunk in
          Obs.Metrics.gauge "train.tape_nodes" (float_of_int (Batched.length btape));
          let v = Batched.value per_ex in
          for g = 0 to len - 1 do
            total := !total +. Tensor.get v g 0
          done;
          let mean =
            Batched.scale btape
              (1.0 /. float_of_int len)
              (Batched.sum_all btape per_ex)
          in
          Batched.backward btape mean;
          clip_and_step ()
        done
    | _ ->
        Array.iter
          (fun ex ->
            let tape = Autodiff.tape () in
            let loss = model.train_loss tape ex in
            total := !total +. Autodiff.scalar_value loss;
            Autodiff.backward tape loss;
            clip_and_step ())
          examples);
    let mean_loss =
      if Array.length examples = 0 then 0.0
      else !total /. float_of_int (Array.length examples)
    in
    losses := mean_loss :: !losses;
    let dt = Unix.gettimeofday () -. t0 in
    times := dt :: !times;
    Obs.Metrics.fadd "train.epoch_seconds" ~labels:[ ("model", model.name) ] dt;
    Obs.Metrics.gauge "train.loss" ~labels:[ ("model", model.name) ] mean_loss;
    (* a NaN/inf *loss* means the forward pass itself is poisoned (the
       skipped-step guard only covers non-finite gradients under a finite
       loss); training past it would silently optimize garbage, so abort —
       the wrapper in [fit] dumps the flight recorder on the way out *)
    if not (Float.is_finite mean_loss) then
      failwith
        (Printf.sprintf "Train.fit: non-finite training loss (%s, epoch %d)" model.name
           epoch);
    (* throughput gauges (latest epoch wins): examples/s, sub-tokens/s over
       the naming labels, and a mean-epoch-time ETA for the remaining work *)
    if Obs.Metrics.enabled () then begin
      let labels = [ ("model", model.name) ] in
      let n = Array.length examples in
      (if dt > 0.0 then begin
         let subtoks =
           Array.fold_left
             (fun acc (ex : Common.enc_example) ->
               match ex.Common.label with
               | Common.Name name -> acc + List.length (Liger_lang.Subtoken.split name)
               | Common.Class _ -> acc)
             0 examples
         in
         Obs.Metrics.gauge "train.examples_per_second" ~labels (float_of_int n /. dt);
         Obs.Metrics.gauge "train.subtokens_per_second" ~labels
           (float_of_int subtoks /. dt)
       end);
      let done_epochs = List.length !times in
      let mean_epoch =
        List.fold_left ( +. ) 0.0 !times /. float_of_int (max 1 done_epochs)
      in
      Obs.Metrics.gauge "train.eta_seconds" ~labels
        (mean_epoch *. float_of_int (options.epochs - epoch))
    end;
    observe_probe ();
    record_health epoch;
    if epoch mod options.eval_every = 0 || epoch = options.epochs then begin
      let v = if vacuous then 0.0 else score ~batch:options.batch_size model valid in
      scores := v :: !scores;
      Obs.Metrics.gauge "train.valid_score" ~labels:[ ("model", model.name) ] v;
      if options.log then
        Logs.info (fun m ->
            m "[%s] epoch %d: loss %.4f valid %.4f (%.2fs)" model.name epoch
              mean_loss v dt);
      (* >= not >: [best] starts at the untrained model's score, so on a
         validation plateau a strict comparison would keep the untrained
         snapshot and discard every trained epoch *)
      if v >= !best then begin
        best := v;
        best_snap := snapshot model.store;
        best_epoch := epoch
      end
    end
  done;
  restore model.store !best_snap;
  {
    train_losses = List.rev !losses;
    valid_scores = List.rev !scores;
    epoch_times = List.rev !times;
    best_epoch = !best_epoch;
    skipped_steps = !skipped;
    vacuous_best = vacuous;
  }

(** Train [model] on [train], selecting the epoch with the best score on
    [valid].

    Any exception escaping the training loop (including the non-finite
    loss abort and injected failpoints) dumps the flight recorder to the
    run directory before propagating, so a crashed run always leaves its
    last spans and a final metrics snapshot behind. *)
let fit ?(options = default_options) rng model ~train ~valid =
  try fit_inner ~options rng model ~train ~valid
  with e ->
    Obs.crash_dump ~reason:("train.fit: " ^ Printexc.to_string e) ();
    raise e

(* ---------------- evaluation summaries ---------------- *)

type naming_result = { prf : Metrics.prf }
type classify_result = { acc : float; f1 : float }

let eval_naming ?batch model examples =
  let pairs =
    predictions ?batch model examples
    |> List.filter_map (function Subtokens p, Subtokens a -> Some (p, a) | _ -> None)
  in
  { prf = Metrics.name_prf pairs }

let eval_classify ?batch model examples =
  let pairs =
    predictions ?batch model examples
    |> List.filter_map (function Class p, Class a -> Some (p, a) | _ -> None)
  in
  { acc = Metrics.accuracy pairs; f1 = Metrics.macro_f1 pairs }
