(** Experiment runners: one per table and figure of the paper's evaluation.

    Every experiment reduces to training one model wrapper on one corpus
    under one {e view} (how many symbolic/concrete traces are visible) and
    evaluating on the test split — so all runners share {!run}, and a cache
    keyed on (corpus, model, view) lets figures reuse the full-view points
    that the tables already trained.

    Scale: [`Quick] (default; minutes on a laptop) or [`Full] (bigger
    corpora, wider sweeps), selected by the [LIGER_SCALE] environment
    variable. *)

open Liger_tensor
open Liger_core
open Liger_dataset

type scale = {
  label : string;
  med_n : int;        (* generated methods, Java-med analogue *)
  large_n : int;      (* generated methods, Java-large analogue *)
  coset_n : int;      (* clean programs, COSET analogue *)
  dim : int;
  epochs : int;
  enc : Common.enc_config;
  concrete_points : int list;  (* descending; head = full setting *)
  symbolic_points : int list;  (* descending; head = full setting *)
  symbolic_concrete : int;     (* concrete traces used during path reduction *)
  ablation_on_large : bool;    (* run Figures 8-11 on Java-large too *)
}

let quick =
  {
    label = "quick";
    med_n = 480;
    large_n = 640;
    coset_n = 220;
    dim = 20;
    epochs = 10;
    enc = { Common.default_enc_config with Common.max_paths = 4; max_concrete = 3; max_steps = 16 };
    concrete_points = [ 3; 2; 1 ];
    symbolic_points = [ 4; 2; 1 ];
    symbolic_concrete = 3;
    ablation_on_large = false;
  }

let full =
  {
    label = "full";
    med_n = 900;
    large_n = 1500;
    coset_n = 600;
    dim = 24;
    epochs = 16;
    enc = { Common.default_enc_config with Common.max_paths = 6; max_concrete = 5; max_steps = 24 };
    concrete_points = [ 5; 4; 3; 2; 1 ];
    symbolic_points = [ 6; 5; 4; 3; 2; 1 ];
    symbolic_concrete = 3;
    ablation_on_large = true;
  }

let scale_of_env () =
  match Sys.getenv_opt "LIGER_SCALE" with
  | Some "full" -> full
  | _ -> quick

(* ---------------- context: corpora + run cache ---------------- *)

type model_kind =
  | Liger of { static : bool; dynamic : bool; attention : bool }
  | Liger_vanilla_f3  (* DESIGN.md deviation 1: paper-faithful vanilla trace RNN *)
  | Dypro_k
  | Code2vec_k
  | Code2seq_k

let kind_name = function
  | Liger { static = true; dynamic = true; attention = true } -> "LiGer"
  | Liger { static = false; _ } -> "LiGer-nostatic"
  | Liger { dynamic = false; _ } -> "LiGer-nodynamic"
  | Liger { attention = false; _ } -> "LiGer-noattention"
  | Liger_vanilla_f3 -> "LiGer-vanillaF3"
  | Dypro_k -> "DYPRO"
  | Code2vec_k -> "code2vec"
  | Code2seq_k -> "code2seq"

type run_result = {
  model : string;
  dataset : string;
  view : Common.view;
  naming : Train.naming_result option;
  classify : Train.classify_result option;
  static_attention : float;  (* NaN when not applicable *)
  avg_executions : float;    (* per test method under the view *)
  avg_paths : float;
}

type ctx = {
  scale : scale;
  med : Pipeline.corpus Lazy.t;
  large : Pipeline.corpus Lazy.t;
  coset : Pipeline.corpus Lazy.t;
  cache : (string, run_result) Hashtbl.t;
  mutable progress : string -> unit;
}

let create_ctx ?(scale = scale_of_env ()) () =
  {
    scale;
    med =
      lazy
        (Pipeline.build_naming ~enc_config:scale.enc (Rng.create 1001) ~name:"Java-med*"
           ~n:scale.med_n);
    large =
      lazy
        (Pipeline.build_naming ~enc_config:scale.enc (Rng.create 2002) ~name:"Java-large*"
           ~n:scale.large_n);
    coset = lazy (Pipeline.build_coset ~enc_config:scale.enc (Rng.create 3003) ~n:scale.coset_n);
    cache = Hashtbl.create 64;
    progress = ignore;
  }

let corpus_of ctx = function
  | `Med -> Lazy.force ctx.med
  | `Large -> Lazy.force ctx.large
  | `Coset -> Lazy.force ctx.coset

let dataset_name = function `Med -> "Java-med*" | `Large -> "Java-large*" | `Coset -> "COSET*"

let task_of ctx = function
  | `Coset -> Liger_model.Classify Coset.n_classes
  | _ ->
      ignore ctx;
      Liger_model.Naming

(* mean fusion-attention weight on the static dimension over a split *)
let measure_attention model view examples =
  let sum = ref 0.0 and n = ref 0 in
  List.iter
    (fun ex ->
      let tape = Autodiff.tape () in
      let _, _, stats = Liger_model.encode model tape ~view ex in
      Autodiff.discard tape;
      let w = Liger_model.mean_static_weight stats in
      if Float.is_finite w then begin
        sum := !sum +. w;
        incr n
      end)
    examples;
  if !n = 0 then Float.nan else !sum /. float_of_int !n

let view_stats view examples =
  match examples with
  | [] -> (0.0, 0.0)
  | _ ->
      let execs = ref 0 and paths = ref 0 in
      List.iter
        (fun ex ->
          execs := !execs + Common.executions_in_view view ex;
          paths := !paths + Array.length (Common.select_traces view ex))
        examples;
      let n = float_of_int (List.length examples) in
      (float_of_int !execs /. n, float_of_int !paths /. n)

(* Views are normalized against the encoding caps so a sweep's "full"
   endpoint hits the same cache entry as the tables' full-view run. *)
let normalize_view ctx view =
  {
    Common.n_paths = min view.Common.n_paths ctx.scale.enc.Common.max_paths;
    n_concrete = min view.Common.n_concrete ctx.scale.enc.Common.max_concrete;
  }

let key_of ~corpus ~kind ~view =
  Printf.sprintf "%s/%s/p%d/c%d" (dataset_name corpus) (kind_name kind)
    view.Common.n_paths view.Common.n_concrete

(** Train+evaluate one (corpus, model, view) point, uncached; [view] must be
    normalized and the corpus forced.  Everything this touches is private to
    the call (model, optimizer state, its own generator seeded from the
    key), so independent points run in parallel — see {!sweep}. *)
let compute ctx ~corpus ~kind ~view =
  let key = key_of ~corpus ~kind ~view in
  Liger_obs.Obs.Span.with_ ~name:"experiment.point"
    ~args:(fun () -> [ ("key", key) ])
  @@ fun () ->
  ctx.progress (Printf.sprintf "training %s" key);
  let c = corpus_of ctx corpus in
      let task = task_of ctx corpus in
      let rng = Rng.create (Hashtbl.hash key) in
      let options =
        { Train.default_options with Train.epochs = ctx.scale.epochs; eval_every = 2 }
      in
      let dim = ctx.scale.dim in
      let wrapper, liger_model =
        match kind with
        | Liger { static; dynamic; attention } ->
            let config =
              {
                Liger_model.default_config with
                Liger_model.dim;
                use_static = static;
                use_dynamic = dynamic;
                use_attention = attention;
              }
            in
            let w, m = Zoo.liger ~config ~view ~vocab:c.Pipeline.vocab task in
            (w, Some m)
        | Liger_vanilla_f3 ->
            let config =
              {
                Liger_model.default_config with
                Liger_model.dim;
                trace_cell = Liger_nn.Rnn_cell.Vanilla;
              }
            in
            let w, m = Zoo.liger ~config ~view ~vocab:c.Pipeline.vocab task in
            ({ w with Train.name = "LiGer-vanillaF3" }, Some m)
        | Dypro_k -> (fst (Zoo.dypro ~dim ~view ~vocab:c.Pipeline.vocab task), None)
        | Code2vec_k -> (Zoo.code2vec ~dim ~train:c.Pipeline.train task, None)
        | Code2seq_k -> (Zoo.code2seq ~dim ~train:c.Pipeline.train task, None)
      in
      let history =
        Train.fit ~options rng wrapper ~train:c.Pipeline.train ~valid:c.Pipeline.valid
      in
      if history.Train.vacuous_best then
        ctx.progress
          (Printf.sprintf "%s: empty validation split, best-epoch selection vacuous" key);
      let naming, classify =
        match task with
        | Liger_model.Naming -> (Some (Train.eval_naming wrapper c.Pipeline.test), None)
        | Liger_model.Classify _ -> (None, Some (Train.eval_classify wrapper c.Pipeline.test))
      in
      let static_attention =
        match liger_model with
        | Some m when m.Liger_model.config.Liger_model.use_static
                      && m.Liger_model.config.Liger_model.use_dynamic ->
            measure_attention m view c.Pipeline.test
        | _ -> Float.nan
      in
      let avg_executions, avg_paths = view_stats view c.Pipeline.test in
      {
        model = kind_name kind;
        dataset = dataset_name corpus;
        view;
        naming;
        classify;
        static_attention;
        avg_executions;
        avg_paths;
      }

(** Cached {!compute}: the tables and figures share full-view points through
    this.  The cache is only touched from the submitting domain. *)
let run ctx ~corpus ~kind ~view =
  let view = normalize_view ctx view in
  let key = key_of ~corpus ~kind ~view in
  match Hashtbl.find_opt ctx.cache key with
  | Some r ->
      Liger_obs.Metrics.incr "experiments.cache_hits";
      r
  | None ->
      Liger_obs.Metrics.incr "experiments.cache_misses";
      let r = compute ctx ~corpus ~kind ~view in
      Hashtbl.replace ctx.cache key r;
      r

let full_view = Common.full_view

let concrete_view n = { Common.n_paths = max_int; n_concrete = n }
let symbolic_view ctx n = { Common.n_paths = n; n_concrete = ctx.scale.symbolic_concrete }

(* ---------------- tables ---------------- *)

(** Table 1: dataset statistics (original vs filtered, with reasons). *)
let table1 ctx =
  [ (corpus_of ctx `Med).Pipeline.stats; (corpus_of ctx `Large).Pipeline.stats ]

(** Table 2: the four models on both naming corpora. *)
let table2 ctx =
  List.map
    (fun corpus ->
      ( dataset_name corpus,
        List.map
          (fun kind -> run ctx ~corpus ~kind ~view:full_view)
          [ Code2vec_k; Code2seq_k; Dypro_k;
            Liger { static = true; dynamic = true; attention = true } ] ))
    [ `Med; `Large ]

(** Table 3: DYPRO vs LiGer on the COSET analogue. *)
let table3 ctx =
  List.map
    (fun kind -> run ctx ~corpus:`Coset ~kind ~view:full_view)
    [ Dypro_k; Liger { static = true; dynamic = true; attention = true } ]

(* ---------------- figures ---------------- *)

type series = { series_name : string; points : (float * run_result) list }
(* x = number of concrete traces (per path) or symbolic traces, as labeled *)

let score_of r =
  match (r.naming, r.classify) with
  | Some n, _ -> 100.0 *. n.Train.prf.Metrics.f1
  | _, Some c -> 100.0 *. c.Train.acc
  | _ -> Float.nan

(* A sweep's points are independent training runs, so the ones not already
   cached train in parallel on the {!Liger_parallel.Parallel} pool.  The
   corpus is forced and the cache is read and written only on the
   submitting domain (workers see an immutable corpus and write nothing
   shared); each point seeds its own generator from its key inside
   {!compute}, so results are identical at any job count. *)
let sweep ctx ~corpus ~kind ~views =
  let views = List.map (fun (x, view) -> (x, normalize_view ctx view)) views in
  ignore (corpus_of ctx corpus);
  let missing =
    List.sort_uniq compare
      (List.filter_map
         (fun (_, view) ->
           if Hashtbl.mem ctx.cache (key_of ~corpus ~kind ~view) then None else Some view)
         views)
  in
  Liger_obs.Metrics.add "experiments.cache_misses" (List.length missing);
  let results =
    Liger_parallel.Parallel.map_list (fun view -> compute ctx ~corpus ~kind ~view) missing
  in
  List.iter2
    (fun view r -> Hashtbl.replace ctx.cache (key_of ~corpus ~kind ~view) r)
    missing results;
  (* collect from the cache directly: counting these lookups through [run]
     would book the points just trained above as cache hits *)
  List.map
    (fun (x, view) ->
      if not (List.mem view missing) then
        Liger_obs.Metrics.incr "experiments.cache_hits";
      (x, Hashtbl.find ctx.cache (key_of ~corpus ~kind ~view)))
    views

let concrete_sweep ctx ~corpus ~kind =
  let points =
    List.map (fun n -> (float_of_int n, concrete_view n)) ctx.scale.concrete_points
  in
  { series_name = kind_name kind; points = sweep ctx ~corpus ~kind ~views:points }

let symbolic_sweep ctx ~corpus ~kind =
  let points =
    List.map (fun n -> (float_of_int n, symbolic_view ctx n)) ctx.scale.symbolic_points
  in
  { series_name = kind_name kind; points = sweep ctx ~corpus ~kind ~views:points }

let liger_full = Liger { static = true; dynamic = true; attention = true }
let liger_nostatic = Liger { static = false; dynamic = true; attention = true }
let liger_nodynamic = Liger { static = true; dynamic = false; attention = true }
let liger_noattention = Liger { static = true; dynamic = true; attention = false }

(** Figure 6 (a/b: concrete reduction; c/d: symbolic reduction with line
    coverage preserved), LiGer vs DYPRO on both corpora. *)
let fig6 ctx =
  List.map
    (fun corpus ->
      ( dataset_name corpus,
        `Concrete
          [ concrete_sweep ctx ~corpus ~kind:liger_full;
            concrete_sweep ctx ~corpus ~kind:Dypro_k ],
        `Symbolic
          [ symbolic_sweep ctx ~corpus ~kind:liger_full;
            symbolic_sweep ctx ~corpus ~kind:Dypro_k ] ))
    [ `Med; `Large ]

(** Figure 7: the same two reductions on the COSET task. *)
let fig7 ctx =
  ( `Concrete
      [ concrete_sweep ctx ~corpus:`Coset ~kind:liger_full;
        concrete_sweep ctx ~corpus:`Coset ~kind:Dypro_k ],
    `Symbolic
      [ symbolic_sweep ctx ~corpus:`Coset ~kind:liger_full;
        symbolic_sweep ctx ~corpus:`Coset ~kind:Dypro_k ] )

let ablation_corpora ctx =
  if ctx.scale.ablation_on_large then [ `Med; `Large ] else [ `Med ]

(** Figure 8: LiGer without the static dimension. *)
let fig8 ctx =
  List.map
    (fun corpus ->
      ( dataset_name corpus,
        `Concrete
          [ concrete_sweep ctx ~corpus ~kind:liger_nostatic;
            concrete_sweep ctx ~corpus ~kind:Dypro_k ],
        `Symbolic
          [ symbolic_sweep ctx ~corpus ~kind:liger_nostatic;
            symbolic_sweep ctx ~corpus ~kind:Dypro_k ] ))
    (ablation_corpora ctx)

(** Figure 9: LiGer without the dynamic dimension, symbolic reduction. *)
let fig9 ctx =
  List.map
    (fun corpus ->
      ( dataset_name corpus,
        [ symbolic_sweep ctx ~corpus ~kind:liger_nodynamic;
          symbolic_sweep ctx ~corpus ~kind:Dypro_k ] ))
    (ablation_corpora ctx)

(** Figure 10: LiGer without attention (uniform fusion weights). *)
let fig10 ctx =
  List.map
    (fun corpus ->
      ( dataset_name corpus,
        `Concrete
          [ concrete_sweep ctx ~corpus ~kind:liger_noattention;
            concrete_sweep ctx ~corpus ~kind:Dypro_k ],
        `Symbolic
          [ symbolic_sweep ctx ~corpus ~kind:liger_noattention;
            symbolic_sweep ctx ~corpus ~kind:Dypro_k ] ))
    (ablation_corpora ctx)

(** Figure 11: all ablation configurations overlaid (symbolic reduction —
    the panel where the configurations separate most). *)
let fig11 ctx =
  List.map
    (fun corpus ->
      ( dataset_name corpus,
        List.map
          (fun kind -> symbolic_sweep ctx ~corpus ~kind)
          [ liger_full; liger_nostatic; liger_nodynamic; liger_noattention; Dypro_k ] ))
    (ablation_corpora ctx)

(** Design-choice ablations called out in DESIGN.md: the GRU trace RNN
    (our deviation) against the paper's vanilla RNN, at matched capacity on
    Java-med. *)
let design_ablation ctx =
  [ run ctx ~corpus:`Med ~kind:liger_full ~view:full_view;
    run ctx ~corpus:`Med ~kind:Liger_vanilla_f3 ~view:full_view ]

(** §6.1.2's attention inspection: the mean fusion weight on the symbolic
    dimension at convergence, across the concrete-reduction sweep (the paper
    reports ~0.598, stable under reduction). *)
let attention_report ctx =
  List.map
    (fun n ->
      let r = run ctx ~corpus:`Med ~kind:liger_full ~view:(concrete_view n) in
      (n, r.static_attention))
    ctx.scale.concrete_points
