(** The COSET analogue (§6.2): programs solving ten coding problems with a
    variety of algorithms; the task is to classify which algorithm a program
    implements.

    Programs are template variants expanded through the mutation engine.
    Following the paper's cleaning step ("we remove programs that fail to
    pass all test cases"), each generated program is differentially tested
    against its pristine template on random inputs and dropped on any
    disagreement or crash; a small injected-bug rate gives that filter work
    to do. *)

open Liger_lang
open Liger_tensor

type item = {
  meth : Ast.meth;
  problem : string;
  algo : string;
  class_id : int;
}

(** Algorithm classes over the ten COSET problems, in stable order; class
    ids index this list. *)
let classes : string list =
  Templates.coset_problems
  |> List.concat_map (fun p ->
         Templates.by_problem p
         |> List.concat_map (fun (t : Templates.t) ->
                List.map (fun (v : Templates.variant) -> v.Templates.algo) t.Templates.variants))
  |> List.sort_uniq compare

let class_id algo =
  let rec idx i = function
    | [] -> invalid_arg ("Coset.class_id: unknown algorithm " ^ algo)
    | c :: rest -> if c = algo then i else idx (i + 1) rest
  in
  idx 0 classes

let n_classes = List.length classes

(* Inject a data-flow bug: reverse one randomly chosen comparison.  Always
   fires when any comparison exists. *)
let inject_bug rng (m : Ast.meth) =
  let is_cmp = function
    | Ast.Binop ((Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge), _, _) -> true
    | _ -> false
  in
  let sites = ref 0 in
  let (_ : Ast.meth) =
    Ast.map_meth ~fexpr:(fun e -> if is_cmp e then incr sites; e) ~fstmt:Fun.id m
  in
  let target = if !sites = 0 then -1 else Rng.int rng !sites in
  let seen = ref 0 in
  let fexpr e =
    match e with
    | Ast.Binop ((Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge) as op, a, b) ->
        let k = !seen in
        incr seen;
        if k <> target then e
        else
          let op' =
            match op with
            | Ast.Lt -> Ast.Ge
            | Ast.Le -> Ast.Gt
            | Ast.Gt -> Ast.Le
            | _ -> Ast.Lt
          in
          Ast.Binop (op', a, b)
    | e -> e
  in
  Ast.map_meth ~fexpr ~fstmt:Fun.id m

let outcomes_agree a b =
  match (a, b) with
  | Interp.Returned x, Interp.Returned y -> Value.equal x y
  | Interp.Timeout, Interp.Timeout -> true
  | Interp.Crashed _, Interp.Crashed _ -> true
  | _ -> false

(** Differential check against the pristine template variant on [trials]
    random inputs — the "passes all test cases" gate. *)
let passes_tests ?(trials = 12) rng ~reference (m : Ast.meth) =
  let ok = ref true in
  for _ = 1 to trials do
    if !ok then begin
      let args = Liger_testgen.Randgen.args rng reference in
      if not (outcomes_agree (Interp.run reference args) (Interp.run m args)) then
        ok := false
    end
  done;
  !ok

(** Generate one candidate program (possibly buggy). *)
let generate_item ?(p_buggy = 0.06) rng =
  let problem = Rng.choose_list rng Templates.coset_problems in
  let tpl = Rng.choose_list rng (Templates.by_problem problem) in
  let variant = Rng.choose_list rng tpl.Templates.variants in
  let reference = Parser.method_of_string variant.Templates.source in
  let meth = Mutate.variant rng reference in
  let meth = if Rng.bernoulli rng p_buggy then inject_bug rng meth else meth in
  (reference, { meth; problem; algo = variant.Templates.algo; class_id = class_id variant.Templates.algo })

(** Generate [n] {e clean} programs: candidates failing the differential
    test are discarded and regenerated, and the discard count is returned
    (the paper's 85K -> 63.5K reduction).

    Candidates are drawn sequentially (AST construction allocates statement
    ids from a shared counter), then differentially tested in parallel —
    each test with its own generator split in candidate order, so batches
    and verdicts are identical at any job count.  Candidates past the [n]th
    keeper in the final batch are discarded without counting, mirroring the
    one-at-a-time loop that would never have generated them. *)
let generate rng ~n =
  let kept = ref [] in
  let n_kept = ref 0 in
  let dropped = ref 0 in
  while !n_kept < n do
    let batch_size = min 64 (max 8 (n - !n_kept)) in
    let batch =
      (* explicit loop: the draws must consume [rng] in candidate order *)
      let acc = ref [] in
      for _ = 1 to batch_size do
        let reference, item = generate_item rng in
        acc := (reference, item, Rng.split rng) :: !acc
      done;
      List.rev !acc
    in
    let verdicts =
      Liger_parallel.Parallel.map_list
        (fun (reference, item, trng) ->
          Liger_obs.Obs.Span.with_ ~name:"coset.check"
            ~args:(fun () -> [ ("algo", item.algo) ])
            (fun () ->
              ( item,
                Typecheck.is_well_typed item.meth && passes_tests trng ~reference item.meth )))
        batch
    in
    List.iter
      (fun (item, ok) ->
        if !n_kept < n then
          if ok then begin
            Liger_obs.Metrics.incr "coset.kept";
            kept := item :: !kept;
            incr n_kept
          end
          else begin
            Liger_obs.Metrics.incr "coset.dropped";
            incr dropped
          end)
      verdicts
  done;
  (List.rev !kept, !dropped)

(** Uniform random split with the paper's proportions (roughly 72/14/14). *)
let split rng items =
  let arr = Array.of_list items in
  Rng.shuffle rng arr;
  let n = Array.length arr in
  let n_test = n * 14 / 100 and n_valid = n * 14 / 100 in
  let test = Array.to_list (Array.sub arr 0 n_test) in
  let valid = Array.to_list (Array.sub arr n_test n_valid) in
  let train = Array.to_list (Array.sub arr (n_test + n_valid) (n - n_test - n_valid)) in
  (train, valid, test)
