(** Synthetic corpus generation: the Java-med / Java-large analogues.

    Each generated method is a template variant pushed through the mutation
    engine (renaming, equivalent rewrites, loop conversion, dead code) and
    given a name drawn from the template's synonym set — so names correlate
    with semantics while surface syntax varies independently, the property
    that separates static from dynamic models.  A small fraction of methods
    is generated broken (type errors), trivially small, or flagged as
    depending on external packages, so the Table 1 filtering pipeline has
    its four reasons to fire. *)

open Liger_lang
open Liger_tensor
open Liger_testgen

type item = {
  candidate : Filter.candidate;
  template : Templates.t;
  algo : string;
  project : int;  (* splits are by project, following Alon et al.'s protocol *)
}

(** Knobs of corpus character; probabilities match the rough proportions the
    paper reports losing to each filter. *)
type profile = {
  p_broken : float;
  p_external : float;
  p_tiny : float;
  p_adversarial_rename : float;  (* uninformative identifiers (§6.1.1 Remarks) *)
  n_projects : int;
}

let default_profile =
  { p_broken = 0.04; p_external = 0.06; p_tiny = 0.05; p_adversarial_rename = 0.2; n_projects = 16 }

let parse_template src = Parser.method_of_string src

(* A deliberately ill-typed method (the "does not compile" bucket). *)
let broken_method rng =
  let bad = Ast.mk (Ast.Decl (Ast.Tint, "oops", Ast.Str "not an int")) in
  let body =
    [ Ast.mk (Ast.Decl (Ast.Tint, "x", Ast.Int (Rng.int rng 5)));
      bad;
      Ast.mk (Ast.Return (Ast.Var "x")) ]
  in
  { Ast.mname = "brokenHelper"; params = [ (Ast.Tint, "n") ]; ret = Ast.Tint; body }

(* A method below the size filter ("a couple of lines"). *)
let tiny_method rng =
  let name = Rng.choose rng [| "getValue"; "identity"; "passThrough" |] in
  {
    Ast.mname = name;
    params = [ (Ast.Tint, "x") ];
    ret = Ast.Tint;
    body = [ Ast.mk ~line:1 (Ast.Return (Ast.Var "x")) ];
  }

(* ---------------- per-project coding style ---------------- *)

(* Each project has a fixed syntactic style — loop idiom, identifier
   discipline, rewrite habits.  Splits are by project, so the test split
   contains styles never seen in training (as unseen GitHub projects do);
   this is what makes surface syntax a poor predictor of semantics across
   the split while execution traces remain style-invariant (the Figure 1
   phenomenon). *)
type style = {
  loop_p : float;  (* probability a for-loop is rewritten to while *)
  rename : [ `Keep | `Roles | `Letters | `Uninformative ];
  rewrite : bool;  (* equivalent-expression rewrites *)
  dead : float;    (* dead-code insertion probability *)
  defensive : float;  (* belt-and-braces guard insertion probability *)
}

let style_of_project project =
  let srng = Rng.create ((project * 7919) + 13) in
  {
    loop_p = Rng.choose srng [| 0.0; 0.25; 0.6; 1.0 |];
    rename = Rng.choose srng [| `Keep; `Roles; `Roles; `Letters; `Uninformative |];
    rewrite = Rng.bernoulli srng 0.7;
    dead = Rng.choose srng [| 0.0; 0.3; 0.6 |];
    defensive = Rng.choose srng [| 0.0; 0.35; 0.7 |];
  }

let apply_style rng style meth =
  let meth = if style.rewrite then Mutate.rewrite_exprs rng meth else meth in
  let meth = if style.loop_p > 0.0 then Mutate.for_to_while ~p:style.loop_p rng meth else meth in
  let meth = if Rng.bernoulli rng style.dead then Mutate.insert_dead_code rng meth else meth in
  let meth =
    if Rng.bernoulli rng style.defensive then Mutate.insert_defensive_guard rng meth else meth
  in
  match style.rename with
  | `Keep -> meth
  | `Roles -> Mutate.rename_random rng meth
  | `Letters -> Mutate.rename_letters rng meth
  | `Uninformative -> Mutate.rename_uninformative meth

(* Naming-style prefixes; each project prefers two of them, so the test
   projects contain full-name combinations never seen in training — the
   property that makes whole-name classification (code2vec) lag sub-token
   generation (code2seq and the dynamic models) on mined corpora. *)
let name_prefixes = [| "compute"; "get"; "find"; "calc"; "do"; "run"; "eval"; "make" |]

let project_prefixes project =
  let n = Array.length name_prefixes in
  let a = (project * 7) mod n in
  let b = (a + 1 + (project mod (n - 1))) mod n in
  (name_prefixes.(a), name_prefixes.(b))

let pick_name rng ~project (tpl : Templates.t) =
  (* canonical name dominates, as it does in mined corpora *)
  let base =
    if Rng.bernoulli rng 0.7 then tpl.Templates.base_name
    else Rng.choose_list rng tpl.Templates.synonyms
  in
  if Rng.bernoulli rng 0.65 then base
  else
    let pa, pb = project_prefixes project in
    let prefix = if Rng.bool rng then pa else pb in
    match Subtoken.split base with
    | first :: _ when first = prefix -> base  (* avoid computeComputeSum *)
    | subs -> Subtoken.join (prefix :: subs)

(** Generate one corpus item. *)
let generate_item ?(profile = default_profile) rng : item =
  let tpl = Rng.choose_list rng Templates.all in
  let project = Rng.int rng profile.n_projects in
  if Rng.bernoulli rng profile.p_broken then
    { candidate = { Filter.meth = broken_method rng; uses_external = false };
      template = tpl; algo = "broken"; project }
  else if Rng.bernoulli rng profile.p_tiny then
    { candidate = { Filter.meth = tiny_method rng; uses_external = false };
      template = tpl; algo = "tiny"; project }
  else begin
    let variant = Rng.choose_list rng tpl.Templates.variants in
    let meth = parse_template variant.Templates.source in
    let meth =
      if Rng.bernoulli rng profile.p_adversarial_rename then
        Mutate.rename_uninformative (Mutate.variant ~rename:false rng meth)
      else apply_style rng (style_of_project project) meth
    in
    let meth = { meth with Ast.mname = pick_name rng ~project tpl } in
    { candidate = { Filter.meth; uses_external = Rng.bernoulli rng profile.p_external };
      template = tpl; algo = variant.Templates.algo; project }
  end

(** Generate a corpus of [n] items. *)
let generate ?profile rng ~n = List.init n (fun _ -> generate_item ?profile rng)

(** Partition a corpus by project id into train/validation/test, mirroring
    the protocol where "methods in training, validation and test sets are
    extracted from distinct projects". *)
let split_by_project ?(profile = default_profile) items =
  let n = profile.n_projects in
  let test_cut = max 1 (n / 4) in
  let valid_cut = test_cut + max 1 (n / 5) in
  let bucket it =
    if it.project < test_cut then `Test
    else if it.project < valid_cut then `Valid
    else `Train
  in
  let train = List.filter (fun it -> bucket it = `Train) items in
  let valid = List.filter (fun it -> bucket it = `Valid) items in
  let test = List.filter (fun it -> bucket it = `Test) items in
  (train, valid, test)
