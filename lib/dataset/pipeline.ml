(** End-to-end dataset construction: generate methods, filter them, collect
    executions, group into blended traces, build the vocabulary from the
    training split, and intern every example.

    This is the whole front half of the paper's pipeline (JavaParser +
    instrumentation + Randoop + grouping), producing model-ready corpora. *)

open Liger_lang
open Liger_trace
open Liger_testgen
open Liger_core
open Liger_parallel
module Obs = Liger_obs.Obs

type corpus = {
  name : string;
  train : Common.enc_example list;
  valid : Common.enc_example list;
  test : Common.enc_example list;
  vocab : Vocab.t;
  stats : Stats.table;
}

let sizes c = (List.length c.train, List.length c.valid, List.length c.test)

(** Test-generation budget sized to the encoding caps: there is no point
    collecting more paths/executions than the encoder keeps. *)
let budget_for (cfg : Common.enc_config) =
  {
    Feedback.max_attempts = 250;
    target_paths = cfg.Common.max_paths + 2;
    per_path = cfg.Common.max_concrete;
    fuel = 8_000;
  }

(* Shared tail: blended traces in hand, build vocab from train, encode all.

   Vocabulary building is order-sensitive (interning assigns ids), so it
   stays sequential; encoding against the then-frozen vocabulary is pure
   and runs on the parallel pool.  Uids are reassigned sequentially in
   example order afterwards so the corpus is identical at any job count. *)
let assemble ~name ~enc_config ~stats splits =
  let vocab = Vocab.create () in
  let train_raw, valid_raw, test_raw = splits in
  Obs.Span.with_ ~name:"pipeline.vocab" (fun () ->
      List.iter
        (fun (_, blended, label) -> Common.register_example enc_config vocab blended label)
        train_raw;
      Vocab.freeze vocab);
  let encode_all raw =
    Obs.Span.with_ ~name:"pipeline.encode"
      ~args:(fun () -> [ ("examples", string_of_int (List.length raw)) ])
    @@ fun () ->
    Parallel.map_list
      (fun (meth, blended, label) -> Common.encode_example enc_config vocab meth blended label)
      raw
    |> List.map (fun ex -> { ex with Common.uid = Common.fresh_uid () })
  in
  {
    name;
    train = encode_all train_raw;
    valid = encode_all valid_raw;
    test = encode_all test_raw;
    vocab;
    stats;
  }

(** Build a method-name-prediction corpus of [n] generated methods. *)
let build_naming ?(enc_config = Common.default_enc_config) ?profile rng ~name ~n =
  Obs.Span.with_ ~name:"pipeline.build_naming" ~args:(fun () -> [ ("corpus", name) ])
  @@ fun () ->
  let items =
    Obs.Span.with_ ~name:"pipeline.generate" (fun () -> Javagen.generate ?profile rng ~n)
  in
  let train_items, valid_items, test_items = Javagen.split_by_project ?profile items in
  let budget = budget_for enc_config in
  let filter_split split_name items =
    let kept, fstats =
      Obs.Span.with_ ~name:"pipeline.filter" ~args:(fun () -> [ ("split", split_name) ])
        (fun () ->
          Filter.run ~budget rng
            (List.map (fun (it : Javagen.item) -> it.Javagen.candidate) items))
    in
    let raw =
      Obs.Span.with_ ~name:"pipeline.blend" ~args:(fun () -> [ ("split", split_name) ])
      @@ fun () ->
      Parallel.map_list
        (fun (meth, r) ->
          (meth, Feedback.blended meth r, Common.Name meth.Ast.mname))
        kept
    in
    ( raw,
      { Stats.split_name; original = fstats.Filter.original; filtered = fstats.Filter.filtered },
      fstats.Filter.by_reason )
  in
  let train_raw, train_row, r1 = filter_split "Training" train_items in
  let valid_raw, valid_row, r2 = filter_split "Validation" valid_items in
  let test_raw, test_row, r3 = filter_split "Test" test_items in
  let stats =
    {
      Stats.dataset = name;
      rows = [ train_row; valid_row; test_row ];
      reasons = List.fold_left Stats.merge_reasons [] [ r1; r2; r3 ];
    }
  in
  assemble ~name ~enc_config ~stats (train_raw, valid_raw, test_raw)

(** Build the COSET-analogue classification corpus of [n] clean programs. *)
let build_coset ?(enc_config = Common.default_enc_config) rng ~n =
  Obs.Span.with_ ~name:"pipeline.build_coset" @@ fun () ->
  let items, dropped =
    Obs.Span.with_ ~name:"pipeline.generate" (fun () -> Coset.generate rng ~n)
  in
  let train_items, valid_items, test_items = Coset.split rng items in
  let budget = budget_for enc_config in
  let collect split_name items =
    (* one generator per item, split in item order: deterministic at any
       job count *)
    let raw =
      Obs.Span.with_ ~name:"pipeline.blend" ~args:(fun () -> [ ("split", split_name) ])
      @@ fun () ->
      Parallel.filter_map_rng rng
        (fun rng (it : Coset.item) ->
          let r = Feedback.generate ~budget rng it.Coset.meth in
          if r.Feedback.gave_up then None
          else
            Some
              (it.Coset.meth, Feedback.blended it.Coset.meth r, Common.Class it.Coset.class_id))
        items
    in
    ( raw,
      { Stats.split_name; original = List.length items; filtered = List.length raw } )
  in
  let train_raw, train_row = collect "Training" train_items in
  let valid_raw, valid_row = collect "Validation" valid_items in
  let test_raw, test_row = collect "Test" test_items in
  let stats =
    {
      Stats.dataset = "COSET-analogue";
      rows = [ train_row; valid_row; test_row ];
      reasons = [ (Filter.Testgen_timeout, dropped) ];
    }
  in
  assemble ~name:"COSET-analogue" ~enc_config ~stats (train_raw, valid_raw, test_raw)
