(** The semantic probing task family: per-statement labels computed
    exactly by the static analyses, used to measure what program facts an
    embedding encodes.

    A linear readout trained on frozen per-statement embeddings
    ({!Liger_eval.Probe}) can only do well on these tasks if the embedding
    itself linearly exposes the corresponding fact — the standard probing
    methodology, with the twist that MiniJava's analyses make every label
    {e exact} rather than heuristically annotated:

    - {e live-after}: is the variable a statement defines still live after
      the statement ({!Liger_analysis.Liveness})?
    - {e dominating-branch}: is the statement's execution conditional on a
      dominating decision ({!Liger_analysis.Dominator}) — some branch
      statement strictly dominates it and it does not postdominate that
      branch (a rejoin point after an [if] is unconditional again)?
    - {e always-reached}: does the statement dominate exit, executing on
      every terminating run?
    - {e sign-at-exit}: the sign class of the defined variable right after
      the statement, as proved by the abstract interpreter
      ({!Liger_analysis.Absint}): negative / zero / positive, or mixed when
      the interval straddles zero.

    Labels join the per-statement embeddings on statement id; statements
    the encoded traces never execute simply contribute no probe example. *)

open Liger_lang
open Liger_analysis

type task = Live_after | Dominating_branch | Always_reached | Sign_at_exit

let all_tasks = [ Live_after; Dominating_branch; Always_reached; Sign_at_exit ]

let task_name = function
  | Live_after -> "live-after"
  | Dominating_branch -> "dominating-branch"
  | Always_reached -> "always-reached"
  | Sign_at_exit -> "sign-at-exit"

let classes = function
  | Live_after | Dominating_branch | Always_reached -> 2
  | Sign_at_exit -> 4

let class_name task c =
  match (task, c) with
  | (Live_after | Dominating_branch | Always_reached), 0 -> "no"
  | (Live_after | Dominating_branch | Always_reached), 1 -> "yes"
  | Sign_at_exit, 0 -> "negative"
  | Sign_at_exit, 1 -> "zero"
  | Sign_at_exit, 2 -> "positive"
  | Sign_at_exit, 3 -> "mixed"
  | _ -> "?"

type example = { p_sid : int; p_task : task; p_class : int }

let sign_class (iv : Interval.t) =
  match iv with
  | Interval.Iv (_, Interval.Fin u) when u < 0 -> 0
  | Interval.Iv (Interval.Fin 0, Interval.Fin 0) -> 1
  | Interval.Iv (Interval.Fin l, _) when l > 0 -> 2
  | _ -> 3

(** All probe examples of one method.  Only reachable statement nodes get
    labels; [Live_after] and [Sign_at_exit] additionally need the statement
    to define a variable (and the latter an integer-valued one). *)
let label_method (meth : Ast.meth) : example list =
  let cfg = Cfg.build meth in
  let live = Liveness.analyze ~cfg meth in
  let dom = Dominator.dominators cfg in
  let pdom = Dominator.postdominators cfg in
  let absint = Absint.analyze ~cfg meth in
  let out = ref [] in
  let push sid task cls = out := { p_sid = sid; p_task = task; p_class = cls } :: !out in
  Array.iteri
    (fun i node ->
      match node with
      | Cfg.Stmt s when dom.Dominator.reachable.(i) ->
          let sid = s.Ast.sid in
          (match Cfg.def_of_stmt s with
          | Some (x, _) -> (
              push sid Live_after
                (if Dataflow.VarSet.mem x live.Liveness.live_out.(i) then 1 else 0);
              match Absint.env_lookup absint.Absint.after.(i) x with
              | Absint.AInt (iv, _) when not (Interval.is_bot iv) ->
                  push sid Sign_at_exit (sign_class iv)
              | _ -> ())
          | None -> ());
          (* conditional on a decision: a branch above it on every path in,
             and some execution of that branch bypasses this statement *)
          let under_branch =
            List.exists
              (fun d ->
                (match Cfg.stmt_of cfg d with
                | Some ds -> Cfg.is_branch ds
                | None -> false)
                && not (Dominator.dominates pdom i d))
              (Dominator.strict_doms dom i)
          in
          push sid Dominating_branch (if under_branch then 1 else 0);
          push sid Always_reached
            (if Dominator.dominates dom i Cfg.exit_ then 1 else 0)
      | _ -> ())
    cfg.Cfg.nodes;
  List.rev !out

(** Class histogram of a label set — corpora dominated by one class make a
    probe score meaningless, so reports show the majority share too. *)
let tally task (examples : example list) =
  let counts = Array.make (classes task) 0 in
  List.iter
    (fun e -> if e.p_task = task then counts.(e.p_class) <- counts.(e.p_class) + 1)
    examples;
  counts
