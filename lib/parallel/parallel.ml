(** A fixed-size domain pool with deterministic parallel maps.

    The trace pipeline — interpret a method under many inputs, symbolically
    execute it, filter, encode — is embarrassingly parallel per method, and
    evaluation is embarrassingly parallel per example.  This module gives
    those call sites one primitive, {!map} (plus order-preserving
    {!filter_map} and the RNG-splitting variants), backed by a pool of
    [jobs - 1] worker domains that is created on first use and reused across
    calls.

    {b Determinism contract.}  [jobs = 1] and [jobs = N] produce identical
    results, by construction:

    - results are written into a slot per input index, so output order never
      depends on completion order;
    - randomized tasks get their generator through {!map_rng} /
      {!filter_map_rng}, which derive one generator per task with
      {!Rng.split} {e in task order, before} anything runs in parallel;
    - callers keep every other side effect (vocabulary interning, id
      assignment, tallying) out of the parallel section.

    The pool size comes from the [LIGER_JOBS] environment variable when set,
    else [Domain.recommended_domain_count ()]; {!set_jobs} overrides both
    (tests and the bench harness use it).  A nested call from inside a
    worker runs sequentially in that worker — tasks may therefore freely
    call code that itself uses this module. *)

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

(* Pool telemetry lives in the {!Liger_obs.Metrics} registry (disabled by
   default; one branch per event when off):

     parallel.tasks                  tasks executed
     parallel.batches                map/filter_map calls
     parallel.wall_seconds           wall time inside map calls
     parallel.busy_seconds{domain=i} per-lane time spent running tasks
     parallel.batch_tasks            histogram of tasks per map call
     parallel.dispatch_seconds       histogram: caller-side share push + wakeup
     parallel.queue_wait_seconds     histogram: share enqueue -> worker pickup

   Slot 0 is the submitting (caller) domain; slots 1..size are workers.
   The three histograms are the dispatch-overhead diagnostics behind the
   BENCH_parallel.json investigation (DESIGN.md "Domain pool"). *)

let slot_key = Domain.DLS.new_key (fun () -> 0)

(* Each domain accounts its busy time once, at the outermost timing point:
   a nested map (sequential fallback in a worker, or a nested parallel call
   from the caller's lane) runs inside its enclosure's interval and must not
   be credited again, or per-domain busy time would exceed wall x lanes. *)
let accounting_key = Domain.DLS.new_key (fun () -> ref false)

let add_busy dt =
  Liger_obs.Metrics.fadd "parallel.busy_seconds"
    ~labels:[ ("domain", string_of_int (Domain.DLS.get slot_key)) ]
    dt

let timed_busy f =
  if not (Liger_obs.Metrics.enabled ()) then f ()
  else begin
    let accounting = Domain.DLS.get accounting_key in
    if !accounting then f ()
    else begin
      accounting := true;
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          accounting := false;
          add_busy (Unix.gettimeofday () -. t0))
        f
    end
  end

(* tasks-per-batch sizes; dispatch/queue-wait latencies (sub-ms resolution) *)
let size_buckets = [| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1000.0 |]

let wait_buckets =
  [| 1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0 |]

let record_batch ~n ~wall_dt =
  if Liger_obs.Metrics.enabled () then begin
    Liger_obs.Metrics.add "parallel.tasks" n;
    Liger_obs.Metrics.incr "parallel.batches";
    Liger_obs.Metrics.fadd "parallel.wall_seconds" wall_dt;
    Liger_obs.Metrics.observe ~buckets:size_buckets "parallel.batch_tasks" (float_of_int n)
  end

(** Compatibility view over the registry entries above.  Callers that want
    the raw metrics (the bench harness, [liger stats]) should read
    {!Liger_obs.Metrics.snapshot} directly. *)
module Stats = struct
  type snapshot = {
    tasks : int;
    batches : int;
    wall_seconds : float;
    busy_seconds : float array;  (* indexed by slot; 0 = caller *)
  }

  (* recording requires [Liger_obs.Metrics.enable ()] *)
  let reset () = Liger_obs.Metrics.reset_prefix "parallel."

  let busy_of_snapshot snap =
    let entries = Liger_obs.Metrics.entries_with snap "parallel.busy_seconds" in
    let slot_of (e : Liger_obs.Metrics.entry) =
      match e.Liger_obs.Metrics.e_labels with
      | [ ("domain", s) ] -> int_of_string_opt s
      | _ -> None
    in
    let slots =
      List.fold_left
        (fun acc e -> match slot_of e with Some s -> max acc (s + 1) | None -> acc)
        0 entries
    in
    let arr = Array.make slots 0.0 in
    List.iter
      (fun (e : Liger_obs.Metrics.entry) ->
        match (slot_of e, e.Liger_obs.Metrics.e_value) with
        | Some s, Liger_obs.Metrics.F x -> arr.(s) <- x
        | _ -> ())
      entries;
    arr

  let snapshot () =
    let snap = Liger_obs.Metrics.snapshot () in
    {
      tasks = Liger_obs.Metrics.counter_value snap "parallel.tasks";
      batches = Liger_obs.Metrics.counter_value snap "parallel.batches";
      wall_seconds = Liger_obs.Metrics.fcounter_value snap "parallel.wall_seconds";
      busy_seconds = busy_of_snapshot snap;
    }
end

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

(* Worker domains run closures from a shared queue; a closure is one
   participant's share of a batch (it drains the batch's index counter), so
   the queue stays short — at most [jobs - 1] entries per map call. *)
type pool = {
  mutable workers : unit Domain.t array;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work_available : Condition.t;
  mutable stop : bool;
}

let in_worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

(* Below this many tasks a map runs sequentially even when a pool exists:
   share dispatch costs tens of microseconds (see parallel.dispatch_seconds)
   and tiny batches cannot amortize it.  Override with LIGER_MIN_BATCH. *)
let min_batch =
  lazy
    (match Sys.getenv_opt "LIGER_MIN_BATCH" with
    | None -> 4
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> n
        | _ -> invalid_arg ("LIGER_MIN_BATCH must be a positive integer, got " ^ s)))

let env_jobs () =
  match Sys.getenv_opt "LIGER_JOBS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> invalid_arg ("LIGER_JOBS must be a positive integer, got " ^ s))

(* Global state: configured size + the (lazily created) pool. *)
let global_mutex = Mutex.create ()
let configured_jobs : int option ref = ref None  (* None: not yet resolved *)
let the_pool : pool option ref = ref None

let worker_loop pool slot =
  Domain.DLS.set in_worker_key true;
  Domain.DLS.set slot_key slot;
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.work_available pool.mutex
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* stop *)
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      (try timed_busy task with _ -> () (* batch shares record their own errors *));
      loop ()
    end
  in
  loop ()

let shutdown_locked () =
  match !the_pool with
  | None -> ()
  | Some pool ->
      Mutex.lock pool.mutex;
      pool.stop <- true;
      Condition.broadcast pool.work_available;
      Mutex.unlock pool.mutex;
      Array.iter Domain.join pool.workers;
      the_pool := None

let () = at_exit (fun () ->
    Mutex.lock global_mutex;
    shutdown_locked ();
    Mutex.unlock global_mutex)

(** Number of parallel lanes (caller + workers) the next map will use. *)
let jobs () =
  Mutex.lock global_mutex;
  let n =
    match !configured_jobs with
    | Some n -> n
    | None ->
        let n = env_jobs () in
        configured_jobs := Some n;
        n
  in
  Mutex.unlock global_mutex;
  n

(** Override the pool size (shutting down any existing pool).  Intended for
    tests and the bench harness; normal runs size the pool once from
    [LIGER_JOBS]. *)
let set_jobs n =
  if n < 1 then invalid_arg "Parallel.set_jobs: jobs must be >= 1";
  Mutex.lock global_mutex;
  if !configured_jobs <> Some n then begin
    shutdown_locked ();
    configured_jobs := Some n
  end;
  Mutex.unlock global_mutex

(* The pool holds [jobs - 1] workers; the calling domain is the remaining
   lane.  Created on first parallel call, reused afterwards. *)
let get_pool () =
  let n = jobs () in
  Mutex.lock global_mutex;
  let pool =
    match !the_pool with
    | Some p -> p
    | None ->
        let recommended = Domain.recommended_domain_count () in
        if n > recommended then begin
          Logs.warn (fun m ->
              m
                "Parallel: %d jobs on %d available core(s) oversubscribes the CPU; \
                 expect a slowdown, not a speedup (see DESIGN.md)"
                n recommended);
          if Liger_obs.Recorder.enabled () then
            Liger_obs.Recorder.note
              ~detail:(Printf.sprintf "%d jobs on %d cores" n recommended)
              "parallel.oversubscribed"
        end;
        Liger_obs.Metrics.gauge "parallel.jobs" (float_of_int n);
        if Liger_obs.Recorder.enabled () then
          Liger_obs.Recorder.note ~detail:(string_of_int n ^ " jobs") "parallel.pool_created";
        let pool =
          {
            workers = [||];
            queue = Queue.create ();
            mutex = Mutex.create ();
            work_available = Condition.create ();
            stop = false;
          }
        in
        pool.workers <-
          Array.init (n - 1) (fun i -> Domain.spawn (fun () -> worker_loop pool (i + 1)));
        the_pool := Some pool;
        pool
  in
  Mutex.unlock global_mutex;
  pool

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)
(* ------------------------------------------------------------------ *)

type batch = {
  n : int;
  run_one : int -> unit;
  next : int Atomic.t;       (* self-scheduling index; dynamic load balance *)
  done_mutex : Mutex.t;
  done_cond : Condition.t;
  mutable completed : int;
}

(* Drain the batch's index counter until empty; returns tasks run. *)
let drain batch =
  let local = ref 0 in
  let rec loop () =
    let i = Atomic.fetch_and_add batch.next 1 in
    if i < batch.n then begin
      batch.run_one i;
      incr local;
      loop ()
    end
  in
  loop ();
  Mutex.lock batch.done_mutex;
  batch.completed <- batch.completed + !local;
  if batch.completed >= batch.n then Condition.broadcast batch.done_cond;
  Mutex.unlock batch.done_mutex;
  !local

let sequential_map f arr =
  let t0 = Unix.gettimeofday () in
  let r = timed_busy (fun () -> Array.map f arr) in
  record_batch ~n:(Array.length arr) ~wall_dt:(Unix.gettimeofday () -. t0);
  r

(** [map f arr] applies [f] to every element, on up to [jobs] domains, and
    returns the results in input order.  The first exception raised by a
    task is re-raised in the caller (all started tasks still complete).
    Nested calls from inside a task run sequentially. *)
let map (f : 'a -> 'b) (arr : 'a array) : 'b array =
  let n = Array.length arr in
  let j = jobs () in
  if n = 0 then [||]
  else if j <= 1 || n < Lazy.force min_batch || in_worker () then sequential_map f arr
  else begin
    let t0 = Unix.gettimeofday () in
    let results : 'b option array = Array.make n None in
    let error : (exn * Printexc.raw_backtrace) option Atomic.t = Atomic.make None in
    let run_one i =
      match f arr.(i) with
      | r -> results.(i) <- Some r
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set error None (Some (e, bt)))
    in
    let batch =
      {
        n;
        run_one;
        next = Atomic.make 0;
        done_mutex = Mutex.create ();
        done_cond = Condition.create ();
        completed = 0;
      }
    in
    let pool = get_pool () in
    let shares = min (Array.length pool.workers) (n - 1) in
    let telemetry = Liger_obs.Metrics.enabled () in
    let t_dispatch = if telemetry then Unix.gettimeofday () else 0.0 in
    Mutex.lock pool.mutex;
    for _ = 1 to shares do
      if telemetry then begin
        let enq = Unix.gettimeofday () in
        Queue.push
          (fun () ->
            Liger_obs.Metrics.observe ~buckets:wait_buckets "parallel.queue_wait_seconds"
              (Unix.gettimeofday () -. enq);
            ignore (drain batch))
          pool.queue
      end
      else Queue.push (fun () -> ignore (drain batch)) pool.queue
    done;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.mutex;
    if telemetry then
      Liger_obs.Metrics.observe ~buckets:wait_buckets "parallel.dispatch_seconds"
        (Unix.gettimeofday () -. t_dispatch);
    (* the caller is a participant too *)
    timed_busy (fun () -> ignore (drain batch));
    Mutex.lock batch.done_mutex;
    while batch.completed < batch.n do
      Condition.wait batch.done_cond batch.done_mutex
    done;
    Mutex.unlock batch.done_mutex;
    record_batch ~n ~wall_dt:(Unix.gettimeofday () -. t0);
    (match Atomic.get error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some r -> r | None -> assert false) results
  end

(** {!map} over a list. *)
let map_list f l = Array.to_list (map f (Array.of_list l))

(** Order-preserving parallel filter_map over a list. *)
let filter_map f l = List.filter_map Fun.id (map_list f l)

(* Split one generator per task, in task order — the determinism-critical
   step, done sequentially before anything runs. *)
let split_rngs rng n =
  let rngs = Array.make n rng in
  for i = 0 to n - 1 do
    rngs.(i) <- Liger_tensor.Rng.split rng
  done;
  rngs

(** [map_rng rng f arr]: like {!map}, but each task receives its own
    generator derived from [rng] by {!Rng.split} in task order, so the
    result is independent of the number of domains. *)
let map_rng rng (f : Liger_tensor.Rng.t -> 'a -> 'b) (arr : 'a array) : 'b array =
  let n = Array.length arr in
  let rngs = split_rngs rng n in
  map (fun i -> f rngs.(i) arr.(i)) (Array.init n Fun.id)

let map_rng_list rng f l =
  Array.to_list (map_rng rng f (Array.of_list l))

(** Order-preserving [filter_map] with per-task generators. *)
let filter_map_rng rng f l =
  List.filter_map Fun.id (map_rng_list rng f l)

(* Hand the pool to the tensor kernels: [lib/tensor] cannot depend on this
   library (it would close a cycle through {!Rng}), so GEMM parallelism is
   dependency-injected here at module initialisation.  Tasks cover disjoint
   output-row blocks, so any schedule — including the sequential fallbacks
   for nested calls or tiny pools — produces identical bits. *)
let () =
  Liger_tensor.Tensor.set_parallel_runner (fun f n ->
      ignore (map f (Array.init n Fun.id)))
