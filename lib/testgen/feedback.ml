(** Feedback-directed test generation, standing in for Randoop (§6.1).

    The generator alternates two strategies: (1) directed inputs from the
    bounded symbolic executor, which nail the scalar-guarded paths, and
    (2) random inputs with pool reuse, which discover the rest.  Feedback is
    twofold, as in Randoop: inputs that produce a new path (or deepen an
    under-populated path group) are kept and their observed values are fed
    back into the generation pool; inputs that crash the method are
    remembered only as evidence for filtering. *)

open Liger_lang
open Liger_trace
open Liger_symexec
module Obs = Liger_obs.Obs

type budget = {
  max_attempts : int;       (* total executions allowed (Randoop's timeout) *)
  target_paths : int;       (* stop once this many distinct paths are found *)
  per_path : int;           (* desired concrete executions per path *)
  fuel : int;               (* interpreter step budget per execution *)
}

let default_budget = { max_attempts = 400; target_paths = 20; per_path = 5; fuel = 20_000 }

type result = {
  traces : Exec_trace.t list;  (* successful traces only *)
  n_attempts : int;
  n_crashes : int;
  n_timeouts : int;
  gave_up : bool;  (* no successful execution within the budget *)
}

let path_key tr = Exec_trace.path_key tr

(** Generate executions for [meth].  Deterministic given [rng]. *)
let generate ?(budget = default_budget) rng (meth : Ast.meth) : result =
  let pool = Randgen.create_pool () in
  let groups : (int * int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let kept = ref [] in
  let n_attempts = ref 0 in
  let n_crashes = ref 0 in
  let n_timeouts = ref 0 in
  let full_groups () =
    Hashtbl.fold (fun _ count acc -> if !count >= budget.per_path then acc + 1 else acc)
      groups 0
  in
  let consider args =
    incr n_attempts;
    let tr = Exec_trace.collect ~fuel:budget.fuel ~keep_steps:64 meth args in
    match tr.Exec_trace.outcome with
    | Interp.Crashed _ -> incr n_crashes
    | Interp.Timeout -> incr n_timeouts
    | Interp.Returned ret ->
        let key = path_key tr in
        let count =
          match Hashtbl.find_opt groups key with
          | Some c -> c
          | None ->
              let c = ref 0 in
              Hashtbl.add groups key c;
              c
        in
        if !count < budget.per_path then begin
          incr count;
          kept := tr :: !kept;
          (* feed observed values back into the pool *)
          List.iter (Randgen.remember pool) args;
          Randgen.remember pool ret
        end
  in
  (* phase 1: directed inputs from symbolic execution *)
  let directed =
    Obs.Span.with_ ~name:"testgen.symexec" (fun () ->
        Symexec.generate_inputs
          ~config:{ Symexec.max_paths = 48; max_steps = 400; max_unrolls = 12 }
          rng meth)
  in
  Obs.Span.with_ ~name:"testgen.exec" (fun () ->
      List.iter
        (fun args -> if !n_attempts < budget.max_attempts then consider args)
        directed;
      (* phase 2: random generation until the budget or the targets are hit *)
      while
        !n_attempts < budget.max_attempts
        && not (Hashtbl.length groups >= budget.target_paths
                && full_groups () >= min budget.target_paths (Hashtbl.length groups))
      do
        consider (Randgen.args ~pool rng meth)
      done);
  let gave_up = Hashtbl.length groups = 0 in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.add "testgen.attempts" !n_attempts;
    Obs.Metrics.add "testgen.crashes" !n_crashes;
    Obs.Metrics.add "testgen.timeouts" !n_timeouts;
    if gave_up then Obs.Metrics.incr "testgen.gave_up"
  end;
  {
    traces = List.rev !kept;
    n_attempts = !n_attempts;
    n_crashes = !n_crashes;
    n_timeouts = !n_timeouts;
    gave_up;
  }

(** Blended traces straight from a generation result. *)
let blended meth (r : result) = Blended.group meth r.traces
