(** The dataset filtering pipeline behind Table 1.

    The paper keeps only a subset of Java-med/Java-large, dropping methods
    for four reasons: (1) they do not compile, (2) they reference external
    packages the test generator cannot see, (3) test generation exceeds its
    timeout, and (4) they are too small to be interesting.  This module
    reproduces that pipeline over MiniJava: the typechecker plays javac,
    {!Feedback} plays Randoop, and the corpus generator marks a fraction of
    methods as depending on unavailable libraries.

    On top of the paper's four reasons, the dataflow lint gate
    ({!Liger_analysis.Lint}) statically rejects methods that typecheck but
    can never be useful corpus examples: possible use-before-initialisation
    (crashes on some path), statically unreachable code, and constant-guard
    loops that provably never terminate (test generation would only time
    out on them — the static gate fires first, as the cheap checks do in
    the paper's pipeline). *)

open Liger_lang
open Liger_analysis
module Obs = Liger_obs.Obs

type reason =
  | No_compile        (* typechecker rejects *)
  | Uninit_use        (* lint: a read may precede every assignment *)
  | Unreachable_code  (* lint: statements no execution can reach *)
  | Nonterm_loop      (* lint: constant-guard loop that cannot exit *)
  | Div_by_zero       (* lint/absint: a divisor is provably zero *)
  | Dead_branch       (* lint/absint: interval-infeasible branch arm *)
  | External_deps     (* references packages unavailable to the generator *)
  | Testgen_timeout   (* Randoop-analogue produced no usable execution *)
  | Too_small         (* "a couple of lines" *)

let reason_to_string = function
  | No_compile -> "does not compile"
  | Uninit_use -> "use before init"
  | Unreachable_code -> "unreachable code"
  | Nonterm_loop -> "non-terminating loop"
  | Div_by_zero -> "definite division by zero"
  | Dead_branch -> "provably dead branch"
  | External_deps -> "missing external packages"
  | Testgen_timeout -> "test generation timeout"
  | Too_small -> "too small"

type verdict =
  | Kept of Feedback.result
  | Dropped of reason

(** A raw corpus entry before filtering: the method plus provenance flags
    set by the corpus generator. *)
type candidate = {
  meth : Ast.meth;
  uses_external : bool;  (* simulates references to unavailable libraries *)
}

let min_statements = 3

(** Classify one candidate, running test generation only if the static gates
    pass (the cheap checks run first, as in the paper's pipeline). *)
let classify ?budget rng (c : candidate) : verdict =
  if not (Obs.Span.with_ ~name:"filter.typecheck" (fun () -> Typecheck.is_well_typed c.meth))
  then Dropped No_compile
  else
    let lint = Obs.Span.with_ ~name:"filter.lint" (fun () -> Lint.check c.meth) in
    (* nonterm before unreachable: an endless loop also makes its
       continuation unreachable, and the loop is the sharper diagnosis *)
    if lint.Lint.uninit_uses <> [] then Dropped Uninit_use
    else if lint.Lint.nonterm_sids <> [] then Dropped Nonterm_loop
    else if lint.Lint.unreachable_sids <> [] then Dropped Unreachable_code
    else if lint.Lint.div_by_zero_sids <> [] then Dropped Div_by_zero
    else if lint.Lint.dead_branch_sids <> [] then Dropped Dead_branch
    else if c.uses_external then Dropped External_deps
    else if Ast.stmt_count c.meth < min_statements then Dropped Too_small
    else
    let r =
      Obs.Span.with_ ~name:"filter.testgen"
        ~args:(fun () -> [ ("method", c.meth.Ast.mname) ])
        (fun () -> Feedback.generate ?budget rng c.meth)
    in
    if r.Feedback.gave_up then Dropped Testgen_timeout else Kept r

type stats = {
  original : int;
  filtered : int;  (* surviving *)
  by_reason : (reason * int) list;
}

(** Run the pipeline over a corpus and tally Table 1's columns.

    Candidates are classified on the {!Liger_parallel.Parallel} pool — each
    with its own generator split from [rng] in candidate order, so the
    verdicts (and therefore the corpus) are identical at any job count. *)
let run ?budget rng (candidates : candidate list) =
  let verdicts =
    Liger_parallel.Parallel.map_rng_list rng
      (fun rng c -> (c, classify ?budget rng c))
      candidates
  in
  let tally = Hashtbl.create 4 in
  let kept = ref [] in
  List.iter
    (fun (c, verdict) ->
      match verdict with
      | Kept r ->
          Obs.Metrics.incr "filter.kept";
          kept := (c.meth, r) :: !kept
      | Dropped reason ->
          Obs.Metrics.incr "filter.dropped" ~labels:[ ("reason", reason_to_string reason) ];
          Hashtbl.replace tally reason
            (1 + Option.value ~default:0 (Hashtbl.find_opt tally reason)))
    verdicts;
  let by_reason =
    List.filter_map
      (fun r ->
        match Hashtbl.find_opt tally r with Some n -> Some (r, n) | None -> None)
      [ No_compile; Uninit_use; Nonterm_loop; Unreachable_code; Div_by_zero;
        Dead_branch; External_deps; Testgen_timeout; Too_small ]
  in
  ( List.rev !kept,
    { original = List.length candidates; filtered = List.length !kept; by_reason } )

(** Convenience: kept methods with their blended traces. *)
let kept_blended kept =
  List.map (fun (meth, r) -> (meth, Feedback.blended meth r)) kept
