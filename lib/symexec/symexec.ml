(** Bounded symbolic execution of MiniJava methods.

    The engine runs the program over {!Symval.t} values, forking at every
    branch whose guard does not fold to a constant and recording the same
    (statement id, branch outcome) signature the concrete interpreter
    records — so a solved symbolic path yields inputs whose concrete trace
    lands exactly on that path.  Loops are bounded by a per-path step budget
    and the total number of explored paths is capped.

    Scalar inputs ([int]/[bool]) are fully symbolic; arrays get a concrete
    length with symbolic cells; strings are concretized (see {!shapes}).
    Unsupported operations on symbolic operands (symbolic array index,
    symbolic builtin argument) abort only the affected path.

    The abstract interpreter ({!Liger_analysis.Absint}) runs once per method
    before exploration and its facts prune the search: a divisor the
    intervals prove non-zero needs no [!= 0] side condition (counted in
    [symexec.side_conditions_discharged]), and a fork arm the intervals
    prove infeasible is never explored at all (counted in
    [symexec.paths_pruned_by_absint]) — the solver would only have
    discovered its unsatisfiability the hard way. *)

open Liger_lang
module Absint = Liger_analysis.Absint
module Interval = Liger_analysis.Interval

module StrMap = Map.Make (String)

type outcome =
  | Sym_returned of Symval.t
  | Sym_aborted of string  (* unsupported op / step budget on this path *)

type path_result = {
  pc : Path.t;
  signature : (int * bool option) list;  (* matches Exec_trace.path_signature *)
  outcome : outcome;
}

(* [max_unrolls] bounds how many times a single loop entry may fork on a
   symbolic guard along one path.  Without it, depth-first exploration of a
   loop whose bound is a symbolic input unrolls until the global path budget
   runs dry, starving every sibling subtree forked before the loop (their
   branches die at budget 0 without ever being explored).  At the bound the
   executor stops splitting and follows only the exit arm — a genuine path
   (the pc gains the negated guard), so replay stays exact; only deeper
   iteration counts go unenumerated.  Concrete guards never count against
   the bound: concretely-bounded loops already terminate by themselves. *)
type config = { max_paths : int; max_steps : int; max_unrolls : int }

let default_config = { max_paths = 64; max_steps = 600; max_unrolls = 12 }

exception Abort of string

type sstate = {
  env : Symval.t StrMap.t;
  pc : Path.t;
  signature : (int * bool option) list;  (* reversed *)
  steps : int;
}

type signal =
  | SNormal of sstate
  | SBreak of sstate
  | SContinue of sstate
  | SReturn of sstate * Symval.t
  | SAbort of sstate * string

let lookup env x =
  match StrMap.find_opt x env with
  | Some v -> v
  | None -> raise (Abort ("unbound variable " ^ x))

let as_int = function
  | Symval.Const (Value.VInt n) -> n
  | v -> raise (Abort ("symbolic value where concrete int required: " ^ Symval.to_string v))

(* [side] accumulates conditions the path must additionally satisfy for the
   evaluation to be crash-free: a symbolic divisor must be non-zero, or a
   solved model could make the concrete replay crash where the symbolic path
   returned.  [nz] asks the abstract interpreter whether a divisor is
   provably non-zero at the current statement — if so the side condition is
   discharged statically instead of being handed to the solver.  Constant
   subexpressions that crash abort the path outright (Symval.binop would
   silently keep them as residual nodes), and [&&]/[||] short-circuit on a
   constant left operand exactly like the interpreter. *)
let rec eval nz side env (e : Ast.expr) : Symval.t =
  let eval side env e = eval nz side env e in
  match e with
  | Ast.Int n -> Symval.Const (Value.VInt n)
  | Ast.Bool b -> Symval.Const (Value.VBool b)
  | Ast.Str s -> Symval.Const (Value.VStr s)
  | Ast.Var x -> lookup env x
  | Ast.Binop ((Ast.And | Ast.Or) as op, a, b) -> (
      match (op, eval side env a) with
      | Ast.And, Symval.Const (Value.VBool false) -> Symval.Const (Value.VBool false)
      | Ast.Or, Symval.Const (Value.VBool true) -> Symval.Const (Value.VBool true)
      | Ast.And, Symval.Const (Value.VBool true) | Ast.Or, Symval.Const (Value.VBool false) ->
          eval side env b
      | _, va ->
          (* symbolic left: [b] is evaluated eagerly, so a crash or side
             condition in [b] constrains the path even when the concrete run
             would short-circuit past it — accepted incompleteness *)
          Symval.binop op va (eval side env b))
  | Ast.Binop (op, a, b) -> (
      let va = eval side env a in
      let vb = eval side env b in
      match (va, vb) with
      | Symval.Const x, Symval.Const y -> (
          try Symval.Const (Interp.eval_binop op x y)
          with Interp.Runtime_error msg -> raise (Abort msg))
      | _ ->
          (match (op, vb) with
          | Ast.Div, Symval.Const (Value.VInt 0) -> raise (Abort "division by zero")
          | Ast.Mod, Symval.Const (Value.VInt 0) -> raise (Abort "modulo by zero")
          | (Ast.Div | Ast.Mod), Symval.Const _ -> ()
          | (Ast.Div | Ast.Mod), _ ->
              if nz b then Liger_obs.Metrics.incr "symexec.side_conditions_discharged"
              else side := Symval.binop Ast.Ne vb (Symval.Const (Value.VInt 0)) :: !side
          | _ -> ());
          Symval.binop op va vb)
  | Ast.Unop (op, a) -> Symval.unop op (eval side env a)
  | Ast.Index (a, i) -> (
      let arr = eval side env a in
      let idx = as_int (eval side env i) in
      match arr with
      | Symval.Arr cells ->
          if idx < 0 || idx >= Array.length cells then raise (Abort "index out of bounds");
          cells.(idx)
      | _ -> raise (Abort "indexing a non-array"))
  | Ast.Field (a, f) -> (
      match eval side env a with
      | Symval.Obj fields -> (
          match Array.find_opt (fun (n, _) -> n = f) fields with
          | Some (_, v) -> v
          | None -> raise (Abort ("no field " ^ f)))
      | _ -> raise (Abort "field access on non-object"))
  | Ast.Len a -> (
      match eval side env a with
      | Symval.Arr cells -> Symval.Const (Value.VInt (Array.length cells))
      | Symval.Const (Value.VStr s) -> Symval.Const (Value.VInt (String.length s))
      | _ -> raise (Abort "length of symbolic value"))
  | Ast.Call (f, args) ->
      let vals = List.map (eval side env) args in
      let concrete =
        List.map
          (fun v -> try Symval.to_value v with Symval.Not_concrete -> raise (Abort ("symbolic argument to builtin " ^ f)))
          vals
      in
      (try Symval.Const (Interp.builtin f concrete)
       with Interp.Runtime_error msg -> raise (Abort msg))
  | Ast.NewArray e ->
      let n = as_int (eval side env e) in
      if n < 0 || n > 1024 then raise (Abort "bad array size");
      Symval.Arr (Array.make n (Symval.Const (Value.VInt 0)))
  | Ast.ArrayLit es -> Symval.Arr (Array.of_list (List.map (eval side env) es))
  | Ast.RecordLit fs ->
      Symval.Obj (Array.of_list (List.map (fun (n, e) -> (n, eval side env e)) fs))

let record st sid branch =
  { st with signature = (sid, branch) :: st.signature; steps = st.steps + 1 }

(* Exploration context holding the global path budget and the method's
   abstract-interpretation facts. *)
type ctx = { cfg : config; mutable budget : int; absint : Absint.result }

(* Evaluate [e] at statement [sid] in [st], conjoining any collected side
   conditions into the path condition.  [Path.add] only returns [None] when
   a condition folds to constant false, i.e. the path is guaranteed to
   crash here. *)
let eval_pc ctx st sid (e : Ast.expr) =
  let nz d = Absint.proves_nonzero ctx.absint ~sid d in
  let side = ref [] in
  let v = eval nz side st.env e in
  let pc =
    List.fold_left
      (fun pc c -> match pc with None -> None | Some pc -> Path.add c pc)
      (Some st.pc) !side
  in
  match pc with
  | None -> raise (Abort "division by zero")
  | Some pc -> (v, { st with pc })

(* Fork on a symbolic guard: returns the live (state, taken) continuations.
   Arms the abstract interpreter proves infeasible are never explored;
   infeasible constraint additions are pruned immediately. *)
let fork ctx st sid guard =
  let pruned taken =
    let p = Absint.proves_infeasible ctx.absint ~sid ~taken in
    if p then Liger_obs.Metrics.incr "symexec.paths_pruned_by_absint";
    p
  in
  let follow taken =
    if pruned taken then None
    else
      let c = if taken then guard else Symval.not_ guard in
      match Path.add c st.pc with
      | None -> None
      | Some pc -> Some ({ (record { st with pc } sid (Some taken)) with pc }, taken)
  in
  match guard with
  | Symval.Const (Value.VBool b) -> [ (record st sid (Some b), b) ]
  | _ ->
      ctx.budget <- ctx.budget - 1;
      if ctx.budget < 0 then []
      else List.filter_map follow [ true; false ]

let rec exec_block ctx st (block : Ast.block) : signal list =
  match block with
  | [] -> [ SNormal st ]
  | s :: rest ->
      exec_stmt ctx st s
      |> List.concat_map (function
           | SNormal st' -> exec_block ctx st' rest
           | other -> [ other ])

and exec_stmt ctx st (s : Ast.stmt) : signal list =
  if st.steps >= ctx.cfg.max_steps then [ SAbort (st, "step budget exceeded") ]
  else
    try
      match s.Ast.node with
      | Ast.Decl (_, x, e) | Ast.Assign (x, e) ->
          let v, st = eval_pc ctx st s.Ast.sid e in
          [ SNormal (record { st with env = StrMap.add x v st.env } s.Ast.sid None) ]
      | Ast.StoreIndex (x, i, e) -> (
          let idx_v, st = eval_pc ctx st s.Ast.sid i in
          let idx = as_int idx_v in
          let v, st = eval_pc ctx st s.Ast.sid e in
          match lookup st.env x with
          | Symval.Arr cells ->
              if idx < 0 || idx >= Array.length cells then raise (Abort "index out of bounds");
              let cells' = Array.copy cells in
              cells'.(idx) <- v;
              [ SNormal
                  (record { st with env = StrMap.add x (Symval.Arr cells') st.env } s.Ast.sid None) ]
          | _ -> raise (Abort "store to non-array"))
      | Ast.StoreField (x, f, e) -> (
          let v, st = eval_pc ctx st s.Ast.sid e in
          match lookup st.env x with
          | Symval.Obj fields ->
              let fields' = Array.map (fun (n, old) -> if n = f then (n, v) else (n, old)) fields in
              if not (Array.exists (fun (n, _) -> n = f) fields) then
                raise (Abort ("no field " ^ f));
              [ SNormal
                  (record { st with env = StrMap.add x (Symval.Obj fields') st.env } s.Ast.sid None) ]
          | _ -> raise (Abort "store to non-object"))
      | Ast.If (c, then_b, else_b) ->
          let guard, st = eval_pc ctx st s.Ast.sid c in
          fork ctx st s.Ast.sid guard
          |> List.concat_map (fun (st', taken) ->
                 exec_block ctx st' (if taken then then_b else else_b))
      | Ast.While (c, body) -> exec_loop ctx st s c body None
      | Ast.For (init, c, update, body) ->
          exec_stmt ctx st init
          |> List.concat_map (function
               | SNormal st' -> exec_loop ctx st' s c body (Some update)
               | other -> [ other ])
      | Ast.Return e ->
          let v, st = eval_pc ctx st s.Ast.sid e in
          [ SReturn (record st s.Ast.sid None, v) ]
      | Ast.Break -> [ SBreak (record st s.Ast.sid None) ]
      | Ast.Continue -> [ SContinue (record st s.Ast.sid None) ]
    with Abort msg -> [ SAbort (st, msg) ]

and exec_loop ?(unrolls = 0) ctx st (s : Ast.stmt) cond body update : signal list =
  if st.steps >= ctx.cfg.max_steps then [ SAbort (st, "step budget exceeded") ]
  else
    try
      let guard, st = eval_pc ctx st s.Ast.sid cond in
      let symbolic = match guard with Symval.Const _ -> false | _ -> true in
      if symbolic && unrolls >= ctx.cfg.max_unrolls then
        (* unroll bound: follow only the exit arm (see [config]) *)
        match Path.add (Symval.not_ guard) st.pc with
        | None -> [ SAbort (st, "loop unroll budget exceeded") ]
        | Some pc -> [ SNormal (record { st with pc } s.Ast.sid (Some false)) ]
      else
        let unrolls = if symbolic then unrolls + 1 else unrolls in
        fork ctx st s.Ast.sid guard
        |> List.concat_map (fun (st', taken) ->
               if not taken then [ SNormal st' ]
               else
                 exec_block ctx st' body
                 |> List.concat_map (function
                      | SNormal st'' | SContinue st'' -> (
                          match update with
                          | None -> exec_loop ~unrolls ctx st'' s cond body update
                          | Some u ->
                              exec_stmt ctx st'' u
                              |> List.concat_map (function
                                   | SNormal st3 -> exec_loop ~unrolls ctx st3 s cond body update
                                   | other -> [ other ]))
                      | SBreak st'' -> [ SNormal st'' ]
                      | other -> [ other ]))
    with Abort msg -> [ SAbort (st, msg) ]

(* ---------------- shapes and the public API ---------------- *)

(** Build the initial symbolic binding for each parameter: scalars become
    inputs; arrays become length-[array_len] vectors of fresh symbolic
    cells; strings and objects are concretized with simple defaults. *)
let shape_of_params ?(array_len = 4) ?(string_len = 3) (params : (Ast.typ * string) list) =
  List.map
    (fun (t, x) ->
      let v =
        match t with
        | Ast.Tint | Ast.Tbool -> Symval.Input x
        | Ast.Tarray ->
            Symval.Arr (Array.init array_len (fun i -> Symval.Input (Printf.sprintf "%s_%d" x i)))
        | Ast.Tstring ->
            Symval.Const (Value.VStr (String.init string_len (fun i -> Char.chr (97 + (i mod 26)))))
        | Ast.Tobj -> Symval.Obj [| ("x", Symval.Input (x ^ "_x")); ("y", Symval.Input (x ^ "_y")) |]
      in
      (x, v))
    params

(** Symbolic input variables of a shape, with their types (everything
    non-bool is an int for the solver). *)
let shape_inputs (meth : Ast.meth) shape =
  let bool_params =
    List.filter_map (fun (t, x) -> if t = Ast.Tbool then Some x else None) meth.Ast.params
  in
  List.concat_map (fun (_, v) -> Symval.inputs [] v) shape
  |> List.sort_uniq compare
  |> List.map (fun x -> (x, if List.mem x bool_params then Ast.Tbool else Ast.Tint))

(* Abstract argument values matching [shape]: the shape fixes every array
   and string length, so the analysis may assume them.  The result is only
   used to answer queries about executions that start from this shape —
   exactly symexec's input universe — which is what lets it prove guards
   like [a.length == 0] infeasible where the type-directed tops cannot. *)
let absint_params_of_shape (meth : Ast.meth) shape =
  List.map
    (fun (ty, x) ->
      match (ty, List.assoc_opt x shape) with
      | Ast.Tarray, Some (Symval.Arr cells) ->
          Absint.AArr
            (Interval.const (Array.length cells), (Interval.top, Absint.P.top))
      | Ast.Tstring, Some (Symval.Const (Value.VStr s)) ->
          Absint.AStr (Interval.const (String.length s))
      | _ -> Absint.of_type ty)
    meth.Ast.params

(** Explore all bounded paths of [meth] under [shape].  [absint] defaults to
    a fresh abstract-interpretation run specialized to the shape's array and
    string lengths (sound for every execution symexec can start); pass an
    explicit result to reuse a shape-agnostic run instead. *)
let explore ?(config = default_config) ?absint (meth : Ast.meth) ~shape : path_result list =
  let absint =
    match absint with
    | Some r -> r
    | None -> Absint.analyze ~params:(absint_params_of_shape meth shape) meth
  in
  let env =
    List.fold_left (fun env (x, v) -> StrMap.add x v env) StrMap.empty shape
  in
  let ctx = { cfg = config; budget = config.max_paths; absint } in
  let st0 = { env; pc = Path.empty; signature = []; steps = 0 } in
  exec_block ctx st0 meth.Ast.body
  |> List.map (fun signal ->
         let finish st outcome =
           { pc = st.pc; signature = List.rev st.signature; outcome }
         in
         match signal with
         | SReturn (st, v) -> finish st (Sym_returned v)
         | SNormal st | SBreak st | SContinue st ->
             finish st (Sym_aborted "fell through without return")
         | SAbort (st, msg) -> finish st (Sym_aborted msg))

(** Solve a path's condition and materialize concrete argument values.
    Returns the arguments in parameter order, ready for [Interp.run]. *)
let concretize ?domain rng (meth : Ast.meth) ~shape (r : path_result) =
  let vars = shape_inputs meth shape in
  match Solver.solve ?domain rng ~vars r.pc with
  | None -> None
  | Some model ->
      let args =
        List.map
          (fun (_, v) ->
            try Symval.eval model v with Interp.Runtime_error _ -> Value.VInt 0)
          shape
      in
      Some args

(** End-to-end directed generation: enumerate paths, solve each feasible
    one, return concrete inputs (deduplicated) that together exercise every
    solved path. *)
let generate_inputs ?config ?domain rng (meth : Ast.meth) =
  let shape = shape_of_params meth.Ast.params in
  let results = explore ?config meth ~shape in
  results
  |> List.filter_map (fun r ->
         match r.outcome with
         | Sym_returned _ -> concretize ?domain rng meth ~shape r
         | Sym_aborted _ -> None)
  |> List.sort_uniq compare
