(** Reaching definitions.

    A definition is a (variable, defining [sid]) pair; parameters are defined
    at the pseudo-site {!param_def} and every declared local additionally
    carries the pseudo-definition {!uninit_def} at method entry, so that a
    use reached by it is a possible use-before-initialisation — MiniJava's
    typechecker (like this repo's until now) does not do definite-assignment,
    so [if (c) { int x = 1; } return x;] typechecks yet crashes at runtime on
    the else path.  The def-use chains this pass induces also drive the
    return-value slicer. *)

open Liger_lang

let param_def = -1
let uninit_def = -2

module DefSet = Set.Make (struct
  type t = string * int

  let compare = compare
end)

module Fact = struct
  type t = DefSet.t

  let bottom = DefSet.empty
  let equal = DefSet.equal
  let join = DefSet.union
end

module S = Dataflow.Solver (Fact)

let transfer node fact =
  match node with
  | Cfg.Stmt s -> (
      match Cfg.def_of_stmt s with
      | Some (x, `Strong) ->
          DefSet.add (x, s.Ast.sid) (DefSet.filter (fun (y, _) -> y <> x) fact)
      | Some (x, `Weak) -> DefSet.add (x, s.Ast.sid) fact
      | None -> fact)
  | Cfg.Entry | Cfg.Exit -> fact

(** Entry fact: every parameter is defined, every other declared variable is
    (as yet) uninitialised. *)
let init_fact (meth : Ast.meth) =
  let params = List.map snd meth.Ast.params in
  let locals =
    List.filter (fun x -> not (List.mem x params)) (Ast.declared_vars meth)
  in
  DefSet.of_list
    (List.map (fun x -> (x, param_def)) params
    @ List.map (fun x -> (x, uninit_def)) locals)

type result = { cfg : Cfg.t; before : DefSet.t array; after : DefSet.t array }

let analyze ?cfg (meth : Ast.meth) : result =
  let cfg = match cfg with Some c -> c | None -> Cfg.build meth in
  let r = S.solve cfg ~init:(init_fact meth) ~transfer in
  { cfg; before = r.S.before; after = r.S.after }

(** Definitions of [x] reaching the entry of the statement with [sid]. *)
let defs_reaching r ~sid x =
  match Cfg.node_of_sid r.cfg sid with
  | None -> []
  | Some i ->
      DefSet.elements (DefSet.filter (fun (y, _) -> y = x) r.before.(i))
      |> List.map snd

(** Uses reached by the uninitialised pseudo-definition: [(variable, sid of
    the using statement)], in program order. *)
let possibly_uninit r =
  let out = ref [] in
  Array.iteri
    (fun i node ->
      match node with
      | Cfg.Stmt s ->
          List.iter
            (fun x ->
              if DefSet.mem (x, uninit_def) r.before.(i) then
                out := (x, s.Ast.sid) :: !out)
            (List.sort_uniq compare (Cfg.uses_of_stmt s))
      | Cfg.Entry | Cfg.Exit -> ())
    r.cfg.Cfg.nodes;
  List.rev !out

let pp_fact ppf fact =
  let show (x, d) =
    if d = param_def then x ^ "@param"
    else if d = uninit_def then x ^ "@uninit"
    else Printf.sprintf "%s@%d" x d
  in
  Fmt.pf ppf "{%s}" (String.concat ", " (List.map show (DefSet.elements fact)))
