(** The static lint gate: everything the dataset filter can reject without
    running a single test.

    Three verdict classes are gate-worthy (they make a method worthless or
    dangerous as a corpus example) and map to Table-1 drop reasons in
    {!Liger_testgen.Filter}:
    - {e use-before-init}: a read may happen before any assignment —
      typechecks, crashes at runtime on some path;
    - {e unreachable code}: statements no execution can reach (beyond the
      mutator's reachable dead stores, which are fine and deliberate);
    - {e guaranteed non-termination}: a loop whose guard is constant-true
      with no [break]/[return] inside — test generation would only ever
      time out on it;
    - {e definite division by zero}: the abstract interpreter proves the
      divisor is exactly zero whenever the statement runs;
    - {e provably-dead branch}: an interval-infeasible branch arm {e beyond}
      what constant propagation already catches (those fall under
      unreachable code) — the method carries code no test can ever reach.

    Dead stores are reported too but do not fail {!ok}: the corpus mutator
    plants them on purpose as surface-form noise. *)

open Liger_lang

type verdict = {
  uninit_uses : (string * int) list;  (* variable, sid of the reading stmt *)
  unreachable_sids : int list;
  nonterm_sids : int list;            (* loop-head sids *)
  div_by_zero_sids : int list;        (* absint: divisor provably zero *)
  dead_branch_sids : (int * bool) list;  (* absint: (branch sid, dead arm) *)
  dead_store_sids : int list;         (* informational only *)
}

let ok v =
  v.uninit_uses = [] && v.unreachable_sids = [] && v.nonterm_sids = []
  && v.div_by_zero_sids = [] && v.dead_branch_sids = []

(* A loop with a constant-true guard can only terminate through a [return]
   anywhere in its body or a [break] belonging to it (not to a nested
   loop) — crashes aside, which a lint rightly ignores. *)
let rec block_has_return block =
  List.exists
    (fun (s : Ast.stmt) ->
      match s.Ast.node with
      | Ast.Return _ -> true
      | Ast.If (_, b1, b2) -> block_has_return b1 || block_has_return b2
      | Ast.While (_, b) -> block_has_return b
      | Ast.For (_, _, _, b) -> block_has_return b
      | _ -> false)
    block

let rec block_has_own_break block =
  List.exists
    (fun (s : Ast.stmt) ->
      match s.Ast.node with
      | Ast.Break -> true
      | Ast.If (_, b1, b2) -> block_has_own_break b1 || block_has_own_break b2
      | Ast.While _ | Ast.For _ -> false  (* nested loops own their breaks *)
      | _ -> false)
    block

let loop_can_exit body = block_has_return body || block_has_own_break body

let check (meth : Ast.meth) : verdict =
  let cfg = Cfg.build meth in
  let reach = Reaching.analyze ~cfg meth in
  let live = Liveness.analyze ~cfg meth in
  let consts = Constprop.analyze ~cfg meth in
  let unreach = Unreachable.analyze ~cfg ~consts meth in
  let nonterm_sids =
    Array.to_list cfg.Cfg.nodes
    |> List.mapi (fun i node -> (i, node))
    |> List.filter_map (fun (i, node) ->
           match node with
           | Cfg.Stmt ({ Ast.node = Ast.While (_, body) | Ast.For (_, _, _, body); _ } as s)
             when unreach.Unreachable.reachable.(i)
                  && Constprop.guard_value consts i = Some true
                  && not (loop_can_exit body) ->
               Some s.Ast.sid
           | _ -> None)
  in
  let absint = Absint.analyze ~cfg meth in
  let div_by_zero_sids =
    Absint.definite_crashes absint
    |> List.filter_map (fun (c : Absint.crash) ->
           match c.Absint.c_what with
           | "division by zero" | "modulo by zero" -> Some c.Absint.c_sid
           | _ -> None)
    |> List.sort_uniq compare
  in
  (* Interval-infeasible branch arms beyond constant guards (those already
     fall under unreachable code).  Only arms hiding real code gate: an
     empty dead arm makes nothing unreachable.  A loop head's dead false
     arm is never flagged — a loop that only exits through [break] is fine,
     and a loop that cannot exit at all is the nonterm gate's business. *)
  let dead_branch_sids =
    Absint.dead_branches absint
    |> List.filter (fun (sid, taken) ->
           match Cfg.node_of_sid cfg sid with
           | None -> false
           | Some i -> (
               Constprop.guard_value consts i = None
               &&
               match Cfg.stmt_of cfg i with
               | Some { Ast.node = Ast.If (_, b1, b2); _ } ->
                   (if taken then b1 else b2) <> []
               | Some { Ast.node = Ast.While (_, body) | Ast.For (_, _, _, body); _ }
                 ->
                   taken && body <> []
               | _ -> false))
  in
  {
    uninit_uses = Reaching.possibly_uninit reach;
    unreachable_sids = unreach.Unreachable.unreachable_sids;
    nonterm_sids;
    div_by_zero_sids;
    dead_branch_sids;
    dead_store_sids = Liveness.dead_stores live;
  }

let pp ppf v =
  let ids l = String.concat ", " (List.map string_of_int l) in
  if ok v && v.dead_store_sids = [] then Fmt.pf ppf "clean"
  else begin
    Fmt.pf ppf "@[<v>";
    List.iter
      (fun (x, sid) -> Fmt.pf ppf "use-before-init: %s at #%d@," x sid)
      v.uninit_uses;
    if v.unreachable_sids <> [] then
      Fmt.pf ppf "unreachable code: #%s@," (ids v.unreachable_sids);
    if v.nonterm_sids <> [] then
      Fmt.pf ppf "non-terminating loop: #%s@," (ids v.nonterm_sids);
    if v.div_by_zero_sids <> [] then
      Fmt.pf ppf "definite division by zero: #%s@," (ids v.div_by_zero_sids);
    if v.dead_branch_sids <> [] then
      Fmt.pf ppf "provably dead branch: %s@,"
        (String.concat ", "
           (List.map
              (fun (sid, taken) ->
                Printf.sprintf "#%d (%s arm)" sid (if taken then "then" else "else"))
              v.dead_branch_sids));
    if v.dead_store_sids <> [] then
      Fmt.pf ppf "dead store (not a gate): #%s@," (ids v.dead_store_sids);
    Fmt.pf ppf "@]"
  end
