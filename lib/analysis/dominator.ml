(** Dominator and postdominator trees over statement-level CFGs, via the
    Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast Dominance
    Algorithm"): number the nodes in reverse postorder, then iterate a
    two-finger intersection over each node's processed predecessors until the
    idom array stabilises.  On these small graphs the simple algorithm beats
    Lengauer–Tarjan and is hard to get wrong.

    Nodes unreachable from the root keep [idom = None] and dominate nothing;
    the root's [idom] is itself by CHK convention, exposed here as [None] so
    the tree reads as a proper forest. *)

type t = {
  root : int;
  idom : int option array;  (* immediate dominator; None for root/unreachable *)
  rpo : int array;          (* rpo.(node) = reverse-postorder number, -1 if unreachable *)
  reachable : bool array;
}

let compute_rpo n succs root =
  let rpo = Array.make n (-1) in
  let order = ref [] in
  let seen = Array.make n false in
  let rec dfs u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter dfs succs.(u);
      order := u :: !order
    end
  in
  dfs root;
  List.iteri (fun i u -> rpo.(u) <- i) !order;
  (rpo, !order, seen)

let compute_generic n succs preds root : t =
  let rpo, order, reachable = compute_rpo n succs root in
  let idom = Array.make n (-1) in
  idom.(root) <- root;
  let rec intersect f1 f2 =
    if f1 = f2 then f1
    else if rpo.(f1) > rpo.(f2) then intersect idom.(f1) f2
    else intersect f1 idom.(f2)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> root then begin
          let processed = List.filter (fun p -> reachable.(p) && idom.(p) >= 0) preds.(b) in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left (fun acc p -> intersect acc p) first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      order
  done;
  let idom_opt =
    Array.mapi (fun i d -> if i = root || d < 0 then None else Some d) idom
  in
  { root; idom = idom_opt; rpo; reachable = Array.map (fun s -> s) reachable }

(** Dominator tree rooted at [Cfg.entry]. *)
let dominators (cfg : Cfg.t) : t =
  compute_generic (Cfg.n_nodes cfg) cfg.Cfg.succs cfg.Cfg.preds Cfg.entry

(** Postdominator tree: dominators of the reversed graph rooted at
    [Cfg.exit_].  Nodes with no path to exit (none, after the nonterm lint
    gate) are unreachable here and postdominate nothing. *)
let postdominators (cfg : Cfg.t) : t =
  compute_generic (Cfg.n_nodes cfg) cfg.Cfg.preds cfg.Cfg.succs Cfg.exit_

(** [dominates t a b]: every path from the root to [b] passes through [a]
    (reflexive).  False whenever [b] is unreachable from the root. *)
let dominates t a b =
  if not (t.reachable.(a) && t.reachable.(b)) then false
  else begin
    let rec walk b = if b = a then true else match t.idom.(b) with None -> false | Some d -> walk d in
    walk b
  end

let strictly_dominates t a b = a <> b && dominates t a b

(** Strict dominators of [b], nearest first. *)
let strict_doms t b =
  if not t.reachable.(b) then []
  else begin
    let rec walk acc b = match t.idom.(b) with None -> List.rev acc | Some d -> walk (d :: acc) d in
    walk [] b
  end

let pp ppf (cfg : Cfg.t) t =
  Fmt.pf ppf "@[<v>";
  Array.iteri
    (fun i d ->
      match d with
      | Some d -> Fmt.pf ppf "%s  <-  %s@," (Cfg.node_label cfg i) (Cfg.node_label cfg d)
      | None -> if not t.reachable.(i) then Fmt.pf ppf "%s  (unreachable)@," (Cfg.node_label cfg i))
    t.idom;
  Fmt.pf ppf "@]"
