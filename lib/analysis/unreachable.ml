(** Unreachable-code detection.

    Plain graph reachability from [Entry], refined by constant branch guards:
    when constant propagation proves a condition always takes one branch,
    the other outgoing edge is not traversed, so [if (false) { ... }] bodies
    and everything after a [while (true)] loop without breaks count as
    unreachable.  Note this is distinct from {e dead stores} (reachable
    assignments nobody reads) — the mutator's planted dead code is reachable
    by construction and is deliberately {e not} flagged here. *)

open Liger_lang

type result = {
  cfg : Cfg.t;
  reachable : bool array;    (* per node index *)
  unreachable_sids : int list;  (* statements never executed, program order *)
}

let analyze ?cfg ?consts (meth : Ast.meth) : result =
  let cfg = match cfg with Some c -> c | None -> Cfg.build meth in
  let consts =
    match consts with Some r -> r | None -> Constprop.analyze ~cfg meth
  in
  let n = Cfg.n_nodes cfg in
  let reachable = Array.make n false in
  let rec visit u =
    if not reachable.(u) then begin
      reachable.(u) <- true;
      match (cfg.Cfg.cond_succs.(u), Constprop.guard_value consts u) with
      | Some (t, _), Some true -> visit t
      | Some (_, f), Some false -> visit f
      | _ -> List.iter visit cfg.Cfg.succs.(u)
    end
  in
  visit Cfg.entry;
  let unreachable_sids =
    Array.to_list cfg.Cfg.nodes
    |> List.mapi (fun i node -> (i, node))
    |> List.filter_map (fun (i, node) ->
           match node with
           | Cfg.Stmt s when not reachable.(i) -> Some s.Ast.sid
           | _ -> None)
  in
  { cfg; reachable; unreachable_sids }
