(** Control-flow graphs over MiniJava methods.

    Nodes are the method's executable statements (compound statements
    contribute their condition, exactly as they do in symbolic traces) plus
    distinguished [Entry]/[Exit] nodes.  Edges follow execution: [If] and the
    loop heads branch, [Break]/[Continue] jump to their loop's continuation,
    [Return] jumps to [Exit].  On top of the statement graph we compute
    maximal basic blocks — straight-line [sid] runs — which every dataflow
    pass and the [liger analyze] printer share. *)

open Liger_lang

type node =
  | Entry
  | Exit
  | Stmt of Ast.stmt

(** A maximal straight-line run of nodes. *)
type block = {
  bid : int;
  nodes : int list;  (* node indices in execution order *)
  bsuccs : int list; (* successor block ids *)
  bpreds : int list;
}

type t = {
  meth : Ast.meth;
  nodes : node array;
  succs : int list array;  (* statement-level edges, execution order *)
  preds : int list array;
  cond_succs : (int * int) option array;
      (* branch nodes only: (true-target, false-target) *)
  blocks : block array;
  block_of : int array;    (* node index -> block id *)
  node_of_sid : (int, int) Hashtbl.t;
}

let entry = 0
let exit_ = 1

let n_nodes t = Array.length t.nodes
let node_of_sid t sid = Hashtbl.find_opt t.node_of_sid sid

let stmt_of t i = match t.nodes.(i) with Stmt s -> Some s | Entry | Exit -> None

(** Variables a statement writes.  [StoreIndex]/[StoreField] mutate the named
    aggregate in place, so they are {e weak} defs: they define the variable
    without killing its previous definitions (and they also read it). *)
let def_of_stmt (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.Decl (_, x, _) | Ast.Assign (x, _) -> Some (x, `Strong)
  | Ast.StoreIndex (x, _, _) | Ast.StoreField (x, _, _) -> Some (x, `Weak)
  | _ -> None

(** Variables a statement reads when it executes.  Compound statements read
    only their condition; their bodies are separate nodes. *)
let uses_of_stmt (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.Decl (_, _, e) | Ast.Assign (_, e) | Ast.Return e -> Ast.expr_vars e
  | Ast.StoreIndex (x, i, e) -> x :: (Ast.expr_vars i @ Ast.expr_vars e)
  | Ast.StoreField (x, _, e) -> x :: Ast.expr_vars e
  | Ast.If (c, _, _) | Ast.While (c, _) | Ast.For (_, c, _, _) -> Ast.expr_vars c
  | Ast.Break | Ast.Continue -> []

let is_branch (s : Ast.stmt) =
  match s.Ast.node with Ast.If _ | Ast.While _ | Ast.For _ -> true | _ -> false

let build (meth : Ast.meth) : t =
  let stmts = Ast.all_stmts meth in
  let n = 2 + List.length stmts in
  let nodes = Array.make n Entry in
  nodes.(exit_) <- Exit;
  let node_of_sid = Hashtbl.create (2 * n) in
  List.iteri
    (fun i s ->
      nodes.(i + 2) <- Stmt s;
      Hashtbl.replace node_of_sid s.Ast.sid (i + 2))
    stmts;
  let idx (s : Ast.stmt) = Hashtbl.find node_of_sid s.Ast.sid in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  let cond_succs = Array.make n None in
  let add_edge u v =
    if not (List.mem v succs.(u)) then begin
      succs.(u) <- succs.(u) @ [ v ];
      preds.(v) <- preds.(v) @ [ u ]
    end
  in
  (* Wire a block given the node every fall-through continues to ([succ]) and
     the current loop's break/continue targets; returns the block's entry. *)
  let rec wire_block block ~succ ~brk ~cont =
    match block with
    | [] -> succ
    | s :: rest ->
        let rest_entry = wire_block rest ~succ ~brk ~cont in
        wire_stmt s ~succ:rest_entry ~brk ~cont
  and wire_stmt (s : Ast.stmt) ~succ ~brk ~cont =
    let me = idx s in
    match s.Ast.node with
    | Ast.Decl _ | Ast.Assign _ | Ast.StoreIndex _ | Ast.StoreField _ ->
        add_edge me succ;
        me
    | Ast.Return _ ->
        add_edge me exit_;
        me
    | Ast.Break ->
        add_edge me (Option.value brk ~default:succ);
        me
    | Ast.Continue ->
        add_edge me (Option.value cont ~default:succ);
        me
    | Ast.If (_, b1, b2) ->
        let t = wire_block b1 ~succ ~brk ~cont in
        let f = wire_block b2 ~succ ~brk ~cont in
        add_edge me t;
        add_edge me f;
        cond_succs.(me) <- Some (t, f);
        me
    | Ast.While (_, body) ->
        let body_entry = wire_block body ~succ:me ~brk:(Some succ) ~cont:(Some me) in
        add_edge me body_entry;
        add_edge me succ;
        cond_succs.(me) <- Some (body_entry, succ);
        me
    | Ast.For (init, _, update, body) ->
        let upd = idx update in
        let body_entry = wire_block body ~succ:upd ~brk:(Some succ) ~cont:(Some upd) in
        add_edge upd me;
        add_edge me body_entry;
        add_edge me succ;
        cond_succs.(me) <- Some (body_entry, succ);
        (* the For's entry is its init statement *)
        wire_stmt init ~succ:me ~brk:None ~cont:None
  in
  let first = wire_block meth.Ast.body ~succ:exit_ ~brk:None ~cont:None in
  add_edge entry first;
  (* basic blocks: leaders are Entry, Exit, join points, branch targets and
     orphans (statically unreachable starts) *)
  let is_leader = Array.make n false in
  is_leader.(entry) <- true;
  is_leader.(exit_) <- true;
  Array.iteri
    (fun _u ss ->
      match ss with
      | [ v ] -> if List.length preds.(v) <> 1 then is_leader.(v) <- true
      | ss -> List.iter (fun v -> is_leader.(v) <- true) ss)
    succs;
  Array.iteri (fun u ps -> if ps = [] && u <> entry then is_leader.(u) <- true) preds;
  let block_of = Array.make n (-1) in
  let rev_blocks = ref [] in
  let bid = ref 0 in
  for u = 0 to n - 1 do
    if is_leader.(u) then begin
      let rec chase acc cur =
        match succs.(cur) with
        | [ v ] when not is_leader.(v) -> chase (v :: acc) v
        | _ -> List.rev acc
      in
      let ns = chase [ u ] u in
      List.iter (fun v -> block_of.(v) <- !bid) ns;
      rev_blocks := ns :: !rev_blocks;
      incr bid
    end
  done;
  let blocks =
    List.rev !rev_blocks
    |> List.mapi (fun bid ns ->
           let leader = List.hd ns in
           let last = List.nth ns (List.length ns - 1) in
           {
             bid;
             nodes = ns;
             bsuccs = List.sort_uniq compare (List.map (fun v -> block_of.(v)) succs.(last));
             bpreds = List.sort_uniq compare (List.map (fun v -> block_of.(v)) preds.(leader));
           })
    |> Array.of_list
  in
  { meth; nodes; succs; preds; cond_succs; blocks; block_of; node_of_sid }

(* ---------------- rendering ---------------- *)

let node_label t i =
  match t.nodes.(i) with
  | Entry -> "entry"
  | Exit -> "exit"
  | Stmt s -> Printf.sprintf "#%d %s" s.Ast.sid (Pretty.stmt_head_to_string s)

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  Array.iter
    (fun b ->
      let succs = String.concat " " (List.map (fun j -> Printf.sprintf "B%d" j) b.bsuccs) in
      Fmt.pf ppf "B%d -> [%s]@," b.bid (if succs = "" then "-" else succs);
      List.iter (fun i -> Fmt.pf ppf "    %s@," (node_label t i)) b.nodes)
    t.blocks;
  Fmt.pf ppf "@]"
