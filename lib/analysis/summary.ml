(** Interprocedural summaries over the call graph.

    MiniJava deliberately has no user-defined method calls — [Ast.Call]
    reaches only the interpreter's builtins — so a corpus's call graph is
    bipartite: methods on one side, builtins on the other, with no
    method-to-method edges.  "Bottom-up" summarisation therefore has exactly
    two levels: the builtin leaves carry closed-form summaries
    (argument-range -> return-range + crash condition, hand-written in
    {!Absint.builtin_summary} against the interpreter's semantics), and each
    method's summary is computed by one abstract-interpretation run seeded
    with the caller's argument ranges.  The [args] parameter is how a future
    method-call layer would instantiate a callee summary at a call site. *)

open Liger_lang

type t = {
  s_name : string;
  s_params : (Ast.typ * string) list;
  s_ret : Absint.aval;            (* return-range under the given argument ranges *)
  s_crashes : Absint.crash list;  (* crash condition: where and why it can crash *)
  s_may_crash : bool;
  s_definitely_crashes : bool;    (* a definite crash site lies on every path *)
}

(** Summarise [meth] for the given argument abstraction (default: the
    type-directed top, i.e. the summary valid for {e any} well-typed call). *)
let summarize ?args (meth : Ast.meth) : t =
  let r = Absint.analyze ?params:args meth in
  let definite =
    (* a definite crash dominates exit => no execution completes normally *)
    let dom = Dominator.dominators r.Absint.cfg in
    List.exists
      (fun (c : Absint.crash) ->
        c.Absint.c_definite
        &&
        match Cfg.node_of_sid r.Absint.cfg c.Absint.c_sid with
        | Some u -> Dominator.dominates dom u Cfg.exit_
        | None -> false)
      r.Absint.crashes
  in
  {
    s_name = meth.Ast.mname;
    s_params = meth.Ast.params;
    s_ret = r.Absint.ret;
    s_crashes = r.Absint.crashes;
    s_may_crash = r.Absint.crashes <> [];
    s_definitely_crashes = definite;
  }

(* ---------------- the call graph ---------------- *)

type callgraph = {
  cg_methods : (string * string list) list;  (* method -> builtin callees *)
  cg_builtins : string list;                 (* all builtins referenced *)
}

let callees (meth : Ast.meth) : string list =
  let acc = ref [] in
  let rec go (e : Ast.expr) =
    match e with
    | Ast.Call (f, es) ->
        if not (List.mem f !acc) then acc := f :: !acc;
        List.iter go es
    | Ast.Unop (_, a) | Ast.Len a | Ast.NewArray a | Ast.Field (a, _) -> go a
    | Ast.Binop (_, a, b) | Ast.Index (a, b) -> go a; go b
    | Ast.ArrayLit es -> List.iter go es
    | Ast.RecordLit fs -> List.iter (fun (_, e) -> go e) fs
    | Ast.Int _ | Ast.Bool _ | Ast.Str _ | Ast.Var _ -> ()
  in
  List.iter
    (fun (s : Ast.stmt) ->
      match s.Ast.node with
      | Ast.Decl (_, _, e) | Ast.Assign (_, e) | Ast.Return e -> go e
      | Ast.StoreIndex (_, i, e) -> go i; go e
      | Ast.StoreField (_, _, e) -> go e
      | Ast.If (c, _, _) | Ast.While (c, _) | Ast.For (_, c, _, _) -> go c
      | Ast.Break | Ast.Continue -> ())
    (Ast.all_stmts meth);
  List.sort compare !acc

let build_callgraph (meths : Ast.meth list) : callgraph =
  let cg_methods = List.map (fun m -> (m.Ast.mname, callees m)) meths in
  let cg_builtins =
    List.sort_uniq compare (List.concat_map snd cg_methods)
  in
  { cg_methods; cg_builtins }

(** Bottom-up summaries for a whole corpus: builtins are the leaves, so
    every method is ready immediately; a topological order over the
    bipartite graph is any order. *)
let summarize_corpus (meths : Ast.meth list) : (string * t) list =
  List.map (fun m -> (m.Ast.mname, summarize m)) meths

(* ---------------- rendering ---------------- *)

let crash_to_string (c : Absint.crash) =
  Printf.sprintf "%s at #%d%s" c.Absint.c_what c.Absint.c_sid
    (if c.Absint.c_definite then " (definite)" else "")

let pp ppf (s : t) =
  Fmt.pf ppf "@[<v>summary %s(%s):@," s.s_name
    (String.concat ", " (List.map (fun (_, x) -> x) s.s_params));
  Fmt.pf ppf "  returns %s@," (Absint.aval_to_string s.s_ret);
  if s.s_definitely_crashes then Fmt.pf ppf "  definitely crashes@,"
  else if s.s_may_crash then
    Fmt.pf ppf "  may crash: %s@,"
      (String.concat "; " (List.map crash_to_string s.s_crashes))
  else Fmt.pf ppf "  cannot crash@,";
  Fmt.pf ppf "@]"
