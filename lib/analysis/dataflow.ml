(** A generic monotone-framework fixpoint solver.

    Every concrete pass (reaching definitions, liveness, constant
    propagation, ...) instantiates {!Solver} with a join-semilattice of facts
    and a per-node transfer function; the solver runs a worklist to the least
    fixpoint over a {!Cfg.t}, forward or backward.  Termination holds
    whenever the lattice has finite height over the method's variables and
    the transfer functions are monotone — true of all the passes here. *)

type direction = Forward | Backward

module type FACT = sig
  type t

  val bottom : t
  (** Least element: the initial fact at every node. *)

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Solver (F : FACT) = struct
  (** [before.(i)] is the fact flowing into node [i] in analysis order (for a
      backward pass that is the fact at the node's {e exit}); [after.(i)] is
      the result of the node's transfer function.  [iterations] counts nodes
      popped off the worklist before convergence. *)
  type result = { before : F.t array; after : F.t array; iterations : int }

  (** [`Rpo] (the default) pops the worklist in reverse postorder of the flow
      direction — for a forward pass that is RPO over successor edges, for a
      backward pass RPO of the reversed graph (i.e. postorder) — so a node is
      processed after as many of its flow predecessors as the loop structure
      allows and facts converge in near-linear sweeps.  [`Fifo] is the
      original queue order, kept for the iteration-count regression test. *)
  let solve ?(direction = Forward) ?(strategy = `Rpo) (cfg : Cfg.t) ~(init : F.t)
      ~(transfer : Cfg.node -> F.t -> F.t) : result =
    let n = Cfg.n_nodes cfg in
    let before = Array.make n F.bottom in
    let after = Array.make n F.bottom in
    let flow_preds, flow_succs, start =
      match direction with
      | Forward -> (cfg.Cfg.preds, cfg.Cfg.succs, Cfg.entry)
      | Backward -> (cfg.Cfg.succs, cfg.Cfg.preds, Cfg.exit_)
    in
    (* Worklist priority: reverse postorder of the flow graph.  Nodes the
       DFS from [start] cannot reach sort last (they only ever enter the
       list in degenerate graphs). *)
    let order =
      match strategy with
      | `Fifo -> Array.make n 0
      | `Rpo ->
          let rpo, _, _ = Dominator.compute_rpo n flow_succs start in
          Array.map (fun i -> if i < 0 then n else i) rpo
    in
    (* Seed the worklist with the start node only.  Seeding every node looks
       harmless but is not: a node processed before the start fact reaches it
       sees a partial input (absent variables), and a transfer that is only
       monotone over inputs descending from [init] — constant propagation's
       [Var] lookup — can then produce transient facts that a loop circulates
       forever.  Starting from [start], every processed input is a join of
       real predecessor outputs, and unreachable nodes keep [bottom]. *)
    let queued = Array.make n false in
    let visited = Array.make n false in
    let iterations = ref 0 in
    (* FIFO queue for `Fifo (all priorities equal), priority set for `Rpo;
       the seq number breaks priority ties in insertion order *)
    let module PQ = Set.Make (struct
      type t = int * int * int (* priority, seq, node *)

      let compare = compare
    end) in
    let pq = ref PQ.empty in
    let seq = ref 0 in
    let push u =
      if not queued.(u) then begin
        queued.(u) <- true;
        pq := PQ.add (order.(u), !seq, u) !pq;
        incr seq
      end
    in
    push start;
    while not (PQ.is_empty !pq) do
      let ((_, _, u) as el) = PQ.min_elt !pq in
      pq := PQ.remove el !pq;
      queued.(u) <- false;
      incr iterations;
      let input =
        List.fold_left
          (fun acc p -> F.join acc after.(p))
          (if u = start then init else F.bottom)
          flow_preds.(u)
      in
      before.(u) <- input;
      let out = transfer cfg.Cfg.nodes.(u) input in
      (* a node's first processing must propagate even when its output equals
         bottom — successors still need their own first processing *)
      let first = not visited.(u) in
      visited.(u) <- true;
      if first || not (F.equal out after.(u)) then begin
        after.(u) <- out;
        List.iter push flow_succs.(u)
      end
    done;
    Liger_obs.Metrics.add "dataflow.iterations" !iterations;
    { before; after; iterations = !iterations }
end

(** Plain string sets, the fact domain shared by liveness and slicing. *)
module VarSet = Set.Make (String)

let pp_varset ppf s =
  Fmt.pf ppf "{%s}" (String.concat ", " (VarSet.elements s))
