(** Numeric abstract domains for the abstract interpreter: intervals with
    widening/narrowing, a parity sub-lattice, and three-valued booleans.

    Soundness against native ints: OCaml integers wrap silently at 63 bits,
    so interval arithmetic only claims an exact result when no concrete
    execution within the operand bounds can wrap — corner sums are checked
    for two's-complement overflow, and anything that might wrap degrades to
    [top].  Parity, by contrast, is exact under two's-complement wrap
    (wrapping adds a multiple of 2^62), so the parity component never needs
    the guard. *)

(* ---------------- bounds ---------------- *)

type bound = NegInf | Fin of int | PosInf

let bound_le a b =
  match (a, b) with
  | NegInf, _ | _, PosInf -> true
  | PosInf, _ -> b = PosInf
  | _, NegInf -> a = NegInf
  | Fin x, Fin y -> x <= y

let bound_min a b = if bound_le a b then a else b
let bound_max a b = if bound_le a b then b else a

let bound_to_string = function
  | NegInf -> "-inf"
  | PosInf -> "+inf"
  | Fin n when n = max_int -> "intmax"
  | Fin n when n = min_int + 1 -> "intmin+1"
  | Fin n when n = max_int - 1 -> "intmax-1"
  | Fin n -> string_of_int n

(* ---------------- intervals ---------------- *)

type t = Bot | Iv of bound * bound

let bot = Bot
let top = Iv (NegInf, PosInf)
let const n = Iv (Fin n, Fin n)
let range l u = if l > u then Bot else Iv (Fin l, Fin u)
let at_least l = Iv (Fin l, PosInf)
let at_most u = Iv (NegInf, Fin u)

let is_bot t = t = Bot
let is_top t = t = Iv (NegInf, PosInf)

let is_const = function Iv (Fin l, Fin u) when l = u -> Some l | _ -> None

let equal (a : t) (b : t) = a = b

let mk lo hi =
  (* normalise an empty interval to Bot *)
  if bound_le lo hi then Iv (lo, hi) else Bot

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Iv (l1, u1), Iv (l2, u2) -> Iv (bound_min l1 l2, bound_max u1 u2)

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (l1, u1), Iv (l2, u2) -> mk (bound_max l1 l2) (bound_min u1 u2)

let contains t n =
  match t with
  | Bot -> false
  | Iv (l, u) -> bound_le l (Fin n) && bound_le (Fin n) u

(** Standard widening: bounds that grew jump to infinity.  Applied at loop
    heads only; narrowing afterwards recovers bounds pinned by the guard. *)
let widen old next =
  match (old, next) with
  | Bot, x -> x
  | x, Bot -> x
  | Iv (l1, u1), Iv (l2, u2) ->
      let lo = if bound_le l1 l2 then l1 else NegInf in
      let hi = if bound_le u2 u1 then u1 else PosInf in
      Iv (lo, hi)

(** Widening with thresholds: a growing bound jumps to the nearest program
    constant (guard literals and their neighbours) before giving up and
    going to infinity.  This keeps bounded loop counters finite {e during}
    the upward phase, which matters here more than in classic interval
    analysis: once a bound reaches infinity, the native-int wrap guard tops
    the whole interval on the next arithmetic step and narrowing can no
    longer recover it.  [thresholds] must be sorted ascending. *)
let widen_to ~(thresholds : int list) old next =
  match (old, next) with
  | Bot, x | x, Bot -> x
  | Iv (l1, u1), Iv (l2, u2) ->
      let lo =
        if bound_le l1 l2 then l1
        else
          match l2 with
          | Fin v -> (
              match List.filter (fun t -> t <= v) thresholds with
              | [] -> NegInf
              | ts -> Fin (List.fold_left max min_int ts))
          | _ -> NegInf
      in
      let hi =
        if bound_le u2 u1 then u1
        else
          match u2 with
          | Fin v -> (
              match List.filter (fun t -> t >= v) thresholds with
              | [] -> PosInf
              | ts -> Fin (List.fold_left min max_int ts))
          | _ -> PosInf
      in
      Iv (lo, hi)

(** Standard narrowing: refine only the bounds widening sent to infinity, so
    a narrowing sweep cannot oscillate. *)
let narrow old next =
  match (old, next) with
  | Bot, _ | _, Bot -> Bot
  | Iv (l1, u1), Iv (l2, u2) ->
      let lo = if l1 = NegInf then l2 else l1 in
      let hi = if u1 = PosInf then u2 else u1 in
      mk lo hi

(* ---------------- overflow-safe arithmetic ---------------- *)

(* Every concrete value is a native int, so an {e infinite} bound is pure
   lattice bookkeeping (widening needs a point its chains stop at):
   concretely NegInf means min_int and PosInf means max_int.  Addition and
   subtraction therefore evaluate the interval corners under that reading
   with exact two's-complement overflow checks — if a corner would wrap,
   the whole result degrades to [top], never to a wrong bound.
   Multiplication keeps a cruder guard: bounds within +-2^30, so products
   stay under 2^61 (the corner-check for [*] has its own min_int traps and
   products rarely drive loop counters). *)
let mul_limit = 1 lsl 30

let within limit = function
  | Bot -> true
  | Iv (Fin l, Fin u) -> l >= -limit && u <= limit
  | Iv _ -> false

(* what a bound means for a concrete execution *)
let conc_lo = function NegInf -> min_int | Fin l -> l | PosInf -> max_int
let conc_hi = function PosInf -> max_int | Fin u -> u | NegInf -> min_int

(* native add/sub with exact overflow detection; [None] = would wrap *)
let add_ovf a b =
  let s = a + b in
  if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then None else Some s

let sub_ovf a b =
  let s = a - b in
  if (a >= 0) <> (b >= 0) && (s >= 0) <> (a >= 0) then None else Some s

let neg = function
  | Bot -> Bot
  | Iv (Fin l, Fin u) when l > min_int -> Iv (Fin (-u), Fin (-l))
  | Iv (Fin l, PosInf) when l > min_int -> Iv (NegInf, Fin (-l))
  (* a NegInf lower bound admits min_int, whose negation wraps to itself *)
  | Iv _ -> top

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (l1, u1), Iv (l2, u2) -> (
      match (add_ovf (conc_lo l1) (conc_lo l2), add_ovf (conc_hi u1) (conc_hi u2)) with
      | Some lo, Some hi -> Iv (Fin lo, Fin hi)
      | _ -> top)

let sub a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (l1, u1), Iv (l2, u2) -> (
      match (sub_ovf (conc_lo l1) (conc_hi u2), sub_ovf (conc_hi u1) (conc_lo l2)) with
      | Some lo, Some hi -> Iv (Fin lo, Fin hi)
      | _ -> top)

let mul a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (Fin l1, Fin u1), Iv (Fin l2, Fin u2)
    when within mul_limit a && within mul_limit b ->
      let cs = [ l1 * l2; l1 * u2; u1 * l2; u1 * u2 ] in
      let lo = List.fold_left min max_int cs in
      let hi = List.fold_left max min_int cs in
      Iv (Fin lo, Fin hi)
  | _ -> top

(** Truncated division, OCaml/Java semantics: |a/b| <= |a| for |b| >= 1, and
    the result sign follows the operand signs.  Division by zero crashes, so
    the result interval describes only the non-crashing executions (b <> 0).
    We return a sound hull rather than the tightest interval. *)
let div a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | _ when meet b (const 0) = b -> Bot (* divisor can only be 0: never returns *)
  | Iv (l, u), Iv _ ->
      let mag = function Fin n when n > min_int -> Fin (abs n) | _ -> PosInf in
      let m = bound_max (mag l) (mag u) in
      (match m with
      | Fin m -> Iv (Fin (-m), Fin m)
      | _ ->
          (* keep one-sided sign info when the dividend is one-sided and the
             divisor is known positive *)
          (match (l, u, b) with
          | Fin l0, _, Iv (bl, _) when l0 >= 0 && bound_le (Fin 1) bl -> Iv (Fin 0, u)
          | _, Fin u0, Iv (bl, _) when u0 <= 0 && bound_le (Fin 1) bl -> Iv (l, Fin 0)
          | _ -> top))

(** Truncated remainder: |a mod b| < |b| and the sign follows the dividend. *)
let rem a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | _ when meet b (const 0) = b -> Bot
  | Iv (l, _), Iv (bl, bu) ->
      let mag = function Fin n when n > min_int -> Fin (abs n) | _ -> PosInf in
      (match bound_max (mag bl) (mag bu) with
      | Fin m when m >= 1 ->
          let lo = if bound_le (Fin 0) l then 0 else -(m - 1) in
          let hi = m - 1 in
          let r = range lo hi in
          (* a mod b also satisfies |a mod b| <= |a| *)
          (match a with
          | Iv (Fin al, Fin au) when al > min_int ->
              let am = max (abs al) (abs au) in
              meet r (range (-am) am)
          | _ -> r)
      | _ -> if bound_le (Fin 0) l then Iv (Fin 0, PosInf) else top)

let abs_ = function
  | Bot -> Bot
  | Iv (Fin l, u) when l >= 0 -> Iv (Fin l, u) (* abs x = x, never wraps *)
  | Iv (Fin l, Fin u) when l > min_int ->
      if u <= 0 then Iv (Fin (-u), Fin (-l))
      else Iv (Fin 0, Fin (max (-l) u))
  | Iv (Fin l, PosInf) when l > min_int -> Iv (Fin 0, PosInf)
  (* abs min_int wraps to min_int, so a NegInf lower bound forces top *)
  | Iv _ -> top

let min_ a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (l1, u1), Iv (l2, u2) -> Iv (bound_min l1 l2, bound_min u1 u2)

let max_ a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv (l1, u1), Iv (l2, u2) -> Iv (bound_max l1 l2, bound_max u1 u2)

(* ---------------- comparison outcomes ---------------- *)

(** [cmp_lt a b] = (may be true, may be false) for [a < b]. *)
let cmp_lt a b =
  match (a, b) with
  | Bot, _ | _, Bot -> (false, false)
  | Iv (l1, u1), Iv (l2, u2) ->
      let may_t =
        (* exists x in a, y in b with x < y  <=>  min a < max b *)
        match (l1, u2) with
        | NegInf, _ | _, PosInf -> true
        | PosInf, _ | _, NegInf -> false
        | Fin x, Fin y -> x < y
      in
      let may_f =
        (* exists x >= y  <=>  max a >= min b *)
        match (u1, l2) with
        | PosInf, _ | _, NegInf -> true
        | NegInf, _ | _, PosInf -> false
        | Fin x, Fin y -> x >= y
      in
      (may_t, may_f)

let cmp_le a b =
  let t, f = cmp_lt b a in
  (f, t)

let cmp_eq a b =
  match (a, b) with
  | Bot, _ | _, Bot -> (false, false)
  | _ ->
      let may_t = meet a b <> Bot in
      let may_f =
        match (is_const a, is_const b) with Some x, Some y -> x <> y | _ -> true
      in
      (may_t, may_f)

(* ---------------- refinement helpers ---------------- *)

(** Refine [a] assuming [a < b] holds: a <= max(b) - 1.  A PosInf bound on
    [b] still refines — concretely it means max_int, so [a] is at most
    max_int - 1.  That cap is what keeps guarded loop counters (i < n)
    finite through the increment: i + 1 then provably cannot wrap. *)
let refine_lt a b =
  match b with
  | Bot -> Bot
  | Iv (_, u) ->
      let hi = conc_hi u in
      if hi = min_int then Bot else meet a (at_most (hi - 1))

(** Refine [a] assuming [a >= b]: a >= min(b). *)
let refine_ge a b =
  match b with
  | Bot -> Bot
  | Iv (l, _) -> meet a (at_least (conc_lo l))

let refine_le a b =
  match b with
  | Bot -> Bot
  | Iv (_, u) -> meet a (at_most (conc_hi u))

let refine_gt a b =
  match b with
  | Bot -> Bot
  | Iv (l, _) ->
      let lo = conc_lo l in
      if lo = max_int then Bot else meet a (at_least (lo + 1))

let refine_eq a b = meet a b

(** Refine [a] assuming [a <> b]: only trims when [b] is a constant sitting
    on one of [a]'s endpoints. *)
let refine_ne a b =
  match (a, is_const b) with
  | Iv (Fin l, u), Some n when l = n -> mk (Fin (l + 1)) u
  | Iv (l, Fin u), Some n when u = n -> mk l (Fin (u - 1))
  | _ -> a

let to_string = function
  | Bot -> "_|_"
  | Iv (Fin l, Fin u) when l = u -> Printf.sprintf "{%d}" l
  | Iv (l, u) -> Printf.sprintf "[%s, %s]" (bound_to_string l) (bound_to_string u)

(* ---------------- parity ---------------- *)

module Parity = struct
  (** Exact under native-int wrap: wrapping adds a multiple of 2^62. *)
  type t = PBot | Even | Odd | PTop

  let bot = PBot
  let top = PTop
  let equal (a : t) b = a = b

  let of_int n = if n land 1 = 0 then Even else Odd

  let join a b =
    match (a, b) with
    | PBot, x | x, PBot -> x
    | PTop, _ | _, PTop -> PTop
    | Even, Even -> Even
    | Odd, Odd -> Odd
    | _ -> PTop

  let meet a b =
    match (a, b) with
    | PTop, x | x, PTop -> x
    | PBot, _ | _, PBot -> PBot
    | Even, Even -> Even
    | Odd, Odd -> Odd
    | _ -> PBot

  let contains t n =
    match t with PTop -> true | PBot -> false | Even -> n land 1 = 0 | Odd -> n land 1 = 1

  let add a b =
    match (a, b) with
    | PBot, _ | _, PBot -> PBot
    | PTop, _ | _, PTop -> PTop
    | Even, Even | Odd, Odd -> Even
    | _ -> Odd

  let sub = add
  let neg a = a

  let mul a b =
    match (a, b) with
    | PBot, _ | _, PBot -> PBot
    | Even, _ | _, Even -> Even (* even absorbs, even against top included *)
    | Odd, Odd -> Odd
    | _ -> PTop

  (* truncated div/mod do not preserve parity in any useful way *)
  let div _ _ = PTop
  let rem _ _ = PTop

  let to_string = function PBot -> "_|_" | Even -> "even" | Odd -> "odd" | PTop -> "any"
end

(* ---------------- three-valued booleans ---------------- *)

module Abool = struct
  type t = { may_t : bool; may_f : bool }

  let bot = { may_t = false; may_f = false }
  let top = { may_t = true; may_f = true }
  let const b = if b then { may_t = true; may_f = false } else { may_t = false; may_f = true }
  let of_pair (may_t, may_f) = { may_t; may_f }
  let equal (a : t) b = a = b
  let join a b = { may_t = a.may_t || b.may_t; may_f = a.may_f || b.may_f }
  let meet a b = { may_t = a.may_t && b.may_t; may_f = a.may_f && b.may_f }
  let not_ a = { may_t = a.may_f; may_f = a.may_t }
  let is_bot a = (not a.may_t) && not a.may_f
  let contains a b = if b then a.may_t else a.may_f

  let and_ a b =
    {
      may_t = a.may_t && b.may_t;
      may_f = a.may_f || (a.may_t && b.may_f);
    }

  let or_ a b =
    {
      may_t = a.may_t || (a.may_f && b.may_t);
      may_f = a.may_f && b.may_f;
    }

  let to_string a =
    match (a.may_t, a.may_f) with
    | true, true -> "bool"
    | true, false -> "true"
    | false, true -> "false"
    | false, false -> "_|_"
end
