(** Abstract interpretation of MiniJava methods over an interval × parity
    product domain (plus boolean/string/array shapes), with widening at loop
    heads and a bounded narrowing pass.

    Unlike the passes built on {!Dataflow.Solver}, this engine refines facts
    {e per edge}: the successor of a branch receives the entry environment
    filtered through [assume guard taken], which the node-level transfer
    functions of the generic solver cannot express.  It therefore runs its
    own worklist (same reverse-postorder discipline), widening at back-edge
    targets so the interval lattice's infinite ascending chains terminate,
    then narrowing to recover the bounds pinned by loop guards.

    The over-approximation contract — every value observed by the concrete
    interpreter at a statement lies in the abstract value computed there —
    is enforced continuously by the [absint] fuzz oracle. *)

open Liger_lang
module VarMap = Map.Make (String)
module P = Interval.Parity
module B = Interval.Abool

(* ---------------- abstract values ---------------- *)

type aval =
  | ABot                                   (* no value reaches here *)
  | AInt of Interval.t * P.t
  | ABool of B.t
  | AStr of Interval.t                     (* string length *)
  | AArr of Interval.t * (Interval.t * P.t)  (* array length, cell hull *)
  | AObj                                   (* record; fields untracked *)
  | ATop                                   (* any value of any type *)

let aint itv par = if Interval.is_bot itv || par = P.PBot then ABot else AInt (itv, par)
let aint_top = AInt (Interval.top, P.top)
let abool ab = if B.is_bot ab then ABot else ABool ab

(* the interpreter rejects [new int\[n\]] above this *)
let max_array_len = 100_000

let of_type = function
  | Ast.Tint -> aint_top
  | Ast.Tbool -> ABool B.top
  | Ast.Tstring -> AStr (Interval.at_least 0)
  | Ast.Tarray -> AArr (Interval.range 0 max_array_len, (Interval.top, P.top))
  | Ast.Tobj -> AObj

let join_aval a b =
  match (a, b) with
  | ABot, x | x, ABot -> x
  | ATop, _ | _, ATop -> ATop
  | AInt (i1, p1), AInt (i2, p2) -> AInt (Interval.join i1 i2, P.join p1 p2)
  | ABool b1, ABool b2 -> ABool (B.join b1 b2)
  | AStr l1, AStr l2 -> AStr (Interval.join l1 l2)
  | AArr (l1, (c1, q1)), AArr (l2, (c2, q2)) ->
      AArr (Interval.join l1 l2, (Interval.join c1 c2, P.join q1 q2))
  | AObj, AObj -> AObj
  | _ -> ATop

let widen_aval ~thresholds old next =
  let w = Interval.widen_to ~thresholds in
  match (old, next) with
  | ABot, x | x, ABot -> x
  | AInt (i1, p1), AInt (i2, p2) -> AInt (w i1 i2, P.join p1 p2)
  | AStr l1, AStr l2 -> AStr (w l1 l2)
  | AArr (l1, (c1, q1)), AArr (l2, (c2, q2)) ->
      AArr (w l1 l2, (w c1 c2, P.join q1 q2))
  | _ -> join_aval old next (* bool/obj/top: finite height, join suffices *)

let narrow_aval old next =
  match (old, next) with
  | AInt (i1, p1), AInt (i2, _) -> aint (Interval.narrow i1 i2) p1
  | AStr l1, AStr l2 -> AStr (Interval.narrow l1 l2)
  | AArr (l1, (c1, q1)), AArr (l2, (c2, _)) ->
      AArr (Interval.narrow l1 l2, (Interval.narrow c1 c2, q1))
  | _ -> old

let equal_aval (a : aval) (b : aval) = a = b

let aval_to_string = function
  | ABot -> "_|_"
  | AInt (i, P.PTop) -> Interval.to_string i
  | AInt (i, p) -> Printf.sprintf "%s %s" (Interval.to_string i) (P.to_string p)
  | ABool b -> B.to_string b
  | AStr l -> Printf.sprintf "str(len %s)" (Interval.to_string l)
  | AArr (l, (c, _)) ->
      Printf.sprintf "int[](len %s, cells %s)" (Interval.to_string l) (Interval.to_string c)
  | AObj -> "obj"
  | ATop -> "T"

(** gamma-membership: is the concrete value described by the abstract one?
    The fuzz oracle's soundness check. *)
let value_in (a : aval) (v : Value.t) =
  match (a, v) with
  | ATop, _ -> true
  | ABot, _ -> false
  | AInt (i, p), Value.VInt n -> Interval.contains i n && P.contains p n
  | ABool b, Value.VBool x -> B.contains b x
  | AStr l, Value.VStr s -> Interval.contains l (String.length s)
  | AArr (l, (c, q)), Value.VArr arr ->
      Interval.contains l (Array.length arr)
      && Array.for_all (fun n -> Interval.contains c n && P.contains q n) arr
  | AObj, Value.VObj _ -> true
  | _ -> false

(* ---------------- environments ---------------- *)

(** [Unreached] = no execution reaches this point.  In a reached
    environment, an {e absent} variable is one never assigned on any path to
    this point (the concrete state cannot bind it). *)
type env = Unreached | Env of aval VarMap.t

let join_env a b =
  match (a, b) with
  | Unreached, x | x, Unreached -> x
  | Env m1, Env m2 ->
      Env (VarMap.union (fun _ v1 v2 -> Some (join_aval v1 v2)) m1 m2)

let merge_env f a b =
  match (a, b) with
  | Unreached, x | x, Unreached -> x
  | Env m1, Env m2 ->
      Env
        (VarMap.merge
           (fun _ v1 v2 ->
             match (v1, v2) with
             | None, v | v, None -> v
             | Some v1, Some v2 -> Some (f v1 v2))
           m1 m2)

let widen_env ~thresholds old next = merge_env (widen_aval ~thresholds) old next

let narrow_env old next =
  match (old, next) with
  | Unreached, _ | _, Unreached -> next
  | Env m1, Env m2 ->
      Env
        (VarMap.mapi
           (fun x v1 ->
             match VarMap.find_opt x m2 with
             | Some v2 -> narrow_aval v1 v2
             | None -> v1)
           m1)

let equal_env a b =
  match (a, b) with
  | Unreached, Unreached -> true
  | Env m1, Env m2 -> VarMap.equal equal_aval m1 m2
  | _ -> false

(* ---------------- crash sites ---------------- *)

type crash = {
  c_sid : int;
  c_what : string;
  c_definite : bool;  (* every execution of the statement crashes *)
}

(* ---------------- abstract evaluation ---------------- *)

let to_int_parts = function
  | AInt (i, p) -> (i, p)
  | ABot -> (Interval.bot, P.bot)
  | _ -> (Interval.top, P.top)

let to_abool = function
  | ABool b -> b
  | ABot -> B.bot
  | _ -> B.top

(* [note] records a potential crash site; [definite] is downgraded to a may
   crash inside short-circuited right operands. *)
let rec aeval ~(note : string -> definite:bool -> unit) (m : aval VarMap.t)
    (e : Ast.expr) : aval =
  let aeval = aeval ~note in
  let int2 f g a b =
    let ia, pa = to_int_parts (aeval m a) in
    let ib, pb = to_int_parts (aeval m b) in
    aint (f ia ib) (g pa pb)
  in
  let cmp2 f a b =
    let ia, _ = to_int_parts (aeval m a) in
    let ib, _ = to_int_parts (aeval m b) in
    abool (B.of_pair (f ia ib))
  in
  match e with
  | Ast.Int n -> aint (Interval.const n) (P.of_int n)
  | Ast.Bool b -> ABool (B.const b)
  | Ast.Str s -> AStr (Interval.const (String.length s))
  | Ast.Var x -> ( match VarMap.find_opt x m with Some v -> v | None -> ABot)
  | Ast.Unop (Ast.Neg, a) ->
      let i, p = to_int_parts (aeval m a) in
      aint (Interval.neg i) (P.neg p)
  | Ast.Unop (Ast.Not, a) -> abool (B.not_ (to_abool (aeval m a)))
  | Ast.Binop (Ast.And, a, b) ->
      let va = to_abool (aeval m a) in
      (* b only evaluates when a is true: its crashes are never definite *)
      let vb = to_abool (aeval_may ~note m b) in
      abool (B.and_ va vb)
  | Ast.Binop (Ast.Or, a, b) ->
      let va = to_abool (aeval m a) in
      let vb = to_abool (aeval_may ~note m b) in
      abool (B.or_ va vb)
  | Ast.Binop (Ast.Add, a, b) -> (
      match (aeval m a, aeval m b) with
      | AStr l1, AStr l2 -> AStr (Interval.add l1 l2)
      | ABot, _ | _, ABot -> ABot
      | AInt (i1, p1), AInt (i2, p2) -> aint (Interval.add i1 i2) (P.add p1 p2)
      | _ -> ATop (* untracked type: int + or string concat *))
  | Ast.Binop (Ast.Sub, a, b) -> int2 Interval.sub P.sub a b
  | Ast.Binop (Ast.Mul, a, b) -> int2 Interval.mul P.mul a b
  | Ast.Binop (Ast.Div, a, b) ->
      let ia, _ = to_int_parts (aeval m a) in
      let ib, _ = to_int_parts (aeval m b) in
      note_div note "division by zero" ib;
      aint (Interval.div ia ib) P.top
  | Ast.Binop (Ast.Mod, a, b) ->
      let ia, _ = to_int_parts (aeval m a) in
      let ib, _ = to_int_parts (aeval m b) in
      note_div note "modulo by zero" ib;
      aint (Interval.rem ia ib) P.top
  | Ast.Binop (Ast.Lt, a, b) -> cmp2 Interval.cmp_lt a b
  | Ast.Binop (Ast.Le, a, b) -> cmp2 Interval.cmp_le a b
  | Ast.Binop (Ast.Gt, a, b) -> cmp2 (fun x y -> Interval.cmp_lt y x) a b
  | Ast.Binop (Ast.Ge, a, b) -> cmp2 (fun x y -> Interval.cmp_le y x) a b
  | Ast.Binop (Ast.Eq, a, b) -> abool (aeq (aeval m a) (aeval m b))
  | Ast.Binop (Ast.Ne, a, b) -> abool (B.not_ (aeq (aeval m a) (aeval m b)))
  | Ast.Index (a, i) -> (
      let va = aeval m a in
      let ii, _ = to_int_parts (aeval m i) in
      match va with
      | AArr (len, (c, q)) ->
          note_index note ~len ~idx:ii;
          aint c q
      | ABot -> ABot
      | _ -> aint_top)
  | Ast.Field (a, _) -> ( match aeval m a with ABot -> ABot | _ -> ATop)
  | Ast.Len a -> (
      match aeval m a with
      | AArr (len, _) -> aint len P.top
      | AStr len -> aint len P.top
      | ABot -> ABot
      | _ -> aint (Interval.at_least 0) P.top)
  | Ast.Call (f, args) -> builtin_summary ~note f (List.map (aeval m) args)
  | Ast.NewArray e -> (
      let n, _ = to_int_parts (aeval m e) in
      let ok = Interval.meet n (Interval.range 0 max_array_len) in
      (match n with
      | Interval.Bot -> ()
      | _ ->
          if Interval.is_bot ok then note "new int[n]: size out of range" ~definite:true
          else if not (Interval.equal ok n) then
            note "new int[n]: size out of range" ~definite:false);
      if Interval.is_bot ok then ABot
      else AArr (ok, (Interval.const 0, P.Even)))
  | Ast.ArrayLit es ->
      let cells = List.map (fun e -> to_int_parts (aeval m e)) es in
      let c =
        List.fold_left (fun acc (i, _) -> Interval.join acc i) Interval.bot cells
      in
      let q = List.fold_left (fun acc (_, p) -> P.join acc p) P.bot cells in
      if List.exists (fun (i, _) -> Interval.is_bot i) cells then ABot
      else AArr (Interval.const (List.length es), (c, q))
  | Ast.RecordLit fs ->
      List.iter (fun (_, e) -> ignore (aeval m e)) fs;
      AObj

(* evaluation contexts that may be skipped at runtime (short-circuit):
   crashes found inside are only ever "may" *)
and aeval_may ~note m e =
  aeval ~note:(fun what ~definite:_ -> note what ~definite:false) m e

and aeq va vb =
  match (va, vb) with
  | ABot, _ | _, ABot -> B.bot
  | AInt (i1, p1), AInt (i2, p2) ->
      let may_t = (not (Interval.is_bot (Interval.meet i1 i2))) && P.meet p1 p2 <> P.PBot in
      let may_f =
        match (Interval.is_const i1, Interval.is_const i2) with
        | Some x, Some y -> x <> y
        | _ -> true
      in
      B.of_pair (may_t, may_f)
  | ABool b1, ABool b2 ->
      B.of_pair
        ( (b1.B.may_t && b2.B.may_t) || (b1.B.may_f && b2.B.may_f),
          (b1.B.may_t && b2.B.may_f) || (b1.B.may_f && b2.B.may_t) )
  | AStr l1, AStr l2 ->
      let overlap = not (Interval.is_bot (Interval.meet l1 l2)) in
      let both_empty = Interval.is_const l1 = Some 0 && Interval.is_const l2 = Some 0 in
      B.of_pair (overlap, not both_empty)
  | _ -> B.top

and note_div note what ib =
  if Interval.contains ib 0 then
    note what ~definite:(Interval.is_const ib = Some 0)

and note_index note ~len ~idx =
  match (len, idx) with
  | Interval.Bot, _ | _, Interval.Bot -> ()
  | _ ->
      let definitely_oob =
        match (idx, len) with
        | Interval.Iv (_, Interval.Fin hi), _ when hi < 0 -> true
        | Interval.Iv (Interval.Fin lo, _), Interval.Iv (_, Interval.Fin lmax) ->
            lo >= lmax
        | _ -> false
      in
      let provably_ok =
        match (idx, len) with
        | Interval.Iv (Interval.Fin lo, Interval.Fin hi), Interval.Iv (Interval.Fin lmin, _)
          ->
            lo >= 0 && hi < lmin
        | _ -> false
      in
      if definitely_oob then note "index out of bounds" ~definite:true
      else if not provably_ok then note "index out of bounds" ~definite:false

(* closed-form summaries for the interpreter's builtins: argument ranges in,
   return range + crash condition out.  These are the leaves of the call
   graph ({!Summary}). *)
and builtin_summary ~note f (args : aval list) : aval =
  let itv v = fst (to_int_parts v) in
  let slen = function AStr l -> l | ABot -> Interval.bot | _ -> Interval.at_least 0 in
  if List.exists (fun a -> a = ABot) args then ABot
  else
    match (f, args) with
    | "abs", [ a ] ->
        let i, p = to_int_parts a in
        aint (Interval.abs_ i) p (* |n| has n's parity, even at min_int *)
    | "min", [ a; b ] ->
        let ia, pa = to_int_parts a and ib, pb = to_int_parts b in
        aint (Interval.min_ ia ib) (P.join pa pb)
    | "max", [ a; b ] ->
        let ia, pa = to_int_parts a and ib, pb = to_int_parts b in
        aint (Interval.max_ ia ib) (P.join pa pb)
    | "pow", [ _; e ] ->
        let ie = itv e in
        (match ie with
        | Interval.Iv (_, Interval.Fin hi) when hi < 0 ->
            note "pow: negative exponent" ~definite:true
        | _ -> if not (Interval.is_bot (Interval.meet ie (Interval.at_most (-1)))) then
              note "pow: negative exponent" ~definite:false);
        aint_top
    | "substring", [ s; start; len ] ->
        let ls = slen s and is_ = itv start and il = itv len in
        let ok =
          match (is_, il, ls) with
          | Interval.Iv (Interval.Fin s0, Interval.Fin s1),
            Interval.Iv (Interval.Fin l0, Interval.Fin l1),
            Interval.Iv (Interval.Fin m0, _) ->
              s0 >= 0 && l0 >= 0 && s1 + l1 <= m0
          | _ -> false
        in
        if not ok then note "substring: out of range" ~definite:false;
        AStr (Interval.meet il (Interval.at_least 0))
    | "charAt", [ s; i ] ->
        let ls = slen s and ii = itv i in
        let ok =
          match (ii, ls) with
          | Interval.Iv (Interval.Fin lo, Interval.Fin hi), Interval.Iv (Interval.Fin m0, _)
            ->
              lo >= 0 && hi < m0
          | _ -> false
        in
        if not ok then note "charAt: out of range" ~definite:false;
        AStr (Interval.const 1)
    | "indexOf", [ s; _ ] ->
        (* -1 or a position strictly below the length of s *)
        aint (Interval.join (Interval.const (-1)) (slen s)) P.top
    | "ord", [ s ] ->
        (match Interval.is_const (slen s) with
        | Some 1 -> ()
        | Some _ -> note "ord: expected 1-char string" ~definite:true
        | None -> note "ord: expected 1-char string" ~definite:false);
        aint (Interval.range 0 255) P.top
    | "chr", [ n ] ->
        let ii = itv n in
        let ok = Interval.meet ii (Interval.range 0 255) in
        if Interval.is_bot ok then note "chr: out of range" ~definite:true
        else if not (Interval.equal ok ii) then note "chr: out of range" ~definite:false;
        AStr (Interval.const 1)
    | "toString", [ _ ] -> AStr (Interval.range 1 20)
    | _ ->
        note (Printf.sprintf "unknown builtin %s/%d" f (List.length args))
          ~definite:true;
        ABot

(* ---------------- guard refinement ---------------- *)

let flip_cmp = function
  | Ast.Lt -> Ast.Ge
  | Ast.Le -> Ast.Gt
  | Ast.Gt -> Ast.Le
  | Ast.Ge -> Ast.Lt
  | Ast.Eq -> Ast.Ne
  | Ast.Ne -> Ast.Eq
  | op -> op

let nonote _ ~definite:_ = ()

(** [assume m cond taken]: the environment refined by the guard going the
    [taken] way, or [None] when that outcome is infeasible. *)
let rec assume (m : aval VarMap.t) (cond : Ast.expr) (taken : bool) :
    aval VarMap.t option =
  let feasible m' =
    let v = to_abool (aeval ~note:nonote m' cond) in
    if B.contains v taken then Some m' else None
  in
  match cond with
  | Ast.Bool b -> if b = taken then Some m else None
  | Ast.Var x -> (
      match VarMap.find_opt x m with
      | Some (ABool b) ->
          if B.contains b taken then Some (VarMap.add x (ABool (B.const taken)) m)
          else None
      | Some ABot | None -> None
      | _ -> Some m)
  | Ast.Unop (Ast.Not, e) -> assume m e (not taken)
  | Ast.Binop (Ast.And, a, b) when taken ->
      Option.bind (assume m a true) (fun m -> assume m b true)
  | Ast.Binop (Ast.Or, a, b) when not taken ->
      Option.bind (assume m a false) (fun m -> assume m b false)
  | Ast.Binop (Ast.And, a, b) ->
      (* !(a && b): a false, or a true and b false *)
      join_opt (assume m a false)
        (Option.bind (assume m a true) (fun m -> assume m b false))
  | Ast.Binop (Ast.Or, a, b) ->
      join_opt (assume m a true)
        (Option.bind (assume m a false) (fun m -> assume m b true))
  | Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne) as op, a, b) ->
      let op = if taken then op else flip_cmp op in
      Option.bind (refine_cmp m op a b) feasible
  | _ -> feasible m

and join_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some m1, Some m2 -> (
      match join_env (Env m1) (Env m2) with Env m -> Some m | Unreached -> None)

(** Refine variable operands of an integer comparison.  Always sound: meet
    with a bound derived from the other side's current interval. *)
and refine_cmp m op a b =
  let refine_var m x refine other =
    match VarMap.find_opt x m with
    | Some (AInt (i, p)) ->
        let other_i, other_p = to_int_parts (aeval ~note:nonote m other) in
        let i' = refine i other_i in
        let p' = match op with Ast.Eq -> P.meet p other_p | _ -> p in
        if Interval.is_bot i' || p' = P.PBot then None
        else Some (VarMap.add x (AInt (i', p')) m)
    | _ -> Some m
  in
  let left, right =
    match op with
    | Ast.Lt -> (Interval.refine_lt, Interval.refine_gt)
    | Ast.Le -> (Interval.refine_le, Interval.refine_ge)
    | Ast.Gt -> (Interval.refine_gt, Interval.refine_lt)
    | Ast.Ge -> (Interval.refine_ge, Interval.refine_le)
    | Ast.Eq -> (Interval.refine_eq, Interval.refine_eq)
    | Ast.Ne -> (Interval.refine_ne, Interval.refine_ne)
    | _ -> ((fun i _ -> i), fun i _ -> i)
  in
  let m = match a with Ast.Var x -> refine_var m x left b | _ -> Some m in
  match m with
  | None -> None
  | Some m -> ( match b with Ast.Var y -> refine_var m y right a | _ -> Some m)

(* ---------------- transfer ---------------- *)

let transfer ~note (node : Cfg.node) (env : env) : env =
  match env with
  | Unreached -> Unreached
  | Env m -> (
      match node with
      | Cfg.Entry | Cfg.Exit -> env
      | Cfg.Stmt s -> (
          match s.Ast.node with
          | Ast.Decl (_, x, e) | Ast.Assign (x, e) ->
              Env (VarMap.add x (aeval ~note m e) m)
          | Ast.StoreIndex (x, i, e) -> (
              let ii, _ = to_int_parts (aeval ~note m i) in
              let ve = aeval ~note m e in
              match VarMap.find_opt x m with
              | Some (AArr (len, (c, q))) ->
                  note_index note ~len ~idx:ii;
                  let ci, cp = to_int_parts ve in
                  (* weak update: the store hits one cell, the hull keeps all *)
                  Env
                    (VarMap.add x
                       (AArr (len, (Interval.join c ci, P.join q cp)))
                       m)
              | _ -> env)
          | Ast.StoreField (_, _, e) ->
              ignore (aeval ~note m e);
              env
          | Ast.Return e | Ast.If (e, _, _) | Ast.While (e, _) | Ast.For (_, e, _, _)
            ->
              ignore (aeval ~note m e);
              env
          | Ast.Break | Ast.Continue -> env))

(* ---------------- the fixpoint ---------------- *)

type result = {
  cfg : Cfg.t;
  before : env array;
  after : env array;  (* unrefined: branch refinement lives on the edges *)
  guards : B.t option array;  (* branch nodes: abstract guard at entry *)
  reached : bool array;
  widen_points : bool array;
  crashes : crash list;
  ret : aval;  (* join over all Return expressions *)
  iterations : int;
}

let back_edge_targets (cfg : Cfg.t) =
  let n = Cfg.n_nodes cfg in
  let wp = Array.make n false in
  let state = Array.make n `White in
  let rec dfs u =
    state.(u) <- `Grey;
    List.iter
      (fun v ->
        match state.(v) with
        | `Grey -> wp.(v) <- true
        | `White -> dfs v
        | `Black -> ())
      cfg.Cfg.succs.(u);
    state.(u) <- `Black
  in
  dfs Cfg.entry;
  wp

(** The fact flowing along edge [u -> v]: [after.(u)] refined by the branch
    guard when [u] is a condition node. *)
let edge_fact (cfg : Cfg.t) (after : env array) u v : env =
  match after.(u) with
  | Unreached -> Unreached
  | Env m -> (
      match (cfg.Cfg.cond_succs.(u), Cfg.stmt_of cfg u) with
      | Some (t, f), Some s ->
          let g =
            match s.Ast.node with
            | Ast.If (c, _, _) | Ast.While (c, _) | Ast.For (_, c, _, _) -> c
            | _ -> Ast.Bool true (* unreachable: cond_succs only on branches *)
          in
          let via taken = if taken then v = t else v = f in
          let arm taken =
            if via taken then
              match assume m g taken with Some m -> Env m | None -> Unreached
            else Unreached
          in
          join_env (arm true) (arm false)
      | _ -> after.(u))

(** Widening thresholds: every integer literal in the method plus its
    neighbours (a loop exiting on [i <= n] leaves the counter at [n + 1]),
    and a few universal landmarks. *)
let thresholds_of_meth (meth : Ast.meth) : int list =
  let acc = ref [ -1; 0; 1; max_array_len ] in
  let rec go_expr (e : Ast.expr) =
    match e with
    | Ast.Int n ->
        if abs n < (1 lsl 50) then acc := (n - 1) :: n :: (n + 1) :: !acc
    | Ast.Bool _ | Ast.Str _ | Ast.Var _ -> ()
    | Ast.Unop (_, a) | Ast.Len a | Ast.NewArray a | Ast.Field (a, _) -> go_expr a
    | Ast.Binop (_, a, b) | Ast.Index (a, b) -> go_expr a; go_expr b
    | Ast.Call (_, es) | Ast.ArrayLit es -> List.iter go_expr es
    | Ast.RecordLit fs -> List.iter (fun (_, e) -> go_expr e) fs
  in
  List.iter
    (fun (s : Ast.stmt) ->
      match s.Ast.node with
      | Ast.Decl (_, _, e) | Ast.Assign (_, e) | Ast.Return e -> go_expr e
      | Ast.StoreIndex (_, i, e) -> go_expr i; go_expr e
      | Ast.StoreField (_, _, e) -> go_expr e
      | Ast.If (c, _, _) | Ast.While (c, _) | Ast.For (_, c, _, _) -> go_expr c
      | Ast.Break | Ast.Continue -> ())
    (Ast.all_stmts meth);
  List.sort_uniq compare !acc

let init_env_of_params (meth : Ast.meth) (params : aval list option) =
  let bindings =
    match params with
    | Some vs -> List.map2 (fun (ty, x) v -> ignore ty; (x, v)) meth.Ast.params vs
    | None -> List.map (fun (ty, x) -> (x, of_type ty)) meth.Ast.params
  in
  Env (List.fold_left (fun m (x, v) -> VarMap.add x v m) VarMap.empty bindings)

let narrowing_sweeps = 2

(** Analyze [meth].  [params] overrides the per-parameter input abstraction
    (used by {!Summary} to compute argument-range -> return-range
    summaries); the default is the type-directed top. *)
let analyze ?cfg ?params (meth : Ast.meth) : result =
  let cfg = match cfg with Some c -> c | None -> Cfg.build meth in
  let n = Cfg.n_nodes cfg in
  let before = Array.make n Unreached in
  let after = Array.make n Unreached in
  let widen_points = back_edge_targets cfg in
  let thresholds = thresholds_of_meth meth in
  let init = init_env_of_params meth params in
  let rpo, order, _ = Dominator.compute_rpo n cfg.Cfg.succs Cfg.entry in
  let module WL = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let wl = ref (WL.singleton (rpo.(Cfg.entry), Cfg.entry)) in
  let visited = Array.make n false in
  let iterations = ref 0 in
  let input_of u =
    if u = Cfg.entry then init
    else
      List.fold_left
        (fun acc p -> join_env acc (edge_fact cfg after p u))
        Unreached cfg.Cfg.preds.(u)
  in
  while not (WL.is_empty !wl) do
    let ((_, u) as el) = WL.min_elt !wl in
    wl := WL.remove el !wl;
    incr iterations;
    let input = input_of u in
    let new_before =
      if widen_points.(u) && visited.(u) then widen_env ~thresholds before.(u) input
      else input
    in
    before.(u) <- new_before;
    let out = transfer ~note:nonote cfg.Cfg.nodes.(u) new_before in
    let first = not visited.(u) in
    visited.(u) <- true;
    if first || not (equal_env out after.(u)) then begin
      after.(u) <- out;
      List.iter
        (fun v -> if rpo.(v) >= 0 then wl := WL.add (rpo.(v), v) !wl)
        cfg.Cfg.succs.(u)
    end
  done;
  (* narrowing: recompute in RPO from unwidened inputs, refining only the
     bounds widening pushed to infinity *)
  for _ = 1 to narrowing_sweeps do
    List.iter
      (fun u ->
        if visited.(u) then begin
          let input = input_of u in
          before.(u) <- narrow_env before.(u) input;
          after.(u) <- transfer ~note:nonote cfg.Cfg.nodes.(u) before.(u)
        end)
      order
  done;
  (* final collection pass: guards, crash sites, return value *)
  let guards = Array.make n None in
  let crashes = ref [] in
  let ret = ref ABot in
  Array.iteri
    (fun u node ->
      match before.(u) with
      | Unreached -> ()
      | Env m -> (
          match node with
          | Cfg.Entry | Cfg.Exit -> ()
          | Cfg.Stmt s ->
              let note what ~definite =
                let c = { c_sid = s.Ast.sid; c_what = what; c_definite = definite } in
                if not (List.mem c !crashes) then crashes := c :: !crashes
              in
              ignore (transfer ~note node before.(u));
              (match s.Ast.node with
              | Ast.If (c, _, _) | Ast.While (c, _) | Ast.For (_, c, _, _) ->
                  guards.(u) <- Some (to_abool (aeval ~note:nonote m c))
              | Ast.Return e -> ret := join_aval !ret (aeval ~note:nonote m e)
              | _ -> ())))
    cfg.Cfg.nodes;
  let reached = Array.map (fun e -> e <> Unreached) before in
  {
    cfg;
    before;
    after;
    guards;
    reached;
    widen_points;
    crashes = List.rev !crashes;
    ret = !ret;
    iterations = !iterations;
  }

(* ---------------- queries and the proof API ---------------- *)

let env_lookup (e : env) x =
  match e with Unreached -> ABot | Env m -> ( match VarMap.find_opt x m with Some v -> v | None -> ABot)

(** Abstract value of [e] at the entry of the statement [sid] (expressions
    are pure, so this covers every sub-expression evaluation the statement
    performs). *)
let aval_at (r : result) ~sid (e : Ast.expr) : aval =
  match Cfg.node_of_sid r.cfg sid with
  | None -> ATop
  | Some u -> (
      match r.before.(u) with
      | Unreached -> ABot
      | Env m -> aeval ~note:nonote m e)

let interval_at r ~sid e = fst (to_int_parts (aval_at r ~sid e))

(** Every execution reaching [sid] evaluates [e] to a nonzero integer. *)
let proves_nonzero (r : result) ~sid (e : Ast.expr) : bool =
  match aval_at r ~sid e with
  | AInt (i, p) -> (not (Interval.contains i 0)) || p = P.Odd
  | ABot -> true (* vacuous: the statement is never reached *)
  | _ -> false

(** Every execution reaching [sid] evaluates [idx] within the bounds of the
    array [arr]. *)
let proves_in_bounds (r : result) ~sid ~(arr : Ast.expr) (idx : Ast.expr) : bool =
  match (aval_at r ~sid arr, aval_at r ~sid idx) with
  | AArr (len, _), AInt (i, _) -> (
      match (i, len) with
      | Interval.Iv (Interval.Fin lo, Interval.Fin hi), Interval.Iv (Interval.Fin lmin, _)
        ->
          lo >= 0 && hi < lmin
      | _ -> false)
  | ABot, _ | _, ABot -> true (* vacuous *)
  | _ -> false

(** No execution reaching the branch statement [sid] takes the [taken]
    outcome.  Conservative: only claims infeasibility for nodes the analysis
    actually reached (a blind spot upstream would make the vacuous answer
    useless to consumers like symexec). *)
let proves_infeasible (r : result) ~sid ~(taken : bool) : bool =
  match Cfg.node_of_sid r.cfg sid with
  | None -> false
  | Some u -> (
      r.reached.(u)
      && match r.guards.(u) with Some g -> not (B.contains g taken) | None -> false)

(** Definite crash sites: statements where every execution crashes. *)
let definite_crashes (r : result) =
  List.filter (fun c -> c.c_definite) r.crashes

(** Provably-dead branch arms: [(sid, taken)] pairs where the [taken]
    outcome never happens, on reached branch nodes. *)
let dead_branches (r : result) =
  let acc = ref [] in
  Array.iteri
    (fun u g ->
      match (g, Cfg.stmt_of r.cfg u) with
      | Some g, Some s ->
          if not g.B.may_t then acc := (s.Ast.sid, true) :: !acc;
          if not g.B.may_f then acc := (s.Ast.sid, false) :: !acc
      | _ -> ())
    r.guards;
  List.rev !acc

let pp_env ppf (e : env) =
  match e with
  | Unreached -> Fmt.pf ppf "(unreached)"
  | Env m ->
      let bs = VarMap.bindings m in
      Fmt.pf ppf "{%s}"
        (String.concat ", "
           (List.map (fun (x, v) -> Printf.sprintf "%s: %s" x (aval_to_string v)) bs))
