(** Return-value slicing: which variables can influence what a method
    returns?

    Built on the def-use relation the CFG exposes: the slice seeds with the
    variables read by [Return] statements plus every branch condition's
    variables (conservative control dependence — the executed path itself is
    data the blended trace carries), then closes backwards over definitions:
    if a relevant variable is defined from [ys], the [ys] are relevant.

    The point (following Henkel et al.'s abstracted traces): a state trace
    may drop the columns of variables outside the slice without changing
    which function the program computes, so the encoder can carry less.  The
    mutator's dead declarations are exactly such columns. *)

open Liger_lang
module VarSet = Dataflow.VarSet

(** The set of variables that can influence the return value (or control
    flow) of [meth]. *)
let relevant_vars ?cfg (meth : Ast.meth) : VarSet.t =
  let cfg = match cfg with Some c -> c | None -> Cfg.build meth in
  let defs = ref [] in
  (* seed: variables returns read, plus every branch guard's variables *)
  let seed = ref VarSet.empty in
  Array.iter
    (fun node ->
      match node with
      | Cfg.Stmt s -> (
          (match Cfg.def_of_stmt s with
          | Some (x, _) -> defs := (x, Cfg.uses_of_stmt s) :: !defs
          | None -> ());
          match s.Ast.node with
          | Ast.Return e ->
              seed := VarSet.union !seed (VarSet.of_list (Ast.expr_vars e))
          | Ast.If _ | Ast.While _ | Ast.For _ ->
              seed := VarSet.union !seed (VarSet.of_list (Cfg.uses_of_stmt s))
          | _ -> ())
      | Cfg.Entry | Cfg.Exit -> ())
    cfg.Cfg.nodes;
  (* closure over the def-use chains *)
  let relevant = ref !seed in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (x, uses) ->
        if VarSet.mem x !relevant then
          List.iter
            (fun y ->
              if not (VarSet.mem y !relevant) then begin
                relevant := VarSet.add y !relevant;
                changed := true
              end)
            uses)
      !defs
  done;
  !relevant

(** Keep-predicate over state-trace columns, the form the encoder consumes.
    Everything is kept when the method has no return-relevant structure at
    all (defensive: a malformed method yields the identity filter). *)
let keep_filter ?cfg (meth : Ast.meth) : string -> bool =
  let r = relevant_vars ?cfg meth in
  if VarSet.is_empty r then fun _ -> true else fun x -> VarSet.mem x r

(** Statements in the backward slice: definitions of relevant variables,
    branches, jumps and returns — the [sid]s [liger analyze] highlights. *)
let slice_sids ?cfg (meth : Ast.meth) : int list =
  let cfg = match cfg with Some c -> c | None -> Cfg.build meth in
  let rel = relevant_vars ~cfg meth in
  Array.to_list cfg.Cfg.nodes
  |> List.filter_map (fun node ->
         match node with
         | Cfg.Stmt s -> (
             match s.Ast.node with
             | Ast.Return _ | Ast.If _ | Ast.While _ | Ast.For _ | Ast.Break
             | Ast.Continue ->
                 Some s.Ast.sid
             | _ -> (
                 match Cfg.def_of_stmt s with
                 | Some (x, _) when VarSet.mem x rel -> Some s.Ast.sid
                 | _ -> None))
         | Cfg.Entry | Cfg.Exit -> None)
