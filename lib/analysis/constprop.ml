(** Constant propagation and folding over the flat (Kildall) lattice.

    Each scalar variable maps to [Const c] or [NonConst]; aggregates (arrays,
    objects) are never tracked.  Folding is crash-preserving: an expression
    is rewritten to a literal only when the abstract evaluator proves both
    its value {e and} that evaluating it cannot crash ([2 / 0] stays, [&&]
    only folds through its left operand), so folded methods are
    observationally equivalent — the differential tests execute both. *)

open Liger_lang

type const = CInt of int | CBool of bool | CStr of string

type value = Const of const | NonConst

module VarMap = Map.Make (String)

(** Absent variables are unreached (lattice bottom). *)
type env = value VarMap.t

module Fact = struct
  type t = env

  let bottom = VarMap.empty
  let equal = VarMap.equal ( = )

  let join a b =
    VarMap.union (fun _ va vb -> Some (if va = vb then va else NonConst)) a b
end

module S = Dataflow.Solver (Fact)

let rec eval (env : env) (e : Ast.expr) : value =
  match e with
  | Ast.Int n -> Const (CInt n)
  | Ast.Bool b -> Const (CBool b)
  | Ast.Str s -> Const (CStr s)
  | Ast.Var x -> ( match VarMap.find_opt x env with Some v -> v | None -> NonConst)
  | Ast.Unop (Ast.Neg, a) -> (
      match eval env a with Const (CInt n) -> Const (CInt (-n)) | _ -> NonConst)
  | Ast.Unop (Ast.Not, a) -> (
      match eval env a with Const (CBool b) -> Const (CBool (not b)) | _ -> NonConst)
  | Ast.Binop (Ast.And, a, b) -> (
      (* short-circuit: a constant-false left makes the right irrelevant,
         but a non-constant left may crash, so nothing else folds *)
      match eval env a with
      | Const (CBool false) -> Const (CBool false)
      | Const (CBool true) -> eval env b
      | _ -> NonConst)
  | Ast.Binop (Ast.Or, a, b) -> (
      match eval env a with
      | Const (CBool true) -> Const (CBool true)
      | Const (CBool false) -> eval env b
      | _ -> NonConst)
  | Ast.Binop (op, a, b) -> eval_binop op (eval env a) (eval env b)
  | Ast.Index _ | Ast.Field _ | Ast.Len _ | Ast.Call _ | Ast.NewArray _
  | Ast.ArrayLit _ | Ast.RecordLit _ ->
      NonConst

and eval_binop op a b =
  match (op, a, b) with
  | Ast.Add, Const (CInt x), Const (CInt y) -> Const (CInt (x + y))
  | Ast.Add, Const (CStr x), Const (CStr y) -> Const (CStr (x ^ y))
  | Ast.Sub, Const (CInt x), Const (CInt y) -> Const (CInt (x - y))
  | Ast.Mul, Const (CInt x), Const (CInt y) -> Const (CInt (x * y))
  | Ast.Div, Const (CInt _), Const (CInt 0) -> NonConst (* preserves the crash *)
  | Ast.Div, Const (CInt x), Const (CInt y) -> Const (CInt (x / y))
  | Ast.Mod, Const (CInt _), Const (CInt 0) -> NonConst
  | Ast.Mod, Const (CInt x), Const (CInt y) -> Const (CInt (x mod y))
  | Ast.Lt, Const (CInt x), Const (CInt y) -> Const (CBool (x < y))
  | Ast.Le, Const (CInt x), Const (CInt y) -> Const (CBool (x <= y))
  | Ast.Gt, Const (CInt x), Const (CInt y) -> Const (CBool (x > y))
  | Ast.Ge, Const (CInt x), Const (CInt y) -> Const (CBool (x >= y))
  | Ast.Eq, Const x, Const y -> Const (CBool (x = y))
  | Ast.Ne, Const x, Const y -> Const (CBool (x <> y))
  | _ -> NonConst

let transfer node env =
  match node with
  | Cfg.Stmt s -> (
      match s.Ast.node with
      | Ast.Decl (_, x, e) | Ast.Assign (x, e) -> VarMap.add x (eval env e) env
      | _ -> env)
  | Cfg.Entry | Cfg.Exit -> env

type result = { cfg : Cfg.t; before : env array; after : env array }

let analyze ?cfg (meth : Ast.meth) : result =
  let cfg = match cfg with Some c -> c | None -> Cfg.build meth in
  (* Every declared variable starts NonConst (not just the parameters): a
     variable assigned on only some paths must stay NonConst after the join,
     since reading it on the others crashes — folding it would erase the
     crash. *)
  let init =
    List.fold_left
      (fun m x -> VarMap.add x NonConst m)
      VarMap.empty (Ast.declared_vars meth)
  in
  let r = S.solve cfg ~init ~transfer in
  { cfg; before = r.S.before; after = r.S.after }

(** The abstract value of a branch guard at its node. *)
let guard_value r i =
  match r.cfg.Cfg.nodes.(i) with
  | Cfg.Stmt { Ast.node = Ast.If (c, _, _) | Ast.While (c, _) | Ast.For (_, c, _, _); _ }
    -> (
      match eval r.before.(i) c with Const (CBool b) -> Some b | _ -> None)
  | _ -> None

(** Conditions that take the same branch on every execution: [(sid, outcome)]
    in program order. *)
let constant_guards r =
  let out = ref [] in
  Array.iteri
    (fun i node ->
      match (node, guard_value r i) with
      | Cfg.Stmt s, Some b -> out := (s.Ast.sid, b) :: !out
      | _ -> ())
    r.cfg.Cfg.nodes;
  List.rev !out

(* ---------------- folding ---------------- *)

let expr_of_const = function
  | CInt n -> Ast.Int n
  | CBool b -> Ast.Bool b
  | CStr s -> Ast.Str s

let rec fold_expr env e =
  match eval env e with
  | Const c -> expr_of_const c
  | NonConst -> (
      match e with
      | Ast.Binop (op, a, b) -> Ast.Binop (op, fold_expr env a, fold_expr env b)
      | Ast.Unop (op, a) -> Ast.Unop (op, fold_expr env a)
      | Ast.Index (a, i) -> Ast.Index (fold_expr env a, fold_expr env i)
      | Ast.Field (a, f) -> Ast.Field (fold_expr env a, f)
      | Ast.Len a -> Ast.Len (fold_expr env a)
      | Ast.Call (f, args) -> Ast.Call (f, List.map (fold_expr env) args)
      | Ast.NewArray a -> Ast.NewArray (fold_expr env a)
      | Ast.ArrayLit es -> Ast.ArrayLit (List.map (fold_expr env) es)
      | Ast.RecordLit fs -> Ast.RecordLit (List.map (fun (n, e) -> (n, fold_expr env e)) fs)
      | e -> e)

(** Fold every statically-constant expression to its literal, keeping
    statement ids and lines (the rewritten method stays trace-aligned). *)
let fold_meth ?cfg (meth : Ast.meth) : Ast.meth =
  let r = analyze ?cfg meth in
  let env_at (s : Ast.stmt) =
    match Cfg.node_of_sid r.cfg s.Ast.sid with
    | Some i -> r.before.(i)
    | None -> VarMap.empty
  in
  let rec fold_block block = List.map fold_stmt block
  and fold_stmt (s : Ast.stmt) =
    let env = env_at s in
    let node =
      match s.Ast.node with
      | Ast.Decl (t, x, e) -> Ast.Decl (t, x, fold_expr env e)
      | Ast.Assign (x, e) -> Ast.Assign (x, fold_expr env e)
      | Ast.StoreIndex (x, i, e) -> Ast.StoreIndex (x, fold_expr env i, fold_expr env e)
      | Ast.StoreField (x, f, e) -> Ast.StoreField (x, f, fold_expr env e)
      | Ast.If (c, b1, b2) -> Ast.If (fold_expr env c, fold_block b1, fold_block b2)
      | Ast.While (c, b) -> Ast.While (fold_expr env c, fold_block b)
      | Ast.For (init, c, update, b) ->
          Ast.For (fold_stmt init, fold_expr env c, fold_stmt update, fold_block b)
      | Ast.Return e -> Ast.Return (fold_expr env e)
      | (Ast.Break | Ast.Continue) as n -> n
    in
    { s with Ast.node }
  in
  { meth with Ast.body = fold_block meth.Ast.body }

let pp_value ppf = function
  | NonConst -> Fmt.string ppf "⊤"
  | Const (CInt n) -> Fmt.pf ppf "%d" n
  | Const (CBool b) -> Fmt.pf ppf "%b" b
  | Const (CStr s) -> Fmt.pf ppf "%S" s

let pp_env ppf env =
  Fmt.pf ppf "{%s}"
    (String.concat ", "
       (List.map
          (fun (x, v) -> Fmt.str "%s=%a" x pp_value v)
          (VarMap.bindings env)))
