(** Live variables (backward may-analysis) and the dead-store detector built
    on it.

    A variable is live at a point if some path from there reads it before any
    strong redefinition.  Weak defs ([a[i] = e], [o.f = e]) read the
    aggregate they update, so they keep it live — exactly the conservative
    treatment the in-place interpreter semantics require. *)

open Liger_lang
module VarSet = Dataflow.VarSet

module Fact = struct
  type t = VarSet.t

  let bottom = VarSet.empty
  let equal = VarSet.equal
  let join = VarSet.union
end

module S = Dataflow.Solver (Fact)

let transfer node fact =
  match node with
  | Cfg.Stmt s ->
      let killed =
        match Cfg.def_of_stmt s with
        | Some (x, `Strong) -> VarSet.remove x fact
        | _ -> fact
      in
      List.fold_left (fun acc x -> VarSet.add x acc) killed (Cfg.uses_of_stmt s)
  | Cfg.Entry | Cfg.Exit -> fact

type result = {
  cfg : Cfg.t;
  live_in : VarSet.t array;
  live_out : VarSet.t array;
  iterations : int;
}

let analyze ?cfg ?strategy (meth : Ast.meth) : result =
  let cfg = match cfg with Some c -> c | None -> Cfg.build meth in
  let r = S.solve ~direction:Dataflow.Backward ?strategy cfg ~init:VarSet.empty ~transfer in
  { cfg; live_out = r.S.before; live_in = r.S.after; iterations = r.S.iterations }

(** Strong definitions whose value no path ever reads: the [sid]s of
    [Decl]/[Assign] statements assigning a variable dead immediately after.
    This is precisely what {!Liger_lang.Mutate.insert_dead_code} plants (and
    what its differential property test checks). *)
let dead_stores r =
  let out = ref [] in
  Array.iteri
    (fun i node ->
      match node with
      | Cfg.Stmt ({ Ast.node = Ast.Decl (_, x, _) | Ast.Assign (x, _); _ } as s) ->
          if not (VarSet.mem x r.live_out.(i)) then out := s.Ast.sid :: !out
      | _ -> ())
    r.cfg.Cfg.nodes;
  List.sort compare !out
