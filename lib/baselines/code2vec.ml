(** code2vec (Alon et al. 2019): the bag-of-path-contexts static baseline.

    Each method is a bag of AST path contexts (left terminal, path, right
    terminal); a context embeds as [tanh(W (left ++ path ++ right))]; a
    global attention vector weights the contexts into a single code vector;
    the prediction is a softmax over {e whole method names} seen in
    training.  Predicting names as monolithic labels — rather than
    composing sub-tokens — is code2vec's defining limitation and the reason
    it trails code2seq in Table 2. *)

open Liger_tensor
open Liger_trace
open Liger_nn
open Liger_core

type enc_context = { left : int; path : int; right : int }

type t = {
  store : Param.store;
  vocab : Vocab.t;            (* terminal + path-token vocabulary *)
  labels : Vocab.t;           (* whole-name label space *)
  embedding : Embedding_layer.t;
  combine : Linear.t;
  attention_vec : Param.t;
  out : Linear.t;
  n_classes : int option;     (* Some n when used as a classifier instead *)
  path_seed : int;
  cache : (int, enc_context list) Hashtbl.t;
  cache_lock : Mutex.t;  (* predictions run in parallel; see Train.predictions *)
}

(** [create vocab ~labels task]: for naming, [labels] must contain every
    training method name (built by {!register_names}); for classification,
    pass the class count. *)
let create ?(dim = 16) ?(seed = 13) ?(path_seed = 1013) vocab ~labels
    (task : Liger_model.task) =
  let store = Param.create_store ~seed () in
  let n_out, n_classes =
    match task with
    | Liger_model.Naming -> (Vocab.size labels, None)
    | Liger_model.Classify n -> (n, Some n)
  in
  {
    store;
    vocab;
    labels;
    embedding = Embedding_layer.create store "ctx" vocab ~dim;
    combine = Linear.create store "combine" ~dim_in:(3 * dim) ~dim_out:dim;
    attention_vec = Param.matrix store "att" 1 dim;
    out = Linear.create store "out" ~dim_in:dim ~dim_out:n_out;
    n_classes;
    path_seed;
    cache = Hashtbl.create 256;
    cache_lock = Mutex.create ();
  }

let store t = t.store
let num_params t = Param.num_params t.store

(** Register a method's tokens (and its name as a label) into building
    vocabularies — call for every training method {e before} [create],
    which freezes nothing itself but requires frozen vocabularies. *)
let register ?(path_seed = 1013) vocab ~labels (meth : Liger_lang.Ast.meth) =
  let rng = Rng.create (path_seed + Hashtbl.hash meth.Liger_lang.Ast.mname) in
  let contexts = Ast_paths.extract rng (Encode.meth_tree meth) in
  List.iter
    (fun (c : Ast_paths.context) ->
      ignore (Vocab.id vocab c.Ast_paths.left);
      ignore (Vocab.id vocab (Ast_paths.path_token c));
      ignore (Vocab.id vocab c.Ast_paths.right))
    contexts;
  ignore (Vocab.id labels meth.Liger_lang.Ast.mname)

let contexts_of t (ex : Common.enc_example) =
  match Mutex.protect t.cache_lock (fun () -> Hashtbl.find_opt t.cache ex.Common.uid) with
  | Some cs -> cs
  | None ->
      let meth = ex.Common.meth in
      let rng = Rng.create (t.path_seed + Hashtbl.hash meth.Liger_lang.Ast.mname) in
      let cs =
        Ast_paths.extract rng (Encode.meth_tree meth)
        |> List.map (fun (c : Ast_paths.context) ->
               {
                 left = Vocab.id t.vocab c.Ast_paths.left;
                 path = Vocab.id t.vocab (Ast_paths.path_token c);
                 right = Vocab.id t.vocab c.Ast_paths.right;
               })
      in
      (* a concurrent extraction of the same example computed the same value *)
      Mutex.protect t.cache_lock (fun () ->
          if not (Hashtbl.mem t.cache ex.Common.uid) then
            Hashtbl.add t.cache ex.Common.uid cs);
      cs

let code_vector t tape (ex : Common.enc_example) =
  let contexts = contexts_of t ex in
  let embed id = Embedding_layer.embed_id t.embedding tape id in
  let vecs =
    List.map
      (fun c ->
        Linear.forward_tanh t.combine tape
          (Autodiff.concat tape [ embed c.left; embed c.path; embed c.right ]))
      contexts
  in
  match vecs with
  | [] -> Autodiff.const tape (Array.make (Embedding_layer.dim t.embedding) 0.0)
  | _ ->
      let vecs = Array.of_list vecs in
      let scores =
        Array.map (fun v -> Autodiff.matvec tape t.attention_vec v) vecs
      in
      let w = Autodiff.softmax tape (Autodiff.concat tape (Array.to_list scores)) in
      Autodiff.weighted_sum tape w vecs

let target_of t (ex : Common.enc_example) =
  match (ex.Common.label, t.n_classes) with
  | Common.Class c, Some _ -> c
  | Common.Name name, None -> Vocab.id t.labels name
  | _ -> invalid_arg "Code2vec: task/label mismatch"

let loss t tape (ex : Common.enc_example) =
  let logits = Linear.forward t.out tape (code_vector t tape ex) in
  fst (Autodiff.softmax_cross_entropy tape logits (target_of t ex))

(** Predicted sub-tokens: the argmax whole-name label, split. *)
let predict_name t tape (ex : Common.enc_example) =
  let logits = Linear.forward t.out tape (code_vector t tape ex) in
  let label = Tensor.argmax (Autodiff.value logits) in
  Liger_lang.Subtoken.split (Vocab.name t.labels label)

let predict_class t tape (ex : Common.enc_example) =
  let logits = Linear.forward t.out tape (code_vector t tape ex) in
  Tensor.argmax (Autodiff.value logits)
