(** code2seq (Alon et al. 2019): the strongest static baseline in Table 2.

    Differences from code2vec that matter here: terminals are decomposed
    into {e sub-tokens} (summed embeddings), paths are encoded as node-type
    {e sequences} by an RNN rather than hashed whole, and the method name is
    {e generated} sub-token by sub-token with a decoder attending over the
    encoded paths. *)

open Liger_tensor
open Liger_trace
open Liger_nn
open Liger_core
open Liger_lang

type enc_path = {
  left : int list;   (* sub-token ids of the left terminal *)
  path : int list;   (* node-type token ids along the path *)
  right : int list;
}

type t = {
  task : Liger_model.task;
  store : Param.store;
  vocab : Vocab.t;
  embedding : Embedding_layer.t;
  path_rnn : Rnn_cell.t;
  combine : Linear.t;
  decoder : Decoder.t option;
  classifier : Linear.t option;
  path_seed : int;
  cache : (int, enc_path list) Hashtbl.t;
  cache_lock : Mutex.t;  (* predictions run in parallel; see Train.predictions *)
}

let create ?(dim = 16) ?(seed = 17) ?(path_seed = 2017) vocab (task : Liger_model.task) =
  let store = Param.create_store ~seed () in
  let embedding = Embedding_layer.create store "tok" vocab ~dim in
  let path_rnn = Rnn_cell.create ~kind:Rnn_cell.Gru store "path" ~dim_in:dim ~dim_hidden:dim in
  let combine = Linear.create store "combine" ~dim_in:(3 * dim) ~dim_out:dim in
  let decoder, classifier =
    match task with
    | Liger_model.Naming ->
        (Some (Decoder.create store "dec" embedding ~dim_hidden:dim ~dim_mem:dim), None)
    | Liger_model.Classify n -> (None, Some (Linear.create store "cls" ~dim_in:dim ~dim_out:n))
  in
  { task; store; vocab; embedding; path_rnn; combine; decoder; classifier; path_seed;
    cache = Hashtbl.create 256; cache_lock = Mutex.create () }

let store t = t.store
let num_params t = Param.num_params t.store

let terminal_subtokens tok =
  match Subtoken.split tok with [] -> [ tok ] | ts -> ts

(** Register a method's sub-tokens and path node types into a building
    vocabulary — call for every training method {e before} [create]. *)
let register ?(path_seed = 2017) vocab (meth : Ast.meth) =
  (* the method's own sub-tokens are decoder targets *)
  List.iter (fun s -> ignore (Vocab.id vocab s)) (terminal_subtokens meth.Ast.mname);
  let rng = Rng.create (path_seed + Hashtbl.hash meth.Ast.mname) in
  let contexts = Ast_paths.extract rng (Encode.meth_tree meth) in
  List.iter
    (fun (c : Ast_paths.context) ->
      List.iter (fun s -> ignore (Vocab.id vocab s)) (terminal_subtokens c.Ast_paths.left);
      List.iter (fun s -> ignore (Vocab.id vocab s)) (terminal_subtokens c.Ast_paths.right);
      List.iter (fun s -> ignore (Vocab.id vocab s)) c.Ast_paths.path)
    contexts

let paths_of t (ex : Common.enc_example) =
  match Mutex.protect t.cache_lock (fun () -> Hashtbl.find_opt t.cache ex.Common.uid) with
  | Some ps -> ps
  | None ->
      let meth = ex.Common.meth in
      let rng = Rng.create (t.path_seed + Hashtbl.hash meth.Ast.mname) in
      let ps =
        Ast_paths.extract rng (Encode.meth_tree meth)
        |> List.map (fun (c : Ast_paths.context) ->
               {
                 left = List.map (Vocab.id t.vocab) (terminal_subtokens c.Ast_paths.left);
                 path = List.map (Vocab.id t.vocab) c.Ast_paths.path;
                 right = List.map (Vocab.id t.vocab) (terminal_subtokens c.Ast_paths.right);
               })
      in
      (* a concurrent extraction of the same example computed the same value *)
      Mutex.protect t.cache_lock (fun () ->
          if not (Hashtbl.mem t.cache ex.Common.uid) then
            Hashtbl.add t.cache ex.Common.uid ps);
      ps

(* code2seq owns its vocabulary (built over the raw sources, not traces), so
   decoder targets are re-derived from the label rather than taken from the
   example's main-vocabulary target ids. *)
let target_ids t (ex : Common.enc_example) =
  match ex.Common.label with
  | Common.Name name -> List.map (Vocab.id t.vocab) (Subtoken.split name)
  | Common.Class c -> [ c ]

let sum_embeddings t tape ids =
  match ids with
  | [] -> Autodiff.const tape (Array.make (Embedding_layer.dim t.embedding) 0.0)
  | first :: rest ->
      List.fold_left
        (fun acc id -> Autodiff.add tape acc (Embedding_layer.embed_id t.embedding tape id))
        (Embedding_layer.embed_id t.embedding tape first)
        rest

let encode_path t tape (p : enc_path) =
  let left = sum_embeddings t tape p.left in
  let right = sum_embeddings t tape p.right in
  let path =
    Rnn_cell.last t.path_rnn tape
      (List.map (Embedding_layer.embed_id t.embedding tape) p.path)
  in
  Linear.forward_tanh t.combine tape (Autodiff.concat tape [ left; path; right ])

(** Encode a method: memory = the encoded paths; the "program embedding"
    handed to the decoder is their mean. *)
let encode t tape (ex : Common.enc_example) =
  let encoded = List.map (encode_path t tape) (paths_of t ex) in
  match encoded with
  | [] ->
      let z = Autodiff.const tape (Array.make (Embedding_layer.dim t.embedding) 0.0) in
      (z, [| z |])
  | _ ->
      let memory = Array.of_list encoded in
      (Autodiff.mean_pool tape memory, memory)

let loss t tape (ex : Common.enc_example) =
  let program_embedding, memory = encode t tape ex in
  match (t.task, t.decoder, t.classifier) with
  | Liger_model.Naming, Some dec, _ ->
      Decoder.loss dec tape ~memory ~program_embedding ~target_ids:(target_ids t ex)
  | Liger_model.Classify _, _, Some cls -> (
      let logits = Linear.forward cls tape program_embedding in
      match ex.Common.target_ids with
      | [ c ] -> fst (Autodiff.softmax_cross_entropy tape logits c)
      | _ -> invalid_arg "Code2seq.loss: classification target must be one class")
  | _ -> invalid_arg "Code2seq.loss: task/head mismatch"

let predict_name t tape (ex : Common.enc_example) =
  match t.decoder with
  | None -> invalid_arg "Code2seq.predict_name: not a naming model"
  | Some dec ->
      let program_embedding, memory = encode t tape ex in
      List.map (Vocab.name t.vocab) (Decoder.decode dec tape ~memory ~program_embedding)

let predict_class t tape (ex : Common.enc_example) =
  match t.classifier with
  | None -> invalid_arg "Code2seq.predict_class: not a classification model"
  | Some cls ->
      let program_embedding, _ = encode t tape ex in
      Tensor.argmax (Autodiff.value (Linear.forward cls tape program_embedding))
