(** DYPRO (Wang 2019): the dynamic-only baseline.

    DYPRO embeds each {e concrete} execution trace separately — there is no
    symbolic dimension and no grouping by path — and pools the per-trace
    embeddings into the program embedding.  Per §6.1 we feed it "the
    variable names together with their values": each variable embeds as the
    concatenation of its name-token embedding and its value embedding (an
    RNN over the flattened value for composites), a state RNN folds the
    variables, and a trace RNN folds the states.

    Compared to LiGer's encoder this is exactly the "remove static features
    and ungroup the traces" architecture the paper contrasts against
    (§6.3.1 explains the difference from LiGer-without-static). *)

open Liger_tensor
open Liger_trace
open Liger_nn
open Liger_core

type t = {
  task : Liger_model.task;
  store : Param.store;
  vocab : Vocab.t;
  embedding : Embedding_layer.t;
  f1 : Rnn_cell.t;        (* value RNN *)
  f2 : Rnn_cell.t;        (* state RNN over (name ++ value) vectors *)
  trace_rnn : Rnn_cell.t;
  decoder : Decoder.t option;
  classifier : Linear.t option;
}

let create ?(dim = 16) ?(seed = 11) vocab (task : Liger_model.task) =
  let store = Param.create_store ~seed () in
  let embedding = Embedding_layer.create store "vocab" vocab ~dim in
  let f1 = Rnn_cell.create ~kind:Rnn_cell.Vanilla store "f1" ~dim_in:dim ~dim_hidden:dim in
  let f2 = Rnn_cell.create ~kind:Rnn_cell.Vanilla store "f2" ~dim_in:(2 * dim) ~dim_hidden:dim in
  let trace_rnn = Rnn_cell.create ~kind:Rnn_cell.Gru store "trace" ~dim_in:dim ~dim_hidden:dim in
  let decoder, classifier =
    match task with
    | Liger_model.Naming ->
        (Some (Decoder.create store "dec" embedding ~dim_hidden:dim ~dim_mem:dim), None)
    | Liger_model.Classify n -> (None, Some (Linear.create store "cls" ~dim_in:dim ~dim_out:n))
  in
  { task; store; vocab; embedding; f1; f2; trace_rnn; decoder; classifier }

let store t = t.store
let num_params t = Param.num_params t.store

let embed_value t tape (tokens : int array) =
  if Array.length tokens = 1 then Embedding_layer.embed_id t.embedding tape tokens.(0)
  else
    Rnn_cell.last t.f1 tape
      (List.map (Embedding_layer.embed_id t.embedding tape) (Array.to_list tokens))

let embed_state t tape ~var_name_ids (vars : int array array) =
  let inputs =
    List.mapi
      (fun i tokens ->
        let name_id =
          if i < Array.length var_name_ids then var_name_ids.(i) else Vocab.unk_id
        in
        Autodiff.concat tape
          [ Embedding_layer.embed_id t.embedding tape name_id; embed_value t tape tokens ])
      (Array.to_list vars)
  in
  Rnn_cell.last t.f2 tape inputs

(* Embed the k-th concrete trace of an encoded path. *)
let encode_concrete t tape ~var_name_ids (tr : Common.enc_trace) k =
  let h = ref (Rnn_cell.init_state t.trace_rnn tape) in
  let mem = ref [] in
  Array.iter
    (fun (step : Common.enc_step) ->
      let x = embed_state t tape ~var_name_ids step.Common.var_tokens.(k) in
      h := Rnn_cell.step t.trace_rnn tape ~h:!h ~x;
      mem := !h :: !mem)
    tr.Common.steps;
  (List.rev !mem, !h)

(** Encode every concrete trace the view exposes; program embedding is the
    max-pool over trace embeddings. *)
let encode t tape ?(view = Common.full_view) (ex : Common.enc_example) =
  let var_name_ids = ex.Common.var_name_ids in
  let mems = ref [] and finals = ref [] in
  Array.iter
    (fun tr ->
      for k = 0 to Common.select_concrete view tr - 1 do
        let mem, final = encode_concrete t tape ~var_name_ids tr k in
        mems := mem :: !mems;
        finals := final :: !finals
      done)
    (Common.select_traces view ex);
  let finals = Array.of_list (List.rev !finals) in
  let program_embedding =
    if Array.length finals = 0 then
      Autodiff.const tape (Array.make (Rnn_cell.dim_hidden t.trace_rnn) 0.0)
    else Autodiff.max_pool tape finals
  in
  (program_embedding, Array.of_list (List.concat (List.rev !mems)))

let loss t tape ?view (ex : Common.enc_example) =
  let program_embedding, memory = encode t tape ?view ex in
  match (t.task, t.decoder, t.classifier) with
  | Liger_model.Naming, Some dec, _ ->
      Decoder.loss dec tape ~memory ~program_embedding ~target_ids:ex.Common.target_ids
  | Liger_model.Classify _, _, Some cls -> (
      let logits = Linear.forward cls tape program_embedding in
      match ex.Common.target_ids with
      | [ c ] -> fst (Autodiff.softmax_cross_entropy tape logits c)
      | _ -> invalid_arg "Dypro.loss: classification target must be one class")
  | _ -> invalid_arg "Dypro.loss: task/head mismatch"

let predict_name t tape ?view (ex : Common.enc_example) =
  match t.decoder with
  | None -> invalid_arg "Dypro.predict_name: not a naming model"
  | Some dec ->
      let program_embedding, memory = encode t tape ?view ex in
      List.map (Vocab.name t.vocab) (Decoder.decode dec tape ~memory ~program_embedding)

let predict_class t tape ?view (ex : Common.enc_example) =
  match t.classifier with
  | None -> invalid_arg "Dypro.predict_class: not a classification model"
  | Some cls ->
      let program_embedding, _ = encode t tape ?view ex in
      Tensor.argmax (Autodiff.value (Linear.forward cls tape program_embedding))

(** The program embedding vector itself (frozen; for probing). *)
let embed_program t ?view (ex : Common.enc_example) =
  let tape = Autodiff.tape () in
  let program_embedding, _ = encode t tape ?view ex in
  let v = Array.copy (Autodiff.value program_embedding) in
  Autodiff.discard tape;
  v

(** Frozen per-statement embeddings (same contract as
    {!Liger_core.Liger_model.statement_embeddings}): per statement id, the
    mean of every trace-RNN state produced while executing that statement,
    over all concrete traces the view exposes. *)
let statement_embeddings t ?(view = Common.full_view) (ex : Common.enc_example) =
  let tape = Autodiff.tape () in
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun (tr : Common.enc_trace) ->
      for k = 0 to Common.select_concrete view tr - 1 do
        let mem, _ = encode_concrete t tape ~var_name_ids:ex.Common.var_name_ids tr k in
        List.iteri
          (fun j h ->
            let sid = tr.Common.steps.(j).Common.memo_key lsr 1 in
            let v = Autodiff.value h in
            match Hashtbl.find_opt tbl sid with
            | Some (sum, n) ->
                Array.iteri (fun i x -> sum.(i) <- sum.(i) +. x) v;
                Hashtbl.replace tbl sid (sum, n + 1)
            | None -> Hashtbl.add tbl sid (Array.copy v, 1))
          mem
      done)
    (Common.select_traces view ex);
  Autodiff.discard tape;
  Hashtbl.fold
    (fun sid (sum, n) acc ->
      (sid, Array.map (fun x -> x /. float_of_int n) sum) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
