(** Encoding programs, statements and states into vocabulary tokens.

    The static dimension encodes each statement as a labeled tree (AST node
    types at interior nodes, source tokens at leaves) consumed by the
    TreeLSTM.  The dynamic dimension flattens each program state into
    per-variable token sequences: objects and arrays become arrays of
    primitives (§5.1.1 "Object Types") and every primitive value becomes one
    token of D_d, with magnitude bucketing so that the value vocabulary stays
    bounded. *)

open Liger_lang
open Liger_analysis

type tree = Leaf of string | Node of string * tree list

let rec tree_size = function
  | Leaf _ -> 1
  | Node (_, children) -> 1 + List.fold_left (fun a c -> a + tree_size c) 0 children

let rec tree_tokens = function
  | Leaf tok -> [ tok ]
  | Node (label, children) -> label :: List.concat_map tree_tokens children

(** Caps keeping model inputs bounded; [max_flat] limits the flattened
    length of one value, [max_steps] the length of one blended trace.
    [slice] prunes state traces to the method's return-value slice
    ({!Liger_analysis.Slice}): variables that provably never influence the
    result (nor control flow) are dropped from every encoded state. *)
type config = { max_flat : int; max_steps : int; slice : bool }

let default_config = { max_flat = 12; max_steps = 48; slice = false }

(** The state-column filter [config.slice] selects for [meth]: the identity
    when slicing is off, otherwise membership in the backward slice from the
    method's returns. *)
let slice_keep cfg (meth : Ast.meth) : string -> bool =
  if cfg.slice then Slice.keep_filter meth else fun _ -> true

(* ---------------- value tokens (D_d) ---------------- *)

let int_token n =
  if n >= -20 && n <= 20 then Printf.sprintf "i%d" n
  else if n > 1000 then "i_pos_big"
  else if n > 100 then "i_pos_large"
  else if n > 0 then "i_pos_med"
  else if n < -1000 then "i_neg_big"
  else if n < -100 then "i_neg_large"
  else "i_neg_med"

let len_bucket n =
  if n <= 8 then string_of_int n
  else if n <= 16 then "9_16"
  else if n <= 64 then "17_64"
  else "big"

let char_token c =
  if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then
    Printf.sprintf "c_%c" c
  else Printf.sprintf "c_%d" (Char.code c)

(** Tokens of one primitive value. *)
let prim_tokens = function
  | Value.VInt n -> [ int_token n ]
  | Value.VBool true -> [ "v_true" ]
  | Value.VBool false -> [ "v_false" ]
  | Value.VStr s ->
      let chars =
        List.init (min 6 (String.length s)) (fun i -> char_token s.[i])
      in
      Printf.sprintf "slen_%s" (len_bucket (String.length s)) :: chars
  | v -> [ "v_" ^ Pretty.typ_to_string (Value.type_of v) ]

(** Flatten a value to a bounded token sequence: arrays/objects become their
    primitive constituents prefixed by a length marker. *)
let value_tokens cfg v =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  match v with
  | None -> [ "bot" ]
  | Some (Value.VArr a) ->
      let elems = Array.to_list (Array.map (fun n -> int_token n) a) in
      Printf.sprintf "alen_%s" (len_bucket (Array.length a)) :: take (cfg.max_flat - 1) elems
  | Some (Value.VObj fields) ->
      let elems =
        List.concat_map (fun v -> prim_tokens v)
          (List.concat_map (fun (_, v) -> Value.flatten v) (Array.to_list fields))
      in
      Printf.sprintf "olen_%s" (len_bucket (Array.length fields)) :: take (cfg.max_flat - 1) elems
  | Some prim -> take cfg.max_flat (prim_tokens prim)

(** Encode one program state as the fixed-order list of variables, each a
    (name token, value tokens) pair.  [keep] selects the state columns to
    encode (slice pruning passes the return-value-slice membership test;
    default keeps everything). *)
let state_tokens ?(keep = fun _ -> true) cfg (env : (string * Value.t option) list) =
  Liger_obs.Metrics.incr "encode.states";
  List.filter_map
    (fun (x, v) -> if keep x then Some ("var_" ^ x, value_tokens cfg v) else None)
    env

(* ---------------- statement trees (D_s) ---------------- *)

let rec expr_tree (e : Ast.expr) =
  match e with
  | Ast.Int n -> Node ("IntLit", [ Leaf (int_token n) ])
  | Ast.Bool b -> Node ("BoolLit", [ Leaf (string_of_bool b) ])
  | Ast.Str s ->
      Node ("StrLit", [ Leaf (Printf.sprintf "slen_%s" (len_bucket (String.length s))) ])
  | Ast.Var x -> Node ("Var", [ Leaf x ])
  | Ast.Binop (op, a, b) ->
      Node ("Binop", [ Leaf (Pretty.binop_to_string op); expr_tree a; expr_tree b ])
  | Ast.Unop (Ast.Neg, a) -> Node ("Neg", [ expr_tree a ])
  | Ast.Unop (Ast.Not, a) -> Node ("Not", [ expr_tree a ])
  | Ast.Index (a, i) -> Node ("Index", [ expr_tree a; expr_tree i ])
  | Ast.Field (a, f) -> Node ("Field", [ expr_tree a; Leaf f ])
  | Ast.Len a -> Node ("Len", [ expr_tree a ])
  | Ast.Call (f, args) -> Node ("Call", Leaf f :: List.map expr_tree args)
  | Ast.NewArray e -> Node ("NewArray", [ expr_tree e ])
  | Ast.ArrayLit es -> Node ("ArrayLit", List.map expr_tree es)
  | Ast.RecordLit fs ->
      Node ("RecordLit", List.map (fun (n, e) -> Node ("FieldInit", [ Leaf n; expr_tree e ])) fs)

(** The {e head} tree of a statement: compound statements contribute only
    their condition (their bodies appear as later trace steps), and executed
    conditions carry their branch outcome as an extra leaf. *)
let stmt_tree ?branch (s : Ast.stmt) =
  let branch_leaf =
    match branch with
    | Some true -> [ Leaf "taken" ]
    | Some false -> [ Leaf "not_taken" ]
    | None -> []
  in
  match s.Ast.node with
  | Ast.Decl (t, x, e) ->
      Node ("Decl", [ Leaf (Pretty.typ_to_string t); Leaf x; expr_tree e ])
  | Ast.Assign (x, e) -> Node ("Assign", [ Leaf x; expr_tree e ])
  | Ast.StoreIndex (x, i, e) ->
      Node ("StoreIndex", [ Leaf x; expr_tree i; expr_tree e ])
  | Ast.StoreField (x, f, e) -> Node ("StoreField", [ Leaf x; Leaf f; expr_tree e ])
  | Ast.If (c, _, _) -> Node ("If", (expr_tree c :: branch_leaf))
  | Ast.While (c, _) -> Node ("While", (expr_tree c :: branch_leaf))
  | Ast.For (_, c, _, _) -> Node ("For", (expr_tree c :: branch_leaf))
  | Ast.Return e -> Node ("Return", [ expr_tree e ])
  | Ast.Break -> Node ("Break", [])
  | Ast.Continue -> Node ("Continue", [])

(** Full method tree, bodies included — the input to the static baselines
    (code2vec / code2seq AST paths). *)
let rec block_tree block = List.map full_stmt_tree block

and full_stmt_tree (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.If (c, b1, b2) ->
      Node ("If", [ expr_tree c; Node ("Then", block_tree b1); Node ("Else", block_tree b2) ])
  | Ast.While (c, b) -> Node ("While", [ expr_tree c; Node ("Body", block_tree b) ])
  | Ast.For (init, c, update, b) ->
      Node
        ( "For",
          [ full_stmt_tree init; expr_tree c; full_stmt_tree update;
            Node ("Body", block_tree b) ] )
  | _ -> stmt_tree s

let meth_tree (m : Ast.meth) =
  let params =
    List.map
      (fun (t, x) -> Node ("Param", [ Leaf (Pretty.typ_to_string t); Leaf x ]))
      m.Ast.params
  in
  Node ("Method", params @ [ Node ("Body", block_tree m.Ast.body) ])

(* ---------------- vocabulary registration ---------------- *)

let register_tree vocab tree = List.iter (fun tok -> ignore (Vocab.id vocab tok)) (tree_tokens tree)

(** Register every token a blended trace can produce, so a training pass
    builds the complete vocabulary before freezing. *)
let register_blended cfg vocab (b : Blended.t) =
  Liger_obs.Metrics.incr "encode.blended_registered";
  List.iter
    (fun (step : Blended.step) ->
      register_tree vocab (stmt_tree ?branch:step.Blended.branch step.Blended.stmt);
      Array.iter
        (fun env ->
          List.iter
            (fun (name_tok, val_toks) ->
              ignore (Vocab.id vocab name_tok);
              List.iter (fun t -> ignore (Vocab.id vocab t)) val_toks)
            (state_tokens cfg env))
        step.Blended.states)
    b.Blended.steps
