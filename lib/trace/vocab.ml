(** Token vocabularies.

    The paper keeps one vocabulary covering both feature dimensions — source
    tokens and AST node types (D_s) together with runtime values (D_d) —
    each mapped to a learned vector (§5.1.1).  A vocabulary is built in a
    mutable phase (training-set pass), then frozen; unseen tokens map to
    [unk] afterwards. *)

type t = {
  tbl : (string, int) Hashtbl.t;
  mutable names : string array;  (* names.(i) = token with id i *)
  mutable count : int;
  mutable frozen : bool;
}

let unk_token = "<unk>"
let pad_token = "<pad>"
let sos_token = "<s>"
let eos_token = "</s>"

let unk_id = 1
let sos_id = 2
let eos_id = 3

(* Idempotent: adding a token that is already interned returns its existing
   id.  Appending unconditionally would leave [names] and [tbl] disagreeing
   (the table keeps the last id, [names] keeps both rows), breaking the
   id <-> token round-trip. *)
let add v tok =
  match Hashtbl.find_opt v.tbl tok with
  | Some i -> i
  | None ->
      if v.count = Array.length v.names then begin
        let bigger = Array.make (2 * v.count) "" in
        Array.blit v.names 0 bigger 0 v.count;
        v.names <- bigger
      end;
      let i = v.count in
      v.names.(i) <- tok;
      v.count <- i + 1;
      Hashtbl.replace v.tbl tok i;
      i

let create () =
  let v = { tbl = Hashtbl.create 256; names = Array.make 64 ""; count = 0; frozen = false } in
  List.iter (fun tok -> ignore (add v tok)) [ pad_token; unk_token; sos_token; eos_token ];
  v

let size v = v.count

(** Intern [tok]: allocate an id while building, fall back to [unk] once
    frozen. *)
let id v tok =
  match Hashtbl.find_opt v.tbl tok with
  | Some i -> i
  | None -> if v.frozen then unk_id else add v tok

(** Pure lookup: the id of [tok] if interned, [unk] otherwise — never
    mutates, frozen or not.  The encode path uses this instead of {!id}
    so that out-of-vocabulary sub-tokens in user-submitted methods (the
    serving path) map to [unk] everywhere instead of growing an unfrozen
    table from concurrent readers (ids past the embedding rows, resized
    hashtables under readers). *)
let lookup v tok =
  match Hashtbl.find_opt v.tbl tok with Some i -> i | None -> unk_id

let mem v tok = Hashtbl.mem v.tbl tok

let freeze v = v.frozen <- true

let is_frozen v = v.frozen

(** The token string of an id (for decoding predictions). *)
let name v i = if i < 0 || i >= v.count then unk_token else v.names.(i)

(** All (token, id) pairs, id-ascending. *)
let to_list v = List.init v.count (fun i -> (v.names.(i), i))

(* ---------------- persistence ----------------

   A trained model is only usable with the vocabulary it was trained
   against, so vocabularies save/load alongside parameter stores.  Format:
   one line per token, id = line number; tokens are escaped so newlines
   cannot corrupt the framing. *)

let escape tok =
  let buf = Buffer.create (String.length tok) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    tok;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | c -> Buffer.add_char buf c);
       incr i
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

(** Save a vocabulary to [path]; frozen status is not recorded (loaded
    vocabularies are always frozen). *)
let save v path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      for i = 0 to v.count - 1 do
        output_string oc (escape v.names.(i));
        output_char oc '\n'
      done)

(** Load a vocabulary saved by {!save}; the result is frozen.  A duplicate
    line means the file was not produced by {!save} (ids would no longer
    equal line numbers), so it is rejected rather than silently skewing
    every id after the duplicate. *)
let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let v = { tbl = Hashtbl.create 256; names = Array.make 64 ""; count = 0; frozen = false } in
      (try
         while true do
           let line = input_line ic in
           let tok = unescape line in
           if Hashtbl.mem v.tbl tok then
             failwith
               (Printf.sprintf "Vocab.load: duplicate token %S in %s" tok path);
           ignore (add v tok)
         done
       with End_of_file -> ());
      v.frozen <- true;
      (* sanity: the four reserved tokens must be where create() puts them *)
      if v.count < 4 || v.names.(0) <> pad_token || v.names.(1) <> unk_token then
        failwith "Vocab.load: not a vocabulary file";
      v)
