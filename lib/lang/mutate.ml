(** Semantics-preserving syntactic variation.

    The datasets in the paper are crowd-sourced and mined, so the same
    behaviour appears under many surface forms.  This module manufactures
    that diversity: identifier renaming, equivalent expression rewrites (the
    paper's running example is [i += i] vs [i *= 2]), loop-style conversion
    and dead-code insertion.  All rewrites preserve the method's semantics;
    property tests in [test_lang.ml] verify this by differential execution. *)

open Liger_tensor

(* ---------------- identifier renaming ---------------- *)

let generic_names =
  [| "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h"; "p"; "q"; "r"; "s"; "t"; "u";
     "v"; "w"; "x"; "y"; "z"; "k"; "m"; "n" |]

let synonym_pools =
  [ [ "i"; "j"; "k"; "idx"; "pos"; "cursor" ];
    [ "result"; "res"; "out"; "answer"; "ret" ];
    [ "tmp"; "temp"; "aux"; "swap" ];
    [ "count"; "cnt"; "total"; "acc"; "sum" ];
    [ "left"; "lo"; "low"; "start"; "begin0" ];
    [ "right"; "hi"; "high"; "stop"; "end0" ] ]

let rename_with mapping (m : Ast.meth) =
  let ren x = match List.assoc_opt x mapping with Some y -> y | None -> x in
  let fexpr = function Ast.Var x -> Ast.Var (ren x) | e -> e in
  let fstmt (s : Ast.stmt) =
    let node =
      match s.Ast.node with
      | Ast.Decl (t, x, e) -> Ast.Decl (t, ren x, e)
      | Ast.Assign (x, e) -> Ast.Assign (ren x, e)
      | Ast.StoreIndex (x, i, e) -> Ast.StoreIndex (ren x, i, e)
      | Ast.StoreField (x, f, e) -> Ast.StoreField (ren x, f, e)
      | n -> n
    in
    { s with node }
  in
  let m = Ast.map_meth ~fexpr ~fstmt m in
  { m with params = List.map (fun (t, x) -> (t, ren x)) m.Ast.params }

(** Rename every variable to a fresh uninformative name ([v0], [v1], ...);
    the transformation used in §6.1.1's "Remarks" to sway code2seq. *)
let rename_uninformative (m : Ast.meth) =
  let vars = Ast.declared_vars m in
  let mapping = List.mapi (fun i x -> (x, Printf.sprintf "v%d" i)) vars in
  rename_with mapping m

(** Randomly rename variables, drawing from role-based synonym pools when the
    original name belongs to one, otherwise from single-letter names. *)
let rename_random rng (m : Ast.meth) =
  let vars = Ast.declared_vars m in
  let used = Hashtbl.create 16 in
  (* new names must avoid every original name: renaming is simultaneous, but
     a fresh name colliding with a kept original would capture it *)
  List.iter (fun x -> Hashtbl.replace used x ()) vars;
  let fresh_from pool =
    let candidates = List.filter (fun c -> not (Hashtbl.mem used c)) pool in
    match candidates with
    | [] -> None
    | l -> Some (Rng.choose_list rng l)
  in
  let mapping =
    List.filter_map
      (fun x ->
        if Rng.bernoulli rng 0.5 then None  (* keep some names *)
        else
          let pool =
            match List.find_opt (List.mem x) synonym_pools with
            | Some pool -> pool
            | None -> Array.to_list generic_names
          in
          match fresh_from (List.filter (fun c -> c <> x) pool) with
          | Some y ->
              Hashtbl.replace used y ();
              Some (x, y)
          | None -> None)
      vars
  in
  rename_with mapping m

(* ---------------- equivalent expression rewrites ---------------- *)

(* Only expressions that are certainly int-typed may be commuted/rewritten
   (strings also support [+]). *)
let rec surely_int = function
  | Ast.Int _ -> true
  | Ast.Unop (Ast.Neg, _) -> true
  | Ast.Len _ -> true
  | Ast.Index (_, _) -> true
  | Ast.Binop ((Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), _, _) -> true
  | Ast.Binop (Ast.Add, a, b) -> surely_int a || surely_int b
  | Ast.Call (("abs" | "min" | "max" | "pow" | "indexOf" | "ord"), _) -> true
  | _ -> false

let flip_cmp = function
  | Ast.Lt -> Some Ast.Gt
  | Ast.Le -> Some Ast.Ge
  | Ast.Gt -> Some Ast.Lt
  | Ast.Ge -> Some Ast.Le
  | _ -> None

(** One pass of random equivalence rewrites over every expression:
    - [x + x] <-> [x * 2] (on simple operands)
    - commute [*] and provably-int [+]
    - [a < b] <-> [b > a]
    - [!(a < b)] -> [a >= b] and duals. *)
let rewrite_exprs rng (m : Ast.meth) =
  let maybe p f e = if Rng.bernoulli rng p then f e else e in
  let fexpr e =
    match e with
    | Ast.Binop (Ast.Add, a, b) when Ast.equal_expr a b && surely_int a ->
        maybe 0.5 (fun _ -> Ast.Binop (Ast.Mul, a, Ast.Int 2)) e
    | Ast.Binop (Ast.Mul, a, Ast.Int 2) ->
        maybe 0.5 (fun _ -> Ast.Binop (Ast.Add, a, a)) e
    | Ast.Binop (Ast.Mul, a, b) ->
        maybe 0.3 (fun _ -> Ast.Binop (Ast.Mul, b, a)) e
    | Ast.Binop (Ast.Add, a, b) when surely_int a && surely_int b ->
        maybe 0.3 (fun _ -> Ast.Binop (Ast.Add, b, a)) e
    | Ast.Binop (op, a, b) -> (
        match flip_cmp op with
        | Some op' -> maybe 0.3 (fun _ -> Ast.Binop (op', b, a)) e
        | None -> e)
    | Ast.Unop (Ast.Not, Ast.Binop (Ast.Lt, a, b)) ->
        maybe 0.5 (fun _ -> Ast.Binop (Ast.Ge, a, b)) e
    | Ast.Unop (Ast.Not, Ast.Binop (Ast.Le, a, b)) ->
        maybe 0.5 (fun _ -> Ast.Binop (Ast.Gt, a, b)) e
    | Ast.Unop (Ast.Not, Ast.Binop (Ast.Ge, a, b)) ->
        maybe 0.5 (fun _ -> Ast.Binop (Ast.Lt, a, b)) e
    | Ast.Unop (Ast.Not, Ast.Binop (Ast.Gt, a, b)) ->
        maybe 0.5 (fun _ -> Ast.Binop (Ast.Le, a, b)) e
    | e -> e
  in
  Ast.map_meth ~fexpr ~fstmt:Fun.id m

(* ---------------- loop-style conversion ---------------- *)

let rec block_has_continue block =
  List.exists
    (fun (s : Ast.stmt) ->
      match s.Ast.node with
      | Ast.Continue -> true
      | Ast.If (_, b1, b2) -> block_has_continue b1 || block_has_continue b2
      | _ -> false  (* nested loops own their continues *))
    block

(** Rename {e every} variable to a fresh single-letter name — the terse
    style some projects use throughout. *)
let rename_letters rng (m : Ast.meth) =
  let vars = Ast.declared_vars m in
  let used = Hashtbl.create 16 in
  List.iter (fun x -> Hashtbl.replace used x ()) vars;
  let fresh () =
    let candidates =
      Array.to_list generic_names |> List.filter (fun c -> not (Hashtbl.mem used c))
    in
    match candidates with
    | [] -> None
    | l ->
        let pick = Rng.choose_list rng l in
        Hashtbl.replace used pick ();
        Some pick
  in
  let mapping = List.filter_map (fun x -> Option.map (fun y -> (x, y)) (fresh ())) vars in
  rename_with mapping m

(** Convert [for] loops to equivalent [while] loops (skipping loops whose
    body uses [continue], whose semantics would change). *)
let for_to_while ?(p = 0.6) rng (m : Ast.meth) =
  let rec conv_block block = List.concat_map conv_stmt block
  and conv_stmt (s : Ast.stmt) =
    match s.Ast.node with
    | Ast.For (init, c, update, body) when (not (block_has_continue body)) && Rng.bernoulli rng p ->
        let body' = conv_block body @ [ { update with sid = Ast.fresh_sid () } ] in
        [ { init with sid = Ast.fresh_sid () };
          Ast.mk ~line:s.Ast.line (Ast.While (c, body')) ]
    | Ast.For (init, c, update, body) ->
        [ { s with node = Ast.For (init, c, update, conv_block body) } ]
    | Ast.If (c, b1, b2) -> [ { s with node = Ast.If (c, conv_block b1, conv_block b2) } ]
    | Ast.While (c, b) -> [ { s with node = Ast.While (c, conv_block b) } ]
    | _ -> [ s ]
  in
  { m with body = conv_block m.Ast.body }

(* ---------------- dead code ---------------- *)

let dead_names = [| "unused"; "scratch"; "pad"; "extra"; "spare" |]

(** Insert 1-2 unused integer declarations at random top-level positions.
    Purely syntactic noise: it perturbs the static dimension (and adds a ⊥
    column to states) without changing behaviour.  Insertion never goes past
    a top-level [return]/[break]/[continue]: a statement there would be
    unreachable — different noise than intended, and statically rejectable. *)
let insert_dead_code rng (m : Ast.meth) =
  let existing = Ast.declared_vars m in
  let n_insert = 1 + Rng.int rng 2 in
  let body = ref m.Ast.body in
  for k = 0 to n_insert - 1 do
    let base = Rng.choose rng dead_names in
    let name = Printf.sprintf "%s%d" base k in
    if not (List.mem name existing) then begin
      let decl = Ast.mk (Ast.Decl (Ast.Tint, name, Ast.Int (Rng.int rng 10))) in
      let is_jump (s : Ast.stmt) =
        match s.Ast.node with
        | Ast.Return _ | Ast.Break | Ast.Continue -> true
        | _ -> false
      in
      let rec live_prefix acc = function
        | s :: _ when is_jump s -> acc
        | _ :: rest -> live_prefix (acc + 1) rest
        | [] -> acc
      in
      let pos = Rng.int rng (1 + live_prefix 0 !body) in
      let rec insert i = function
        | rest when i = pos -> decl :: rest
        | [] -> [ decl ]
        | s :: rest -> s :: insert (i + 1) rest
      in
      body := insert 0 !body
    end
  done;
  { m with body = !body }

(* ---------------- defensive guards ---------------- *)

let guard_names = [| "bound"; "floor"; "check" |]

(** Plant a belt-and-braces guard: copy an int parameter into a fresh local,
    clamp it non-negative, then wrap one existing assignment in a re-check
    of the clamped invariant.  Concretely the re-check is always true — the
    method's behaviour is unchanged — but its condition stays symbolic, so
    static models see a spurious branch, while an interval analysis proves
    the (empty) else-arm dead and a symbolic executor armed with one never
    explores it.  Mined code is full of exactly this redundancy. *)
let insert_defensive_guard rng (m : Ast.meth) =
  let int_params =
    List.filter_map (fun (ty, x) -> if ty = Ast.Tint then Some x else None) m.Ast.params
  in
  (* Candidate wrap targets: assignments reachable by the block traversal
     (a [for] loop's update slot is deliberately not one — wrapping it would
     leave the guard variable's clamp a dead store). *)
  let rec collect_block acc block = List.fold_left collect_stmt acc block
  and collect_stmt acc (s : Ast.stmt) =
    match s.Ast.node with
    | Ast.Assign _ | Ast.StoreIndex _ -> s.Ast.sid :: acc
    | Ast.If (_, b1, b2) -> collect_block (collect_block acc b1) b2
    | Ast.While (_, b) -> collect_block acc b
    | Ast.For (_, _, _, b) -> collect_block acc b
    | _ -> acc
  in
  match (int_params, collect_block [] m.Ast.body) with
  | [], _ | _, [] -> m
  | _, targets ->
      let p = Rng.choose_list rng int_params in
      let existing = Ast.declared_vars m in
      let base = Rng.choose rng guard_names in
      let rec fresh k =
        let c = Printf.sprintf "%s%d" base k in
        if List.mem c existing then fresh (k + 1) else c
      in
      let g = fresh 0 in
      let target = Rng.choose_list rng targets in
      let recheck = Ast.Binop (Ast.Ge, Ast.Var g, Ast.Int 0) in
      let rec wrap_block block = List.map wrap_stmt block
      and wrap_stmt (s : Ast.stmt) =
        if s.Ast.sid = target then Ast.mk ~line:s.Ast.line (Ast.If (recheck, [ s ], []))
        else
          match s.Ast.node with
          | Ast.If (c, b1, b2) -> { s with node = Ast.If (c, wrap_block b1, wrap_block b2) }
          | Ast.While (c, b) -> { s with node = Ast.While (c, wrap_block b) }
          | Ast.For (i, c, u, b) -> { s with node = Ast.For (i, c, u, wrap_block b) }
          | _ -> s
      in
      let prelude =
        [ Ast.mk (Ast.Decl (Ast.Tint, g, Ast.Var p));
          Ast.mk
            (Ast.If
               ( Ast.Binop (Ast.Lt, Ast.Var g, Ast.Int 0),
                 [ Ast.mk (Ast.Assign (g, Ast.Int 0)) ],
                 [] )) ]
      in
      { m with body = prelude @ wrap_block m.Ast.body }

(** Apply the full variation pipeline with independent random choices; used
    by the corpus generators to expand each template into many surface
    forms. *)
let variant ?(rename = true) ?(rewrite = true) ?(loops = true) ?(dead = true) rng m =
  let m = if rewrite then rewrite_exprs rng m else m in
  let m = if loops then for_to_while rng m else m in
  let m = if dead && Rng.bernoulli rng 0.4 then insert_dead_code rng m else m in
  let m = if dead && Rng.bernoulli rng 0.3 then insert_defensive_guard rng m else m in
  let m = if rename then rename_random rng m else m in
  m
