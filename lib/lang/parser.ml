(** Recursive-descent parser for MiniJava.

    Grammar sketch (precedence low to high: [||], [&&], comparisons,
    [+ -], [* / %], unary, postfix):

    {v
    method  ::= "method" IDENT "(" params? ")" ":" type block
    stmt    ::= type IDENT "=" expr ";"
              | IDENT ("=" | "+=" | "-=" | "*=" | "/=" | "++" | "--"
                      | "[" expr "]" "=" | "." IDENT "=") ... ";"
              | "if" "(" expr ")" block ("else" (block | if))?
              | "while" "(" expr ")" block
              | "for" "(" simple ";" expr ";" simple ")" block
              | "return" expr ";" | "break" ";" | "continue" ";"
    v}

    Compound assignments and [++]/[--] are desugared into plain assignments
    ([i++] becomes [i = i + 1]), which is exactly the kind of syntactic
    variation the blended model must see through. *)

exception Parse_error of string * int

type st = { toks : Token.located array; mutable pos : int }

let cur st = st.toks.(st.pos)
let cur_tok st = (cur st).Token.tok
let cur_line st = (cur st).Token.line
let advance st = st.pos <- st.pos + 1

let error st msg = raise (Parse_error (msg, cur_line st))

let expect st tok =
  if Token.equal (cur_tok st) tok then advance st
  else
    error st
      (Printf.sprintf "expected %s, found %s" (Token.show tok)
         (Token.show (cur_tok st)))

let expect_ident st =
  match cur_tok st with
  | Token.IDENT x ->
      advance st;
      x
  | t -> error st (Printf.sprintf "expected identifier, found %s" (Token.show t))

let parse_type st =
  match cur_tok st with
  | Token.KW "int" ->
      advance st;
      if Token.equal (cur_tok st) Token.LBRACKET then begin
        advance st;
        expect st Token.RBRACKET;
        Ast.Tarray
      end
      else Ast.Tint
  | Token.KW "bool" ->
      advance st;
      Ast.Tbool
  | Token.KW "string" ->
      advance st;
      Ast.Tstring
  | Token.KW "obj" ->
      advance st;
      Ast.Tobj
  | t -> error st (Printf.sprintf "expected a type, found %s" (Token.show t))

let is_type_start st =
  match cur_tok st with
  | Token.KW ("int" | "bool" | "string" | "obj") -> true
  | _ -> false

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while Token.equal (cur_tok st) Token.OROR do
    advance st;
    lhs := Ast.Binop (Ast.Or, !lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_cmp st) in
  while Token.equal (cur_tok st) Token.ANDAND do
    advance st;
    lhs := Ast.Binop (Ast.And, !lhs, parse_cmp st)
  done;
  !lhs

and parse_cmp st =
  let lhs = parse_addsub st in
  let op =
    match cur_tok st with
    | Token.LT -> Some Ast.Lt
    | Token.LE -> Some Ast.Le
    | Token.GT -> Some Ast.Gt
    | Token.GE -> Some Ast.Ge
    | Token.EQEQ -> Some Ast.Eq
    | Token.NE -> Some Ast.Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Ast.Binop (op, lhs, parse_addsub st)

and parse_addsub st =
  let lhs = ref (parse_muldiv st) in
  let continue = ref true in
  while !continue do
    match cur_tok st with
    | Token.PLUS ->
        advance st;
        lhs := Ast.Binop (Ast.Add, !lhs, parse_muldiv st)
    | Token.MINUS ->
        advance st;
        lhs := Ast.Binop (Ast.Sub, !lhs, parse_muldiv st)
    | _ -> continue := false
  done;
  !lhs

and parse_muldiv st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match cur_tok st with
    | Token.STAR ->
        advance st;
        lhs := Ast.Binop (Ast.Mul, !lhs, parse_unary st)
    | Token.SLASH ->
        advance st;
        lhs := Ast.Binop (Ast.Div, !lhs, parse_unary st)
    | Token.PERCENT ->
        advance st;
        lhs := Ast.Binop (Ast.Mod, !lhs, parse_unary st)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  match cur_tok st with
  | Token.MINUS -> (
      advance st;
      (* fold negated literals so that Int (-5) survives a print/parse
         roundtrip: the printer emits "(-5)", which must not come back as
         Unop (Neg, Int 5) *)
      match parse_unary st with
      | Ast.Int n -> Ast.Int (-n)
      | e -> Ast.Unop (Ast.Neg, e))
  | Token.BANG ->
      advance st;
      Ast.Unop (Ast.Not, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    match cur_tok st with
    | Token.LBRACKET ->
        advance st;
        let idx = parse_expr st in
        expect st Token.RBRACKET;
        e := Ast.Index (!e, idx)
    | Token.DOT ->
        advance st;
        let field = expect_ident st in
        if field = "length" then e := Ast.Len !e else e := Ast.Field (!e, field)
    | _ -> continue := false
  done;
  !e

and parse_args st close =
  if Token.equal (cur_tok st) close then []
  else begin
    let first = parse_expr st in
    let rest = ref [ first ] in
    while Token.equal (cur_tok st) Token.COMMA do
      advance st;
      rest := parse_expr st :: !rest
    done;
    List.rev !rest
  end

and parse_primary st =
  match cur_tok st with
  | Token.INT n ->
      advance st;
      Ast.Int n
  | Token.STRING s ->
      advance st;
      Ast.Str s
  | Token.KW "true" ->
      advance st;
      Ast.Bool true
  | Token.KW "false" ->
      advance st;
      Ast.Bool false
  | Token.KW "new" ->
      advance st;
      expect st (Token.KW "int");
      expect st Token.LBRACKET;
      let size = parse_expr st in
      expect st Token.RBRACKET;
      Ast.NewArray size
  | Token.IDENT x ->
      advance st;
      if Token.equal (cur_tok st) Token.LPAREN then begin
        advance st;
        let args = parse_args st Token.RPAREN in
        expect st Token.RPAREN;
        Ast.Call (x, args)
      end
      else Ast.Var x
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | Token.LBRACKET ->
      advance st;
      let elts = parse_args st Token.RBRACKET in
      expect st Token.RBRACKET;
      Ast.ArrayLit elts
  | Token.LBRACE ->
      advance st;
      let fields = ref [] in
      if not (Token.equal (cur_tok st) Token.RBRACE) then begin
        let parse_field () =
          let name = expect_ident st in
          expect st Token.COLON;
          let e = parse_expr st in
          fields := (name, e) :: !fields
        in
        parse_field ();
        while Token.equal (cur_tok st) Token.COMMA do
          advance st;
          parse_field ()
        done
      end;
      expect st Token.RBRACE;
      Ast.RecordLit (List.rev !fields)
  | t -> error st (Printf.sprintf "unexpected token %s in expression" (Token.show t))

(* Statements ------------------------------------------------------- *)

let compound_op = function
  | Token.PLUSEQ -> Some Ast.Add
  | Token.MINUSEQ -> Some Ast.Sub
  | Token.STAREQ -> Some Ast.Mul
  | Token.SLASHEQ -> Some Ast.Div
  | _ -> None

(* A "simple" statement: declaration or (compound) assignment, used both as
   a normal statement (followed by ';') and inside for-headers. *)
let parse_simple st =
  let line = cur_line st in
  if is_type_start st then begin
    let t = parse_type st in
    let x = expect_ident st in
    expect st Token.ASSIGN;
    let e = parse_expr st in
    Ast.mk ~line (Ast.Decl (t, x, e))
  end
  else
    let x = expect_ident st in
    match cur_tok st with
    | Token.ASSIGN ->
        advance st;
        Ast.mk ~line (Ast.Assign (x, parse_expr st))
    | Token.PLUSPLUS ->
        advance st;
        Ast.mk ~line (Ast.Assign (x, Ast.Binop (Ast.Add, Ast.Var x, Ast.Int 1)))
    | Token.MINUSMINUS ->
        advance st;
        Ast.mk ~line (Ast.Assign (x, Ast.Binop (Ast.Sub, Ast.Var x, Ast.Int 1)))
    | Token.LBRACKET ->
        advance st;
        let idx = parse_expr st in
        expect st Token.RBRACKET;
        expect st Token.ASSIGN;
        Ast.mk ~line (Ast.StoreIndex (x, idx, parse_expr st))
    | Token.DOT ->
        advance st;
        let f = expect_ident st in
        expect st Token.ASSIGN;
        Ast.mk ~line (Ast.StoreField (x, f, parse_expr st))
    | t -> (
        match compound_op t with
        | Some op ->
            advance st;
            Ast.mk ~line (Ast.Assign (x, Ast.Binop (op, Ast.Var x, parse_expr st)))
        | None ->
            error st (Printf.sprintf "unexpected token %s in statement" (Token.show t)))

let rec parse_stmt st =
  let line = cur_line st in
  match cur_tok st with
  | Token.KW "if" ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let then_b = parse_block st in
      let else_b =
        if Token.equal (cur_tok st) (Token.KW "else") then begin
          advance st;
          if Token.equal (cur_tok st) (Token.KW "if") then [ parse_stmt st ]
          else parse_block st
        end
        else []
      in
      Ast.mk ~line (Ast.If (cond, then_b, else_b))
  | Token.KW "while" ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      Ast.mk ~line (Ast.While (cond, parse_block st))
  | Token.KW "for" ->
      advance st;
      expect st Token.LPAREN;
      let init = parse_simple st in
      expect st Token.SEMI;
      let cond = parse_expr st in
      expect st Token.SEMI;
      let update = parse_simple st in
      expect st Token.RPAREN;
      Ast.mk ~line (Ast.For (init, cond, update, parse_block st))
  | Token.KW "return" ->
      advance st;
      let e = parse_expr st in
      expect st Token.SEMI;
      Ast.mk ~line (Ast.Return e)
  | Token.KW "break" ->
      advance st;
      expect st Token.SEMI;
      Ast.mk ~line Ast.Break
  | Token.KW "continue" ->
      advance st;
      expect st Token.SEMI;
      Ast.mk ~line Ast.Continue
  | _ ->
      let s = parse_simple st in
      expect st Token.SEMI;
      s

and parse_block st =
  expect st Token.LBRACE;
  let stmts = ref [] in
  while not (Token.equal (cur_tok st) Token.RBRACE) do
    stmts := parse_stmt st :: !stmts
  done;
  expect st Token.RBRACE;
  List.rev !stmts

let parse_meth st =
  expect st (Token.KW "method");
  let mname = expect_ident st in
  expect st Token.LPAREN;
  let params = ref [] in
  if not (Token.equal (cur_tok st) Token.RPAREN) then begin
    let parse_param () =
      let t = parse_type st in
      let x = expect_ident st in
      params := (t, x) :: !params
    in
    parse_param ();
    while Token.equal (cur_tok st) Token.COMMA do
      advance st;
      parse_param ()
    done
  end;
  expect st Token.RPAREN;
  expect st Token.COLON;
  let ret = parse_type st in
  let body = parse_block st in
  { Ast.mname; params = List.rev !params; ret; body }

(** Parse a single method from source text. *)
let method_of_string src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let m = parse_meth st in
  expect st Token.EOF;
  m

(** Parse a file containing any number of methods. *)
let methods_of_string src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let ms = ref [] in
  while not (Token.equal (cur_tok st) Token.EOF) do
    ms := parse_meth st :: !ms
  done;
  List.rev !ms
