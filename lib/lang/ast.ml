(** Abstract syntax for MiniJava, the small imperative Java-like language the
    whole pipeline operates on.

    MiniJava stands in for the paper's Java front-end (see DESIGN.md): it has
    integers, booleans, strings, integer arrays and flat record objects,
    assignments, conditionals, [while]/[for] loops and early returns — enough
    to express every program class the paper's evaluation uses (sorting
    routines, string manipulation, numeric algorithms).

    Every statement carries a unique [sid] and a source [line]; symbolic
    traces are sequences of [sid]s, and line coverage is computed over
    [line]s. *)

type typ =
  | Tint
  | Tbool
  | Tstring
  | Tarray  (* int[] *)
  | Tobj    (* flat record of primitive fields *)
[@@deriving show { with_path = false }, eq, ord]

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or
[@@deriving show { with_path = false }, eq, ord]

type unop = Neg | Not [@@deriving show { with_path = false }, eq, ord]

type expr =
  | Int of int
  | Bool of bool
  | Str of string
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Index of expr * expr               (* a[i] *)
  | Field of expr * string             (* o.f *)
  | Len of expr                        (* a.length / s.length *)
  | Call of string * expr list         (* builtin call *)
  | NewArray of expr                   (* new int[e], zero-filled *)
  | ArrayLit of expr list
  | RecordLit of (string * expr) list  (* { f1: e1, ... } *)
[@@deriving show { with_path = false }, eq, ord]

type stmt = { sid : int; line : int; node : stmt_node }

and stmt_node =
  | Decl of typ * string * expr
  | Assign of string * expr
  | StoreIndex of string * expr * expr  (* a[i] = e *)
  | StoreField of string * string * expr  (* o.f = e *)
  | If of expr * block * block          (* the If owns the condition's sid *)
  | While of expr * block
  | For of stmt * expr * stmt * block   (* for (init; cond; update) body *)
  | Return of expr
  | Break
  | Continue

and block = stmt list [@@deriving show { with_path = false }, eq, ord]

(** A method: the unit of embedding, naming and classification. *)
type meth = {
  mname : string;
  params : (typ * string) list;
  ret : typ;
  body : block;
}
[@@deriving show { with_path = false }, eq]

(* --------------------------------------------------------------- *)
(* Construction helpers: dataset templates build ASTs through these *)
(* so fresh statement ids are always drawn from a shared counter.   *)
(* --------------------------------------------------------------- *)

(* Atomic so a misplaced parallel construction cannot silently mint
   duplicate sids; deterministic pipelines still construct ASTs
   sequentially (sid values are part of the corpus determinism contract). *)
let sid_counter = Atomic.make 0

let fresh_sid () = Atomic.fetch_and_add sid_counter 1 + 1

(** Reset the sid counter.  Only for tests and benchmarks that rebuild a
    corpus from the same seed and compare byte-for-byte; sids only need to
    be unique within a method, so a reset cannot corrupt existing ASTs. *)
let reset_sids () = Atomic.set sid_counter 0

let mk ?(line = 0) node = { sid = fresh_sid (); line; node }

(** Iterate over every statement in a block, recursing into bodies. *)
let rec iter_stmts f block =
  List.iter
    (fun s ->
      f s;
      match s.node with
      | If (_, b1, b2) ->
          iter_stmts f b1;
          iter_stmts f b2
      | While (_, b) -> iter_stmts f b
      | For (init, _, update, b) ->
          f init;
          f update;
          iter_stmts f b
      | _ -> ())
    block

(** All statements of a method in syntactic order. *)
let all_stmts meth =
  let acc = ref [] in
  iter_stmts (fun s -> acc := s :: !acc) meth.body;
  List.rev !acc

(** Distinct source lines covered by a method's statements. *)
let all_lines meth =
  all_stmts meth |> List.map (fun s -> s.line) |> List.sort_uniq compare

(** Number of statements (a proxy for method size used by the dataset
    filter's "too small" rule). *)
let stmt_count meth = List.length (all_stmts meth)

let rec map_expr f e =
  let e' =
    match e with
    | Int _ | Bool _ | Str _ | Var _ -> e
    | Binop (op, a, b) -> Binop (op, map_expr f a, map_expr f b)
    | Unop (op, a) -> Unop (op, map_expr f a)
    | Index (a, i) -> Index (map_expr f a, map_expr f i)
    | Field (a, fld) -> Field (map_expr f a, fld)
    | Len a -> Len (map_expr f a)
    | Call (name, args) -> Call (name, List.map (map_expr f) args)
    | NewArray a -> NewArray (map_expr f a)
    | ArrayLit es -> ArrayLit (List.map (map_expr f) es)
    | RecordLit fs -> RecordLit (List.map (fun (n, e) -> (n, map_expr f e)) fs)
  in
  f e'

(** Structure-preserving statement map; statement ids and lines are kept so a
    rewritten method stays aligned with its original coverage metadata. *)
let rec map_block ~fexpr ~fstmt block =
  List.map
    (fun s ->
      let node =
        match s.node with
        | Decl (t, x, e) -> Decl (t, x, map_expr fexpr e)
        | Assign (x, e) -> Assign (x, map_expr fexpr e)
        | StoreIndex (x, i, e) -> StoreIndex (x, map_expr fexpr i, map_expr fexpr e)
        | StoreField (x, f, e) -> StoreField (x, f, map_expr fexpr e)
        | If (c, b1, b2) ->
            If (map_expr fexpr c, map_block ~fexpr ~fstmt b1, map_block ~fexpr ~fstmt b2)
        | While (c, b) -> While (map_expr fexpr c, map_block ~fexpr ~fstmt b)
        | For (init, c, update, b) ->
            let init' = List.hd (map_block ~fexpr ~fstmt [ init ]) in
            let update' = List.hd (map_block ~fexpr ~fstmt [ update ]) in
            For (init', map_expr fexpr c, update', map_block ~fexpr ~fstmt b)
        | Return e -> Return (map_expr fexpr e)
        | (Break | Continue) as n -> n
      in
      fstmt { s with node })
    block

let map_meth ~fexpr ~fstmt m = { m with body = map_block ~fexpr ~fstmt m.body }

(** Variables referenced anywhere in an expression, left to right, with
    duplicates.  Accumulator-based: linear in expression size (this sits on
    the dataflow-analysis hot path). *)
let expr_vars e =
  let rec go acc e =
    match e with
    | Int _ | Bool _ | Str _ -> acc
    | Var x -> x :: acc
    | Binop (_, a, b) -> go (go acc a) b
    | Unop (_, a) -> go acc a
    | Index (a, i) -> go (go acc a) i
    | Field (a, _) -> go acc a
    | Len a -> go acc a
    | Call (_, args) -> List.fold_left go acc args
    | NewArray a -> go acc a
    | ArrayLit es -> List.fold_left go acc es
    | RecordLit fs -> List.fold_left (fun acc (_, e) -> go acc e) acc fs
  in
  List.rev (go [] e)

(** All variable names a method declares or binds (params first, declaration
    order preserved) — the fixed state layout of Definition 2.1.  Membership
    goes through a [Hashtbl] so building the layout is linear in method
    size. *)
let declared_vars meth =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let add x =
    if not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      acc := x :: !acc
    end
  in
  List.iter (fun (_, x) -> add x) meth.params;
  iter_stmts
    (fun s -> match s.node with Decl (_, x, _) -> add x | _ -> ())
    meth.body;
  List.rev !acc
