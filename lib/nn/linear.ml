(** Dense affine layers. *)

open Liger_tensor
module P = Liger_obs.Profile
module D = Liger_obs.Dynamics

let layer = P.register_layer "linear"
let lname = "linear"

type t = { w : Param.t; b : Param.t }

let create store name ~dim_in ~dim_out =
  {
    w = Param.matrix store (name ^ ".w") dim_out dim_in;
    b = Param.vector store (name ^ ".b") dim_out;
  }

(* profiling wrappers branch before building the closure, so the disabled
   path is a direct call with no allocation *)
let forward t tape x =
  if P.on () then P.with_layer layer (fun () -> Autodiff.affine tape ~w:t.w ~b:t.b x)
  else Autodiff.affine tape ~w:t.w ~b:t.b x

let forward_tanh t tape x = Autodiff.tanh_ tape (forward t tape x)

let forward_sigmoid t tape x = Autodiff.sigmoid tape (forward t tape x)

(* --- batched (lanes × dim) variants; semantics per lane identical --- *)

let forward_batch t btape x =
  if P.on () then P.with_layer layer (fun () -> Batched.affine btape ~w:t.w ~b:t.b x)
  else Batched.affine btape ~w:t.w ~b:t.b x

(* the fused-activation variants additionally set the dynamics ambient
   layer so saturation samples taken inside Batched attribute here when no
   enclosing model layer claimed them; same branch-before-closure shape *)
let forward_tanh_batch t btape x =
  if D.on () then
    D.with_layer lname (fun () ->
        if P.on () then
          P.with_layer layer (fun () -> Batched.affine_tanh btape ~w:t.w ~b:t.b x)
        else Batched.affine_tanh btape ~w:t.w ~b:t.b x)
  else if P.on () then
    P.with_layer layer (fun () -> Batched.affine_tanh btape ~w:t.w ~b:t.b x)
  else Batched.affine_tanh btape ~w:t.w ~b:t.b x

let forward_sigmoid_batch t btape x =
  if D.on () then
    D.with_layer lname (fun () ->
        if P.on () then
          P.with_layer layer (fun () -> Batched.affine_sigmoid btape ~w:t.w ~b:t.b x)
        else Batched.affine_sigmoid btape ~w:t.w ~b:t.b x)
  else if P.on () then
    P.with_layer layer (fun () -> Batched.affine_sigmoid btape ~w:t.w ~b:t.b x)
  else Batched.affine_sigmoid btape ~w:t.w ~b:t.b x
