(** Child-sum TreeLSTM (Tai et al. 2015, §4.2 of the paper).

    Embeds a labeled tree bottom-up: each node combines its own label
    embedding with the summed hidden states of its children, gated by a
    per-child forget gate:

    {v
    h~  = sum_k h_k
    i   = sigmoid(W_i x + U_i h~ + b_i)
    f_k = sigmoid(W_f x + U_f h_k + b_f)
    o   = sigmoid(W_o x + U_o h~ + b_o)
    u   = tanh  (W_u x + U_u h~ + b_u)
    c   = i * u + sum_k f_k * c_k
    h   = o * tanh(c)
    v}

    The fusion layer uses this to embed each statement's AST (§5.1.1). *)

open Liger_tensor
open Liger_trace
module P = Liger_obs.Profile
module D = Liger_obs.Dynamics

let layer = P.register_layer "treelstm"
let lname = "treelstm"

type t = {
  wx : Param.t;  (* 4H x in : [i; o; u; f] input contributions *)
  uh : Param.t;  (* 3H x H  : [i; o; u] child-sum contributions *)
  uf : Param.t;  (* H x H   : per-child forget contribution *)
  b : Param.t;   (* 4H      : [i; o; u; f] biases *)
  dim_hidden : int;
}

let create store name ~dim_in ~dim_hidden =
  {
    wx = Param.matrix store (name ^ ".wx") (4 * dim_hidden) dim_in;
    uh = Param.matrix store (name ^ ".uh") (3 * dim_hidden) dim_hidden;
    uf = Param.matrix store (name ^ ".uf") dim_hidden dim_hidden;
    b = Param.vector store (name ^ ".b") (4 * dim_hidden);
    dim_hidden;
  }

(* (h, c) of one node given its label embedding and children states *)
let node_state_impl t tape x children =
  let d = t.dim_hidden in
  let zeros = Autodiff.const tape (Array.make d 0.0) in
  let h_sum =
    List.fold_left (fun acc (h, _) -> Autodiff.add tape acc h) zeros children
  in
  let wxx = Autodiff.matvec tape t.wx x in
  let uhh = Autodiff.matvec tape t.uh h_sum in
  let bias = Autodiff.of_param tape t.b in
  let gate off =
    Autodiff.add tape
      (Autodiff.add tape (Autodiff.slice tape wxx (off * d) d)
         (Autodiff.slice tape uhh (off * d) d))
      (Autodiff.slice tape bias (off * d) d)
  in
  let i = Autodiff.sigmoid tape (gate 0) in
  let o = Autodiff.sigmoid tape (gate 1) in
  let u = Autodiff.tanh_ tape (gate 2) in
  let f_base =
    Autodiff.add tape
      (Autodiff.slice tape wxx (3 * d) d)
      (Autodiff.slice tape bias (3 * d) d)
  in
  let forget_term =
    List.fold_left
      (fun acc (h_k, c_k) ->
        let f_k =
          Autodiff.sigmoid tape (Autodiff.add tape f_base (Autodiff.matvec tape t.uf h_k))
        in
        Autodiff.add tape acc (Autodiff.mul tape f_k c_k))
      zeros children
  in
  let c = Autodiff.add tape (Autodiff.mul tape i u) forget_term in
  let h = Autodiff.mul tape o (Autodiff.tanh_ tape c) in
  (h, c)

let node_state t tape x children =
  if P.on () then P.with_layer layer (fun () -> node_state_impl t tape x children)
  else node_state_impl t tape x children

(** Embed a tree: [embed] supplies the vector of a label (leaf token or AST
    node type); returns the root's hidden state. *)
let embed_tree t tape ~embed tree =
  let rec go = function
    | Encode.Leaf tok -> node_state t tape (embed tok) []
    | Encode.Node (label, children) ->
        node_state t tape (embed label) (List.map go children)
  in
  fst (go tree)

(* --- batched: level-grouped packing over a forest --- *)

(* Core over a pre-flattened forest.  [children.(i)] must reference only
   indices < i (post-order flattening guarantees this); [embed] maps an
   array of labels to a [|labels| × dim_in] batched node. *)
let embed_forest_flat_impl t btape ~embed ~(labels : 'a array)
    ~(children : int list array) ~(roots : int array) =
  let n = Array.length labels in
  if n = 0 || Array.length roots = 0 then invalid_arg "Treelstm.embed_forest: empty";
  Array.iteri
    (fun i cs ->
      List.iter
        (fun c ->
          if c < 0 || c >= i then invalid_arg "Treelstm.embed_forest: not post-order")
        cs)
    children;
  (* level = height: all childless nodes are level 0, so every node of a
     level >= 1 has at least one child, all at strictly lower levels *)
  let level = Array.make n 0 in
  for i = 0 to n - 1 do
    level.(i) <- List.fold_left (fun acc c -> Stdlib.max acc (level.(c) + 1)) 0 children.(i)
  done;
  let max_level = Array.fold_left Stdlib.max 0 level in
  let d = t.dim_hidden in
  (* Process levels bottom-up; all nodes of one level share one batched
     TreeLSTM cell evaluation.  [stack_pos] maps a node to its row in the
     vstack of the levels processed so far. *)
  let stack_pos = Array.make n (-1) in
  let level_h = ref [] and level_c = ref [] in  (* per level, reverse order *)
  let stacked = ref 0 in
  for lvl = 0 to max_level do
    let members =
      Array.of_list (List.filter (fun i -> level.(i) = lvl) (List.init n Fun.id))
    in
    let ln = Array.length members in
    let x = embed (Array.map (fun i -> labels.(i)) members) in
    let wxx = Batched.matmul_nt btape x t.wx in
    let bias = Batched.of_param btape ~lanes:ln t.b in
    let wx_slice off = Batched.slice_cols btape wxx (off * d) d in
    let b_slice off = Batched.slice_cols btape bias (off * d) d in
    (* flattened children of this level, keeping per-parent child order *)
    let child_rows = ref [] and child_groups = ref [] in
    Array.iteri
      (fun pos i ->
        List.iter
          (fun c ->
            child_rows := stack_pos.(c) :: !child_rows;
            child_groups := pos :: !child_groups)
          children.(i))
      members;
    let child_rows = Array.of_list (List.rev !child_rows) in
    let child_groups = Array.of_list (List.rev !child_groups) in
    let h_sum, forget =
      if Array.length child_rows = 0 then
        (Batched.zeros btape ~rows:ln ~cols:d, Batched.zeros btape ~rows:ln ~cols:d)
      else begin
        let all_h = Batched.vstack btape (List.rev !level_h) in
        let all_c = Batched.vstack btape (List.rev !level_c) in
        let h_child = Batched.gather_rows btape all_h child_rows in
        let c_child = Batched.gather_rows btape all_c child_rows in
        let h_sum =
          Batched.group_sum btape h_child ~groups:child_groups ~n_groups:ln
        in
        let f_base = Batched.add btape (wx_slice 3) (b_slice 3) in
        let f_k =
          Batched.sigmoid btape
            (Batched.add btape
               (Batched.gather_rows btape f_base child_groups)
               (Batched.matmul_nt btape h_child t.uf))
        in
        let forget =
          Batched.group_sum btape
            (Batched.mul btape f_k c_child)
            ~groups:child_groups ~n_groups:ln
        in
        (h_sum, forget)
      end
    in
    let uhh = Batched.matmul_nt btape h_sum t.uh in
    let uh_slice off = Batched.slice_cols btape uhh (off * d) d in
    let gate off =
      Batched.add btape (Batched.add btape (wx_slice off) (uh_slice off)) (b_slice off)
    in
    let i_g = Batched.sigmoid btape (gate 0) in
    let o_g = Batched.sigmoid btape (gate 1) in
    let u_g = Batched.tanh_ btape (gate 2) in
    let c = Batched.add btape (Batched.mul btape i_g u_g) forget in
    let h = Batched.mul btape o_g (Batched.tanh_ btape c) in
    Array.iteri (fun pos i -> stack_pos.(i) <- !stacked + pos) members;
    stacked := !stacked + ln;
    level_h := h :: !level_h;
    level_c := c :: !level_c
  done;
  let all_h = Batched.vstack btape (List.rev !level_h) in
  Batched.gather_rows btape all_h (Array.map (fun r -> stack_pos.(r)) roots)

let embed_forest_flat_guarded t btape ~embed ~labels ~children ~roots =
  if P.on () then
    P.with_layer layer (fun () ->
        embed_forest_flat_impl t btape ~embed ~labels ~children ~roots)
  else embed_forest_flat_impl t btape ~embed ~labels ~children ~roots

(** Embed a pre-flattened forest with level-grouped packing: all nodes of
    equal height are evaluated as one batched TreeLSTM cell application,
    children aggregated with segment sums.  [children.(i)] must hold only
    indices [< i]; [roots] selects the output lanes.  [embed] maps an array
    of labels to a [|labels| × dim_in] node.  Returns root hidden states,
    one lane per root (in order). *)
let embed_forest_flat t btape ~embed ~labels ~children ~roots =
  if D.on () then
    D.with_layer lname (fun () ->
        embed_forest_flat_guarded t btape ~embed ~labels ~children ~roots)
  else embed_forest_flat_guarded t btape ~embed ~labels ~children ~roots

(** Embed a forest of {!Encode.tree}s (convenience wrapper over
    {!embed_forest_flat}): post-order flattens the trees, then packs by
    level. *)
let embed_forest t btape ~embed trees =
  (match trees with [] -> invalid_arg "Treelstm.embed_forest: empty" | _ -> ());
  let labels_rev = ref [] and children_rev = ref [] in
  let count = ref 0 in
  let rec go tree =
    let label, sub =
      match tree with
      | Encode.Leaf tok -> (tok, [])
      | Encode.Node (l, cs) -> (l, cs)
    in
    let cidx = List.map go sub in
    let idx = !count in
    incr count;
    labels_rev := label :: !labels_rev;
    children_rev := cidx :: !children_rev;
    idx
  in
  let roots = Array.of_list (List.map go trees) in
  let labels = Array.of_list (List.rev !labels_rev) in
  let children = Array.of_list (List.rev !children_rev) in
  embed_forest_flat t btape ~embed ~labels ~children ~roots
