(** Child-sum TreeLSTM (Tai et al. 2015, §4.2 of the paper).

    Embeds a labeled tree bottom-up: each node combines its own label
    embedding with the summed hidden states of its children, gated by a
    per-child forget gate:

    {v
    h~  = sum_k h_k
    i   = sigmoid(W_i x + U_i h~ + b_i)
    f_k = sigmoid(W_f x + U_f h_k + b_f)
    o   = sigmoid(W_o x + U_o h~ + b_o)
    u   = tanh  (W_u x + U_u h~ + b_u)
    c   = i * u + sum_k f_k * c_k
    h   = o * tanh(c)
    v}

    The fusion layer uses this to embed each statement's AST (§5.1.1). *)

open Liger_tensor
open Liger_trace
module P = Liger_obs.Profile

let layer = P.register_layer "treelstm"

type t = {
  wx : Param.t;  (* 4H x in : [i; o; u; f] input contributions *)
  uh : Param.t;  (* 3H x H  : [i; o; u] child-sum contributions *)
  uf : Param.t;  (* H x H   : per-child forget contribution *)
  b : Param.t;   (* 4H      : [i; o; u; f] biases *)
  dim_hidden : int;
}

let create store name ~dim_in ~dim_hidden =
  {
    wx = Param.matrix store (name ^ ".wx") (4 * dim_hidden) dim_in;
    uh = Param.matrix store (name ^ ".uh") (3 * dim_hidden) dim_hidden;
    uf = Param.matrix store (name ^ ".uf") dim_hidden dim_hidden;
    b = Param.vector store (name ^ ".b") (4 * dim_hidden);
    dim_hidden;
  }

(* (h, c) of one node given its label embedding and children states *)
let node_state_impl t tape x children =
  let d = t.dim_hidden in
  let zeros = Autodiff.const tape (Array.make d 0.0) in
  let h_sum =
    List.fold_left (fun acc (h, _) -> Autodiff.add tape acc h) zeros children
  in
  let wxx = Autodiff.matvec tape t.wx x in
  let uhh = Autodiff.matvec tape t.uh h_sum in
  let bias = Autodiff.of_param tape t.b in
  let gate off =
    Autodiff.add tape
      (Autodiff.add tape (Autodiff.slice tape wxx (off * d) d)
         (Autodiff.slice tape uhh (off * d) d))
      (Autodiff.slice tape bias (off * d) d)
  in
  let i = Autodiff.sigmoid tape (gate 0) in
  let o = Autodiff.sigmoid tape (gate 1) in
  let u = Autodiff.tanh_ tape (gate 2) in
  let f_base =
    Autodiff.add tape
      (Autodiff.slice tape wxx (3 * d) d)
      (Autodiff.slice tape bias (3 * d) d)
  in
  let forget_term =
    List.fold_left
      (fun acc (h_k, c_k) ->
        let f_k =
          Autodiff.sigmoid tape (Autodiff.add tape f_base (Autodiff.matvec tape t.uf h_k))
        in
        Autodiff.add tape acc (Autodiff.mul tape f_k c_k))
      zeros children
  in
  let c = Autodiff.add tape (Autodiff.mul tape i u) forget_term in
  let h = Autodiff.mul tape o (Autodiff.tanh_ tape c) in
  (h, c)

let node_state t tape x children =
  if P.on () then P.with_layer layer (fun () -> node_state_impl t tape x children)
  else node_state_impl t tape x children

(** Embed a tree: [embed] supplies the vector of a label (leaf token or AST
    node type); returns the root's hidden state. *)
let embed_tree t tape ~embed tree =
  let rec go = function
    | Encode.Leaf tok -> node_state t tape (embed tok) []
    | Encode.Node (label, children) ->
        node_state t tape (embed label) (List.map go children)
  in
  fst (go tree)
