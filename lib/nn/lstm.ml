(** A standard single-layer LSTM cell (kept alongside the GRU for ablations
    and as the sequential special case of the TreeLSTM). *)

open Liger_tensor
module P = Liger_obs.Profile
module D = Liger_obs.Dynamics

let layer = P.register_layer "lstm"
let lname = "lstm"

type t = {
  gates : Linear.t;  (* [i; f; o; u] stacked: 4H x (in + H) *)
  dim_hidden : int;
  h0 : Param.t;
  c0 : Param.t;
}

type state = { h : Autodiff.node; c : Autodiff.node }

let create store name ~dim_in ~dim_hidden =
  {
    gates =
      Linear.create store (name ^ ".gates") ~dim_in:(dim_in + dim_hidden)
        ~dim_out:(4 * dim_hidden);
    dim_hidden;
    h0 = Param.vector store (name ^ ".h0") dim_hidden;
    c0 = Param.vector store (name ^ ".c0") dim_hidden;
  }

let init_state t tape =
  { h = Autodiff.of_param tape t.h0; c = Autodiff.of_param tape t.c0 }

let step_impl t tape ~state ~x =
  let d = t.dim_hidden in
  let xh = Autodiff.concat tape [ x; state.h ] in
  let pre = Linear.forward t.gates tape xh in
  let i = Autodiff.sigmoid tape (Autodiff.slice tape pre 0 d) in
  let f = Autodiff.sigmoid tape (Autodiff.slice tape pre d d) in
  let o = Autodiff.sigmoid tape (Autodiff.slice tape pre (2 * d) d) in
  let u = Autodiff.tanh_ tape (Autodiff.slice tape pre (3 * d) d) in
  let c =
    Autodiff.add tape (Autodiff.mul tape f state.c) (Autodiff.mul tape i u)
  in
  let h = Autodiff.mul tape o (Autodiff.tanh_ tape c) in
  { h; c }

let step t tape ~state ~x =
  if P.on () then P.with_layer layer (fun () -> step_impl t tape ~state ~x)
  else step_impl t tape ~state ~x

let run t tape xs =
  let state = ref (init_state t tape) in
  List.map
    (fun x ->
      state := step t tape ~state:!state ~x;
      !state.h)
    xs

let last t tape xs =
  match List.rev (run t tape xs) with [] -> (init_state t tape).h | h :: _ -> h

(* --- batched (lanes × dim) variants --- *)

type bstate = { bh : Batched.node; bc : Batched.node }

let init_state_batch t btape ~lanes =
  {
    bh = Batched.of_param btape ~lanes t.h0;
    bc = Batched.of_param btape ~lanes t.c0;
  }

let step_batch_impl t btape ~state ~x =
  let d = t.dim_hidden in
  let xh = Batched.concat_cols btape [ x; state.bh ] in
  let pre = Linear.forward_batch t.gates btape xh in
  let i = Batched.sigmoid btape (Batched.slice_cols btape pre 0 d) in
  let f = Batched.sigmoid btape (Batched.slice_cols btape pre d d) in
  let o = Batched.sigmoid btape (Batched.slice_cols btape pre (2 * d) d) in
  let u = Batched.tanh_ btape (Batched.slice_cols btape pre (3 * d) d) in
  let c = Batched.muladd2 btape f state.bc i u in
  let h = Batched.mul btape o (Batched.tanh_ btape c) in
  { bh = h; bc = c }

let step_batch_guarded t btape ~state ~x =
  if P.on () then P.with_layer layer (fun () -> step_batch_impl t btape ~state ~x)
  else step_batch_impl t btape ~state ~x

(** One batched LSTM step; [?mask] freezes both [h] and [c] on padded lanes
    (exactly zero gradient through the frozen step). *)
let step_batch ?mask t btape ~state ~x =
  let next =
    if D.on () then D.with_layer lname (fun () -> step_batch_guarded t btape ~state ~x)
    else step_batch_guarded t btape ~state ~x
  in
  match mask with
  | None -> next
  | Some m ->
      {
        bh = Batched.select_rows btape ~mask:m next.bh state.bh;
        bc = Batched.select_rows btape ~mask:m next.bc state.bc;
      }

let run_batch t btape ~lanes steps =
  let state = ref (init_state_batch t btape ~lanes) in
  List.map
    (fun (x, mask) ->
      state := step_batch ?mask t btape ~state:!state ~x;
      !state.bh)
    steps

let last_batch t btape ~lanes steps =
  match List.rev (run_batch t btape ~lanes steps) with
  | [] -> (init_state_batch t btape ~lanes).bh
  | h :: _ -> h
