(** The vocabulary embedding layer (§5.1.1): every token of D_s ∪ D_d maps
    to a learned vector.

    The table is sized to a frozen vocabulary; out-of-range ids (tokens
    unseen at training time) use the [unk] row. *)

open Liger_tensor
open Liger_trace
module P = Liger_obs.Profile

let layer = P.register_layer "embedding"

type t = { table : Param.t; vocab : Vocab.t; dim : int }

let create store name vocab ~dim =
  if not (Vocab.is_frozen vocab) then
    invalid_arg "Embedding_layer.create: freeze the vocabulary first";
  { table = Param.embedding store (name ^ ".table") (Vocab.size vocab) dim; vocab; dim }

let dim t = t.dim

let embed_id_impl t tape i =
  let i = if i < 0 || i >= Param.rows t.table then Vocab.unk_id else i in
  Autodiff.row tape t.table i

(** Embedding of a token id. *)
let embed_id t tape i =
  if P.on () then P.with_layer layer (fun () -> embed_id_impl t tape i)
  else embed_id_impl t tape i

(** Embedding of a token string; unseen tokens use the [unk] row (pure
    lookup — never grows the vocabulary, even unfrozen). *)
let embed t tape tok = embed_id t tape (Vocab.lookup t.vocab tok)

let vocab_size t = Vocab.size t.vocab

(* --- batched --- *)

let embed_ids_impl t btape ids =
  let rows = Param.rows t.table in
  let clamp i = if i < 0 || i >= rows then Vocab.unk_id else i in
  Batched.rows_of_param btape t.table (Array.map clamp ids)

(** Batched embedding lookup: one lane per id (out-of-range ids fall back to
    [unk], as in {!embed_id}). *)
let embed_ids t btape ids =
  if P.on () then P.with_layer layer (fun () -> embed_ids_impl t btape ids)
  else embed_ids_impl t btape ids

(** Batched lookup of token strings; unseen tokens use the [unk] row. *)
let embed_batch t btape toks = embed_ids t btape (Array.map (Vocab.lookup t.vocab) toks)
