(** Attention decoder emitting a method name as a sub-token sequence
    (§5.1.2).

    The decoder GRU is initialized from the program embedding H_P; at each
    step it attends over the flow of all blended traces (the flattened
    collection of per-step encoder states H^e_{i,j}), consumes the previous
    sub-token's embedding concatenated with the context vector, and emits a
    distribution over the vocabulary.  Training uses teacher forcing;
    inference is greedy (the corpus names are short, beam search buys
    nothing at our scale). *)

open Liger_tensor
open Liger_trace
module P = Liger_obs.Profile
module D = Liger_obs.Dynamics

let layer = P.register_layer "decoder"
let lname = "decoder"

type t = {
  cell : Rnn_cell.t;
  bridge : Linear.t;  (* program embedding -> initial decoder state *)
  out : Linear.t;     (* hidden ++ context -> vocabulary logits *)
  att : Attention.t;
  embedding : Embedding_layer.t;
  max_len : int;
}

let create ?(kind = Rnn_cell.Gru) ?(max_len = 8) store name embedding ~dim_hidden ~dim_mem =
  let dim_emb = Embedding_layer.dim embedding in
  {
    cell =
      Rnn_cell.create ~kind store (name ^ ".cell") ~dim_in:(dim_emb + dim_mem) ~dim_hidden;
    bridge = Linear.create store (name ^ ".bridge") ~dim_in:dim_mem ~dim_out:dim_hidden;
    out =
      Linear.create store (name ^ ".out") ~dim_in:(dim_hidden + dim_mem)
        ~dim_out:(Embedding_layer.vocab_size embedding);
    att = Attention.create store (name ^ ".att") ~dim_h:dim_mem ~dim_q:dim_hidden ~dim_att:dim_hidden;
    embedding;
    max_len;
  }

let init_impl t tape ~program_embedding = Linear.forward_tanh t.bridge tape program_embedding

let init t tape ~program_embedding =
  if P.on () then P.with_layer layer (fun () -> init_impl t tape ~program_embedding)
  else init_impl t tape ~program_embedding

let step_impl t tape ~memory ~h ~prev_id =
  let context = snd (Attention.fuse t.att tape ~q:h memory) in
  let x = Autodiff.concat tape [ Embedding_layer.embed_id t.embedding tape prev_id; context ] in
  let h' = Rnn_cell.step t.cell tape ~h ~x in
  let logits = Linear.forward t.out tape (Autodiff.concat tape [ h'; context ]) in
  (h', logits)

let step t tape ~memory ~h ~prev_id =
  if P.on () then P.with_layer layer (fun () -> step_impl t tape ~memory ~h ~prev_id)
  else step_impl t tape ~memory ~h ~prev_id

(** Teacher-forced negative log-likelihood of [target_ids] (without the
    terminating [eos], which is appended here).  Returns the summed loss
    node. *)
let loss_impl t tape ~memory ~program_embedding ~target_ids =
  let targets = target_ids @ [ Vocab.eos_id ] in
  let h = ref (init t tape ~program_embedding) in
  let prev = ref Vocab.sos_id in
  let total = ref (Autodiff.scalar tape 0.0) in
  List.iter
    (fun target ->
      let h', logits = step t tape ~memory ~h:!h ~prev_id:!prev in
      let nll, _ = Autodiff.softmax_cross_entropy tape logits target in
      total := Autodiff.add tape !total nll;
      h := h';
      prev := target)
    targets;
  !total

let loss t tape ~memory ~program_embedding ~target_ids =
  if P.on () then
    P.with_layer layer (fun () -> loss_impl t tape ~memory ~program_embedding ~target_ids)
  else loss_impl t tape ~memory ~program_embedding ~target_ids

(** Beam-search decoding with beam width [k]: keeps the [k] most probable
    partial sequences, scores by summed log-probability with a mild length
    normalization.  Returns the best sequence's token ids (eos excluded).
    [k = 1] degenerates to greedy decoding. *)
let decode_beam ?(k = 3) t tape ~memory ~program_embedding =
  let h0 = init t tape ~program_embedding in
  (* beam entries: (neg log prob, finished, tokens rev, hidden, prev id) *)
  let initial = (0.0, false, [], h0, Vocab.sos_id) in
  let beam = ref [ initial ] in
  for _ = 1 to t.max_len do
    let expanded =
      List.concat_map
        (fun ((nll, finished, toks, h, prev) as entry) ->
          if finished then [ entry ]
          else begin
            let h', logits = step t tape ~memory ~h ~prev_id:prev in
            let probs = Tensor.softmax (Autodiff.value logits) in
            (* top-k successor tokens of this entry *)
            let indexed = Array.mapi (fun i p -> (p, i)) probs in
            Array.sort (fun (a, _) (b, _) -> compare b a) indexed;
            List.init (min k (Array.length indexed)) (fun j ->
                let p, id = indexed.(j) in
                let nll' = nll -. log (Stdlib.max 1e-12 p) in
                if id = Vocab.eos_id then (nll', true, toks, h', id)
                else (nll', false, id :: toks, h', id))
          end)
        !beam
    in
    let score (nll, _, toks, _, _) =
      nll /. float_of_int (1 + List.length toks)  (* length-normalized *)
    in
    let sorted = List.sort (fun a b -> compare (score a) (score b)) expanded in
    beam := List.filteri (fun i _ -> i < k) sorted
  done;
  match !beam with
  | (_, _, toks, _, _) :: _ -> List.rev toks
  | [] -> []

(** Greedy decoding; returns predicted token ids (eos excluded). *)
let decode t tape ~memory ~program_embedding =
  let h = ref (init t tape ~program_embedding) in
  let prev = ref Vocab.sos_id in
  let out = ref [] in
  (try
     for _ = 1 to t.max_len do
       let h', logits = step t tape ~memory ~h:!h ~prev_id:!prev in
       let id = Tensor.argmax (Autodiff.value logits) in
       if id = Vocab.eos_id then raise Exit;
       out := id :: !out;
       h := h';
       prev := id
     done
   with Exit -> ());
  List.rev !out

(* --- batched (one lane per example) variants --- *)

let init_batch_impl t btape ~program_embedding =
  Linear.forward_tanh_batch t.bridge btape program_embedding

let init_batch_guarded t btape ~program_embedding =
  if P.on () then P.with_layer layer (fun () -> init_batch_impl t btape ~program_embedding)
  else init_batch_impl t btape ~program_embedding

let init_batch t btape ~program_embedding =
  if D.on () then
    D.with_layer lname (fun () -> init_batch_guarded t btape ~program_embedding)
  else init_batch_guarded t btape ~program_embedding

(* [memory] is K padded slot nodes (lanes × dim_mem) with a lanes × K
   validity mask; each lane attends only over its own valid slots. *)
let step_batch_impl t ?hproj btape ~memory ~memory_mask ~h ~prev_ids =
  let context =
    snd (Attention.fuse_batch t.att btape ?hproj ~q:h ~mask:memory_mask memory)
  in
  let x =
    Batched.concat_cols btape
      [ Embedding_layer.embed_ids t.embedding btape prev_ids; context ]
  in
  let h' = Rnn_cell.step_batch t.cell btape ~h ~x in
  let logits =
    Linear.forward_batch t.out btape (Batched.concat_cols btape [ h'; context ])
  in
  (h', logits)

let step_batch_guarded t ?hproj btape ~memory ~memory_mask ~h ~prev_ids =
  if P.on () then
    P.with_layer layer (fun () ->
        step_batch_impl t ?hproj btape ~memory ~memory_mask ~h ~prev_ids)
  else step_batch_impl t ?hproj btape ~memory ~memory_mask ~h ~prev_ids

let step_batch t ?hproj btape ~memory ~memory_mask ~h ~prev_ids =
  if D.on () then
    D.with_layer lname (fun () ->
        step_batch_guarded t ?hproj btape ~memory ~memory_mask ~h ~prev_ids)
  else step_batch_guarded t ?hproj btape ~memory ~memory_mask ~h ~prev_ids

(** Batched teacher-forced loss: per-example summed NLL as a [G×1] node.
    Lanes run in lockstep to the longest target; steps past a lane's own
    [eos] carry weight 0 in the cross-entropy, contributing exactly zero
    loss and zero gradient (the decoder state keeps stepping, but nothing
    downstream reads it). *)
let loss_batch t btape ~memory ~memory_mask ~program_embedding ~target_ids =
  let g_lanes = Batched.lanes program_embedding in
  if Array.length target_ids <> g_lanes then
    invalid_arg "Decoder.loss_batch: target count mismatch";
  let full = Array.map (fun ids -> Array.of_list (ids @ [ Vocab.eos_id ])) target_ids in
  let max_t = Array.fold_left (fun acc a -> Stdlib.max acc (Array.length a)) 0 full in
  let h = ref (init_batch t btape ~program_embedding) in
  let prev = ref (Array.make g_lanes Vocab.sos_id) in
  let total = ref (Batched.zeros btape ~rows:g_lanes ~cols:1) in
  (* the memory never changes across decode steps: project it through the
     attention scorer once and reuse it every step *)
  let hproj = Attention.project_batch t.att btape memory in
  for step = 0 to max_t - 1 do
    let live g = step < Array.length full.(g) in
    let weights = Array.init g_lanes (fun g -> if live g then 1.0 else 0.0) in
    let targets = Array.init g_lanes (fun g -> if live g then full.(g).(step) else 0) in
    let h', logits = step_batch t btape ~hproj ~memory ~memory_mask ~h:!h ~prev_ids:!prev in
    let nll, _ = Batched.softmax_xent_rows btape logits ~targets ~weights in
    total := Batched.add btape !total nll;
    h := h';
    (* fresh array per step: backward closures capture the id arrays *)
    prev := Array.init g_lanes (fun g -> if live g then full.(g).(step) else Vocab.eos_id)
  done;
  !total

(** Batched greedy decoding; one predicted id list per lane (eos excluded),
    identical per lane to {!decode}. *)
let decode_batch t btape ~memory ~memory_mask ~program_embedding =
  let g_lanes = Batched.lanes program_embedding in
  let h = ref (init_batch t btape ~program_embedding) in
  let prev = ref (Array.make g_lanes Vocab.sos_id) in
  let finished = Array.make g_lanes false in
  let out = Array.make g_lanes [] in
  let hproj = Attention.project_batch t.att btape memory in
  (try
     for _ = 1 to t.max_len do
       if Array.for_all Fun.id finished then raise Exit;
       let h', logits = step_batch t btape ~hproj ~memory ~memory_mask ~h:!h ~prev_ids:!prev in
       let next = Array.make g_lanes Vocab.eos_id in
       for g = 0 to g_lanes - 1 do
         if not finished.(g) then begin
           let id = Tensor.argmax (Batched.row_value logits g) in
           if id = Vocab.eos_id then finished.(g) <- true
           else begin
             out.(g) <- id :: out.(g);
             next.(g) <- id
           end
         end
       done;
       h := h';
       prev := next
     done
   with Exit -> ());
  Array.map List.rev out
