(** Attention decoder emitting a method name as a sub-token sequence
    (§5.1.2).

    The decoder GRU is initialized from the program embedding H_P; at each
    step it attends over the flow of all blended traces (the flattened
    collection of per-step encoder states H^e_{i,j}), consumes the previous
    sub-token's embedding concatenated with the context vector, and emits a
    distribution over the vocabulary.  Training uses teacher forcing;
    inference is greedy (the corpus names are short, beam search buys
    nothing at our scale). *)

open Liger_tensor
open Liger_trace
module P = Liger_obs.Profile

let layer = P.register_layer "decoder"

type t = {
  cell : Rnn_cell.t;
  bridge : Linear.t;  (* program embedding -> initial decoder state *)
  out : Linear.t;     (* hidden ++ context -> vocabulary logits *)
  att : Attention.t;
  embedding : Embedding_layer.t;
  max_len : int;
}

let create ?(kind = Rnn_cell.Gru) ?(max_len = 8) store name embedding ~dim_hidden ~dim_mem =
  let dim_emb = Embedding_layer.dim embedding in
  {
    cell =
      Rnn_cell.create ~kind store (name ^ ".cell") ~dim_in:(dim_emb + dim_mem) ~dim_hidden;
    bridge = Linear.create store (name ^ ".bridge") ~dim_in:dim_mem ~dim_out:dim_hidden;
    out =
      Linear.create store (name ^ ".out") ~dim_in:(dim_hidden + dim_mem)
        ~dim_out:(Embedding_layer.vocab_size embedding);
    att = Attention.create store (name ^ ".att") ~dim_h:dim_mem ~dim_q:dim_hidden ~dim_att:dim_hidden;
    embedding;
    max_len;
  }

let init_impl t tape ~program_embedding = Linear.forward_tanh t.bridge tape program_embedding

let init t tape ~program_embedding =
  if P.on () then P.with_layer layer (fun () -> init_impl t tape ~program_embedding)
  else init_impl t tape ~program_embedding

let step_impl t tape ~memory ~h ~prev_id =
  let context = snd (Attention.fuse t.att tape ~q:h memory) in
  let x = Autodiff.concat tape [ Embedding_layer.embed_id t.embedding tape prev_id; context ] in
  let h' = Rnn_cell.step t.cell tape ~h ~x in
  let logits = Linear.forward t.out tape (Autodiff.concat tape [ h'; context ]) in
  (h', logits)

let step t tape ~memory ~h ~prev_id =
  if P.on () then P.with_layer layer (fun () -> step_impl t tape ~memory ~h ~prev_id)
  else step_impl t tape ~memory ~h ~prev_id

(** Teacher-forced negative log-likelihood of [target_ids] (without the
    terminating [eos], which is appended here).  Returns the summed loss
    node. *)
let loss_impl t tape ~memory ~program_embedding ~target_ids =
  let targets = target_ids @ [ Vocab.eos_id ] in
  let h = ref (init t tape ~program_embedding) in
  let prev = ref Vocab.sos_id in
  let total = ref (Autodiff.scalar tape 0.0) in
  List.iter
    (fun target ->
      let h', logits = step t tape ~memory ~h:!h ~prev_id:!prev in
      let nll, _ = Autodiff.softmax_cross_entropy tape logits target in
      total := Autodiff.add tape !total nll;
      h := h';
      prev := target)
    targets;
  !total

let loss t tape ~memory ~program_embedding ~target_ids =
  if P.on () then
    P.with_layer layer (fun () -> loss_impl t tape ~memory ~program_embedding ~target_ids)
  else loss_impl t tape ~memory ~program_embedding ~target_ids

(** Beam-search decoding with beam width [k]: keeps the [k] most probable
    partial sequences, scores by summed log-probability with a mild length
    normalization.  Returns the best sequence's token ids (eos excluded).
    [k = 1] degenerates to greedy decoding. *)
let decode_beam ?(k = 3) t tape ~memory ~program_embedding =
  let h0 = init t tape ~program_embedding in
  (* beam entries: (neg log prob, finished, tokens rev, hidden, prev id) *)
  let initial = (0.0, false, [], h0, Vocab.sos_id) in
  let beam = ref [ initial ] in
  for _ = 1 to t.max_len do
    let expanded =
      List.concat_map
        (fun ((nll, finished, toks, h, prev) as entry) ->
          if finished then [ entry ]
          else begin
            let h', logits = step t tape ~memory ~h ~prev_id:prev in
            let probs = Tensor.softmax (Autodiff.value logits) in
            (* top-k successor tokens of this entry *)
            let indexed = Array.mapi (fun i p -> (p, i)) probs in
            Array.sort (fun (a, _) (b, _) -> compare b a) indexed;
            List.init (min k (Array.length indexed)) (fun j ->
                let p, id = indexed.(j) in
                let nll' = nll -. log (Stdlib.max 1e-12 p) in
                if id = Vocab.eos_id then (nll', true, toks, h', id)
                else (nll', false, id :: toks, h', id))
          end)
        !beam
    in
    let score (nll, _, toks, _, _) =
      nll /. float_of_int (1 + List.length toks)  (* length-normalized *)
    in
    let sorted = List.sort (fun a b -> compare (score a) (score b)) expanded in
    beam := List.filteri (fun i _ -> i < k) sorted
  done;
  match !beam with
  | (_, _, toks, _, _) :: _ -> List.rev toks
  | [] -> []

(** Greedy decoding; returns predicted token ids (eos excluded). *)
let decode t tape ~memory ~program_embedding =
  let h = ref (init t tape ~program_embedding) in
  let prev = ref Vocab.sos_id in
  let out = ref [] in
  (try
     for _ = 1 to t.max_len do
       let h', logits = step t tape ~memory ~h:!h ~prev_id:!prev in
       let id = Tensor.argmax (Autodiff.value logits) in
       if id = Vocab.eos_id then raise Exit;
       out := id :: !out;
       h := h';
       prev := id
     done
   with Exit -> ());
  List.rev !out
