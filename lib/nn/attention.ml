(** Additive (Bahdanau-style) attention, used twice in the architecture:
    the fusion layer's scorer a1 over {static, concrete_1..N} feature
    vectors, and the decoder's scorer a2 over all blended-trace steps.

    Score of a candidate [h] against a context [q] is
    [v . tanh(W (h ++ q) + b)]; weights are the softmax of scores and the
    result is the weighted sum.  [fuse] returns the weights too — §6.1.2
    inspects them to show the symbolic dimension receives ~0.6. *)

open Liger_tensor
module P = Liger_obs.Profile
module D = Liger_obs.Dynamics

let layer = P.register_layer "attention"
let lname = "attention"

type t = { proj : Linear.t; v : Param.t }

let create store name ~dim_h ~dim_q ~dim_att =
  {
    proj = Linear.create store (name ^ ".proj") ~dim_in:(dim_h + dim_q) ~dim_out:dim_att;
    (* zero-init: scores start at 0, weights exactly uniform, so no candidate
       is favoured by the initial magnitude of its feature vector *)
    v = Param.zeros store (name ^ ".v") 1 dim_att;
  }

let score_impl t tape ~q h =
  Autodiff.matvec tape t.v (Linear.forward_tanh t.proj tape (Autodiff.concat tape [ h; q ]))

(** Raw attention score (1-dim node) of candidate [h] given context [q]. *)
let score t tape ~q h =
  if P.on () then P.with_layer layer (fun () -> score_impl t tape ~q h)
  else score_impl t tape ~q h

let weights_impl t tape ~q hs =
  let scores = Array.to_list (Array.map (score t tape ~q) hs) in
  Autodiff.softmax tape (Autodiff.concat tape scores)

(** Softmax-normalized weights over candidates (a vector node of length
    [|hs|]).  Profiled frames nest (weights > score); the profiler's
    self-time column stays double-count-free. *)
let weights t tape ~q hs =
  if P.on () then P.with_layer layer (fun () -> weights_impl t tape ~q hs)
  else weights_impl t tape ~q hs

let fuse_impl t tape ~q hs =
  let w = weights t tape ~q hs in
  (w, Autodiff.weighted_sum tape w hs)

(** Weighted sum of candidates; returns [(weights, fused)]. *)
let fuse t tape ~q hs =
  if P.on () then P.with_layer layer (fun () -> fuse_impl t tape ~q hs)
  else fuse_impl t tape ~q hs

let fuse_uniform_impl tape hs =
  let k = Array.length hs in
  if k = 0 then invalid_arg "Attention.fuse_uniform: empty";
  let w = Autodiff.const tape (Array.make k (1.0 /. float_of_int k)) in
  (w, Autodiff.weighted_sum tape w hs)

(** Fixed uniform fusion — the "remove attention" ablation (§6.3.3), which
    "evenly distribute[s] the weights across all traces in a blended
    trace". *)
let fuse_uniform tape hs =
  if P.on () then P.with_layer layer (fun () -> fuse_uniform_impl tape hs)
  else fuse_uniform_impl tape hs

(* --- batched (lanes × dim) variants --- *)

(* The batched scorer splits the projection by column blocks of the same
   weight: [W·(h ++ q) = W_h·h + W_q·q].  Candidates are vstacked
   slot-major and pushed through [W_h] in one GEMM; the query goes through
   [W_q] once per call at [lanes] rows (instead of being tiled to
   [K·lanes]); the two meet in a broadcast add.  Same math as the
   unbatched [W (h ++ q)] up to float reassociation. *)

let project_batch_impl t btape hs =
  Batched.matmul_nt_slice btape (Batched.vstack btape (Array.to_list hs)) t.proj.Linear.w
    ~off:0

(** Candidate-side projection [W_h · h] of all K slot matrices, vstacked
    slot-major into a [(K·lanes) × dim_att] node.  The candidates' window
    of the weight starts at column 0, so [~off:0].  Compute it once and
    pass it to {!fuse_batch} via [?hproj] when the same candidates are
    scored repeatedly (the decoder attends over fixed memory every step). *)
let project_batch t btape hs =
  if P.on () then P.with_layer layer (fun () -> project_batch_impl t btape hs)
  else project_batch_impl t btape hs

(* One dynamics observation per lane: the entropy −Σ w·ln w of the
   softmax weights over the lane's valid slots, in nats.  Uniform over k
   slots gives ln k; a hard pointer gives 0. *)
let record_weight_entropies w ~(mask : Tensor.t) =
  let wv = Batched.value w in
  let l = wv.Tensor.rows and k = wv.Tensor.cols in
  for i = 0 to l - 1 do
    let base = i * k in
    let h = ref 0.0 and valid = ref 0 in
    for j = 0 to k - 1 do
      if Tensor.get_idx mask (base + j) > 0.5 then begin
        incr valid;
        let wj = Tensor.get_idx wv (base + j) in
        if wj > 1e-12 then h := !h -. (wj *. log wj)
      end
    done;
    if !valid > 0 then D.record_attention_entropy !h
  done

let weights_batch_impl t btape ?hproj ~q ~mask hs =
  let k = Array.length hs in
  let l = Batched.lanes q in
  let dh = Batched.dim hs.(0) in
  let hp = match hproj with Some p -> p | None -> project_batch t btape hs in
  if Batched.lanes hp <> k * l then invalid_arg "Attention.weights_batch: hproj shape";
  let qp = Batched.matmul_nt_slice btape q t.proj.Linear.w ~off:dh in
  let scores =
    Batched.matvec_stack_cols btape
      (Batched.add_rows_cycle_bias_tanh btape hp qp t.proj.Linear.b)
      t.v ~lanes:l
  in
  let w = Batched.masked_softmax_rows btape scores ~mask in
  if D.on () && D.should_sample () then record_weight_entropies w ~mask;
  w

let weights_batch_guarded t btape ?hproj ~q ~mask hs =
  if P.on () then P.with_layer layer (fun () -> weights_batch_impl t btape ?hproj ~q ~mask hs)
  else weights_batch_impl t btape ?hproj ~q ~mask hs

(** Masked softmax weights over candidate slots ([mask : lanes×K], 1.0 =
    valid).  A lane with one valid slot gets weight 1 with exactly zero
    gradient into its score (softmax Jacobian), so it behaves like the
    unbatched single-candidate bypass. *)
let weights_batch t btape ?hproj ~q ~mask hs =
  if D.on () then
    D.with_layer lname (fun () -> weights_batch_guarded t btape ?hproj ~q ~mask hs)
  else weights_batch_guarded t btape ?hproj ~q ~mask hs

let fuse_batch_impl t btape ?hproj ~q ~mask hs =
  let w = weights_batch t btape ?hproj ~q ~mask hs in
  (w, Batched.weighted_sum btape w hs)

(** Batched {!fuse} over candidate slots with a validity mask; returns
    [(weights : lanes×K, fused : lanes×dim)].  Pass [?hproj] (from
    {!project_batch}) to reuse the candidate-side projection across
    calls. *)
let fuse_batch t btape ?hproj ~q ~mask hs =
  if P.on () then P.with_layer layer (fun () -> fuse_batch_impl t btape ?hproj ~q ~mask hs)
  else fuse_batch_impl t btape ?hproj ~q ~mask hs

let fuse_uniform_batch_impl btape ~(mask : Tensor.t) hs =
  let k = Array.length hs in
  if k = 0 then invalid_arg "Attention.fuse_uniform_batch: empty";
  let l = mask.Tensor.rows in
  if mask.Tensor.cols <> k then invalid_arg "Attention.fuse_uniform_batch: mask shape";
  let warr = Array.make (l * k) 0.0 in
  for i = 0 to l - 1 do
    let base = i * k in
    let valid = ref 0 in
    for j = 0 to k - 1 do
      if Tensor.get_idx mask (base + j) > 0.5 then incr valid
    done;
    if !valid > 0 then begin
      let w = 1.0 /. float_of_int !valid in
      for j = 0 to k - 1 do
        if Tensor.get_idx mask (base + j) > 0.5 then warr.(base + j) <- w
      done
    end
  done;
  let w = Batched.const_arr btape ~rows:l ~cols:k warr in
  (w, Batched.weighted_sum btape w hs)

(** Batched uniform fusion over the valid slots of each lane (the "remove
    attention" ablation, and step 0 where no trace context exists yet). *)
let fuse_uniform_batch btape ~mask hs =
  if P.on () then P.with_layer layer (fun () -> fuse_uniform_batch_impl btape ~mask hs)
  else fuse_uniform_batch_impl btape ~mask hs
