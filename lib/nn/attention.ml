(** Additive (Bahdanau-style) attention, used twice in the architecture:
    the fusion layer's scorer a1 over {static, concrete_1..N} feature
    vectors, and the decoder's scorer a2 over all blended-trace steps.

    Score of a candidate [h] against a context [q] is
    [v . tanh(W (h ++ q) + b)]; weights are the softmax of scores and the
    result is the weighted sum.  [fuse] returns the weights too — §6.1.2
    inspects them to show the symbolic dimension receives ~0.6. *)

open Liger_tensor
module P = Liger_obs.Profile

let layer = P.register_layer "attention"

type t = { proj : Linear.t; v : Param.t }

let create store name ~dim_h ~dim_q ~dim_att =
  {
    proj = Linear.create store (name ^ ".proj") ~dim_in:(dim_h + dim_q) ~dim_out:dim_att;
    (* zero-init: scores start at 0, weights exactly uniform, so no candidate
       is favoured by the initial magnitude of its feature vector *)
    v = Param.zeros store (name ^ ".v") 1 dim_att;
  }

let score_impl t tape ~q h =
  Autodiff.matvec tape t.v (Linear.forward_tanh t.proj tape (Autodiff.concat tape [ h; q ]))

(** Raw attention score (1-dim node) of candidate [h] given context [q]. *)
let score t tape ~q h =
  if P.on () then P.with_layer layer (fun () -> score_impl t tape ~q h)
  else score_impl t tape ~q h

let weights_impl t tape ~q hs =
  let scores = Array.to_list (Array.map (score t tape ~q) hs) in
  Autodiff.softmax tape (Autodiff.concat tape scores)

(** Softmax-normalized weights over candidates (a vector node of length
    [|hs|]).  Profiled frames nest (weights > score); the profiler's
    self-time column stays double-count-free. *)
let weights t tape ~q hs =
  if P.on () then P.with_layer layer (fun () -> weights_impl t tape ~q hs)
  else weights_impl t tape ~q hs

let fuse_impl t tape ~q hs =
  let w = weights t tape ~q hs in
  (w, Autodiff.weighted_sum tape w hs)

(** Weighted sum of candidates; returns [(weights, fused)]. *)
let fuse t tape ~q hs =
  if P.on () then P.with_layer layer (fun () -> fuse_impl t tape ~q hs)
  else fuse_impl t tape ~q hs

let fuse_uniform_impl tape hs =
  let k = Array.length hs in
  if k = 0 then invalid_arg "Attention.fuse_uniform: empty";
  let w = Autodiff.const tape (Array.make k (1.0 /. float_of_int k)) in
  (w, Autodiff.weighted_sum tape w hs)

(** Fixed uniform fusion — the "remove attention" ablation (§6.3.3), which
    "evenly distribute[s] the weights across all traces in a blended
    trace". *)
let fuse_uniform tape hs =
  if P.on () then P.with_layer layer (fun () -> fuse_uniform_impl tape hs)
  else fuse_uniform_impl tape hs
