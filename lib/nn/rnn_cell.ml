(** Recurrent cells: the paper's vanilla RNN (Equation 1) plus a GRU.

    The paper specifies single-layer vanilla RNNs for its f1/f2/f3; over our
    longer blended traces vanilla recurrences train poorly (vanishing
    gradients), so every construction site accepts either kind and the
    models default to GRU — a capacity-comparable substitution documented in
    DESIGN.md.  Both share the same interface: parameters are created under
    a name prefix; [step] maps (hidden, input) to the next hidden state;
    [run] folds a sequence and returns every intermediate state (the
    decoder's attention needs them all). *)

open Liger_tensor
module P = Liger_obs.Profile
module D = Liger_obs.Dynamics

let layer = P.register_layer "rnn_cell"
let lname = "rnn_cell"

type kind = Vanilla | Gru

type spec =
  | Svanilla of { wx : Param.t; wh : Param.t; b : Param.t }
  | Sgru of { gates : Linear.t; cand : Linear.t }

type t = { spec : spec; dim_hidden : int; h0 : Param.t }

let create ?(kind = Gru) store name ~dim_in ~dim_hidden =
  let h0 = Param.vector store (name ^ ".h0") dim_hidden in
  let spec =
    match kind with
    | Vanilla ->
        Svanilla
          {
            wx = Param.matrix store (name ^ ".wx") dim_hidden dim_in;
            wh = Param.matrix store (name ^ ".wh") dim_hidden dim_hidden;
            b = Param.vector store (name ^ ".b") dim_hidden;
          }
    | Gru ->
        Sgru
          {
            gates =
              Linear.create store (name ^ ".gates") ~dim_in:(dim_in + dim_hidden)
                ~dim_out:(2 * dim_hidden);
            cand =
              Linear.create store (name ^ ".cand") ~dim_in:(dim_in + dim_hidden)
                ~dim_out:dim_hidden;
          }
  in
  { spec; dim_hidden; h0 }

let dim_hidden t = t.dim_hidden

(** The learned initial hidden state. *)
let init_state t tape = Autodiff.of_param tape t.h0

let step_impl t tape ~h ~x =
  match t.spec with
  | Svanilla { wx; wh; b } ->
      Autodiff.tanh_ tape
        (Autodiff.add tape
           (Autodiff.add tape (Autodiff.matvec tape wx x) (Autodiff.matvec tape wh h))
           (Autodiff.of_param tape b))
  | Sgru { gates; cand } ->
      let d = t.dim_hidden in
      let xh = Autodiff.concat tape [ x; h ] in
      let rz = Linear.forward_sigmoid gates tape xh in
      let r = Autodiff.slice tape rz 0 d in
      let z = Autodiff.slice tape rz d d in
      let x_rh = Autodiff.concat tape [ x; Autodiff.mul tape r h ] in
      let h_tilde = Linear.forward_tanh cand tape x_rh in
      (* h' = (1-z) * h + z * h~ *)
      Autodiff.add tape
        (Autodiff.mul tape (Autodiff.one_minus tape z) h)
        (Autodiff.mul tape z h_tilde)

(** One recurrence step. *)
let step t tape ~h ~x =
  if P.on () then P.with_layer layer (fun () -> step_impl t tape ~h ~x)
  else step_impl t tape ~h ~x

(** Fold over a sequence of input nodes starting from the learned initial
    state; returns the hidden state after each input (length = |xs|). *)
let run t tape xs =
  let h = ref (init_state t tape) in
  List.map
    (fun x ->
      h := step t tape ~h:!h ~x;
      !h)
    xs

(** Final state of a sequence (initial state when the sequence is empty). *)
let last t tape xs =
  match List.rev (run t tape xs) with [] -> init_state t tape | h :: _ -> h

(* --- batched (lanes × dim) variants --- *)

(** Learned initial state broadcast over [lanes] rows. *)
let init_state_batch t btape ~lanes = Batched.of_param btape ~lanes t.h0

let step_batch_impl t btape ~h ~x =
  match t.spec with
  | Svanilla { wx; wh; b } ->
      Batched.tanh_ btape
        (Batched.add_bias btape
           (Batched.add btape (Batched.matmul_nt btape x wx) (Batched.matmul_nt btape h wh))
           b)
  | Sgru { gates; cand } ->
      let d = t.dim_hidden in
      let xh = Batched.concat_cols btape [ x; h ] in
      let rz = Linear.forward_sigmoid_batch gates btape xh in
      let r = Batched.slice_cols btape rz 0 d in
      let z = Batched.slice_cols btape rz d d in
      let x_rh = Batched.concat_cols btape [ x; Batched.mul btape r h ] in
      let h_tilde = Linear.forward_tanh_batch cand btape x_rh in
      Batched.lerp btape z h_tilde h

let step_batch_guarded t btape ~h ~x =
  if P.on () then P.with_layer layer (fun () -> step_batch_impl t btape ~h ~x)
  else step_batch_impl t btape ~h ~x

(** One batched recurrence step.  With [?mask] (1.0 live / 0.0 padded) the
    update is [m⊙h' + (1-m)⊙h]: padded lanes keep their previous state and
    receive exactly zero gradient through this step. *)
let step_batch ?mask t btape ~h ~x =
  let h' =
    if D.on () then D.with_layer lname (fun () -> step_batch_guarded t btape ~h ~x)
    else step_batch_guarded t btape ~h ~x
  in
  match mask with None -> h' | Some m -> Batched.select_rows btape ~mask:m h' h

(** Fold over padded step inputs [(x, mask)] starting from the broadcast
    initial state; returns the state after each step.  A lane whose masks
    are all 0.0 ends at the initial state, matching {!last} on []. *)
let run_batch t btape ~lanes steps =
  let h = ref (init_state_batch t btape ~lanes) in
  List.map
    (fun (x, mask) ->
      h := step_batch ?mask t btape ~h:!h ~x;
      !h)
    steps

(** Final state of a padded batched sequence. *)
let last_batch t btape ~lanes steps =
  match List.rev (run_batch t btape ~lanes steps) with
  | [] -> init_state_batch t btape ~lanes
  | h :: _ -> h
