(** A minimal, dependency-free HTTP/1.1 layer for {!Server}.

    The parser is {e incremental}: a connection accumulates bytes into a
    buffer and repeatedly offers the whole prefix; the parser either
    consumes one complete request (returning how many bytes it used, so
    pipelined requests parse one at a time), asks for more input, or
    rejects the prefix with the status code the connection should answer
    before closing.  It never throws on malformed input and never reads
    past the limits — oversized heads and bodies are rejected with 431/413
    {e before} the connection buffers them whole.

    The response writer emits a fixed, minimal header set in a fixed
    order and no [Date] header, so responses to equal requests are
    byte-identical across runs and job counts (the serving arm of the
    determinism contract; see DESIGN.md). *)

type request = {
  meth : string;                      (* verb, uppercased by the client *)
  path : string;                      (* request target without the query *)
  query : (string * string) list;     (* decoded query pairs, in order *)
  headers : (string * string) list;   (* names lowercased, in order *)
  body : string;
}

type limits = {
  max_head_bytes : int;  (* request line + headers, incl. the blank line *)
  max_body_bytes : int;
}

let default_limits = { max_head_bytes = 16 * 1024; max_body_bytes = 1024 * 1024 }

type parse_result =
  | Complete of request * int  (* parsed request, bytes consumed *)
  | Incomplete                 (* need more input *)
  | Reject of int * string     (* answer with this status, then close *)

let header req name = List.assoc_opt (String.lowercase_ascii name) req.headers

let query_param req name = List.assoc_opt name req.query

(* %XX and '+' decoding for query strings; bad escapes pass through
   verbatim rather than failing the request *)
let percent_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' -> Buffer.add_char buf ' '
    | '%' when !i + 2 < n -> (
        match (hex s.[!i + 1], hex s.[!i + 2]) with
        | Some a, Some b ->
            Buffer.add_char buf (Char.chr ((a * 16) + b));
            i := !i + 2
        | _ -> Buffer.add_char buf '%')
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let parse_query s =
  if s = "" then []
  else
    String.split_on_char '&' s
    |> List.filter_map (fun pair ->
           if pair = "" then None
           else
             match String.index_opt pair '=' with
             | None -> Some (percent_decode pair, "")
             | Some i ->
                 Some
                   ( percent_decode (String.sub pair 0 i),
                     percent_decode (String.sub pair (i + 1) (String.length pair - i - 1)) ))

(* index of the "\r\n\r\n" head terminator within [s.[0..limit)] *)
let find_head_end s limit =
  let n = min (String.length s) limit in
  let rec go i =
    if i + 3 >= n then None
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n' then
      Some i
    else go (i + 1)
  in
  go 0

let split_crlf_lines s =
  (* [s] contains no "\r\n\r\n"; tolerate bare "\n" separators *)
  String.split_on_char '\n' s
  |> List.map (fun line ->
         let n = String.length line in
         if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line)

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] ->
      if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
        Error (505, Printf.sprintf "unsupported protocol version %S" version)
      else if meth = "" || String.exists (fun c -> c < '!' || c > '~') meth then
        Error (400, "malformed method")
      else if String.length target = 0 || target.[0] <> '/' then
        Error (400, "request target must be absolute path")
      else
        let path, query =
          match String.index_opt target '?' with
          | None -> (target, [])
          | Some i ->
              ( String.sub target 0 i,
                parse_query (String.sub target (i + 1) (String.length target - i - 1)) )
        in
        Ok (meth, path, query)
  | _ -> Error (400, "malformed request line")

let parse_header_line line =
  match String.index_opt line ':' with
  | None | Some 0 -> Error (400, Printf.sprintf "malformed header line %S" line)
  | Some i ->
      let name = String.lowercase_ascii (String.sub line 0 i) in
      let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      if String.exists (fun c -> c = ' ' || c = '\t') name then
        Error (400, "whitespace in header name")
      else Ok (name, value)

(** Parse one request from the front of [input].  See {!parse_result}. *)
let parse ?(limits = default_limits) (input : string) : parse_result =
  match find_head_end input limits.max_head_bytes with
  | None ->
      if String.length input >= limits.max_head_bytes then
        Reject (431, "request head exceeds limit")
      else Incomplete
  | Some head_end -> (
      let head = String.sub input 0 head_end in
      match split_crlf_lines head with
      | [] -> Reject (400, "empty request head")
      | request_line :: header_lines -> (
          match parse_request_line request_line with
          | Error (status, msg) -> Reject (status, msg)
          | Ok (meth, path, query) -> (
              let rec headers acc = function
                | [] -> Ok (List.rev acc)
                | "" :: rest -> headers acc rest
                | line :: rest -> (
                    match parse_header_line line with
                    | Error e -> Error e
                    | Ok kv -> headers (kv :: acc) rest)
              in
              match headers [] header_lines with
              | Error (status, msg) -> Reject (status, msg)
              | Ok headers -> (
                  let content_length =
                    match List.assoc_opt "content-length" headers with
                    | None -> Ok 0
                    | Some s -> (
                        match int_of_string_opt (String.trim s) with
                        | Some n when n >= 0 -> Ok n
                        | _ -> Error (400, Printf.sprintf "bad content-length %S" s))
                  in
                  match content_length with
                  | Error (status, msg) -> Reject (status, msg)
                  | Ok len ->
                      if len > limits.max_body_bytes then
                        Reject (413, "request body exceeds limit")
                      else
                        let body_start = head_end + 4 in
                        if String.length input < body_start + len then Incomplete
                        else
                          let body = String.sub input body_start len in
                          Complete ({ meth; path; query; headers; body }, body_start + len)))))

(* ---------------- responses ---------------- *)

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 422 -> "Unprocessable Content"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | 505 -> "HTTP Version Not Supported"
  | _ -> "Unknown"

(** Serialize a response.  Headers come out in a fixed order (status line,
    Content-Type, any extras, Content-Length) with no Date header, so the
    bytes are a pure function of the arguments. *)
let response ?(content_type = "application/json") ?(extra_headers = []) ~status body =
  let buf = Buffer.create (String.length body + 128) in
  Buffer.add_string buf (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
  Buffer.add_string buf (Printf.sprintf "Content-Type: %s\r\n" content_type);
  List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v)) extra_headers;
  Buffer.add_string buf (Printf.sprintf "Content-Length: %d\r\n\r\n" (String.length body));
  Buffer.add_string buf body;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** The uniform error body: [{"error": "..."}]. *)
let error_body msg = Printf.sprintf "{\"error\":\"%s\"}" (json_escape msg)
