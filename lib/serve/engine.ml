(** The application engine behind [liger serve]: MiniJava source in,
    embeddings / neighbors / name suggestions out.

    Every submission runs the same pipeline as training — parse,
    typecheck, feedback-directed test generation (with a reduced,
    latency-oriented budget and a per-method RNG seed derived from the
    AST hash), blending, interning against the model's frozen vocabulary
    — and then the {e batched} forward: even a lone request is a
    one-lane [Batched] tape, so a coalesced burst of N requests produces
    bitwise the same per-lane vectors as N sequential calls (the batched
    forward deduplicates and gathers; no padding lane contributes).

    Results are cached in an AST-hash-keyed LRU ({!Lru}); unchanged
    methods hit the cache no matter how they were formatted
    ({!Ast_hash}). *)

open Liger_lang
open Liger_trace
open Liger_tensor
open Liger_testgen
open Liger_core
module Metrics = Liger_obs.Metrics
module Json = Liger_obs.Json

type config = {
  batch_window_s : float;    (* coalescing window *)
  max_batch : int;           (* lanes per batched forward *)
  cache_capacity : int;      (* LRU entries *)
  feedback_budget : Feedback.budget;  (* reduced vs training: latency first *)
  enc_config : Common.enc_config;
  search_k : int;            (* default neighbors per /search *)
}

let default_config =
  {
    batch_window_s = 0.002;
    max_batch = 32;
    cache_capacity = 512;
    (* the training default is 400 attempts / 20 paths / fuel 20k; a
       serving request needs enough executions to blend, not a corpus *)
    feedback_budget =
      { Feedback.max_attempts = 60; target_paths = 6; per_path = 3; fuel = 8000 };
    enc_config = Common.default_enc_config;
    search_k = 5;
  }

type t = {
  config : config;
  model : Liger_model.t;
  vocab : Vocab.t;
  index : Index.t option;
  cache : (string, float array) Lru.t;
  embed_co : (Common.enc_example, float array) Coalescer.t;
  suggest_co : (Common.enc_example, string list) Coalescer.t;
}

let publish_cache_metrics cache =
  Metrics.gauge "serve.cache_entries" (float_of_int (Lru.size cache));
  Metrics.gauge "serve.cache_hits" (float_of_int (Lru.hits cache));
  Metrics.gauge "serve.cache_misses" (float_of_int (Lru.misses cache));
  Metrics.gauge "serve.cache_evictions" (float_of_int (Lru.evictions cache))

let create ?(config = default_config) ?index ~model ~vocab () =
  let embed_run exs =
    Metrics.incr "serve.batches" ~labels:[ ("op", "embed") ];
    Metrics.add "serve.batch_lanes" (Array.length exs) ~labels:[ ("op", "embed") ];
    Liger_model.embed_programs model exs
  in
  let suggest_run exs =
    Metrics.incr "serve.batches" ~labels:[ ("op", "suggest") ];
    Metrics.add "serve.batch_lanes" (Array.length exs) ~labels:[ ("op", "suggest") ];
    Liger_model.predict_name_ids_batch model exs
    |> Array.map (fun ids -> List.map (Vocab.name vocab) ids)
  in
  {
    config;
    model;
    vocab;
    index;
    cache = Lru.create ~capacity:config.cache_capacity;
    embed_co =
      Coalescer.create ~max_batch:config.max_batch ~window_s:config.batch_window_s
        ~run:embed_run ();
    suggest_co =
      Coalescer.create ~max_batch:config.max_batch ~window_s:config.batch_window_s
        ~run:suggest_run ();
  }

let stop t =
  Coalescer.stop t.embed_co;
  Coalescer.stop t.suggest_co

(* ---------------- the source pipeline ---------------- *)

(* parse + typecheck one submitted method; every rejection is a 4xx, never
   an exception escaping to the connection *)
let prepare body =
  if String.trim body = "" then Error (400, "empty body: POST MiniJava source")
  else
    match Parser.methods_of_string body with
    | exception Parser.Parse_error (msg, line) ->
        Error (400, Printf.sprintf "parse error at line %d: %s" line msg)
    | [] -> Error (400, "no method found in body")
    | meth :: _ -> (
        match Typecheck.check meth with
        | Error e ->
            Error (400, Printf.sprintf "type error at line %d: %s" e.Typecheck.line e.Typecheck.msg)
        | Ok () -> Ok (meth, Ast_hash.of_meth meth))

(* trace generation + interning; the expensive prefix of a cache miss.
   Standalone so [liger index] encodes offline corpora through exactly the
   pipeline the server applies to queries (same budget, same per-hash
   seed → same vectors). *)
let encode_method ?(config = default_config) ~vocab (meth : Ast.meth) hash =
  let rng = Rng.create (Ast_hash.seed_of_hex hash) in
  let result = Feedback.generate ~budget:config.feedback_budget rng meth in
  if result.Feedback.gave_up then
    Error (422, "could not generate executions for this method within the serving budget")
  else
    let blended = Feedback.blended meth result in
    Ok
      (Common.encode_example config.enc_config vocab meth blended
         (Common.Name meth.Ast.mname))

let encode t meth hash = encode_method ~config:t.config ~vocab:t.vocab meth hash

(** The embedding of [meth], through cache and coalescer.  Returns the
    vector and whether it was served from cache. *)
let embed_vector t ~deadline (meth : Ast.meth) hash =
  match Lru.find t.cache hash with
  | Some v ->
      publish_cache_metrics t.cache;
      Ok (v, true)
  | None -> (
      publish_cache_metrics t.cache;
      match encode t meth hash with
      | Error _ as e -> e
      | Ok ex -> (
          match Coalescer.submit t.embed_co ~deadline ex with
          | Ok v ->
              Lru.put t.cache hash v;
              publish_cache_metrics t.cache;
              Ok (v, false)
          | Error `Expired ->
              Metrics.incr "serve.deadline_expired";
              Error (408, "deadline expired before a batch lane was allocated")))

(* ---------------- JSON bodies ---------------- *)

let vector_json v =
  "[" ^ String.concat "," (List.map Json.of_float (Array.to_list v)) ^ "]"

let embed_body hash ~cached v =
  Printf.sprintf "{\"hash\":\"%s\",\"dim\":%d,\"cached\":%b,\"vector\":%s}" hash
    (Array.length v) cached (vector_json v)

let search_body hash neighbors =
  Printf.sprintf "{\"hash\":\"%s\",\"neighbors\":[%s]}" hash
    (String.concat ","
       (List.map
          (fun (score, key) ->
            Printf.sprintf "{\"key\":\"%s\",\"score\":%s}" (Http.json_escape key)
              (Json.of_float score))
          neighbors))

let suggest_body hash subtokens =
  Printf.sprintf "{\"hash\":\"%s\",\"name\":\"%s\",\"subtokens\":[%s]}" hash
    (Http.json_escape (Subtoken.join subtokens))
    (String.concat ","
       (List.map (fun s -> "\"" ^ Http.json_escape s ^ "\"") subtokens))

(* ---------------- endpoints ---------------- *)

let err status msg = (status, "application/json", Http.error_body msg)

let embed_endpoint t ~deadline body =
  match prepare body with
  | Error (status, msg) -> err status msg
  | Ok (meth, hash) -> (
      match embed_vector t ~deadline meth hash with
      | Error (status, msg) -> err status msg
      | Ok (v, cached) -> (200, "application/json", embed_body hash ~cached v))

let search_endpoint t ~deadline ~k body =
  match t.index with
  | None -> err 503 "no index loaded (start the server with --index DIR)"
  | Some index -> (
      match prepare body with
      | Error (status, msg) -> err status msg
      | Ok (meth, hash) -> (
          match embed_vector t ~deadline meth hash with
          | Error (status, msg) -> err status msg
          | Ok (v, _) ->
              (200, "application/json", search_body hash (Index.nearest index ~k v))))

let suggest_endpoint t ~deadline body =
  match prepare body with
  | Error (status, msg) -> err status msg
  | Ok (meth, hash) -> (
      match encode t meth hash with
      | Error (status, msg) -> err status msg
      | Ok ex -> (
          match Coalescer.submit t.suggest_co ~deadline ex with
          | Ok subtokens -> (200, "application/json", suggest_body hash subtokens)
          | Error `Expired ->
              Metrics.incr "serve.deadline_expired";
              err 408 "deadline expired before a batch lane was allocated"))

(** The request handler {!Server.start} runs behind its gate: everything
    except [/healthz] and [/metrics], which the server owns. *)
let handle t ~deadline (req : Http.request) : int * string * string =
  match (req.Http.meth, req.Http.path) with
  | "POST", "/embed" -> embed_endpoint t ~deadline req.Http.body
  | "POST", "/search" ->
      let k =
        match Option.bind (Http.query_param req "k") int_of_string_opt with
        | Some k when k >= 1 -> k
        | _ -> t.config.search_k
      in
      search_endpoint t ~deadline ~k req.Http.body
  | "POST", "/suggest" -> suggest_endpoint t ~deadline req.Http.body
  | _, ("/embed" | "/search" | "/suggest") -> err 405 "use POST with MiniJava source as the body"
  | _, path -> err 404 (Printf.sprintf "no such endpoint %s" path)
