(** Bounded-inflight admission control.

    The server admits at most [max_inflight] application requests at a
    time; the next one is refused immediately ([try_acquire] = false → a
    fast 429 with [Retry-After]) instead of queueing without bound.  The
    bound is what keeps tail latency honest under overload: queued work
    would all be admitted eventually and time out together. *)

type t = { max_inflight : int; mutable inflight : int; lock : Mutex.t }

let create ~max_inflight =
  if max_inflight < 1 then invalid_arg "Gate.create: max_inflight must be >= 1";
  { max_inflight; inflight = 0; lock = Mutex.create () }

let try_acquire t =
  Mutex.lock t.lock;
  let ok = t.inflight < t.max_inflight in
  if ok then t.inflight <- t.inflight + 1;
  Mutex.unlock t.lock;
  ok

let release t =
  Mutex.lock t.lock;
  if t.inflight > 0 then t.inflight <- t.inflight - 1;
  Mutex.unlock t.lock

let inflight t =
  Mutex.lock t.lock;
  let n = t.inflight in
  Mutex.unlock t.lock;
  n

let max_inflight t = t.max_inflight
