(** A mutex-protected LRU map with hit/miss/eviction counters — the
    embedding cache of {!Engine}, keyed by AST hash ({!Ast_hash}).

    Doubly-linked recency list over a hashtable: [find] refreshes recency,
    [put] evicts the least-recently-used entry once [capacity] is
    exceeded.  All operations are O(1) and safe to call from any server
    thread. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards most-recently-used *)
  mutable next : ('k, 'v) node option;  (* towards least-recently-used *)
}

type ('k, 'v) t = {
  capacity : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable mru : ('k, 'v) node option;
  mutable lru : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    capacity;
    tbl = Hashtbl.create (2 * capacity);
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* unlink [node] from the recency list (caller holds the lock) *)
let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.mru <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.lru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.mru;
  node.prev <- None;
  (match t.mru with Some m -> m.prev <- Some node | None -> t.lru <- Some node);
  t.mru <- Some node

(** Look up [key]; a hit refreshes its recency. *)
let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.tbl key with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some node ->
      t.hits <- t.hits + 1;
      unlink t node;
      push_front t node;
      Some node.value

(** Insert or refresh [key]; evicts the least-recently-used entry when the
    capacity is exceeded. *)
let put t key value =
  locked t @@ fun () ->
  (match Hashtbl.find_opt t.tbl key with
  | Some node ->
      node.value <- value;
      unlink t node;
      push_front t node
  | None ->
      let node = { key; value; prev = None; next = None } in
      Hashtbl.replace t.tbl key node;
      push_front t node;
      if Hashtbl.length t.tbl > t.capacity then
        match t.lru with
        | None -> ()
        | Some victim ->
            unlink t victim;
            Hashtbl.remove t.tbl victim.key;
            t.evictions <- t.evictions + 1)

let size t = locked t @@ fun () -> Hashtbl.length t.tbl
let capacity t = t.capacity
let hits t = locked t @@ fun () -> t.hits
let misses t = locked t @@ fun () -> t.misses
let evictions t = locked t @@ fun () -> t.evictions

(** Keys from most- to least-recently used (test introspection). *)
let keys_by_recency t =
  locked t @@ fun () ->
  let rec go acc = function
    | None -> List.rev acc
    | Some node -> go (node.key :: acc) node.next
  in
  go [] t.mru
