(** The concurrent HTTP server: listener + one thread per connection,
    keep-alive and pipelining, bounded inflight admission ({!Gate}),
    per-request deadlines, and per-endpoint telemetry.

    [/healthz] and [/metrics] are owned here and bypass the gate — load
    shedding must never blind the probes watching the shedding.  The
    metrics endpoint is PR 8's OpenMetrics exposition verbatim:
    [Openmetrics.render (Metrics.snapshot ())].

    Everything else runs the injected [handler] behind the gate: over
    the inflight cap a request is answered [429] with [Retry-After]
    immediately (never queued), and its deadline — [X-Deadline-Ms]
    header, else the configured default — is passed down so expired
    work is dropped before it occupies a batch lane ([408]). *)

module Metrics = Liger_obs.Metrics
module Openmetrics = Liger_obs.Openmetrics

type config = {
  port : int;  (* 0 = ephemeral: the kernel picks a free port *)
  max_inflight : int;
  default_deadline_s : float;
  limits : Http.limits;
}

let default_config =
  { port = 0; max_inflight = 8; default_deadline_s = 30.0; limits = Http.default_limits }

type t = {
  config : config;
  handler : deadline:float -> Http.request -> int * string * string;
  listener : Unix.file_descr;
  port : int;
  gate : Gate.t;
  mutable stopped : bool;
  mutable accept_thread : Thread.t option;
  lock : Mutex.t;
}

let port t = t.port

let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let endpoint_label path =
  match path with
  | "/embed" | "/search" | "/suggest" | "/healthz" | "/metrics" -> path
  | _ -> "other"

let observe_request ~endpoint ~status ~elapsed =
  Metrics.incr "serve.requests"
    ~labels:[ ("endpoint", endpoint); ("status", string_of_int status) ];
  Metrics.observe "serve.latency_seconds" ~labels:[ ("endpoint", endpoint) ] elapsed

(* run one parsed request through the built-ins / gate / handler; returns
   the full response bytes *)
let respond t (req : Http.request) =
  let endpoint = endpoint_label req.Http.path in
  let t0 = Unix.gettimeofday () in
  let status, response =
    match (req.Http.meth, req.Http.path) with
    | "GET", "/healthz" -> (200, Http.response ~content_type:"text/plain" ~status:200 "ok\n")
    | "GET", "/metrics" ->
        let body = Openmetrics.render (Metrics.snapshot ()) in
        ( 200,
          Http.response
            ~content_type:"application/openmetrics-text; version=1.0.0; charset=utf-8"
            ~status:200 body )
    | _, ("/healthz" | "/metrics") ->
        (405, Http.response ~status:405 (Http.error_body "use GET"))
    | _ ->
        if not (Gate.try_acquire t.gate) then begin
          Metrics.incr "serve.rejected_busy";
          ( 429,
            Http.response ~status:429
              ~extra_headers:[ ("Retry-After", "1") ]
              (Http.error_body "server at inflight capacity; retry") )
        end
        else
          Fun.protect
            ~finally:(fun () ->
              Gate.release t.gate;
              Metrics.gauge "serve.inflight" (float_of_int (Gate.inflight t.gate)))
            (fun () ->
              Metrics.gauge "serve.inflight" (float_of_int (Gate.inflight t.gate));
              let deadline =
                let budget_s =
                  match
                    Option.bind (Http.header req "x-deadline-ms") float_of_string_opt
                  with
                  | Some ms when ms >= 0.0 -> ms /. 1000.0
                  | _ -> t.config.default_deadline_s
                in
                t0 +. budget_s
              in
              match t.handler ~deadline req with
              | status, content_type, body ->
                  (status, Http.response ~content_type ~status body)
              | exception e ->
                  Logs.err (fun m ->
                      m "serve: handler raised on %s %s: %s" req.Http.meth req.Http.path
                        (Printexc.to_string e));
                  (500, Http.response ~status:500 (Http.error_body "internal error")))
  in
  observe_request ~endpoint ~status ~elapsed:(Unix.gettimeofday () -. t0);
  response

let wants_close (req : Http.request) =
  match Http.header req "connection" with
  | Some v -> String.lowercase_ascii (String.trim v) = "close"
  | None -> false

let connection_loop t fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    match Http.parse ~limits:t.config.limits (Buffer.contents buf) with
    | Http.Complete (req, consumed) ->
        let rest = Buffer.sub buf consumed (Buffer.length buf - consumed) in
        Buffer.clear buf;
        Buffer.add_string buf rest;
        write_all fd (respond t req);
        if wants_close req then () else loop ()
    | Http.Reject (status, msg) ->
        Metrics.incr "serve.requests"
          ~labels:[ ("endpoint", "malformed"); ("status", string_of_int status) ];
        write_all fd (Http.response ~status (Http.error_body msg))
    | Http.Incomplete ->
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          loop ()
        end
  in
  (try loop () with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec go () =
    match Unix.accept t.listener with
    | client, _ ->
        ignore (Thread.create (connection_loop t) client);
        go ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _) ->
        if not t.stopped then go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> if not t.stopped then go ()
  in
  go ()

(** Bind, listen and start accepting on 127.0.0.1.  [config.port = 0]
    asks the kernel for a free ephemeral port — collision-safe under
    parallel test runs; read the bound port back with {!port}. *)
let start ?(config = default_config) ~handler () =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  (try Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, config.port))
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listener 64;
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let t =
    {
      config;
      handler;
      listener;
      port;
      gate = Gate.create ~max_inflight:config.max_inflight;
      stopped = false;
      accept_thread = None;
      lock = Mutex.create ();
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

(** Stop accepting and join the acceptor.  In-flight connections finish
    on their own threads; new connections are refused. *)
let stop t =
  Mutex.lock t.lock;
  let was_stopped = t.stopped in
  t.stopped <- true;
  Mutex.unlock t.lock;
  if not was_stopped then begin
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    match t.accept_thread with
    | Some th ->
        t.accept_thread <- None;
        Thread.join th
    | None -> ()
  end

let inflight t = Gate.inflight t.gate
