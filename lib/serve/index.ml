(** A persistent, content-addressed embedding index for nearest-neighbor
    search ([liger index] builds it offline; [liger serve] loads it).

    Each entry is (key, AST hash, embedding vector).  The hash
    ({!Ast_hash}) addresses the content: rebuilding an index over a
    corpus reuses the stored vector of every method whose normalized
    source is unchanged and re-embeds only the rest.

    On disk: [index.txt] under the index directory —

    {v
    liger-index 1
    dim <d>
    <key>\t<hash>\t<v0> <v1> ... <v_{d-1}>
    v}

    with entries sorted by (key, hash) and floats printed in round-trip
    precision, so the same corpus always serializes to the same bytes
    (the index arm of the determinism contract). *)

type entry = { key : string; hash : string; vector : float array }

type t = { dim : int; entries : entry array }

let file_name = "index.txt"

let dim t = t.dim
let size t = Array.length t.entries

let entries t = t.entries

let find_hash t hash =
  Array.fold_left (fun acc e -> if e.hash = hash then Some e else acc) None t.entries

let sorted entries =
  let arr = Array.copy entries in
  Array.sort (fun a b -> compare (a.key, a.hash) (b.key, b.hash)) arr;
  arr

let create ~dim entries = { dim; entries = sorted (Array.of_list entries) }

(* ---------------- persistence ---------------- *)

let save t ~dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir file_name in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "liger-index 1\ndim %d\n" t.dim;
      Array.iter
        (fun e ->
          (* keys are method names (no tabs/newlines by construction); %.17g
             round-trips every double exactly *)
          Printf.fprintf oc "%s\t%s\t%s\n" e.key e.hash
            (String.concat " "
               (List.map (Printf.sprintf "%.17g") (Array.to_list e.vector))))
        t.entries)

let load ~dir : (t, string) result =
  let path = Filename.concat dir file_name in
  if not (Sys.file_exists path) then Error (Printf.sprintf "no %s in %s" file_name dir)
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          if input_line ic <> "liger-index 1" then Error (path ^ ": not a liger index")
          else
            match String.split_on_char ' ' (input_line ic) with
            | [ "dim"; d ] -> (
                match int_of_string_opt d with
                | None -> Error (path ^ ": bad dim line")
                | Some dim ->
                    let entries = ref [] in
                    (try
                       while true do
                         let line = input_line ic in
                         match String.split_on_char '\t' line with
                         | [ key; hash; vec ] ->
                             let vector =
                               String.split_on_char ' ' vec
                               |> List.filter (fun s -> s <> "")
                               |> List.map float_of_string
                               |> Array.of_list
                             in
                             if Array.length vector <> dim then
                               failwith (Printf.sprintf "entry %s: wrong dimension" key);
                             entries := { key; hash; vector } :: !entries
                         | _ -> failwith (Printf.sprintf "malformed line %S" line)
                       done
                     with End_of_file -> ());
                    Ok { dim; entries = sorted (Array.of_list (List.rev !entries)) })
            | _ -> Error (path ^ ": bad dim line")
        with
        | End_of_file -> Error (path ^ ": truncated header")
        | Failure msg -> Error (path ^ ": " ^ msg))

let load_exn ~dir =
  match load ~dir with Ok t -> t | Error msg -> failwith msg

(* ---------------- retrieval ---------------- *)

let cosine a b =
  let dot = ref 0.0 and na = ref 0.0 and nb = ref 0.0 in
  Array.iteri
    (fun i x ->
      dot := !dot +. (x *. b.(i));
      na := !na +. (x *. x);
      nb := !nb +. (b.(i) *. b.(i)))
    a;
  !dot /. (sqrt (!na *. !nb) +. 1e-12)

(** The [k] nearest entries by cosine similarity, best first; ties break
    on (key, hash) so the order is deterministic. *)
let nearest t ?(k = 5) query =
  if Array.length query <> t.dim then invalid_arg "Index.nearest: dim mismatch";
  t.entries
  |> Array.to_list
  |> List.map (fun e -> (cosine query e.vector, e))
  |> List.sort (fun (sa, a) (sb, b) ->
         match compare sb sa with 0 -> compare (a.key, a.hash) (b.key, b.hash) | c -> c)
  |> List.filteri (fun i _ -> i < k)
  |> List.map (fun (score, e) -> (score, e.key))

(* ---------------- content-addressed build ---------------- *)

type build_report = { embedded : int; reused : int }

(** Build an index over [(key, hash, embed_input)] descriptors: entries
    whose hash is present in [previous] reuse the stored vector; the rest
    are embedded in one call to [embed_batch] (batched forward). *)
let build ~dim ?previous ~embed_batch (items : (string * string * 'a) list) :
    t * build_report =
  let prev_by_hash = Hashtbl.create 64 in
  (match previous with
  | Some p ->
      Array.iter (fun e -> Hashtbl.replace prev_by_hash e.hash e.vector) p.entries
  | None -> ());
  let reused = ref [] and fresh = ref [] in
  List.iter
    (fun (key, hash, input) ->
      match Hashtbl.find_opt prev_by_hash hash with
      | Some vector -> reused := { key; hash; vector } :: !reused
      | None -> fresh := (key, hash, input) :: !fresh)
    items;
  let fresh = List.rev !fresh in
  let fresh_entries =
    match fresh with
    | [] -> []
    | _ ->
        let vectors = embed_batch (Array.of_list (List.map (fun (_, _, i) -> i) fresh)) in
        List.mapi (fun i (key, hash, _) -> { key; hash; vector = vectors.(i) }) fresh
  in
  let entries = List.rev_append !reused fresh_entries in
  ( { dim; entries = sorted (Array.of_list entries) },
    { embedded = List.length fresh_entries; reused = List.length !reused } )
