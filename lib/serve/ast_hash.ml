(** Content addressing for methods: a 64-bit FNV-1a hash of the
    pretty-printed source.

    The pretty-printer normalizes whitespace and layout, and the roundtrip
    fuzz oracle guarantees [parse (pretty m)] reproduces [m] (statement ids
    are not printed), so the hash is stable under pretty→parse roundtrips —
    two submissions of the same method body always share a cache entry and
    an index entry, however they were formatted. *)

open Liger_lang

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let of_string s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let hex h = Printf.sprintf "%016Lx" h

(** The hash of a method's normalized source, as 16 lowercase hex digits. *)
let of_meth (m : Ast.meth) = hex (of_string (Pretty.meth_to_string m))

(** A deterministic RNG seed derived from a hash string — serving runs
    the feedback generator with a per-method seed so equal methods get
    equal traces regardless of request order or concurrency. *)
let seed_of_hex hash =
  (* fold the hex string through FNV again; keep it positive and small
     enough for Rng.create *)
  Int64.to_int (Int64.logand (of_string hash) 0x3fffffffL)
