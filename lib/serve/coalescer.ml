(** Request coalescing: concurrent submissions are collected for up to a
    window and run as ONE batched computation.

    A burst of N concurrent [submit]s becomes a single [run] call over an
    N-element array — for the embedding engine that means one [Batched]
    forward whose lanes are the queued requests, padded exactly like a
    training mini-batch.  The worker wakes on the first submission, sleeps
    the coalescing window so the rest of the burst can queue behind it,
    then drains the queue (up to [max_batch]) into one batch.

    Deadlines are enforced at batch-assembly time: a waiter whose deadline
    has passed is completed as [Error `Expired] and {e never occupies a
    batch lane} — cancelled work costs the model nothing.  OCaml's
    [Condition] has no timed wait, so expiry is only observed at assembly
    points; that is exactly when a lane would have been allocated, which
    is the resource the deadline protects. *)

type ('req, 'resp) waiter = {
  req : 'req;
  deadline : float option;  (* absolute, Unix.gettimeofday clock *)
  mutable state : ('req, 'resp) state;
}

and ('req, 'resp) state =
  | Waiting
  | Done of 'resp
  | Expired
  | Failed of exn

type ('req, 'resp) t = {
  window_s : float;
  max_batch : int;
  run : 'req array -> 'resp array;
  lock : Mutex.t;
  cond : Condition.t;  (* signals both the worker and completed waiters *)
  queue : ('req, 'resp) waiter Queue.t;
  mutable stopped : bool;
  mutable batches : int;      (* batched [run] invocations *)
  mutable lanes : int;        (* total lanes across all batches *)
  mutable expired : int;      (* waiters dropped at assembly *)
  mutable worker : Thread.t option;
}

let complete_all t state waiters =
  List.iter (fun w -> w.state <- state) waiters;
  ignore t

let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stopped do
    Condition.wait t.cond t.lock
  done;
  if t.stopped then begin
    (* drain: pending waiters can never run, fail them as expired *)
    let pending = List.of_seq (Queue.to_seq t.queue) in
    Queue.clear t.queue;
    complete_all t Expired pending;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock
  end
  else begin
    Mutex.unlock t.lock;
    (* the coalescing window: let the rest of the burst queue up *)
    if t.window_s > 0.0 then Thread.delay t.window_s;
    Mutex.lock t.lock;
    let now = Unix.gettimeofday () in
    let batch = ref [] and n = ref 0 in
    while (not (Queue.is_empty t.queue)) && !n < t.max_batch do
      let w = Queue.pop t.queue in
      match w.deadline with
      | Some d when d <= now ->
          (* expired before a lane was allocated: drop, don't batch *)
          w.state <- Expired;
          t.expired <- t.expired + 1
      | _ ->
          batch := w :: !batch;
          incr n
    done;
    let batch = Array.of_list (List.rev !batch) in
    Mutex.unlock t.lock;
    (if Array.length batch > 0 then
       let result =
         try Ok (t.run (Array.map (fun w -> w.req) batch)) with e -> Error e
       in
       Mutex.lock t.lock;
       (match result with
       | Ok resps when Array.length resps = Array.length batch ->
           t.batches <- t.batches + 1;
           t.lanes <- t.lanes + Array.length batch;
           Array.iteri (fun i w -> w.state <- Done resps.(i)) batch
       | Ok _ ->
           Array.iter
             (fun w -> w.state <- Failed (Failure "coalescer: run returned wrong arity"))
             batch
       | Error e -> Array.iter (fun w -> w.state <- Failed e) batch);
       Mutex.unlock t.lock);
    Mutex.lock t.lock;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    worker_loop t
  end

let create ?(max_batch = 64) ~window_s ~run () =
  if max_batch < 1 then invalid_arg "Coalescer.create: max_batch must be >= 1";
  let t =
    {
      window_s;
      max_batch;
      run;
      lock = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stopped = false;
      batches = 0;
      lanes = 0;
      expired = 0;
      worker = None;
    }
  in
  t.worker <- Some (Thread.create worker_loop t);
  t

(** Submit one request and block until its batch completes.  [Error
    `Expired] means the deadline passed before a batch lane was allocated
    (or the coalescer was stopped); a [run] exception re-raises in every
    waiter of its batch. *)
let submit t ?deadline req : ('resp, [ `Expired ]) result =
  (match deadline with
  | Some d when d <= Unix.gettimeofday () -> raise_notrace Exit
  | _ -> ());
  Mutex.lock t.lock;
  if t.stopped then begin
    Mutex.unlock t.lock;
    Error `Expired
  end
  else begin
    let w = { req; deadline; state = Waiting } in
    Queue.push w t.queue;
    Condition.broadcast t.cond;
    while w.state = Waiting do
      Condition.wait t.cond t.lock
    done;
    Mutex.unlock t.lock;
    match w.state with
    | Done resp -> Ok resp
    | Expired -> Error `Expired
    | Failed e -> raise e
    | Waiting -> assert false
  end

let submit t ?deadline req =
  try submit t ?deadline req
  with Exit ->
    (* deadline already passed at submission: count it like an assembly
       drop — it provably never reached a lane *)
    Mutex.lock t.lock;
    t.expired <- t.expired + 1;
    Mutex.unlock t.lock;
    Error `Expired

(** Stop the worker; pending and future submissions complete as
    [Error `Expired]. *)
let stop t =
  Mutex.lock t.lock;
  t.stopped <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock;
  match t.worker with
  | Some th ->
      t.worker <- None;
      Thread.join th
  | None -> ()

let batches t =
  Mutex.lock t.lock;
  let n = t.batches in
  Mutex.unlock t.lock;
  n

let lanes t =
  Mutex.lock t.lock;
  let n = t.lanes in
  Mutex.unlock t.lock;
  n

let expired t =
  Mutex.lock t.lock;
  let n = t.expired in
  Mutex.unlock t.lock;
  n
