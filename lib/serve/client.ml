(** A small blocking HTTP/1.1 client for the loopback tests, the bench
    load generator and [liger fetch].  One request per call; responses
    are framed by [Content-Length] (every response this stack emits
    carries one). *)

type response = { status : int; headers : (string * string) list; body : string }

let read_until_blank fd =
  (* accumulate until "\r\n\r\n"; returns (head, leftover-after-head) *)
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 2048 in
  let rec go () =
    let s = Buffer.contents buf in
    match Http.find_head_end s (String.length s) with
    | Some i -> (String.sub s 0 i, String.sub s (i + 4) (String.length s - i - 4))
    | None ->
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n = 0 then failwith "connection closed before response head"
        else begin
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        end
  in
  go ()

let read_n fd already n =
  let buf = Buffer.create n in
  Buffer.add_string buf already;
  let chunk = Bytes.create 4096 in
  while Buffer.length buf < n do
    let k = Unix.read fd chunk 0 (min (Bytes.length chunk) (n - Buffer.length buf)) in
    if k = 0 then failwith "connection closed mid-body";
    Buffer.add_subbytes buf chunk 0 k
  done;
  Buffer.sub buf 0 n

let parse_head head =
  match String.split_on_char '\n' head with
  | [] -> failwith "empty response head"
  | status_line :: header_lines ->
      let strip line =
        let n = String.length line in
        if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
      in
      let status =
        match String.split_on_char ' ' (strip status_line) with
        | _ :: code :: _ -> (
            match int_of_string_opt code with
            | Some c -> c
            | None -> failwith "bad status code")
        | _ -> failwith "bad status line"
      in
      let headers =
        List.filter_map
          (fun line ->
            let line = strip line in
            match String.index_opt line ':' with
            | None -> None
            | Some i ->
                Some
                  ( String.lowercase_ascii (String.sub line 0 i),
                    String.trim (String.sub line (i + 1) (String.length line - i - 1)) ))
          header_lines
      in
      (status, headers)

(** Send one request to [127.0.0.1:port] and read the full response. *)
let request ?(meth = "GET") ?(headers = []) ?body ~port path : response =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let buf = Buffer.create 256 in
      Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth path);
      Buffer.add_string buf "Host: 127.0.0.1\r\n";
      List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v)) headers;
      (match body with
      | Some b -> Buffer.add_string buf (Printf.sprintf "Content-Length: %d\r\n" (String.length b))
      | None -> ());
      Buffer.add_string buf "Connection: close\r\n\r\n";
      (match body with Some b -> Buffer.add_string buf b | None -> ());
      let payload = Buffer.contents buf in
      let bytes = Bytes.of_string payload in
      let n = Bytes.length bytes in
      let rec send off = if off < n then send (off + Unix.write fd bytes off (n - off)) in
      send 0;
      let head, leftover = read_until_blank fd in
      let status, headers = parse_head head in
      let body =
        match List.assoc_opt "content-length" headers with
        | Some len -> (
            match int_of_string_opt len with
            | Some len -> read_n fd leftover len
            | None -> failwith "bad content-length in response")
        | None ->
            (* no framing: read to EOF (we always send Connection: close) *)
            let buf = Buffer.create 1024 in
            Buffer.add_string buf leftover;
            let chunk = Bytes.create 4096 in
            let rec drain () =
              let k = Unix.read fd chunk 0 (Bytes.length chunk) in
              if k > 0 then begin
                Buffer.add_subbytes buf chunk 0 k;
                drain ()
              end
            in
            drain ();
            Buffer.contents buf
      in
      { status; headers; body })
