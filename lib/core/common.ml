(** Shared types for all models: labeled examples and their pre-interned
    encodings.

    Training touches every example once per epoch, so everything that does
    not depend on the model parameters — statement trees, state token ids,
    sub-token targets — is resolved against the frozen vocabulary once, when
    the dataset is built.  Down-sampling experiments then merely select
    sub-ranges of the encoded traces; they never re-run the encoder. *)

open Liger_lang
open Liger_trace

type label =
  | Name of string   (* method-name prediction: decoded as sub-tokens *)
  | Class of int     (* semantics classification *)

(** Statement trees with interned labels (fast TreeLSTM input). *)
type itree = ILeaf of int | INode of int * itree list

(* interning is a pure lookup (unseen → unk): the encode path must never
   mutate the vocabulary — serving encodes user-submitted methods whose
   identifiers were not in the training set ({!Vocab.lookup}) *)
let rec intern_tree vocab = function
  | Encode.Leaf tok -> ILeaf (Vocab.lookup vocab tok)
  | Encode.Node (label, children) ->
      INode (Vocab.lookup vocab label, List.map (intern_tree vocab) children)

(** One encoded blended-trace step: the statement tree, a memoization key
    (statements repeat across loop iterations, so per-forward TreeLSTM
    results are cached on it), and per-concrete-trace per-variable token
    ids. *)
type enc_step = {
  tree : itree;
  memo_key : int;                 (* sid * 2 + branch bit *)
  var_tokens : int array array array;  (* [concrete][variable][token] *)
}

type enc_trace = {
  steps : enc_step array;
  n_concrete : int;
  n_lines : int;  (* lines this path covers; kept for reporting *)
}

type enc_example = {
  uid : int;                 (* unique per encoded example; memoization key *)
  meth : Ast.meth;
  traces : enc_trace array;  (* in Mincover.reduction_order *)
  label : label;
  target_ids : int list;     (* Name: sub-token ids; Class: singleton *)
  var_name_ids : int array;  (* "var_<x>" token per state-layout position;
                                DYPRO consumes names alongside values (§6.1) *)
}

(** Encoding configuration: caps applied when interning. *)
type enc_config = {
  max_paths : int;     (* symbolic traces kept per method (full setting) *)
  max_concrete : int;  (* concrete traces kept per path (full setting) *)
  max_steps : int;     (* blended-trace truncation *)
  trace_cfg : Encode.config;
}

let default_enc_config =
  { max_paths = 6; max_concrete = 4; max_steps = 24; trace_cfg = Encode.default_config }

(* Atomic: examples are encoded in parallel.  Pipelines that need
   jobs-independent uids reassign them sequentially after the parallel
   encode (see [Pipeline.assemble]). *)
let uid_counter = Atomic.make 0

let fresh_uid () = Atomic.fetch_and_add uid_counter 1 + 1

(** Reset the uid counter.  Only for tests and benchmarks that rebuild a
    corpus from the same seed and compare byte-for-byte; uids are
    memoization keys scoped to a model's lifetime, so never reset while any
    model trained on previously encoded examples is still in use. *)
let reset_uids () = Atomic.set uid_counter 0

let memo_key_of (step : Blended.step) =
  (step.Blended.stmt.Ast.sid * 2)
  + (match step.Blended.branch with Some true -> 1 | _ -> 0)

(** Intern one blended trace.  [keep] filters state columns (the slicing
    flag of [cfg.trace_cfg] decides what the caller passes). *)
let encode_trace ?(keep = fun _ -> true) cfg vocab (b : Blended.t) : enc_trace =
  let b = Blended.truncate cfg.max_steps (Blended.limit_concrete cfg.max_concrete b) in
  let steps =
    List.map
      (fun (step : Blended.step) ->
        let tree =
          intern_tree vocab
            (Encode.stmt_tree ?branch:step.Blended.branch step.Blended.stmt)
        in
        let var_tokens =
          Array.map
            (fun env ->
              Array.of_list
                (List.map
                   (fun (_, toks) ->
                     Array.of_list (List.map (Vocab.lookup vocab) toks))
                   (Encode.state_tokens ~keep cfg.trace_cfg env)))
            step.Blended.states
        in
        { tree; memo_key = memo_key_of step; var_tokens })
      b.Blended.steps
  in
  {
    steps = Array.of_list steps;
    n_concrete = b.Blended.n_concrete;
    n_lines = List.length b.Blended.lines;
  }

(** Intern one labeled method with its blended traces.  Traces are put in
    {!Mincover.reduction_order} so that taking a prefix preserves line
    coverage — the selection the symbolic-reduction experiments make. *)
let encode_example cfg vocab meth (blended : Blended.t list) label : enc_example =
  Liger_obs.Obs.Span.with_ ~name:"encode.example"
    ~args:(fun () -> [ ("method", meth.Ast.mname) ])
  @@ fun () ->
  Liger_obs.Metrics.incr "encode.examples";
  let ordered = Mincover.reduction_order blended in
  let chosen = List.filteri (fun i _ -> i < cfg.max_paths) ordered in
  Liger_obs.Metrics.add "encode.traces" (List.length chosen);
  let target_ids =
    match label with
    | Name name -> List.map (fun t -> Vocab.lookup vocab t) (Subtoken.split name)
    | Class c -> [ c ]
  in
  (* the slice keep-predicate prunes value columns and the name layout in
     lockstep, so var_name_ids.(i) stays aligned with var_tokens.(_).(i) *)
  let keep = Encode.slice_keep cfg.trace_cfg meth in
  let var_name_ids =
    Array.of_list
      (List.filter_map
         (fun x -> if keep x then Some (Vocab.lookup vocab ("var_" ^ x)) else None)
         (Ast.declared_vars meth))
  in
  {
    uid = fresh_uid ();
    meth;
    traces = Array.of_list (List.map (encode_trace ~keep cfg vocab) chosen);
    label;
    target_ids;
    var_name_ids;
  }

(** Register every token of [blended] (and the name's sub-tokens) into a
    building vocabulary; call over the training split before freezing. *)
let register_example cfg vocab (blended : Blended.t list) label =
  List.iter (Encode.register_blended cfg.trace_cfg vocab) blended;
  match label with
  | Name name -> List.iter (fun t -> ignore (Vocab.id vocab t)) (Subtoken.split name)
  | Class _ -> ()

(* ---------------- run-time trace selection ---------------- *)

(** A view selecting how much of an encoded example a model may see: the
    down-sampling experiments shrink these two knobs. *)
type view = { n_paths : int; n_concrete : int }

let full_view = { n_paths = max_int; n_concrete = max_int }

let select_traces view (ex : enc_example) =
  let n = min (Array.length ex.traces) (max 1 view.n_paths) in
  Array.sub ex.traces 0 n

let select_concrete view (tr : enc_trace) = min tr.n_concrete (max 1 view.n_concrete)

(** Total concrete executions a view exposes for an example (Figures 6/7's
    x-axis bookkeeping). *)
let executions_in_view view ex =
  Array.fold_left
    (fun acc tr -> acc + select_concrete view tr)
    0 (select_traces view ex)
