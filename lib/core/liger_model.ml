(** LiGer: the blended neural program-embedding model (§5).

    The encoder follows Figure 5 layer by layer:

    - {e Vocabulary embedding}: one table over D_s ∪ D_d ({!Embedding_layer}).
    - {e Fusion}: per blended-trace step, a TreeLSTM embeds the statement
      (static dimension), RNN f1 embeds each composite variable value and
      RNN f2 each program state (dynamic dimension); attention a1 —
      conditioned on the running trace embedding H^e_{i,j-1} — fuses the
      feature vectors into one step embedding h_{i,j}.  The first step uses
      even weights, as in the paper.
    - {e Executions embedding}: RNN f3 folds the step embeddings into
      H^e_{i,j}; the final state represents the whole blended trace.
    - {e Programs embedding}: max-pooling over all blended traces yields
      H_P.

    For method-name prediction a decoder attends over the flow of all
    blended traces ({!Liger_nn.Decoder}); for semantics classification the
    decoder is replaced by a linear layer + softmax (§6.2).

    The ablation switches of §6.3 are first-class: [use_static = false]
    removes the statement component, [use_dynamic = false] gives statements
    the full fusion weight, and [use_attention = false] distributes fusion
    weights evenly. *)

open Liger_tensor
open Liger_trace
open Liger_nn

type task = Naming | Classify of int

type config = {
  dim : int;                 (* hidden size = embedding size *)
  use_static : bool;
  use_dynamic : bool;
  use_attention : bool;
  state_cell : Rnn_cell.kind;  (* f1/f2; vanilla, as in the paper *)
  trace_cell : Rnn_cell.kind;  (* f3; GRU by default for trainability *)
}

let default_config =
  {
    dim = 16;
    use_static = true;
    use_dynamic = true;
    use_attention = true;
    state_cell = Rnn_cell.Vanilla;
    trace_cell = Rnn_cell.Gru;
  }

type t = {
  config : config;
  task : task;
  store : Param.store;
  vocab : Vocab.t;
  embedding : Embedding_layer.t;
  treelstm : Treelstm.t option;
  f1 : Rnn_cell.t option;
  f2 : Rnn_cell.t option;
  fusion : Attention.t option;
  f3 : Rnn_cell.t;
  decoder : Decoder.t option;
  classifier : Linear.t option;
}

let create ?(config = default_config) ?(seed = 7) vocab task =
  if not (config.use_static || config.use_dynamic) then
    invalid_arg "Liger_model.create: at least one feature dimension required";
  let store = Param.create_store ~seed () in
  let d = config.dim in
  let embedding = Embedding_layer.create store "vocab" vocab ~dim:d in
  let treelstm =
    if config.use_static then Some (Treelstm.create store "sta" ~dim_in:d ~dim_hidden:d)
    else None
  in
  let f1 =
    if config.use_dynamic then
      Some (Rnn_cell.create ~kind:config.state_cell store "f1" ~dim_in:d ~dim_hidden:d)
    else None
  in
  let f2 =
    if config.use_dynamic then
      Some (Rnn_cell.create ~kind:config.state_cell store "f2" ~dim_in:d ~dim_hidden:d)
    else None
  in
  let fusion =
    if config.use_attention && config.use_static && config.use_dynamic then
      Some (Attention.create store "a1" ~dim_h:d ~dim_q:d ~dim_att:d)
    else None
  in
  let f3 = Rnn_cell.create ~kind:config.trace_cell store "f3" ~dim_in:d ~dim_hidden:d in
  let decoder, classifier =
    match task with
    | Naming -> (Some (Decoder.create store "dec" embedding ~dim_hidden:d ~dim_mem:d), None)
    | Classify n -> (None, Some (Linear.create store "cls" ~dim_in:d ~dim_out:n))
  in
  { config; task; store; vocab; embedding; treelstm; f1; f2; fusion; f3; decoder; classifier }

let store t = t.store
let num_params t = Param.num_params t.store

(* TreeLSTM over an interned tree. *)
let rec itree_state t tape (tree : Common.itree) =
  let cell = Option.get t.treelstm in
  match tree with
  | Common.ILeaf id -> Treelstm.node_state cell tape (Embedding_layer.embed_id t.embedding tape id) []
  | Common.INode (id, children) ->
      Treelstm.node_state cell tape
        (Embedding_layer.embed_id t.embedding tape id)
        (List.map (itree_state t tape) children)

(* Embedding of one variable's value: a single token embeds directly
   (primitive types), composites run through f1 (Equation 3). *)
let embed_variable t tape (tokens : int array) =
  if Array.length tokens = 1 then Embedding_layer.embed_id t.embedding tape tokens.(0)
  else
    let f1 = Option.get t.f1 in
    Rnn_cell.last f1 tape
      (List.map (Embedding_layer.embed_id t.embedding tape) (Array.to_list tokens))

(* Embedding of one program state: f2 over the fixed-order variables. *)
let embed_state t tape (vars : int array array) =
  let f2 = Option.get t.f2 in
  Rnn_cell.last f2 tape (List.map (embed_variable t tape) (Array.to_list vars))

(** Per-encode diagnostics: average fusion attention allocated to the static
    feature vector (§6.1.2 reports ~0.598). *)
type stats = { mutable static_weight_sum : float; mutable fused_steps : int }

let mean_static_weight s =
  if s.fused_steps = 0 then Float.nan
  else s.static_weight_sum /. float_of_int s.fused_steps

(* Encode one blended trace; returns (per-step H^e_{i,j} list, final H^e_i). *)
let encode_trace t tape ~view ~tree_memo ~stats (tr : Common.enc_trace) =
  let n_concrete = Common.select_concrete view tr in
  let h_trace = ref (Rnn_cell.init_state t.f3 tape) in
  let mem = ref [] in
  Array.iteri
    (fun j (step : Common.enc_step) ->
      let static_vec =
        if t.config.use_static then
          Some
            (match Hashtbl.find_opt tree_memo step.Common.memo_key with
            | Some h -> h
            | None ->
                let h = fst (itree_state t tape step.Common.tree) in
                Hashtbl.add tree_memo step.Common.memo_key h;
                h)
        else None
      in
      let dyn_vecs =
        if t.config.use_dynamic then
          List.init n_concrete (fun k -> embed_state t tape step.Common.var_tokens.(k))
        else []
      in
      let candidates =
        Array.of_list (Option.to_list static_vec @ dyn_vecs)
      in
      let h_j =
        if Array.length candidates = 1 then candidates.(0)
        else
          match t.fusion with
          | Some att when j > 0 && t.config.use_attention ->
              let w, fused = Attention.fuse att tape ~q:!h_trace candidates in
              if t.config.use_static then begin
                stats.static_weight_sum <- stats.static_weight_sum +. (Autodiff.value w).(0);
                stats.fused_steps <- stats.fused_steps + 1
              end;
              fused
          | _ -> snd (Attention.fuse_uniform tape candidates)
      in
      h_trace := Rnn_cell.step t.f3 tape ~h:!h_trace ~x:h_j;
      mem := !h_trace :: !mem)
    tr.Common.steps;
  (List.rev !mem, !h_trace)

(** Encode a whole program under a view; returns the program embedding H_P,
    the decoder memory {H^e_{i,j}} and fusion statistics. *)
let encode t tape ?(view = Common.full_view) (ex : Common.enc_example) =
  let stats = { static_weight_sum = 0.0; fused_steps = 0 } in
  let tree_memo = Hashtbl.create 32 in
  let traces = Common.select_traces view ex in
  let mems, finals =
    Array.fold_left
      (fun (mems, finals) tr ->
        let mem, final = encode_trace t tape ~view ~tree_memo ~stats tr in
        (mem :: mems, final :: finals))
      ([], []) traces
  in
  let finals = Array.of_list (List.rev finals) in
  let program_embedding =
    if Array.length finals = 0 then Autodiff.const tape (Array.make t.config.dim 0.0)
    else Autodiff.max_pool tape finals
  in
  let memory = Array.of_list (List.concat (List.rev mems)) in
  (program_embedding, memory, stats)

(** Training loss of one example (teacher-forced NLL for naming,
    cross-entropy for classification). *)
let loss t tape ?view (ex : Common.enc_example) =
  let program_embedding, memory, stats = encode t tape ?view ex in
  let l =
    match (t.task, t.decoder, t.classifier) with
    | Naming, Some dec, _ ->
        Decoder.loss dec tape ~memory ~program_embedding ~target_ids:ex.Common.target_ids
    | Classify _, _, Some cls -> (
        let logits = Linear.forward cls tape program_embedding in
        match ex.Common.target_ids with
        | [ c ] -> fst (Autodiff.softmax_cross_entropy tape logits c)
        | _ -> invalid_arg "Liger_model.loss: classification target must be one class")
    | _ -> invalid_arg "Liger_model.loss: task/head mismatch"
  in
  (l, stats)

(** Predict sub-token ids (naming) — greedy decoding. *)
let predict_name_ids t tape ?view (ex : Common.enc_example) =
  match t.decoder with
  | None -> invalid_arg "Liger_model.predict_name_ids: not a naming model"
  | Some dec ->
      let program_embedding, memory, _ = encode t tape ?view ex in
      Decoder.decode dec tape ~memory ~program_embedding

(** Predict sub-tokens as strings. *)
let predict_name t tape ?view ex =
  List.map (Vocab.name t.vocab) (predict_name_ids t tape ?view ex)

(** Predict a class id (classification). *)
let predict_class t tape ?view (ex : Common.enc_example) =
  match t.classifier with
  | None -> invalid_arg "Liger_model.predict_class: not a classification model"
  | Some cls ->
      let program_embedding, _, _ = encode t tape ?view ex in
      let logits = Linear.forward cls tape program_embedding in
      Tensor.argmax (Autodiff.value logits)

(** The program embedding vector itself (for downstream use / examples). *)
let embed_program t ?view (ex : Common.enc_example) =
  let tape = Autodiff.tape () in
  let program_embedding, _, _ = encode t tape ?view ex in
  let v = Array.copy (Autodiff.value program_embedding) in
  Autodiff.discard tape;
  v

(** Frozen per-statement embeddings for the probing readouts
    ({!Liger_eval.Probe}): for each statement id, the mean of every step
    embedding H^e_{i,j} whose blended-trace step executes that statement,
    over all traces the view exposes.  Returns [(sid, vector)] pairs in
    statement-id order. *)
let statement_embeddings t ?(view = Common.full_view) (ex : Common.enc_example) =
  let tape = Autodiff.tape () in
  let stats = { static_weight_sum = 0.0; fused_steps = 0 } in
  let tree_memo = Hashtbl.create 32 in
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun (tr : Common.enc_trace) ->
      let mem, _ = encode_trace t tape ~view ~tree_memo ~stats tr in
      List.iteri
        (fun j h ->
          let sid = tr.Common.steps.(j).Common.memo_key lsr 1 in
          let v = Autodiff.value h in
          match Hashtbl.find_opt tbl sid with
          | Some (sum, n) ->
              Array.iteri (fun i x -> sum.(i) <- sum.(i) +. x) v;
              Hashtbl.replace tbl sid (sum, n + 1)
          | None -> Hashtbl.add tbl sid (Array.copy v, 1))
        mem)
    (Common.select_traces view ex);
  Autodiff.discard tape;
  Hashtbl.fold
    (fun sid (sum, n) acc ->
      (sid, Array.map (fun x -> x /. float_of_int n) sum) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
