(** LiGer: the blended neural program-embedding model (§5).

    The encoder follows Figure 5 layer by layer:

    - {e Vocabulary embedding}: one table over D_s ∪ D_d ({!Embedding_layer}).
    - {e Fusion}: per blended-trace step, a TreeLSTM embeds the statement
      (static dimension), RNN f1 embeds each composite variable value and
      RNN f2 each program state (dynamic dimension); attention a1 —
      conditioned on the running trace embedding H^e_{i,j-1} — fuses the
      feature vectors into one step embedding h_{i,j}.  The first step uses
      even weights, as in the paper.
    - {e Executions embedding}: RNN f3 folds the step embeddings into
      H^e_{i,j}; the final state represents the whole blended trace.
    - {e Programs embedding}: max-pooling over all blended traces yields
      H_P.

    For method-name prediction a decoder attends over the flow of all
    blended traces ({!Liger_nn.Decoder}); for semantics classification the
    decoder is replaced by a linear layer + softmax (§6.2).

    The ablation switches of §6.3 are first-class: [use_static = false]
    removes the statement component, [use_dynamic = false] gives statements
    the full fusion weight, and [use_attention = false] distributes fusion
    weights evenly. *)

open Liger_tensor
open Liger_trace
open Liger_nn

type task = Naming | Classify of int

type config = {
  dim : int;                 (* hidden size = embedding size *)
  use_static : bool;
  use_dynamic : bool;
  use_attention : bool;
  state_cell : Rnn_cell.kind;  (* f1/f2; vanilla, as in the paper *)
  trace_cell : Rnn_cell.kind;  (* f3; GRU by default for trainability *)
}

let default_config =
  {
    dim = 16;
    use_static = true;
    use_dynamic = true;
    use_attention = true;
    state_cell = Rnn_cell.Vanilla;
    trace_cell = Rnn_cell.Gru;
  }

type t = {
  config : config;
  task : task;
  store : Param.store;
  vocab : Vocab.t;
  embedding : Embedding_layer.t;
  treelstm : Treelstm.t option;
  f1 : Rnn_cell.t option;
  f2 : Rnn_cell.t option;
  fusion : Attention.t option;
  f3 : Rnn_cell.t;
  decoder : Decoder.t option;
  classifier : Linear.t option;
}

let create ?(config = default_config) ?(seed = 7) vocab task =
  if not (config.use_static || config.use_dynamic) then
    invalid_arg "Liger_model.create: at least one feature dimension required";
  let store = Param.create_store ~seed () in
  let d = config.dim in
  let embedding = Embedding_layer.create store "vocab" vocab ~dim:d in
  let treelstm =
    if config.use_static then Some (Treelstm.create store "sta" ~dim_in:d ~dim_hidden:d)
    else None
  in
  let f1 =
    if config.use_dynamic then
      Some (Rnn_cell.create ~kind:config.state_cell store "f1" ~dim_in:d ~dim_hidden:d)
    else None
  in
  let f2 =
    if config.use_dynamic then
      Some (Rnn_cell.create ~kind:config.state_cell store "f2" ~dim_in:d ~dim_hidden:d)
    else None
  in
  let fusion =
    if config.use_attention && config.use_static && config.use_dynamic then
      Some (Attention.create store "a1" ~dim_h:d ~dim_q:d ~dim_att:d)
    else None
  in
  let f3 = Rnn_cell.create ~kind:config.trace_cell store "f3" ~dim_in:d ~dim_hidden:d in
  let decoder, classifier =
    match task with
    | Naming -> (Some (Decoder.create store "dec" embedding ~dim_hidden:d ~dim_mem:d), None)
    | Classify n -> (None, Some (Linear.create store "cls" ~dim_in:d ~dim_out:n))
  in
  { config; task; store; vocab; embedding; treelstm; f1; f2; fusion; f3; decoder; classifier }

let store t = t.store
let vocab t = t.vocab
let num_params t = Param.num_params t.store

(* TreeLSTM over an interned tree. *)
let rec itree_state t tape (tree : Common.itree) =
  let cell = Option.get t.treelstm in
  match tree with
  | Common.ILeaf id -> Treelstm.node_state cell tape (Embedding_layer.embed_id t.embedding tape id) []
  | Common.INode (id, children) ->
      Treelstm.node_state cell tape
        (Embedding_layer.embed_id t.embedding tape id)
        (List.map (itree_state t tape) children)

(* Embedding of one variable's value: a single token embeds directly
   (primitive types), composites run through f1 (Equation 3). *)
let embed_variable t tape (tokens : int array) =
  if Array.length tokens = 1 then Embedding_layer.embed_id t.embedding tape tokens.(0)
  else
    let f1 = Option.get t.f1 in
    Rnn_cell.last f1 tape
      (List.map (Embedding_layer.embed_id t.embedding tape) (Array.to_list tokens))

(* Embedding of one program state: f2 over the fixed-order variables. *)
let embed_state t tape (vars : int array array) =
  let f2 = Option.get t.f2 in
  Rnn_cell.last f2 tape (List.map (embed_variable t tape) (Array.to_list vars))

(** Per-encode diagnostics: average fusion attention allocated to the static
    feature vector (§6.1.2 reports ~0.598). *)
type stats = { mutable static_weight_sum : float; mutable fused_steps : int }

let mean_static_weight s =
  if s.fused_steps = 0 then Float.nan
  else s.static_weight_sum /. float_of_int s.fused_steps

(* Encode one blended trace; returns (per-step H^e_{i,j} list, final H^e_i). *)
let encode_trace t tape ~view ~tree_memo ~stats (tr : Common.enc_trace) =
  let n_concrete = Common.select_concrete view tr in
  let h_trace = ref (Rnn_cell.init_state t.f3 tape) in
  let mem = ref [] in
  Array.iteri
    (fun j (step : Common.enc_step) ->
      let static_vec =
        if t.config.use_static then
          Some
            (match Hashtbl.find_opt tree_memo step.Common.memo_key with
            | Some h -> h
            | None ->
                let h = fst (itree_state t tape step.Common.tree) in
                Hashtbl.add tree_memo step.Common.memo_key h;
                h)
        else None
      in
      let dyn_vecs =
        if t.config.use_dynamic then
          List.init n_concrete (fun k -> embed_state t tape step.Common.var_tokens.(k))
        else []
      in
      let candidates =
        Array.of_list (Option.to_list static_vec @ dyn_vecs)
      in
      let h_j =
        if Array.length candidates = 1 then candidates.(0)
        else
          match t.fusion with
          | Some att when j > 0 && t.config.use_attention ->
              let w, fused = Attention.fuse att tape ~q:!h_trace candidates in
              if t.config.use_static then begin
                stats.static_weight_sum <- stats.static_weight_sum +. (Autodiff.value w).(0);
                stats.fused_steps <- stats.fused_steps + 1
              end;
              fused
          | _ -> snd (Attention.fuse_uniform tape candidates)
      in
      h_trace := Rnn_cell.step t.f3 tape ~h:!h_trace ~x:h_j;
      mem := !h_trace :: !mem)
    tr.Common.steps;
  (List.rev !mem, !h_trace)

(** Encode a whole program under a view; returns the program embedding H_P,
    the decoder memory {H^e_{i,j}} and fusion statistics. *)
let encode t tape ?(view = Common.full_view) (ex : Common.enc_example) =
  let stats = { static_weight_sum = 0.0; fused_steps = 0 } in
  let tree_memo = Hashtbl.create 32 in
  let traces = Common.select_traces view ex in
  let mems, finals =
    Array.fold_left
      (fun (mems, finals) tr ->
        let mem, final = encode_trace t tape ~view ~tree_memo ~stats tr in
        (mem :: mems, final :: finals))
      ([], []) traces
  in
  let finals = Array.of_list (List.rev finals) in
  let program_embedding =
    if Array.length finals = 0 then Autodiff.const tape (Array.make t.config.dim 0.0)
    else Autodiff.max_pool tape finals
  in
  let memory = Array.of_list (List.concat (List.rev mems)) in
  (program_embedding, memory, stats)

(** Training loss of one example (teacher-forced NLL for naming,
    cross-entropy for classification). *)
let loss t tape ?view (ex : Common.enc_example) =
  let program_embedding, memory, stats = encode t tape ?view ex in
  let l =
    match (t.task, t.decoder, t.classifier) with
    | Naming, Some dec, _ ->
        Decoder.loss dec tape ~memory ~program_embedding ~target_ids:ex.Common.target_ids
    | Classify _, _, Some cls -> (
        let logits = Linear.forward cls tape program_embedding in
        match ex.Common.target_ids with
        | [ c ] -> fst (Autodiff.softmax_cross_entropy tape logits c)
        | _ -> invalid_arg "Liger_model.loss: classification target must be one class")
    | _ -> invalid_arg "Liger_model.loss: task/head mismatch"
  in
  (l, stats)

(** Predict sub-token ids (naming) — greedy decoding. *)
let predict_name_ids t tape ?view (ex : Common.enc_example) =
  match t.decoder with
  | None -> invalid_arg "Liger_model.predict_name_ids: not a naming model"
  | Some dec ->
      let program_embedding, memory, _ = encode t tape ?view ex in
      Decoder.decode dec tape ~memory ~program_embedding

(** Predict sub-tokens as strings. *)
let predict_name t tape ?view ex =
  List.map (Vocab.name t.vocab) (predict_name_ids t tape ?view ex)

(** Predict a class id (classification). *)
let predict_class t tape ?view (ex : Common.enc_example) =
  match t.classifier with
  | None -> invalid_arg "Liger_model.predict_class: not a classification model"
  | Some cls ->
      let program_embedding, _, _ = encode t tape ?view ex in
      let logits = Linear.forward cls tape program_embedding in
      Tensor.argmax (Autodiff.value logits)

(** The program embedding vector itself (for downstream use / examples). *)
let embed_program t ?view (ex : Common.enc_example) =
  let tape = Autodiff.tape () in
  let program_embedding, _, _ = encode t tape ?view ex in
  let v = Array.copy (Autodiff.value program_embedding) in
  Autodiff.discard tape;
  v

(** Frozen per-statement embeddings for the probing readouts
    ({!Liger_eval.Probe}): for each statement id, the mean of every step
    embedding H^e_{i,j} whose blended-trace step executes that statement,
    over all traces the view exposes.  Returns [(sid, vector)] pairs in
    statement-id order. *)
let statement_embeddings t ?(view = Common.full_view) (ex : Common.enc_example) =
  let tape = Autodiff.tape () in
  let stats = { static_weight_sum = 0.0; fused_steps = 0 } in
  let tree_memo = Hashtbl.create 32 in
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun (tr : Common.enc_trace) ->
      let mem, _ = encode_trace t tape ~view ~tree_memo ~stats tr in
      List.iteri
        (fun j h ->
          let sid = tr.Common.steps.(j).Common.memo_key lsr 1 in
          let v = Autodiff.value h in
          match Hashtbl.find_opt tbl sid with
          | Some (sum, n) ->
              Array.iteri (fun i x -> sum.(i) <- sum.(i) +. x) v;
              Hashtbl.replace tbl sid (sum, n + 1)
          | None -> Hashtbl.add tbl sid (Array.copy v, 1))
        mem)
    (Common.select_traces view ex);
  Autodiff.discard tape;
  Hashtbl.fold
    (fun sid (sum, n) acc ->
      (sid, Array.map (fun x -> x /. float_of_int n) sum) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ===== Batched encoding (flat Bigarray engine; see DESIGN.md) =====

   One batched tape encodes a whole mini-batch: trace lanes across all
   examples run fusion + f3 in lockstep with length-masked padding,
   statement trees are deduplicated batch-wide by [memo_key] and embedded
   as one level-packed forest, and f1/f2 pack every composite variable /
   program state in the batch into single padded recurrences.  Padded
   lanes/steps/slots carry exactly zero gradient (masked updates,
   weight-0 losses), so results match the per-example path. *)

type batch_encoding = {
  benc_prog : Batched.node;          (* G × d program embeddings *)
  benc_mem : Batched.node array;     (* maxM nodes of G × d: decoder memory slots *)
  benc_mem_mask : Tensor.t;          (* G × maxM slot validity *)
}

(* Post-order flatten a deduplicated batch of interned trees: children
   always get smaller indices than their parent. *)
let flatten_itrees (trees : Common.itree array) =
  let labels_rev = ref [] and children_rev = ref [] in
  let count = ref 0 in
  let rec go tree =
    let id, sub =
      match tree with
      | Common.ILeaf id -> (id, [])
      | Common.INode (id, cs) -> (id, cs)
    in
    let cidx = List.map go sub in
    let idx = !count in
    incr count;
    labels_rev := id :: !labels_rev;
    children_rev := cidx :: !children_rev;
    idx
  in
  let roots = Array.map go trees in
  (Array.of_list (List.rev !labels_rev), Array.of_list (List.rev !children_rev), roots)

let encode_batch t btape ~view ~stats (exs : Common.enc_example array) =
  let d = t.config.dim in
  let g_n = Array.length exs in
  if g_n = 0 then invalid_arg "Liger_model.encode_batch: empty batch";
  (* Trace lanes, grouped by example in order (= unbatched memory order). *)
  let lane_ex_rev = ref [] and lane_tr_rev = ref [] in
  Array.iteri
    (fun g ex ->
      Array.iter
        (fun tr ->
          lane_ex_rev := g :: !lane_ex_rev;
          lane_tr_rev := tr :: !lane_tr_rev)
        (Common.select_traces view ex))
    exs;
  let lane_ex = Array.of_list (List.rev !lane_ex_rev) in
  let lane_tr = Array.of_list (List.rev !lane_tr_rev) in
  let l_n = Array.length lane_tr in
  if l_n = 0 then
    {
      benc_prog = Batched.zeros btape ~rows:g_n ~cols:d;
      benc_mem = [| Batched.zeros btape ~rows:g_n ~cols:d |];
      benc_mem_mask = Tensor.zeros g_n 1;
    }
  else begin
    let n_steps =
      Array.map (fun (tr : Common.enc_trace) -> Array.length tr.Common.steps) lane_tr
    in
    let max_s = Array.fold_left Stdlib.max 0 n_steps in
    let n_conc =
      Array.map
        (fun tr -> if t.config.use_dynamic then Common.select_concrete view tr else 0)
        lane_tr
    in
    let max_c = Array.fold_left Stdlib.max 0 n_conc in
    (* --- static: batch-wide tree dedup + one level-packed forest --- *)
    let tree_roots, tree_of =
      if (not t.config.use_static) || max_s = 0 then (None, [||])
      else begin
        let memo = Hashtbl.create 64 in
        let trees_rev = ref [] and n_trees = ref 0 in
        let tree_of =
          Array.init l_n (fun l ->
              Array.map
                (fun (step : Common.enc_step) ->
                  match Hashtbl.find_opt memo step.Common.memo_key with
                  | Some i -> i
                  | None ->
                      let i = !n_trees in
                      incr n_trees;
                      Hashtbl.add memo step.Common.memo_key i;
                      trees_rev := step.Common.tree :: !trees_rev;
                      i)
                lane_tr.(l).Common.steps)
        in
        let trees = Array.of_list (List.rev !trees_rev) in
        let labels, children, roots = flatten_itrees trees in
        let embed ids = Embedding_layer.embed_ids t.embedding btape ids in
        let roots_node =
          Treelstm.embed_forest_flat (Option.get t.treelstm) btape ~embed ~labels
            ~children ~roots
        in
        (Some roots_node, tree_of)
      end
    in
    (* --- dynamic: pack every distinct program state / composite variable.
       States are deduplicated batch-wide by content (consecutive steps and
       sibling executions repeat most variable values); identical states
       share one f2 lane and their gradients sum through the gather, which
       is the per-state sum up to float reassociation. --- *)
    let state_memo : (int array array, int) Hashtbl.t = Hashtbl.create 256 in
    let state_vars_rev = ref [] and n_states = ref 0 in
    let state_idx =
      Array.init l_n (fun l ->
          Array.init n_steps.(l) (fun j ->
              Array.init n_conc.(l) (fun k ->
                  let vt = lane_tr.(l).Common.steps.(j).Common.var_tokens.(k) in
                  match Hashtbl.find_opt state_memo vt with
                  | Some s -> s
                  | None ->
                      let s = !n_states in
                      incr n_states;
                      Hashtbl.add state_memo vt s;
                      state_vars_rev := vt :: !state_vars_rev;
                      s)))
    in
    let state_vars = Array.of_list (List.rev !state_vars_rev) in
    let s_n = !n_states in
    let state_vecs =
      if (not t.config.use_dynamic) || s_n = 0 then None
      else begin
        let f1 = Option.get t.f1 and f2 = Option.get t.f2 in
        (* variable slots: singletons embed directly, composites run f1;
           both deduplicated by content like the states above *)
        let comp_memo : (int array, int) Hashtbl.t = Hashtbl.create 256 in
        let sing_memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
        let f1_tokens_rev = ref [] and f1_n = ref 0 in
        let sing_rev = ref [] and sing_n = ref 0 in
        let var_rows =
          Array.map
            (fun (vars : int array array) ->
              Array.map
                (fun (tokens : int array) ->
                  if Array.length tokens = 1 then
                    match Hashtbl.find_opt sing_memo tokens.(0) with
                    | Some q -> (true, q)
                    | None ->
                        let q = !sing_n in
                        incr sing_n;
                        Hashtbl.add sing_memo tokens.(0) q;
                        sing_rev := tokens.(0) :: !sing_rev;
                        (true, q)
                  else
                    match Hashtbl.find_opt comp_memo tokens with
                    | Some f -> (false, f)
                    | None ->
                        let f = !f1_n in
                        incr f1_n;
                        Hashtbl.add comp_memo tokens f;
                        f1_tokens_rev := tokens :: !f1_tokens_rev;
                        (false, f))
                vars)
            state_vars
        in
        let f1_tokens = Array.of_list (List.rev !f1_tokens_rev) in
        let sing_ids = Array.of_list (List.rev !sing_rev) in
        let f1_final =
          if !f1_n = 0 then None
          else begin
            let max_t =
              Array.fold_left (fun acc a -> Stdlib.max acc (Array.length a)) 0 f1_tokens
            in
            let steps =
              List.init max_t (fun ti ->
                  let ids =
                    Array.map
                      (fun a -> if ti < Array.length a then a.(ti) else 0)
                      f1_tokens
                  in
                  let mask =
                    Array.map
                      (fun a -> if ti < Array.length a then 1.0 else 0.0)
                      f1_tokens
                  in
                  (Embedding_layer.embed_ids t.embedding btape ids, Some mask))
            in
            Some (Rnn_cell.last_batch f1 btape ~lanes:!f1_n steps)
          end
        in
        let sing =
          if !sing_n = 0 then None
          else Some (Embedding_layer.embed_ids t.embedding btape sing_ids)
        in
        let var_src, sing_off =
          match (f1_final, sing) with
          | Some f, Some s -> (Some (Batched.vstack btape [ f; s ]), !f1_n)
          | Some f, None -> (Some f, 0)
          | None, Some s -> (Some s, 0)
          | None, None -> (None, 0)
        in
        (* f2 over padded per-state variable sequences (fixed order) *)
        let vecs =
          match var_src with
          | None -> Rnn_cell.init_state_batch f2 btape ~lanes:s_n
          | Some src ->
              let max_v =
                Array.fold_left (fun acc v -> Stdlib.max acc (Array.length v)) 0 state_vars
              in
              let steps =
                List.init max_v (fun v ->
                    let idx =
                      Array.map
                        (fun rows ->
                          if v < Array.length rows then
                            match rows.(v) with
                            | true, i -> sing_off + i
                            | false, i -> i
                          else 0)
                        var_rows
                    in
                    let mask =
                      Array.map
                        (fun rows -> if v < Array.length rows then 1.0 else 0.0)
                        var_rows
                    in
                    (Batched.gather_rows btape src idx, Some mask))
              in
              Rnn_cell.last_batch f2 btape ~lanes:s_n steps
        in
        Some vecs
      end
    in
    (* --- fusion + trace recurrence f3, trace lanes in lockstep --- *)
    let k_static = if t.config.use_static && max_s > 0 then 1 else 0 in
    let k_dynamic = if state_vecs = None then 0 else max_c in
    let k_total = k_static + k_dynamic in
    let h_trace = ref (Rnn_cell.init_state_batch t.f3 btape ~lanes:l_n) in
    let mem_nodes_rev = ref [] in
    for j = 0 to max_s - 1 do
      let step_valid l = j < n_steps.(l) in
      let step_mask = Array.init l_n (fun l -> if step_valid l then 1.0 else 0.0) in
      let cands_rev = ref [] and valid_rev = ref [] in
      if k_static = 1 then begin
        let idx = Array.init l_n (fun l -> if step_valid l then tree_of.(l).(j) else 0) in
        cands_rev := Batched.gather_rows btape (Option.get tree_roots) idx :: !cands_rev;
        valid_rev := Array.init l_n step_valid :: !valid_rev
      end;
      (match state_vecs with
      | Some sv ->
          for k = 0 to k_dynamic - 1 do
            let ok l = step_valid l && k < n_conc.(l) in
            let idx = Array.init l_n (fun l -> if ok l then state_idx.(l).(j).(k) else 0) in
            cands_rev := Batched.gather_rows btape sv idx :: !cands_rev;
            valid_rev := Array.init l_n ok :: !valid_rev
          done
      | None -> ());
      let cands = Array.of_list (List.rev !cands_rev) in
      let valid = Array.of_list (List.rev !valid_rev) in
      if k_total = 0 then invalid_arg "Liger_model.encode_batch: no feature vectors";
      let cmask = Tensor.zeros l_n k_total in
      Array.iteri
        (fun k col ->
          Array.iteri (fun l ok -> if ok then Tensor.set cmask l k 1.0) col)
        valid;
      let n_valid = Array.make l_n 0 in
      Array.iter
        (fun col -> Array.iteri (fun l ok -> if ok then n_valid.(l) <- n_valid.(l) + 1) col)
        valid;
      let h_j =
        if k_total = 1 then cands.(0)
        else
          match t.fusion with
          | Some att when j > 0 && t.config.use_attention ->
              let w, fused = Attention.fuse_batch att btape ~q:!h_trace ~mask:cmask cands in
              if t.config.use_static then begin
                let wv = Batched.value w in
                for l = 0 to l_n - 1 do
                  if step_valid l && n_valid.(l) > 1 then begin
                    stats.static_weight_sum <-
                      stats.static_weight_sum +. Tensor.get wv l 0;
                    stats.fused_steps <- stats.fused_steps + 1
                  end
                done
              end;
              fused
          | _ -> snd (Attention.fuse_uniform_batch btape ~mask:cmask cands)
      in
      h_trace := Rnn_cell.step_batch ~mask:step_mask t.f3 btape ~h:!h_trace ~x:h_j;
      mem_nodes_rev := !h_trace :: !mem_nodes_rev
    done;
    (* program embedding: max over each example's trace finals; an example
       with no traces gets an exactly-zero row (matches the zeros const). *)
    let benc_prog = Batched.group_max btape !h_trace ~groups:lane_ex ~n_groups:g_n in
    (* decoder memory: per example, its lanes' steps in (trace, step) order *)
    let benc_mem, benc_mem_mask =
      match List.rev !mem_nodes_rev with
      | [] -> ([| Batched.zeros btape ~rows:g_n ~cols:d |], Tensor.zeros g_n 1)
      | mem_nodes ->
          let mem_all = Batched.vstack btape mem_nodes in
          (* row of (lane l, step j) in [mem_all] is [j * l_n + l] *)
          let slots_rev = Array.make g_n [] in
          for l = 0 to l_n - 1 do
            for j = 0 to n_steps.(l) - 1 do
              slots_rev.(lane_ex.(l)) <- ((j * l_n) + l) :: slots_rev.(lane_ex.(l))
            done
          done;
          let slots = Array.map (fun ls -> Array.of_list (List.rev ls)) slots_rev in
          let max_m =
            Stdlib.max 1
              (Array.fold_left (fun acc a -> Stdlib.max acc (Array.length a)) 0 slots)
          in
          let mask = Tensor.zeros g_n max_m in
          let slot_nodes =
            Array.init max_m (fun m ->
                let idx =
                  Array.init g_n (fun g ->
                      if m < Array.length slots.(g) then begin
                        Tensor.set mask g m 1.0;
                        slots.(g).(m)
                      end
                      else 0)
                in
                Batched.gather_rows btape mem_all idx)
          in
          (slot_nodes, mask)
    in
    { benc_prog; benc_mem; benc_mem_mask }
  end

(** Batched training loss over a mini-batch: per-example losses as a [G×1]
    node on [btape], plus fusion statistics.  Per-lane results match {!loss}
    on each example up to float reassociation. *)
let loss_batch t btape ?(view = Common.full_view) (exs : Common.enc_example array) =
  let stats = { static_weight_sum = 0.0; fused_steps = 0 } in
  let enc = encode_batch t btape ~view ~stats exs in
  let losses =
    match (t.task, t.decoder, t.classifier) with
    | Naming, Some dec, _ ->
        Decoder.loss_batch dec btape ~memory:enc.benc_mem ~memory_mask:enc.benc_mem_mask
          ~program_embedding:enc.benc_prog
          ~target_ids:(Array.map (fun (ex : Common.enc_example) -> ex.Common.target_ids) exs)
    | Classify _, _, Some cls ->
        let logits = Linear.forward_batch cls btape enc.benc_prog in
        let targets =
          Array.map
            (fun (ex : Common.enc_example) ->
              match ex.Common.target_ids with
              | [ c ] -> c
              | _ ->
                  invalid_arg
                    "Liger_model.loss_batch: classification target must be one class")
            exs
        in
        let weights = Array.make (Array.length exs) 1.0 in
        fst (Batched.softmax_xent_rows btape logits ~targets ~weights)
    | _ -> invalid_arg "Liger_model.loss_batch: task/head mismatch"
  in
  (losses, stats)

(** Batched program embeddings: one forward over a [G]-lane batch, one
    vector per example.  This is the serving entry point ([liger serve]):
    the batched forward deduplicates trees/states and gathers exact rows,
    so each lane's vector is bitwise identical whether the example is
    embedded alone or inside a larger batch — the property the request
    coalescer's equality test pins down. *)
let embed_programs t ?(view = Common.full_view) (exs : Common.enc_example array) =
  if Array.length exs = 0 then [||]
  else begin
    let btape = Batched.tape () in
    let stats = { static_weight_sum = 0.0; fused_steps = 0 } in
    let enc = encode_batch t btape ~view ~stats exs in
    let out =
      Array.init (Array.length exs) (fun g -> Array.copy (Batched.row_value enc.benc_prog g))
    in
    Batched.discard btape;
    out
  end

(** Batched greedy naming prediction; one id list per example. *)
let predict_name_ids_batch t ?(view = Common.full_view) (exs : Common.enc_example array) =
  match t.decoder with
  | None -> invalid_arg "Liger_model.predict_name_ids_batch: not a naming model"
  | Some dec ->
      if Array.length exs = 0 then [||]
      else begin
        let btape = Batched.tape () in
        let stats = { static_weight_sum = 0.0; fused_steps = 0 } in
        let enc = encode_batch t btape ~view ~stats exs in
        let out =
          Decoder.decode_batch dec btape ~memory:enc.benc_mem
            ~memory_mask:enc.benc_mem_mask ~program_embedding:enc.benc_prog
        in
        Batched.discard btape;
        out
      end

(** Batched class prediction; one class id per example. *)
let predict_class_batch t ?(view = Common.full_view) (exs : Common.enc_example array) =
  match t.classifier with
  | None -> invalid_arg "Liger_model.predict_class_batch: not a classification model"
  | Some cls ->
      if Array.length exs = 0 then [||]
      else begin
        let btape = Batched.tape () in
        let stats = { static_weight_sum = 0.0; fused_steps = 0 } in
        let enc = encode_batch t btape ~view ~stats exs in
        let logits = Linear.forward_batch cls btape enc.benc_prog in
        let out =
          Array.init (Array.length exs) (fun g -> Tensor.argmax (Batched.row_value logits g))
        in
        Batched.discard btape;
        out
      end
