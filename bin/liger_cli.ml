(* The liger command-line tool.

   Subcommands:
     trace    FILE   - run a MiniJava method on generated inputs and print
                       Figure 2-style execution traces
     analyze  FILE   - static analysis: CFG, dataflow facts, abstract
                       interpretation, dominators, interprocedural summary,
                       lint verdicts and the return-value slice of every method
     probe           - train linear readouts on frozen embeddings against
                       exact per-statement semantic labels
     paths    FILE   - bounded symbolic execution: enumerate paths, solve
                       their conditions, print the discovered inputs
     dataset         - generate a corpus and print Table 1-style statistics
     train           - train a model on a generated corpus and report metrics
     experiments     - run the paper's tables/figures (same as bench/main.exe)
     stats    FILE   - summarize or validate a telemetry file written via
                       --metrics-out/--trace (or the LIGER_*_OUT env vars);
                       --openmetrics renders Prometheus text exposition
     top     [RUN]   - live view of a training run's ledger (throughput, loss,
                       grad norms, pool, GC, bufpool; see --metrics-every)
     serve           - long-running embedding server: POST /embed /search
                       /suggest, GET /healthz /metrics, with request
                       coalescing, an AST-hash LRU cache and backpressure
     index           - build/refresh a content-addressed embedding index for
                       /search (unchanged methods reuse their stored vectors)
     fetch   URL     - tiny loopback HTTP client for scripting against serve
*)

open Cmdliner
open Liger_lang
open Liger_analysis
open Liger_trace
open Liger_tensor
open Liger_testgen
open Liger_symexec
open Liger_core
open Liger_dataset
open Liger_eval
module Obs = Liger_obs.Obs

(* Telemetry flags shared by the long-running subcommands.  The term's
   side-effect configures the registry/tracer before the command body runs;
   explicit flags win over LIGER_METRICS_OUT / LIGER_TRACE_OUT. *)
let obs_term =
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write a metrics snapshot (JSON) to $(docv) on exit.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace_event JSON to $(docv) on exit (open in \
                   chrome://tracing or ui.perfetto.dev).")
  in
  let profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Enable the model profiler: per-op FLOP/byte counters, \
                   per-layer forward/backward timings and tensor-memory peak \
                   (implies metrics; also LIGER_PROFILE=1).  The end-of-run \
                   report gains per-layer and per-op tables.")
  in
  let metrics_every =
    Arg.(value & opt (some float) None
         & info [ "metrics-every" ] ~docv:"SECONDS"
             ~doc:"Append an enriched metrics snapshot to the run ledger \
                   $(i,runs/<run-id>/metrics.jsonl) every $(docv) seconds (also \
                   LIGER_METRICS_EVERY; implies metrics).  Watch it live with \
                   $(b,liger top).")
  in
  let dynamics =
    Arg.(value & flag
         & info [ "dynamics" ]
             ~doc:"Enable the training-dynamics streams: per-layer gradient \
                   norms and update-to-weight ratios, activation saturation, \
                   attention entropy, and embedding drift vs a frozen probe \
                   set (implies metrics; also LIGER_DYNAMICS=1).  Feeds the \
                   ledger, $(b,liger top) and $(b,liger report).")
  in
  let setup metrics_out trace_out metrics_every profile dynamics =
    Obs.init ?metrics_out ?trace_out ?metrics_every ~profile ~dynamics ()
  in
  Term.(const setup $ metrics_out $ trace_out $ metrics_every $ profile $ dynamics)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_method path =
  match Parser.methods_of_string (read_file path) with
  | [ m ] -> m
  | m :: _ ->
      Printf.eprintf "note: %s contains several methods; using '%s'\n" path m.Ast.mname;
      m
  | [] -> failwith "no method found"

(* ---------------- trace ---------------- *)

let trace_cmd =
  let run file n seed =
    let meth = load_method file in
    (match Typecheck.check meth with
    | Ok () -> ()
    | Error e -> failwith (Printf.sprintf "type error at line %d: %s" e.Typecheck.line e.Typecheck.msg));
    let rng = Rng.create seed in
    let result = Feedback.generate rng meth in
    let traces = List.filteri (fun i _ -> i < n) result.Feedback.traces in
    List.iter
      (fun tr ->
        Printf.printf "--- input: %s ---\n%s\n"
          (String.concat ", " (List.map Value.to_display tr.Exec_trace.input))
          (Exec_trace.to_display meth tr))
      traces;
    let blended = Feedback.blended meth result in
    Printf.printf "%d distinct paths over %d executions\n" (List.length blended)
      (Blended.total_executions blended)
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let n = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Number of traces to print.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "trace" ~doc:"Execute a MiniJava method and print execution traces")
    Term.(const run $ file $ n $ seed)

(* ---------------- analyze ---------------- *)

let analyze_method (m : Ast.meth) =
  Printf.printf "== method %s ==\n" m.Ast.mname;
  match Typecheck.check m with
  | Error e ->
      Printf.printf "  does not typecheck (line %d): %s\n" e.Typecheck.line e.Typecheck.msg;
      false
  | Ok () ->
      let cfg = Cfg.build m in
      Printf.printf "-- control-flow graph (%d nodes, %d blocks) --\n%s\n"
        (Cfg.n_nodes cfg) (Array.length cfg.Cfg.blocks)
        (Fmt.str "%a" Cfg.pp cfg);
      let reach = Reaching.analyze ~cfg m in
      Printf.printf "-- reaching definitions at exit --\n  %s\n"
        (Fmt.str "%a" Reaching.pp_fact reach.Reaching.before.(Cfg.exit_));
      let live = Liveness.analyze ~cfg m in
      Printf.printf "-- live at entry (should be the parameters actually read) --\n  %s\n"
        (Fmt.str "%a" Dataflow.pp_varset live.Liveness.live_out.(Cfg.entry));
      let consts = Constprop.analyze ~cfg m in
      Printf.printf "-- constants at exit --\n  %s\n"
        (Fmt.str "%a" Constprop.pp_env consts.Constprop.before.(Cfg.exit_));
      (match Constprop.constant_guards consts with
      | [] -> ()
      | gs ->
          Printf.printf "-- constant branch guards --\n";
          List.iter (fun (sid, b) -> Printf.printf "  #%d always %b\n" sid b) gs);
      let relevant = Slice.relevant_vars ~cfg m in
      let pruned =
        List.filter
          (fun x -> not (Dataflow.VarSet.mem x relevant))
          (Ast.declared_vars m)
      in
      Printf.printf "-- return-value slice --\n  relevant: {%s}\n  prunable: {%s}\n"
        (String.concat ", " (Dataflow.VarSet.elements relevant))
        (String.concat ", " pruned);
      let absint = Absint.analyze ~cfg m in
      Printf.printf "-- abstract interpretation (%d iterations) --\n"
        absint.Absint.iterations;
      Printf.printf "  at exit: %s\n  returns %s\n"
        (Fmt.str "%a" Absint.pp_env absint.Absint.after.(Cfg.exit_))
        (Absint.aval_to_string absint.Absint.ret);
      let dom = Dominator.dominators cfg in
      let always =
        Array.to_list cfg.Cfg.nodes
        |> List.mapi (fun i n -> (i, n))
        |> List.filter_map (fun (i, n) ->
               match n with
               | Cfg.Stmt s when Dominator.dominates dom i Cfg.exit_ ->
                   Some (string_of_int s.Ast.sid)
               | _ -> None)
      in
      Printf.printf "-- dominators --\n  statements on every terminating run: {%s}\n"
        (String.concat ", " always);
      let summary = Summary.summarize m in
      let rendered_summary =
        String.concat "\n  "
          (String.split_on_char '\n' (String.trim (Fmt.str "%a" Summary.pp summary)))
      in
      Printf.printf "-- summary --\n  %s\n" rendered_summary;
      let verdict = Lint.check m in
      let rendered =
        String.concat "\n  "
          (String.split_on_char '\n' (String.trim (Fmt.str "%a" Lint.pp verdict)))
      in
      Printf.printf "-- lint --\n  %s\n" rendered;
      Lint.ok verdict

let analyze_cmd =
  let run file strict =
    let methods = Parser.methods_of_string (read_file file) in
    if methods = [] then failwith "no method found";
    let all_clean = List.fold_left (fun acc m -> analyze_method m && acc) true methods in
    if strict && not all_clean then exit 1
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let strict =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Exit non-zero if any method fails to typecheck or has lint findings.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Print the CFG, dataflow facts, lint verdicts and slice of each method")
    Term.(const run $ file $ strict)

(* ---------------- paths ---------------- *)

let paths_cmd =
  let run file seed =
    let meth = load_method file in
    let shape = Symexec.shape_of_params meth.Ast.params in
    let results = Symexec.explore meth ~shape in
    let rng = Rng.create seed in
    Printf.printf "%d bounded symbolic paths:\n" (List.length results);
    List.iteri
      (fun i (r : Symexec.path_result) ->
        match r.Symexec.outcome with
        | Symexec.Sym_returned v ->
            let solved =
              match Symexec.concretize rng meth ~shape r with
              | Some args ->
                  Printf.sprintf "inputs: %s"
                    (String.concat ", " (List.map Value.to_display args))
              | None -> "condition not solved"
            in
            Printf.printf "  #%d returns %s | pc: %s | %s\n" i (Symval.to_string v)
              (Path.to_string r.Symexec.pc) solved
        | Symexec.Sym_aborted msg -> Printf.printf "  #%d aborted: %s\n" i msg)
      results
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "paths" ~doc:"Enumerate and solve bounded symbolic paths")
    Term.(const run $ file $ seed)

(* ---------------- dataset ---------------- *)

let dataset_cmd =
  let run () n seed coset =
    let rng = Rng.create seed in
    if coset then begin
      let corpus = Pipeline.build_coset rng ~n in
      Fmt.pr "%a@." Stats.pp corpus.Pipeline.stats
    end
    else begin
      let corpus = Pipeline.build_naming rng ~name:"generated" ~n in
      Fmt.pr "%a@." Stats.pp corpus.Pipeline.stats
    end;
    Obs.print_report ()
  in
  let n = Arg.(value & opt int 100 & info [ "n" ] ~doc:"Corpus size to generate.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let coset =
    Arg.(value & flag & info [ "coset" ] ~doc:"Generate the COSET analogue instead.")
  in
  Cmd.v
    (Cmd.info "dataset" ~doc:"Generate a corpus and print its statistics")
    Term.(const run $ obs_term $ n $ seed $ coset)

(* ---------------- model persistence ---------------- *)

(* A saved model directory holds params.txt, vocab.txt and meta (dim). *)
let save_model dir (model : Liger_model.t) vocab =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  Serialize.save_store (Liger_model.store model) (Filename.concat dir "params.txt");
  Vocab.save vocab (Filename.concat dir "vocab.txt");
  let oc = open_out (Filename.concat dir "meta") in
  Printf.fprintf oc "dim %d\n" (Liger_model.store model |> fun _ -> model.Liger_model.config.Liger_model.dim);
  close_out oc

let load_model dir =
  let vocab = Vocab.load (Filename.concat dir "vocab.txt") in
  let ic = open_in (Filename.concat dir "meta") in
  let dim =
    match String.split_on_char ' ' (input_line ic) with
    | [ "dim"; d ] -> int_of_string d
    | _ -> failwith "bad meta file"
  in
  close_in ic;
  let model =
    Liger_model.create
      ~config:{ Liger_model.default_config with Liger_model.dim }
      vocab Liger_model.Naming
  in
  Serialize.load_store (Liger_model.store model) (Filename.concat dir "params.txt");
  (model, vocab)

(* ---------------- train ---------------- *)

let train_cmd =
  let run () model_name n epochs dim seed batch save history_path =
    let rng = Rng.create seed in
    Printf.printf "building corpus (n=%d)...\n%!" n;
    let corpus = Pipeline.build_naming rng ~name:"cli" ~n in
    let n_train, n_valid, n_test = Pipeline.sizes corpus in
    Printf.printf "corpus: %d/%d/%d\n%!" n_train n_valid n_test;
    let task = Liger_model.Naming in
    let wrapper, liger_model =
      match model_name with
      | "liger" ->
          let w, m =
            Zoo.liger
              ~config:{ Liger_model.default_config with Liger_model.dim }
              ~vocab:corpus.Pipeline.vocab task
          in
          (w, Some m)
      | "dypro" -> (fst (Zoo.dypro ~dim ~vocab:corpus.Pipeline.vocab task), None)
      | "code2vec" -> (Zoo.code2vec ~dim ~train:corpus.Pipeline.train task, None)
      | "code2seq" -> (Zoo.code2seq ~dim ~train:corpus.Pipeline.train task, None)
      | other -> failwith ("unknown model " ^ other)
    in
    Printf.printf "training %s (%d params, %d epochs)...\n%!" wrapper.Train.name
      (Param.num_params wrapper.Train.store) epochs;
    let history =
      Train.fit
        ~options:{ Train.default_options with Train.epochs; Train.batch_size = batch }
        (Rng.create (seed + 1)) wrapper ~train:corpus.Pipeline.train
        ~valid:corpus.Pipeline.valid
    in
    if history.Train.vacuous_best then
      Printf.printf "best epoch: %d (validation split empty; selection vacuous)\n"
        history.Train.best_epoch
    else Printf.printf "best epoch: %d\n" history.Train.best_epoch;
    let r = Train.eval_naming ~batch wrapper corpus.Pipeline.test in
    Fmt.pr "test: %a@." Metrics.pp_prf r.Train.prf;
    Obs.print_report ();
    (match history_path with
    | None -> ()
    | Some path ->
        let module B = Liger_obs.Bench_store in
        let wall = List.fold_left ( +. ) 0.0 history.Train.epoch_times in
        let eps =
          if wall > 0.0 then float_of_int (n_train * epochs) /. wall else 0.0
        in
        (* A test_f1 of exactly 0.0 is a red flag, not a score: either the
           test split is empty (nothing was measured) or the run is too
           small for the model to predict a single correct sub-token.
           Record it, but never silently. *)
        if n_test = 0 then
          Logs.warn (fun m ->
              m "test split is empty: recording test_f1 = 0.0, which measures \
                 nothing — increase -n so the test split is populated")
        else if r.Train.prf.Metrics.f1 = 0.0 then
          Logs.warn (fun m ->
              m "test F1 is exactly 0.0 over %d test examples (no correct \
                 sub-token at all); the run is likely too small to train — \
                 the history record will carry a meaningless score"
                n_test);
        let record =
          {
            B.benchmark = "train." ^ wrapper.Train.name;
            rev = B.git_rev ();
            date = B.iso8601 (Unix.gettimeofday ());
            jobs = Liger_parallel.Parallel.jobs ();
            metrics =
              [
                ("train_seconds", wall);
                ("epochs", float_of_int epochs);
                ("corpus_n", float_of_int n);
                ("batch_size", float_of_int batch);
                ("examples_per_second", eps);
                ("test_f1", r.Train.prf.Metrics.f1);
              ];
          }
        in
        B.append ~path record;
        Printf.printf "benchmark record appended to %s\n" path);
    match (save, liger_model) with
    | Some dir, Some m ->
        save_model dir m corpus.Pipeline.vocab;
        Printf.printf "model saved to %s\n" dir
    | Some _, None -> Printf.eprintf "--save currently supports --model liger only\n"
    | None, _ -> ()
  in
  let model =
    Arg.(value & opt string "liger"
         & info [ "model" ] ~doc:"Model: liger, dypro, code2vec or code2seq.")
  in
  let n = Arg.(value & opt int 200 & info [ "n" ] ~doc:"Corpus size.") in
  let epochs = Arg.(value & opt int 10 & info [ "epochs" ] ~doc:"Training epochs.") in
  let dim = Arg.(value & opt int 16 & info [ "dim" ] ~doc:"Hidden size.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let batch =
    Arg.(value & opt int 1
         & info [ "batch" ]
             ~doc:"Mini-batch size; > 1 trains and evaluates on the batched \
                   engine (one optimizer step per batch).")
  in
  let save =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~doc:"Directory to save the trained model (liger only).")
  in
  let history =
    Arg.(value & opt (some string) None
         & info [ "history" ] ~docv:"FILE"
             ~doc:"Append a benchmark record (git rev, date, jobs, wall time, \
                   throughput, test score) to the JSONL history $(docv); diff \
                   runs with $(b,liger stats --diff).")
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Train a model on a generated corpus")
    Term.(const run $ obs_term $ model $ n $ epochs $ dim $ seed $ batch $ save $ history)

(* ---------------- predict ---------------- *)

let predict_cmd =
  let run file model_dir seed =
    let meth = load_method file in
    let model, vocab = load_model model_dir in
    let rng = Rng.create seed in
    let result = Feedback.generate rng meth in
    if result.Feedback.gave_up then failwith "could not generate executions for this method";
    let blended = Feedback.blended meth result in
    let enc = Common.default_enc_config in
    let ex = Common.encode_example enc vocab meth blended (Common.Name meth.Ast.mname) in
    let tape = Autodiff.tape () in
    let toks = Liger_model.predict_name model tape ex in
    Autodiff.discard tape;
    Printf.printf "method is named: %s\npredicted name:  %s (%s)\n" meth.Ast.mname
      (Subtoken.join toks)
      (String.concat " " toks)
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let model_dir =
    Arg.(required & opt (some dir) None & info [ "model" ] ~doc:"Saved model directory.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "predict" ~doc:"Predict a method's name with a saved LiGer model")
    Term.(const run $ file $ model_dir $ seed)

(* ---------------- similar ---------------- *)

let similar_cmd =
  let run file n k seed =
    let meth = load_method file in
    let rng = Rng.create seed in
    Printf.printf "building a small corpus to search against (n=%d)...\n%!" n;
    let corpus = Pipeline.build_naming rng ~name:"search" ~n in
    let wrapper, model =
      Zoo.liger ~vocab:corpus.Pipeline.vocab Liger_model.Naming
    in
    Printf.printf "training the encoder briefly...\n%!";
    let (_ : Train.history) =
      Train.fit
        ~options:{ Train.default_options with Train.epochs = 6 }
        (Rng.create (seed + 1)) wrapper ~train:corpus.Pipeline.train
        ~valid:corpus.Pipeline.valid
    in
    let idx =
      Embedding_index.of_examples model corpus.Pipeline.train
        ~key_of:(fun (ex : Common.enc_example) -> ex.Common.meth.Ast.mname)
    in
    let result = Feedback.generate rng meth in
    if result.Feedback.gave_up then failwith "could not generate executions";
    let blended = Feedback.blended meth result in
    let ex =
      Common.encode_example Common.default_enc_config corpus.Pipeline.vocab meth blended
        (Common.Name meth.Ast.mname)
    in
    Printf.printf "\nmethods semantically nearest to '%s':\n" meth.Ast.mname;
    List.iter
      (fun (score, key) -> Printf.printf "  %.3f  %s\n" score key)
      (Embedding_index.query model idx ~k ex)
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let n = Arg.(value & opt int 120 & info [ "n" ] ~doc:"Corpus size to index.") in
  let k = Arg.(value & opt int 5 & info [ "k" ] ~doc:"Neighbours to report.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "similar" ~doc:"Semantic code search: nearest programs by embedding")
    Term.(const run $ file $ n $ k $ seed)

(* ---------------- probe ---------------- *)

let probe_cmd =
  let run () n seed epochs probe_epochs dim out =
    let rng = Rng.create seed in
    Printf.printf "building corpus (n=%d)...\n%!" n;
    let corpus = Pipeline.build_naming rng ~name:"probe" ~n in
    let n_train, n_valid, n_test = Pipeline.sizes corpus in
    Printf.printf "corpus: %d/%d/%d\n%!" n_train n_valid n_test;
    let task = Liger_model.Naming in
    let liger_wrap, liger_model =
      Zoo.liger
        ~config:{ Liger_model.default_config with Liger_model.dim }
        ~vocab:corpus.Pipeline.vocab task
    in
    let dypro_wrap, dypro_model = Zoo.dypro ~dim ~vocab:corpus.Pipeline.vocab task in
    let train_encoder (wrap : Train.model) =
      Printf.printf "training %s encoder (%d epochs)...\n%!" wrap.Train.name epochs;
      ignore
        (Train.fit
           ~options:{ Train.default_options with Train.epochs }
           (Rng.create (seed + 1)) wrap ~train:corpus.Pipeline.train
           ~valid:corpus.Pipeline.valid)
    in
    train_encoder liger_wrap;
    train_encoder dypro_wrap;
    let probe_one emb =
      Printf.printf "probing %s (%d readout epochs per task)...\n%!" emb.Probe.e_name
        probe_epochs;
      Probe.probe ~epochs:probe_epochs (Rng.create (seed + 2)) emb
        ~train:corpus.Pipeline.train ~test:corpus.Pipeline.test
    in
    let liger_report = probe_one (Probe.of_liger liger_model) in
    let dypro_report = probe_one (Probe.of_dypro dypro_model) in
    let reports = [ liger_report; dypro_report ] in
    let table = Probe.render reports in
    print_string table;
    (* default the artifact into the per-run directory instead of the repo
       root; --out "" suppresses the file entirely *)
    (match (match out with Some p -> p | None -> Filename.concat (Obs.run_dir ()) "probe_accuracy.txt") with
    | "" -> ()
    | path ->
        let oc = open_out path in
        output_string oc table;
        close_out oc;
        Printf.printf "probe accuracy table written to %s\n" path);
    Obs.print_report ()
  in
  let n = Arg.(value & opt int 80 & info [ "n" ] ~doc:"Corpus size.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let epochs =
    Arg.(value & opt int 4 & info [ "epochs" ] ~doc:"Encoder training epochs.")
  in
  let probe_epochs =
    Arg.(value & opt int 40
         & info [ "probe-epochs" ] ~doc:"Linear-readout training epochs per task.")
  in
  let dim = Arg.(value & opt int 16 & info [ "dim" ] ~doc:"Hidden size.") in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Also write the accuracy table to $(docv) (default \
                   $(i,runs/<run-id>/probe_accuracy.txt); pass an empty string \
                   to skip the file).")
  in
  Cmd.v
    (Cmd.info "probe"
       ~doc:"Train linear readouts on frozen LiGer/DYPRO embeddings against exact \
             per-statement semantic labels (liveness, dominators, reachability, \
             abstract sign) and report per-task accuracy")
    Term.(const run $ obs_term $ n $ seed $ epochs $ probe_epochs $ dim $ out)

(* ---------------- experiments ---------------- *)

let experiments_cmd =
  let run () which =
    let ctx = Experiments.create_ctx () in
    ctx.Experiments.progress <- (fun s -> Printf.eprintf "  %s\n%!" s);
    let all = which = [] in
    let want x = all || List.mem x which in
    if want "table1" then Report.print_table1 (Experiments.table1 ctx);
    if want "table2" then Report.print_table2 (Experiments.table2 ctx);
    if want "table3" then Report.print_table3 (Experiments.table3 ctx);
    if want "fig6" then Report.print_fig6 (Experiments.fig6 ctx);
    if want "fig7" then Report.print_fig7 (Experiments.fig7 ctx);
    if want "fig8" then Report.print_fig8 (Experiments.fig8 ctx);
    if want "fig9" then Report.print_fig9 (Experiments.fig9 ctx);
    if want "fig10" then Report.print_fig10 (Experiments.fig10 ctx);
    if want "fig11" then Report.print_fig11 (Experiments.fig11 ctx);
    if want "attn" then Report.print_attention (Experiments.attention_report ctx);
    Obs.print_report ()
  in
  let which =
    Arg.(value & pos_all string []
         & info [] ~docv:"EXPERIMENT"
             ~doc:"Subset to run (table1 table2 table3 fig6..fig11 attn); all if empty.")
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Run the paper's evaluation (LIGER_SCALE=quick|full)")
    Term.(const run $ obs_term $ which)

(* ---------------- fuzz ---------------- *)

let fuzz_cmd =
  let module Fuzz = Liger_fuzz.Fuzz in
  let module Oracle = Liger_fuzz.Oracle in
  let run () seed iters budget_s oracle_names replay out_dir =
    match replay with
    | Some path -> (
        match Fuzz.replay path with
        | Error msg ->
            Printf.eprintf "replay: %s\n" msg;
            exit 2
        | Ok r ->
            (match r.Fuzz.r_verdict with
            | Oracle.Fail msg ->
                Printf.printf "%s: reproduced — %s\n" r.Fuzz.r_oracle msg
            | Oracle.Pass -> Printf.printf "%s: NOT reproduced (passes)\n" r.Fuzz.r_oracle
            | Oracle.Skip msg ->
                Printf.printf "%s: NOT reproduced (skipped: %s)\n" r.Fuzz.r_oracle msg);
            Obs.print_report ();
            exit (if r.Fuzz.reproduced then 0 else 1))
    | None ->
        let oracles =
          match oracle_names with
          | [] -> Oracle.all
          | names ->
              List.map
                (fun n ->
                  match Oracle.find n with
                  | Some o -> o
                  | None ->
                      Printf.eprintf "unknown oracle %S; available: %s\n" n
                        (String.concat ", " (List.map (fun o -> o.Oracle.name) Oracle.all));
                      exit 2)
                names
        in
        let s = Fuzz.run ~oracles ~iters ?budget_s ~out_dir ~seed () in
        Printf.printf "fuzz: seed %d, %d programs, %d checks in %.1fs\n" s.Fuzz.seed
          s.Fuzz.programs s.Fuzz.checks s.Fuzz.elapsed_s;
        List.iter
          (fun (name, t) ->
            Printf.printf "  %-12s %5d pass  %3d fail  %3d skip\n" name t.Fuzz.passed
              t.Fuzz.failed t.Fuzz.skipped)
          s.Fuzz.tallies;
        List.iter
          (fun (f : Fuzz.failure) ->
            Printf.printf "FAIL %s iter %d (shrunk %d steps): %s\n  %s\n" f.Fuzz.oracle
              f.Fuzz.iter f.Fuzz.shrink_steps f.Fuzz.message
              (match f.Fuzz.artifact with Some p -> p | None -> "(not persisted)"))
          s.Fuzz.failures;
        Obs.print_report ();
        exit (if s.Fuzz.failures = [] then 0 else 1)
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master random seed.") in
  let iters =
    Arg.(value & opt int 200 & info [ "iters" ] ~docv:"N" ~doc:"Programs to generate.")
  in
  let budget_s =
    Arg.(value & opt (some float) None
         & info [ "budget-s" ] ~docv:"SECONDS"
             ~doc:"Wall-clock budget; stop starting new batches past it.")
  in
  let oracle_names =
    Arg.(value & opt_all string []
         & info [ "oracle" ] ~docv:"NAME"
             ~doc:"Run only this oracle (repeatable); all seven by default.")
  in
  let replay =
    Arg.(value & opt (some file) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Re-run the failure persisted in a corpus $(i,.json) descriptor \
                   and exit 0 iff it still fails.")
  in
  let out_dir =
    Arg.(value & opt string (Filename.concat "fuzz" "corpus")
         & info [ "out" ] ~docv:"DIR" ~doc:"Directory for failure artifacts.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: generated well-typed programs vs. seven oracles \
             (roundtrip, soundness, symexec, analysis, autodiff, absint, \
             determinism)")
    Term.(const run $ obs_term $ seed $ iters $ budget_s $ oracle_names $ replay $ out_dir)

(* ---------------- stats ---------------- *)

let stats_cmd =
  let run file file2 validate diff openmetrics threshold =
    let fail msg =
      Printf.eprintf "%s\n" msg;
      exit 1
    in
    if openmetrics then begin
      match Obs.openmetrics_file file with
      | Error msg -> fail msg
      | Ok text ->
          if validate then (
            match Liger_obs.Openmetrics.lint text with
            | Ok samples -> Printf.printf "%s: OK (openmetrics, %d samples)\n" file samples
            | Error msg -> fail (Printf.sprintf "%s: %s" file msg))
          else print_string text
    end
    else if diff || file2 <> None then begin
      let result =
        match file2 with
        | Some b -> Obs.diff_files ?threshold file b
        | None -> Obs.diff_history ?threshold file
      in
      match result with Ok text -> print_string text | Error msg -> fail msg
    end
    else if validate then
      match Obs.validate_file file with
      | Ok summary -> Printf.printf "%s: OK (%s)\n" file summary
      | Error msg -> fail msg
    else
      match Obs.summarize_file file with
      | Ok text -> print_string text
      | Error msg -> fail msg
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let file2 =
    Arg.(value & pos 1 (some file) None
         & info [] ~docv:"FILE2"
             ~doc:"Second file for $(b,--diff); omit to diff the last two \
                   records of a JSONL history.")
  in
  let validate =
    Arg.(value & flag
         & info [ "validate" ]
             ~doc:"Check structure only (trace events matched, metrics sections \
                   present, profile counters consistent); exit non-zero on \
                   malformed input.")
  in
  let diff =
    Arg.(value & flag
         & info [ "diff" ]
             ~doc:"Compare two snapshots (metrics JSON, flat bench JSON, or \
                   JSONL history) and print a delta table; with a single JSONL \
                   history, compares its last two records.  Rows whose relative \
                   change exceeds the threshold are flagged with '!'.")
  in
  let openmetrics =
    Arg.(value & flag
         & info [ "openmetrics" ]
             ~doc:"Render the snapshot (or the last line of a run ledger) in \
                   OpenMetrics/Prometheus text exposition format; with \
                   $(b,--validate), lint the exposition instead of printing it.")
  in
  let threshold =
    Arg.(value & opt (some float) None
         & info [ "threshold" ] ~docv:"FRAC"
             ~doc:"Relative-change flagging threshold for $(b,--diff) \
                   (default 0.1).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Summarize, validate or diff telemetry files (metrics snapshots, \
             run ledgers, postmortems, Chrome traces, benchmark histories)")
    Term.(const run $ file $ file2 $ validate $ diff $ openmetrics $ threshold)

(* ---------------- top ---------------- *)

let top_cmd =
  let run target interval once =
    let resolve () =
      match target with
      | Some t when Sys.is_directory t -> Some (Filename.concat t "metrics.jsonl")
      | Some t -> Some t
      | None -> Obs.latest_run_ledger ()
    in
    let ledger =
      match resolve () with
      | Some l -> l
      | None ->
          Printf.eprintf "liger top: no run ledger found under %s/\n%s\n"
            (Obs.runs_root ()) (Obs.no_ledger_hint ());
          exit 1
    in
    let frame () =
      match Obs.top_frame ledger with
      | Ok text -> Some text
      | Error msg ->
          Printf.eprintf "%s\n" msg;
          None
    in
    if once then (match frame () with Some t -> print_string t | None -> exit 1)
    else begin
      let stop = ref false in
      Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
      let misses = ref 0 in
      while not !stop do
        (match frame () with
        | Some t ->
            misses := 0;
            (* clear screen + home, then the frame *)
            print_string "\027[2J\027[H";
            print_string t;
            print_string (Printf.sprintf "\n(refreshing every %.1fs; ctrl-c to quit)\n" interval);
            flush stdout
        | None ->
            incr misses;
            if !misses > 5 then stop := true);
        Unix.sleepf interval
      done
    end
  in
  let target =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"RUN"
             ~doc:"Run directory or ledger file to tail; default: the most \
                   recently updated ledger under $(i,runs/).")
  in
  let interval =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh interval.")
  in
  let once =
    Arg.(value & flag
         & info [ "once" ] ~doc:"Render a single frame and exit (no screen clearing).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live view of a training run: tail its ledger and render throughput, \
             loss, grad-norm quantiles, pool utilization, GC and bufpool \
             occupancy with per-interval deltas")
    Term.(const run $ target $ interval $ once)

(* ---------------- report ---------------- *)

let report_cmd =
  let run target compare out history check =
    let history =
      match history with
      | Some _ -> history
      | None -> if Sys.file_exists "BENCH_history.jsonl" then Some "BENCH_history.jsonl" else None
    in
    let load arg =
      match Obs.resolve_run_dir arg with
      | Error msg ->
          Printf.eprintf "liger report: %s\n" msg;
          exit 1
      | Ok dir -> (
          match Obs.load_report_run ?bench_history:history dir with
          | Error msg ->
              Printf.eprintf "liger report: %s\n" msg;
              exit 1
          | Ok run -> run)
    in
    let main = load target in
    let other = Option.map (fun r -> load (Some r)) compare in
    let html = Obs.Report_html.render ?other main in
    let out = match out with Some p -> p | None -> "report.html" in
    let oc = open_out_bin out in
    output_string oc html;
    close_out oc;
    Printf.printf "wrote %s (%d bytes, run %s%s)\n" out (String.length html)
      main.Obs.Report_html.label
      (match other with
      | Some o -> " vs " ^ o.Obs.Report_html.label
      | None -> "");
    if check then begin
      let findings = Obs.Health.evaluate main.Obs.Report_html.lines in
      List.iter (fun f -> print_endline (Obs.Health.render_finding f)) findings;
      if Obs.Health.healthy findings then print_endline "health: no failing rules"
      else exit 2
    end
  in
  let target =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"RUN"
             ~doc:"Run directory or run id under $(i,runs/) to render; default: \
                   the most recently updated run.")
  in
  let compare =
    Arg.(value & opt (some string) None
         & info [ "compare" ] ~docv:"RUN2"
             ~doc:"Second run to diff against: series are overlaid and the \
                   report gains a final-gauges delta table.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Output file (default $(i,report.html)).")
  in
  let history =
    Arg.(value & opt (some string) None
         & info [ "history" ] ~docv:"FILE"
             ~doc:"Benchmark history whose $(i,train.*) records feed the \
                   throughput-history table (default: $(i,BENCH_history.jsonl) \
                   in the current directory, when present).")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"After writing the report, evaluate the health rules over the \
                   ledger and exit 2 if any FAIL-level finding fires (WARN \
                   findings are printed but do not fail).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render a run directory (ledger, training-dynamics streams, \
             profile snapshot, probe table, benchmark history, postmortem) \
             into one self-contained HTML dashboard with inline SVG \
             sparklines; $(b,--compare) overlays a second run")
    Term.(const run $ target $ compare $ out $ history $ check)

(* ---------------- serve / index / fetch ---------------- *)

module Serve = Liger_serve

let serve_cmd =
  let run () model_dir index_dir port port_file max_inflight batch_window_ms
      cache_capacity deadline_ms =
    let model, vocab = load_model model_dir in
    let index =
      Option.map
        (fun dir ->
          match Serve.Index.load ~dir with
          | Ok idx ->
              Printf.printf "loaded index: %d entries, dim %d\n%!"
                (Serve.Index.size idx) (Serve.Index.dim idx);
              idx
          | Error msg -> failwith (Printf.sprintf "--index %s: %s" dir msg))
        index_dir
    in
    let engine =
      Serve.Engine.create
        ~config:
          {
            Serve.Engine.default_config with
            Serve.Engine.batch_window_s = batch_window_ms /. 1000.0;
            cache_capacity;
          }
        ?index ~model ~vocab ()
    in
    let server =
      Serve.Server.start
        ~config:
          {
            Serve.Server.default_config with
            Serve.Server.port;
            max_inflight;
            default_deadline_s = deadline_ms /. 1000.0;
          }
        ~handler:(Serve.Engine.handle engine) ()
    in
    let bound = Serve.Server.port server in
    (match port_file with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Printf.fprintf oc "%d\n" bound;
        close_out oc);
    Printf.printf
      "liger serve: listening on 127.0.0.1:%d (max-inflight %d, batch window %g ms)\n"
      bound max_inflight batch_window_ms;
    Printf.printf "endpoints: POST /embed /search /suggest; GET /healthz /metrics\n%!";
    let stopping = Atomic.make false in
    let request_stop _ = Atomic.set stopping true in
    (* override the flight recorder's postmortem handler installed by
       Obs.init: for a server, TERM/INT are a clean shutdown, not a crash *)
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    while not (Atomic.get stopping) do
      try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    Printf.printf "liger serve: shutting down\n%!";
    Serve.Server.stop server;
    Serve.Engine.stop engine
    (* normal return → at_exit → Obs.flush → the run ledger's final tick *)
  in
  let model_dir =
    Arg.(required & opt (some dir) None
         & info [ "model" ] ~docv:"DIR" ~doc:"Saved model directory (see train --save).")
  in
  let index_dir =
    Arg.(value & opt (some dir) None
         & info [ "index" ] ~docv:"DIR"
             ~doc:"Embedding index directory for /search (see $(b,liger index)); \
                   without it /search answers 503.")
  in
  let port =
    Arg.(value & opt int 8080
         & info [ "port" ] ~docv:"N"
             ~doc:"TCP port on 127.0.0.1; 0 asks the kernel for a free one \
                   (see --port-file).")
  in
  let port_file =
    Arg.(value & opt (some string) None
         & info [ "port-file" ] ~docv:"FILE"
             ~doc:"Write the bound port number to $(docv) once listening \
                   (for scripts using --port 0).")
  in
  let max_inflight =
    Arg.(value & opt int 8
         & info [ "max-inflight" ] ~docv:"K"
             ~doc:"Admission cap: over $(docv) concurrently handled requests, \
                   answer 429 with Retry-After instead of queueing.")
  in
  let batch_window_ms =
    Arg.(value & opt float 2.0
         & info [ "batch-window-ms" ] ~docv:"W"
             ~doc:"Coalescing window: concurrent embed/suggest requests arriving \
                   within $(docv) ms share one batched forward.")
  in
  let cache_capacity =
    Arg.(value & opt int 512
         & info [ "cache-capacity" ] ~docv:"N"
             ~doc:"AST-hash-keyed LRU embedding cache entries.")
  in
  let deadline_ms =
    Arg.(value & opt float 30000.0
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Default per-request deadline (clients override per request \
                   with the X-Deadline-Ms header); expired requests answer 408.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve embeddings over HTTP: batched /embed, index-backed /search, \
             /suggest, /healthz and OpenMetrics /metrics, with request \
             coalescing, an AST-hash LRU cache, bounded-inflight backpressure \
             and per-request deadlines")
    Term.(const run $ obs_term $ model_dir $ index_dir $ port $ port_file
          $ max_inflight $ batch_window_ms $ cache_capacity $ deadline_ms)

let index_cmd =
  let run () model_dir out files generate seed =
    let model, vocab = load_model model_dir in
    let dim = model.Liger_model.config.Liger_model.dim in
    let from_files =
      List.concat_map (fun path -> Parser.methods_of_string (read_file path)) files
    in
    let generated =
      if generate = 0 then []
      else
        Javagen.generate (Rng.create seed) ~n:generate
        |> List.map (fun (it : Javagen.item) -> it.Javagen.candidate.Filter.meth)
    in
    let items =
      List.filter_map
        (fun (m : Ast.meth) ->
          match Typecheck.check m with
          | Error e ->
              Printf.eprintf "skipping %s: type error at line %d: %s\n" m.Ast.mname
                e.Typecheck.line e.Typecheck.msg;
              None
          | Ok () -> (
              let hash = Serve.Ast_hash.of_meth m in
              match Serve.Engine.encode_method ~vocab m hash with
              | Ok ex -> Some (m.Ast.mname, hash, ex)
              | Error (_, msg) ->
                  Printf.eprintf "skipping %s: %s\n" m.Ast.mname msg;
                  None))
        (from_files @ generated)
    in
    if items = [] then failwith "nothing to index (no FILES and --generate 0?)";
    (* content-addressing: an existing index under --out seeds vector reuse *)
    let previous =
      match Serve.Index.load ~dir:out with Ok t -> Some t | Error _ -> None
    in
    let idx, report =
      Serve.Index.build ~dim ?previous
        ~embed_batch:(fun exs -> Liger_model.embed_programs model exs)
        items
    in
    Serve.Index.save idx ~dir:out;
    Printf.printf "index %s: %d entries (embedded %d, reused %d)\n" out
      (Serve.Index.size idx) report.Serve.Index.embedded report.Serve.Index.reused
  in
  let model_dir =
    Arg.(required & opt (some dir) None
         & info [ "model" ] ~docv:"DIR" ~doc:"Saved model directory (see train --save).")
  in
  let out =
    Arg.(required & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Index directory; an existing index there seeds \
                   content-addressed reuse (unchanged methods keep their vectors).")
  in
  let files =
    Arg.(value & pos_all file []
         & info [] ~docv:"FILE" ~doc:"MiniJava source files to index (all methods).")
  in
  let generate =
    Arg.(value & opt int 0
         & info [ "generate" ] ~docv:"N"
             ~doc:"Also index $(docv) generated corpus methods (deterministic in \
                   --seed).")
  in
  let seed = Arg.(value & opt int 9 & info [ "seed" ] ~doc:"Generator seed.") in
  Cmd.v
    (Cmd.info "index"
       ~doc:"Build or refresh the content-addressed embedding index behind \
             serve's /search: methods are keyed by AST hash, so rebuilding over \
             an edited corpus re-embeds only what changed")
    Term.(const run $ obs_term $ model_dir $ out $ files $ generate $ seed)

let fetch_cmd =
  let run url data lint =
    let strip p s =
      if String.length s >= String.length p && String.sub s 0 (String.length p) = p
      then String.sub s (String.length p) (String.length s - String.length p)
      else s
    in
    let rest = strip "http://" url in
    let host_port, path =
      match String.index_opt rest '/' with
      | Some i -> (String.sub rest 0 i, String.sub rest i (String.length rest - i))
      | None -> (rest, "/")
    in
    (* the client only speaks loopback; the host part merely carries the port *)
    let port =
      match String.index_opt host_port ':' with
      | Some i ->
          int_of_string (String.sub host_port (i + 1) (String.length host_port - i - 1))
      | None -> 80
    in
    let body = Option.map read_file data in
    let meth = match body with Some _ -> "POST" | None -> "GET" in
    let resp = Serve.Client.request ~meth ?body ~port path in
    (if lint then
       match Liger_obs.Openmetrics.lint resp.Serve.Client.body with
       | Ok samples -> Printf.printf "openmetrics: OK (%d samples)\n" samples
       | Error msg ->
           Printf.eprintf "openmetrics: %s\n" msg;
           exit 1
     else print_string resp.Serve.Client.body);
    if resp.Serve.Client.status >= 400 then begin
      Printf.eprintf "HTTP %d\n" resp.Serve.Client.status;
      exit 1
    end
  in
  let url = Arg.(required & pos 0 (some string) None & info [] ~docv:"URL") in
  let data =
    Arg.(value & opt (some file) None
         & info [ "data" ] ~docv:"FILE" ~doc:"POST the contents of $(docv) as the body.")
  in
  let lint =
    Arg.(value & flag
         & info [ "lint-openmetrics" ]
             ~doc:"Instead of printing the body, lint it as OpenMetrics text \
                   exposition and exit non-zero if malformed.")
  in
  Cmd.v
    (Cmd.info "fetch"
       ~doc:"Minimal dependency-free HTTP client for 127.0.0.1 (scripting against \
             $(b,liger serve): exits non-zero on HTTP errors)")
    Term.(const run $ url $ data $ lint)

let () =
  Obs.init_logging ();
  (* env-var-only configuration; subcommand flags override via [obs_term] *)
  Obs.init ();
  let doc = "Blended, precise semantic program embeddings (LiGer, PLDI 2020)" in
  let info = Cmd.info "liger" ~version:"1.0.0" ~doc in
  (* ~catch:false: an uncaught exception must reach the flight recorder's
     uncaught-exception handler (postmortem dump) instead of cmdliner's
     catch-all pretty-printer *)
  exit
    (Cmd.eval ~catch:false
       (Cmd.group info
          [ trace_cmd; analyze_cmd; paths_cmd; dataset_cmd; train_cmd; predict_cmd;
            similar_cmd; probe_cmd; experiments_cmd; stats_cmd; top_cmd; report_cmd;
            fuzz_cmd; serve_cmd; index_cmd; fetch_cmd ]))
