(* Batched-engine throughput probe: per-example tape vs the flat-Bigarray
   mini-batch path on the same corpus and parameters.

   Usage:
     dune exec bench/batched.exe                  # default corpus (n=60)
     LIGER_BENCH_N=120 dune exec bench/batched.exe
     dune exec bench/batched.exe -- 8 16 32       # batch sizes to probe

   Prints, for each batch size: forward-only and forward+backward wall
   time per example, plus the speedup over the per-example path.  This is
   the number the train.LiGer examples_per_second history gate tracks. *)

open Liger_tensor
open Liger_core
open Liger_eval

let () =
  let batch_sizes =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> [ 8; 16; 32 ]
    | args -> List.map int_of_string args
  in
  let n =
    match Sys.getenv_opt "LIGER_BENCH_N" with
    | Some s -> int_of_string s
    | None -> 60
  in
  let enc =
    { Common.default_enc_config with Common.max_paths = 4; max_concrete = 3; max_steps = 16 }
  in
  Printf.printf "building corpus (n=%d)...\n%!" n;
  let corpus =
    Liger_dataset.Pipeline.build_naming ~enc_config:enc (Rng.create 4242)
      ~name:"batched-bench" ~n
  in
  let train = Array.of_list corpus.Liger_dataset.Pipeline.train in
  let n_ex = Array.length train in
  Printf.printf "train examples: %d\n%!" n_ex;
  let wrap, model = Zoo.liger ~vocab:corpus.Liger_dataset.Pipeline.vocab Liger_model.Naming in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let reps = 3 in
  (* per-example reference *)
  let unbatched_fwd =
    time (fun () ->
        for _ = 1 to reps do
          Array.iter
            (fun ex ->
              let tape = Autodiff.tape () in
              ignore (wrap.Train.train_loss tape ex);
              Autodiff.discard tape)
            train
        done)
  in
  let unbatched_fb =
    time (fun () ->
        for _ = 1 to reps do
          Array.iter
            (fun ex ->
              let tape = Autodiff.tape () in
              let loss = wrap.Train.train_loss tape ex in
              Autodiff.backward tape loss;
              Param.zero_grads wrap.Train.store)
            train
        done)
  in
  let per_ex_us dt = dt /. float_of_int (reps * n_ex) *. 1e6 in
  Printf.printf "\n%-22s %14s %14s\n" "path" "fwd us/ex" "fwd+bwd us/ex";
  Printf.printf "%-22s %14.1f %14.1f\n%!" "per-example" (per_ex_us unbatched_fwd)
    (per_ex_us unbatched_fb);
  List.iter
    (fun bs ->
      let run_chunks backward () =
        let off = ref 0 in
        while !off < n_ex do
          let len = min bs (n_ex - !off) in
          let chunk = Array.sub train !off len in
          off := !off + len;
          let btape = Batched.tape () in
          let losses, _ = Liger_model.loss_batch model btape chunk in
          if backward then begin
            Batched.backward btape (Batched.sum_all btape losses);
            Param.zero_grads wrap.Train.store
          end
          else Batched.discard btape
        done
      in
      let fwd = time (fun () -> for _ = 1 to reps do run_chunks false () done) in
      let fb = time (fun () -> for _ = 1 to reps do run_chunks true () done) in
      Printf.printf "%-22s %14.1f %14.1f   (%.2fx / %.2fx)\n%!"
        (Printf.sprintf "batched (bs=%d)" bs)
        (per_ex_us fwd) (per_ex_us fb)
        (unbatched_fwd /. fwd) (unbatched_fb /. fb))
    batch_sizes
