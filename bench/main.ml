(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation section and, per deliverable, registers one Bechamel
   measurement per table/figure exercising that experiment's computational
   kernel.

   Usage:
     dune exec bench/main.exe                 # quick scale (default)
     LIGER_SCALE=full dune exec bench/main.exe
     dune exec bench/main.exe -- --no-micro   # skip Bechamel microbenches
     dune exec bench/main.exe -- --micro-only # only the microbenches
     dune exec bench/main.exe -- --jobs 4     # parallel corpus-generation
                                              # benchmark (1 vs 4 domains),
                                              # writes BENCH_parallel.json
     dune exec bench/main.exe -- --trace t.json --metrics-out m.json
                                              # Chrome trace + metrics snapshot
                                              # (also via LIGER_TRACE_OUT /
                                              # LIGER_METRICS_OUT)

   --jobs N alone runs only the parallel benchmark; combine it with the
   other flags to also run those sections on an N-sized pool.  Unknown or
   contradictory flags are an error.

   The printed artefacts mirror the paper:
     Table 1  - dataset statistics before/after filtering
     Table 2  - code2vec / code2seq / DYPRO / LiGer on both naming corpora
     Table 3  - DYPRO vs LiGer on the COSET analogue
     Figure 6 - F1 under concrete- and symbolic-trace reduction
     Figure 7 - the same reductions on the COSET task
     Figures 8/9/10 - the ablation configurations under reduction
     Figure 11 - all configurations overlaid
     plus the 6.1.2 attention-weight inspection. *)

open Bechamel
open Liger_tensor
open Liger_core
open Liger_eval
module Obs = Liger_obs.Obs
module B = Liger_obs.Bench_store

let say fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Bechamel microbenches: the kernel behind each experiment            *)
(* ------------------------------------------------------------------ *)

type fixture = {
  example : Common.enc_example;
  liger : Liger_model.t;
  liger_wrap : Train.model;
  dypro : Train.model;
  code2vec : Train.model;
  code2seq : Train.model;
  vocab : Liger_trace.Vocab.t;
  candidates : Liger_testgen.Filter.candidate list;
}

let build_fixture () =
  let rng = Rng.create 777 in
  let enc =
    { Common.default_enc_config with Common.max_paths = 4; max_concrete = 3; max_steps = 16 }
  in
  let corpus = Liger_dataset.Pipeline.build_naming ~enc_config:enc rng ~name:"bench" ~n:60 in
  let example = List.hd corpus.Liger_dataset.Pipeline.train in
  let vocab = corpus.Liger_dataset.Pipeline.vocab in
  let train = corpus.Liger_dataset.Pipeline.train in
  let liger_wrap, liger = Zoo.liger ~vocab Liger_model.Naming in
  let candidates =
    Liger_dataset.Javagen.generate (Rng.create 778) ~n:3
    |> List.map (fun (it : Liger_dataset.Javagen.item) -> it.Liger_dataset.Javagen.candidate)
  in
  {
    example;
    liger;
    liger_wrap;
    dypro = fst (Zoo.dypro ~vocab Liger_model.Naming);
    code2vec = Zoo.code2vec ~train Liger_model.Naming;
    code2seq = Zoo.code2seq ~train Liger_model.Naming;
    vocab;
    candidates;
  }

let train_step (wrap : Train.model) ex () =
  let tape = Autodiff.tape () in
  let loss = wrap.Train.train_loss tape ex in
  Autodiff.backward tape loss;
  Param.zero_grads wrap.Train.store

let ablation_step fx ~seed config =
  let w, _ = Zoo.liger ~config ~seed ~vocab:fx.vocab Liger_model.Naming in
  train_step w fx.example

let micro_tests fx =
  let view_reduced = { Common.n_paths = 1; n_concrete = 1 } in
  [
    (* Table 1 kernel: the filtering pipeline over raw candidates *)
    Test.make ~name:"table1/filter-pipeline"
      (Staged.stage (fun () ->
           let rng = Rng.create 1 in
           let budget =
             { Liger_testgen.Feedback.max_attempts = 15; target_paths = 2; per_path = 2;
               fuel = 4000 }
           in
           List.iter
             (fun c -> ignore (Liger_testgen.Filter.classify ~budget rng c))
             fx.candidates));
    (* Table 2 kernels: one training step per model *)
    Test.make ~name:"table2/liger-step" (Staged.stage (train_step fx.liger_wrap fx.example));
    Test.make ~name:"table2/dypro-step" (Staged.stage (train_step fx.dypro fx.example));
    Test.make ~name:"table2/code2seq-step" (Staged.stage (train_step fx.code2seq fx.example));
    Test.make ~name:"table2/code2vec-step" (Staged.stage (train_step fx.code2vec fx.example));
    (* Table 3 kernel: program-embedding encode (the classifier input) *)
    Test.make ~name:"table3/liger-encode"
      (Staged.stage (fun () -> ignore (Liger_model.embed_program fx.liger fx.example)));
    (* Figure 6/7 kernels: encoding under full vs reduced views *)
    Test.make ~name:"fig6/encode-full"
      (Staged.stage (fun () ->
           ignore (Liger_model.embed_program fx.liger ~view:Common.full_view fx.example)));
    Test.make ~name:"fig7/encode-reduced"
      (Staged.stage (fun () ->
           ignore (Liger_model.embed_program fx.liger ~view:view_reduced fx.example)));
    (* Figures 8-11 kernels: one step of each ablation configuration *)
    Test.make ~name:"fig8/nostatic-step"
      (Staged.stage
         (ablation_step fx ~seed:21
            { Liger_model.default_config with Liger_model.use_static = false }));
    Test.make ~name:"fig9/nodynamic-step"
      (Staged.stage
         (ablation_step fx ~seed:22
            { Liger_model.default_config with Liger_model.use_dynamic = false }));
    Test.make ~name:"fig10/noattention-step"
      (Staged.stage
         (ablation_step fx ~seed:23
            { Liger_model.default_config with Liger_model.use_attention = false }));
    Test.make ~name:"fig11/full-config-step"
      (Staged.stage (train_step fx.liger_wrap fx.example));
    (* Dynamics-hook overhead: the identical step with the
       training-dynamics streams enabled.  The delta vs table2/liger-step
       is what the one-branch-when-disabled contract keeps off the
       default path; both flags are restored so later benches see the
       registry exactly as before. *)
    Test.make ~name:"dynamics/liger-step-instrumented"
      (Staged.stage (fun () ->
           let metrics_were_on = Liger_obs.Metrics.enabled () in
           Liger_obs.Metrics.enable ();
           Liger_obs.Dynamics.enable ();
           Fun.protect
             ~finally:(fun () ->
               Liger_obs.Dynamics.disable ();
               if not metrics_were_on then Liger_obs.Metrics.disable ())
             (train_step fx.liger_wrap fx.example)));
    (* Abstract interpretation & probing kernels: the widening/narrowing
       fixpoint, the CHK dominator passes and exact probe labelling *)
    Test.make ~name:"absint/analyze"
      (Staged.stage (fun () ->
           List.iter
             (fun (c : Liger_testgen.Filter.candidate) ->
               ignore (Liger_analysis.Absint.analyze c.Liger_testgen.Filter.meth))
             fx.candidates));
    Test.make ~name:"absint/dominators"
      (Staged.stage (fun () ->
           List.iter
             (fun (c : Liger_testgen.Filter.candidate) ->
               let cfg = Liger_analysis.Cfg.build c.Liger_testgen.Filter.meth in
               ignore (Liger_analysis.Dominator.dominators cfg);
               ignore (Liger_analysis.Dominator.postdominators cfg))
             fx.candidates));
    Test.make ~name:"probe/label-method"
      (Staged.stage (fun () ->
           List.iter
             (fun (c : Liger_testgen.Filter.candidate) ->
               ignore (Liger_dataset.Probing.label_method c.Liger_testgen.Filter.meth))
             fx.candidates));
  ]

let run_micro () =
  Obs.Recorder.note "bench.micro";
  say "\nBechamel microbenches (computational kernel of each table/figure)\n";
  say "%s\n%!" (String.make 72 '-');
  let fx = build_fixture () in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.3) ~kde:None () in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let results = Benchmark.run cfg instances elt in
          let estimate = Analyze.one ols (List.hd instances) results in
          match Analyze.OLS.estimates estimate with
          | Some [ t ] ->
              say "  %-28s %12.1f us/run\n%!" (Test.Elt.name elt) (t /. 1000.0)
          | _ -> say "  %-28s (no estimate)\n%!" (Test.Elt.name elt))
        (Test.elements test))
    (micro_tests fx);
  say "%s\n" (String.make 72 '-')

(* ------------------------------------------------------------------ *)
(* The experiments themselves                                          *)
(* ------------------------------------------------------------------ *)

let run_experiments () =
  Obs.Recorder.note "bench.experiments";
  let t0 = Unix.gettimeofday () in
  let ctx = Experiments.create_ctx () in
  ctx.Experiments.progress <-
    (fun s ->
      (* progress lines double as flight-recorder breadcrumbs: a crash
         mid-sweep names the table/figure it died in *)
      if Obs.Recorder.enabled () then Obs.Recorder.note ~detail:s "bench.progress";
      Printf.eprintf "[%7.1fs] %s\n%!" (Unix.gettimeofday () -. t0) s);
  say "LiGer reproduction - evaluation at scale '%s'\n"
    ctx.Experiments.scale.Experiments.label;
  say "(set LIGER_SCALE=full for the larger configuration)\n\n%!";
  Report.print_table1 (Experiments.table1 ctx);
  say "\n";
  Report.print_table2 (Experiments.table2 ctx);
  say "\n";
  Report.print_table3 (Experiments.table3 ctx);
  say "\n";
  Report.print_fig6 (Experiments.fig6 ctx);
  say "\n";
  Report.print_fig7 (Experiments.fig7 ctx);
  say "\n";
  Report.print_fig8 (Experiments.fig8 ctx);
  say "\n";
  Report.print_fig9 (Experiments.fig9 ctx);
  say "\n";
  Report.print_fig10 (Experiments.fig10 ctx);
  say "\n";
  Report.print_fig11 (Experiments.fig11 ctx);
  say "\n";
  Report.print_design_ablation (Experiments.design_ablation ctx);
  say "\n";
  Report.print_attention (Experiments.attention_report ctx);
  say "\ntotal wall time: %.1fs\n%!" (Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Parallel corpus-generation benchmark (--jobs N)                      *)
(* ------------------------------------------------------------------ *)

(* The corpus pipeline is the trace-volume bottleneck (ISSUE 2 /
   data-reliance studies): interpret every method under many inputs,
   symbolically execute, filter, encode.  This benchmark builds the same
   corpus sequentially and on an N-domain pool, checks the determinism
   contract on the way, and records throughput for the perf trajectory. *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let strip_uids (c : Liger_dataset.Pipeline.corpus) =
  let strip = List.map (fun ex -> { ex with Common.uid = 0 }) in
  (strip c.Liger_dataset.Pipeline.train,
   strip c.Liger_dataset.Pipeline.valid,
   strip c.Liger_dataset.Pipeline.test,
   Liger_trace.Vocab.to_list c.Liger_dataset.Pipeline.vocab)

let run_parallel_bench ~jobs =
  let open Liger_parallel in
  if Obs.Recorder.enabled () then
    Obs.Recorder.note ~detail:(Printf.sprintf "jobs %d" jobs) "bench.parallel";
  say "\nParallel corpus generation: 1 domain vs %d domains\n" jobs;
  say "%s\n%!" (String.make 72 '-');
  let n_methods =
    match Sys.getenv_opt "LIGER_BENCH_N" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> n
        | _ -> invalid_arg (Printf.sprintf "LIGER_BENCH_N must be a positive integer, got %S" s))
    | None -> ( match Sys.getenv_opt "LIGER_SCALE" with Some "full" -> 300 | _ -> 120)
  in
  let enc =
    { Common.default_enc_config with Common.max_paths = 4; max_concrete = 3; max_steps = 16 }
  in
  let build j =
    Parallel.set_jobs j;
    (* pool telemetry lives in the metrics registry now; recording it needs
       the registry on regardless of --metrics-out *)
    Liger_obs.Metrics.enable ();
    Liger_obs.Metrics.reset_prefix "parallel.";
    (* reset the id counters so the two builds are comparable byte-for-byte
       (ids only need to be unique within a method / model lifetime) *)
    Liger_lang.Ast.reset_sids ();
    Common.reset_uids ();
    let t0 = Unix.gettimeofday () in
    let corpus =
      Liger_dataset.Pipeline.build_naming ~enc_config:enc (Rng.create 4242)
        ~name:"parbench" ~n:n_methods
    in
    let dt = Unix.gettimeofday () -. t0 in
    (corpus, dt, Liger_obs.Metrics.snapshot ())
  in
  let seq_corpus, seq_dt, _ = build 1 in
  let par_corpus, par_dt, snap = build jobs in
  (* pool stats, straight from the metrics snapshot *)
  let pool_tasks = Liger_obs.Metrics.counter_value snap "parallel.tasks" in
  let pool_batches = Liger_obs.Metrics.counter_value snap "parallel.batches" in
  let pool_wall = Liger_obs.Metrics.fcounter_value snap "parallel.wall_seconds" in
  let busy_seconds = Parallel.Stats.busy_of_snapshot snap in
  let total_busy = Array.fold_left ( +. ) 0.0 busy_seconds in
  let utilization =
    if pool_wall > 0.0 && Array.length busy_seconds > 0 then
      total_busy /. (pool_wall *. float_of_int (Array.length busy_seconds))
    else 0.0
  in
  let deterministic = strip_uids seq_corpus = strip_uids par_corpus in
  let speedup = seq_dt /. par_dt in
  say "  methods generated            %12d\n" n_methods;
  say "  sequential (1 domain)        %12.2f s\n" seq_dt;
  say "  parallel  (%2d domains)       %12.2f s\n" jobs par_dt;
  say "  speedup                      %12.2fx\n" speedup;
  say "  deterministic (1 vs %d)      %12s\n" jobs (if deterministic then "yes" else "NO");
  say "  pool tasks                   %12d in %d batches\n" pool_tasks pool_batches;
  say "  pool utilization             %12.1f %%\n" (100.0 *. utilization);
  Array.iteri
    (fun i busy ->
      say "  domain %d busy                %12.2f s%s\n" i busy
        (if i = 0 then "  (caller)" else ""))
    busy_seconds;
  say "%s\n%!" (String.make 72 '-');
  if not deterministic then
    prerr_endline "WARNING: parallel corpus differs from sequential corpus";
  if jobs > 1 && speedup < 1.0 then
    Printf.eprintf
      "WARNING: parallel corpus generation is SLOWER than sequential (%.2fx \
       speedup with %d jobs on %d available core(s)); see DESIGN.md on \
       oversubscription\n%!"
      speedup jobs
      (Domain.recommended_domain_count ());
  let rev = B.git_rev () in
  let date = B.iso8601 (Unix.gettimeofday ()) in
  let oc = open_out "BENCH_parallel.json" in
  let busy =
    busy_seconds |> Array.to_list
    |> List.map (Printf.sprintf "%.6f")
    |> String.concat ", "
  in
  Printf.fprintf oc
    {|{
  "benchmark": "%s",
  "rev": "%s",
  "date": "%s",
  "methods": %d,
  "jobs": %d,
  "seq_seconds": %.6f,
  "par_seconds": %.6f,
  "speedup": %.4f,
  "seq_methods_per_second": %.4f,
  "par_methods_per_second": %.4f,
  "deterministic": %b,
  "pool_tasks": %d,
  "pool_batches": %d,
  "pool_wall_seconds": %.6f,
  "pool_utilization": %.4f,
  "per_domain_busy_seconds": [%s]
}
|}
    (json_escape "corpus-generation (build_naming: testgen + filter + trace + encode)")
    (json_escape rev) (json_escape date) n_methods jobs seq_dt par_dt speedup
    (float_of_int n_methods /. seq_dt)
    (float_of_int n_methods /. par_dt)
    deterministic pool_tasks pool_batches pool_wall utilization busy;
  close_out oc;
  say "wrote BENCH_parallel.json\n%!";
  {
    B.benchmark = "parallel-corpus";
    rev;
    date;
    jobs;
    metrics =
      [
        ("methods", float_of_int n_methods);
        ("seq_seconds", seq_dt);
        ("par_seconds", par_dt);
        ("speedup", speedup);
        ("seq_methods_per_second", float_of_int n_methods /. seq_dt);
        ("par_methods_per_second", float_of_int n_methods /. par_dt);
        ("pool_utilization", utilization);
        ("deterministic", if deterministic then 1.0 else 0.0);
      ];
  }

let regression_threshold () =
  match Sys.getenv_opt "LIGER_REGRESSION_THRESHOLD" with
  | None -> 0.3
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0.0 -> f
      | _ ->
          invalid_arg
            (Printf.sprintf "LIGER_REGRESSION_THRESHOLD must be a positive float, got %S" s))

(* ------------------------------------------------------------------ *)
(* Serve loopback benchmark (serve --qps N --duration S)                *)
(* ------------------------------------------------------------------ *)

(* Closed-loop paced load against a real [liger serve] stack — sockets,
   parser, gate, coalescer, cache, batched forward — over the loopback
   interface.  A warm-up pass fills the embedding cache first: the steady
   state being measured is the serving design's steady state (AST-hash
   cache hits + coalesced misses), not repeated cold trace generation. *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))

let run_serve_bench ~qps ~duration =
  let module Serve = Liger_serve in
  if Obs.Recorder.enabled () then
    Obs.Recorder.note ~detail:(Printf.sprintf "qps %.0f duration %.0fs" qps duration)
      "bench.serve";
  say "\nServe loopback benchmark: target %.0f QPS for %.0fs\n" qps duration;
  say "%s\n%!" (String.make 72 '-');
  (* seed-scale model over the same fixture corpus the microbenches use *)
  let enc =
    { Common.default_enc_config with Common.max_paths = 4; max_concrete = 3; max_steps = 16 }
  in
  let corpus =
    Liger_dataset.Pipeline.build_naming ~enc_config:enc (Rng.create 777)
      ~name:"servebench" ~n:40
  in
  let vocab = corpus.Liger_dataset.Pipeline.vocab in
  let _, model = Zoo.liger ~vocab Liger_model.Naming in
  Liger_obs.Metrics.enable ();
  Liger_obs.Metrics.reset_prefix "serve.";
  let engine = Serve.Engine.create ~model ~vocab () in
  let server =
    Serve.Server.start
      ~config:{ Serve.Server.default_config with Serve.Server.max_inflight = 64 }
      ~handler:(Serve.Engine.handle engine) ()
  in
  let port = Serve.Server.port server in
  let bodies =
    corpus.Liger_dataset.Pipeline.train
    |> List.filteri (fun i _ -> i < 8)
    |> List.map (fun (ex : Common.enc_example) ->
           Liger_lang.Pretty.meth_to_string ex.Common.meth)
    |> Array.of_list
  in
  if Array.length bodies = 0 then failwith "serve bench: empty fixture corpus";
  let post body =
    Serve.Client.request ~meth:"POST" ~body ~port "/embed"
  in
  Array.iter (fun b -> ignore (post b)) bodies (* warm-up: fill the cache *);
  let workers = 4 in
  (* pace 2% above the target: a loop paced at exactly [qps] completes
     qps*duration requests in slightly MORE than [duration] (the last
     tick lands on the boundary), so sustained throughput would sit just
     under the target and a ">= target" floor could never pass *)
  let interval = float_of_int workers /. (qps *. 1.02) in
  let completed = Atomic.make 0 and errors = Atomic.make 0 in
  let lat_lock = Mutex.create () in
  let lats = ref [] in
  let t_start = Unix.gettimeofday () in
  let t_end = t_start +. duration in
  let worker w =
    (* stagger worker phases so the aggregate arrival process is even *)
    let next = ref (t_start +. (interval *. float_of_int w /. float_of_int workers)) in
    let i = ref w in
    while Unix.gettimeofday () < t_end do
      let now = Unix.gettimeofday () in
      if now < !next then Unix.sleepf (min (!next -. now) (t_end -. now));
      if Unix.gettimeofday () < t_end then begin
        let body = bodies.(!i mod Array.length bodies) in
        i := !i + workers;
        let t0 = Unix.gettimeofday () in
        (match post body with
        | resp ->
            let dt = Unix.gettimeofday () -. t0 in
            if resp.Serve.Client.status = 200 then begin
              Atomic.incr completed;
              Mutex.lock lat_lock;
              lats := dt :: !lats;
              Mutex.unlock lat_lock
            end
            else Atomic.incr errors
        | exception _ -> Atomic.incr errors);
        next := !next +. interval
      end
    done
  in
  let threads = List.init workers (fun w -> Thread.create worker w) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t_start in
  Serve.Server.stop server;
  Serve.Engine.stop engine;
  let sorted = Array.of_list !lats in
  Array.sort compare sorted;
  let completed = Atomic.get completed and errors = Atomic.get errors in
  let sustained = float_of_int completed /. wall in
  let p50 = percentile sorted 0.50 and p99 = percentile sorted 0.99 in
  let snap = Liger_obs.Metrics.snapshot () in
  let cache_hits =
    Option.value ~default:0.0 (Liger_obs.Metrics.gauge_value snap "serve.cache_hits")
  in
  say "  target                       %12.1f qps\n" qps;
  say "  completed                    %12d ok, %d errors in %.2f s\n" completed errors wall;
  say "  sustained                    %12.1f qps\n" sustained;
  say "  latency p50                  %12.2f ms\n" (1000.0 *. p50);
  say "  latency p99                  %12.2f ms\n" (1000.0 *. p99);
  say "  cache hits                   %12.0f\n" cache_hits;
  say "%s\n%!" (String.make 72 '-');
  {
    B.benchmark = "serve.loopback";
    rev = B.git_rev ();
    date = B.iso8601 (Unix.gettimeofday ());
    jobs = Liger_parallel.Parallel.jobs ();
    metrics =
      [
        ("qps_target", qps);
        ("duration_s", wall);
        ("completed", float_of_int completed);
        ("errors", float_of_int errors);
        ("sustained_qps", sustained);
        ("p50_s", p50);
        ("p99_s", p99);
        ("cache_hits", cache_hits);
      ];
  }

(* Serve gates: the acceptance floor is absolute (sustain the target with a
   sane tail), the history gate is relative (no silent throughput slide). *)
let serve_regression_failures ~history (r : B.record) =
  let failures = ref [] in
  let metric name = List.assoc_opt name r.B.metrics in
  (match (metric "qps_target", metric "sustained_qps") with
  | Some target, Some sustained when target >= 50.0 && sustained < 50.0 ->
      failures :=
        Printf.sprintf "sustained %.1f qps < 50 qps floor (target %.0f)" sustained target
        :: !failures
  | _ -> ());
  (match metric "p99_s" with
  | Some p99 when p99 >= 0.25 ->
      failures := Printf.sprintf "p99 latency %.1f ms >= 250 ms" (1000.0 *. p99) :: !failures
  | _ -> ());
  (match history with
  | Some path when Sys.file_exists path -> (
      match B.load path with
      | Error msg ->
          Printf.eprintf "warning: cannot read %s for regression check: %s\n" path msg
      | Ok records -> (
          match B.last_matching ~jobs:r.B.jobs ~benchmark:r.B.benchmark records with
          | None -> ()
          | Some prev -> (
              match
                ( List.assoc_opt "sustained_qps" prev.B.metrics,
                  List.assoc_opt "sustained_qps" r.B.metrics )
              with
              | Some before, Some after when before > 0.0 ->
                  let drop = (before -. after) /. before in
                  let threshold = regression_threshold () in
                  if drop > threshold then
                    failures :=
                      Printf.sprintf
                        "sustained_qps dropped %.0f%% vs %s@%s (%.2f -> %.2f, \
                         threshold %.0f%%)"
                        (100.0 *. drop) prev.B.date prev.B.rev before after
                        (100.0 *. threshold)
                      :: !failures
              | _ -> ())))
  | _ -> ());
  List.rev !failures

(* --check-regression: compare the fresh record against the most recent
   history record with the same benchmark and job count.  Two gates:
   speedup below 1 with jobs > 1 (parallelism actively hurting — on a
   single-core host the bench runs with jobs=1 and this gate is moot), and
   parallel throughput dropping by more than LIGER_REGRESSION_THRESHOLD
   (default 0.3, i.e. 30%) versus the previous run. *)

let regression_failures ~history (r : B.record) =
  let failures = ref [] in
  let speedup = try List.assoc "speedup" r.B.metrics with Not_found -> 1.0 in
  (* A jobs<=1 record can never trip the speedup gate, so a run configured
     that way silently waives the check it claims to enforce.  Fail loudly
     instead of letting the gate rot (the CI bench must pass --jobs 2). *)
  if r.B.jobs <= 1 then
    failures :=
      Printf.sprintf
        "parallel benchmark recorded at jobs=%d: the speedup >= 1 gate cannot engage; \
         run with --jobs 2 (or more) so --check-regression checks what it claims to"
        r.B.jobs
      :: !failures
  else if speedup < 1.0 then
    if r.B.jobs > Domain.recommended_domain_count () then
      (* oversubscribed host (e.g. a 1-core CI runner asked for 2 domains):
         a speedup below 1 is expected there and not a code regression, so
         warn — the throughput-drop gate below still applies *)
      Printf.eprintf
        "warning: speedup %.2fx < 1.00x with %d jobs on %d core(s) — oversubscribed \
         host, speedup gate waived (throughput gate still active)\n%!"
        speedup r.B.jobs
        (Domain.recommended_domain_count ())
    else
      failures :=
        Printf.sprintf "speedup %.2fx < 1.00x with %d jobs (parallelism is hurting)" speedup
          r.B.jobs
        :: !failures;
  (match history with
  | Some path when Sys.file_exists path -> (
      match B.load path with
      | Error msg -> Printf.eprintf "warning: cannot read %s for regression check: %s\n" path msg
      | Ok records -> (
          match B.last_matching ~jobs:r.B.jobs ~benchmark:r.B.benchmark records with
          | None -> ()
          | Some prev -> (
              match
                ( List.assoc_opt "par_methods_per_second" prev.B.metrics,
                  List.assoc_opt "par_methods_per_second" r.B.metrics )
              with
              | Some before, Some after when before > 0.0 ->
                  let drop = (before -. after) /. before in
                  let threshold = regression_threshold () in
                  if drop > threshold then
                    failures :=
                      Printf.sprintf
                        "par_methods_per_second dropped %.0f%% vs %s@%s (%.2f -> %.2f, \
                         threshold %.0f%%)"
                        (100.0 *. drop) prev.B.date prev.B.rev before after
                        (100.0 *. threshold)
                      :: !failures
              | _ -> ())))
  | _ -> ());
  List.rev !failures

(* --check-train-regression: gate on the training-throughput records that
   [liger train --history] appends.  For each train.* benchmark key
   (benchmark, jobs, batch_size — older records without a batch_size count
   as 1), the newest record's examples_per_second must not drop more than
   the threshold below the previous matching record.  An empty history is a
   defeated gate, not a pass. *)

let train_regression_failures ~history =
  let failures = ref [] in
  (match history with
  | None ->
      failures :=
        "--check-train-regression needs --history FILE (no history, nothing checked)"
        :: !failures
  | Some path when not (Sys.file_exists path) ->
      failures := Printf.sprintf "history %s does not exist: train gate cannot engage" path :: !failures
  | Some path -> (
      match B.load path with
      | Error msg -> failures := Printf.sprintf "cannot read %s: %s" path msg :: !failures
      | Ok records ->
          let train = List.filter (fun r -> String.length r.B.benchmark >= 6
                                            && String.sub r.B.benchmark 0 6 = "train.") records in
          if train = [] then
            failures :=
              Printf.sprintf "no train.* records in %s: train gate cannot engage" path
              :: !failures
          else begin
            let metric_int name default r =
              match List.assoc_opt name r.B.metrics with
              | Some v -> int_of_float v
              | None -> default
            in
            (* throughput is only comparable between runs of the same shape:
               same benchmark, pool size, batch size, and training scale
               (epochs × corpus size); legacy records missing a field get a
               sentinel so they only ever match each other *)
            let key r =
              ( r.B.benchmark,
                r.B.jobs,
                metric_int "batch_size" 1 r,
                metric_int "epochs" (-1) r,
                metric_int "corpus_n" (-1) r )
            in
            let keys = List.sort_uniq compare (List.map key train) in
            List.iter
              (fun k ->
                match List.rev (List.filter (fun r -> key r = k) train) with
                | latest :: prev :: _ -> (
                    match
                      ( List.assoc_opt "examples_per_second" prev.B.metrics,
                        List.assoc_opt "examples_per_second" latest.B.metrics )
                    with
                    | Some before, Some after when before > 0.0 ->
                        let drop = (before -. after) /. before in
                        let threshold = regression_threshold () in
                        let bench, jobs, bs, _, _ = k in
                        if drop > threshold then
                          failures :=
                            Printf.sprintf
                              "%s (jobs=%d, batch=%d): examples_per_second dropped \
                               %.0f%% vs %s@%s (%.2f -> %.2f, threshold %.0f%%)"
                              bench jobs bs (100.0 *. drop) prev.B.date prev.B.rev before
                              after (100.0 *. threshold)
                            :: !failures
                    | _ -> ())
                | _ -> ())
              keys
          end));
  List.rev !failures

(* ------------------------------------------------------------------ *)
(* Argument parsing: unknown or contradictory flags are an error        *)
(* ------------------------------------------------------------------ *)

let usage () =
  prerr_endline
    "usage: bench/main.exe [--no-micro | --micro-only] [--jobs N] [--trace FILE] \
     [--metrics-out FILE] [--profile] [--history FILE] [--check-regression]";
  prerr_endline
    "       bench/main.exe serve [--qps N] [--duration S] [--history FILE] \
     [--check-regression]";
  prerr_endline "  serve             loopback load benchmark against a real liger serve stack:";
  prerr_endline "                    paced POST /embed at --qps (default 50) for --duration";
  prerr_endline "                    seconds (default 10); records serve.loopback (sustained";
  prerr_endline "                    qps, p50/p99) and, under --check-regression, gates on the";
  prerr_endline "                    50 qps / 250 ms p99 floors and the history threshold";
  prerr_endline "  --no-micro        run the experiments without the Bechamel microbenches";
  prerr_endline "  --micro-only      run only the Bechamel microbenches";
  prerr_endline "  --jobs N          run the parallel corpus-generation benchmark on N domains";
  prerr_endline "                    (alone: only that benchmark; with other flags: those too)";
  prerr_endline "  --trace FILE      write a Chrome trace_event JSON (chrome://tracing / Perfetto)";
  prerr_endline "  --metrics-out FILE  write a metrics snapshot JSON on exit";
  prerr_endline "  --profile         enable the model profiler (per-op FLOPs, per-layer timings)";
  prerr_endline "  --history FILE    append the parallel benchmark's record to a JSONL history";
  prerr_endline "                    (diff runs with 'liger stats --diff FILE')";
  prerr_endline "  --check-regression  exit 1 if the parallel benchmark regressed (speedup < 1";
  prerr_endline "                    with jobs > 1, or throughput down > LIGER_REGRESSION_THRESHOLD";
  prerr_endline "                    vs the previous matching history record; default 0.3).";
  prerr_endline "                    Recording at jobs <= 1 fails loudly: it defeats the gate";
  prerr_endline "  --check-train-regression  exit 1 if the newest train.* record in --history FILE";
  prerr_endline "                    has examples_per_second down > the threshold vs the previous";
  prerr_endline "                    record with the same benchmark, jobs, and batch_size";
  exit 2

type opts = {
  no_micro : bool;
  micro_only : bool;
  jobs : int option;
  trace_out : string option;
  metrics_out : string option;
  profile : bool;
  history : string option;
  check_regression : bool;
  check_train_regression : bool;
  serve_mode : bool;
  qps : float;
  duration : float;
}

let () =
  let rec parse o = function
    | [] -> o
    | "serve" :: rest -> parse { o with serve_mode = true } rest
    | "--no-micro" :: rest -> parse { o with no_micro = true } rest
    | "--micro-only" :: rest -> parse { o with micro_only = true } rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> parse { o with jobs = Some n } rest
        | _ ->
            Printf.eprintf "error: --jobs expects a positive integer, got %S\n" n;
            usage ())
    | "--qps" :: n :: rest -> (
        match float_of_string_opt n with
        | Some q when q > 0.0 -> parse { o with qps = q } rest
        | _ ->
            Printf.eprintf "error: --qps expects a positive number, got %S\n" n;
            usage ())
    | "--duration" :: n :: rest -> (
        match float_of_string_opt n with
        | Some d when d > 0.0 -> parse { o with duration = d } rest
        | _ ->
            Printf.eprintf "error: --duration expects a positive number, got %S\n" n;
            usage ())
    | "--trace" :: path :: rest -> parse { o with trace_out = Some path } rest
    | "--metrics-out" :: path :: rest -> parse { o with metrics_out = Some path } rest
    | "--profile" :: rest -> parse { o with profile = true } rest
    | "--history" :: path :: rest -> parse { o with history = Some path } rest
    | "--check-regression" :: rest -> parse { o with check_regression = true } rest
    | "--check-train-regression" :: rest ->
        parse { o with check_train_regression = true } rest
    | [ (("--jobs" | "--qps" | "--duration" | "--trace" | "--metrics-out" | "--history")
        as flag) ] ->
        Printf.eprintf "error: %s expects an argument\n" flag;
        usage ()
    | arg :: _ ->
        Printf.eprintf "error: unknown argument %S\n" arg;
        usage ()
  in
  let o =
    parse
      { no_micro = false; micro_only = false; jobs = None; trace_out = None;
        metrics_out = None; profile = false; history = None; check_regression = false;
        check_train_regression = false; serve_mode = false; qps = 50.0; duration = 10.0 }
      (List.tl (Array.to_list Sys.argv))
  in
  if o.no_micro && o.micro_only then begin
    prerr_endline "error: --no-micro and --micro-only together would run nothing";
    usage ()
  end;
  Obs.init_logging ();
  Obs.init ?metrics_out:o.metrics_out ?trace_out:o.trace_out ~profile:o.profile ();
  (match o.jobs with Some n -> Liger_parallel.Parallel.set_jobs n | None -> ());
  if o.serve_mode then begin
    let record = run_serve_bench ~qps:o.qps ~duration:o.duration in
    let failures =
      if o.check_regression then serve_regression_failures ~history:o.history record
      else []
    in
    (match o.history with
    | Some path ->
        B.append ~path record;
        say "benchmark record appended to %s\n%!" path
    | None -> ());
    Obs.print_report ();
    if failures <> [] then begin
      prerr_endline "REGRESSION CHECK FAILED:";
      List.iter (fun f -> Printf.eprintf "  - %s\n" f) failures;
      exit 1
    end;
    exit 0
  end;
  if o.check_regression && o.jobs = None then begin
    (* without --jobs no parallel record is produced, so the "check" would
       vacuously pass — refuse rather than pretend the gate ran *)
    prerr_endline "error: --check-regression requires --jobs N (nothing would be checked)";
    usage ()
  end;
  (* --jobs alone means: only the parallel benchmark; --check-train-regression
     alone is a pure history check and runs no benchmark at all *)
  let only_parbench = o.jobs <> None && (not o.no_micro) && not o.micro_only in
  let only_traincheck =
    o.check_train_regression && o.jobs = None && (not o.no_micro) && not o.micro_only
  in
  if (not o.micro_only) && (not only_parbench) && not only_traincheck then run_experiments ();
  if (not o.no_micro) && (not only_parbench) && not only_traincheck then run_micro ();
  let failures =
    match o.jobs with
    | None -> []
    | Some n ->
        let record = run_parallel_bench ~jobs:n in
        (* gate against the PREVIOUS matching record, then append this run *)
        let failures =
          if o.check_regression then regression_failures ~history:o.history record else []
        in
        (match o.history with
        | Some path ->
            B.append ~path record;
            say "benchmark record appended to %s\n%!" path
        | None -> ());
        failures
  in
  let failures =
    failures
    @ (if o.check_train_regression then train_regression_failures ~history:o.history else [])
  in
  if not only_traincheck then Obs.print_report ();
  if failures <> [] then begin
    prerr_endline "REGRESSION CHECK FAILED:";
    List.iter (fun f -> Printf.eprintf "  - %s\n" f) failures;
    exit 1
  end;
  if o.check_train_regression then say "train regression check passed\n%!"
