(* Method-name prediction end to end on a small generated corpus: builds a
   Java-med-style corpus, trains LiGer, and prints predictions next to the
   gold names for a handful of test methods.

   Run with: dune exec examples/method_naming.exe *)

open Liger_tensor
open Liger_core
open Liger_dataset
open Liger_eval
open Liger_lang

let () =
  let rng = Rng.create 2024 in
  Printf.printf "Building corpus (generate -> filter -> trace -> encode)...\n%!";
  let enc =
    { Common.default_enc_config with Common.max_paths = 4; max_concrete = 3; max_steps = 16 }
  in
  let corpus = Pipeline.build_naming ~enc_config:enc rng ~name:"example" ~n:150 in
  let n_train, n_valid, n_test = Pipeline.sizes corpus in
  Printf.printf "corpus: %d train / %d valid / %d test methods (vocab %d)\n%!" n_train
    n_valid n_test
    (Liger_trace.Vocab.size corpus.Pipeline.vocab);

  let wrapper, _ =
    Zoo.liger
      ~config:{ Liger_model.default_config with Liger_model.dim = 16 }
      ~vocab:corpus.Pipeline.vocab Liger_model.Naming
  in
  Printf.printf "Training LiGer (%d params)...\n%!"
    (Liger_tensor.Param.num_params wrapper.Train.store);
  let history =
    Train.fit
      ~options:{ Train.default_options with Train.epochs = 10 }
      (Rng.create 7) wrapper ~train:corpus.Pipeline.train ~valid:corpus.Pipeline.valid
  in
  Printf.printf "best validation epoch: %d\n\n" history.Train.best_epoch;

  let result = Train.eval_naming wrapper corpus.Pipeline.test in
  Printf.printf "test metrics: %s\n\n" (Fmt.str "%a" Metrics.pp_prf result.Train.prf);

  Printf.printf "%-28s %-28s\n" "gold name" "predicted sub-tokens";
  Printf.printf "%s\n" (String.make 56 '-');
  List.iteri
    (fun i (ex : Common.enc_example) ->
      if i < 12 then begin
        let predicted =
          match wrapper.Train.predict ex with
          | Train.Subtokens toks -> String.concat " " toks
          | Train.Class _ -> "?"
        in
        Printf.printf "%-28s %-28s\n" ex.Common.meth.Ast.mname predicted
      end)
    corpus.Pipeline.test
