(* Quickstart: the library's pipeline end to end on one program.

   1. Parse a MiniJava method.
   2. Generate executions with the feedback-directed test generator.
   3. Group them into blended traces (symbolic + concrete, Definition 5.1).
   4. Print a Figure 2-style rendering of one execution.
   5. Embed the program with an (untrained) LiGer encoder.

   Run with: dune exec examples/quickstart.exe *)

open Liger_lang
open Liger_trace
open Liger_tensor
open Liger_testgen
open Liger_core

let source =
  {|
method sortArray(int[] a) : int[] {
  int swapbit = 1;
  while (swapbit != 0) {
    swapbit = 0;
    for (int i = 0; i < a.length - 1; i++) {
      if (a[i + 1] < a[i]) {
        int tmp = a[i];
        a[i] = a[i + 1];
        a[i + 1] = tmp;
        swapbit = 1;
      }
    }
  }
  return a;
}
|}

let () =
  let meth = Parser.method_of_string source in
  Printf.printf "== Parsed method '%s' (%d statements) ==\n%s\n" meth.Ast.mname
    (Ast.stmt_count meth) (Pretty.meth_to_string meth);

  (* collect executions: symbolic-execution-directed + random with feedback *)
  let rng = Rng.create 42 in
  let result = Feedback.generate rng meth in
  Printf.printf "== Test generation ==\n";
  Printf.printf "attempts: %d, kept traces: %d, crashes: %d\n\n"
    result.Feedback.n_attempts
    (List.length result.Feedback.traces)
    result.Feedback.n_crashes;

  (* group into blended traces *)
  let blended = Feedback.blended meth result in
  Printf.printf "== Blended traces ==\n";
  Printf.printf "%d distinct program paths; %d total concrete executions\n\n"
    (List.length blended)
    (Blended.total_executions blended);

  (* Figure 2-style display of the shortest execution *)
  let shortest =
    List.fold_left
      (fun best tr ->
        if Exec_trace.length tr < Exec_trace.length best then tr else best)
      (List.hd result.Feedback.traces)
      result.Feedback.traces
  in
  Printf.printf "== One execution (input: %s) ==\n%s\n"
    (String.concat ", " (List.map Value.to_display shortest.Exec_trace.input))
    (Exec_trace.to_display meth shortest);

  (* embed the program *)
  let enc = Common.default_enc_config in
  let vocab = Vocab.create () in
  Common.register_example enc vocab blended (Common.Name meth.Ast.mname);
  Vocab.freeze vocab;
  let ex = Common.encode_example enc vocab meth blended (Common.Name meth.Ast.mname) in
  let model = Liger_model.create vocab Liger_model.Naming in
  let embedding = Liger_model.embed_program model ex in
  Printf.printf "== Program embedding (untrained LiGer encoder, dim %d) ==\n[%s]\n"
    (Array.length embedding)
    (String.concat "; "
       (List.map (Printf.sprintf "%.3f") (Array.to_list embedding)));
  Printf.printf "\nNext steps: see examples/method_naming.ml for training, and\n";
  Printf.printf "bench/main.ml for the paper's full evaluation.\n"
