examples/sorting_semantics.mli:
