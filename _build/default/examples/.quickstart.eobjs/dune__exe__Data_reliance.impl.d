examples/data_reliance.ml: Common Liger_core Liger_dataset Liger_eval Liger_model Liger_tensor Metrics Pipeline Printf Rng Train Zoo
