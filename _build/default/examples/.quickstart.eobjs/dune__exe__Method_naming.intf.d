examples/method_naming.mli:
