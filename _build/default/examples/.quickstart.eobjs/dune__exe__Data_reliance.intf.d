examples/data_reliance.mli:
