examples/quickstart.mli:
