examples/method_naming.ml: Ast Common Fmt Liger_core Liger_dataset Liger_eval Liger_lang Liger_model Liger_tensor Liger_trace List Metrics Pipeline Printf Rng String Train Zoo
