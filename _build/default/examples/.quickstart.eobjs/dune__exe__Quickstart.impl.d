examples/quickstart.ml: Array Ast Blended Common Exec_trace Feedback Liger_core Liger_lang Liger_model Liger_tensor Liger_testgen Liger_trace List Parser Pretty Printf Rng String Value Vocab
