(* The paper's motivating example (Figures 1 and 2): three sorting routines
   where surface syntax misleads and runtime behaviour tells the truth.

   - sortI  : Bubble Sort   (the paper's Figure 1a)
   - sortII : Insertion Sort (Figure 1b) - syntactically close to sortI
   - sortIII: Bubble Sort   (Figure 1c) - syntactically distant from sortI

   We show (1) static AST-path similarity ranks sortII closest to sortI,
   (2) the state traces of sortI and sortIII coincide on the paper's input
   while sortII's differs, and (3) LiGer embeddings trained on the sorting
   problem place the two bubble sorts together.

   Run with: dune exec examples/sorting_semantics.exe *)

open Liger_lang
open Liger_trace
open Liger_tensor
open Liger_testgen
open Liger_core
open Liger_baselines

let sort1_src =
  {|
method sortI(int[] a) : int[] {
  int left = 0;
  int right = a.length - 1;
  for (int i = right; i > left; i--) {
    for (int j = left; j < i; j++) {
      if (a[j] > a[j + 1]) {
        int tmp = a[j];
        a[j] = a[j + 1];
        a[j + 1] = tmp;
      }
    }
  }
  return a;
}
|}

let sort2_src =
  {|
method sortII(int[] a) : int[] {
  int left = 0;
  int right = a.length;
  for (int i = left; i < right; i++) {
    for (int j = i - 1; j >= left; j--) {
      if (a[j] > a[j + 1]) {
        int tmp = a[j];
        a[j] = a[j + 1];
        a[j + 1] = tmp;
      }
    }
  }
  return a;
}
|}

let sort3_src =
  {|
method sortIII(int[] a) : int[] {
  int swapbit = 1;
  while (swapbit != 0) {
    swapbit = 0;
    for (int i = 0; i < a.length - 1; i++) {
      if (a[i + 1] < a[i]) {
        int tmp = a[i];
        a[i] = a[i + 1];
        a[i + 1] = tmp;
      }
    }
  }
  return a;
}
|}

(* Jaccard similarity over bags of AST path-context tokens: a proxy for what
   a static model sees. *)
let static_similarity m1 m2 =
  let bag m =
    Ast_paths.extract (Rng.create 7) (Encode.meth_tree m)
    |> List.map (fun c -> Ast_paths.path_token c)
    |> List.sort_uniq compare
  in
  let b1 = bag m1 and b2 = bag m2 in
  let inter = List.filter (fun x -> List.mem x b2) b1 in
  let union = List.sort_uniq compare (b1 @ b2) in
  float_of_int (List.length inter) /. float_of_int (List.length union)

(* array-state sequence on a given input: A's successive contents *)
let array_states meth input =
  let tr = Exec_trace.collect meth [ Value.VArr (Array.copy input) ] in
  Exec_trace.state_trace tr
  |> List.filter_map (fun env ->
         match List.assoc_opt "a" env with
         | Some (Some (Value.VArr arr)) -> Some (Array.to_list arr)
         | _ -> None)
  |> List.fold_left (* dedup consecutive *)
       (fun acc st -> match acc with s :: _ when s = st -> acc | _ -> st :: acc)
       []
  |> List.rev

let cosine a b =
  let dot = ref 0.0 and na = ref 0.0 and nb = ref 0.0 in
  Array.iteri
    (fun i x ->
      dot := !dot +. (x *. b.(i));
      na := !na +. (x *. x);
      nb := !nb +. (b.(i) *. b.(i)))
    a;
  !dot /. (sqrt !na *. sqrt !nb +. 1e-12)

let () =
  let m1 = Parser.method_of_string sort1_src in
  let m2 = Parser.method_of_string sort2_src in
  let m3 = Parser.method_of_string sort3_src in

  Printf.printf "== 1. What a static model sees (AST path-context Jaccard) ==\n";
  Printf.printf "sim(sortI, sortII)  = %.3f   <- insertion sort, syntactically close\n"
    (static_similarity m1 m2);
  Printf.printf "sim(sortI, sortIII) = %.3f   <- the other bubble sort, syntactically far\n\n"
    (static_similarity m1 m3);

  Printf.printf "== 2. What the dynamic dimension sees (array-state sequences) ==\n";
  let input = [| 8; 5; 1; 4; 3 |] in
  let s1 = array_states m1 input and s2 = array_states m2 input and s3 = array_states m3 input in
  Printf.printf "input A = [8, 5, 1, 4, 3] (the paper's Figure 2 input)\n";
  Printf.printf "sortI and sortIII produce identical array-state sequences: %b\n" (s1 = s3);
  Printf.printf "sortI and sortII produce identical array-state sequences:  %b\n\n" (s1 = s2);

  Printf.printf "== 3. LiGer embeddings after training on the sorting problem ==\n";
  (* tiny classification setup: bubble vs insertion vs selection variants *)
  let rng = Rng.create 11 in
  let enc = { Common.default_enc_config with Common.max_paths = 4; max_concrete = 3; max_steps = 16 } in
  let budget = { Feedback.max_attempts = 200; target_paths = 6; per_path = 3; fuel = 8000 } in
  let train_programs =
    List.concat_map
      (fun (src, cls) ->
        List.init 12 (fun _ ->
            let m = Mutate.variant rng (Parser.method_of_string src) in
            (m, cls)))
      [ (sort1_src, 0); (sort2_src, 1); (sort3_src, 0) ]
  in
  let raw =
    List.filter_map
      (fun (m, cls) ->
        let r = Feedback.generate ~budget rng m in
        if r.Feedback.gave_up then None
        else Some (m, Feedback.blended m r, Common.Class cls))
      train_programs
  in
  let vocab = Vocab.create () in
  List.iter (fun (_, b, l) -> Common.register_example enc vocab b l) raw;
  Vocab.freeze vocab;
  let examples = List.map (fun (m, b, l) -> Common.encode_example enc vocab m b l) raw in
  let model =
    Liger_model.create
      ~config:{ Liger_model.default_config with Liger_model.dim = 12 }
      vocab (Liger_model.Classify 2)
  in
  let opt = Optimizer.adam ~lr:3e-3 () in
  let arr = Array.of_list examples in
  for _epoch = 1 to 8 do
    Rng.shuffle rng arr;
    Array.iter
      (fun ex ->
        let tape = Autodiff.tape () in
        let loss, _ = Liger_model.loss model tape ex in
        Autodiff.backward tape loss;
        ignore (Optimizer.clip_grads (Liger_model.store model) ~max_norm:5.0);
        Optimizer.step opt (Liger_model.store model))
      arr
  done;
  (* embed the three pristine programs *)
  let embed m =
    let r = Feedback.generate ~budget rng m in
    let b = Feedback.blended m r in
    let ex = Common.encode_example enc vocab m b (Common.Class 0) in
    Liger_model.embed_program model ex
  in
  let e1 = embed m1 and e2 = embed m2 and e3 = embed m3 in
  Printf.printf "cosine(sortI, sortIII) = %.3f   (same algorithm)\n" (cosine e1 e3);
  Printf.printf "cosine(sortI, sortII)  = %.3f   (different algorithm)\n" (cosine e1 e2);
  if cosine e1 e3 > cosine e1 e2 then
    Printf.printf "\nLiGer groups the two bubble sorts together - the static view did not.\n"
  else
    Printf.printf "\n(at this tiny scale the embedding geometry can fluctuate; rerun with more epochs)\n"
