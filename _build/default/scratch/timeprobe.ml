open Liger_eval
let () =
  let t0 = Unix.gettimeofday () in
  let ctx = Experiments.create_ctx ~scale:Experiments.quick () in
  ctx.Experiments.progress <- (fun s -> Printf.printf "[%.1fs] %s\n%!" (Unix.gettimeofday () -. t0) s);
  let c = Lazy.force ctx.Experiments.med in
  let (a,b,d) = Liger_dataset.Pipeline.sizes c in
  Printf.printf "[%.1fs] med built: %d/%d/%d vocab=%d\n%!" (Unix.gettimeofday () -. t0) a b d (Liger_trace.Vocab.size c.Liger_dataset.Pipeline.vocab);
  let go kind =
    let r = Experiments.run ctx ~corpus:`Med ~kind ~view:Liger_core.Common.full_view in
    Printf.printf "[%.1fs] %-18s F1=%.2f att=%.3f\n%!" (Unix.gettimeofday () -. t0) r.Experiments.model (Experiments.score_of r) r.Experiments.static_attention
  in
  go Experiments.liger_full;
  go Experiments.Dypro_k;
  go Experiments.Code2seq_k;
  go Experiments.Code2vec_k
