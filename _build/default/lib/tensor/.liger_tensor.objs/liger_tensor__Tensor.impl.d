lib/tensor/tensor.ml: Array Fmt Printf Stdlib
