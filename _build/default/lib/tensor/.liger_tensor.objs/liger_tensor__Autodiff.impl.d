lib/tensor/autodiff.ml: Array Lazy List Param Printf Stdlib Tensor
