lib/tensor/param.ml: Array Hashtbl List Rng Tensor
