lib/tensor/optimizer.ml: Array Hashtbl Param Tensor
