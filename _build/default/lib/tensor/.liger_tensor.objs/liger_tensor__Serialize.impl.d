lib/tensor/serialize.ml: Array Fun List Param Printf String Tensor
