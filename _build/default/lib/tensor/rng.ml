(** Deterministic, splittable pseudo-random number generator.

    Every source of randomness in the repository (weight initialization,
    dataset generation, input generation, shuffling) flows through a value of
    type {!t}, so all experiments are reproducible from a single seed.  The
    core generator is xorshift128+ (Vigna, 2014), which is fast and has more
    than enough statistical quality for simulation workloads. *)

type t = { mutable s0 : int64; mutable s1 : int64 }

let splitmix64 seed =
  (* Used to derive well-mixed initial state from small integer seeds. *)
  let z = Int64.add seed 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let s = Int64.of_int seed in
  let s0 = splitmix64 s in
  let s1 = splitmix64 s0 in
  (* xorshift128+ must not start from the all-zero state. *)
  let s1 = if Int64.equal s0 0L && Int64.equal s1 0L then 1L else s1 in
  { s0; s1 }

let next t =
  let x = t.s0 and y = t.s1 in
  t.s0 <- y;
  let x = Int64.logxor x (Int64.shift_left x 23) in
  let x = Int64.logxor (Int64.logxor x y) (Int64.logxor
            (Int64.shift_right_logical x 17) (Int64.shift_right_logical y 26)) in
  t.s1 <- x;
  Int64.add x y

(** [split t] derives an independent generator without disturbing [t]'s
    stream beyond one draw; useful for giving each sub-task its own stream. *)
let split t =
  let seed = next t in
  let s0 = splitmix64 seed in
  let s1 = splitmix64 s0 in
  let s1 = if Int64.equal s0 0L && Int64.equal s1 0L then 1L else s1 in
  { s0; s1 }

let bits53 t = Int64.to_float (Int64.shift_right_logical (next t) 11)

(** [float t bound] is uniform in [0, bound). *)
let float t bound = bits53 t /. 9007199254740992.0 *. bound

(** [uniform t lo hi] is uniform in [lo, hi). *)
let uniform t lo hi = lo +. float t (hi -. lo)

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* shift by 2 so the result fits OCaml's 63-bit int as a non-negative *)
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

(** [int_range t lo hi] is uniform in [lo, hi] inclusive. *)
let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

(** Standard normal via Box-Muller. *)
let gaussian t =
  let u1 = Stdlib.max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(** In-place Fisher-Yates shuffle. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** [choose t arr] picks a uniformly random element. Requires nonempty. *)
let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_list t l = choose t (Array.of_list l)

(** [sample_without_replacement t k arr] returns [k] distinct elements in
    random order (all of [arr] if [k >= length]). *)
let sample_without_replacement t k arr =
  let a = Array.copy arr in
  shuffle t a;
  Array.sub a 0 (Stdlib.min k (Array.length a))

(** Bernoulli draw with probability [p]. *)
let bernoulli t p = float t 1.0 < p
