(** Sub-token utilities for method names.

    The paper's metric (§6.1.1) scores predictions "over case insensitive
    sub-tokens": [computeDiff] splits into [compute] and [diff], order does
    not matter, and duplicates are compared as multisets. *)

let is_upper c = c >= 'A' && c <= 'Z'
let lower c = if is_upper c then Char.chr (Char.code c + 32) else c

(** Split a camelCase / snake_case identifier into lowercase sub-tokens:
    [split "computeFileDiff" = ["compute"; "file"; "diff"]]. *)
let split name =
  let n = String.length name in
  let out = ref [] in
  let buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    let c = name.[i] in
    if c = '_' then flush ()
    else begin
      if is_upper c then flush ();
      Buffer.add_char buf (lower c)
    end
  done;
  flush ();
  List.rev !out

(** Join sub-tokens back into a camelCase name. *)
let join = function
  | [] -> ""
  | first :: rest ->
      first
      ^ String.concat ""
          (List.map
             (fun s ->
               if s = "" then ""
               else String.make 1 (Char.uppercase_ascii s.[0])
                    ^ String.sub s 1 (String.length s - 1))
             rest)

(** Multiset intersection size between two sub-token lists — the numerator
    of both precision and recall in the paper's metric. *)
let overlap predicted actual =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun t -> Hashtbl.replace counts t (1 + Option.value ~default:0 (Hashtbl.find_opt counts t)))
    actual;
  List.fold_left
    (fun acc t ->
      match Hashtbl.find_opt counts t with
      | Some n when n > 0 ->
          Hashtbl.replace counts t (n - 1);
          acc + 1
      | _ -> acc)
    0 predicted
