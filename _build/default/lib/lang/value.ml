(** Runtime values of MiniJava.

    Arrays are mutable (aliasing matters for the sorting workloads); records
    are flat maps from field name to primitive value, mutable via
    {!set_field}.  [show]/[equal] come from ppx_deriving and are used heavily
    by trace encoding and tests. *)

type t =
  | VInt of int
  | VBool of bool
  | VStr of string
  | VArr of int array
  | VObj of (string * t) array  (* fields hold primitives only *)
[@@deriving show { with_path = false }, eq, ord]

let type_of = function
  | VInt _ -> Ast.Tint
  | VBool _ -> Ast.Tbool
  | VStr _ -> Ast.Tstring
  | VArr _ -> Ast.Tarray
  | VObj _ -> Ast.Tobj

(** Deep copy: array and record values are snapshotted so that stored program
    states are immune to later mutation (Definition 2.1 requires the state
    {e at that step}). *)
let rec snapshot = function
  | (VInt _ | VBool _ | VStr _) as v -> v
  | VArr a -> VArr (Array.copy a)
  | VObj fields -> VObj (Array.map (fun (n, v) -> (n, snapshot v)) fields)

let get_field v name =
  match v with
  | VObj fields -> (
      match Array.find_opt (fun (n, _) -> n = name) fields with
      | Some (_, v) -> Some v
      | None -> None)
  | _ -> None

let set_field v name x =
  match v with
  | VObj fields ->
      let found = ref false in
      Array.iteri
        (fun i (n, _) ->
          if n = name then begin
            fields.(i) <- (n, x);
            found := true
          end)
        fields;
      !found
  | _ -> false

(** Render a value the way Figure 2 renders states, e.g. [[8, 5, 1, 4, 3]]. *)
let rec to_display = function
  | VInt n -> string_of_int n
  | VBool b -> string_of_bool b
  | VStr s -> Printf.sprintf "%S" s
  | VArr a ->
      Printf.sprintf "[%s]"
        (String.concat ", " (Array.to_list (Array.map string_of_int a)))
  | VObj fields ->
      Printf.sprintf "{%s}"
        (String.concat "; "
           (Array.to_list
              (Array.map (fun (n, v) -> Printf.sprintf "%s=%s" n (to_display v)) fields)))

(** Flatten a value into its primitive constituents, in order — the paper's
    [attr(v)] array for object types (§5.1.1).  Primitives flatten to a
    singleton. *)
let rec flatten = function
  | (VInt _ | VBool _ | VStr _) as v -> [ v ]
  | VArr a -> Array.to_list (Array.map (fun n -> VInt n) a)
  | VObj fields ->
      List.concat_map (fun (_, v) -> flatten v) (Array.to_list fields)
