(** Instrumented interpreter for MiniJava.

    [run] executes a method on concrete argument values under a fuel budget
    and invokes [on_step] after every executed statement with the statement
    id, the branch outcome (for conditions) and a deep snapshot of the
    program state — precisely the instrumentation the paper obtains by
    rewriting Java/C# sources (§6).  The sequence of [on_step] calls is an
    execution trace in the sense of Definition 2.1. *)

type outcome =
  | Returned of Value.t
  | Timeout          (* fuel exhausted: the Randoop-style filter's "too long" *)
  | Crashed of string  (* runtime error: division by zero, bad index, ... *)

(** One executed step: which statement ran, which way a condition went
    ([None] for non-conditions), and the post-state as an assignment of
    every variable in the method's fixed layout ([None] = not yet bound,
    the paper's ⊥). *)
type step = {
  step_sid : int;
  step_branch : bool option;
  step_env : (string * Value.t option) list;
}

exception Runtime_error of string
exception Out_of_fuel

type env = {
  tbl : (string, Value.t) Hashtbl.t;
  layout : string list;  (* fixed variable order, params first *)
  mutable fuel : int;
  on_step : step -> unit;
}

let lookup env x =
  match Hashtbl.find_opt env.tbl x with
  | Some v -> v
  | None -> raise (Runtime_error ("unbound variable " ^ x))

let int_of = function
  | Value.VInt n -> n
  | v -> raise (Runtime_error ("expected int, got " ^ Value.to_display v))

let bool_of = function
  | Value.VBool b -> b
  | v -> raise (Runtime_error ("expected bool, got " ^ Value.to_display v))

let str_of = function
  | Value.VStr s -> s
  | v -> raise (Runtime_error ("expected string, got " ^ Value.to_display v))

let arr_of = function
  | Value.VArr a -> a
  | v -> raise (Runtime_error ("expected array, got " ^ Value.to_display v))

let check_index a i =
  if i < 0 || i >= Array.length a then
    raise (Runtime_error (Printf.sprintf "index %d out of bounds (length %d)" i
                            (Array.length a)))

let builtin name args =
  match (name, args) with
  | "abs", [ Value.VInt n ] -> Value.VInt (abs n)
  | "min", [ Value.VInt a; Value.VInt b ] -> Value.VInt (min a b)
  | "max", [ Value.VInt a; Value.VInt b ] -> Value.VInt (max a b)
  | "pow", [ Value.VInt b; Value.VInt e ] ->
      if e < 0 then raise (Runtime_error "pow: negative exponent");
      let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
      Value.VInt (go 1 e)
  | "substring", [ Value.VStr s; Value.VInt start; Value.VInt len ] ->
      if start < 0 || len < 0 || start + len > String.length s then
        raise (Runtime_error "substring: out of range");
      Value.VStr (String.sub s start len)
  | "charAt", [ Value.VStr s; Value.VInt i ] ->
      if i < 0 || i >= String.length s then
        raise (Runtime_error "charAt: out of range");
      Value.VStr (String.make 1 s.[i])
  | "indexOf", [ Value.VStr s; Value.VStr sub ] ->
      let n = String.length s and m = String.length sub in
      let rec find i =
        if i + m > n then -1
        else if String.sub s i m = sub then i
        else find (i + 1)
      in
      Value.VInt (find 0)
  | "ord", [ Value.VStr s ] ->
      if String.length s <> 1 then raise (Runtime_error "ord: expected 1-char string");
      Value.VInt (Char.code s.[0])
  | "chr", [ Value.VInt n ] ->
      if n < 0 || n > 255 then raise (Runtime_error "chr: out of range");
      Value.VStr (String.make 1 (Char.chr n))
  | "toString", [ Value.VInt n ] -> Value.VStr (string_of_int n)
  | _ ->
      raise
        (Runtime_error
           (Printf.sprintf "unknown builtin %s/%d" name (List.length args)))

let rec eval env (e : Ast.expr) : Value.t =
  match e with
  | Ast.Int n -> Value.VInt n
  | Ast.Bool b -> Value.VBool b
  | Ast.Str s -> Value.VStr s
  | Ast.Var x -> lookup env x
  | Ast.Unop (Ast.Neg, a) -> Value.VInt (-int_of (eval env a))
  | Ast.Unop (Ast.Not, a) -> Value.VBool (not (bool_of (eval env a)))
  | Ast.Binop (Ast.And, a, b) ->
      Value.VBool (bool_of (eval env a) && bool_of (eval env b))
  | Ast.Binop (Ast.Or, a, b) ->
      Value.VBool (bool_of (eval env a) || bool_of (eval env b))
  | Ast.Binop (op, a, b) -> eval_binop op (eval env a) (eval env b)
  | Ast.Index (a, i) ->
      let arr = arr_of (eval env a) in
      let i = int_of (eval env i) in
      check_index arr i;
      Value.VInt arr.(i)
  | Ast.Field (a, f) -> (
      let v = eval env a in
      match Value.get_field v f with
      | Some x -> x
      | None -> raise (Runtime_error ("no field " ^ f ^ " in " ^ Value.to_display v)))
  | Ast.Len a -> (
      match eval env a with
      | Value.VArr arr -> Value.VInt (Array.length arr)
      | Value.VStr s -> Value.VInt (String.length s)
      | v -> raise (Runtime_error ("length of non-sequence " ^ Value.to_display v)))
  | Ast.Call (f, args) -> builtin f (List.map (eval env) args)
  | Ast.NewArray e ->
      let n = int_of (eval env e) in
      if n < 0 then raise (Runtime_error "new int[n]: negative size");
      if n > 100_000 then raise (Runtime_error "new int[n]: size too large");
      Value.VArr (Array.make n 0)
  | Ast.ArrayLit es -> Value.VArr (Array.of_list (List.map (fun e -> int_of (eval env e)) es))
  | Ast.RecordLit fs ->
      Value.VObj (Array.of_list (List.map (fun (n, e) -> (n, eval env e)) fs))

and eval_binop op a b =
  match (op, a, b) with
  | Ast.Add, Value.VInt x, Value.VInt y -> Value.VInt (x + y)
  | Ast.Add, Value.VStr x, Value.VStr y -> Value.VStr (x ^ y)
  | Ast.Sub, Value.VInt x, Value.VInt y -> Value.VInt (x - y)
  | Ast.Mul, Value.VInt x, Value.VInt y -> Value.VInt (x * y)
  | Ast.Div, Value.VInt _, Value.VInt 0 -> raise (Runtime_error "division by zero")
  | Ast.Div, Value.VInt x, Value.VInt y -> Value.VInt (x / y)
  | Ast.Mod, Value.VInt _, Value.VInt 0 -> raise (Runtime_error "modulo by zero")
  | Ast.Mod, Value.VInt x, Value.VInt y -> Value.VInt (x mod y)
  | Ast.Lt, Value.VInt x, Value.VInt y -> Value.VBool (x < y)
  | Ast.Le, Value.VInt x, Value.VInt y -> Value.VBool (x <= y)
  | Ast.Gt, Value.VInt x, Value.VInt y -> Value.VBool (x > y)
  | Ast.Ge, Value.VInt x, Value.VInt y -> Value.VBool (x >= y)
  | Ast.Eq, x, y -> Value.VBool (Value.equal x y)
  | Ast.Ne, x, y -> Value.VBool (not (Value.equal x y))
  | _ ->
      raise
        (Runtime_error
           (Printf.sprintf "type error: %s on %s and %s" (Pretty.binop_to_string op)
              (Value.to_display a) (Value.to_display b)))

let snapshot_env env =
  List.map
    (fun x ->
      (x, Option.map Value.snapshot (Hashtbl.find_opt env.tbl x)))
    env.layout

let record env sid branch =
  env.fuel <- env.fuel - 1;
  if env.fuel <= 0 then raise Out_of_fuel;
  env.on_step { step_sid = sid; step_branch = branch; step_env = snapshot_env env }

type signal = SNormal | SBreak | SContinue | SReturn of Value.t

let rec exec_block env block =
  match block with
  | [] -> SNormal
  | s :: rest -> (
      match exec_stmt env s with
      | SNormal -> exec_block env rest
      | other -> other)

and exec_stmt env (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.Decl (_, x, e) | Ast.Assign (x, e) ->
      let v = eval env e in
      Hashtbl.replace env.tbl x v;
      record env s.Ast.sid None;
      SNormal
  | Ast.StoreIndex (x, i, e) ->
      let arr = arr_of (lookup env x) in
      let i = int_of (eval env i) in
      check_index arr i;
      arr.(i) <- int_of (eval env e);
      record env s.Ast.sid None;
      SNormal
  | Ast.StoreField (x, f, e) ->
      let v = lookup env x in
      let value = eval env e in
      if not (Value.set_field v f value) then
        raise (Runtime_error ("no field " ^ f ^ " on " ^ x));
      record env s.Ast.sid None;
      SNormal
  | Ast.If (c, then_b, else_b) ->
      let taken = bool_of (eval env c) in
      record env s.Ast.sid (Some taken);
      exec_block env (if taken then then_b else else_b)
  | Ast.While (c, body) ->
      let rec loop () =
        let taken = bool_of (eval env c) in
        record env s.Ast.sid (Some taken);
        if not taken then SNormal
        else
          match exec_block env body with
          | SNormal | SContinue -> loop ()
          | SBreak -> SNormal
          | SReturn v -> SReturn v
      in
      loop ()
  | Ast.For (init, c, update, body) ->
      let (_ : signal) = exec_stmt env init in
      let rec loop () =
        let taken = bool_of (eval env c) in
        record env s.Ast.sid (Some taken);
        if not taken then SNormal
        else
          match exec_block env body with
          | SNormal | SContinue ->
              let (_ : signal) = exec_stmt env update in
              loop ()
          | SBreak -> SNormal
          | SReturn v -> SReturn v
      in
      loop ()
  | Ast.Return e ->
      let v = eval env e in
      record env s.Ast.sid None;
      SReturn v
  | Ast.Break ->
      record env s.Ast.sid None;
      SBreak
  | Ast.Continue ->
      record env s.Ast.sid None;
      SContinue

(** Execute [meth] on [args].  [fuel] bounds the number of executed
    statements; [on_step] observes each one.  Never raises: runtime errors
    and fuel exhaustion are reified in the {!outcome}. *)
let run ?(fuel = 20_000) ?(on_step = fun _ -> ()) (meth : Ast.meth) args =
  if List.length args <> List.length meth.Ast.params then
    Crashed
      (Printf.sprintf "arity mismatch: expected %d arguments, got %d"
         (List.length meth.Ast.params) (List.length args))
  else begin
    let env =
      { tbl = Hashtbl.create 16; layout = Ast.declared_vars meth; fuel; on_step }
    in
    List.iter2
      (fun (_, name) v -> Hashtbl.replace env.tbl name (Value.snapshot v))
      meth.Ast.params args;
    try
      match exec_block env meth.Ast.body with
      | SReturn v -> Returned v
      | SNormal | SBreak | SContinue ->
          Crashed "method ended without returning a value"
    with
    | Runtime_error msg -> Crashed msg
    | Out_of_fuel -> Timeout
  end

(** Convenience wrapper that also collects the steps into a list. *)
let run_traced ?fuel meth args =
  let steps = ref [] in
  let outcome = run ?fuel ~on_step:(fun s -> steps := s :: !steps) meth args in
  (outcome, List.rev !steps)
