(** Pretty-printer producing parseable MiniJava source. *)

let typ_to_string = function
  | Ast.Tint -> "int"
  | Ast.Tbool -> "bool"
  | Ast.Tstring -> "string"
  | Ast.Tarray -> "int[]"
  | Ast.Tobj -> "obj"

let binop_to_string = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.And -> "&&"
  | Ast.Or -> "||"

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec expr_to_string e =
  match e with
  | Ast.Int n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | Ast.Bool b -> string_of_bool b
  | Ast.Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Ast.Var x -> x
  | Ast.Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op)
        (expr_to_string b)
  | Ast.Unop (Ast.Neg, a) -> Printf.sprintf "(-%s)" (expr_to_string a)
  | Ast.Unop (Ast.Not, a) -> Printf.sprintf "(!%s)" (expr_to_string a)
  | Ast.Index (a, i) -> Printf.sprintf "%s[%s]" (expr_to_string a) (expr_to_string i)
  | Ast.Field (a, f) -> Printf.sprintf "%s.%s" (expr_to_string a) f
  | Ast.Len a -> Printf.sprintf "%s.length" (expr_to_string a)
  | Ast.Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))
  | Ast.NewArray e -> Printf.sprintf "new int[%s]" (expr_to_string e)
  | Ast.ArrayLit es ->
      Printf.sprintf "[%s]" (String.concat ", " (List.map expr_to_string es))
  | Ast.RecordLit fs ->
      Printf.sprintf "{%s}"
        (String.concat ", "
           (List.map (fun (n, e) -> Printf.sprintf "%s: %s" n (expr_to_string e)) fs))

let rec stmt_to_buf buf indent (s : Ast.stmt) =
  let pad = String.make indent ' ' in
  let line fmt = Printf.ksprintf (fun str -> Buffer.add_string buf (pad ^ str ^ "\n")) fmt in
  match s.Ast.node with
  | Ast.Decl (t, x, e) -> line "%s %s = %s;" (typ_to_string t) x (expr_to_string e)
  | Ast.Assign (x, e) -> line "%s = %s;" x (expr_to_string e)
  | Ast.StoreIndex (x, i, e) -> line "%s[%s] = %s;" x (expr_to_string i) (expr_to_string e)
  | Ast.StoreField (x, f, e) -> line "%s.%s = %s;" x f (expr_to_string e)
  | Ast.If (c, b1, b2) ->
      line "if (%s) {" (expr_to_string c);
      List.iter (stmt_to_buf buf (indent + 2)) b1;
      if b2 = [] then line "}"
      else begin
        line "} else {";
        List.iter (stmt_to_buf buf (indent + 2)) b2;
        line "}"
      end
  | Ast.While (c, b) ->
      line "while (%s) {" (expr_to_string c);
      List.iter (stmt_to_buf buf (indent + 2)) b;
      line "}"
  | Ast.For (init, c, update, b) ->
      let simple s =
        match s.Ast.node with
        | Ast.Decl (t, x, e) ->
            Printf.sprintf "%s %s = %s" (typ_to_string t) x (expr_to_string e)
        | Ast.Assign (x, e) -> Printf.sprintf "%s = %s" x (expr_to_string e)
        | _ -> invalid_arg "Pretty: non-simple statement in for header"
      in
      line "for (%s; %s; %s) {" (simple init) (expr_to_string c) (simple update);
      List.iter (stmt_to_buf buf (indent + 2)) b;
      line "}"
  | Ast.Return e -> line "return %s;" (expr_to_string e)
  | Ast.Break -> line "break;"
  | Ast.Continue -> line "continue;"

let meth_to_string (m : Ast.meth) =
  let buf = Buffer.create 256 in
  let params =
    String.concat ", "
      (List.map (fun (t, x) -> Printf.sprintf "%s %s" (typ_to_string t) x) m.Ast.params)
  in
  Buffer.add_string buf
    (Printf.sprintf "method %s(%s) : %s {\n" m.Ast.mname params (typ_to_string m.Ast.ret));
  List.iter (stmt_to_buf buf 2) m.Ast.body;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** One-line rendering of a single statement (loop/if headers only), used
    when tokenizing statements for the static feature dimension. *)
let stmt_head_to_string (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.If (c, _, _) -> Printf.sprintf "if (%s)" (expr_to_string c)
  | Ast.While (c, _) -> Printf.sprintf "while (%s)" (expr_to_string c)
  | Ast.For (_, c, _, _) -> Printf.sprintf "for (;%s;)" (expr_to_string c)
  | _ ->
      let buf = Buffer.create 32 in
      stmt_to_buf buf 0 s;
      String.trim (Buffer.contents buf)
