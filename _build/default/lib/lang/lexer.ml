(** Hand-written lexer for MiniJava source text. *)

exception Lex_error of string * int  (* message, line *)

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_alpha c || is_digit c

(** Tokenize a whole source string.  Supports [//] line comments and
    [/* */] block comments. *)
let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let emit tok = toks := { Token.tok; line = !line } :: !toks in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then raise (Lex_error ("unterminated block comment", !line))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      emit (Token.INT (int_of_string (String.sub src start (!i - start))))
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      if List.mem word Token.keywords then emit (Token.KW word)
      else emit (Token.IDENT word)
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        let c = src.[!i] in
        if c = '"' then begin closed := true; incr i end
        else if c = '\\' && !i + 1 < n then begin
          (match src.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | c' -> Buffer.add_char buf c');
          i := !i + 2
        end
        else begin
          if c = '\n' then raise (Lex_error ("newline in string literal", !line));
          Buffer.add_char buf c;
          incr i
        end
      done;
      if not !closed then raise (Lex_error ("unterminated string literal", !line));
      emit (Token.STRING (Buffer.contents buf))
    end
    else begin
      let two tok = incr i; incr i; emit tok in
      let one tok = incr i; emit tok in
      match (c, peek 1) with
      | '+', Some '=' -> two Token.PLUSEQ
      | '+', Some '+' -> two Token.PLUSPLUS
      | '+', _ -> one Token.PLUS
      | '-', Some '=' -> two Token.MINUSEQ
      | '-', Some '-' -> two Token.MINUSMINUS
      | '-', _ -> one Token.MINUS
      | '*', Some '=' -> two Token.STAREQ
      | '*', _ -> one Token.STAR
      | '/', Some '=' -> two Token.SLASHEQ
      | '/', _ -> one Token.SLASH
      | '%', _ -> one Token.PERCENT
      | '<', Some '=' -> two Token.LE
      | '<', _ -> one Token.LT
      | '>', Some '=' -> two Token.GE
      | '>', _ -> one Token.GT
      | '=', Some '=' -> two Token.EQEQ
      | '=', _ -> one Token.ASSIGN
      | '!', Some '=' -> two Token.NE
      | '!', _ -> one Token.BANG
      | '&', Some '&' -> two Token.ANDAND
      | '|', Some '|' -> two Token.OROR
      | '(', _ -> one Token.LPAREN
      | ')', _ -> one Token.RPAREN
      | '{', _ -> one Token.LBRACE
      | '}', _ -> one Token.RBRACE
      | '[', _ -> one Token.LBRACKET
      | ']', _ -> one Token.RBRACKET
      | ',', _ -> one Token.COMMA
      | ';', _ -> one Token.SEMI
      | ':', _ -> one Token.COLON
      | '.', _ -> one Token.DOT
      | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  emit Token.EOF;
  List.rev !toks
