(** Lexical tokens of MiniJava. *)

type t =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW of string      (* int bool string method if else while for return ... *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQEQ | NE
  | ANDAND | OROR | BANG
  | ASSIGN
  | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ
  | PLUSPLUS | MINUSMINUS
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | COLON | DOT
  | EOF
[@@deriving show { with_path = false }, eq]

let keywords =
  [ "int"; "bool"; "string"; "obj"; "method"; "if"; "else"; "while"; "for";
    "return"; "true"; "false"; "new"; "break"; "continue" ]

(** A token paired with its 1-based source line, for error messages and for
    statement line numbers. *)
type located = { tok : t; line : int }
