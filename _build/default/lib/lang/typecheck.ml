(** A simple static typechecker for MiniJava.

    Mirrors the "does it compile" gate of the paper's dataset pipeline:
    programs that fail here are rejected by the filter (Table 1's first
    filtering reason).  Field types of [obj] values are not tracked
    statically — field reads type as [int] unless proven otherwise at
    runtime — matching Java's behaviour after the paper's serialization of
    objects to primitive arrays. *)

type error = { line : int; msg : string }

let err line fmt = Printf.ksprintf (fun msg -> Error { line; msg }) fmt

let ( let* ) = Result.bind

let builtin_sig = function
  | "abs" -> Some ([ Ast.Tint ], Ast.Tint)
  | "min" | "max" | "pow" -> Some ([ Ast.Tint; Ast.Tint ], Ast.Tint)
  | "substring" -> Some ([ Ast.Tstring; Ast.Tint; Ast.Tint ], Ast.Tstring)
  | "charAt" -> Some ([ Ast.Tstring; Ast.Tint ], Ast.Tstring)
  | "indexOf" -> Some ([ Ast.Tstring; Ast.Tstring ], Ast.Tint)
  | "ord" -> Some ([ Ast.Tstring ], Ast.Tint)
  | "chr" -> Some ([ Ast.Tint ], Ast.Tstring)
  | "toString" -> Some ([ Ast.Tint ], Ast.Tstring)
  | _ -> None

type ctx = (string, Ast.typ) Hashtbl.t

let rec type_expr (ctx : ctx) line (e : Ast.expr) : (Ast.typ, error) result =
  match e with
  | Ast.Int _ -> Ok Ast.Tint
  | Ast.Bool _ -> Ok Ast.Tbool
  | Ast.Str _ -> Ok Ast.Tstring
  | Ast.Var x -> (
      match Hashtbl.find_opt ctx x with
      | Some t -> Ok t
      | None -> err line "unbound variable %s" x)
  | Ast.Unop (Ast.Neg, a) ->
      let* t = type_expr ctx line a in
      if t = Ast.Tint then Ok Ast.Tint else err line "negation of non-int"
  | Ast.Unop (Ast.Not, a) ->
      let* t = type_expr ctx line a in
      if t = Ast.Tbool then Ok Ast.Tbool else err line "negation of non-bool"
  | Ast.Binop (op, a, b) -> (
      let* ta = type_expr ctx line a in
      let* tb = type_expr ctx line b in
      match op with
      | Ast.Add when ta = Ast.Tstring && tb = Ast.Tstring -> Ok Ast.Tstring
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
          if ta = Ast.Tint && tb = Ast.Tint then Ok Ast.Tint
          else err line "arithmetic on non-ints"
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
          if ta = Ast.Tint && tb = Ast.Tint then Ok Ast.Tbool
          else err line "comparison of non-ints"
      | Ast.Eq | Ast.Ne ->
          if ta = tb then Ok Ast.Tbool else err line "equality on mismatched types"
      | Ast.And | Ast.Or ->
          if ta = Ast.Tbool && tb = Ast.Tbool then Ok Ast.Tbool
          else err line "logical op on non-bools")
  | Ast.Index (a, i) ->
      let* ta = type_expr ctx line a in
      let* ti = type_expr ctx line i in
      if ta <> Ast.Tarray then err line "indexing a non-array"
      else if ti <> Ast.Tint then err line "non-int index"
      else Ok Ast.Tint
  | Ast.Field (a, f) ->
      let* ta = type_expr ctx line a in
      if ta <> Ast.Tobj then err line "field access .%s on a non-object" f
      else Ok Ast.Tint (* field types are dynamic; ints dominate our corpora *)
  | Ast.Len a ->
      let* ta = type_expr ctx line a in
      if ta = Ast.Tarray || ta = Ast.Tstring then Ok Ast.Tint
      else err line ".length on a value that has no length"
  | Ast.Call (f, args) -> (
      match builtin_sig f with
      | None -> err line "unknown function %s" f
      | Some (param_tys, ret) ->
          if List.length args <> List.length param_tys then
            err line "%s expects %d arguments" f (List.length param_tys)
          else
            let rec check = function
              | [], [] -> Ok ret
              | a :: args, t :: tys ->
                  let* ta = type_expr ctx line a in
                  if ta = t then check (args, tys)
                  else err line "argument type mismatch in call to %s" f
              | _ -> assert false
            in
            check (args, param_tys))
  | Ast.NewArray e ->
      let* t = type_expr ctx line e in
      if t = Ast.Tint then Ok Ast.Tarray else err line "non-int array size"
  | Ast.ArrayLit es ->
      let rec check = function
        | [] -> Ok Ast.Tarray
        | e :: rest ->
            let* t = type_expr ctx line e in
            if t = Ast.Tint then check rest else err line "non-int array element"
      in
      check es
  | Ast.RecordLit fs ->
      let rec check = function
        | [] -> Ok Ast.Tobj
        | (_, e) :: rest ->
            let* _ = type_expr ctx line e in
            check rest
      in
      check fs

let rec check_block ctx ret block =
  match block with
  | [] -> Ok ()
  | s :: rest ->
      let* () = check_stmt ctx ret s in
      check_block ctx ret rest

and check_stmt ctx ret (s : Ast.stmt) =
  let line = s.Ast.line in
  match s.Ast.node with
  | Ast.Decl (t, x, e) ->
      let* te = type_expr ctx line e in
      if te <> t then err line "initializer type mismatch for %s" x
      else begin
        Hashtbl.replace ctx x t;
        Ok ()
      end
  | Ast.Assign (x, e) -> (
      match Hashtbl.find_opt ctx x with
      | None -> err line "assignment to undeclared variable %s" x
      | Some t ->
          let* te = type_expr ctx line e in
          if te <> t then err line "assignment type mismatch for %s" x else Ok ())
  | Ast.StoreIndex (x, i, e) -> (
      match Hashtbl.find_opt ctx x with
      | Some Ast.Tarray ->
          let* ti = type_expr ctx line i in
          let* te = type_expr ctx line e in
          if ti <> Ast.Tint then err line "non-int index"
          else if te <> Ast.Tint then err line "non-int array element"
          else Ok ()
      | Some _ -> err line "%s is not an array" x
      | None -> err line "unbound variable %s" x)
  | Ast.StoreField (x, _, e) -> (
      match Hashtbl.find_opt ctx x with
      | Some Ast.Tobj ->
          let* _ = type_expr ctx line e in
          Ok ()
      | Some _ -> err line "%s is not an object" x
      | None -> err line "unbound variable %s" x)
  | Ast.If (c, b1, b2) ->
      let* tc = type_expr ctx line c in
      if tc <> Ast.Tbool then err line "non-bool condition"
      else
        let* () = check_block ctx ret b1 in
        check_block ctx ret b2
  | Ast.While (c, b) ->
      let* tc = type_expr ctx line c in
      if tc <> Ast.Tbool then err line "non-bool condition" else check_block ctx ret b
  | Ast.For (init, c, update, b) ->
      let* () = check_stmt ctx ret init in
      let* tc = type_expr ctx line c in
      if tc <> Ast.Tbool then err line "non-bool condition"
      else
        let* () = check_stmt ctx ret update in
        check_block ctx ret b
  | Ast.Return e ->
      let* te = type_expr ctx line e in
      if te <> ret then err line "return type mismatch" else Ok ()
  | Ast.Break | Ast.Continue -> Ok ()

(** Check a whole method.  All-paths-return is not enforced statically (the
    interpreter reports it dynamically), matching Java's weaker rule for the
    patterns our corpus uses. *)
let check (m : Ast.meth) : (unit, error) result =
  let ctx = Hashtbl.create 16 in
  List.iter (fun (t, x) -> Hashtbl.replace ctx x t) m.Ast.params;
  check_block ctx m.Ast.ret m.Ast.body

let is_well_typed m = Result.is_ok (check m)
