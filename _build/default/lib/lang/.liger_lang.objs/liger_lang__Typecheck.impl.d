lib/lang/typecheck.pp.ml: Ast Hashtbl List Printf Result
