lib/lang/pretty.pp.ml: Ast Buffer List Printf String
