lib/lang/mutate.pp.ml: Array Ast Fun Hashtbl Liger_tensor List Option Printf Rng
