lib/lang/token.pp.ml: Ppx_deriving_runtime
