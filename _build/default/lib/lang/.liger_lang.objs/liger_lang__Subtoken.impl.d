lib/lang/subtoken.pp.ml: Buffer Char Hashtbl List Option String
