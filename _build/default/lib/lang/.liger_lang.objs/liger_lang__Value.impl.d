lib/lang/value.pp.ml: Array Ast List Ppx_deriving_runtime Printf String
