lib/lang/interp.pp.ml: Array Ast Char Hashtbl List Option Pretty Printf String Value
