(** The semantic task library behind both synthetic corpora.

    Each template is one {e semantic task} (what Java-med methods "are
    about"), carrying: the canonical method name and the synonym names other
    developers would use (names share key sub-tokens, as mined corpora do);
    one or more {e algorithm variants} implementing the task (COSET's
    classification target); and the MiniJava sources themselves.  The corpus
    generators expand these through {!Liger_lang.Mutate} into thousands of
    surface forms.

    All sources must parse, typecheck and be coverable by the test
    generator; [test_dataset.ml] enforces this for every variant. *)

type variant = {
  algo : string;     (* algorithm-class label, e.g. "bubble_sort" *)
  source : string;   (* MiniJava source; method name is canonical *)
}

type t = {
  base_name : string;
  synonyms : string list;  (* alternative names sharing key sub-tokens *)
  problem : string;        (* COSET problem grouping *)
  variants : variant list;
}

let t ~base_name ~synonyms ~problem variants = { base_name; synonyms; problem; variants }

let v algo source = { algo; source }

(* =================== array templates =================== *)

let sum_array =
  t ~base_name:"sumArray" ~synonyms:[ "computeSum"; "getArraySum"; "totalSum" ]
    ~problem:"array_sum"
    [
      v "sum_forward"
        {|
method sumArray(int[] a) : int {
  int total = 0;
  for (int i = 0; i < a.length; i++) {
    total += a[i];
  }
  return total;
}
|};
      v "sum_backward"
        {|
method sumArray(int[] a) : int {
  int total = 0;
  int i = a.length - 1;
  while (i >= 0) {
    total = total + a[i];
    i--;
  }
  return total;
}
|};
    ]

let find_max =
  t ~base_name:"findMax" ~synonyms:[ "getMax"; "maxElement"; "computeMax" ]
    ~problem:"array_max"
    [
      v "max_scan"
        {|
method findMax(int[] a) : int {
  if (a.length == 0) {
    return 0;
  }
  int best = a[0];
  for (int i = 1; i < a.length; i++) {
    if (a[i] > best) {
      best = a[i];
    }
  }
  return best;
}
|};
      v "max_builtin_fold"
        {|
method findMax(int[] a) : int {
  if (a.length == 0) {
    return 0;
  }
  int best = a[0];
  for (int i = 1; i < a.length; i++) {
    best = max(best, a[i]);
  }
  return best;
}
|};
    ]

let find_min =
  t ~base_name:"findMin" ~synonyms:[ "getMin"; "minElement"; "smallestValue" ]
    ~problem:"array_max"
    [
      v "min_scan"
        {|
method findMin(int[] a) : int {
  if (a.length == 0) {
    return 0;
  }
  int best = a[0];
  for (int i = 1; i < a.length; i++) {
    if (a[i] < best) {
      best = a[i];
    }
  }
  return best;
}
|};
    ]

let count_even =
  t ~base_name:"countEven" ~synonyms:[ "evenCount"; "numEvens"; "countEvenValues" ]
    ~problem:"array_count"
    [
      v "count_mod"
        {|
method countEven(int[] a) : int {
  int count = 0;
  for (int i = 0; i < a.length; i++) {
    if (a[i] % 2 == 0) {
      count++;
    }
  }
  return count;
}
|};
      v "count_subtract_odd"
        {|
method countEven(int[] a) : int {
  int count = a.length;
  for (int i = 0; i < a.length; i++) {
    if (a[i] % 2 != 0) {
      count = count - 1;
    }
  }
  return count;
}
|};
    ]

let count_positive =
  t ~base_name:"countPositive" ~synonyms:[ "positiveCount"; "numPositive" ]
    ~problem:"array_count"
    [
      v "count_pos_scan"
        {|
method countPositive(int[] a) : int {
  int count = 0;
  for (int i = 0; i < a.length; i++) {
    if (a[i] > 0) {
      count++;
    }
  }
  return count;
}
|};
    ]

let reverse_array =
  t ~base_name:"reverseArray" ~synonyms:[ "flipArray"; "reverseInPlace"; "invertArray" ]
    ~problem:"reverse"
    [
      v "reverse_two_pointer"
        {|
method reverseArray(int[] a) : int[] {
  int lo = 0;
  int hi = a.length - 1;
  while (lo < hi) {
    int tmp = a[lo];
    a[lo] = a[hi];
    a[hi] = tmp;
    lo++;
    hi--;
  }
  return a;
}
|};
      v "reverse_copy"
        {|
method reverseArray(int[] a) : int[] {
  int[] out = new int[a.length];
  for (int i = 0; i < a.length; i++) {
    out[a.length - 1 - i] = a[i];
  }
  return out;
}
|};
    ]

let sort_array =
  t ~base_name:"sortArray" ~synonyms:[ "sortAscending"; "orderValues"; "arraySort" ]
    ~problem:"sorting"
    [
      v "bubble_sort"
        {|
method sortArray(int[] a) : int[] {
  for (int i = a.length - 1; i > 0; i--) {
    for (int j = 0; j < i; j++) {
      if (a[j] > a[j + 1]) {
        int tmp = a[j];
        a[j] = a[j + 1];
        a[j + 1] = tmp;
      }
    }
  }
  return a;
}
|};
      v "insertion_sort"
        {|
method sortArray(int[] a) : int[] {
  for (int i = 1; i < a.length; i++) {
    int key = a[i];
    int j = i - 1;
    while (j >= 0 && a[j] > key) {
      a[j + 1] = a[j];
      j--;
    }
    a[j + 1] = key;
  }
  return a;
}
|};
      v "selection_sort"
        {|
method sortArray(int[] a) : int[] {
  for (int i = 0; i < a.length; i++) {
    int best = i;
    for (int j = i + 1; j < a.length; j++) {
      if (a[j] < a[best]) {
        best = j;
      }
    }
    int tmp = a[i];
    a[i] = a[best];
    a[best] = tmp;
  }
  return a;
}
|};
    ]

let contains_value =
  t ~base_name:"containsValue" ~synonyms:[ "hasValue"; "arrayContains"; "includesValue" ]
    ~problem:"search"
    [
      v "linear_search"
        {|
method containsValue(int[] a, int target) : bool {
  for (int i = 0; i < a.length; i++) {
    if (a[i] == target) {
      return true;
    }
  }
  return false;
}
|};
      v "flag_search"
        {|
method containsValue(int[] a, int target) : bool {
  bool found = false;
  for (int i = 0; i < a.length; i++) {
    if (a[i] == target) {
      found = true;
    }
  }
  return found;
}
|};
    ]

let index_of_value =
  t ~base_name:"indexOfValue" ~synonyms:[ "findIndex"; "positionOf"; "locateValue" ]
    ~problem:"search"
    [
      v "linear_index"
        {|
method indexOfValue(int[] a, int target) : int {
  for (int i = 0; i < a.length; i++) {
    if (a[i] == target) {
      return i;
    }
  }
  return 0 - 1;
}
|};
    ]

let count_occurrences =
  t ~base_name:"countOccurrences" ~synonyms:[ "occurrenceCount"; "countMatches"; "frequencyOf" ]
    ~problem:"array_count"
    [
      v "count_eq_scan"
        {|
method countOccurrences(int[] a, int target) : int {
  int count = 0;
  for (int i = 0; i < a.length; i++) {
    if (a[i] == target) {
      count++;
    }
  }
  return count;
}
|};
    ]

let is_sorted =
  t ~base_name:"isSorted" ~synonyms:[ "checkSorted"; "sortedAscending"; "isOrdered" ]
    ~problem:"sorting"
    [
      v "adjacent_check"
        {|
method isSorted(int[] a) : bool {
  for (int i = 0; i + 1 < a.length; i++) {
    if (a[i] > a[i + 1]) {
      return false;
    }
  }
  return true;
}
|};
      v "flag_check"
        {|
method isSorted(int[] a) : bool {
  bool ok = true;
  int i = 1;
  while (i < a.length) {
    if (a[i - 1] > a[i]) {
      ok = false;
    }
    i++;
  }
  return ok;
}
|};
    ]

let second_largest =
  t ~base_name:"secondLargest" ~synonyms:[ "secondMax"; "getSecondLargest" ]
    ~problem:"array_max"
    [
      v "two_pass"
        {|
method secondLargest(int[] a) : int {
  if (a.length < 2) {
    return 0;
  }
  int best = max(a[0], a[1]);
  int second = min(a[0], a[1]);
  for (int i = 2; i < a.length; i++) {
    if (a[i] > best) {
      second = best;
      best = a[i];
    } else if (a[i] > second) {
      second = a[i];
    }
  }
  return second;
}
|};
    ]

let range_of_array =
  t ~base_name:"rangeOfArray" ~synonyms:[ "valueRange"; "maxMinDiff"; "computeRange" ]
    ~problem:"array_max"
    [
      v "range_single_pass"
        {|
method rangeOfArray(int[] a) : int {
  if (a.length == 0) {
    return 0;
  }
  int hi = a[0];
  int lo = a[0];
  for (int i = 1; i < a.length; i++) {
    hi = max(hi, a[i]);
    lo = min(lo, a[i]);
  }
  return hi - lo;
}
|};
    ]

let dot_product =
  t ~base_name:"dotProduct" ~synonyms:[ "innerProduct"; "scalarProduct" ]
    ~problem:"array_sum"
    [
      v "dot_zip"
        {|
method dotProduct(int[] a, int[] b) : int {
  int total = 0;
  int n = min(a.length, b.length);
  for (int i = 0; i < n; i++) {
    total += a[i] * b[i];
  }
  return total;
}
|};
    ]

let sum_even =
  t ~base_name:"sumEven" ~synonyms:[ "evenSum"; "sumOfEvens" ]
    ~problem:"array_sum"
    [
      v "sum_even_guard"
        {|
method sumEven(int[] a) : int {
  int total = 0;
  for (int i = 0; i < a.length; i++) {
    if (a[i] % 2 == 0) {
      total += a[i];
    }
  }
  return total;
}
|};
    ]

let binary_search =
  t ~base_name:"binarySearch" ~synonyms:[ "bsearch"; "searchSorted"; "findSorted" ]
    ~problem:"search"
    [
      v "binary_search_iter"
        {|
method binarySearch(int[] a, int target) : int {
  int lo = 0;
  int hi = a.length - 1;
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    if (a[mid] == target) {
      return mid;
    }
    if (a[mid] < target) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return 0 - 1;
}
|};
    ]

let max_prefix_sum =
  t ~base_name:"maxPrefixSum" ~synonyms:[ "bestPrefixSum"; "maxRunningSum" ]
    ~problem:"array_sum"
    [
      v "prefix_scan"
        {|
method maxPrefixSum(int[] a) : int {
  int run = 0;
  int best = 0;
  for (int i = 0; i < a.length; i++) {
    run += a[i];
    if (run > best) {
      best = run;
    }
  }
  return best;
}
|};
    ]

(* =================== string templates =================== *)

let reverse_string =
  t ~base_name:"reverseString" ~synonyms:[ "flipString"; "stringReverse"; "reverseText" ]
    ~problem:"reverse"
    [
      v "build_backward"
        {|
method reverseString(string s) : string {
  string out = "";
  for (int i = s.length - 1; i >= 0; i--) {
    out = out + charAt(s, i);
  }
  return out;
}
|};
      v "prepend_forward"
        {|
method reverseString(string s) : string {
  string out = "";
  for (int i = 0; i < s.length; i++) {
    out = charAt(s, i) + out;
  }
  return out;
}
|};
    ]

let is_palindrome =
  t ~base_name:"isPalindrome" ~synonyms:[ "palindromeCheck"; "checkPalindrome" ]
    ~problem:"palindrome"
    [
      v "two_pointer"
        {|
method isPalindrome(string s) : bool {
  int lo = 0;
  int hi = s.length - 1;
  while (lo < hi) {
    if (charAt(s, lo) != charAt(s, hi)) {
      return false;
    }
    lo++;
    hi--;
  }
  return true;
}
|};
      v "reverse_compare"
        {|
method isPalindrome(string s) : bool {
  string rev = "";
  for (int i = s.length - 1; i >= 0; i--) {
    rev = rev + charAt(s, i);
  }
  return rev == s;
}
|};
    ]

let count_vowels =
  t ~base_name:"countVowels" ~synonyms:[ "vowelCount"; "numVowels" ]
    ~problem:"count_chars"
    [
      v "if_chain"
        {|
method countVowels(string s) : int {
  int count = 0;
  for (int i = 0; i < s.length; i++) {
    string c = charAt(s, i);
    if (c == "a" || c == "e" || c == "i" || c == "o" || c == "u") {
      count++;
    }
  }
  return count;
}
|};
      v "indexof_membership"
        {|
method countVowels(string s) : int {
  int count = 0;
  string vowels = "aeiou";
  for (int i = 0; i < s.length; i++) {
    if (indexOf(vowels, charAt(s, i)) >= 0) {
      count++;
    }
  }
  return count;
}
|};
    ]

let count_char =
  t ~base_name:"countChar" ~synonyms:[ "charCount"; "countLetter" ]
    ~problem:"count_chars"
    [
      v "char_eq_scan"
        {|
method countChar(string s, string c) : int {
  int count = 0;
  for (int i = 0; i < s.length; i++) {
    if (charAt(s, i) == c) {
      count++;
    }
  }
  return count;
}
|};
    ]

let is_string_rotation =
  t ~base_name:"isStringRotation" ~synonyms:[ "rotationCheck"; "isRotated" ]
    ~problem:"palindrome"
    [
      v "split_concat"
        {|
method isStringRotation(string a, string b) : bool {
  if (a.length != b.length) {
    return false;
  }
  if (a == b) {
    return true;
  }
  for (int i = 1; i < a.length; i++) {
    string tail = substring(a, i, a.length - i);
    string wrap = substring(a, 0, i);
    if (tail + wrap == b) {
      return true;
    }
  }
  return false;
}
|};
    ]

let starts_with =
  t ~base_name:"startsWith" ~synonyms:[ "stringStartsWith"; "checkStartsWith"; "hasPrefix" ]
    ~problem:"search"
    [
      v "prefix_scan"
        {|
method startsWith(string s, string prefix) : bool {
  if (prefix.length > s.length) {
    return false;
  }
  for (int i = 0; i < prefix.length; i++) {
    if (charAt(s, i) != charAt(prefix, i)) {
      return false;
    }
  }
  return true;
}
|};
    ]

let to_upper_count =
  t ~base_name:"countUpper" ~synonyms:[ "upperCount"; "numCapitals" ]
    ~problem:"count_chars"
    [
      v "ord_range"
        {|
method countUpper(string s) : int {
  int count = 0;
  for (int i = 0; i < s.length; i++) {
    int code = ord(charAt(s, i));
    if (code >= 65 && code <= 90) {
      count++;
    }
  }
  return count;
}
|};
    ]

(* =================== integer templates =================== *)

let gcd =
  t ~base_name:"computeGcd" ~synonyms:[ "greatestCommonDivisor"; "gcdOf"; "findGcd" ]
    ~problem:"gcd"
    [
      v "gcd_mod"
        {|
method computeGcd(int a, int b) : int {
  a = abs(a);
  b = abs(b);
  while (b != 0) {
    int r = a % b;
    a = b;
    b = r;
  }
  return a;
}
|};
      v "gcd_subtract"
        {|
method computeGcd(int a, int b) : int {
  a = abs(a);
  b = abs(b);
  if (a == 0) {
    return b;
  }
  if (b == 0) {
    return a;
  }
  while (a != b) {
    if (a > b) {
      a = a - b;
    } else {
      b = b - a;
    }
  }
  return a;
}
|};
    ]

let is_prime =
  t ~base_name:"isPrime" ~synonyms:[ "primeCheck"; "checkPrime" ]
    ~problem:"prime"
    [
      v "trial_to_n"
        {|
method isPrime(int n) : bool {
  if (n < 2) {
    return false;
  }
  for (int i = 2; i < n; i++) {
    if (n % i == 0) {
      return false;
    }
  }
  return true;
}
|};
      v "trial_to_sqrt"
        {|
method isPrime(int n) : bool {
  if (n < 2) {
    return false;
  }
  for (int i = 2; i * i <= n; i++) {
    if (n % i == 0) {
      return false;
    }
  }
  return true;
}
|};
    ]

let fibonacci =
  t ~base_name:"fibonacci" ~synonyms:[ "fibonacciNumber"; "nthFibonacci"; "computeFib" ]
    ~problem:"fibonacci"
    [
      v "fib_pair"
        {|
method fibonacci(int n) : int {
  if (n < 0) {
    return 0;
  }
  int a = 0;
  int b = 1;
  for (int i = 0; i < n; i++) {
    int next = a + b;
    a = b;
    b = next;
  }
  return a;
}
|};
      v "fib_array"
        {|
method fibonacci(int n) : int {
  if (n < 0) {
    return 0;
  }
  if (n < 2) {
    return n;
  }
  int[] dp = new int[n + 1];
  dp[1] = 1;
  for (int i = 2; i <= n; i++) {
    dp[i] = dp[i - 1] + dp[i - 2];
  }
  return dp[n];
}
|};
    ]

let factorial =
  t ~base_name:"factorial" ~synonyms:[ "computeFactorial"; "factOf" ]
    ~problem:"fibonacci"
    [
      v "fact_loop"
        {|
method factorial(int n) : int {
  int result = 1;
  for (int i = 2; i <= n; i++) {
    result = result * i;
  }
  return result;
}
|};
    ]

let sum_digits =
  t ~base_name:"sumDigits" ~synonyms:[ "digitSum"; "addDigits" ]
    ~problem:"digits"
    [
      v "mod_div_loop"
        {|
method sumDigits(int n) : int {
  n = abs(n);
  int total = 0;
  while (n > 0) {
    total += n % 10;
    n = n / 10;
  }
  return total;
}
|};
      v "string_digits"
        {|
method sumDigits(int n) : int {
  string s = toString(abs(n));
  int total = 0;
  for (int i = 0; i < s.length; i++) {
    total += ord(charAt(s, i)) - 48;
  }
  return total;
}
|};
    ]

let reverse_digits =
  t ~base_name:"reverseDigits" ~synonyms:[ "reverseNumber"; "flipDigits" ]
    ~problem:"digits"
    [
      v "digits_mod_loop"
        {|
method reverseDigits(int n) : int {
  n = abs(n);
  int out = 0;
  while (n > 0) {
    out = out * 10 + n % 10;
    n = n / 10;
  }
  return out;
}
|};
    ]

let count_divisors =
  t ~base_name:"countDivisors" ~synonyms:[ "divisorCount"; "numDivisors" ]
    ~problem:"prime"
    [
      v "divisor_scan"
        {|
method countDivisors(int n) : int {
  n = abs(n);
  if (n == 0) {
    return 0;
  }
  int count = 0;
  for (int i = 1; i <= n; i++) {
    if (n % i == 0) {
      count++;
    }
  }
  return count;
}
|};
    ]

let collatz_steps =
  t ~base_name:"collatzSteps" ~synonyms:[ "collatzLength"; "hailstoneSteps" ]
    ~problem:"digits"
    [
      v "collatz_loop"
        {|
method collatzSteps(int n) : int {
  if (n < 1) {
    return 0;
  }
  int steps = 0;
  while (n != 1 && steps < 100) {
    if (n % 2 == 0) {
      n = n / 2;
    } else {
      n = 3 * n + 1;
    }
    steps++;
  }
  return steps;
}
|};
    ]

let max_of_three =
  t ~base_name:"maxOfThree" ~synonyms:[ "largestOfThree"; "threeWayMax" ]
    ~problem:"array_max"
    [
      v "nested_if"
        {|
method maxOfThree(int a, int b, int c) : int {
  if (a >= b) {
    if (a >= c) {
      return a;
    }
    return c;
  }
  if (b >= c) {
    return b;
  }
  return c;
}
|};
      v "builtin_chain"
        {|
method maxOfThree(int a, int b, int c) : int {
  int hi = max(a, b);
  hi = max(hi, c);
  return hi;
}
|};
    ]

let clamp_value =
  t ~base_name:"clampValue" ~synonyms:[ "clampRange"; "boundValue" ]
    ~problem:"array_max"
    [
      v "clamp_ifs"
        {|
method clampValue(int x, int lo, int hi) : int {
  if (x < lo) {
    return lo;
  }
  if (x > hi) {
    return hi;
  }
  return x;
}
|};
    ]

let int_power =
  t ~base_name:"intPower" ~synonyms:[ "raisePower"; "powerOf" ]
    ~problem:"fibonacci"
    [
      v "multiply_loop"
        {|
method intPower(int base, int exp) : int {
  if (exp < 0) {
    return 0;
  }
  int result = 1;
  for (int i = 0; i < exp; i++) {
    result = result * base;
  }
  return result;
}
|};
    ]

let sum_range =
  t ~base_name:"sumRange" ~synonyms:[ "rangeSum"; "sumBetween" ]
    ~problem:"array_sum"
    [
      v "range_loop"
        {|
method sumRange(int lo, int hi) : int {
  int total = 0;
  for (int i = lo; i <= hi; i++) {
    total += i;
  }
  return total;
}
|};
    ]

let is_perfect_square =
  t ~base_name:"isPerfectSquare" ~synonyms:[ "perfectSquareCheck"; "isSquare" ]
    ~problem:"prime"
    [
      v "incremental_square"
        {|
method isPerfectSquare(int n) : bool {
  if (n < 0) {
    return false;
  }
  int i = 0;
  while (i * i < n) {
    i++;
  }
  return i * i == n;
}
|};
    ]

let digit_count =
  t ~base_name:"digitCount" ~synonyms:[ "numDigits"; "countDigits" ]
    ~problem:"digits"
    [
      v "div_loop"
        {|
method digitCount(int n) : int {
  n = abs(n);
  int count = 1;
  while (n >= 10) {
    n = n / 10;
    count++;
  }
  return count;
}
|};
      v "string_length"
        {|
method digitCount(int n) : int {
  if (n == 0) {
    return 1;
  }
  string s = toString(abs(n));
  return s.length;
}
|};
    ]

(* =================== additional array templates =================== *)

let sum_of_squares =
  t ~base_name:"sumOfSquares" ~synonyms:[ "squaredSum"; "sumSquares" ]
    ~problem:"array_sum"
    [
      v "square_accumulate"
        {|
method sumOfSquares(int[] a) : int {
  int total = 0;
  for (int i = 0; i < a.length; i++) {
    total += a[i] * a[i];
  }
  return total;
}
|};
    ]

let alternating_sum =
  t ~base_name:"alternatingSum" ~synonyms:[ "signedSum"; "alternateSum" ]
    ~problem:"array_sum"
    [
      v "sign_flip"
        {|
method alternatingSum(int[] a) : int {
  int total = 0;
  int sign = 1;
  for (int i = 0; i < a.length; i++) {
    total += sign * a[i];
    sign = 0 - sign;
  }
  return total;
}
|};
      v "parity_branch"
        {|
method alternatingSum(int[] a) : int {
  int total = 0;
  for (int i = 0; i < a.length; i++) {
    if (i % 2 == 0) {
      total += a[i];
    } else {
      total -= a[i];
    }
  }
  return total;
}
|};
    ]

let longest_run =
  t ~base_name:"longestRun" ~synonyms:[ "maxRunLength"; "longestStreak" ]
    ~problem:"array_count"
    [
      v "run_scan"
        {|
method longestRun(int[] a) : int {
  if (a.length == 0) {
    return 0;
  }
  int best = 1;
  int run = 1;
  for (int i = 1; i < a.length; i++) {
    if (a[i] == a[i - 1]) {
      run++;
    } else {
      run = 1;
    }
    best = max(best, run);
  }
  return best;
}
|};
    ]

let count_peaks =
  t ~base_name:"countPeaks" ~synonyms:[ "peakCount"; "localMaxima" ]
    ~problem:"array_count"
    [
      v "neighbor_compare"
        {|
method countPeaks(int[] a) : int {
  int count = 0;
  for (int i = 1; i + 1 < a.length; i++) {
    if (a[i] > a[i - 1] && a[i] > a[i + 1]) {
      count++;
    }
  }
  return count;
}
|};
    ]

let is_arithmetic =
  t ~base_name:"isArithmetic" ~synonyms:[ "arithmeticCheck"; "isArithmeticSequence" ]
    ~problem:"sorting"
    [
      v "diff_check"
        {|
method isArithmetic(int[] a) : bool {
  if (a.length < 2) {
    return true;
  }
  int diff = a[1] - a[0];
  for (int i = 2; i < a.length; i++) {
    if (a[i] - a[i - 1] != diff) {
      return false;
    }
  }
  return true;
}
|};
    ]

let rotate_left =
  t ~base_name:"rotateLeft" ~synonyms:[ "leftRotate"; "cycleLeft" ]
    ~problem:"reverse"
    [
      v "shift_with_temp"
        {|
method rotateLeft(int[] a) : int[] {
  if (a.length < 2) {
    return a;
  }
  int first = a[0];
  for (int i = 0; i + 1 < a.length; i++) {
    a[i] = a[i + 1];
  }
  a[a.length - 1] = first;
  return a;
}
|};
      v "rebuild_copy"
        {|
method rotateLeft(int[] a) : int[] {
  if (a.length < 2) {
    return a;
  }
  int[] out = new int[a.length];
  for (int i = 0; i < a.length; i++) {
    out[i] = a[(i + 1) % a.length];
  }
  return out;
}
|};
    ]

let count_distinct_sorted =
  t ~base_name:"countDistinct" ~synonyms:[ "distinctCount"; "uniqueValues" ]
    ~problem:"array_count"
    [
      v "nested_first_occurrence"
        {|
method countDistinct(int[] a) : int {
  int count = 0;
  for (int i = 0; i < a.length; i++) {
    bool seen = false;
    for (int j = 0; j < i; j++) {
      if (a[j] == a[i]) {
        seen = true;
      }
    }
    if (!seen) {
      count++;
    }
  }
  return count;
}
|};
    ]

let swap_min_max =
  t ~base_name:"swapMinMax" ~synonyms:[ "exchangeMinMax"; "swapExtremes" ]
    ~problem:"array_max"
    [
      v "two_scans"
        {|
method swapMinMax(int[] a) : int[] {
  if (a.length < 2) {
    return a;
  }
  int lo = 0;
  int hi = 0;
  for (int i = 1; i < a.length; i++) {
    if (a[i] < a[lo]) {
      lo = i;
    }
    if (a[i] > a[hi]) {
      hi = i;
    }
  }
  int tmp = a[lo];
  a[lo] = a[hi];
  a[hi] = tmp;
  return a;
}
|};
    ]

(* =================== additional string templates =================== *)

let caesar_shift =
  t ~base_name:"caesarShift" ~synonyms:[ "shiftCipher"; "caesarEncode" ]
    ~problem:"count_chars"
    [
      v "ord_chr_loop"
        {|
method caesarShift(string s, int k) : string {
  string out = "";
  int shift = k % 26;
  if (shift < 0) {
    shift = shift + 26;
  }
  for (int i = 0; i < s.length; i++) {
    int code = ord(charAt(s, i));
    if (code >= 97 && code <= 122) {
      out = out + chr(97 + (code - 97 + shift) % 26);
    } else {
      out = out + charAt(s, i);
    }
  }
  return out;
}
|};
    ]

let count_words =
  t ~base_name:"countWords" ~synonyms:[ "wordCount"; "numWords" ]
    ~problem:"count_chars"
    [
      v "boundary_scan"
        {|
method countWords(string s) : int {
  int count = 0;
  bool inword = false;
  for (int i = 0; i < s.length; i++) {
    if (charAt(s, i) == " ") {
      inword = false;
    } else {
      if (!inword) {
        count++;
      }
      inword = true;
    }
  }
  return count;
}
|};
    ]

let ends_with =
  t ~base_name:"endsWith" ~synonyms:[ "stringEndsWith"; "hasSuffix"; "suffixMatch" ]
    ~problem:"search"
    [
      v "suffix_scan"
        {|
method endsWith(string s, string suffix) : bool {
  if (suffix.length > s.length) {
    return false;
  }
  int offset = s.length - suffix.length;
  for (int i = 0; i < suffix.length; i++) {
    if (charAt(s, offset + i) != charAt(suffix, i)) {
      return false;
    }
  }
  return true;
}
|};
    ]

let max_char_code =
  t ~base_name:"maxCharCode" ~synonyms:[ "largestCharCode"; "maxOrd" ]
    ~problem:"array_max"
    [
      v "ord_scan"
        {|
method maxCharCode(string s) : int {
  int best = 0;
  for (int i = 0; i < s.length; i++) {
    best = max(best, ord(charAt(s, i)));
  }
  return best;
}
|};
    ]

(* =================== additional integer templates =================== *)

let max_digit =
  t ~base_name:"maxDigit" ~synonyms:[ "largestDigit"; "biggestDigit" ]
    ~problem:"digits"
    [
      v "mod_scan"
        {|
method maxDigit(int n) : int {
  n = abs(n);
  int best = 0;
  while (n > 0) {
    best = max(best, n % 10);
    n = n / 10;
  }
  return best;
}
|};
      v "string_scan"
        {|
method maxDigit(int n) : int {
  string s = toString(abs(n));
  int best = 0;
  for (int i = 0; i < s.length; i++) {
    best = max(best, ord(charAt(s, i)) - 48);
  }
  return best;
}
|};
    ]

let triangle_number =
  t ~base_name:"triangleNumber" ~synonyms:[ "triangularNumber"; "nthTriangle" ]
    ~problem:"fibonacci"
    [
      v "accumulate"
        {|
method triangleNumber(int n) : int {
  int total = 0;
  for (int i = 1; i <= n; i++) {
    total += i;
  }
  return total;
}
|};
      v "closed_form"
        {|
method triangleNumber(int n) : int {
  if (n < 1) {
    return 0;
  }
  return n * (n + 1) / 2;
}
|};
    ]

let is_power_of_two =
  t ~base_name:"isPowerOfTwo" ~synonyms:[ "powerOfTwoCheck"; "isPow2" ]
    ~problem:"prime"
    [
      v "divide_down"
        {|
method isPowerOfTwo(int n) : bool {
  if (n < 1) {
    return false;
  }
  while (n % 2 == 0) {
    n = n / 2;
  }
  return n == 1;
}
|};
      v "grow_up"
        {|
method isPowerOfTwo(int n) : bool {
  if (n < 1) {
    return false;
  }
  int p = 1;
  while (p < n) {
    p = p * 2;
  }
  return p == n;
}
|};
    ]

let digital_root =
  t ~base_name:"digitalRoot" ~synonyms:[ "repeatedDigitSum"; "rootDigit" ]
    ~problem:"digits"
    [
      v "iterate_sums"
        {|
method digitalRoot(int n) : int {
  n = abs(n);
  while (n >= 10) {
    int total = 0;
    int m = n;
    while (m > 0) {
      total += m % 10;
      m = m / 10;
    }
    n = total;
  }
  return n;
}
|};
    ]

(* =================== object templates =================== *)

let manhattan_distance =
  t ~base_name:"manhattanDistance" ~synonyms:[ "taxicabDistance"; "l1Distance" ]
    ~problem:"geometry"
    [
      v "abs_sum"
        {|
method manhattanDistance(obj p, obj q) : int {
  int dx = abs(p.x - q.x);
  int dy = abs(p.y - q.y);
  return dx + dy;
}
|};
    ]

let point_quadrant =
  t ~base_name:"pointQuadrant" ~synonyms:[ "quadrantOf"; "whichQuadrant" ]
    ~problem:"geometry"
    [
      v "sign_cases"
        {|
method pointQuadrant(obj p) : int {
  if (p.x > 0 && p.y > 0) {
    return 1;
  }
  if (p.x < 0 && p.y > 0) {
    return 2;
  }
  if (p.x < 0 && p.y < 0) {
    return 3;
  }
  if (p.x > 0 && p.y < 0) {
    return 4;
  }
  return 0;
}
|};
    ]

let distance_squared =
  t ~base_name:"distanceSquared" ~synonyms:[ "squaredDistance"; "dist2" ]
    ~problem:"geometry"
    [
      v "diff_squares"
        {|
method distanceSquared(obj p, obj q) : int {
  int dx = p.x - q.x;
  int dy = p.y - q.y;
  return dx * dx + dy * dy;
}
|};
    ]

(** Every template, the generator's sampling space. *)
let all : t list =
  [
    sum_array; find_max; find_min; count_even; count_positive; reverse_array;
    sort_array; contains_value; index_of_value; count_occurrences; is_sorted;
    second_largest; range_of_array; dot_product; sum_even; binary_search;
    max_prefix_sum; reverse_string; is_palindrome; count_vowels; count_char;
    is_string_rotation; starts_with; to_upper_count; gcd; is_prime; fibonacci;
    factorial; sum_digits; reverse_digits; count_divisors; collatz_steps;
    max_of_three; clamp_value; int_power; sum_range; is_perfect_square;
    digit_count; sum_of_squares; alternating_sum; longest_run; count_peaks;
    is_arithmetic; rotate_left; count_distinct_sorted; swap_min_max;
    caesar_shift; count_words; ends_with; max_char_code; max_digit;
    triangle_number; is_power_of_two; digital_root; manhattan_distance;
    point_quadrant; distance_squared;
  ]

(** The ten COSET problems: templates grouped by [problem]; each problem's
    algorithm classes are its variants' [algo] labels. *)
let coset_problems =
  [ "sorting"; "array_max"; "reverse"; "fibonacci"; "gcd"; "prime";
    "count_chars"; "palindrome"; "digits"; "search" ]

let by_problem problem = List.filter (fun t -> t.problem = problem) all

(** All algorithm-class labels in a stable order (the classification label
    space). *)
let algo_classes =
  List.concat_map (fun t -> List.map (fun v -> v.algo) t.variants) all
  |> List.sort_uniq compare
