(** Dataset statistics: the Table 1 rows.

    For each corpus analogue and each split we record the number of methods
    generated ("Original") and the number surviving the filtering pipeline
    ("Filtered"), plus the per-reason breakdown that the paper describes in
    prose. *)

open Liger_testgen

type split_stats = { split_name : string; original : int; filtered : int }

type table = {
  dataset : string;
  rows : split_stats list;  (* train / validation / test *)
  reasons : (Filter.reason * int) list;  (* aggregated over splits *)
}

let total_original t = List.fold_left (fun a r -> a + r.original) 0 t.rows
let total_filtered t = List.fold_left (fun a r -> a + r.filtered) 0 t.rows

let merge_reasons acc more =
  List.fold_left
    (fun acc (r, n) ->
      let rest = List.remove_assoc r acc in
      (r, n + Option.value ~default:0 (List.assoc_opt r acc)) :: rest)
    acc more

(** Render in the paper's layout. *)
let pp ppf t =
  Fmt.pf ppf "@[<v>%s:@," t.dataset;
  Fmt.pf ppf "  %-12s %10s %10s@," "Split" "Original" "Filtered";
  List.iter
    (fun r -> Fmt.pf ppf "  %-12s %10d %10d@," r.split_name r.original r.filtered)
    t.rows;
  Fmt.pf ppf "  %-12s %10d %10d@," "Total" (total_original t) (total_filtered t);
  Fmt.pf ppf "  dropped:";
  List.iter
    (fun (r, n) -> Fmt.pf ppf " %s=%d" (Filter.reason_to_string r) n)
    t.reasons;
  Fmt.pf ppf "@]"
