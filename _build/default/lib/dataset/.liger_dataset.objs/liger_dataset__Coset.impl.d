lib/dataset/coset.ml: Array Ast Fun Interp Liger_lang Liger_tensor Liger_testgen List Mutate Parser Rng Templates Typecheck Value
