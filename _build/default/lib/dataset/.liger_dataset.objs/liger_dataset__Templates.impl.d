lib/dataset/templates.ml: List
