lib/dataset/pipeline.ml: Ast Common Coset Feedback Filter Javagen Liger_core Liger_lang Liger_testgen Liger_trace List Stats Vocab
