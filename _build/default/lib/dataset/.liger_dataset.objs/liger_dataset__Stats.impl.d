lib/dataset/stats.ml: Filter Fmt Liger_testgen List Option
