lib/dataset/javagen.ml: Array Ast Filter Liger_lang Liger_tensor Liger_testgen List Mutate Parser Rng Subtoken Templates
