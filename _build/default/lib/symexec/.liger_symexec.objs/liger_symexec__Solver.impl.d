lib/symexec/solver.ml: Array Ast Float Interp Liger_lang Liger_tensor List Path Rng Symval Value
