lib/symexec/symexec.ml: Array Ast Char Interp Liger_lang List Map Path Printf Solver String Symval Value
