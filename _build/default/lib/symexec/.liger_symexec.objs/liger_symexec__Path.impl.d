lib/symexec/path.ml: Fmt Liger_lang List Symval
