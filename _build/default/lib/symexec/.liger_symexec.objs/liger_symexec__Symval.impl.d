lib/symexec/symval.ml: Array Ast Fmt Interp Liger_lang List Pretty Value
