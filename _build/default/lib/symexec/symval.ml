(** Symbolic values: expressions over the method's integer and boolean
    inputs, with constant folding.

    Array and string inputs are handled concolically — the driver picks a
    concrete shape and contents, so only scalar inputs stay symbolic.  This
    keeps the path-condition language small (linear-ish integer arithmetic
    plus booleans) while still letting the engine enumerate all control-flow
    paths that scalar inputs govern. *)

open Liger_lang

type t =
  | Const of Value.t
  | Input of string            (* a symbolic int or bool input *)
  | Binop of Ast.binop * t * t
  | Unop of Ast.unop * t
  | Arr of t array             (* array with concrete length, symbolic cells *)
  | Obj of (string * t) array

let rec pp ppf = function
  | Const v -> Fmt.string ppf (Value.to_display v)
  | Input x -> Fmt.string ppf x
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp a (Pretty.binop_to_string op) pp b
  | Unop (Ast.Neg, a) -> Fmt.pf ppf "(-%a)" pp a
  | Unop (Ast.Not, a) -> Fmt.pf ppf "(!%a)" pp a
  | Arr cells -> Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any ", ") pp) cells
  | Obj fields ->
      Fmt.pf ppf "{%a}"
        Fmt.(array ~sep:(any "; ") (fun ppf (n, v) -> pf ppf "%s=%a" n pp v))
        fields

let to_string = Fmt.to_to_string pp

let is_const = function Const _ -> true | _ -> false

let of_value (v : Value.t) =
  match v with
  | Value.VArr a -> Arr (Array.map (fun n -> Const (Value.VInt n)) a)
  | Value.VObj fields -> Obj (Array.map (fun (n, v) -> (n, Const v)) fields)
  | prim -> Const prim

exception Not_concrete

(** Concretize a symbolic value that contains no [Input]s. *)
let rec to_value = function
  | Const v -> v
  | Input _ -> raise Not_concrete
  | Arr cells ->
      Value.VArr
        (Array.map
           (fun c -> match to_value c with Value.VInt n -> n | _ -> raise Not_concrete)
           cells)
  | Obj fields -> Value.VObj (Array.map (fun (n, v) -> (n, to_value v)) fields)
  | Binop _ | Unop _ -> raise Not_concrete

(** Smart constructors with constant folding.  Folding keeps path conditions
    short and makes most loop guards concrete once inputs are bound. *)
let binop op a b =
  match (a, b) with
  | Const va, Const vb -> (
      try Const (Interp.eval_binop op va vb)
      with Interp.Runtime_error _ -> Binop (op, a, b))
  | _ -> (
      match (op, a, b) with
      | Ast.Add, Const (Value.VInt 0), x | Ast.Add, x, Const (Value.VInt 0) -> x
      | Ast.Mul, Const (Value.VInt 1), x | Ast.Mul, x, Const (Value.VInt 1) -> x
      | Ast.And, Const (Value.VBool true), x | Ast.And, x, Const (Value.VBool true) -> x
      | (Ast.And, (Const (Value.VBool false) as f), _ | Ast.And, _, (Const (Value.VBool false) as f)) -> f
      | Ast.Or, Const (Value.VBool false), x | Ast.Or, x, Const (Value.VBool false) -> x
      | (Ast.Or, (Const (Value.VBool true) as t), _ | Ast.Or, _, (Const (Value.VBool true) as t)) -> t
      | _ -> Binop (op, a, b))

let unop op a =
  match (op, a) with
  | Ast.Neg, Const (Value.VInt n) -> Const (Value.VInt (-n))
  | Ast.Not, Const (Value.VBool b) -> Const (Value.VBool (not b))
  | Ast.Not, Unop (Ast.Not, x) -> x
  | _ -> Unop (op, a)

let not_ a = unop Ast.Not a

(** Evaluate under a model binding every [Input] to a concrete value.
    Raises [Interp.Runtime_error] on type mismatches and division by zero —
    the solver treats that as "constraint unsatisfied". *)
let rec eval model t : Value.t =
  match t with
  | Const v -> v
  | Input x -> (
      match List.assoc_opt x model with
      | Some v -> v
      | None -> raise (Interp.Runtime_error ("unbound symbolic input " ^ x)))
  | Binop (op, a, b) -> (
      (* replicate short-circuiting so division guards behave *)
      match op with
      | Ast.And ->
          if Interp.bool_of (eval model a) then eval model b else Value.VBool false
      | Ast.Or -> if Interp.bool_of (eval model a) then Value.VBool true else eval model b
      | _ -> Interp.eval_binop op (eval model a) (eval model b))
  | Unop (Ast.Neg, a) -> Value.VInt (-Interp.int_of (eval model a))
  | Unop (Ast.Not, a) -> Value.VBool (not (Interp.bool_of (eval model a)))
  | Arr cells ->
      Value.VArr (Array.map (fun c -> Interp.int_of (eval model c)) cells)
  | Obj fields -> Value.VObj (Array.map (fun (n, v) -> (n, eval model v)) fields)

(** The symbolic inputs mentioned in a term. *)
let rec inputs acc = function
  | Const _ -> acc
  | Input x -> if List.mem x acc then acc else x :: acc
  | Binop (_, a, b) -> inputs (inputs acc a) b
  | Unop (_, a) -> inputs acc a
  | Arr cells -> Array.fold_left inputs acc cells
  | Obj fields -> Array.fold_left (fun acc (_, v) -> inputs acc v) acc fields
