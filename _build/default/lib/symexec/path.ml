(** Path conditions: conjunctions of boolean symbolic constraints. *)

type t = Symval.t list

let empty : t = []

(** Conjoin a constraint; trivially-true constraints are dropped and a
    trivially-false constraint collapses the condition to [None]
    (infeasible). *)
let add (c : Symval.t) (pc : t) : t option =
  match c with
  | Symval.Const (Liger_lang.Value.VBool true) -> Some pc
  | Symval.Const (Liger_lang.Value.VBool false) -> None
  | _ -> Some (c :: pc)

let constraints (pc : t) = List.rev pc

let length = List.length

(** Evaluate the whole condition under a concrete model. *)
let holds model (pc : t) =
  List.for_all
    (fun c ->
      try
        match Symval.eval model c with
        | Liger_lang.Value.VBool b -> b
        | _ -> false
      with Liger_lang.Interp.Runtime_error _ -> false)
    pc

let inputs (pc : t) = List.fold_left Symval.inputs [] pc

let pp ppf (pc : t) =
  Fmt.pf ppf "@[<hv>%a@]" Fmt.(list ~sep:(any " &&@ ") Symval.pp) (constraints pc)

let to_string = Fmt.to_to_string pp
