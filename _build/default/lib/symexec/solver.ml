(** A small search-based constraint solver.

    Finds concrete assignments for the integer/boolean inputs of a path
    condition by minimizing the classic {e branch distance} objective
    (Korel's alternating variable method): random restarts followed by
    pattern-step hill climbing per variable.  Not complete — but over the
    bounded integer domains our corpus uses it solves the conditions bounded
    symbolic execution produces almost always, which is all a test generator
    needs (unsolved paths are simply not covered, as with any SBST tool). *)

open Liger_lang
open Liger_tensor

type domain = { int_min : int; int_max : int }

let default_domain = { int_min = -32; int_max = 32 }

let big_penalty = 1e9

(** Distance to making [c] evaluate to [want] under [model]; 0 iff
    satisfied. *)
let rec distance model ~want (c : Symval.t) =
  match c with
  | Symval.Const (Value.VBool b) -> if b = want then 0.0 else big_penalty
  | Symval.Unop (Ast.Not, a) -> distance model ~want:(not want) a
  | Symval.Binop (Ast.And, a, b) ->
      if want then distance model ~want:true a +. distance model ~want:true b
      else min (distance model ~want:false a) (distance model ~want:false b)
  | Symval.Binop (Ast.Or, a, b) ->
      if want then min (distance model ~want:true a) (distance model ~want:true b)
      else distance model ~want:false a +. distance model ~want:false b
  | Symval.Binop (op, a, b) -> (
      try
        let va = Symval.eval model a and vb = Symval.eval model b in
        match (op, va, vb) with
        | (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), Value.VInt x, Value.VInt y ->
            let fx = float_of_int x and fy = float_of_int y in
            let d =
              match (op, want) with
              | Ast.Lt, true -> fx -. fy +. 1.0
              | Ast.Lt, false -> fy -. fx
              | Ast.Le, true -> fx -. fy
              | Ast.Le, false -> fy -. fx +. 1.0
              | Ast.Gt, true -> fy -. fx +. 1.0
              | Ast.Gt, false -> fx -. fy
              | Ast.Ge, true -> fy -. fx
              | Ast.Ge, false -> fx -. fy +. 1.0
              | _ -> assert false
            in
            Float.max 0.0 d
        | Ast.Eq, Value.VInt x, Value.VInt y ->
            if want then Float.abs (float_of_int (x - y))
            else if x = y then 1.0
            else 0.0
        | Ast.Ne, Value.VInt x, Value.VInt y ->
            if want then if x = y then 1.0 else 0.0
            else Float.abs (float_of_int (x - y))
        | (Ast.Eq | Ast.Ne), _, _ ->
            let equal = Value.equal va vb in
            let satisfied = if op = Ast.Eq then equal = want else equal <> want in
            if satisfied then 0.0 else 1.0
        | _ -> (
            match Symval.eval model c with
            | Value.VBool b -> if b = want then 0.0 else 1.0
            | _ -> big_penalty)
      with Interp.Runtime_error _ -> big_penalty)
  | _ -> (
      try
        match Symval.eval model c with
        | Value.VBool b -> if b = want then 0.0 else 1.0
        | _ -> big_penalty
      with Interp.Runtime_error _ -> big_penalty)

let objective model (pc : Path.t) =
  List.fold_left (fun acc c -> acc +. distance model ~want:true c) 0.0 pc

(** Try to find a model of [pc] over [vars] (name, is_bool).  Returns
    bindings for every listed variable. *)
let solve ?(domain = default_domain) ?(restarts = 12) ?(steps = 200) rng
    ~(vars : (string * Ast.typ) list) (pc : Path.t) =
  if vars = [] then if Path.holds [] pc then Some [] else None
  else begin
    let names = Array.of_list (List.map fst vars) in
    let kinds = Array.of_list (List.map snd vars) in
    let n = Array.length names in
    let random_model () =
      Array.init n (fun i ->
          match kinds.(i) with
          | Ast.Tbool -> Value.VBool (Rng.bool rng)
          | _ -> Value.VInt (Rng.int_range rng domain.int_min domain.int_max))
    in
    let to_assoc arr = Array.to_list (Array.mapi (fun i v -> (names.(i), v)) arr) in
    let best = ref None in
    let attempt = ref 0 in
    while !best = None && !attempt < restarts do
      incr attempt;
      let model = random_model () in
      let score = ref (objective (to_assoc model) pc) in
      let step = ref 0 in
      while !score > 0.0 && !score < big_penalty && !step < steps do
        incr step;
        (* alternating-variable pattern step *)
        let i = Rng.int rng n in
        (match kinds.(i) with
        | Ast.Tbool ->
            let flipped = Array.copy model in
            flipped.(i) <-
              (match model.(i) with Value.VBool b -> Value.VBool (not b) | v -> v);
            let s = objective (to_assoc flipped) pc in
            if s < !score then begin
              model.(i) <- flipped.(i);
              score := s
            end
        | _ ->
            let current = match model.(i) with Value.VInt v -> v | _ -> 0 in
            let deltas = [ 1; -1; 2; -2; 4; -4; 8; -8; 16; -16 ] in
            let try_delta d =
              let candidate = max domain.int_min (min domain.int_max (current + d)) in
              let saved = model.(i) in
              model.(i) <- Value.VInt candidate;
              let s = objective (to_assoc model) pc in
              (* equal-score moves are accepted half the time: coupled
                 equalities create plateaus that strict descent cannot cross *)
              if s < !score || (s = !score && Rng.bernoulli rng 0.5) then score := s
              else model.(i) <- saved
            in
            List.iter try_delta deltas)
      done;
      if !score = 0.0 then best := Some (to_assoc model)
    done;
    !best
  end
