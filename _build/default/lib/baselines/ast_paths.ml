(** Leaf-to-leaf AST path extraction, the input representation of code2vec
    and code2seq.

    A path context is a pair of terminal tokens plus the sequence of AST
    node types connecting them through their lowest common ancestor, with
    up/down direction markers.  Long paths are discarded and the quadratic
    set of pairs is sampled down deterministically. *)

open Liger_trace
open Liger_tensor

type context = {
  left : string;          (* terminal token *)
  path : string list;     (* interior node types, "^"-marked going up *)
  right : string;
}

(* root-to-leaf paths: (interior labels from root, leaf token) *)
let leaves_with_paths tree =
  let acc = ref [] in
  let rec go prefix = function
    | Encode.Leaf tok -> acc := (List.rev prefix, tok) :: !acc
    | Encode.Node (label, children) -> List.iter (go (label :: prefix)) children
  in
  go [] tree;
  List.rev !acc

let rec strip_common a b =
  match (a, b) with
  | x :: a', y :: b' when x = y -> strip_common a' b'
  | _ -> (a, b)

let context_of (pa, la) (pb, lb) =
  let up, down = strip_common pa pb in
  let path = List.rev_map (fun l -> "^" ^ l) up @ down in
  { left = la; path; right = lb }

(** Extract up to [max_contexts] path contexts, each at most [max_len]
    interior nodes long.  Deterministic given [rng]. *)
let extract ?(max_contexts = 60) ?(max_len = 9) ?(max_leaves = 40) rng tree =
  let leaves = Array.of_list (leaves_with_paths tree) in
  let leaves =
    if Array.length leaves <= max_leaves then leaves
    else Rng.sample_without_replacement rng max_leaves leaves
  in
  let n = Array.length leaves in
  let all = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let c = context_of leaves.(i) leaves.(j) in
      if List.length c.path <= max_len then all := c :: !all
    done
  done;
  let all = Array.of_list !all in
  if Array.length all <= max_contexts then Array.to_list all
  else Array.to_list (Rng.sample_without_replacement rng max_contexts all)

(** Single-token rendering of a path (code2vec hashes whole paths). *)
let path_token c = String.concat "|" c.path
