lib/baselines/code2vec.ml: Array Ast_paths Autodiff Common Embedding_layer Encode Hashtbl Liger_core Liger_lang Liger_model Liger_nn Liger_tensor Liger_trace Linear List Param Rng Tensor Vocab
