lib/baselines/ast_paths.ml: Array Encode Liger_tensor Liger_trace List Rng String
