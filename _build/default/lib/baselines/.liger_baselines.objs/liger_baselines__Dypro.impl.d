lib/baselines/dypro.ml: Array Autodiff Common Decoder Embedding_layer Liger_core Liger_model Liger_nn Liger_tensor Liger_trace Linear List Param Rnn_cell Tensor Vocab
