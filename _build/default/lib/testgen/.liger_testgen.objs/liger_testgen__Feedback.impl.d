lib/testgen/feedback.ml: Ast Blended Exec_trace Hashtbl Interp Liger_lang Liger_symexec Liger_trace List Randgen Symexec
