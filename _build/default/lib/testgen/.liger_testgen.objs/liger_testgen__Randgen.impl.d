lib/testgen/randgen.ml: Array Ast Liger_lang Liger_tensor List Option Rng String Value
