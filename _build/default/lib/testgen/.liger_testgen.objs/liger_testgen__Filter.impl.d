lib/testgen/filter.ml: Ast Feedback Hashtbl Liger_lang List Option Typecheck
