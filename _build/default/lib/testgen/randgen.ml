(** Random input generation with a Randoop-style value pool.

    Values are drawn from skewed distributions that favour boundary cases
    (empty arrays, zero, single characters) and — the feedback-directed
    ingredient — previously observed values are reused across arguments with
    some probability, which is how related inputs (equal strings, rotations,
    shared lengths) arise without task-specific knowledge. *)

open Liger_lang
open Liger_tensor

type pool = {
  mutable ints : int list;
  mutable strs : string list;
  mutable arrs : int array list;
}

let create_pool () = { ints = [ 0; 1; -1 ]; strs = [ "" ]; arrs = [ [||] ] }

let rec remember pool (v : Value.t) =
  let cap l = if List.length l > 64 then List.filteri (fun i _ -> i < 48) l else l in
  match v with
  | Value.VInt n -> pool.ints <- cap (n :: pool.ints)
  | Value.VStr s -> if String.length s <= 16 then pool.strs <- cap (s :: pool.strs)
  | Value.VArr a -> if Array.length a <= 16 then pool.arrs <- cap (a :: pool.arrs)
  | Value.VBool _ -> ()
  | Value.VObj fields -> Array.iter (fun (_, v) -> remember pool v) fields

let alphabet = "abcdxyz"

let fresh_int rng =
  (* mostly small, sometimes boundary-ish *)
  match Rng.int rng 10 with
  | 0 -> 0
  | 1 -> Rng.choose rng [| -1; 1 |]
  | 2 -> Rng.int_range rng 20 100
  | 3 -> Rng.int_range rng (-100) (-20)
  | _ -> Rng.int_range rng (-12) 12

let fresh_string rng =
  let n =
    match Rng.int rng 8 with 0 -> 0 | 1 -> 1 | k -> 1 + (k mod 6)
  in
  String.init n (fun _ -> alphabet.[Rng.int rng (String.length alphabet)])

let fresh_array rng =
  let n = match Rng.int rng 8 with 0 -> 0 | 1 -> 1 | k -> 1 + (k mod 7) in
  let a = Array.init n (fun _ -> Rng.int_range rng (-12) 12) in
  (* occasionally produce already-sorted / reversed / constant arrays, the
     boundary behaviours of sorting and searching routines *)
  (match Rng.int rng 6 with
  | 0 -> Array.sort compare a
  | 1 ->
      Array.sort compare a;
      let n = Array.length a in
      for i = 0 to (n / 2) - 1 do
        let t = a.(i) in
        a.(i) <- a.(n - 1 - i);
        a.(n - 1 - i) <- t
      done
  | 2 -> if n > 0 then Array.fill a 0 n a.(0)
  | _ -> ());
  a

(** Draw one value of type [t], reusing the pool about a third of the
    time. *)
let value ?pool rng (t : Ast.typ) : Value.t =
  let reuse l = match (pool, l) with
    | Some _, (_ :: _ as l) when Rng.bernoulli rng 0.35 -> Some (Rng.choose_list rng l)
    | _ -> None
  in
  match t with
  | Ast.Tint -> (
      match Option.bind pool (fun p -> reuse p.ints) with
      | Some n -> Value.VInt n
      | None -> Value.VInt (fresh_int rng))
  | Ast.Tbool -> Value.VBool (Rng.bool rng)
  | Ast.Tstring -> (
      match Option.bind pool (fun p -> reuse p.strs) with
      | Some s ->
          (* reuse exactly, or as a derived value (rotation / copy with one
             change) — cheap way to exercise string-comparison paths *)
          if Rng.bernoulli rng 0.5 || String.length s = 0 then Value.VStr s
          else
            let k = Rng.int rng (String.length s) in
            Value.VStr (String.sub s k (String.length s - k) ^ String.sub s 0 k)
      | None -> Value.VStr (fresh_string rng))
  | Ast.Tarray -> (
      match Option.bind pool (fun p -> reuse p.arrs) with
      | Some a -> Value.VArr (Array.copy a)
      | None -> Value.VArr (fresh_array rng))
  | Ast.Tobj ->
      Value.VObj
        [| ("x", Value.VInt (fresh_int rng)); ("y", Value.VInt (fresh_int rng)) |]

(** Random argument vector for a method. *)
let args ?pool rng (meth : Ast.meth) =
  List.map (fun (t, _) -> value ?pool rng t) meth.Ast.params
