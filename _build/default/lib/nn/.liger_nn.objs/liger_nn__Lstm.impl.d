lib/nn/lstm.ml: Autodiff Liger_tensor Linear List Param
