lib/nn/treelstm.ml: Array Autodiff Encode Liger_tensor Liger_trace List Param
