lib/nn/rnn_cell.ml: Autodiff Liger_tensor Linear List Param
