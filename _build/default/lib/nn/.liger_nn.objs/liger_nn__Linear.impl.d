lib/nn/linear.ml: Autodiff Liger_tensor Param
