lib/nn/embedding_layer.ml: Autodiff Liger_tensor Liger_trace Param Vocab
