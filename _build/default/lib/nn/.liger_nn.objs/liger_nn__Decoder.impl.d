lib/nn/decoder.ml: Array Attention Autodiff Embedding_layer Liger_tensor Liger_trace Linear List Rnn_cell Stdlib Tensor Vocab
