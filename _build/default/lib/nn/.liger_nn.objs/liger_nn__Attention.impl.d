lib/nn/attention.ml: Array Autodiff Liger_tensor Linear Param
