(** Dense affine layers. *)

open Liger_tensor

type t = { w : Param.t; b : Param.t }

let create store name ~dim_in ~dim_out =
  {
    w = Param.matrix store (name ^ ".w") dim_out dim_in;
    b = Param.vector store (name ^ ".b") dim_out;
  }

let forward t tape x = Autodiff.affine tape ~w:t.w ~b:t.b x

let forward_tanh t tape x = Autodiff.tanh_ tape (forward t tape x)

let forward_sigmoid t tape x = Autodiff.sigmoid tape (forward t tape x)
